#include "util/args.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace nlarm::util {
namespace {

ArgParser make_parser() {
  return ArgParser("test program",
                   {{"count", "a number"},
                    {"name", "a string"},
                    {"verbose", "a boolean"},
                    {"ratio", "a double"}});
}

TEST(ArgParserTest, ParsesEqualsForm) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--count=5", "--name=x"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_long("count", 0), 5);
  EXPECT_EQ(parser.get_string("name", ""), "x");
}

TEST(ArgParserTest, ParsesSpaceForm) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--count", "7"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_long("count", 0), 7);
}

TEST(ArgParserTest, BooleanFlagWithoutValue) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(parser.parse(2, argv));
  EXPECT_TRUE(parser.get_bool("verbose"));
}

TEST(ArgParserTest, DefaultsApplyWhenAbsent) {
  auto parser = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_EQ(parser.get_long("count", 9), 9);
  EXPECT_DOUBLE_EQ(parser.get_double("ratio", 0.5), 0.5);
  EXPECT_FALSE(parser.get_bool("verbose"));
}

TEST(ArgParserTest, UnknownFlagThrows) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(parser.parse(2, argv), CheckError);
}

TEST(ArgParserTest, QueryingUnspecifiedFlagThrows) {
  auto parser = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_THROW(parser.get_string("nonexistent", ""), CheckError);
}

TEST(ArgParserTest, PositionalArgumentsCollected) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "input.txt", "--count=1", "more"};
  ASSERT_TRUE(parser.parse(4, argv));
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "input.txt");
}

TEST(ArgParserTest, HelpReturnsFalse) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(ArgParserTest, MalformedBooleanThrows) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--verbose=maybe"};
  ASSERT_TRUE(parser.parse(2, argv));
  EXPECT_THROW(parser.get_bool("verbose"), CheckError);
}

TEST(ArgParserTest, BooleanSpellings) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--verbose=off"};
  ASSERT_TRUE(parser.parse(2, argv));
  EXPECT_FALSE(parser.get_bool("verbose", true));
}

TEST(ArgParserTest, HelpTextListsFlags) {
  auto parser = make_parser();
  const std::string help = parser.help();
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("--help"), std::string::npos);
}

}  // namespace
}  // namespace nlarm::util
