#include "monitor/central.h"

#include <gtest/gtest.h>

#include "monitor/resource_monitor.h"
#include "net/flows.h"
#include "util/check.h"

namespace nlarm::monitor {
namespace {

class CentralTest : public ::testing::Test {
 protected:
  CentralTest()
      : cluster_(cluster::make_uniform_cluster(6, 2)),
        network_(cluster_, flows_),
        store_(cluster_.size()),
        sim_(7) {}

  cluster::Cluster cluster_;
  net::FlowSet flows_;
  net::NetworkModel network_;
  MonitorStore store_;
  sim::Simulation sim_;
};

TEST_F(CentralTest, RelaunchesKilledDaemon) {
  LivehostsD daemon("livehosts", cluster_, 2, 5.0, store_);
  CentralMonitor central(cluster_, 0, 1, 10.0);
  central.supervise(&daemon);
  daemon.launch(sim_);
  central.start(sim_);
  sim_.run_until(15.0);
  daemon.kill();
  EXPECT_FALSE(daemon.running());
  sim_.run_until(40.0);
  EXPECT_TRUE(daemon.running());
  EXPECT_GE(central.relaunch_count(), 1);
}

TEST_F(CentralTest, RelaunchesOnNewHostWhenHostDies) {
  LivehostsD daemon("livehosts", cluster_, 2, 5.0, store_);
  CentralMonitor central(cluster_, 0, 1, 10.0);
  central.supervise(&daemon);
  daemon.launch(sim_);
  central.start(sim_);
  cluster_.mutable_node(2).dyn.alive = false;
  sim_.run_until(40.0);
  EXPECT_TRUE(daemon.running());
  EXPECT_NE(daemon.host(), 2);
  EXPECT_TRUE(cluster_.node(daemon.host()).dyn.alive);
}

TEST_F(CentralTest, SlavePromotedWhenMasterDies) {
  CentralMonitor central(cluster_, 0, 1, 10.0);
  central.start(sim_);
  sim_.run_until(15.0);
  EXPECT_TRUE(central.master_alive());
  central.fail_master();
  sim_.run_until(30.0);
  // The old slave (node 1) is now master; a fresh slave exists elsewhere.
  EXPECT_EQ(central.master_host(), 1);
  EXPECT_TRUE(central.master_alive());
  EXPECT_TRUE(central.slave_alive());
  EXPECT_NE(central.slave_host(), central.master_host());
  EXPECT_EQ(central.promotion_count(), 1);
}

TEST_F(CentralTest, MasterReplacesDeadSlave) {
  CentralMonitor central(cluster_, 0, 1, 10.0);
  central.start(sim_);
  central.fail_slave();
  sim_.run_until(15.0);
  EXPECT_TRUE(central.slave_alive());
  EXPECT_NE(central.slave_host(), 0);
  EXPECT_EQ(central.promotion_count(), 0);
}

TEST_F(CentralTest, SimultaneousFailureAbandonsSupervision) {
  LivehostsD daemon("livehosts", cluster_, 2, 5.0, store_);
  CentralMonitor central(cluster_, 0, 1, 10.0);
  central.supervise(&daemon);
  daemon.launch(sim_);
  central.start(sim_);
  sim_.run_until(15.0);
  central.fail_master();
  central.fail_slave();
  sim_.run_until(30.0);
  EXPECT_TRUE(central.abandoned());
  // Daemons keep running unsupervised (paper §4)...
  EXPECT_TRUE(daemon.running());
  // ...but a crash is no longer repaired.
  daemon.kill();
  sim_.run_until(60.0);
  EXPECT_FALSE(daemon.running());
}

TEST_F(CentralTest, MasterHostNodeDeathTriggersPromotion) {
  CentralMonitor central(cluster_, 0, 1, 10.0);
  central.start(sim_);
  cluster_.mutable_node(0).dyn.alive = false;
  sim_.run_until(15.0);
  EXPECT_EQ(central.master_host(), 1);
  EXPECT_TRUE(central.master_alive());
}

TEST_F(CentralTest, InvalidConstructionRejected) {
  EXPECT_THROW(CentralMonitor(cluster_, 0, 0, 10.0), util::CheckError);
  EXPECT_THROW(CentralMonitor(cluster_, 0, 1, 0.0), util::CheckError);
  EXPECT_THROW(CentralMonitor(cluster_, 99, 1, 10.0), util::CheckError);
  CentralMonitor central(cluster_, 0, 1, 10.0);
  EXPECT_THROW(central.supervise(nullptr), util::CheckError);
}

TEST_F(CentralTest, ResourceMonitorFacadePopulatesStore) {
  ResourceMonitor monitor(cluster_, network_, sim_);
  monitor.start();
  sim_.run_until(400.0);
  const ClusterSnapshot snap = monitor.snapshot();
  // All nodes live, all with records, network matrices measured.
  EXPECT_EQ(snap.usable_nodes().size(), static_cast<std::size_t>(6));
  EXPECT_GT(snap.net.latency_us[0][5], 0.0);
  EXPECT_GT(snap.net.bandwidth_mbps[0][5], 0.0);
  EXPECT_GT(snap.nodes[3].cpu_load_avg.five_min, -1.0);
}

TEST_F(CentralTest, ResourceMonitorFindDaemon) {
  ResourceMonitor monitor(cluster_, network_, sim_);
  EXPECT_NE(monitor.find_daemon("latencyd"), nullptr);
  EXPECT_NE(monitor.find_daemon("nodestate.3"), nullptr);
  EXPECT_EQ(monitor.find_daemon("bogus"), nullptr);
  // 2 livehosts + 6 nodestate + latency + bandwidth
  EXPECT_EQ(monitor.daemons().size(), 10u);
}

TEST_F(CentralTest, ResourceMonitorEndToEndFailover) {
  ResourceMonitor monitor(cluster_, network_, sim_);
  monitor.start();
  sim_.run_until(100.0);
  Daemon* latencyd = monitor.find_daemon("latencyd");
  ASSERT_NE(latencyd, nullptr);
  latencyd->kill();
  sim_.run_until(200.0);
  EXPECT_TRUE(latencyd->running());
  EXPECT_GE(monitor.central().relaunch_count(), 1);
}

}  // namespace
}  // namespace nlarm::monitor
