// Refresh-plane stress: the parallel epoch-refresh machinery (multi-threaded
// prepared rebuilds, sharded delta applies, decode-ahead log ingest) racing
// against hot decide()/decide_batch() readers and a live follower tail.
// These are the ThreadSanitizer targets of the NLARM_SANITIZE=thread CI job
// (ctest regex matches on "Refresh").
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/allocator.h"
#include "core/broker.h"
#include "core/epoch.h"
#include "core/replica.h"
#include "monitor/delta_log.h"
#include "monitor/store.h"
#include "sim/rng.h"
#include "util/check.h"

namespace nlarm::core {
namespace {

std::string log_path(const char* name) {
  const std::string path = ::testing::TempDir() + "/" + name +
                           std::string(monitor::kDeltaLogExtension);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

// A store with every record written once; switches of 3 nodes each.
std::unique_ptr<monitor::MonitorStore> seeded_store(int n, double now = 1.0) {
  auto store = std::make_unique<monitor::MonitorStore>(n);
  store->write_livehosts(now,
                         std::vector<bool>(static_cast<std::size_t>(n), true));
  for (int i = 0; i < n; ++i) {
    monitor::NodeSnapshot record;
    record.spec.id = i;
    record.spec.hostname = "host" + std::to_string(i);
    record.spec.switch_id = i / 3;
    record.spec.core_count = 8;
    record.spec.cpu_freq_ghz = 3.0;
    record.spec.total_mem_gb = 16.0;
    record.cpu_load = 0.1 * i;
    store->write_node_record(now, record);
  }
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      store->write_latency(now, u, v, 100.0 + u + v, 101.0 + u + v);
      store->write_latency(now, v, u, 100.0 + u + v, 101.0 + u + v);
      store->write_bandwidth(now, u, v, 900.0 - u - v, 941.0);
      store->write_bandwidth(now, v, u, 900.0 - u - v, 941.0);
    }
  }
  return store;
}

AllocationRequest request_for(int nprocs = 8, int ppn = 4) {
  AllocationRequest request;
  request.nprocs = nprocs;
  request.ppn = ppn;
  request.job = JobWeights::balanced();
  return request;
}

// Random churn against the store: a node record rewrite plus, sometimes, a
// pair measurement — the same shape the monitoring daemons produce.
void churn(monitor::MonitorStore& store, sim::Rng& rng, int n, double now) {
  monitor::NodeSnapshot record;
  const int id = static_cast<int>(rng.uniform_int(0, n - 1));
  record.spec.id = id;
  record.spec.hostname = "host" + std::to_string(id);
  record.spec.switch_id = id / 3;
  record.spec.core_count = 8;
  record.spec.cpu_freq_ghz = 3.0;
  record.spec.total_mem_gb = 16.0;
  record.cpu_load = rng.uniform(0.0, 2.0);
  store.write_node_record(now, record);
  if (rng.chance(0.5)) {
    const int u = static_cast<int>(rng.uniform_int(0, n - 2));
    const int v = static_cast<int>(rng.uniform_int(u + 1, n - 1));
    store.write_latency(now, u, v, rng.uniform(20.0, 200.0), 100.0);
    store.write_bandwidth(now, u, v, rng.uniform(400.0, 940.0), 941.0);
  }
}

// Parallel full rebuilds and sharded delta applies racing hot readers: one
// publisher thread alternates full refresh_epoch() (fresh builder, pool
// fan-out) with O(dirty) delta refresh_epoch() (sharded apply) while reader
// threads hammer decide() and decide_batch() through pinned epochs. Every
// decide must complete and allocate against a coherent epoch.
TEST(RefreshStressTest, ParallelRefreshRacesHotDeciders) {
  constexpr int kNodes = 12;
  constexpr int kReaders = 3;
  constexpr int kRefreshes = 40;

  auto store = seeded_store(kNodes);
  const AllocationRequest request = request_for();
  const RequestProfile profile = RequestProfile::of(request);

  NetworkLoadAwareAllocator allocator;
  ResourceBroker broker(allocator);
  broker.set_refresh_threads(4);
  broker.refresh_epoch(
      std::make_shared<const monitor::ClusterSnapshot>(store->assemble(1.0)),
      profile);
  store->drain_delta();

  std::atomic<bool> stop{false};
  std::atomic<long> decides{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&broker, &request, &stop, &decides, t] {
      EpochPin pin = broker.pin_epoch();
      const std::vector<AllocationRequest> batch{request, request};
      while (!stop.load(std::memory_order_relaxed)) {
        broker.refresh_pin(pin);
        if (t % 2 == 0) {
          const BrokerDecision decision = broker.decide(pin, request);
          ASSERT_EQ(decision.action, BrokerDecision::Action::kAllocate);
        } else {
          const std::vector<BrokerDecision> decisions =
              broker.decide_batch(pin, batch);
          ASSERT_EQ(decisions.size(), batch.size());
          ASSERT_EQ(decisions[0].action, BrokerDecision::Action::kAllocate);
        }
        decides.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  sim::Rng rng(7);
  double now = 1.0;
  for (int i = 0; i < kRefreshes; ++i) {
    now += 1.0;
    churn(*store, rng, kNodes, now);
    auto snapshot = std::make_shared<const monitor::ClusterSnapshot>(
        store->assemble(now));
    if (i % 4 == 0) {
      // Full rebuild: the delta is dropped, the builder rebuilds every pair
      // across the pool.
      store->drain_delta();
      broker.refresh_epoch(snapshot, profile);
    } else {
      broker.refresh_epoch(snapshot, store->drain_delta(), profile);
    }
  }
  // Guarantee real overlap on any scheduler: every reader must decide at
  // least once against the final epoch before the race is called off.
  while (decides.load(std::memory_order_relaxed) < kReaders) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : readers) thread.join();

  EXPECT_EQ(broker.epoch(), static_cast<std::uint64_t>(kRefreshes) + 1);
  EXPECT_GE(decides.load(), kReaders);
}

// Changing the refresh worker count between publications while readers stay
// pinned: pool teardown/rebuild must not disturb in-flight epochs.
TEST(RefreshStressTest, ResizingRefreshPoolUnderPinnedReaders) {
  constexpr int kNodes = 9;
  auto store = seeded_store(kNodes);
  const AllocationRequest request = request_for();
  const RequestProfile profile = RequestProfile::of(request);

  NetworkLoadAwareAllocator allocator;
  ResourceBroker broker(allocator);
  broker.refresh_epoch(
      std::make_shared<const monitor::ClusterSnapshot>(store->assemble(1.0)),
      profile);
  store->drain_delta();

  std::atomic<bool> stop{false};
  std::atomic<long> decides{0};
  std::thread reader([&broker, &request, &stop, &decides] {
    EpochPin pin = broker.pin_epoch();
    while (!stop.load(std::memory_order_relaxed)) {
      broker.refresh_pin(pin);
      const BrokerDecision decision = broker.decide(pin, request);
      ASSERT_EQ(decision.action, BrokerDecision::Action::kAllocate);
      decides.fetch_add(1, std::memory_order_relaxed);
    }
  });

  sim::Rng rng(11);
  double now = 1.0;
  const int sizes[] = {1, 3, 2, 4, 1, 2};
  for (int round = 0; round < 12; ++round) {
    broker.set_refresh_threads(sizes[round % 6]);
    now += 1.0;
    churn(*store, rng, kNodes, now);
    auto snapshot = std::make_shared<const monitor::ClusterSnapshot>(
        store->assemble(now));
    broker.refresh_epoch(snapshot, store->drain_delta(), profile);
  }
  while (decides.load(std::memory_order_relaxed) < 1) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(broker.epoch(), 13u);
  EXPECT_GT(decides.load(), 0);
}

// The full replicated refresh plane live: a leader thread appends churned
// frames to the delta log while a FollowerBroker with parallel refreshes AND
// decode-ahead ingest tails it from its background thread, with concurrent
// decide()/decide_batch() callers against the follower the whole time.
TEST(RefreshStressTest, FollowerTailDecodeAheadUnderLoad) {
  constexpr int kNodes = 9;
  constexpr int kFrames = 60;
  const std::string path = log_path("refresh_stress_tail");

  auto store = seeded_store(kNodes);
  const AllocationRequest request = request_for();
  const RequestProfile profile = RequestProfile::of(request);

  monitor::DeltaLogWriter writer(path);
  ASSERT_TRUE(writer.append(store->assemble(1.0), store->drain_delta()));

  std::atomic<double> now{1.0};
  NetworkLoadAwareAllocator allocator;
  ReplicaOptions options;
  options.max_epoch_age_s = 0.0;  // no fencing: sim time vs wall cadence
  options.poll_interval_s = 0.001;
  options.refresh_threads = 2;
  options.decode_ahead = true;
  FollowerBroker follower(allocator, path, profile, options);
  follower.start([&now] { return now.load(std::memory_order_relaxed); });

  std::atomic<bool> stop{false};
  std::atomic<long> served{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&follower, &request, &now, &stop, &served, t] {
      const std::vector<AllocationRequest> batch{request, request};
      while (!stop.load(std::memory_order_relaxed)) {
        const double at = now.load(std::memory_order_relaxed);
        if (t == 0) {
          const BrokerDecision decision = follower.decide(request, at);
          if (decision.action == BrokerDecision::Action::kAllocate) {
            served.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          const std::vector<BrokerDecision> decisions =
              follower.decide_batch(batch, at);
          ASSERT_EQ(decisions.size(), batch.size());
          if (decisions[0].action == BrokerDecision::Action::kAllocate) {
            served.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  sim::Rng rng(23);
  double t = 1.0;
  for (int i = 0; i < kFrames; ++i) {
    t += 1.0;
    churn(*store, rng, kNodes, t);
    ASSERT_TRUE(writer.append(store->assemble(t), store->drain_delta()));
    now.store(t, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Let the tail thread drain the remaining frames, then stop everything.
  const std::uint64_t final_version = store->assemble(t).version;
  for (int spin = 0; spin < 2000; ++spin) {
    if (follower.have_state() &&
        follower.status(t).state_version == final_version) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : readers) thread.join();
  follower.stop();

  const ReplicaStatus status = follower.status(t);
  EXPECT_TRUE(status.have_state);
  EXPECT_EQ(status.state_version, final_version);
  EXPECT_GT(status.frames_ingested, 0);
  EXPECT_GT(served.load(), 0);

  // The replicated epoch serves the same decision a leader would publish
  // from the identical state.
  ResourceBroker leader(allocator);
  leader.set_refresh_threads(2);
  leader.refresh_epoch(
      std::make_shared<const monitor::ClusterSnapshot>(store->assemble(t)),
      profile);
  const BrokerDecision expect = leader.decide(leader.pin_epoch(), request);
  const BrokerDecision got = follower.decide(request, t);
  EXPECT_EQ(expect.action, got.action);
  EXPECT_EQ(expect.allocation.nodes, got.allocation.nodes);
  EXPECT_EQ(expect.allocation.total_cost, got.allocation.total_cost);
}

}  // namespace
}  // namespace nlarm::core
