#include "monitor/daemons.h"

#include <gtest/gtest.h>

#include <set>

#include "cluster/cluster.h"
#include "net/flows.h"
#include "net/network_model.h"
#include "util/check.h"

namespace nlarm::monitor {
namespace {

class DaemonsTest : public ::testing::Test {
 protected:
  DaemonsTest()
      : cluster_(cluster::make_uniform_cluster(6, 2)),
        network_(cluster_, flows_),
        store_(cluster_.size()),
        sim_(123) {}

  cluster::Cluster cluster_;
  net::FlowSet flows_;
  net::NetworkModel network_;
  MonitorStore store_;
  sim::Simulation sim_;
};

TEST(TournamentTest, EvenNodeCountCoversAllPairsOnce) {
  const auto rounds = tournament_rounds(6);
  EXPECT_EQ(rounds.size(), 5u);  // n-1 rounds
  std::set<std::pair<cluster::NodeId, cluster::NodeId>> seen;
  for (const auto& round : rounds) {
    EXPECT_EQ(round.size(), 3u);  // n/2 pairs per round
    std::set<cluster::NodeId> in_round;
    for (const auto& [a, b] : round) {
      EXPECT_LT(a, b);
      EXPECT_TRUE(in_round.insert(a).second) << "node repeated in round";
      EXPECT_TRUE(in_round.insert(b).second) << "node repeated in round";
      EXPECT_TRUE(seen.insert({a, b}).second) << "pair repeated";
    }
  }
  EXPECT_EQ(seen.size(), 15u);  // C(6,2)
}

TEST(TournamentTest, OddNodeCountUsesByes) {
  const auto rounds = tournament_rounds(5);
  EXPECT_EQ(rounds.size(), 5u);  // n rounds with a bye each
  std::set<std::pair<cluster::NodeId, cluster::NodeId>> seen;
  for (const auto& round : rounds) {
    EXPECT_EQ(round.size(), 2u);  // (n-1)/2 real pairs
    for (const auto& pair : round) seen.insert(pair);
  }
  EXPECT_EQ(seen.size(), 10u);  // C(5,2)
}

TEST(TournamentTest, MinimumTwoNodes) {
  EXPECT_THROW(tournament_rounds(1), util::CheckError);
  const auto rounds = tournament_rounds(2);
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_EQ(rounds[0][0], (std::pair<cluster::NodeId, cluster::NodeId>{0, 1}));
}

TEST_F(DaemonsTest, LivehostsDaemonTracksAliveness) {
  LivehostsD daemon("livehosts", cluster_, 0, 5.0, store_);
  daemon.launch(sim_);
  sim_.run_until(6.0);
  EXPECT_TRUE(store_.livehosts()[3]);
  cluster_.mutable_node(3).dyn.alive = false;
  sim_.run_until(11.0);
  EXPECT_FALSE(store_.livehosts()[3]);
}

TEST_F(DaemonsTest, NodeStateDaemonWritesRecordWithMeans) {
  cluster_.mutable_node(2).dyn.cpu_load = 4.0;
  cluster_.mutable_node(2).dyn.cpu_util = 0.5;
  NodeStateD daemon("nodestate.2", cluster_, 2, 5.0, store_, sim::Rng(1),
                    /*sample_noise=*/0.0);
  daemon.launch(sim_);
  sim_.run_until(100.0);
  const NodeSnapshot& record = store_.node_record(2);
  ASSERT_TRUE(record.valid);
  EXPECT_DOUBLE_EQ(record.cpu_load, 4.0);
  EXPECT_NEAR(record.cpu_load_avg.one_min, 4.0, 1e-9);
  EXPECT_NEAR(record.cpu_util_avg.five_min, 0.5, 1e-9);
  EXPECT_NEAR(record.mem_avail_avg.one_min, 16.0, 1e-9);
  EXPECT_EQ(record.spec.hostname, "csews3");
}

TEST_F(DaemonsTest, NodeStateNoiseStaysClose) {
  cluster_.mutable_node(0).dyn.cpu_load = 2.0;
  NodeStateD daemon("nodestate.0", cluster_, 0, 5.0, store_, sim::Rng(2),
                    /*sample_noise=*/0.02);
  daemon.launch(sim_);
  sim_.run_until(1000.0);
  const NodeSnapshot& record = store_.node_record(0);
  EXPECT_NEAR(record.cpu_load_avg.fifteen_min, 2.0, 0.1);
}

TEST_F(DaemonsTest, DaemonStopsWhenHostDies) {
  NodeStateD daemon("nodestate.1", cluster_, 1, 5.0, store_, sim::Rng(3));
  daemon.launch(sim_);
  sim_.run_until(20.0);
  const auto ticks_before = daemon.tick_count();
  EXPECT_GT(ticks_before, 0u);
  cluster_.mutable_node(1).dyn.alive = false;
  sim_.run_until(60.0);
  EXPECT_FALSE(daemon.running());
  EXPECT_LE(daemon.tick_count(), ticks_before);
}

TEST_F(DaemonsTest, KilledDaemonStopsTicking) {
  LivehostsD daemon("livehosts", cluster_, 0, 5.0, store_);
  daemon.launch(sim_);
  sim_.run_until(12.0);
  const auto ticks = daemon.tick_count();
  daemon.kill();
  EXPECT_FALSE(daemon.running());
  sim_.run_until(60.0);
  EXPECT_EQ(daemon.tick_count(), ticks);
}

TEST_F(DaemonsTest, StalledDaemonLooksAliveButStopsWriting) {
  // The "wedged process" fault: the supervisor must NOT relaunch a stalled
  // daemon (it still answers running()), but the store stops hearing from
  // it — that silence is what the staleness layer quarantines on.
  NodeStateD daemon("nodestate.1", cluster_, 1, 5.0, store_, sim::Rng(9));
  daemon.launch(sim_);
  sim_.run_until(20.0);
  const auto ticks = daemon.tick_count();
  const double written = store_.node_staleness(20.0, 1);
  EXPECT_LT(written, 10.0);

  daemon.set_stalled(true);
  EXPECT_TRUE(daemon.running());  // alive to the supervisor
  sim_.run_until(60.0);
  EXPECT_EQ(daemon.tick_count(), ticks);  // silent to the store
  EXPECT_GT(store_.node_staleness(60.0, 1), 35.0);

  // Unstalling resumes on the surviving timer — no relaunch needed.
  daemon.set_stalled(false);
  sim_.run_until(80.0);
  EXPECT_GT(daemon.tick_count(), ticks);
  EXPECT_EQ(daemon.launch_count(), 1);
  EXPECT_LT(store_.node_staleness(80.0, 1), 10.0);
}

TEST_F(DaemonsTest, RelaunchClearsStall) {
  LivehostsD daemon("livehosts", cluster_, 0, 5.0, store_);
  daemon.launch(sim_);
  daemon.set_stalled(true);
  daemon.kill();
  daemon.launch(sim_);  // a fresh process is by definition not wedged
  EXPECT_FALSE(daemon.stalled());
  const auto ticks = daemon.tick_count();
  sim_.run_until(30.0);
  EXPECT_GT(daemon.tick_count(), ticks);
}

TEST_F(DaemonsTest, RelaunchResumesTicking) {
  LivehostsD daemon("livehosts", cluster_, 0, 5.0, store_);
  daemon.launch(sim_);
  sim_.run_until(12.0);
  daemon.kill();
  daemon.launch(sim_);
  EXPECT_EQ(daemon.launch_count(), 2);
  const auto ticks = daemon.tick_count();
  sim_.run_until(30.0);
  EXPECT_GT(daemon.tick_count(), ticks);
}

TEST_F(DaemonsTest, LatencyDaemonFillsAllPairs) {
  LatencyD daemon("latencyd", cluster_, 0, 60.0, 0.05, network_, store_,
                  sim::Rng(4));
  daemon.launch(sim_);
  sim_.run_until(70.0);
  const ClusterSnapshot snap = store_.assemble(sim_.now());
  for (int u = 0; u < cluster_.size(); ++u) {
    for (int v = 0; v < cluster_.size(); ++v) {
      if (u == v) continue;
      EXPECT_GT(snap.net.latency_us[u][v], 0.0)
          << "pair " << u << "," << v << " unmeasured";
    }
  }
}

TEST_F(DaemonsTest, BandwidthDaemonFillsAllPairsSymmetrically) {
  BandwidthD daemon("bandwidthd", cluster_, 0, 300.0, 0.05, network_, store_,
                    sim::Rng(5));
  daemon.launch(sim_);
  sim_.run_until(310.0);
  const ClusterSnapshot snap = store_.assemble(sim_.now());
  for (int u = 0; u < cluster_.size(); ++u) {
    for (int v = u + 1; v < cluster_.size(); ++v) {
      EXPECT_GT(snap.net.bandwidth_mbps[u][v], 0.0);
      EXPECT_DOUBLE_EQ(snap.net.bandwidth_mbps[u][v],
                       snap.net.bandwidth_mbps[v][u]);
      EXPECT_DOUBLE_EQ(snap.net.peak_mbps[u][v], 1000.0);
    }
  }
}

TEST_F(DaemonsTest, ProbeSkipsDeadNodes) {
  cluster_.mutable_node(4).dyn.alive = false;
  LatencyD daemon("latencyd", cluster_, 0, 60.0, 0.05, network_, store_,
                  sim::Rng(6));
  daemon.launch(sim_);
  sim_.run_until(70.0);
  const ClusterSnapshot snap = store_.assemble(sim_.now());
  EXPECT_LT(snap.net.latency_us[4][0], 0.0);  // never measured
  EXPECT_GT(snap.net.latency_us[0][1], 0.0);
}

TEST_F(DaemonsTest, RoundsMustFitInPeriod) {
  EXPECT_THROW(LatencyD("latencyd", cluster_, 0, /*period=*/1.0,
                        /*round_spacing=*/0.5, network_, store_,
                        sim::Rng(7)),
               util::CheckError);
}

TEST_F(DaemonsTest, InvalidDaemonParamsRejected) {
  EXPECT_THROW(LivehostsD("x", cluster_, 99, 5.0, store_), util::CheckError);
  EXPECT_THROW(LivehostsD("x", cluster_, 0, 0.0, store_), util::CheckError);
}

}  // namespace
}  // namespace nlarm::monitor
