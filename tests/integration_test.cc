// End-to-end tests: workload → monitor → allocator → execution, wired the
// way the bench harnesses use the system.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "apps/minimd.h"
#include "apps/synthetic.h"
#include "core/broker.h"
#include "exp/experiment.h"
#include "exp/report.h"
#include "mpisim/placement.h"
#include "util/check.h"

namespace nlarm::exp {
namespace {

Testbed::Options small_options(std::uint64_t seed,
                               workload::ScenarioKind kind =
                                   workload::ScenarioKind::kSharedLab) {
  Testbed::Options options;
  options.seed = seed;
  options.scenario = kind;
  options.cluster.fast_nodes = 8;
  options.cluster.slow_nodes = 4;
  options.cluster.switches = 3;
  options.warmup_seconds = 700.0;
  return options;
}

TEST(TestbedTest, WarmupPopulatesMonitor) {
  auto testbed = Testbed::make(small_options(1));
  const monitor::ClusterSnapshot snap = testbed->snapshot();
  EXPECT_EQ(snap.usable_nodes().size(), 12u);
  // Latency measured for every live pair after warm-up (period 60 s).
  EXPECT_GT(snap.net.latency_us[0][11], 0.0);
  // Bandwidth daemon runs at 300 s; one sweep fits in the warm-up.
  EXPECT_GT(snap.net.bandwidth_mbps[0][11], 0.0);
  // Node records carry running means.
  EXPECT_GE(snap.nodes[5].cpu_load_avg.fifteen_min, 0.0);
}

TEST(TestbedTest, MonitoredViewTracksGroundTruth) {
  auto testbed = Testbed::make(small_options(2));
  const monitor::ClusterSnapshot snap = testbed->snapshot();
  // Monitored instantaneous load should be within noise+staleness of truth.
  double total_truth = 0.0;
  double total_seen = 0.0;
  for (cluster::NodeId n = 0; n < testbed->cluster().size(); ++n) {
    total_truth += testbed->cluster().node(n).dyn.cpu_load;
    total_seen += snap.nodes[static_cast<std::size_t>(n)].cpu_load;
  }
  EXPECT_NEAR(total_seen, total_truth, std::max(2.0, total_truth * 0.5));
}

TEST(IntegrationTest, PolicyComparisonRunsAllPolicies) {
  auto testbed = Testbed::make(small_options(3));
  ComparisonConfig config;
  config.make_app = [](int nranks) {
    return apps::make_comm_bound_profile(nranks, 20);
  };
  config.nprocs = 8;
  config.ppn = 4;
  config.job = core::JobWeights::balanced();
  config.repetitions = 2;
  const ComparisonResult result = run_policy_comparison(*testbed, config);
  ASSERT_EQ(result.runs.size(), static_cast<std::size_t>(kPolicyCount));
  for (int p = 0; p < kPolicyCount; ++p) {
    ASSERT_EQ(result.runs[static_cast<std::size_t>(p)].size(), 2u);
    for (const PolicyRun& run : result.runs[static_cast<std::size_t>(p)]) {
      EXPECT_GT(run.execution.total_s, 0.0);
      EXPECT_EQ(std::accumulate(run.allocation.procs_per_node.begin(),
                                run.allocation.procs_per_node.end(), 0),
                8);
    }
  }
}

TEST(IntegrationTest, OursBeatsRandomOnHotspotCluster) {
  // On a loaded, congested cluster the paper's allocator should win against
  // random allocation on average. Pool a few seeds to damp variance.
  double ours_total = 0.0;
  double random_total = 0.0;
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    auto testbed =
        Testbed::make(small_options(seed, workload::ScenarioKind::kHotspot));
    ComparisonConfig config;
    config.make_app = [](int nranks) {
      return apps::make_comm_bound_profile(nranks, 15);
    };
    config.nprocs = 12;
    config.ppn = 4;
    config.job = core::JobWeights{0.3, 0.7};
    config.repetitions = 2;
    const ComparisonResult result = run_policy_comparison(*testbed, config);
    ours_total += result.mean_time(Policy::kNetworkLoadAware);
    random_total += result.mean_time(Policy::kRandom);
  }
  EXPECT_LT(ours_total, random_total);
}

TEST(IntegrationTest, GainStatsComputedOverPairs) {
  const std::vector<double> ours{1.0, 2.0};
  const std::vector<double> other{2.0, 2.0};
  const GainStats stats = gains_over(ours, other);
  EXPECT_DOUBLE_EQ(stats.average, 0.25);
  EXPECT_DOUBLE_EQ(stats.median, 0.25);
  EXPECT_DOUBLE_EQ(stats.max, 0.5);
  EXPECT_EQ(stats.samples, 2u);
  EXPECT_THROW(gains_over({1.0}, {1.0, 2.0}), util::CheckError);
}

TEST(IntegrationTest, BrokerWaitsOnHeavyCluster) {
  auto testbed =
      Testbed::make(small_options(21, workload::ScenarioKind::kHeavy));
  core::NetworkLoadAwareAllocator allocator;
  core::ResourceBroker broker(allocator);
  core::AllocationRequest request;
  request.nprocs = 8;
  request.ppn = 4;
  request.job = core::JobWeights::balanced();
  const core::BrokerDecision decision =
      broker.decide(testbed->snapshot(), request);
  EXPECT_EQ(decision.action, core::BrokerDecision::Action::kWait);
}

TEST(IntegrationTest, BrokerAllocatesOnQuietCluster) {
  auto testbed =
      Testbed::make(small_options(22, workload::ScenarioKind::kQuiet));
  core::NetworkLoadAwareAllocator allocator;
  core::ResourceBroker broker(allocator);
  core::AllocationRequest request;
  request.nprocs = 8;
  request.ppn = 4;
  request.job = core::JobWeights::balanced();
  const core::BrokerDecision decision =
      broker.decide(testbed->snapshot(), request);
  EXPECT_EQ(decision.action, core::BrokerDecision::Action::kAllocate);
}

TEST(IntegrationTest, AllocatorWorksOnMonitoredData) {
  auto testbed = Testbed::make(small_options(30));
  core::NetworkLoadAwareAllocator allocator;
  core::AllocationRequest request;
  request.nprocs = 16;
  request.ppn = 4;
  request.job = core::JobWeights::minimd_defaults();
  const core::Allocation alloc =
      allocator.allocate(testbed->snapshot(), request);
  EXPECT_EQ(alloc.nodes.size(), 4u);
  std::set<cluster::NodeId> unique(alloc.nodes.begin(), alloc.nodes.end());
  EXPECT_EQ(unique.size(), 4u);
  // Execute the job on the chosen nodes end-to-end.
  apps::MiniMdParams params;
  params.size = 8;
  params.nranks = 16;
  const auto app = apps::make_minimd_profile(params);
  const auto placement = mpisim::Placement::from_allocation(alloc);
  const auto result = testbed->runtime().run(testbed->sim(), app, placement);
  EXPECT_GT(result.total_s, 0.0);
  EXPECT_GT(result.comm_s, 0.0);
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  auto run_once = [](std::uint64_t seed) {
    auto testbed = Testbed::make(small_options(seed));
    ComparisonConfig config;
    config.make_app = [](int nranks) {
      return apps::make_comm_bound_profile(nranks, 10);
    };
    config.nprocs = 8;
    config.repetitions = 1;
    const ComparisonResult result = run_policy_comparison(*testbed, config);
    return result.mean_time(Policy::kNetworkLoadAware);
  };
  EXPECT_DOUBLE_EQ(run_once(77), run_once(77));
  EXPECT_NE(run_once(77), run_once(78));
}

TEST(ReportTest, GainTableRenders) {
  std::ostringstream out;
  GainRow row;
  row.baseline = "Random";
  row.measured = GainStats{0.45, 0.5, 0.9, 10};
  row.paper_average = 0.499;
  row.paper_median = 0.507;
  row.paper_max = 0.878;
  print_gain_table(out, "Table 2", {row});
  EXPECT_NE(out.str().find("Random"), std::string::npos);
  EXPECT_NE(out.str().find("45.0%"), std::string::npos);
  EXPECT_NE(out.str().find("49.9%"), std::string::npos);
}

TEST(ReportTest, ShapeChecksCounted) {
  std::ostringstream out;
  print_shape_checks(out, {check("a", true, "ok"), check("b", false)});
  EXPECT_NE(out.str().find("[PASS] a"), std::string::npos);
  EXPECT_NE(out.str().find("[FAIL] b"), std::string::npos);
  EXPECT_NE(out.str().find("1/2"), std::string::npos);
}

}  // namespace
}  // namespace nlarm::exp
