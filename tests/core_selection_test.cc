#include "core/selection.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace nlarm::core {
namespace {

Candidate make_candidate(std::size_t start, std::vector<std::size_t> members) {
  Candidate c;
  c.start_index = start;
  c.members = std::move(members);
  c.procs.assign(c.members.size(), 4);
  c.total_procs = static_cast<int>(c.members.size()) * 4;
  return c;
}

std::vector<std::vector<double>> uniform_nl(std::size_t n, double value) {
  std::vector<std::vector<double>> nl(n, std::vector<double>(n, value));
  for (std::size_t i = 0; i < n; ++i) nl[i][i] = 0.0;
  return nl;
}

TEST(SelectionTest, PicksLowestComputeCostWhenNetworkUniform) {
  const std::vector<double> cl{0.1, 0.9, 0.2, 0.8};
  const auto nl = uniform_nl(4, 0.1);
  std::vector<Candidate> candidates;
  candidates.push_back(make_candidate(0, {0, 2}));  // light pair
  candidates.push_back(make_candidate(1, {1, 3}));  // heavy pair
  const SelectionResult result = select_best_candidate(
      std::move(candidates), cl, nl, JobWeights::balanced());
  EXPECT_EQ(result.best_index, 0u);
}

TEST(SelectionTest, PicksLowestNetworkCostWhenComputeUniform) {
  const std::vector<double> cl{0.5, 0.5, 0.5, 0.5};
  auto nl = uniform_nl(4, 0.1);
  nl[1][3] = nl[3][1] = 0.9;  // candidate {1,3} has a bad link
  std::vector<Candidate> candidates;
  candidates.push_back(make_candidate(0, {0, 2}));
  candidates.push_back(make_candidate(1, {1, 3}));
  const SelectionResult result = select_best_candidate(
      std::move(candidates), cl, nl, JobWeights::balanced());
  EXPECT_EQ(result.best_index, 0u);
}

TEST(SelectionTest, AlphaBetaTradeOff) {
  // Candidate A: low compute, high network. Candidate B: the reverse.
  const std::vector<double> cl{0.1, 0.1, 0.9, 0.9};
  auto nl = uniform_nl(4, 0.0);
  nl[0][1] = nl[1][0] = 0.8;   // A's edge is congested
  nl[2][3] = nl[3][2] = 0.05;  // B's edge is clean
  std::vector<Candidate> candidates;
  candidates.push_back(make_candidate(0, {0, 1}));
  candidates.push_back(make_candidate(2, {2, 3}));

  auto pick = [&](JobWeights job) {
    std::vector<Candidate> copy = candidates;
    return select_best_candidate(std::move(copy), cl, nl, job).best_index;
  };
  EXPECT_EQ(pick(JobWeights{0.9, 0.1}), 0u);  // compute-heavy → A
  EXPECT_EQ(pick(JobWeights{0.1, 0.9}), 1u);  // comm-heavy → B
}

TEST(SelectionTest, CostsComputedCorrectly) {
  const std::vector<double> cl{1.0, 2.0, 4.0};
  auto nl = uniform_nl(3, 0.0);
  nl[0][1] = nl[1][0] = 3.0;
  nl[0][2] = nl[2][0] = 5.0;
  nl[1][2] = nl[2][1] = 7.0;
  std::vector<Candidate> candidates;
  candidates.push_back(make_candidate(0, {0, 1, 2}));
  const SelectionResult result = select_best_candidate(
      std::move(candidates), cl, nl, JobWeights::balanced());
  const ScoredCandidate& scored = result.scored[0];
  EXPECT_DOUBLE_EQ(scored.compute_cost, 7.0);
  EXPECT_DOUBLE_EQ(scored.network_cost, 15.0);
  // Single candidate: normalized costs are 1, total = α + β = 1.
  EXPECT_NEAR(scored.total_cost, 1.0, 1e-12);
}

TEST(SelectionTest, NormalizationAcrossCandidates) {
  const std::vector<double> cl{1.0, 3.0};
  const auto nl = uniform_nl(2, 0.0);
  std::vector<Candidate> candidates;
  candidates.push_back(make_candidate(0, {0}));
  candidates.push_back(make_candidate(1, {1}));
  const SelectionResult result = select_best_candidate(
      std::move(candidates), cl, nl, JobWeights{1.0, 0.0});
  EXPECT_DOUBLE_EQ(result.scored[0].total_cost, 0.25);
  EXPECT_DOUBLE_EQ(result.scored[1].total_cost, 0.75);
  EXPECT_EQ(result.best_index, 0u);
}

TEST(SelectionTest, SingleNodeCandidateHasZeroNetworkCost) {
  const std::vector<double> cl{0.4};
  const auto nl = uniform_nl(1, 0.0);
  std::vector<Candidate> candidates;
  candidates.push_back(make_candidate(0, {0}));
  const SelectionResult result = select_best_candidate(
      std::move(candidates), cl, nl, JobWeights::balanced());
  EXPECT_DOUBLE_EQ(result.scored[0].network_cost, 0.0);
}

TEST(SelectionTest, EmptyCandidateListRejected) {
  const std::vector<double> cl{0.1};
  const auto nl = uniform_nl(1, 0.0);
  EXPECT_THROW(
      select_best_candidate({}, cl, nl, JobWeights::balanced()),
      util::CheckError);
}

TEST(SelectionTest, FirstMinimumWinsOnTies) {
  const std::vector<double> cl{0.5, 0.5};
  const auto nl = uniform_nl(2, 0.0);
  std::vector<Candidate> candidates;
  candidates.push_back(make_candidate(0, {0}));
  candidates.push_back(make_candidate(1, {1}));
  const SelectionResult result = select_best_candidate(
      std::move(candidates), cl, nl, JobWeights::balanced());
  EXPECT_EQ(result.best_index, 0u);
}

}  // namespace
}  // namespace nlarm::core
