// AuditRecord JSON round-trip and AuditLog JSONL output.
#include <gtest/gtest.h>

#include <string>

#include "obs/audit.h"
#include "util/check.h"

namespace nlarm::obs {
namespace {

AuditRecord full_record() {
  AuditRecord r;
  r.nprocs = 32;
  r.ppn = 4;
  r.alpha = 0.3;
  r.beta = 0.7;
  r.snapshot_version = 12345;
  r.snapshot_time = 1500.5;
  r.snapshot_nodes = 60;
  r.usable_nodes = 58;
  r.action = "allocate";
  r.reason = "cluster healthy: load/core 0.25 \"quoted\" \\ under limit";
  r.cluster_load_per_core = 0.25;
  r.effective_capacity = 480;
  r.aggregates_cache_hit = true;
  r.policy = "network-load-aware";
  r.nodes = {3, 7, 11};
  r.hostnames = {"node03", "node07", "node11"};
  r.procs_per_node = {12, 12, 8};
  r.compute_cost = 1.5;
  r.network_cost = 2.25;
  r.total_cost = 2.0;
  r.prepared_cache_hit = true;
  r.candidates_generated = 58;
  r.gate_seconds = 0.0001220703125;
  r.prepare_seconds = 0.000244140625;
  r.generate_seconds = 0.00048828125;
  r.select_seconds = 0.0009765625;
  r.total_seconds = 0.001953125;
  return r;
}

TEST(AuditRecord, RoundTripPreservesEveryField) {
  const AuditRecord r = full_record();
  const AuditRecord back = AuditRecord::from_json(r.to_json());

  EXPECT_EQ(back.nprocs, r.nprocs);
  EXPECT_EQ(back.ppn, r.ppn);
  EXPECT_DOUBLE_EQ(back.alpha, r.alpha);
  EXPECT_DOUBLE_EQ(back.beta, r.beta);
  EXPECT_EQ(back.snapshot_version, r.snapshot_version);
  EXPECT_DOUBLE_EQ(back.snapshot_time, r.snapshot_time);
  EXPECT_EQ(back.snapshot_nodes, r.snapshot_nodes);
  EXPECT_EQ(back.usable_nodes, r.usable_nodes);
  EXPECT_EQ(back.action, r.action);
  EXPECT_EQ(back.reason, r.reason);  // quotes and backslash survive
  EXPECT_DOUBLE_EQ(back.cluster_load_per_core, r.cluster_load_per_core);
  EXPECT_EQ(back.effective_capacity, r.effective_capacity);
  EXPECT_EQ(back.aggregates_cache_hit, r.aggregates_cache_hit);
  EXPECT_EQ(back.policy, r.policy);
  EXPECT_EQ(back.nodes, r.nodes);
  EXPECT_EQ(back.hostnames, r.hostnames);
  EXPECT_EQ(back.procs_per_node, r.procs_per_node);
  EXPECT_DOUBLE_EQ(back.compute_cost, r.compute_cost);
  EXPECT_DOUBLE_EQ(back.network_cost, r.network_cost);
  EXPECT_DOUBLE_EQ(back.total_cost, r.total_cost);
  EXPECT_EQ(back.prepared_cache_hit, r.prepared_cache_hit);
  EXPECT_EQ(back.candidates_generated, r.candidates_generated);
  EXPECT_DOUBLE_EQ(back.gate_seconds, r.gate_seconds);
  EXPECT_DOUBLE_EQ(back.prepare_seconds, r.prepare_seconds);
  EXPECT_DOUBLE_EQ(back.generate_seconds, r.generate_seconds);
  EXPECT_DOUBLE_EQ(back.select_seconds, r.select_seconds);
  EXPECT_DOUBLE_EQ(back.total_seconds, r.total_seconds);
}

TEST(AuditRecord, ToJsonIsSingleLine) {
  const std::string json = full_record().to_json();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(AuditRecord, DefaultRecordRoundTrips) {
  const AuditRecord back = AuditRecord::from_json(AuditRecord{}.to_json());
  EXPECT_EQ(back.nprocs, 0);
  EXPECT_TRUE(back.action.empty());
  EXPECT_TRUE(back.nodes.empty());
  EXPECT_FALSE(back.prepared_cache_hit);
}

TEST(AuditRecord, MalformedJsonThrows) {
  EXPECT_THROW(AuditRecord::from_json("{"), util::CheckError);
  EXPECT_THROW(AuditRecord::from_json("not json"), util::CheckError);
  EXPECT_THROW(AuditRecord::from_json("{\"nprocs\": }"), util::CheckError);
}

TEST(AuditLog, JsonlOneLinePerRecord) {
  AuditLog log;
  log.append(full_record());
  AuditRecord wait;
  wait.action = "wait";
  wait.reason = "cluster load 0.9/core exceeds 0.5";
  log.append(wait);

  EXPECT_EQ(log.records().size(), 2u);
  const std::string jsonl = log.jsonl();
  int lines = 0;
  for (char ch : jsonl) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 2);

  // Each line parses back on its own.
  const auto split = jsonl.find('\n');
  const AuditRecord first = AuditRecord::from_json(jsonl.substr(0, split));
  const AuditRecord second = AuditRecord::from_json(
      jsonl.substr(split + 1, jsonl.size() - split - 2));
  EXPECT_EQ(first.action, "allocate");
  EXPECT_EQ(second.action, "wait");
}

}  // namespace
}  // namespace nlarm::obs
