#include "util/table.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace nlarm::util {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("name"), std::string::npos);
  EXPECT_NE(rendered.find("longer"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(rendered.find("---"), std::string::npos);
}

TEST(TextTableTest, NumericRowHelper) {
  TextTable table({"policy", "gain"});
  table.add_row("random", {0.499}, 3);
  EXPECT_NE(table.render().find("0.499"), std::string::npos);
}

TEST(TextTableTest, RejectsWidthMismatch) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), CheckError);
  EXPECT_THROW(table.add_row("label", {1.0, 2.0}), CheckError);
}

TEST(TextTableTest, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), CheckError);
}

TEST(ShadeCharTest, MonotoneRamp) {
  EXPECT_EQ(shade_char(0.0), ' ');
  EXPECT_EQ(shade_char(1.0), '@');
  // Mid values fall strictly inside the ramp.
  const char mid = shade_char(0.5);
  EXPECT_NE(mid, ' ');
  EXPECT_NE(mid, '@');
}

TEST(ShadeCharTest, ClampsOutOfRange) {
  EXPECT_EQ(shade_char(-3.0), ' ');
  EXPECT_EQ(shade_char(7.0), '@');
}

TEST(HeatmapTest, RendersSquareMatrix) {
  const std::vector<std::vector<double>> m{{0.0, 1.0}, {1.0, 0.0}};
  const std::string rendered = render_heatmap(m);
  // Two rows of cells plus a scale line.
  EXPECT_NE(rendered.find("scale:"), std::string::npos);
  EXPECT_NE(rendered.find("@@"), std::string::npos);
}

TEST(HeatmapTest, InvertFlipsShades) {
  const std::vector<std::vector<double>> m{{0.0, 1.0}, {1.0, 0.0}};
  HeatmapOptions options;
  options.invert = true;
  const std::string inverted = render_heatmap(m, options);
  const std::string normal = render_heatmap(m);
  EXPECT_NE(inverted, normal);
}

TEST(HeatmapTest, RejectsRaggedMatrix) {
  const std::vector<std::vector<double>> m{{0.0, 1.0}, {1.0}};
  EXPECT_THROW(render_heatmap(m), CheckError);
}

TEST(HeatmapTest, LabelsMustMatchSize) {
  const std::vector<std::vector<double>> m{{0.0}};
  HeatmapOptions options;
  options.labels = {"a", "b"};
  EXPECT_THROW(render_heatmap(m, options), CheckError);
}

TEST(HeatmapTest, LabelsAppear) {
  const std::vector<std::vector<double>> m{{0.0, 0.5}, {0.5, 0.0}};
  HeatmapOptions options;
  options.labels = {"csews1", "csews2"};
  const std::string rendered = render_heatmap(m, options);
  EXPECT_NE(rendered.find("csews1"), std::string::npos);
}

TEST(HeatmapTest, EmptyMatrixHandled) {
  EXPECT_EQ(render_heatmap({}), "(empty heatmap)\n");
}

}  // namespace
}  // namespace nlarm::util
