#include "workload/replay.h"

#include <gtest/gtest.h>

#include <sstream>

#include "net/flows.h"
#include "util/check.h"
#include "util/strings.h"
#include "workload/scenario.h"

namespace nlarm::workload {
namespace {

TEST(ReplayRecorderTest, RecordsAllNodeChannels) {
  cluster::Cluster cluster = cluster::make_uniform_cluster(3);
  TraceRecorder recorder = make_replay_recorder(cluster);
  EXPECT_EQ(recorder.channel_count(), 12u);  // 4 channels × 3 nodes
  cluster.mutable_node(1).dyn.cpu_load = 2.5;
  recorder.sample(0.0);
  EXPECT_DOUBLE_EQ(recorder.series("load_1").values[0], 2.5);
}

TEST(ReplayTest, RoundTripsRecordedDynamics) {
  // Record a scenario-driven cluster, replay onto a fresh one, and compare
  // the dynamics at sample times.
  cluster::Cluster source = cluster::make_uniform_cluster(4, 2);
  net::FlowSet source_flows;
  net::NetworkModel source_net(source, source_flows);
  ScenarioOptions options;
  options.seed = 5;
  Scenario scenario(source, source_flows, source_net, options);
  sim::Simulation sim(5);
  scenario.attach(sim);
  TraceRecorder recorder = make_replay_recorder(source);
  recorder.attach(sim, 10.0);
  sim.run_until(300.0);

  std::ostringstream csv;
  recorder.write_csv(csv);
  std::istringstream in(csv.str());
  auto series = load_trace_csv(in);

  cluster::Cluster target = cluster::make_uniform_cluster(4, 2);
  net::FlowSet target_flows;
  net::NetworkModel target_net(target, target_flows);
  TraceReplay replay(target, target_net, std::move(series));
  EXPECT_DOUBLE_EQ(replay.duration(), 300.0);

  replay.apply(200.0);
  for (cluster::NodeId n = 0; n < 4; ++n) {
    EXPECT_NEAR(target.node(n).dyn.cpu_load,
                recorder.series(util::format("load_%d", n)).value_at(200.0),
                1e-9);
    EXPECT_NEAR(target.node(n).dyn.net_flow_mbps,
                recorder.series(util::format("flow_%d", n)).value_at(200.0),
                1e-9);
  }
  // The replayed flows load the target network's uplinks.
  double background = 0.0;
  for (cluster::NodeId n = 0; n < 4; ++n) {
    background += target_net.uplink_background_mbps(n);
  }
  double recorded = 0.0;
  for (cluster::NodeId n = 0; n < 4; ++n) {
    recorded += recorder.series(util::format("flow_%d", n)).value_at(200.0);
  }
  EXPECT_NEAR(background, recorded, 1e-9);
}

TEST(ReplayTest, AttachDrivesClusterOverTime) {
  cluster::Cluster source = cluster::make_uniform_cluster(2);
  TraceRecorder recorder = make_replay_recorder(source);
  source.mutable_node(0).dyn.cpu_load = 1.0;
  recorder.sample(0.0);
  source.mutable_node(0).dyn.cpu_load = 9.0;
  recorder.sample(100.0);

  std::ostringstream csv;
  recorder.write_csv(csv);
  std::istringstream in(csv.str());

  cluster::Cluster target = cluster::make_uniform_cluster(2);
  net::FlowSet flows;
  net::NetworkModel network(target, flows);
  TraceReplay replay(target, network, load_trace_csv(in));
  sim::Simulation sim(1);
  replay.attach(sim, 5.0);
  sim.run_until(50.0);
  EXPECT_DOUBLE_EQ(target.node(0).dyn.cpu_load, 1.0);
  sim.run_until(150.0);
  EXPECT_DOUBLE_EQ(target.node(0).dyn.cpu_load, 9.0);
}

TEST(ReplayTest, MissingChannelRejected) {
  cluster::Cluster target = cluster::make_uniform_cluster(2);
  net::FlowSet flows;
  net::NetworkModel network(target, flows);
  TimeSeries only_load;
  only_load.name = "load_0";
  only_load.times = {0.0};
  only_load.values = {1.0};
  EXPECT_THROW(TraceReplay(target, network, {only_load}), util::CheckError);
}

TEST(ReplayTest, ClampsOutOfRangeValues) {
  cluster::Cluster target = cluster::make_uniform_cluster(1);
  net::FlowSet flows;
  net::NetworkModel network(target, flows);
  std::vector<TimeSeries> series;
  auto add = [&](const std::string& name, double value) {
    TimeSeries s;
    s.name = name;
    s.times = {0.0};
    s.values = {value};
    series.push_back(std::move(s));
  };
  add("load_0", -5.0);
  add("util_0", 3.0);
  add("mem_0", 99.0);
  add("flow_0", -1.0);
  TraceReplay replay(target, network, std::move(series));
  replay.apply(0.0);
  EXPECT_DOUBLE_EQ(target.node(0).dyn.cpu_load, 0.0);
  EXPECT_DOUBLE_EQ(target.node(0).dyn.cpu_util, 1.0);
  EXPECT_DOUBLE_EQ(target.node(0).dyn.mem_used_gb, 16.0);
  EXPECT_DOUBLE_EQ(target.node(0).dyn.net_flow_mbps, 0.0);
}

}  // namespace
}  // namespace nlarm::workload
