#include "core/allocator.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "test_helpers.h"
#include "util/check.h"

namespace nlarm::core {
namespace {

using nlarm::testing::TestNode;
using nlarm::testing::idle_nodes;
using nlarm::testing::make_snapshot;
using nlarm::testing::set_pair;

AllocationRequest request_for(int nprocs, int ppn = 4) {
  AllocationRequest req;
  req.nprocs = nprocs;
  req.ppn = ppn;
  req.job = JobWeights::balanced();
  return req;
}

TEST(AllocatorTest, AvoidsLoadedNodes) {
  std::vector<TestNode> nodes = idle_nodes(6);
  nodes[0].cpu_load = 8.0;
  nodes[3].cpu_load = 6.0;
  auto snap = make_snapshot(nodes);
  NetworkLoadAwareAllocator allocator;
  const Allocation alloc = allocator.allocate(snap, request_for(8, 4));
  ASSERT_EQ(alloc.nodes.size(), 2u);
  for (cluster::NodeId id : alloc.nodes) {
    EXPECT_NE(id, 0);
    EXPECT_NE(id, 3);
  }
}

TEST(AllocatorTest, AvoidsCongestedPairs) {
  auto snap = make_snapshot(idle_nodes(4), 100.0, 950.0, 1000.0);
  // Node 3 has terrible connectivity to everyone.
  for (int other = 0; other < 3; ++other) {
    set_pair(snap, 3, other, 800.0, 100.0);
  }
  NetworkLoadAwareAllocator allocator;
  const Allocation alloc = allocator.allocate(snap, request_for(12, 4));
  ASSERT_EQ(alloc.nodes.size(), 3u);
  for (cluster::NodeId id : alloc.nodes) {
    EXPECT_NE(id, 3);
  }
}

TEST(AllocatorTest, TradesLoadForConnectivity) {
  // The paper's §5.3 narrative: a slightly-loaded node with excellent
  // connectivity beats an idle node behind a congested link.
  std::vector<TestNode> nodes = idle_nodes(3);
  nodes[1].cpu_load = 1.0;  // slightly loaded, well connected
  auto snap = make_snapshot(nodes, 100.0, 950.0, 1000.0);
  set_pair(snap, 0, 2, 700.0, 150.0);  // idle node 2 is poorly connected
  set_pair(snap, 1, 2, 700.0, 150.0);
  NetworkLoadAwareAllocator allocator;
  AllocationRequest req = request_for(8, 4);
  req.job = JobWeights{0.3, 0.7};  // communication-heavy
  const Allocation alloc = allocator.allocate(snap, req);
  const std::set<cluster::NodeId> chosen(alloc.nodes.begin(),
                                         alloc.nodes.end());
  EXPECT_TRUE(chosen.count(0));
  EXPECT_TRUE(chosen.count(1));
  EXPECT_FALSE(chosen.count(2));
}

TEST(AllocatorTest, ProcsSumToRequest) {
  auto snap = make_snapshot(idle_nodes(8));
  NetworkLoadAwareAllocator allocator;
  for (int n : {1, 4, 7, 16, 32}) {
    const Allocation alloc = allocator.allocate(snap, request_for(n, 4));
    EXPECT_EQ(std::accumulate(alloc.procs_per_node.begin(),
                              alloc.procs_per_node.end(), 0),
              n);
  }
}

TEST(AllocatorTest, NodesAreDistinct) {
  auto snap = make_snapshot(idle_nodes(8));
  NetworkLoadAwareAllocator allocator;
  const Allocation alloc = allocator.allocate(snap, request_for(16, 4));
  std::set<cluster::NodeId> unique(alloc.nodes.begin(), alloc.nodes.end());
  EXPECT_EQ(unique.size(), alloc.nodes.size());
}

TEST(AllocatorTest, SkipsDeadAndUnmonitoredNodes) {
  std::vector<TestNode> nodes = idle_nodes(5);
  nodes[1].live = false;
  auto snap = make_snapshot(nodes);
  snap.nodes[2].valid = false;  // no NodeStateD record yet
  NetworkLoadAwareAllocator allocator;
  const Allocation alloc = allocator.allocate(snap, request_for(12, 4));
  for (cluster::NodeId id : alloc.nodes) {
    EXPECT_NE(id, 1);
    EXPECT_NE(id, 2);
  }
}

TEST(AllocatorTest, NoUsableNodesThrows) {
  std::vector<TestNode> nodes = idle_nodes(2);
  nodes[0].live = false;
  nodes[1].live = false;
  auto snap = make_snapshot(nodes);
  NetworkLoadAwareAllocator allocator;
  EXPECT_THROW(allocator.allocate(snap, request_for(4)), util::CheckError);
}

TEST(AllocatorTest, Deterministic) {
  std::vector<TestNode> nodes = idle_nodes(10);
  for (int i = 0; i < 10; ++i) {
    nodes[static_cast<std::size_t>(i)].cpu_load = (i * 7) % 5;
  }
  auto snap = make_snapshot(nodes);
  NetworkLoadAwareAllocator a;
  NetworkLoadAwareAllocator b;
  const Allocation alloc_a = a.allocate(snap, request_for(16, 4));
  const Allocation alloc_b = b.allocate(snap, request_for(16, 4));
  EXPECT_EQ(alloc_a.nodes, alloc_b.nodes);
  EXPECT_EQ(alloc_a.procs_per_node, alloc_b.procs_per_node);
}

TEST(AllocatorTest, DiagnosticsAnnotated) {
  std::vector<TestNode> nodes = idle_nodes(4);
  nodes[0].cpu_load = 2.0;
  nodes[1].cpu_load = 2.0;
  auto snap = make_snapshot(nodes, 150.0, 900.0, 1000.0);
  NetworkLoadAwareAllocator allocator;
  const Allocation alloc = allocator.allocate(snap, request_for(8, 4));
  EXPECT_GT(alloc.avg_latency_us, 0.0);
  EXPECT_NEAR(alloc.avg_bw_complement_mbps, 100.0, 1e-9);
  EXPECT_GE(alloc.avg_cpu_load, 0.0);
  EXPECT_GT(alloc.total_cost, 0.0);
  EXPECT_EQ(alloc.policy, "network-load-aware");
}

TEST(AllocatorTest, LastSelectionExposed) {
  auto snap = make_snapshot(idle_nodes(5));
  NetworkLoadAwareAllocator allocator;
  allocator.allocate(snap, request_for(8, 4));
  EXPECT_EQ(allocator.last_selection().scored.size(), 5u);
  EXPECT_EQ(allocator.last_node_set().size(), 5u);
}

TEST(AllocatorTest, EffectiveCapacityUsedWithoutPpn) {
  // Two idle 8-core nodes: a 16-proc request with ppn=0 fits exactly.
  auto snap = make_snapshot(idle_nodes(2));
  NetworkLoadAwareAllocator allocator;
  const Allocation alloc = allocator.allocate(snap, request_for(16, 0));
  EXPECT_EQ(alloc.nodes.size(), 2u);
  EXPECT_EQ(alloc.procs_per_node, (std::vector<int>{8, 8}));
}

TEST(AllocatorTest, OversubscriptionRoundRobin) {
  auto snap = make_snapshot(idle_nodes(2));
  NetworkLoadAwareAllocator allocator;
  const Allocation alloc = allocator.allocate(snap, request_for(20, 0));
  EXPECT_EQ(std::accumulate(alloc.procs_per_node.begin(),
                            alloc.procs_per_node.end(), 0),
            20);
  EXPECT_EQ(alloc.procs_per_node, (std::vector<int>{10, 10}));
}

TEST(AllocatorTest, HostfileRendered) {
  auto snap = make_snapshot(idle_nodes(3));
  NetworkLoadAwareAllocator allocator;
  const Allocation alloc = allocator.allocate(snap, request_for(8, 4));
  const std::string hostfile = to_hostfile(alloc, snap);
  EXPECT_NE(hostfile.find(":4"), std::string::npos);
  EXPECT_NE(hostfile.find("csews"), std::string::npos);
}

TEST(AllocationRequestTest, Validation) {
  AllocationRequest req;
  req.nprocs = 0;
  EXPECT_THROW(req.validate(), util::CheckError);
  req.nprocs = 4;
  req.ppn = -1;
  EXPECT_THROW(req.validate(), util::CheckError);
  req.ppn = 0;
  req.job = JobWeights{0.8, 0.8};
  EXPECT_THROW(req.validate(), util::CheckError);
}

}  // namespace
}  // namespace nlarm::core
