// Delta append-log (`.nlarmd`): O(dirty) on-disk ingest. Replay must equal
// the live store bit for bit, torn tails must be ignored and healed by
// compaction, the compaction policy must bound the log, and a broker
// following the log must decide exactly like one fed from the live store.
#include "monitor/delta_log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/allocator.h"
#include "core/broker.h"
#include "core/prepared.h"
#include "monitor/persistence.h"
#include "monitor/store.h"
#include "test_helpers.h"
#include "util/check.h"

namespace nlarm::monitor {
namespace {

std::string log_path(const char* name) {
  const std::string path = ::testing::TempDir() + "/" + name +
                           std::string(kDeltaLogExtension);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

// A store with every record written once (so snapshots are fully valid).
std::unique_ptr<MonitorStore> seeded_store(int n, double now = 10.0) {
  auto store = std::make_unique<MonitorStore>(n);
  store->write_livehosts(now, std::vector<bool>(static_cast<std::size_t>(n),
                                                true));
  for (int i = 0; i < n; ++i) {
    NodeSnapshot record;
    record.spec.id = i;
    record.spec.hostname = "host" + std::to_string(i);
    record.spec.core_count = 8;
    record.spec.cpu_freq_ghz = 3.0;
    record.spec.total_mem_gb = 16.0;
    record.cpu_load = 0.1 * i;
    store->write_node_record(now, record);
  }
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      store->write_latency(now, u, v, 100.0 + u + v, 101.0 + u + v);
      store->write_latency(now, v, u, 100.0 + u + v, 101.0 + u + v);
      store->write_bandwidth(now, u, v, 900.0 - u - v, 941.0);
      store->write_bandwidth(now, v, u, 900.0 - u - v, 941.0);
    }
  }
  return store;
}

void expect_equal_state(const ClusterSnapshot& a, const ClusterSnapshot& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.version, b.version);
  EXPECT_DOUBLE_EQ(a.time, b.time);
  EXPECT_EQ(a.livehosts, b.livehosts);
  for (int i = 0; i < a.size(); ++i) {
    const auto& x = a.nodes[static_cast<std::size_t>(i)];
    const auto& y = b.nodes[static_cast<std::size_t>(i)];
    EXPECT_EQ(x.spec.hostname, y.spec.hostname);
    EXPECT_EQ(x.valid, y.valid);
    EXPECT_EQ(x.cpu_load, y.cpu_load) << "node " << i;
    EXPECT_EQ(x.sample_time, y.sample_time);
  }
  EXPECT_EQ(a.net.latency_us, b.net.latency_us);
  EXPECT_EQ(a.net.latency_5min_us, b.net.latency_5min_us);
  EXPECT_EQ(a.net.bandwidth_mbps, b.net.bandwidth_mbps);
  EXPECT_EQ(a.net.peak_mbps, b.net.peak_mbps);
}

TEST(DeltaLogTest, ReplayEqualsLiveStore) {
  const std::string path = log_path("replay_equals");
  auto store = seeded_store(5);
  DeltaLogWriter writer(path);

  double now = 10.0;
  ASSERT_TRUE(writer.append(store->assemble(now), store->drain_delta()));
  for (int epoch = 0; epoch < 7; ++epoch) {
    now += 3.0;
    NodeSnapshot record = store->node_record(epoch % 5);
    record.cpu_load += 0.5;
    store->write_node_record(now, record);
    store->write_latency(now, epoch % 5, (epoch + 1) % 5, 60.0 + epoch, 61.0);
    ASSERT_TRUE(writer.append(store->assemble(now), store->drain_delta()));
  }

  expect_equal_state(replay_delta_log(path), store->assemble(now));
  std::remove(path.c_str());
}

TEST(DeltaLogTest, ReaderFollowsIncrementally) {
  const std::string path = log_path("follows");
  auto store = seeded_store(4);
  DeltaLogWriter writer(path);
  DeltaLogReader reader(path);

  ASSERT_TRUE(writer.append(store->assemble(10.0), store->drain_delta()));
  EXPECT_EQ(reader.poll(), 1);
  const SnapshotDelta first = reader.drain_delta();
  EXPECT_TRUE(first.full);  // a full frame can only promise a rebuild
  const std::uint64_t v1 = reader.snapshot().version;

  NodeSnapshot record = store->node_record(2);
  record.cpu_load = 9.5;
  store->write_node_record(13.0, record);
  store->write_latency(13.0, 1, 3, 42.0, 43.0);
  store->write_latency(13.0, 3, 1, 42.0, 43.0);
  ASSERT_TRUE(writer.append(store->assemble(13.0), store->drain_delta()));

  EXPECT_EQ(reader.poll(), 1);
  const SnapshotDelta second = reader.drain_delta();
  EXPECT_FALSE(second.requires_full_rebuild());
  EXPECT_EQ(second.base_version, v1);
  EXPECT_EQ(second.version, reader.snapshot().version);
  ASSERT_EQ(second.dirty_nodes.size(), 1u);
  EXPECT_EQ(second.dirty_nodes[0], 2);
  ASSERT_EQ(second.dirty_pairs.size(), 1u);
  EXPECT_EQ(second.dirty_pairs[0], std::make_pair(1, 3));
  expect_equal_state(reader.snapshot(), store->assemble(13.0));

  // Nothing new on disk: poll is a no-op and the drained delta is empty.
  EXPECT_EQ(reader.poll(), 0);
  EXPECT_TRUE(reader.drain_delta().empty());
  std::remove(path.c_str());
}

TEST(DeltaLogTest, SparsePairwiseFullFramesRoundTrip) {
  // A store with only a handful of measured pairs (the tiled monitor's
  // O(G²) probe set) emits sparse-pairwise full/compaction frames; replay
  // must still equal the live store bit for bit, through delta frames too.
  const std::string path = log_path("sparse");
  const int n = 16;
  auto store = std::make_unique<MonitorStore>(n);
  store->write_livehosts(10.0,
                         std::vector<bool>(static_cast<std::size_t>(n), true));
  for (int i = 0; i < n; ++i) {
    NodeSnapshot record;
    record.spec.id = i;
    record.spec.hostname = "host" + std::to_string(i);
    record.spec.core_count = 8;
    record.spec.cpu_freq_ghz = 3.0;
    record.spec.total_mem_gb = 16.0;
    record.cpu_load = 0.1 * i;
    store->write_node_record(10.0, record);
  }
  // Only three measured pairs out of 120.
  for (const auto& [u, v] : {std::pair{0, 9}, {3, 4}, {7, 15}}) {
    store->write_latency(10.0, u, v, 100.0 + u + v, 101.0 + u + v);
    store->write_latency(10.0, v, u, 100.0 + u + v, 101.0 + u + v);
    store->write_bandwidth(10.0, u, v, 900.0 - u - v, 941.0);
    store->write_bandwidth(10.0, v, u, 900.0 - u - v, 941.0);
  }

  DeltaLogWriter writer(path);
  DeltaLogReader reader(path);
  ASSERT_TRUE(writer.append(store->assemble(10.0), store->drain_delta()));
  ASSERT_GT(reader.poll(), 0);
  reader.drain_delta();
  expect_equal_state(reader.snapshot(), store->assemble(10.0));

  // Delta frames on top of the sparse base replay identically too.
  store->write_latency(11.0, 3, 4, 55.0, 56.0);
  store->write_latency(11.0, 4, 3, 55.0, 56.0);
  store->write_bandwidth(11.0, 0, 9, 700.0, 941.0);
  store->write_bandwidth(11.0, 9, 0, 700.0, 941.0);
  ASSERT_TRUE(writer.append(store->assemble(11.0), store->drain_delta()));
  ASSERT_GT(reader.poll(), 0);
  const SnapshotDelta delta = reader.drain_delta();
  EXPECT_FALSE(delta.requires_full_rebuild());
  expect_equal_state(reader.snapshot(), store->assemble(11.0));
}

TEST(DeltaLogTest, LivehostsChangeForcesAFullFrame) {
  const std::string path = log_path("livehosts");
  auto store = seeded_store(3);
  DeltaLogWriter writer(path);
  DeltaLogReader reader(path);
  ASSERT_TRUE(writer.append(store->assemble(10.0), store->drain_delta()));
  reader.poll();
  (void)reader.drain_delta();

  // A liveness flip changes the usable set's shape, so the writer promotes
  // the epoch to a compaction (consumers must fully rebuild regardless).
  store->write_livehosts(12.0, {true, false, true});
  ASSERT_TRUE(writer.append(store->assemble(12.0), store->drain_delta()));
  EXPECT_EQ(writer.compactions(), 2);
  EXPECT_EQ(reader.poll(), 1);
  const SnapshotDelta delta = reader.drain_delta();
  EXPECT_TRUE(delta.full);
  EXPECT_TRUE(delta.requires_full_rebuild());
  EXPECT_FALSE(reader.snapshot().livehosts[1]);
  std::remove(path.c_str());
}

TEST(DeltaLogTest, TornTailIsIgnoredAndHealedByCompaction) {
  const std::string path = log_path("torn_tail");
  auto store = seeded_store(4);
  DeltaLogWriter writer(path);
  DeltaLogReader reader(path);

  ASSERT_TRUE(writer.append(store->assemble(10.0), store->drain_delta()));
  EXPECT_EQ(reader.poll(), 1);
  (void)reader.drain_delta();
  const std::uint64_t good_version = reader.snapshot().version;

  // The next append is torn mid-frame: the call fails, and the reader must
  // stop cleanly at the partial tail without advancing past it.
  NodeSnapshot record = store->node_record(0);
  record.cpu_load = 5.0;
  store->write_node_record(12.0, record);
  arm_torn_snapshot_write();
  EXPECT_FALSE(writer.append(store->assemble(12.0), store->drain_delta()));
  EXPECT_EQ(reader.poll(), 0);
  EXPECT_EQ(reader.snapshot().version, good_version);

  // The writer heals by compacting on the next append; the reader detects
  // the replaced file and replays the fresh full frame.
  record.cpu_load = 6.0;
  store->write_node_record(14.0, record);
  ASSERT_TRUE(writer.append(store->assemble(14.0), store->drain_delta()));
  EXPECT_EQ(writer.compactions(), 2);
  EXPECT_GE(reader.poll(), 1);
  EXPECT_TRUE(reader.drain_delta().full);
  expect_equal_state(reader.snapshot(), store->assemble(14.0));
  std::remove(path.c_str());
}

TEST(DeltaLogTest, CompactionPolicyBoundsTheLog) {
  const std::string path = log_path("compaction");
  auto store = seeded_store(4);
  DeltaLogWriter::Options options;
  options.compact_after_deltas = 2;
  options.compact_bytes_ratio = 1e9;  // only the count trips
  DeltaLogWriter writer(path, options);

  double now = 10.0;
  ASSERT_TRUE(writer.append(store->assemble(now), store->drain_delta()));
  EXPECT_EQ(writer.compactions(), 1);
  for (int epoch = 0; epoch < 6; ++epoch) {
    now += 3.0;
    NodeSnapshot record = store->node_record(epoch % 4);
    record.cpu_load += 0.25;
    store->write_node_record(now, record);
    ASSERT_TRUE(writer.append(store->assemble(now), store->drain_delta()));
  }
  // full, d, d, full(compact), d, d, full(compact): 2 deltas per full.
  EXPECT_EQ(writer.compactions(), 3);
  expect_equal_state(replay_delta_log(path), store->assemble(now));
  std::remove(path.c_str());
}

TEST(DeltaLogTest, GarbageAndMissingLogsAreHandled) {
  const std::string missing = log_path("missing");
  DeltaLogReader reader(missing);
  EXPECT_EQ(reader.poll(), 0);
  EXPECT_FALSE(reader.have_snapshot());
  EXPECT_THROW(replay_delta_log(missing), util::CheckError);

  const std::string garbage = log_path("garbage");
  {
    std::ofstream file(garbage, std::ios::binary);
    file << "this is not a delta log, not even close";
  }
  DeltaLogReader garbage_reader(garbage);
  EXPECT_EQ(garbage_reader.poll(), 0);
  EXPECT_GE(garbage_reader.bad_frames_seen(), 1);
  EXPECT_THROW(replay_delta_log(garbage), util::CheckError);
  std::remove(garbage.c_str());
}

TEST(DeltaLogTest, BrokerIngestsLogIdenticallyToLiveStore) {
  const std::string path = log_path("broker_parity");
  auto store = seeded_store(6);
  DeltaLogWriter writer(path);

  core::AllocationRequest request;
  request.nprocs = 8;
  request.ppn = 2;
  request.job = core::JobWeights{0.3, 0.7};
  const core::RequestProfile profile = core::RequestProfile::of(request);

  core::NetworkLoadAwareAllocator live_alloc;
  core::ResourceBroker live_broker(live_alloc);
  core::NetworkLoadAwareAllocator log_alloc;
  core::ResourceBroker log_broker(log_alloc);
  DeltaLogReader reader(path);

  double now = 10.0;
  for (int epoch = 0; epoch < 5; ++epoch) {
    now += 3.0;
    NodeSnapshot record = store->node_record(epoch % 6);
    record.cpu_load += 0.4;
    store->write_node_record(now, record);
    store->write_latency(now, epoch % 6, (epoch + 2) % 6, 80.0 + epoch, 81.0);
    store->write_latency(now, (epoch + 2) % 6, epoch % 6, 80.0 + epoch, 81.0);

    auto snapshot = std::make_shared<const ClusterSnapshot>(
        store->assemble(now));
    const SnapshotDelta delta = store->drain_delta();
    live_broker.refresh_epoch(snapshot, delta, profile);
    ASSERT_TRUE(writer.append(*snapshot, delta));
    EXPECT_EQ(log_broker.ingest_delta_log(reader, profile), 1);

    const core::BrokerDecision live =
        live_broker.decide(live_broker.pin_epoch(), request);
    const core::BrokerDecision followed =
        log_broker.decide(log_broker.pin_epoch(), request);
    EXPECT_EQ(live.action, followed.action) << "epoch " << epoch;
    EXPECT_EQ(live.allocation.nodes, followed.allocation.nodes);
    EXPECT_EQ(live.allocation.procs_per_node,
              followed.allocation.procs_per_node);
    EXPECT_EQ(live.cluster_load_per_core, followed.cluster_load_per_core);
    EXPECT_EQ(live.effective_capacity, followed.effective_capacity);
  }
  // No new frames: ingest publishes nothing and the epoch stays put.
  const std::uint64_t epoch_before = log_broker.epoch();
  EXPECT_EQ(log_broker.ingest_delta_log(reader, profile), 0);
  EXPECT_EQ(log_broker.epoch(), epoch_before);
  std::remove(path.c_str());
}

TEST(DeltaLogTest, StoreRestoreRehydratesEveryRecord) {
  auto store = seeded_store(4);
  store->write_livehosts(11.0, {true, true, false, true});
  const ClusterSnapshot snap = store->assemble(11.0);

  MonitorStore rebuilt(4);
  rebuilt.restore(snap);
  const ClusterSnapshot out = rebuilt.assemble(snap.time);
  EXPECT_EQ(out.livehosts, snap.livehosts);
  EXPECT_EQ(out.net.latency_us, snap.net.latency_us);
  EXPECT_EQ(out.net.bandwidth_mbps, snap.net.bandwidth_mbps);
  EXPECT_EQ(out.nodes[2].cpu_load, snap.nodes[2].cpu_load);
  // Measured pairs are credited with the snapshot time; the diagonal (and
  // anything never measured) stays "never written".
  EXPECT_EQ(rebuilt.pair_staleness(snap.time, 0, 1), 0.0);
  EXPECT_EQ(rebuilt.node_staleness(snap.time, 1),
            snap.time - snap.nodes[1].sample_time);
  // A restore invalidates incremental consumers exactly once.
  SnapshotDelta delta = rebuilt.drain_delta();
  EXPECT_TRUE(delta.full);

  MonitorStore wrong_size(5);
  EXPECT_THROW(wrong_size.restore(snap), util::CheckError);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

// Automatic compaction would collapse the setup frames early in the next
// two tests; they drive compaction explicitly through write_full instead.
DeltaLogWriter::Options no_compaction() {
  DeltaLogWriter::Options options;
  options.compact_after_deltas = 1 << 20;
  options.compact_bytes_ratio = 1e9;
  return options;
}

TEST(DeltaLogTest, CompactionShrinkingTheLogBetweenPollsRescans) {
  const std::string path = log_path("shrink_between_polls");
  auto store = seeded_store(5);
  DeltaLogWriter writer(path, no_compaction());
  DeltaLogReader reader(path);

  double now = 10.0;
  ASSERT_TRUE(writer.append(store->assemble(now), store->drain_delta()));
  for (int i = 0; i < 6; ++i) {
    now += 2.0;
    NodeSnapshot record = store->node_record(i % 5);
    record.cpu_load += 0.25;
    store->write_node_record(now, record);
    ASSERT_TRUE(writer.append(store->assemble(now), store->drain_delta()));
  }
  EXPECT_EQ(reader.poll(), 7);
  (void)reader.drain_delta();

  // While the reader sleeps, the writer compacts the log to a single full
  // frame SHORTER than the reader's cursor, then appends a fresh delta.
  // The stale cursor must not be replayed as a continuation.
  now += 2.0;
  store->write_latency(now, 0, 1, 77.0, 78.0);
  store->write_latency(now, 1, 0, 77.0, 78.0);
  (void)store->drain_delta();  // state rides in the compaction frame
  ASSERT_TRUE(writer.write_full(store->assemble(now)));
  now += 2.0;
  NodeSnapshot record = store->node_record(3);
  record.cpu_load = 4.5;
  store->write_node_record(now, record);
  ASSERT_TRUE(writer.append(store->assemble(now), store->drain_delta()));

  EXPECT_EQ(reader.poll(), 2);  // replayed from the new head: full + delta
  EXPECT_TRUE(reader.drain_delta().full);
  expect_equal_state(reader.snapshot(), store->assemble(now));
  std::remove(path.c_str());
}

TEST(DeltaLogTest, CompactionGrowingPastTheCursorIsStillDetected) {
  const std::string path = log_path("grow_past_cursor");
  auto store = seeded_store(4);
  DeltaLogWriter writer(path);
  DeltaLogReader reader(path);

  ASSERT_TRUE(writer.append(store->assemble(10.0), store->drain_delta()));
  EXPECT_EQ(reader.poll(), 1);  // cursor parks right after the full frame
  (void)reader.drain_delta();

  // The writer compacts (a same-shape full frame with a new identity) and
  // keeps appending until the file is LONGER than the reader's cursor: no
  // size check can see the swap — the head identity has to.
  double now = 12.0;
  NodeSnapshot record = store->node_record(1);
  record.cpu_load = 7.0;
  store->write_node_record(now, record);
  (void)store->drain_delta();
  ASSERT_TRUE(writer.write_full(store->assemble(now)));
  for (int i = 0; i < 4; ++i) {
    now += 1.0;
    store->write_latency(now, 0, 2, 30.0 + i, 31.0);
    store->write_latency(now, 2, 0, 30.0 + i, 31.0);
    ASSERT_TRUE(writer.append(store->assemble(now), store->drain_delta()));
  }

  EXPECT_EQ(reader.poll(), 5);  // new full + the four deltas
  EXPECT_TRUE(reader.drain_delta().full);
  expect_equal_state(reader.snapshot(), store->assemble(now));
  std::remove(path.c_str());
}

TEST(DeltaLogTest, TornCompactionHeadIsRetriedNotReplayedFromStaleOffsets) {
  const std::string path = log_path("torn_head");
  auto store = seeded_store(4);
  DeltaLogWriter writer(path, no_compaction());
  DeltaLogReader reader(path);

  double now = 10.0;
  ASSERT_TRUE(writer.append(store->assemble(now), store->drain_delta()));
  for (int i = 0; i < 5; ++i) {
    now += 1.0;
    NodeSnapshot record = store->node_record(i % 4);
    record.cpu_load += 0.3;
    store->write_node_record(now, record);
    ASSERT_TRUE(writer.append(store->assemble(now), store->drain_delta()));
  }
  EXPECT_EQ(reader.poll(), 6);
  (void)reader.drain_delta();
  const std::uint64_t good_version = reader.snapshot().version;

  // Build the bytes a finished compaction would leave, then install only a
  // torn prefix of them — the worst intermediate the poll-time race can
  // observe: smaller than the cursor AND a head frame that cannot be
  // identified yet.
  now += 1.0;
  NodeSnapshot record = store->node_record(0);
  record.cpu_load = 9.9;
  store->write_node_record(now, record);
  (void)store->drain_delta();
  const std::string staging = log_path("torn_head_staging");
  DeltaLogWriter staging_writer(staging);
  ASSERT_TRUE(staging_writer.write_full(store->assemble(now)));
  const std::string bytes = slurp(staging);
  ASSERT_GT(bytes.size(), 16u);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

  EXPECT_EQ(reader.poll(), 0);  // nothing usable yet — and nothing stale
  EXPECT_EQ(reader.snapshot().version, good_version);

  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_EQ(reader.poll(), 1);
  EXPECT_TRUE(reader.drain_delta().full);
  expect_equal_state(reader.snapshot(), store->assemble(now));
  std::remove(path.c_str());
  std::remove(staging.c_str());
}

TEST(DeltaLogTest, ConcurrentCompactionAndPollingConverge) {
  const std::string path = log_path("concurrent_compaction");
  auto store = seeded_store(4);
  DeltaLogWriter::Options options;
  options.compact_after_deltas = 2;  // compact constantly under the reader
  DeltaLogWriter writer(path, options);
  double now = 10.0;
  ASSERT_TRUE(writer.append(store->assemble(now), store->drain_delta()));

  DeltaLogReader reader(path);
  std::atomic<bool> writer_done{false};
  std::atomic<bool> monotone{true};
  std::thread tailer([&] {
    std::uint64_t last = 0;
    while (!writer_done.load(std::memory_order_acquire)) {
      reader.poll();
      if (reader.have_snapshot()) {
        const std::uint64_t version = reader.snapshot().version;
        if (version < last) monotone.store(false, std::memory_order_relaxed);
        last = version;
      }
      (void)reader.drain_delta();
    }
  });

  for (int i = 0; i < 150; ++i) {
    now += 1.0;
    NodeSnapshot record = store->node_record(i % 4);
    record.cpu_load = 0.01 * i;
    store->write_node_record(now, record);
    store->write_latency(now, i % 4, (i + 1) % 4, 50.0 + i, 51.0);
    ASSERT_TRUE(writer.append(store->assemble(now), store->drain_delta()));
  }
  writer_done.store(true, std::memory_order_release);
  tailer.join();

  EXPECT_TRUE(monotone.load());
  EXPECT_GT(writer.compactions(), 10);

  // Converge on the final state from wherever the race left the cursor.
  const ClusterSnapshot want = store->assemble(now);
  for (int i = 0; i < 100 && (!reader.have_snapshot() ||
                              reader.snapshot().version != want.version);
       ++i) {
    reader.poll();
  }
  ASSERT_TRUE(reader.have_snapshot());
  expect_equal_state(reader.snapshot(), want);
  std::remove(path.c_str());
}

TEST(DeltaLogTest, DecodeAheadReplayMatchesSerial) {
  // The pipelined reader (decode+CRC of frame k+1 on a worker thread while
  // frame k applies) must be an exact replay-semantics twin of the serial
  // one: same states, same frame counts, same drained deltas, poll by poll.
  const std::string path = log_path("decode_ahead");
  auto store = seeded_store(6);
  DeltaLogWriter writer(path, no_compaction());
  DeltaLogReader serial(path);
  DeltaLogReader pipelined(path);
  pipelined.set_decode_ahead(true);
  EXPECT_TRUE(pipelined.decode_ahead());

  double now = 10.0;
  ASSERT_TRUE(writer.append(store->assemble(now), store->drain_delta()));
  for (int batch = 0; batch < 4; ++batch) {
    // Several frames per poll so the decode-ahead pipeline actually runs
    // (a single-frame poll never has a "next" frame to hand the worker).
    for (int i = 0; i < 7; ++i) {
      now += 1.0;
      NodeSnapshot record = store->node_record((batch + i) % 6);
      record.cpu_load = 0.1 * (batch * 7 + i);
      store->write_node_record(now, record);
      store->write_latency(now, i % 6, (i + 2) % 6, 40.0 + i, 41.0);
      store->write_latency(now, (i + 2) % 6, i % 6, 40.0 + i, 41.0);
      ASSERT_TRUE(writer.append(store->assemble(now), store->drain_delta()));
    }
    const int want = serial.poll();
    EXPECT_EQ(pipelined.poll(), want);
    EXPECT_GT(want, 1);
    EXPECT_EQ(pipelined.frames_applied(), serial.frames_applied());
    EXPECT_EQ(pipelined.bad_frames_seen(), serial.bad_frames_seen());
    const SnapshotDelta serial_delta = serial.drain_delta();
    const SnapshotDelta pipelined_delta = pipelined.drain_delta();
    EXPECT_EQ(pipelined_delta.full, serial_delta.full);
    EXPECT_EQ(pipelined_delta.base_version, serial_delta.base_version);
    EXPECT_EQ(pipelined_delta.version, serial_delta.version);
    EXPECT_EQ(pipelined_delta.dirty_nodes, serial_delta.dirty_nodes);
    EXPECT_EQ(pipelined_delta.dirty_pairs, serial_delta.dirty_pairs);
    expect_equal_state(pipelined.snapshot(), serial.snapshot());
  }
  expect_equal_state(pipelined.snapshot(), store->assemble(now));
  std::remove(path.c_str());
}

TEST(DeltaLogTest, DecodeAheadStopsAtTornAndBadFramesLikeSerial) {
  const std::string path = log_path("decode_ahead_torn");
  auto store = seeded_store(4);
  DeltaLogWriter writer(path, no_compaction());
  DeltaLogReader serial(path);
  DeltaLogReader pipelined(path);
  pipelined.set_decode_ahead(true);

  double now = 10.0;
  ASSERT_TRUE(writer.append(store->assemble(now), store->drain_delta()));
  for (int i = 0; i < 5; ++i) {
    now += 1.0;
    store->write_latency(now, 0, 3, 70.0 + i, 71.0);
    store->write_latency(now, 3, 0, 70.0 + i, 71.0);
    ASSERT_TRUE(writer.append(store->assemble(now), store->drain_delta()));
  }
  // A torn tail: the next append is truncated mid-frame. Both readers must
  // apply the six good frames, stop at the partial one without advancing,
  // and report identical counters.
  now += 1.0;
  store->write_latency(now, 1, 2, 80.0, 81.0);
  store->write_latency(now, 2, 1, 80.0, 81.0);
  arm_torn_snapshot_write();
  EXPECT_FALSE(writer.append(store->assemble(now), store->drain_delta()));

  EXPECT_EQ(serial.poll(), 6);
  EXPECT_EQ(pipelined.poll(), 6);
  (void)serial.drain_delta();
  (void)pipelined.drain_delta();
  EXPECT_EQ(pipelined.bad_frames_seen(), serial.bad_frames_seen());
  expect_equal_state(pipelined.snapshot(), serial.snapshot());

  // The writer heals by compacting; both readers replay the fresh head and
  // converge on the same state.
  now += 1.0;
  store->write_latency(now, 1, 2, 82.0, 83.0);
  store->write_latency(now, 2, 1, 82.0, 83.0);
  ASSERT_TRUE(writer.append(store->assemble(now), store->drain_delta()));
  EXPECT_EQ(serial.poll(), 1);
  EXPECT_EQ(pipelined.poll(), 1);
  EXPECT_TRUE(serial.drain_delta().full);
  EXPECT_TRUE(pipelined.drain_delta().full);
  expect_equal_state(pipelined.snapshot(), store->assemble(now));
  expect_equal_state(pipelined.snapshot(), serial.snapshot());
  std::remove(path.c_str());
}

TEST(DeltaLogTest, DecodeAheadTogglesMidStream) {
  // Flipping the pipeline on and off between polls (stopping/starting the
  // worker thread) never changes what a poll replays.
  const std::string path = log_path("decode_ahead_toggle");
  auto store = seeded_store(4);
  DeltaLogWriter writer(path, no_compaction());
  DeltaLogReader reader(path);

  double now = 10.0;
  ASSERT_TRUE(writer.append(store->assemble(now), store->drain_delta()));
  for (int round = 0; round < 4; ++round) {
    reader.set_decode_ahead(round % 2 == 0);
    for (int i = 0; i < 3; ++i) {
      now += 1.0;
      store->write_latency(now, 0, 2, 90.0 + round + i, 91.0);
      store->write_latency(now, 2, 0, 90.0 + round + i, 91.0);
      ASSERT_TRUE(writer.append(store->assemble(now), store->drain_delta()));
    }
    EXPECT_EQ(reader.poll(), round == 0 ? 4 : 3);
    (void)reader.drain_delta();
    expect_equal_state(reader.snapshot(), store->assemble(now));
  }
  EXPECT_EQ(reader.bad_frames_seen(), 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nlarm::monitor
