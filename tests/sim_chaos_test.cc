#include "sim/chaos.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/check.h"

namespace nlarm::sim {
namespace {

TEST(ChaosSpecTest, ParsesFullGrammar) {
  const ChaosSpec spec = ChaosSpec::parse(
      "seed=7; stall:nodestate:0.1@30+120; flap:3@40+10; flap:random@50+5; "
      "kill:master@60; kill:slave@70; tear:snapshot@80; skew:-12.5@90");
  EXPECT_EQ(spec.seed, 7u);
  ASSERT_EQ(spec.events.size(), 7u);

  const ChaosEvent& stall = spec.events[0];
  EXPECT_EQ(stall.kind, ChaosEvent::Kind::kStallDaemons);
  EXPECT_EQ(stall.selector, "nodestate");
  EXPECT_DOUBLE_EQ(stall.amount, 0.1);
  EXPECT_FALSE(stall.amount_is_count);
  EXPECT_DOUBLE_EQ(stall.time, 30.0);
  EXPECT_DOUBLE_EQ(stall.duration, 120.0);

  EXPECT_EQ(spec.events[1].kind, ChaosEvent::Kind::kFlapNode);
  EXPECT_EQ(spec.events[1].node, 3);
  EXPECT_EQ(spec.events[2].node, -1);  // random pick
  EXPECT_EQ(spec.events[3].kind, ChaosEvent::Kind::kKillMaster);
  EXPECT_EQ(spec.events[4].kind, ChaosEvent::Kind::kKillSlave);
  EXPECT_EQ(spec.events[5].kind, ChaosEvent::Kind::kTearSnapshot);
  EXPECT_EQ(spec.events[6].kind, ChaosEvent::Kind::kClockSkew);
  EXPECT_DOUBLE_EQ(spec.events[6].amount, -12.5);
}

TEST(ChaosSpecTest, IntegerStallAmountIsACount) {
  const ChaosSpec spec = ChaosSpec::parse("stall:latencyd:3@5+60");
  ASSERT_EQ(spec.events.size(), 1u);
  EXPECT_TRUE(spec.events[0].amount_is_count);
  EXPECT_DOUBLE_EQ(spec.events[0].amount, 3.0);
}

TEST(ChaosSpecTest, SortsEventsByTimeStably) {
  const ChaosSpec spec = ChaosSpec::parse(
      "tear:snapshot@50; kill:master@10; kill:slave@10");
  ASSERT_EQ(spec.events.size(), 3u);
  EXPECT_EQ(spec.events[0].kind, ChaosEvent::Kind::kKillMaster);
  EXPECT_EQ(spec.events[1].kind, ChaosEvent::Kind::kKillSlave);
  EXPECT_EQ(spec.events[2].kind, ChaosEvent::Kind::kTearSnapshot);
}

TEST(ChaosSpecTest, EmptyAndWhitespaceSpecsParse) {
  EXPECT_TRUE(ChaosSpec::parse("").empty());
  EXPECT_TRUE(ChaosSpec::parse(" ;  ; ").empty());
}

TEST(ChaosSpecTest, RejectsMalformedEntries) {
  EXPECT_THROW(ChaosSpec::parse("nonsense@5"), util::CheckError);
  EXPECT_THROW(ChaosSpec::parse("stall:nodestate@5+10"), util::CheckError);
  EXPECT_THROW(ChaosSpec::parse("stall:nodestate:0.5"), util::CheckError);
  EXPECT_THROW(ChaosSpec::parse("flap:3@5"), util::CheckError);  // no +dur
  EXPECT_THROW(ChaosSpec::parse("kill:other@5"), util::CheckError);
  EXPECT_THROW(ChaosSpec::parse("tear:disk@5"), util::CheckError);
  EXPECT_THROW(ChaosSpec::parse("skew:abc@5"), util::CheckError);
  EXPECT_THROW(ChaosSpec::parse("seed=notanumber"), util::CheckError);
  EXPECT_THROW(ChaosSpec::parse("stall:nodestate:-1@5+10"),
               util::CheckError);
}

TEST(ChaosEngineTest, FiresEventsAtScheduledTimesRelativeToArm) {
  Simulation sim(1);
  sim.run_until(100.0);  // warm-up offset: times are relative to arm()

  ChaosSpec spec = ChaosSpec::parse("kill:master@10; tear:snapshot@25");
  std::vector<double> fire_times;
  ChaosHooks hooks;
  hooks.kill_master = [&](const ChaosEvent&) {
    fire_times.push_back(sim.now());
  };
  hooks.tear_snapshot = [&](const ChaosEvent&) {
    fire_times.push_back(sim.now());
  };
  ChaosEngine engine(spec, sim, std::move(hooks));
  engine.arm();
  sim.run_until(200.0);

  ASSERT_EQ(fire_times.size(), 2u);
  EXPECT_DOUBLE_EQ(fire_times[0], 110.0);
  EXPECT_DOUBLE_EQ(fire_times[1], 125.0);
  ASSERT_EQ(engine.fired().size(), 2u);
  EXPECT_EQ(engine.fired()[0].kind, ChaosEvent::Kind::kKillMaster);
}

TEST(ChaosEngineTest, UnsetHooksAreNoOpsButStillRecorded) {
  Simulation sim(1);
  ChaosEngine engine(ChaosSpec::parse("flap:random@5+10"), sim, {});
  engine.arm();
  sim.run_until(50.0);
  EXPECT_EQ(engine.fired().size(), 1u);
}

TEST(ChaosEngineTest, VictimRngIsDeterministicPerScheduleIndex) {
  // Two engines with the same spec hand their hooks bit-identical RNG
  // streams, regardless of what earlier hooks drew.
  const std::string text = "seed=99; flap:random@5+1; flap:random@6+1";
  std::vector<std::uint64_t> draws_a;
  std::vector<std::uint64_t> draws_b;
  for (auto* draws : {&draws_a, &draws_b}) {
    Simulation sim(1);
    ChaosHooks hooks;
    hooks.flap_node = [draws](const ChaosEvent&, Rng& rng) {
      draws->push_back(rng.next_u64());
    };
    ChaosEngine engine(ChaosSpec::parse(text), sim, std::move(hooks));
    engine.arm();
    sim.run_until(50.0);
  }
  ASSERT_EQ(draws_a.size(), 2u);
  EXPECT_EQ(draws_a, draws_b);
  // Distinct schedule entries fork distinct streams.
  EXPECT_NE(draws_a[0], draws_a[1]);
}

TEST(ChaosEngineTest, ArmTwiceIsRejected) {
  Simulation sim(1);
  ChaosEngine engine(ChaosSpec::parse("kill:master@1"), sim, {});
  engine.arm();
  EXPECT_THROW(engine.arm(), util::CheckError);
}

}  // namespace
}  // namespace nlarm::sim
