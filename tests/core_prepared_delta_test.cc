// Property test for incremental prepared-state maintenance.
//
// A MonitorStore is driven through long randomized tick sequences of mixed
// churn (node records, P2P pairs, occasional livehost flips). After every
// tick the incrementally-updated PreparedBuilder must match a from-scratch
// rebuild bit for bit — usable set, CL, NL matrix, pc, gate aggregates —
// and the allocations decided against the incremental epoch must equal the
// classic allocator and the reference implementation.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/allocator.h"
#include "core/broker.h"
#include "core/epoch.h"
#include "core/prepared.h"
#include "core/reference.h"
#include "monitor/store.h"
#include "sim/rng.h"

namespace nlarm::core {
namespace {

monitor::NodeSnapshot random_record(cluster::NodeId id, sim::Rng& rng) {
  monitor::NodeSnapshot record;
  record.spec.id = id;
  record.spec.hostname = cluster::default_hostname(id);
  record.spec.core_count = rng.chance(0.5) ? 8 : 12;
  record.spec.cpu_freq_ghz = rng.uniform(2.0, 4.5);
  record.spec.total_mem_gb = 16.0;
  const double load = rng.uniform(0.0, 8.0);
  record.cpu_load = load;
  record.cpu_load_avg = {load, load * 0.9, load * 0.8};
  const double util = rng.uniform(0.0, 1.0);
  record.cpu_util = util;
  record.cpu_util_avg = {util, util, util};
  const double flow = rng.uniform(0.0, 400.0);
  record.net_flow_mbps = flow;
  record.net_flow_avg = {flow, flow, flow};
  record.mem_used_gb = rng.uniform(1.0, 14.0);
  const double avail = 16.0 - record.mem_used_gb;
  record.mem_avail_avg = {avail, avail, avail};
  record.users = static_cast<int>(rng.uniform_int(0, 4));
  return record;
}

void write_random_pair(monitor::MonitorStore& store, double now, int u, int v,
                       sim::Rng& rng) {
  if (rng.chance(0.7)) {
    const double lat = rng.uniform(20.0, 500.0);
    store.write_latency(now, u, v, lat, lat * 1.1);
    store.write_latency(now, v, u, lat, lat * 1.1);
  }
  if (rng.chance(0.7)) {
    const double peak = 1000.0;
    const double bw = rng.uniform(100.0, peak);
    store.write_bandwidth(now, u, v, bw, peak);
    store.write_bandwidth(now, v, u, bw, peak);
  }
}

AllocationRequest make_request(int nprocs) {
  AllocationRequest request;
  request.nprocs = nprocs;
  request.ppn = 4;
  request.job = JobWeights{0.3, 0.7};
  return request;
}

void expect_same_prepared(const PreparedSnapshot& got,
                          const PreparedSnapshot& want) {
  EXPECT_EQ(got.version, want.version);
  EXPECT_EQ(got.usable, want.usable);
  EXPECT_EQ(got.cl, want.cl);
  ASSERT_NE(got.nl, nullptr);
  ASSERT_NE(want.nl, nullptr);
  EXPECT_TRUE(*got.nl == *want.nl) << "NL matrices diverged";
  EXPECT_EQ(got.pc, want.pc);
  EXPECT_EQ(got.pos_of, want.pos_of);
  EXPECT_EQ(got.load_per_core, want.load_per_core);
  EXPECT_EQ(got.effective_capacity, want.effective_capacity);
}

void expect_same_allocation(const Allocation& got, const Allocation& want) {
  EXPECT_EQ(got.nodes, want.nodes);
  EXPECT_EQ(got.procs_per_node, want.procs_per_node);
  EXPECT_EQ(got.total_cost, want.total_cost);
  EXPECT_EQ(got.avg_cpu_load, want.avg_cpu_load);
  EXPECT_EQ(got.avg_latency_us, want.avg_latency_us);
  EXPECT_EQ(got.avg_bw_complement_mbps, want.avg_bw_complement_mbps);
}

void run_delta_property(int node_count, int ticks, std::uint64_t seed) {
  sim::Rng rng(seed);
  monitor::MonitorStore store(node_count);
  const AllocationRequest request = make_request(node_count);
  const RequestProfile profile = RequestProfile::of(request);

  // Initial full state: everyone live, every record written, every pair
  // measured.
  double now = 1.0;
  std::vector<bool> livehosts(static_cast<std::size_t>(node_count), true);
  store.write_livehosts(now, livehosts);
  for (int i = 0; i < node_count; ++i) {
    store.write_node_record(now, random_record(i, rng));
  }
  for (int u = 0; u < node_count; ++u) {
    for (int v = u + 1; v < node_count; ++v) {
      write_random_pair(store, now, u, v, rng);
    }
  }

  PreparedBuilder incremental(profile);
  std::shared_ptr<const PreparedSnapshot> previous_epoch;
  int incremental_ticks = 0;
  int fallback_ticks = 0;
  int shared_nl_ticks = 0;

  for (int tick = 0; tick < ticks; ++tick) {
    now += 1.0;
    bool touched_pairs = false;
    bool flipped_livehost = false;
    if (tick > 0) {
      // Mixed churn: a few node records every tick, pair probes on some
      // ticks (the paper's pair cadence is much slower than the node one),
      // and a rare livehost flip to exercise the fallback.
      const int node_churn = static_cast<int>(
          rng.uniform_int(0, std::max(1, node_count / 8)));
      for (int i = 0; i < node_churn; ++i) {
        const int id = static_cast<int>(rng.uniform_int(0, node_count - 1));
        store.write_node_record(now, random_record(id, rng));
      }
      if (rng.chance(0.3) && node_count >= 2) {
        const int pair_churn = static_cast<int>(
            rng.uniform_int(1, std::max(2, node_count / 4)));
        for (int i = 0; i < pair_churn; ++i) {
          const int u = static_cast<int>(rng.uniform_int(0, node_count - 2));
          const int v =
              static_cast<int>(rng.uniform_int(u + 1, node_count - 1));
          write_random_pair(store, now, u, v, rng);
          touched_pairs = true;
        }
      }
      if (rng.chance(0.02)) {
        const auto idx =
            static_cast<std::size_t>(rng.uniform_int(0, node_count - 1));
        livehosts[idx] = !livehosts[idx];
        store.write_livehosts(now, livehosts);
        flipped_livehost = true;
      }
    }

    auto snapshot =
        std::make_shared<const monitor::ClusterSnapshot>(store.assemble(now));
    const monitor::SnapshotDelta delta = store.drain_delta();
    if (snapshot->usable_nodes().empty()) continue;  // nothing to prepare

    const bool applied = incremental.update(snapshot, delta);
    if (applied) {
      ++incremental_ticks;
    } else {
      ++fallback_ticks;
    }
    if (flipped_livehost) {
      EXPECT_FALSE(applied) << "livehost flip must force a full rebuild";
    }
    auto epoch = incremental.build();

    // Oracle: a from-scratch rebuild of the same snapshot.
    PreparedBuilder oracle(profile);
    oracle.rebuild(snapshot);
    auto want = oracle.build();
    expect_same_prepared(*epoch, *want);

    // Node-only ticks must share the previously materialized NL matrix.
    if (applied && !touched_pairs && previous_epoch != nullptr) {
      EXPECT_EQ(epoch->nl.get(), previous_epoch->nl.get());
      ++shared_nl_ticks;
    }
    previous_epoch = epoch;

    if (tick % 50 == 0) {
      const Allocation via_epoch = allocate_prepared(*epoch, request);
      const Allocation via_oracle = allocate_prepared(*want, request);
      expect_same_allocation(via_epoch, via_oracle);

      NetworkLoadAwareAllocator classic;
      expect_same_allocation(via_epoch, classic.allocate(*snapshot, request));
      expect_same_allocation(via_epoch,
                             reference::allocate(*snapshot, request));
    }
    if (::testing::Test::HasFailure()) {
      FAIL() << "diverged at tick " << tick << " (seed " << seed << ")";
    }
  }

  // The churn mix must actually exercise all three regimes.
  EXPECT_GT(incremental_ticks, ticks / 2);
  if (ticks >= 200) {
    EXPECT_GT(fallback_ticks, 0);
    EXPECT_GT(shared_nl_ticks, 0);
  }
}

TEST(PreparedDeltaTest, RandomChurnTiny) { run_delta_property(8, 1000, 101); }

TEST(PreparedDeltaTest, RandomChurnPaperScale) {
  run_delta_property(60, 300, 202);
}

TEST(PreparedDeltaTest, RandomChurnLarge) { run_delta_property(257, 60, 303); }

TEST(PreparedDeltaTest, EmptyDeltaAdvancesVersionOnly) {
  monitor::MonitorStore store(4);
  sim::Rng rng(7);
  store.write_livehosts(1.0, {true, true, true, true});
  for (int i = 0; i < 4; ++i) {
    store.write_node_record(1.0, random_record(i, rng));
  }
  auto first =
      std::make_shared<const monitor::ClusterSnapshot>(store.assemble(1.0));
  const auto first_delta = store.drain_delta();

  const AllocationRequest request = make_request(8);
  PreparedBuilder builder(RequestProfile::of(request));
  builder.update(first, first_delta);

  // A livehosts rewrite of the unchanged view bumps the version but leaves
  // the delta empty; the update must still track the new version.
  store.write_livehosts(2.0, {true, true, true, true});
  auto second =
      std::make_shared<const monitor::ClusterSnapshot>(store.assemble(2.0));
  const auto second_delta = store.drain_delta();
  EXPECT_TRUE(second_delta.empty());
  EXPECT_TRUE(builder.update(second, second_delta));
  EXPECT_EQ(builder.state_version(), second->version);
  EXPECT_EQ(builder.build()->version, second->version);
}

TEST(PreparedDeltaTest, VersionGapFallsBack) {
  monitor::MonitorStore store(4);
  sim::Rng rng(8);
  store.write_livehosts(1.0, {true, true, true, true});
  for (int i = 0; i < 4; ++i) {
    store.write_node_record(1.0, random_record(i, rng));
  }
  auto first =
      std::make_shared<const monitor::ClusterSnapshot>(store.assemble(1.0));
  store.drain_delta();

  const AllocationRequest request = make_request(8);
  PreparedBuilder builder(RequestProfile::of(request));
  builder.rebuild(first);

  // Miss one delta (no drain between the two writes), then try to apply the
  // next: base_version no longer matches → full rebuild.
  store.write_node_record(2.0, random_record(0, rng));
  store.assemble(2.0);
  store.drain_delta();
  store.write_node_record(3.0, random_record(1, rng));
  auto third =
      std::make_shared<const monitor::ClusterSnapshot>(store.assemble(3.0));
  const auto gap_delta = store.drain_delta();
  EXPECT_FALSE(builder.update(third, gap_delta));
  EXPECT_EQ(builder.state_version(), third->version);

  PreparedBuilder oracle(RequestProfile::of(request));
  oracle.rebuild(third);
  expect_same_prepared(*builder.build(), *oracle.build());
}

}  // namespace
}  // namespace nlarm::core
