// Tiled pair state: partition/tile-cache units, incremental tile-delta
// maintenance vs from-scratch shadow rebuilds under randomized churn, and
// the full serving stack (broker + degradation block quarantine) in tiled
// mode against the flat stack.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/allocator.h"
#include "core/broker.h"
#include "core/degrade.h"
#include "core/hierarchical.h"
#include "core/prepared.h"
#include "monitor/store.h"
#include "sim/rng.h"
#include "util/tiled_matrix.h"

namespace nlarm::core {
namespace {

// --- BlockPartition / TiledMatrix units ---

TEST(BlockPartitionTest, FromLabelsOrdersBlocksByLabel) {
  const std::int32_t labels[] = {5, 2, 5, 2, 9};
  const util::BlockPartition p = util::BlockPartition::from_labels(labels);
  ASSERT_EQ(p.position_count(), 5u);
  ASSERT_EQ(p.block_count(), 3u);
  EXPECT_EQ(p.label_of_block(0), 2);
  EXPECT_EQ(p.label_of_block(1), 5);
  EXPECT_EQ(p.label_of_block(2), 9);

  EXPECT_EQ(p.block_of(0), 1u);
  EXPECT_EQ(p.block_of(1), 0u);
  EXPECT_EQ(p.block_of(2), 1u);
  EXPECT_EQ(p.block_of(3), 0u);
  EXPECT_EQ(p.block_of(4), 2u);
  EXPECT_EQ(p.rank_of(1), 0u);
  EXPECT_EQ(p.rank_of(3), 1u);
  EXPECT_EQ(p.label_of(4), 9);

  const auto b0 = p.members(0);
  ASSERT_EQ(b0.size(), 2u);
  EXPECT_EQ(b0[0], 1u);
  EXPECT_EQ(b0[1], 3u);
  const auto b2 = p.members(2);
  ASSERT_EQ(b2.size(), 1u);
  EXPECT_EQ(b2[0], 4u);
}

TEST(BlockPartitionTest, TileIndexCoversUpperTriangleDensely) {
  const util::BlockPartition p = util::BlockPartition::fixed(10, 3);
  ASSERT_EQ(p.block_count(), 4u);
  ASSERT_EQ(p.tile_count(), 10u);
  std::vector<char> seen(p.tile_count(), 0);
  for (std::size_t a = 0; a < p.block_count(); ++a) {
    for (std::size_t b = a; b < p.block_count(); ++b) {
      const std::size_t t = p.tile_index(a, b);
      ASSERT_LT(t, p.tile_count());
      EXPECT_FALSE(seen[t]) << "tile (" << a << "," << b << ") collided";
      seen[t] = 1;
    }
  }
}

TEST(BlockPartitionTest, FixedShardsWithRemainder) {
  const util::BlockPartition p = util::BlockPartition::fixed(10, 4);
  ASSERT_EQ(p.block_count(), 3u);
  EXPECT_EQ(p.members(0).size(), 4u);
  EXPECT_EQ(p.members(1).size(), 4u);
  EXPECT_EQ(p.members(2).size(), 2u);
  EXPECT_EQ(p.block_of(9), 2u);
  EXPECT_EQ(p.rank_of(9), 1u);

  // block_size 0 collapses to a single block.
  const util::BlockPartition one = util::BlockPartition::fixed(5, 0);
  EXPECT_EQ(one.block_count(), 1u);
  EXPECT_EQ(one.members(0).size(), 5u);
}

TEST(TiledMatrixTest, MaterializesLazilyAndCaches) {
  const util::BlockPartition p = util::BlockPartition::fixed(6, 2);
  util::TiledMatrix m;
  m.reset(p);
  EXPECT_EQ(m.tiles_materialized(), 0u);

  int fills = 0;
  const auto fill = [&](std::size_t r, std::size_t c) {
    ++fills;
    return static_cast<double>(r * 100 + c);
  };
  const auto t01 = m.tile(p, 0, 1, fill);
  ASSERT_EQ(t01.size(), 4u);
  EXPECT_EQ(t01[0], 2.0);    // (0,2)
  EXPECT_EQ(t01[3], 103.0);  // (1,3)
  EXPECT_EQ(m.tiles_materialized(), 1u);
  EXPECT_EQ(m.cache_hits(), 0u);
  EXPECT_EQ(m.value_bytes(), 4 * sizeof(double));
  EXPECT_TRUE(m.has_tile(p, 0, 1));
  EXPECT_FALSE(m.has_tile(p, 1, 2));

  // Second access serves the cached values without re-filling.
  const int fills_before = fills;
  (void)m.tile(p, 0, 1, fill);
  EXPECT_EQ(fills, fills_before);
  EXPECT_EQ(m.cache_hits(), 1u);

  // Diagonal tiles zero their own diagonal and never call fill for it.
  const auto t11 = m.tile(p, 1, 1, fill);
  EXPECT_EQ(t11[0], 0.0);
  EXPECT_EQ(t11[3], 0.0);
  EXPECT_EQ(t11[1], 203.0);  // (2,3)
}

// --- incremental tile maintenance vs shadow rebuilds ---

monitor::NodeSnapshot random_record(cluster::NodeId id, sim::Rng& rng) {
  monitor::NodeSnapshot record;
  record.spec.id = id;
  record.spec.hostname = cluster::default_hostname(id);
  record.spec.core_count = rng.chance(0.5) ? 8 : 12;
  record.spec.cpu_freq_ghz = rng.uniform(2.0, 4.5);
  record.spec.total_mem_gb = 16.0;
  const double load = rng.uniform(0.0, 8.0);
  record.cpu_load = load;
  record.cpu_load_avg = {load, load * 0.9, load * 0.8};
  const double util = rng.uniform(0.0, 1.0);
  record.cpu_util = util;
  record.cpu_util_avg = {util, util, util};
  const double flow = rng.uniform(0.0, 400.0);
  record.net_flow_mbps = flow;
  record.net_flow_avg = {flow, flow, flow};
  record.mem_used_gb = rng.uniform(1.0, 14.0);
  const double avail = 16.0 - record.mem_used_gb;
  record.mem_avail_avg = {avail, avail, avail};
  record.users = static_cast<int>(rng.uniform_int(0, 4));
  return record;
}

void write_random_pair(monitor::MonitorStore& store, double now, int u, int v,
                       sim::Rng& rng) {
  if (rng.chance(0.7)) {
    const double lat = rng.uniform(20.0, 500.0);
    store.write_latency(now, u, v, lat, lat * 1.1);
    store.write_latency(now, v, u, lat, lat * 1.1);
  }
  if (rng.chance(0.7)) {
    const double peak = 1000.0;
    const double bw = rng.uniform(100.0, peak);
    store.write_bandwidth(now, u, v, bw, peak);
    store.write_bandwidth(now, v, u, bw, peak);
  }
}

AllocationRequest make_request(int nprocs) {
  AllocationRequest request;
  request.nprocs = nprocs;
  request.ppn = 4;
  request.job = JobWeights{0.3, 0.7};
  return request;
}

void expect_same_tiles(const TiledPairState& got, const TiledPairState& want) {
  EXPECT_TRUE(got.partition == want.partition);
  ASSERT_EQ(got.tiles.size(), want.tiles.size());
  for (std::size_t t = 0; t < got.tiles.size(); ++t) {
    // Bit-exact on purpose: per-tile ExactSum accumulation must make the
    // incremental path indistinguishable from a rebuild.
    EXPECT_EQ(got.tiles[t].lat_mean, want.tiles[t].lat_mean) << "tile " << t;
    EXPECT_EQ(got.tiles[t].comp_mean, want.tiles[t].comp_mean) << "tile " << t;
    EXPECT_EQ(got.tiles[t].pairs, want.tiles[t].pairs) << "tile " << t;
  }
  EXPECT_EQ(got.nodes, want.nodes);
}

TEST(TiledPreparedTest, TileDeltaMatchesShadowRebuildUnderChurn) {
  const int node_count = 24;
  const int ticks = 250;
  sim::Rng rng(515151);
  monitor::MonitorStore store(node_count);
  const AllocationRequest request = make_request(20);
  const RequestProfile profile = RequestProfile::of(request);
  TilingOptions tiling;
  tiling.block_size = 5;  // fixed shards: store records carry no switch ids

  double now = 1.0;
  std::vector<bool> livehosts(static_cast<std::size_t>(node_count), true);
  store.write_livehosts(now, livehosts);
  for (int i = 0; i < node_count; ++i) {
    store.write_node_record(now, random_record(i, rng));
  }
  for (int u = 0; u < node_count; ++u) {
    for (int v = u + 1; v < node_count; ++v) {
      write_random_pair(store, now, u, v, rng);
    }
  }

  HierarchicalOptions covering;
  covering.pair_sample = 0;
  covering.two_phase_min_nodes = std::numeric_limits<std::size_t>::max();
  HierarchicalOptions pruning;
  pruning.pair_sample = 0;
  pruning.two_phase_min_nodes = 0;

  PreparedBuilder incremental(profile, tiling);
  int incremental_ticks = 0;
  for (int tick = 0; tick < ticks; ++tick) {
    now += 1.0;
    if (tick > 0) {
      const int node_churn =
          static_cast<int>(rng.uniform_int(0, node_count / 8));
      for (int i = 0; i < node_churn; ++i) {
        const int id = static_cast<int>(rng.uniform_int(0, node_count - 1));
        store.write_node_record(now, random_record(id, rng));
      }
      if (rng.chance(0.4)) {
        const int pair_churn =
            static_cast<int>(rng.uniform_int(1, node_count / 4));
        for (int i = 0; i < pair_churn; ++i) {
          const int u = static_cast<int>(rng.uniform_int(0, node_count - 2));
          const int v =
              static_cast<int>(rng.uniform_int(u + 1, node_count - 1));
          write_random_pair(store, now, u, v, rng);
        }
      }
      if (rng.chance(0.02)) {
        const auto idx =
            static_cast<std::size_t>(rng.uniform_int(0, node_count - 1));
        livehosts[idx] = !livehosts[idx];
        store.write_livehosts(now, livehosts);
      }
    }

    auto snapshot =
        std::make_shared<const monitor::ClusterSnapshot>(store.assemble(now));
    const monitor::SnapshotDelta delta = store.drain_delta();
    if (snapshot->usable_nodes().empty()) continue;

    if (incremental.update(snapshot, delta)) ++incremental_ticks;
    auto epoch = incremental.build();

    // Shadow 1: a from-scratch tiled rebuild.
    PreparedBuilder tiled_oracle(profile, tiling);
    tiled_oracle.rebuild(snapshot);
    auto tiled_want = tiled_oracle.build();
    ASSERT_NE(epoch->tiles, nullptr);
    ASSERT_NE(tiled_want->tiles, nullptr);
    expect_same_tiles(*epoch->tiles, *tiled_want->tiles);

    // Shadow 2: the flat builder — tiles must reproduce the dense NL
    // matrix bit for bit.
    PreparedBuilder flat_oracle(profile);
    flat_oracle.rebuild(snapshot);
    auto flat_want = flat_oracle.build();
    ASSERT_NE(epoch->nl, nullptr);  // 24 nodes < dense_nl_limit
    EXPECT_TRUE(*epoch->nl == *flat_want->nl)
        << "tiled NL diverged from flat at tick " << tick;

    if (tick % 25 == 0) {
      // Covering two-phase over the incremental epoch vs the flat fast path.
      const Allocation want = allocate_prepared(*flat_want, request);
      const Allocation got =
          allocate_two_phase(*epoch, request, covering);
      EXPECT_EQ(got.nodes, want.nodes);
      EXPECT_EQ(got.total_cost, want.total_cost);

      // Pruned mode: the pool NL tiles must equal the dense submatrix.
      HierStats hier;
      const Allocation pruned =
          allocate_two_phase(*epoch, request, pruning, {}, nullptr, &hier);
      EXPECT_GT(pruned.total_procs, 0);
      const TiledPairState& tiles = *epoch->tiles;
      for (const std::size_t a : hier.chosen_blocks) {
        for (const std::size_t b : hier.chosen_blocks) {
          if (a > b) continue;
          const auto rows = tiles.partition.members(a);
          const auto cols = tiles.partition.members(b);
          const auto values = tiles.tile_values(a, b);
          for (std::size_t r = 0; r < rows.size(); ++r) {
            for (std::size_t c = 0; c < cols.size(); ++c) {
              EXPECT_EQ(values[r * cols.size() + c],
                        (*epoch->nl)[rows[r]][cols[c]])
                  << "tile (" << a << "," << b << ") cell " << r << "," << c;
            }
          }
        }
      }
    }
    if (::testing::Test::HasFailure()) {
      FAIL() << "diverged at tick " << tick;
    }
  }
  EXPECT_GT(incremental_ticks, ticks / 2);
}

// --- serving-stack integration: tiled broker vs flat broker, with block
// quarantine churn ---

monitor::ClusterSnapshot broker_snapshot(int n, int per_switch,
                                         std::uint64_t seed) {
  sim::Rng rng(seed);
  monitor::MonitorStore store(n);
  std::vector<bool> livehosts(static_cast<std::size_t>(n), true);
  store.write_livehosts(1.0, livehosts);
  for (int i = 0; i < n; ++i) {
    monitor::NodeSnapshot record = random_record(i, rng);
    record.spec.switch_id = i / per_switch;
    store.write_node_record(1.0, record);
  }
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      write_random_pair(store, 1.0, u, v, rng);
    }
  }
  return store.assemble(1.0);
}

TEST(TiledBrokerTest, TiledServingMatchesFlatUnderBlockQuarantine) {
  const int v = 32;
  const AllocationRequest request = make_request(16);
  const RequestProfile profile = RequestProfile::of(request);

  DegradationPolicy degradation;
  degradation.block_quarantine_fraction = 0.5;

  HierarchicalOptions covering;
  covering.pair_sample = 0;
  covering.two_phase_min_nodes = std::numeric_limits<std::size_t>::max();

  NetworkLoadAwareAllocator flat_alloc;
  ResourceBroker flat(flat_alloc);
  flat.set_degradation(degradation);

  NetworkLoadAwareAllocator tiled_alloc;
  ResourceBroker tiled(tiled_alloc);
  tiled.set_degradation(degradation);
  tiled.set_hierarchy(covering);
  ASSERT_TRUE(tiled.hierarchy_enabled());

  auto snapshot = std::make_shared<const monitor::ClusterSnapshot>(
      broker_snapshot(v, 8, 616161));

  monitor::StalenessView view;
  view.now = 1000.0;
  view.node.assign(static_cast<std::size_t>(v), 1.0);
  view.pair.assign(static_cast<std::size_t>(v), 1.0);

  for (int round = 0; round < 3; ++round) {
    // Round 1 darkens most of switch 1 (block quarantine pulls the rest);
    // round 2 readmits it.
    if (round == 1) {
      for (int i = 8; i < 14; ++i) {
        view.node[static_cast<std::size_t>(i)] = 100.0;
      }
    } else if (round == 2) {
      for (int i = 8; i < 14; ++i) {
        view.node[static_cast<std::size_t>(i)] = 1.0;
      }
    }
    flat.refresh_epoch(snapshot, view, profile);
    tiled.refresh_epoch(snapshot, view, profile);

    const BrokerDecision flat_decision =
        flat.decide(flat.pin_epoch(), request);
    const BrokerDecision tiled_decision =
        tiled.decide(tiled.pin_epoch(), request);
    ASSERT_EQ(flat_decision.action, BrokerDecision::Action::kAllocate);
    ASSERT_EQ(tiled_decision.action, BrokerDecision::Action::kAllocate);
    EXPECT_EQ(tiled_decision.allocation.nodes, flat_decision.allocation.nodes)
        << "round " << round;
    EXPECT_EQ(tiled_decision.allocation.total_cost,
              flat_decision.allocation.total_cost);
    EXPECT_EQ(tiled_decision.allocation.policy, "hierarchical");
    if (round == 1) {
      // The whole switch must be gone from the allocation.
      for (const cluster::NodeId id : tiled_decision.allocation.nodes) {
        EXPECT_TRUE(id < 8 || id >= 16) << "node " << id;
      }
    }
  }
}

// --- sampled-mode determinism ---

TEST(TiledHierarchicalTest, PairSampleIsDeterministicUnderSeed) {
  const monitor::ClusterSnapshot snap = broker_snapshot(32, 8, 717171);
  const AllocationRequest request = make_request(16);

  HierarchicalOptions options;
  options.pair_sample = 3;
  HierarchicalAllocator a(options);
  HierarchicalAllocator b(options);
  const Allocation first = a.allocate(snap, request);
  const Allocation second = b.allocate(snap, request);
  EXPECT_EQ(first.nodes, second.nodes);
  EXPECT_EQ(first.total_cost, second.total_cost);
  EXPECT_EQ(a.last_chosen_groups(), b.last_chosen_groups());

  // Repeat allocations on the SAME allocator also repeat (the RNG is forked
  // fresh from the seed per allocate, not consumed statefully).
  const Allocation again = a.allocate(snap, request);
  EXPECT_EQ(again.nodes, first.nodes);
  EXPECT_EQ(again.total_cost, first.total_cost);
}

}  // namespace
}  // namespace nlarm::core
