// Bounded MPMC ring (util/mpmc_ring.h): Vyukov per-slot sequence protocol.
// The multi-producer/multi-consumer cases are ThreadSanitizer targets of the
// NLARM_SANITIZE=thread CI job (test regex includes "Ring").
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "util/mpmc_ring.h"

namespace nlarm::util {
namespace {

TEST(MpmcRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ring_capacity_for(1), 2u);
  EXPECT_EQ(ring_capacity_for(2), 2u);
  EXPECT_EQ(ring_capacity_for(3), 4u);
  EXPECT_EQ(ring_capacity_for(1000), 1024u);
  EXPECT_EQ(ring_capacity_for(1024), 1024u);
  MpmcRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(MpmcRingTest, FifoSingleThreaded) {
  MpmcRing<int> ring(8);
  EXPECT_TRUE(ring.empty_estimate());
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99)) << "ring must report full at capacity";
  EXPECT_EQ(ring.size_estimate(), 8u);
  for (int i = 0; i < 8; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i) << "single-threaded order must be FIFO";
  }
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out)) << "ring must report empty";
}

TEST(MpmcRingTest, WrapsAroundManyLaps) {
  MpmcRing<int> ring(4);
  for (int lap = 0; lap < 1000; ++lap) {
    ASSERT_TRUE(ring.try_push(lap));
    ASSERT_TRUE(ring.try_push(lap + 1000000));
    int a = -1;
    int b = -1;
    ASSERT_TRUE(ring.try_pop(a));
    ASSERT_TRUE(ring.try_pop(b));
    EXPECT_EQ(a, lap);
    EXPECT_EQ(b, lap + 1000000);
  }
}

TEST(MpmcRingTest, ConcurrentProducersConsumersDeliverEveryValueOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  constexpr int kTotal = kProducers * kPerProducer;

  MpmcRing<int> ring(64);  // small on purpose: exercises full/empty laps
  std::atomic<int> consumed{0};
  std::vector<std::atomic<int>> seen(kTotal);
  for (auto& s : seen) s.store(0, std::memory_order_relaxed);

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        while (!ring.try_push(value)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&ring, &consumed, &seen] {
      int out = -1;
      while (consumed.load(std::memory_order_relaxed) < kTotal) {
        if (ring.try_pop(out)) {
          seen[static_cast<std::size_t>(out)].fetch_add(
              1, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(consumed.load(), kTotal);
  for (int v = 0; v < kTotal; ++v) {
    ASSERT_EQ(seen[static_cast<std::size_t>(v)].load(), 1)
        << "value " << v << " delivered a wrong number of times";
  }
}

TEST(MpmcRingTest, PerProducerOrderIsPreservedUnderConcurrency) {
  // FIFO per producer: values from one producer must be consumed in the
  // order they were pushed (the ring is linearizable per endpoint).
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 4000;

  MpmcRing<std::pair<int, int>> ring(32);
  std::vector<std::vector<int>> consumed_by_producer(kProducers);
  std::atomic<int> consumed{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        while (!ring.try_push({p, i})) std::this_thread::yield();
      }
    });
  }
  // One consumer so the observed order is the pop order.
  std::thread consumer([&] {
    std::pair<int, int> out;
    while (consumed.load(std::memory_order_relaxed) <
           kProducers * kPerProducer) {
      if (ring.try_pop(out)) {
        consumed_by_producer[static_cast<std::size_t>(out.first)].push_back(
            out.second);
        consumed.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::thread& t : producers) t.join();
  consumer.join();

  for (int p = 0; p < kProducers; ++p) {
    const std::vector<int>& order =
        consumed_by_producer[static_cast<std::size_t>(p)];
    ASSERT_EQ(order.size(), static_cast<std::size_t>(kPerProducer));
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()))
        << "producer " << p << "'s values were reordered";
  }
}

}  // namespace
}  // namespace nlarm::util
