#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/check.h"

namespace nlarm::util {
namespace {

TEST(StatsTest, MeanOfEmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(StatsTest, MeanOfValues) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(StatsTest, StdevOfConstantIsZero) {
  const std::vector<double> v{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(stdev(v), 0.0);
}

TEST(StatsTest, StdevMatchesHandComputation) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sample stdev with n-1 = sqrt(32/7).
  EXPECT_NEAR(stdev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, StdevOfSingleSampleIsZero) {
  const std::vector<double> v{3.0};
  EXPECT_DOUBLE_EQ(stdev(v), 0.0);
}

TEST(StatsTest, CoefficientOfVariation) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(coefficient_of_variation(v), std::sqrt(32.0 / 7.0) / 5.0,
              1e-12);
}

TEST(StatsTest, CovOfZeroMeanIsZero) {
  const std::vector<double> v{-1.0, 1.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(v), 0.0);
}

TEST(StatsTest, MedianOddCount) {
  const std::vector<double> v{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(v), 5.0);
}

TEST(StatsTest, MedianEvenCountAveragesCenter) {
  const std::vector<double> v{1.0, 2.0, 3.0, 10.0};
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(StatsTest, PercentileEndpoints) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(StatsTest, PercentileOutOfRangeThrows) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(percentile(v, -1.0), CheckError);
  EXPECT_THROW(percentile(v, 101.0), CheckError);
}

TEST(StatsTest, MinMax) {
  const std::vector<double> v{3.0, -2.0, 8.0};
  EXPECT_DOUBLE_EQ(min_value(v), -2.0);
  EXPECT_DOUBLE_EQ(max_value(v), 8.0);
}

TEST(StatsTest, SummarizeIsConsistent) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.cov, s.stdev / s.mean, 1e-12);
}

TEST(StreamingStatsTest, MatchesBatchStats) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  StreamingStats s;
  for (double x : v) s.add(x);
  EXPECT_EQ(s.count(), v.size());
  EXPECT_NEAR(s.mean(), mean(v), 1e-12);
  EXPECT_NEAR(s.stdev(), stdev(v), 1e-12);
}

TEST(StreamingStatsTest, VarianceNeedsTwoSamples) {
  StreamingStats s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(WindowedMeanTest, SingleSampleReturnsValue) {
  WindowedMean w(60.0);
  w.add(0.0, 7.0);
  EXPECT_DOUBLE_EQ(w.value(), 7.0);
}

TEST(WindowedMeanTest, ConstantSignal) {
  WindowedMean w(60.0);
  for (int t = 0; t <= 120; t += 5) w.add(t, 3.0);
  EXPECT_NEAR(w.value(), 3.0, 1e-12);
}

TEST(WindowedMeanTest, StepSignalWeightsByTime) {
  WindowedMean w(60.0);
  // Value 0 for the first 30 s of the window, then 10 for the last 30 s.
  w.add(0.0, 0.0);
  w.add(30.0, 10.0);
  w.add(60.0, 10.0);
  // Window [0,60]: 0 over [0,30), 10 over [30,60) → mean 5.
  EXPECT_NEAR(w.value(), 5.0, 1e-9);
}

TEST(WindowedMeanTest, OldSamplesEvicted) {
  WindowedMean w(60.0);
  w.add(0.0, 100.0);
  for (int t = 120; t <= 200; t += 10) w.add(t, 1.0);
  EXPECT_NEAR(w.value(), 1.0, 1e-9);
}

TEST(WindowedMeanTest, RejectsTimeGoingBackwards) {
  WindowedMean w(60.0);
  w.add(10.0, 1.0);
  EXPECT_THROW(w.add(5.0, 1.0), CheckError);
}

TEST(WindowedMeanTest, RejectsNonPositiveWindow) {
  EXPECT_THROW(WindowedMean(0.0), CheckError);
  EXPECT_THROW(WindowedMean(-5.0), CheckError);
}

TEST(LoadAveragesTest, WindowsDivergeForTrendingSignal) {
  LoadAverages la;
  // Signal ramps up: the 1-minute mean should exceed the 15-minute mean.
  for (int t = 0; t <= 900; t += 5) {
    la.add(t, static_cast<double>(t));
  }
  EXPECT_GT(la.one_minute(), la.five_minutes());
  EXPECT_GT(la.five_minutes(), la.fifteen_minutes());
}

TEST(LoadAveragesTest, AllWindowsEqualForConstant) {
  LoadAverages la;
  for (int t = 0; t <= 1800; t += 10) la.add(t, 2.5);
  EXPECT_NEAR(la.one_minute(), 2.5, 1e-9);
  EXPECT_NEAR(la.five_minutes(), 2.5, 1e-9);
  EXPECT_NEAR(la.fifteen_minutes(), 2.5, 1e-9);
}

}  // namespace
}  // namespace nlarm::util
