#include "core/baselines.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "test_helpers.h"
#include "util/check.h"

namespace nlarm::core {
namespace {

using nlarm::testing::TestNode;
using nlarm::testing::idle_nodes;
using nlarm::testing::make_snapshot;

AllocationRequest request_for(int nprocs, int ppn = 4) {
  AllocationRequest req;
  req.nprocs = nprocs;
  req.ppn = ppn;
  req.job = JobWeights::balanced();
  return req;
}

TEST(RandomAllocatorTest, SatisfiesRequestWithDistinctNodes) {
  auto snap = make_snapshot(idle_nodes(10));
  RandomAllocator allocator(1);
  const Allocation alloc = allocator.allocate(snap, request_for(16, 4));
  EXPECT_EQ(alloc.nodes.size(), 4u);
  std::set<cluster::NodeId> unique(alloc.nodes.begin(), alloc.nodes.end());
  EXPECT_EQ(unique.size(), 4u);
  EXPECT_EQ(std::accumulate(alloc.procs_per_node.begin(),
                            alloc.procs_per_node.end(), 0),
            16);
  EXPECT_EQ(alloc.policy, "random");
}

TEST(RandomAllocatorTest, DifferentSeedsDifferentPicks) {
  auto snap = make_snapshot(idle_nodes(20));
  RandomAllocator a(1);
  RandomAllocator b(2);
  const Allocation alloc_a = a.allocate(snap, request_for(8, 4));
  const Allocation alloc_b = b.allocate(snap, request_for(8, 4));
  EXPECT_NE(alloc_a.nodes, alloc_b.nodes);  // overwhelmingly likely
}

TEST(RandomAllocatorTest, IgnoresLoad) {
  // With a fixed seed the random allocator picks the same nodes regardless
  // of load — that is exactly its weakness.
  std::vector<TestNode> loaded = idle_nodes(10);
  for (auto& n : loaded) n.cpu_load = 10.0;
  auto snap_idle = make_snapshot(idle_nodes(10));
  auto snap_loaded = make_snapshot(loaded);
  RandomAllocator a(3);
  RandomAllocator b(3);
  EXPECT_EQ(a.allocate(snap_idle, request_for(8)).nodes,
            b.allocate(snap_loaded, request_for(8)).nodes);
}

TEST(SequentialAllocatorTest, PicksConsecutiveNodes) {
  auto snap = make_snapshot(idle_nodes(10));
  SequentialAllocator allocator(5);
  const Allocation alloc = allocator.allocate(snap, request_for(12, 4));
  ASSERT_EQ(alloc.nodes.size(), 3u);
  // Consecutive ids with wraparound.
  for (std::size_t i = 1; i < alloc.nodes.size(); ++i) {
    EXPECT_EQ(alloc.nodes[i], (alloc.nodes[i - 1] + 1) % 10);
  }
  EXPECT_EQ(alloc.policy, "sequential");
}

TEST(SequentialAllocatorTest, WrapsAroundTheEnd) {
  auto snap = make_snapshot(idle_nodes(4));
  // Try many seeds until a start near the end is chosen; wrap must hold.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    SequentialAllocator allocator(seed);
    const Allocation alloc = allocator.allocate(snap, request_for(12, 4));
    ASSERT_EQ(alloc.nodes.size(), 3u);
    std::set<cluster::NodeId> unique(alloc.nodes.begin(), alloc.nodes.end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST(SequentialAllocatorTest, SkipsUnusableNodes) {
  std::vector<TestNode> nodes = idle_nodes(6);
  nodes[2].live = false;
  auto snap = make_snapshot(nodes);
  SequentialAllocator allocator(1);
  const Allocation alloc = allocator.allocate(snap, request_for(20, 4));
  ASSERT_EQ(alloc.nodes.size(), 5u);
  for (cluster::NodeId id : alloc.nodes) EXPECT_NE(id, 2);
}

TEST(LoadAwareAllocatorTest, PicksLeastLoadedGroup) {
  std::vector<TestNode> nodes = idle_nodes(6);
  nodes[0].cpu_load = 5.0;
  nodes[2].cpu_load = 3.0;
  nodes[4].cpu_load = 7.0;
  auto snap = make_snapshot(nodes);
  LoadAwareAllocator allocator;
  const Allocation alloc = allocator.allocate(snap, request_for(12, 4));
  const std::set<cluster::NodeId> chosen(alloc.nodes.begin(),
                                         alloc.nodes.end());
  EXPECT_EQ(chosen, (std::set<cluster::NodeId>{1, 3, 5}));
  EXPECT_EQ(alloc.policy, "load-aware");
}

TEST(LoadAwareAllocatorTest, IgnoresNetworkState) {
  // Two idle nodes behind a congested link still win over a loaded pair
  // with a clean link — load-aware cannot see the difference.
  std::vector<TestNode> nodes = idle_nodes(4);
  nodes[2].cpu_load = 2.0;
  nodes[3].cpu_load = 2.0;
  auto snap = make_snapshot(nodes, 100.0, 950.0, 1000.0);
  nlarm::testing::set_pair(snap, 0, 1, 900.0, 50.0);  // terrible link
  LoadAwareAllocator allocator;
  const Allocation alloc = allocator.allocate(snap, request_for(8, 4));
  const std::set<cluster::NodeId> chosen(alloc.nodes.begin(),
                                         alloc.nodes.end());
  EXPECT_EQ(chosen, (std::set<cluster::NodeId>{0, 1}));
}

TEST(LoadAwareAllocatorTest, Deterministic) {
  std::vector<TestNode> nodes = idle_nodes(8);
  for (int i = 0; i < 8; ++i) {
    nodes[static_cast<std::size_t>(i)].cpu_load = (i * 3) % 7;
  }
  auto snap = make_snapshot(nodes);
  LoadAwareAllocator a;
  LoadAwareAllocator b;
  EXPECT_EQ(a.allocate(snap, request_for(8)).nodes,
            b.allocate(snap, request_for(8)).nodes);
}

TEST(BaselinesTest, AllRespectPpn) {
  auto snap = make_snapshot(idle_nodes(10));
  RandomAllocator random(1);
  SequentialAllocator sequential(1);
  LoadAwareAllocator load_aware;
  for (Allocator* allocator :
       {static_cast<Allocator*>(&random), static_cast<Allocator*>(&sequential),
        static_cast<Allocator*>(&load_aware)}) {
    const Allocation alloc = allocator->allocate(snap, request_for(10, 2));
    EXPECT_EQ(alloc.nodes.size(), 5u) << allocator->name();
    for (int procs : alloc.procs_per_node) {
      EXPECT_LE(procs, 2) << allocator->name();
    }
  }
}

TEST(BaselinesTest, NoUsableNodesThrows) {
  std::vector<TestNode> nodes = idle_nodes(1);
  nodes[0].live = false;
  auto snap = make_snapshot(nodes);
  RandomAllocator random(1);
  EXPECT_THROW(random.allocate(snap, request_for(4)), util::CheckError);
}

}  // namespace
}  // namespace nlarm::core
