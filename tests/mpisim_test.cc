#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "mpisim/app_profile.h"
#include "mpisim/cost_model.h"
#include "mpisim/placement.h"
#include "mpisim/runtime.h"
#include "net/flows.h"
#include "net/network_model.h"
#include "util/check.h"

namespace nlarm::mpisim {
namespace {

class MpisimTest : public ::testing::Test {
 protected:
  MpisimTest()
      : cluster_(cluster::make_uniform_cluster(8, 2, /*cores=*/8,
                                               /*freq=*/3.0)),
        network_(cluster_, flows_),
        model_(cluster_, network_) {}

  Placement spread_placement(int nranks, int ppn) {
    std::vector<cluster::NodeId> rank_nodes;
    for (int r = 0; r < nranks; ++r) {
      rank_nodes.push_back(static_cast<cluster::NodeId>(r / ppn));
    }
    return Placement(std::move(rank_nodes));
  }

  cluster::Cluster cluster_;
  net::FlowSet flows_;
  net::NetworkModel network_;
  CostModel model_;
};

TEST(GridTest, BalancedGridCoversRanks) {
  for (int n : {1, 2, 3, 4, 6, 8, 12, 16, 27, 32, 48, 64, 100}) {
    const auto grid = balanced_grid_3d(n);
    EXPECT_EQ(grid[0] * grid[1] * grid[2], n) << "n=" << n;
    EXPECT_LE(grid[0], grid[1]);
    EXPECT_LE(grid[1], grid[2]);
  }
}

TEST(GridTest, PerfectCubesAreCubic) {
  EXPECT_EQ(balanced_grid_3d(8), (std::array<int, 3>{2, 2, 2}));
  EXPECT_EQ(balanced_grid_3d(27), (std::array<int, 3>{3, 3, 3}));
  EXPECT_EQ(balanced_grid_3d(64), (std::array<int, 3>{4, 4, 4}));
}

TEST(GridTest, RejectsNonPositive) {
  EXPECT_THROW(balanced_grid_3d(0), util::CheckError);
}

TEST(ProfileTest, ValidationCatchesMismatch) {
  AppProfile profile;
  profile.nranks = 8;
  profile.iterations = 10;
  profile.grid = {2, 2, 3};  // 12 != 8
  profile.phases.push_back(ComputePhase{1.0});
  EXPECT_THROW(profile.validate(), util::CheckError);
  profile.grid = {2, 2, 2};
  EXPECT_NO_THROW(profile.validate());
}

TEST(PlacementTest, FromAllocationBlocksRanks) {
  core::Allocation alloc;
  alloc.nodes = {3, 5};
  alloc.procs_per_node = {2, 3};
  alloc.total_procs = 5;
  const Placement placement = Placement::from_allocation(alloc);
  EXPECT_EQ(placement.nranks(), 5);
  EXPECT_EQ(placement.node_of(0), 3);
  EXPECT_EQ(placement.node_of(1), 3);
  EXPECT_EQ(placement.node_of(2), 5);
  EXPECT_EQ(placement.ranks_on(3), 2);
  EXPECT_EQ(placement.ranks_on(5), 3);
  EXPECT_EQ(placement.ranks_on(7), 0);
  EXPECT_EQ(placement.nodes(), (std::vector<cluster::NodeId>{3, 5}));
}

TEST_F(MpisimTest, ComputeTimeScalesWithFlops) {
  const double t1 = model_.compute_time_s(0, 1e9, 1);
  const double t2 = model_.compute_time_s(0, 2e9, 1);
  EXPECT_NEAR(t2, 2.0 * t1, 1e-12);
}

TEST_F(MpisimTest, BackgroundLoadSlowsCompute) {
  const double idle = model_.compute_time_s(0, 1e9, 8);
  cluster_.mutable_node(0).dyn.cpu_load = 8.0;  // node now 2x oversubscribed
  const double loaded = model_.compute_time_s(0, 1e9, 8);
  EXPECT_GT(loaded, idle * 1.5);
}

TEST_F(MpisimTest, ModerateLoadCausesInterferenceOnly) {
  // 1 rank + small load on an 8-core node: no time-sharing penalty, but the
  // interference term still applies (cache/membw contention, jitter).
  cluster_.mutable_node(0).dyn.cpu_load = 2.0;
  const double t = model_.compute_time_s(0, 1e9, 1);
  const double full_speed = 1e9 / (3.0e9 * model_.options().flops_per_cycle);
  const double interference =
      1.0 + model_.options().interference_coeff * (2.0 / 8.0);
  EXPECT_NEAR(t, full_speed * interference, 1e-12);
  EXPECT_LT(t, full_speed * 2.0);  // far from a time-sharing collapse
}

TEST_F(MpisimTest, LoadedEndpointsInflateLatency) {
  const double idle = model_.p2p_time_s(0, 1, 8.0);
  cluster_.mutable_node(1).dyn.cpu_load = 8.0;  // 1.0 load per core
  const double loaded = model_.p2p_time_s(0, 1, 8.0);
  EXPECT_GT(loaded, idle * 1.2);
}

TEST_F(MpisimTest, FasterNodesComputeFaster) {
  cluster::Cluster fast = cluster::make_uniform_cluster(2, 1, 8, 4.6);
  net::FlowSet flows;
  net::NetworkModel network(fast, flows);
  CostModel fast_model(fast, network);
  EXPECT_LT(fast_model.compute_time_s(0, 1e9, 1),
            model_.compute_time_s(0, 1e9, 1));
}

TEST_F(MpisimTest, P2pIntranodeFasterThanCross) {
  const double intra = model_.p2p_time_s(0, 0, 1e6);
  const double cross = model_.p2p_time_s(0, 1, 1e6);
  EXPECT_LT(intra, cross);
}

TEST_F(MpisimTest, P2pRespectsCongestion) {
  const double idle = model_.p2p_time_s(0, 1, 1e7);
  flows_.add(0, 1, 900.0);
  const double congested = model_.p2p_time_s(0, 1, 1e7);
  EXPECT_GT(congested, idle * 2.0);
}

TEST_F(MpisimTest, ConcurrencyDividesBandwidth) {
  const double alone = model_.p2p_time_s(0, 1, 1e7, 1.0);
  const double shared = model_.p2p_time_s(0, 1, 1e7, 4.0);
  EXPECT_GT(shared, alone * 2.0);
}

TEST_F(MpisimTest, AllreduceGrowsWithRanks) {
  AllreducePhase ar{8.0};
  const Placement small = spread_placement(4, 1);
  const Placement large = spread_placement(8, 1);
  AppProfile dummy;  // unused by allreduce
  dummy.nranks = 4;
  dummy.grid = {1, 1, 4};
  dummy.iterations = 1;
  dummy.phases.push_back(ar);
  const double t_small = model_.phase_time_s(Phase{ar}, dummy, small);
  AppProfile dummy8 = dummy;
  dummy8.nranks = 8;
  dummy8.grid = {1, 1, 8};
  const double t_large = model_.phase_time_s(Phase{ar}, dummy8, large);
  EXPECT_GT(t_large, t_small);
}

TEST_F(MpisimTest, SingleRankAllreduceFree) {
  const Placement solo = spread_placement(1, 1);
  AppProfile app;
  app.nranks = 1;
  app.grid = {1, 1, 1};
  app.iterations = 1;
  app.phases.push_back(AllreducePhase{8.0});
  EXPECT_DOUBLE_EQ(model_.phase_time_s(app.phases[0], app, solo), 0.0);
}

TEST_F(MpisimTest, HaloCheaperWhenColocated) {
  AppProfile app;
  app.nranks = 8;
  app.grid = {2, 2, 2};
  app.iterations = 1;
  app.phases.push_back(HaloPhase{1e6, true});
  // All ranks on one node vs spread 1-per-node.
  const Placement together(std::vector<cluster::NodeId>(8, 0));
  const Placement apart = spread_placement(8, 1);
  const double t_together = model_.phase_time_s(app.phases[0], app, together);
  const double t_apart = model_.phase_time_s(app.phases[0], app, apart);
  EXPECT_LT(t_together, t_apart);
}

TEST_F(MpisimTest, IterationCostSplitsComputeAndComm) {
  AppProfile app;
  app.nranks = 8;
  app.grid = {2, 2, 2};
  app.iterations = 10;
  app.phases.push_back(ComputePhase{1e8});
  app.phases.push_back(HaloPhase{1e5, true});
  app.phases.push_back(AllreducePhase{8.0});
  const Placement placement = spread_placement(8, 4);
  const IterationCost cost = model_.iteration_cost(app, placement);
  EXPECT_GT(cost.compute_s, 0.0);
  EXPECT_GT(cost.comm_s, 0.0);
  EXPECT_DOUBLE_EQ(cost.total(), cost.compute_s + cost.comm_s);
}

TEST_F(MpisimTest, RankCountMismatchRejected) {
  AppProfile app;
  app.nranks = 8;
  app.grid = {2, 2, 2};
  app.iterations = 1;
  app.phases.push_back(ComputePhase{1.0});
  const Placement placement = spread_placement(4, 4);
  EXPECT_THROW(model_.iteration_cost(app, placement), util::CheckError);
}

TEST_F(MpisimTest, EstimateMatchesIterationsTimesPerIter) {
  MpiRuntime runtime(cluster_, network_);
  AppProfile app;
  app.nranks = 4;
  app.grid = {1, 2, 2};
  app.iterations = 10;
  app.phases.push_back(ComputePhase{1e8});
  const Placement placement = spread_placement(4, 2);
  const ExecutionResult result = runtime.estimate(app, placement);
  const IterationCost per_iter =
      runtime.cost_model().iteration_cost(app, placement);
  EXPECT_NEAR(result.total_s, per_iter.total() * 10, 1e-9);
  EXPECT_EQ(result.iterations, 10);
}

TEST_F(MpisimTest, RunAdvancesSimulationClock) {
  MpiRuntime runtime(cluster_, network_);
  sim::Simulation sim(1);
  AppProfile app;
  app.nranks = 4;
  app.grid = {1, 2, 2};
  app.iterations = 20;
  app.phases.push_back(ComputePhase{1e8});
  const Placement placement = spread_placement(4, 2);
  const double before = sim.now();
  const ExecutionResult result = runtime.run(sim, app, placement);
  EXPECT_NEAR(sim.now() - before, result.total_s, 1e-9);
  EXPECT_GT(result.total_s, 0.0);
}

TEST_F(MpisimTest, RunSeesConditionChanges) {
  // A flow added mid-run (via a scheduled event) should make the dynamic
  // run slower than the frozen estimate.
  MpiRuntime runtime(cluster_, network_);
  sim::Simulation sim(2);
  AppProfile app;
  app.nranks = 2;
  app.grid = {1, 1, 2};
  app.iterations = 100;
  app.phases.push_back(HaloPhase{1e6, true});
  const Placement placement = spread_placement(2, 1);
  const ExecutionResult frozen = runtime.estimate(app, placement);
  sim.schedule_in(frozen.total_s * 0.1,
                  [&] { flows_.add(0, 1, 950.0); });
  const ExecutionResult dynamic = runtime.run(sim, app, placement);
  EXPECT_GT(dynamic.total_s, frozen.total_s * 1.5);
}

TEST_F(MpisimTest, CommFractionComputed) {
  ExecutionResult result;
  result.total_s = 10.0;
  result.comm_s = 4.0;
  EXPECT_DOUBLE_EQ(result.comm_fraction(), 0.4);
  ExecutionResult empty;
  EXPECT_DOUBLE_EQ(empty.comm_fraction(), 0.0);
}

}  // namespace
}  // namespace nlarm::mpisim
