#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace nlarm::cluster {
namespace {

TEST(NodeTest, MemAvailableFloorsAtZero) {
  Node n;
  n.spec.total_mem_gb = 16.0;
  n.dyn.mem_used_gb = 20.0;
  EXPECT_DOUBLE_EQ(n.mem_available_gb(), 0.0);
  n.dyn.mem_used_gb = 4.0;
  EXPECT_DOUBLE_EQ(n.mem_available_gb(), 12.0);
}

TEST(NodeTest, ClampDynamicsBoundsEverything) {
  Node n;
  n.spec.total_mem_gb = 16.0;
  n.dyn.cpu_load = -3.0;
  n.dyn.cpu_util = 1.7;
  n.dyn.mem_used_gb = 99.0;
  n.dyn.users = -2;
  n.dyn.net_flow_mbps = -1.0;
  n.clamp_dynamics();
  EXPECT_DOUBLE_EQ(n.dyn.cpu_load, 0.0);
  EXPECT_DOUBLE_EQ(n.dyn.cpu_util, 1.0);
  EXPECT_DOUBLE_EQ(n.dyn.mem_used_gb, 16.0);
  EXPECT_EQ(n.dyn.users, 0);
  EXPECT_DOUBLE_EQ(n.dyn.net_flow_mbps, 0.0);
}

TEST(NodeTest, DefaultHostnameMatchesPaperConvention) {
  EXPECT_EQ(default_hostname(0), "csews1");
  EXPECT_EQ(default_hostname(59), "csews60");
}

TEST(TopologyTest, ChainHopsMatchProximity) {
  // 4 switches in a chain, 2 nodes each: nodes 0,1 | 2,3 | 4,5 | 6,7.
  Topology topo = make_chain_topology({2, 2, 2, 2}, 1000.0, 1000.0);
  EXPECT_EQ(topo.hops(0, 0), 0);
  EXPECT_EQ(topo.hops(0, 1), 1);  // same switch
  EXPECT_EQ(topo.hops(0, 2), 2);  // adjacent switches
  EXPECT_EQ(topo.hops(0, 4), 3);
  EXPECT_EQ(topo.hops(0, 6), 4);  // the paper's max: 4 hops
  EXPECT_EQ(topo.hops(6, 0), 4);  // symmetric
}

TEST(TopologyTest, PathLinksSameSwitch) {
  Topology topo = make_chain_topology({2, 2}, 1000.0, 1000.0);
  const auto path = topo.path_links(0, 1);
  // Two uplinks only.
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], 0);
  EXPECT_EQ(path[1], 1);
  EXPECT_FALSE(topo.link(path[0]).is_trunk);
}

TEST(TopologyTest, PathLinksCrossSwitchIncludesTrunks) {
  Topology topo = make_chain_topology({2, 2, 2}, 1000.0, 500.0);
  const auto path = topo.path_links(0, 4);  // switch 0 → switch 2
  // uplink(0), trunk(sw1? no: ascend from sw0... sw2's chain:
  // parents: sw0=-1, sw1=sw0, sw2=sw1. Path sw0→sw2 descends through both
  // trunks: uplink + 2 trunks + uplink.
  ASSERT_EQ(path.size(), 4u);
  EXPECT_FALSE(topo.link(path[0]).is_trunk);
  EXPECT_TRUE(topo.link(path[1]).is_trunk);
  EXPECT_TRUE(topo.link(path[2]).is_trunk);
  EXPECT_FALSE(topo.link(path[3]).is_trunk);
  EXPECT_DOUBLE_EQ(topo.link(path[1]).capacity_mbps, 500.0);
}

TEST(TopologyTest, PathLinksEmptyForSelf) {
  Topology topo = make_chain_topology({2}, 1000.0, 1000.0);
  EXPECT_TRUE(topo.path_links(0, 0).empty());
}

TEST(TopologyTest, StarTopologyUniformDistance) {
  Topology topo = make_star_topology({2, 2, 2}, 1000.0, 1000.0);
  // All leaf switches are 2 apart (via the core), so node hops are 3.
  EXPECT_EQ(topo.hops(0, 2), 3);
  EXPECT_EQ(topo.hops(0, 4), 3);
  EXPECT_EQ(topo.hops(0, 1), 1);
}

TEST(TopologyTest, NodesOnSwitch) {
  Topology topo = make_chain_topology({2, 3}, 1000.0, 1000.0);
  EXPECT_EQ(topo.nodes_on_switch(0), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(topo.nodes_on_switch(1), (std::vector<NodeId>{2, 3, 4}));
}

TEST(TopologyTest, TrunkLinkOfRootThrows) {
  Topology topo = make_chain_topology({2, 2}, 1000.0, 1000.0);
  EXPECT_THROW(topo.trunk_link(0), util::CheckError);
  EXPECT_GE(topo.trunk_link(1), 0);
}

TEST(TopologyTest, InvalidConstructionRejected) {
  // Two roots.
  EXPECT_THROW(Topology({-1, -1}, {0, 1}, 1000.0, 1000.0), util::CheckError);
  // Cycle.
  EXPECT_THROW(Topology({1, 0}, {0, 1}, 1000.0, 1000.0), util::CheckError);
  // Bad node switch.
  EXPECT_THROW(Topology({-1}, {5}, 1000.0, 1000.0), util::CheckError);
  // Bad capacities.
  EXPECT_THROW(Topology({-1}, {0}, 0.0, 1000.0), util::CheckError);
}

TEST(ClusterTest, IitkClusterMatchesPaperSetup) {
  Cluster c = make_iitk_cluster();
  EXPECT_EQ(c.size(), 60);
  // 40 fast 12-core 4.6 GHz nodes then 20 slow 8-core 2.8 GHz nodes.
  EXPECT_EQ(c.node(0).spec.core_count, 12);
  EXPECT_DOUBLE_EQ(c.node(0).spec.cpu_freq_ghz, 4.6);
  EXPECT_EQ(c.node(59).spec.core_count, 8);
  EXPECT_DOUBLE_EQ(c.node(59).spec.cpu_freq_ghz, 2.8);
  EXPECT_EQ(c.topology().switch_count(), 4);
  EXPECT_EQ(c.total_cores(), 40 * 12 + 20 * 8);
  // Hostnames follow the paper's csews convention.
  EXPECT_EQ(c.node(0).spec.hostname, "csews1");
}

TEST(ClusterTest, IitkClusterSwitchSizesBalanced) {
  Cluster c = make_iitk_cluster();
  for (SwitchId s = 0; s < 4; ++s) {
    const auto nodes = c.topology().nodes_on_switch(s);
    EXPECT_EQ(nodes.size(), 15u);
  }
}

TEST(ClusterTest, FindHostname) {
  Cluster c = make_uniform_cluster(4);
  EXPECT_EQ(c.find_hostname("csews3"), 2);
  EXPECT_THROW(c.find_hostname("nope"), util::CheckError);
}

TEST(ClusterTest, AliveNodesReflectsDynamics) {
  Cluster c = make_uniform_cluster(3);
  c.mutable_node(1).dyn.alive = false;
  EXPECT_EQ(c.alive_nodes(), (std::vector<NodeId>{0, 2}));
}

TEST(ClusterTest, UniformClusterSpreadsOverSwitches) {
  Cluster c = make_uniform_cluster(10, 3);
  EXPECT_EQ(c.topology().switch_count(), 3);
  int total = 0;
  for (SwitchId s = 0; s < 3; ++s) {
    total += static_cast<int>(c.topology().nodes_on_switch(s).size());
  }
  EXPECT_EQ(total, 10);
}

TEST(ClusterTest, InvalidClusterRejected) {
  EXPECT_THROW(make_uniform_cluster(0), util::CheckError);
  EXPECT_THROW(make_uniform_cluster(2, 5), util::CheckError);
}

}  // namespace
}  // namespace nlarm::cluster
