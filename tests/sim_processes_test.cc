#include <gtest/gtest.h>

#include <cmath>

#include "sim/markov.h"
#include "sim/ou_process.h"
#include "util/check.h"
#include "util/stats.h"

namespace nlarm::sim {
namespace {

TEST(OuProcessTest, RevertsTowardMean) {
  Rng rng(1);
  OuProcess ou(10.0, /*reversion_rate=*/0.1, /*volatility=*/0.0,
               /*initial=*/0.0);
  for (int i = 0; i < 100; ++i) ou.step(1.0, rng);
  EXPECT_NEAR(ou.value(), 10.0, 0.01);
}

TEST(OuProcessTest, ZeroVolatilityIsDeterministicExponential) {
  Rng rng(2);
  OuProcess ou(0.0, 0.5, 0.0, 8.0);
  ou.step(1.0, rng);
  EXPECT_NEAR(ou.value(), 8.0 * std::exp(-0.5), 1e-12);
}

TEST(OuProcessTest, StationaryMomentsMatchTheory) {
  Rng rng(3);
  OuProcess ou(5.0, 0.2, 1.0, 5.0);
  util::StreamingStats stats;
  // Burn in, then sample.
  for (int i = 0; i < 500; ++i) ou.step(1.0, rng);
  for (int i = 0; i < 50000; ++i) stats.add(ou.step(1.0, rng));
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stdev(), ou.stationary_stdev(), 0.1);
}

TEST(OuProcessTest, StationaryStdevFormula) {
  Rng rng(4);
  OuProcess ou(0.0, 2.0, 3.0, 0.0);
  EXPECT_DOUBLE_EQ(ou.stationary_stdev(), 3.0 / std::sqrt(4.0));
}

TEST(OuProcessTest, ZeroStepKeepsValue) {
  Rng rng(5);
  OuProcess ou(1.0, 1.0, 1.0, 7.0);
  EXPECT_DOUBLE_EQ(ou.step(0.0, rng), 7.0);
}

TEST(OuProcessTest, StepSizeInvariance) {
  // One big step and many small steps have the same distribution; with zero
  // volatility they must agree exactly.
  Rng rng(6);
  OuProcess big(3.0, 0.3, 0.0, 10.0);
  OuProcess small(3.0, 0.3, 0.0, 10.0);
  big.step(10.0, rng);
  for (int i = 0; i < 100; ++i) small.step(0.1, rng);
  EXPECT_NEAR(big.value(), small.value(), 1e-9);
}

TEST(OuProcessTest, InvalidParamsRejected) {
  EXPECT_THROW(OuProcess(0.0, 0.0, 1.0, 0.0), util::CheckError);
  EXPECT_THROW(OuProcess(0.0, 1.0, -1.0, 0.0), util::CheckError);
  Rng rng(7);
  OuProcess ou(0.0, 1.0, 1.0, 0.0);
  EXPECT_THROW(ou.step(-1.0, rng), util::CheckError);
}

TEST(OnOffModulatorTest, DutyCycleMatchesHoldingTimes) {
  Rng rng(8);
  OnOffModulator mod(300.0, 100.0, false, rng);
  EXPECT_NEAR(mod.duty_cycle(), 0.25, 1e-12);
  double on_time = 0.0;
  const double dt = 10.0;
  const int steps = 100000;
  for (int i = 0; i < steps; ++i) {
    mod.step(dt, rng);
    on_time += mod.last_on_fraction() * dt;
  }
  EXPECT_NEAR(on_time / (steps * dt), 0.25, 0.02);
}

TEST(OnOffModulatorTest, OnFractionWithinBounds) {
  Rng rng(9);
  OnOffModulator mod(60.0, 60.0, true, rng);
  for (int i = 0; i < 1000; ++i) {
    mod.step(5.0, rng);
    EXPECT_GE(mod.last_on_fraction(), 0.0);
    EXPECT_LE(mod.last_on_fraction(), 1.0);
  }
}

TEST(OnOffModulatorTest, StateChangesEventually) {
  Rng rng(10);
  OnOffModulator mod(10.0, 10.0, false, rng);
  bool saw_on = false;
  bool saw_off = false;
  for (int i = 0; i < 1000; ++i) {
    if (mod.step(5.0, rng)) {
      saw_on = true;
    } else {
      saw_off = true;
    }
  }
  EXPECT_TRUE(saw_on);
  EXPECT_TRUE(saw_off);
}

TEST(OnOffModulatorTest, InvalidParamsRejected) {
  Rng rng(11);
  EXPECT_THROW(OnOffModulator(0.0, 10.0, false, rng), util::CheckError);
  OnOffModulator mod(10.0, 10.0, false, rng);
  EXPECT_THROW(mod.step(-1.0, rng), util::CheckError);
}

}  // namespace
}  // namespace nlarm::sim
