#include "core/broker.h"

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "test_helpers.h"
#include "util/check.h"

namespace nlarm::core {
namespace {

using nlarm::testing::TestNode;
using nlarm::testing::idle_nodes;
using nlarm::testing::make_snapshot;

AllocationRequest request_for(int nprocs, int ppn = 4) {
  AllocationRequest req;
  req.nprocs = nprocs;
  req.ppn = ppn;
  req.job = JobWeights::balanced();
  return req;
}

TEST(BrokerTest, AllocatesOnQuietCluster) {
  auto snap = make_snapshot(idle_nodes(6));
  NetworkLoadAwareAllocator allocator;
  ResourceBroker broker(allocator);
  const BrokerDecision decision = broker.decide(snap, request_for(8, 4));
  EXPECT_EQ(decision.action, BrokerDecision::Action::kAllocate);
  EXPECT_EQ(decision.allocation.nodes.size(), 2u);
  EXPECT_EQ(broker.decisions_made(), 1);
  EXPECT_EQ(broker.waits_recommended(), 0);
}

TEST(BrokerTest, RecommendsWaitingUnderExtremeLoad) {
  // §6: "If the overall load on the cluster is extremely high ... our tool
  // should recommend waiting rather than allocating it right away."
  std::vector<TestNode> nodes = idle_nodes(6);
  for (auto& n : nodes) n.cpu_load = 20.0;  // 2.5 load per core
  auto snap = make_snapshot(nodes);
  NetworkLoadAwareAllocator allocator;
  ResourceBroker broker(allocator);
  const BrokerDecision decision = broker.decide(snap, request_for(8, 4));
  EXPECT_EQ(decision.action, BrokerDecision::Action::kWait);
  EXPECT_NE(decision.reason.find("wait"), std::string::npos);
  EXPECT_GT(decision.cluster_load_per_core, 1.0);
  EXPECT_EQ(broker.waits_recommended(), 1);
}

TEST(BrokerTest, ThresholdIsConfigurable) {
  std::vector<TestNode> nodes = idle_nodes(4);
  for (auto& n : nodes) n.cpu_load = 4.0;  // 0.5 per core
  auto snap = make_snapshot(nodes);
  NetworkLoadAwareAllocator allocator;
  BrokerPolicy strict;
  strict.max_load_per_core = 0.25;
  ResourceBroker broker(allocator, strict);
  EXPECT_EQ(broker.decide(snap, request_for(4)).action,
            BrokerDecision::Action::kWait);
  BrokerPolicy lenient;
  lenient.max_load_per_core = 2.0;
  ResourceBroker broker2(allocator, lenient);
  EXPECT_EQ(broker2.decide(snap, request_for(4)).action,
            BrokerDecision::Action::kAllocate);
}

TEST(BrokerTest, RejectsOversubscriptionByDefault) {
  auto snap = make_snapshot(idle_nodes(2));  // 2 nodes × ppn 4 = 8 slots
  NetworkLoadAwareAllocator allocator;
  ResourceBroker broker(allocator);
  const BrokerDecision decision = broker.decide(snap, request_for(32, 4));
  EXPECT_EQ(decision.action, BrokerDecision::Action::kWait);
  EXPECT_NE(decision.reason.find("capacity"), std::string::npos);
  EXPECT_EQ(decision.effective_capacity, 8);
}

TEST(BrokerTest, OversubscriptionAllowedWhenConfigured) {
  auto snap = make_snapshot(idle_nodes(2));
  NetworkLoadAwareAllocator allocator;
  BrokerPolicy policy;
  policy.allow_oversubscription = true;
  ResourceBroker broker(allocator, policy);
  const BrokerDecision decision = broker.decide(snap, request_for(32, 4));
  EXPECT_EQ(decision.action, BrokerDecision::Action::kAllocate);
  EXPECT_EQ(decision.allocation.total_procs, 32);
}

TEST(BrokerTest, WaitsWhenTooFewUsableNodes) {
  std::vector<TestNode> nodes = idle_nodes(3);
  nodes[1].live = false;
  nodes[2].live = false;
  auto snap = make_snapshot(nodes);
  NetworkLoadAwareAllocator allocator;
  BrokerPolicy policy;
  policy.min_usable_nodes = 2;
  ResourceBroker broker(allocator, policy);
  const BrokerDecision decision = broker.decide(snap, request_for(4));
  EXPECT_EQ(decision.action, BrokerDecision::Action::kWait);
}

TEST(BrokerTest, WorksWithAnyAllocator) {
  auto snap = make_snapshot(idle_nodes(4));
  RandomAllocator random(9);
  ResourceBroker broker(random);
  const BrokerDecision decision = broker.decide(snap, request_for(8, 4));
  EXPECT_EQ(decision.action, BrokerDecision::Action::kAllocate);
  EXPECT_EQ(decision.allocation.policy, "random");
}

TEST(BrokerTest, InvalidPolicyRejected) {
  NetworkLoadAwareAllocator allocator;
  BrokerPolicy bad;
  bad.max_load_per_core = 0.0;
  EXPECT_THROW(ResourceBroker(allocator, bad), util::CheckError);
  BrokerPolicy bad2;
  bad2.min_usable_nodes = 0;
  EXPECT_THROW(ResourceBroker(allocator, bad2), util::CheckError);
}

}  // namespace
}  // namespace nlarm::core
