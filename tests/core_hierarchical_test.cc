#include "core/hierarchical.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "test_helpers.h"
#include "util/check.h"

namespace nlarm::core {
namespace {

using nlarm::testing::TestNode;
using nlarm::testing::idle_nodes;
using nlarm::testing::make_snapshot;
using nlarm::testing::set_pair;

/// Snapshot with `groups` switch groups of `per_group` nodes; intra-group
/// pairs get good network, cross-group pairs get progressively worse.
monitor::ClusterSnapshot grouped_snapshot(int groups, int per_group,
                                          double cross_latency = 400.0,
                                          double cross_bw = 500.0) {
  const int n = groups * per_group;
  auto snap = make_snapshot(idle_nodes(n), 80.0, 950.0, 1000.0);
  for (int i = 0; i < n; ++i) {
    snap.nodes[static_cast<std::size_t>(i)].spec.switch_id = i / per_group;
  }
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (u / per_group != v / per_group) {
        set_pair(snap, u, v, cross_latency, cross_bw);
      }
    }
  }
  return snap;
}

AllocationRequest request_for(int nprocs, int ppn = 4) {
  AllocationRequest req;
  req.nprocs = nprocs;
  req.ppn = ppn;
  req.job = JobWeights{0.3, 0.7};
  return req;
}

TEST(FormGroupsTest, PartitionsBySwitch) {
  auto snap = grouped_snapshot(3, 4);
  const auto usable = snap.usable_nodes();
  const auto groups = form_groups(snap, usable);
  ASSERT_EQ(groups.size(), 3u);
  for (const NodeGroup& group : groups) {
    EXPECT_EQ(group.nodes.size(), 4u);
    for (cluster::NodeId id : group.nodes) {
      EXPECT_EQ(snap.nodes[static_cast<std::size_t>(id)].spec.switch_id,
                group.switch_id);
    }
  }
}

TEST(HierarchicalTest, SatisfiesRequest) {
  auto snap = grouped_snapshot(4, 5);
  HierarchicalAllocator allocator;
  for (int nprocs : {4, 8, 16, 20}) {
    const Allocation alloc = allocator.allocate(snap, request_for(nprocs));
    EXPECT_EQ(std::accumulate(alloc.procs_per_node.begin(),
                              alloc.procs_per_node.end(), 0),
              nprocs);
    std::set<cluster::NodeId> unique(alloc.nodes.begin(), alloc.nodes.end());
    EXPECT_EQ(unique.size(), alloc.nodes.size());
    EXPECT_EQ(alloc.policy, "hierarchical");
  }
}

TEST(HierarchicalTest, StaysInsideOneGroupWhenItFits) {
  auto snap = grouped_snapshot(3, 4);
  HierarchicalAllocator allocator;
  // 12 procs at ppn 4 = 3 nodes; one 4-node group suffices.
  const Allocation alloc = allocator.allocate(snap, request_for(12));
  ASSERT_EQ(alloc.nodes.size(), 3u);
  std::set<int> switches;
  for (cluster::NodeId id : alloc.nodes) {
    switches.insert(snap.nodes[static_cast<std::size_t>(id)].spec.switch_id);
  }
  EXPECT_EQ(switches.size(), 1u);
  EXPECT_EQ(allocator.last_chosen_groups().size(), 1u);
}

TEST(HierarchicalTest, SpillsToSecondGroupWhenNecessary) {
  auto snap = grouped_snapshot(3, 4);
  HierarchicalAllocator allocator;
  // 24 procs = 6 nodes; needs two groups.
  const Allocation alloc = allocator.allocate(snap, request_for(24));
  EXPECT_EQ(alloc.nodes.size(), 6u);
  EXPECT_GE(allocator.last_chosen_groups().size(), 2u);
}

TEST(HierarchicalTest, AvoidsLoadedGroup) {
  auto snap = grouped_snapshot(3, 4);
  // Load every node in group 0.
  for (int i = 0; i < 4; ++i) {
    auto& node = snap.nodes[static_cast<std::size_t>(i)];
    node.cpu_load = 8.0;
    node.cpu_load_avg = {8.0, 8.0, 8.0};
  }
  HierarchicalAllocator allocator;
  const Allocation alloc = allocator.allocate(snap, request_for(12));
  for (cluster::NodeId id : alloc.nodes) {
    EXPECT_GE(id, 4);  // group 0 avoided
  }
}

TEST(HierarchicalTest, AvoidsPoorlyConnectedGroupPair) {
  auto snap = grouped_snapshot(3, 2);  // groups of 2, need 2 groups for 16p
  // Make group 0 ↔ group 1 and 0 ↔ 2 terrible, 1 ↔ 2 decent.
  auto worsen = [&](int ga, int gb, double lat, double bw) {
    for (int u = ga * 2; u < ga * 2 + 2; ++u) {
      for (int v = gb * 2; v < gb * 2 + 2; ++v) {
        set_pair(snap, u, v, lat, bw);
      }
    }
  };
  worsen(0, 1, 900.0, 100.0);
  worsen(0, 2, 900.0, 100.0);
  worsen(1, 2, 120.0, 900.0);
  HierarchicalAllocator allocator;
  const Allocation alloc = allocator.allocate(snap, request_for(16));
  // 4 nodes needed → two groups; the pair {1,2} is clearly best.
  for (cluster::NodeId id : alloc.nodes) {
    EXPECT_GE(id, 2);  // no group-0 node
  }
}

TEST(HierarchicalTest, MatchesFlatAllocatorOnSmallCluster) {
  // On one switch the hierarchy degenerates; results should satisfy the
  // same request with comparable quality (same node set, order aside).
  auto snap = make_snapshot(idle_nodes(6), 80.0, 950.0, 1000.0);
  snap.nodes[2].cpu_load = 9.0;
  snap.nodes[2].cpu_load_avg = {9.0, 9.0, 9.0};
  HierarchicalAllocator hierarchical;
  NetworkLoadAwareAllocator flat;
  const Allocation a = hierarchical.allocate(snap, request_for(8));
  const Allocation b = flat.allocate(snap, request_for(8));
  const std::set<cluster::NodeId> sa(a.nodes.begin(), a.nodes.end());
  const std::set<cluster::NodeId> sb(b.nodes.begin(), b.nodes.end());
  EXPECT_EQ(sa, sb);
}

TEST(HierarchicalTest, PairSampleZeroMeansExhaustive) {
  auto snap = grouped_snapshot(2, 3);
  HierarchicalOptions options;
  options.pair_sample = 0;
  HierarchicalAllocator allocator(options);
  EXPECT_NO_THROW(allocator.allocate(snap, request_for(8)));
  HierarchicalOptions bad;
  bad.pair_sample = -1;
  EXPECT_THROW(HierarchicalAllocator{bad}, util::CheckError);
}

TEST(HierarchicalTest, Deterministic) {
  auto snap = grouped_snapshot(4, 4);
  snap.nodes[5].cpu_load = 3.0;
  snap.nodes[5].cpu_load_avg = {3.0, 3.0, 3.0};
  HierarchicalAllocator a;
  HierarchicalAllocator b;
  EXPECT_EQ(a.allocate(snap, request_for(16)).nodes,
            b.allocate(snap, request_for(16)).nodes);
}

TEST(HierarchicalTest, NoUsableNodesThrows) {
  std::vector<TestNode> nodes = idle_nodes(2);
  nodes[0].live = false;
  nodes[1].live = false;
  auto snap = make_snapshot(nodes);
  HierarchicalAllocator allocator;
  EXPECT_THROW(allocator.allocate(snap, request_for(4)), util::CheckError);
}

}  // namespace
}  // namespace nlarm::core
