// Stochastic node failures: the scenario kills/reboots nodes; the monitor
// and allocator must track it.
#include <gtest/gtest.h>

#include "core/allocator.h"
#include "exp/experiment.h"
#include "net/flows.h"
#include "workload/scenario.h"

namespace nlarm::workload {
namespace {

TEST(NodeFailureTest, DisabledByDefault) {
  cluster::Cluster c = cluster::make_uniform_cluster(6);
  net::FlowSet flows;
  net::NetworkModel network(c, flows);
  Scenario scenario(c, flows, network, ScenarioOptions{});
  scenario.warm_up(3600.0);
  EXPECT_EQ(scenario.failures_injected(), 0);
  EXPECT_EQ(c.alive_nodes().size(), 6u);
}

TEST(NodeFailureTest, NodesFailAndReboot) {
  cluster::Cluster c = cluster::make_uniform_cluster(10);
  net::FlowSet flows;
  net::NetworkModel network(c, flows);
  ScenarioOptions options;
  options.seed = 3;
  options.mean_node_uptime_s = 600.0;   // frequent failures for the test
  options.mean_node_downtime_s = 120.0;
  Scenario scenario(c, flows, network, options);
  bool saw_dead = false;
  double down_node_time = 0.0;
  for (int i = 0; i < 3000; ++i) {
    scenario.warm_up(2.0);
    const auto alive = c.alive_nodes();
    if (alive.size() < 10) {
      saw_dead = true;
      down_node_time += 2.0 * (10 - alive.size());
    }
  }
  EXPECT_TRUE(saw_dead);
  EXPECT_GT(scenario.failures_injected(), 0);
  // Reboots happen: average downtime fraction stays bounded well below 1.
  EXPECT_LT(down_node_time / (3000.0 * 2.0 * 10.0), 0.6);
  // Expected downtime fraction ≈ 120/(600+120) ≈ 0.17.
  EXPECT_GT(down_node_time, 0.0);
}

TEST(NodeFailureTest, RebootedNodeComesBackIdle) {
  cluster::Cluster c = cluster::make_uniform_cluster(4);
  net::FlowSet flows;
  net::NetworkModel network(c, flows);
  ScenarioOptions options;
  options.seed = 11;
  options.mean_node_uptime_s = 200.0;
  options.mean_node_downtime_s = 50.0;
  Scenario scenario(c, flows, network, options);
  // Run long enough for several failure/reboot cycles.
  scenario.warm_up(4.0 * 3600.0);
  EXPECT_GT(scenario.failures_injected(), 0);
}

TEST(NodeFailureTest, EndToEndAllocatorAvoidsDeadNodes) {
  exp::Testbed::Options options;
  options.seed = 9;
  options.cluster.fast_nodes = 8;
  options.cluster.slow_nodes = 4;
  options.cluster.switches = 3;
  auto testbed = exp::Testbed::make(options);
  // Kill two nodes by hand (the scenario API path is stochastic; here we
  // want a deterministic end-to-end check through monitor + allocator).
  testbed->cluster().mutable_node(2).dyn.alive = false;
  testbed->cluster().mutable_node(7).dyn.alive = false;
  testbed->sim().run_until(testbed->sim().now() + 30.0);  // LivehostsD tick

  const monitor::ClusterSnapshot snap = testbed->snapshot();
  EXPECT_FALSE(snap.livehosts[2]);
  EXPECT_FALSE(snap.livehosts[7]);

  core::AllocationRequest request;
  request.nprocs = 24;
  request.ppn = 4;
  request.job = core::JobWeights::balanced();
  core::NetworkLoadAwareAllocator allocator;
  const core::Allocation alloc = allocator.allocate(snap, request);
  for (cluster::NodeId id : alloc.nodes) {
    EXPECT_NE(id, 2);
    EXPECT_NE(id, 7);
  }
}

}  // namespace
}  // namespace nlarm::workload
