// Property tests for the extension subsystems: job queue invariants over
// random job streams, hierarchical-allocator invariants over random
// snapshots, and forecaster sanity over signal families.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "core/hierarchical.h"
#include "core/job_queue.h"
#include "monitor/forecast.h"
#include "sim/rng.h"
#include "test_helpers.h"

namespace nlarm {
namespace {

using nlarm::testing::TestNode;
using nlarm::testing::make_snapshot;

monitor::ClusterSnapshot random_grouped_snapshot(std::uint64_t seed, int n,
                                                 int switches) {
  sim::Rng rng(seed);
  std::vector<TestNode> nodes;
  for (int i = 0; i < n; ++i) {
    TestNode t;
    t.cpu_load = rng.uniform(0.0, 8.0);
    t.cpu_util = rng.uniform(0.0, 1.0);
    t.net_flow_mbps = rng.uniform(0.0, 600.0);
    nodes.push_back(t);
  }
  auto snap = make_snapshot(nodes);
  for (int i = 0; i < n; ++i) {
    snap.nodes[static_cast<std::size_t>(i)].spec.switch_id = i % switches;
  }
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      nlarm::testing::set_pair(snap, u, v, rng.uniform(60.0, 700.0),
                               rng.uniform(100.0, 1000.0));
    }
  }
  return snap;
}

class QueueProperty : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, QueueProperty,
                         ::testing::Values(1u, 7u, 21u, 63u, 127u));

TEST_P(QueueProperty, NoDoubleBookingUnderRandomStreams) {
  sim::Rng rng(GetParam());
  core::NetworkLoadAwareAllocator allocator;
  core::JobQueue queue(allocator);
  auto snap = make_snapshot(nlarm::testing::idle_nodes(12));

  std::vector<core::JobId> running_ids;
  double now = 0.0;
  for (int step = 0; step < 60; ++step) {
    now += rng.uniform(1.0, 30.0);
    if (rng.chance(0.5)) {
      core::AllocationRequest request;
      request.nprocs = 4 * static_cast<int>(rng.uniform_int(1, 4));
      request.ppn = 4;
      request.job = core::JobWeights::balanced();
      queue.submit("job", request, now);
    }
    if (!running_ids.empty() && rng.chance(0.4)) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(running_ids.size()) - 1));
      queue.release(running_ids[idx]);
      running_ids.erase(running_ids.begin() +
                        static_cast<std::ptrdiff_t>(idx));
    }
    const auto started = queue.poll(snap, now);
    for (const auto& job : started) running_ids.push_back(job.id);

    // Invariant: reserved nodes are exactly the union of running jobs'
    // nodes, with no duplicates.
    const auto reserved = queue.reserved_nodes();
    const std::set<cluster::NodeId> unique(reserved.begin(), reserved.end());
    EXPECT_EQ(unique.size(), reserved.size());
    EXPECT_EQ(queue.running(), running_ids.size());
    EXPECT_LE(reserved.size(), 12u);
  }
}

TEST_P(QueueProperty, EveryJobEventuallyStartsWhenClusterDrains) {
  sim::Rng rng(GetParam() ^ 0xabcd);
  core::NetworkLoadAwareAllocator allocator;
  core::JobQueue queue(allocator);
  auto snap = make_snapshot(nlarm::testing::idle_nodes(8));
  double now = 0.0;
  const int total = 12;
  for (int j = 0; j < total; ++j) {
    core::AllocationRequest request;
    request.nprocs = 4 * static_cast<int>(rng.uniform_int(1, 8));
    request.ppn = 4;
    request.job = core::JobWeights::balanced();
    queue.submit("job", request, now);
  }
  int started_total = 0;
  std::vector<core::JobId> running_ids;
  for (int round = 0; round < 200 && started_total < total; ++round) {
    now += 10.0;
    const auto started = queue.poll(snap, now);
    for (const auto& job : started) running_ids.push_back(job.id);
    started_total += static_cast<int>(started.size());
    // Release the oldest running job every other round.
    if (!running_ids.empty() && round % 2 == 1) {
      queue.release(running_ids.front());
      running_ids.erase(running_ids.begin());
    }
  }
  EXPECT_EQ(started_total, total);
  EXPECT_EQ(queue.pending(), 0u);
}

class HierarchicalProperty : public ::testing::TestWithParam<std::uint64_t> {
};
INSTANTIATE_TEST_SUITE_P(Seeds, HierarchicalProperty,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u));

TEST_P(HierarchicalProperty, SatisfiesAndDoesNotDuplicate) {
  const auto snap = random_grouped_snapshot(GetParam(), 18, 3);
  core::HierarchicalAllocator allocator;
  for (int nprocs : {4, 12, 24, 48}) {
    core::AllocationRequest request;
    request.nprocs = nprocs;
    request.ppn = 4;
    request.job = core::JobWeights{0.3, 0.7};
    const core::Allocation alloc = allocator.allocate(snap, request);
    EXPECT_EQ(std::accumulate(alloc.procs_per_node.begin(),
                              alloc.procs_per_node.end(), 0),
              nprocs);
    const std::set<cluster::NodeId> unique(alloc.nodes.begin(),
                                           alloc.nodes.end());
    EXPECT_EQ(unique.size(), alloc.nodes.size());
  }
}

TEST_P(HierarchicalProperty, ChosenGroupsCoverSelection) {
  const auto snap = random_grouped_snapshot(GetParam() ^ 0x77, 15, 3);
  core::HierarchicalAllocator allocator;
  core::AllocationRequest request;
  request.nprocs = 20;
  request.ppn = 4;
  request.job = core::JobWeights{0.3, 0.7};
  const core::Allocation alloc = allocator.allocate(snap, request);
  std::set<int> chosen_switches;
  for (std::size_t g : allocator.last_chosen_groups()) {
    chosen_switches.insert(allocator.last_groups()[g].switch_id);
  }
  for (cluster::NodeId id : alloc.nodes) {
    EXPECT_TRUE(chosen_switches.count(
        snap.nodes[static_cast<std::size_t>(id)].spec.switch_id))
        << "node outside the chosen groups";
  }
}

class ForecasterProperty : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, ForecasterProperty,
                         ::testing::Values(3u, 9u, 27u, 81u));

TEST_P(ForecasterProperty, BeatsWorstPredictorOnMixedSignals) {
  // The adaptive pick's error must never exceed the worst bank member's by
  // construction; sanity-check it also stays within the best's error plus
  // adaptation slack across signal families.
  sim::Rng rng(GetParam());
  for (int family = 0; family < 3; ++family) {
    monitor::AdaptiveForecaster forecaster;
    double x = 5.0;
    double abs_err = 0.0;
    int scored = 0;
    for (int t = 0; t < 300; ++t) {
      double value = 0.0;
      switch (family) {
        case 0:  // white noise around a mean
          value = 5.0 + rng.normal(0.0, 1.0);
          break;
        case 1:  // random walk
          x += rng.normal(0.0, 0.5);
          value = x;
          break;
        case 2:  // AR(1)
          x = 2.0 + 0.8 * (x - 2.0) + rng.normal(0.0, 0.3);
          value = x;
          break;
      }
      if (t > 0) {
        abs_err += std::abs(forecaster.forecast() - value);
        ++scored;
      }
      forecaster.observe(t, value);
    }
    const double adaptive_mae = abs_err / scored;
    // The winner's self-reported error should be in the same ballpark.
    EXPECT_LT(adaptive_mae, forecaster.best_error() * 2.0 + 1.0)
        << "family " << family;
    EXPECT_TRUE(std::isfinite(adaptive_mae));
  }
}

TEST_P(ForecasterProperty, ForecastsNonNegativeLoadsAfterClamping) {
  sim::Rng rng(GetParam() ^ 0x5555);
  monitor::MonitorStore store(2);
  monitor::ForecastingStore forecasting(store);
  monitor::NodeSnapshot record;
  record.spec.id = 0;
  record.spec.core_count = 8;
  record.spec.cpu_freq_ghz = 3.0;
  record.spec.total_mem_gb = 16.0;
  for (int t = 0; t < 100; ++t) {
    record.cpu_load = std::max(0.0, rng.normal(0.5, 1.0));
    record.cpu_util = rng.uniform(0.0, 1.0);
    record.net_flow_mbps = std::max(0.0, rng.normal(50.0, 80.0));
    store.write_node_record(t, record);
    forecasting.feed(t);
    const auto snap = forecasting.assemble_forecast(t);
    EXPECT_GE(snap.nodes[0].cpu_load, 0.0);
    EXPECT_GE(snap.nodes[0].net_flow_mbps, 0.0);
    EXPECT_LE(snap.nodes[0].cpu_util, 1.0);
  }
}

}  // namespace
}  // namespace nlarm
