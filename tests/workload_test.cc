#include <gtest/gtest.h>

#include <sstream>

#include "cluster/cluster.h"
#include "net/network_model.h"
#include "util/check.h"
#include "util/stats.h"
#include "workload/net_flow_gen.h"
#include "workload/node_load_gen.h"
#include "workload/scenario.h"
#include "workload/trace.h"

namespace nlarm::workload {
namespace {

TEST(NodeLoadGeneratorTest, ProducesValidDynamics) {
  cluster::Cluster c = cluster::make_uniform_cluster(1);
  sim::Rng rng(1);
  NodePersonality p;
  NodeLoadGenerator gen(c.node(0).spec, p, rng);
  for (int i = 0; i < 2000; ++i) {
    gen.step(2.0, c.mutable_node(0));
    const auto& dyn = c.node(0).dyn;
    EXPECT_GE(dyn.cpu_load, 0.0);
    EXPECT_GE(dyn.cpu_util, 0.0);
    EXPECT_LE(dyn.cpu_util, 1.0);
    EXPECT_GE(dyn.mem_used_gb, 0.0);
    EXPECT_LE(dyn.mem_used_gb, c.node(0).spec.total_mem_gb);
    EXPECT_GE(dyn.users, 0);
  }
}

TEST(NodeLoadGeneratorTest, LongRunStatisticsMatchPersonality) {
  cluster::Cluster c = cluster::make_uniform_cluster(1);
  sim::Rng rng(2);
  NodePersonality p;
  p.base_load_mean = 0.5;
  p.spike_magnitude = 0.0;  // isolate the baseline
  p.mem_frac_mean = 0.3;
  NodeLoadGenerator gen(c.node(0).spec, p, rng);
  util::StreamingStats load;
  util::StreamingStats mem;
  for (int i = 0; i < 20000; ++i) {
    gen.step(2.0, c.mutable_node(0));
    load.add(c.node(0).dyn.cpu_load);
    mem.add(c.node(0).dyn.mem_used_gb / c.node(0).spec.total_mem_gb);
  }
  EXPECT_NEAR(load.mean(), 0.5, 0.12);
  EXPECT_NEAR(mem.mean(), 0.3, 0.06);
}

TEST(NodeLoadGeneratorTest, SpikesRaiseLoad) {
  cluster::Cluster c = cluster::make_uniform_cluster(1);
  sim::Rng rng(3);
  NodePersonality p;
  p.base_load_mean = 0.2;
  p.spike_magnitude = 8.0;
  p.mean_spike_gap_s = 600.0;  // frequent spikes for the test
  p.mean_spike_len_s = 600.0;
  NodeLoadGenerator gen(c.node(0).spec, p, rng);
  double max_load = 0.0;
  for (int i = 0; i < 5000; ++i) {
    gen.step(2.0, c.mutable_node(0));
    max_load = std::max(max_load, c.node(0).dyn.cpu_load);
  }
  EXPECT_GT(max_load, 3.0);  // spikes visible
}

TEST(PersonalityTest, FlavorScalesBusiness) {
  sim::Rng rng_quiet(4);
  sim::Rng rng_heavy(4);
  double quiet_sum = 0.0;
  double heavy_sum = 0.0;
  for (int i = 0; i < 200; ++i) {
    quiet_sum += draw_personality(rng_quiet, 0.2).base_load_mean;
    heavy_sum += draw_personality(rng_heavy, 4.0).base_load_mean;
  }
  EXPECT_GT(heavy_sum, quiet_sum * 5.0);
}

TEST(BackgroundTrafficTest, ElephantsComeAndGo) {
  cluster::Cluster c = cluster::make_uniform_cluster(8, 2);
  net::FlowSet flows;
  net::NetworkModel network(c, flows);
  TrafficParams params;
  params.elephant_interarrival_s = 10.0;
  params.elephant_mean_duration_s = 30.0;
  BackgroundTraffic traffic(c, flows, network, params, sim::Rng(5));
  double now = 0.0;
  std::size_t max_active = 0;
  for (int i = 0; i < 2000; ++i) {
    now += 2.0;
    traffic.step(now, 2.0);
    max_active = std::max(max_active, traffic.active_elephants());
  }
  EXPECT_GT(max_active, 0u);
  // Stationary count ≈ duration / interarrival = 3; far less than arrivals.
  EXPECT_LT(max_active, 30u);
  EXPECT_EQ(flows.size(), traffic.active_elephants());
}

TEST(BackgroundTrafficTest, ChatterLoadsUplinks) {
  cluster::Cluster c = cluster::make_uniform_cluster(4);
  net::FlowSet flows;
  net::NetworkModel network(c, flows);
  TrafficParams params;
  params.chatter_mean_off_s = 10.0;
  params.chatter_mean_on_s = 50.0;  // mostly on
  params.elephant_interarrival_s = 1e9;  // no elephants
  BackgroundTraffic traffic(c, flows, network, params, sim::Rng(6));
  double total_chatter = 0.0;
  double now = 0.0;
  for (int i = 0; i < 500; ++i) {
    now += 2.0;
    traffic.step(now, 2.0);
    for (cluster::NodeId n = 0; n < c.size(); ++n) {
      total_chatter += network.uplink_background_mbps(n);
    }
  }
  EXPECT_GT(total_chatter, 0.0);
}

TEST(ScenarioTest, KindParsingRoundTrips) {
  EXPECT_EQ(parse_scenario_kind("quiet"), ScenarioKind::kQuiet);
  EXPECT_EQ(parse_scenario_kind("Shared_Lab"), ScenarioKind::kSharedLab);
  EXPECT_EQ(parse_scenario_kind("hotspot"), ScenarioKind::kHotspot);
  EXPECT_EQ(parse_scenario_kind("heavy"), ScenarioKind::kHeavy);
  EXPECT_THROW(parse_scenario_kind("bogus"), util::CheckError);
  EXPECT_EQ(to_string(ScenarioKind::kHeavy), "heavy");
}

TEST(ScenarioTest, TickUpdatesAllNodes) {
  cluster::Cluster c = cluster::make_uniform_cluster(5);
  net::FlowSet flows;
  net::NetworkModel network(c, flows);
  ScenarioOptions options;
  Scenario scenario(c, flows, network, options);
  scenario.warm_up(600.0);
  // After warm-up, nodes should show non-trivial utilization.
  double util_sum = 0.0;
  for (cluster::NodeId n = 0; n < c.size(); ++n) {
    util_sum += c.node(n).dyn.cpu_util;
  }
  EXPECT_GT(util_sum, 0.0);
}

TEST(ScenarioTest, HeavyLoadsMoreThanQuiet) {
  auto run = [](ScenarioKind kind) {
    cluster::Cluster c = cluster::make_uniform_cluster(10);
    net::FlowSet flows;
    net::NetworkModel network(c, flows);
    ScenarioOptions options;
    options.kind = kind;
    options.seed = 7;
    Scenario scenario(c, flows, network, options);
    scenario.warm_up(3600.0);
    double load = 0.0;
    for (cluster::NodeId n = 0; n < c.size(); ++n) {
      load += c.node(n).dyn.cpu_load;
    }
    return load;
  };
  EXPECT_GT(run(ScenarioKind::kHeavy), run(ScenarioKind::kQuiet) * 3.0);
}

TEST(ScenarioTest, AttachDrivesTicksThroughSimulation) {
  cluster::Cluster c = cluster::make_uniform_cluster(3);
  net::FlowSet flows;
  net::NetworkModel network(c, flows);
  ScenarioOptions options;
  Scenario scenario(c, flows, network, options);
  sim::Simulation sim(9);
  scenario.attach(sim);
  sim.run_until(120.0);
  double util_sum = 0.0;
  for (cluster::NodeId n = 0; n < c.size(); ++n) {
    util_sum += c.node(n).dyn.cpu_util;
  }
  EXPECT_GT(util_sum, 0.0);
  EXPECT_THROW(scenario.attach(sim), util::CheckError);  // only once
}

TEST(ScenarioTest, DeterministicUnderSeed) {
  auto run = [](std::uint64_t seed) {
    cluster::Cluster c = cluster::make_uniform_cluster(4);
    net::FlowSet flows;
    net::NetworkModel network(c, flows);
    ScenarioOptions options;
    options.seed = seed;
    Scenario scenario(c, flows, network, options);
    scenario.warm_up(300.0);
    return c.node(2).dyn.cpu_load;
  };
  EXPECT_DOUBLE_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

TEST(TraceRecorderTest, RecordsChannels) {
  TraceRecorder recorder;
  double x = 0.0;
  recorder.add_channel("x", [&] { return x; });
  recorder.sample(0.0);
  x = 5.0;
  recorder.sample(10.0);
  const TimeSeries& series = recorder.series("x");
  ASSERT_EQ(series.values.size(), 2u);
  EXPECT_DOUBLE_EQ(series.values[1], 5.0);
  EXPECT_DOUBLE_EQ(series.value_at(3.0), 0.0);
  EXPECT_DOUBLE_EQ(series.value_at(10.0), 5.0);
  EXPECT_DOUBLE_EQ(series.value_at(99.0), 5.0);
}

TEST(TraceRecorderTest, DuplicateChannelRejected) {
  TraceRecorder recorder;
  recorder.add_channel("x", [] { return 0.0; });
  EXPECT_THROW(recorder.add_channel("x", [] { return 1.0; }),
               util::CheckError);
}

TEST(TraceRecorderTest, CsvRoundTrip) {
  TraceRecorder recorder;
  double v = 1.0;
  recorder.add_channel("a", [&] { return v; });
  recorder.add_channel("b", [&] { return v * 2; });
  recorder.sample(0.0);
  v = 3.0;
  recorder.sample(1.0);

  std::ostringstream out;
  recorder.write_csv(out);
  std::istringstream in(out.str());
  const auto series = load_trace_csv(in);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].name, "a");
  EXPECT_DOUBLE_EQ(series[1].values[1], 6.0);
}

TEST(TraceRecorderTest, AttachSamplesPeriodically) {
  TraceRecorder recorder;
  sim::Simulation sim;
  recorder.add_channel("t", [&] { return sim.now(); });
  recorder.attach(sim, 5.0);
  sim.run_until(20.0);
  EXPECT_EQ(recorder.series("t").values.size(), 4u);
}

}  // namespace
}  // namespace nlarm::workload
