// Telemetry plane: exact routing/format checks through handle() (no
// sockets), then the same contracts end-to-end over a real ephemeral-port
// server with the bundled HTTP client, including the /readyz flip on a
// stale epoch and scrapes racing live metric writers (the tsan target).
#include "obs/telemetry_server.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/catalog.h"
#include "obs/http_client.h"
#include "obs/metrics.h"

namespace nlarm::obs {
namespace {

EpochStatus healthy_status() {
  EpochStatus status;
  status.published = true;
  status.epoch = 42;
  status.age_seconds = 3.5;
  status.max_age_seconds = 120.0;
  status.usable_nodes = 14;
  status.quarantined = 2;
  status.pair_fallbacks = 5;
  status.degraded = true;
  status.tiled_state_bytes = 4096;
  return status;
}

TEST(TelemetryTest, EpochStatusJsonAndReadiness) {
  const EpochStatus status = healthy_status();
  EXPECT_TRUE(status.ready());
  EXPECT_NEAR(status.staleness_burn(), 3.5 / 120.0, 1e-12);
  const std::string json = status.to_json();
  EXPECT_NE(json.find("\"published\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"epoch\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"usable_nodes\":14"), std::string::npos) << json;
  EXPECT_NE(json.find("\"quarantined\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pair_fallbacks\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tiled_state_bytes\":4096"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"ready\":true"), std::string::npos) << json;

  EpochStatus stale = status;
  stale.age_seconds = 200.0;
  EXPECT_FALSE(stale.ready());
  EXPECT_GT(stale.staleness_burn(), 1.0);

  EpochStatus unbounded = status;
  unbounded.max_age_seconds = 0.0;  // no bound configured: always ready
  unbounded.age_seconds = 1e9;
  EXPECT_TRUE(unbounded.ready());
  EXPECT_DOUBLE_EQ(unbounded.staleness_burn(), 0.0);
}

TEST(TelemetryTest, HandleRoutesMetricsHealthzAndEpoch) {
  metrics::register_all();
  TelemetryServer server({}, [] { return healthy_status(); });

  const std::string metrics =
      server.handle("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("nlarm_broker_decisions_total"), std::string::npos);
  EXPECT_NE(metrics.find("nlarm_serve_decide_p99_seconds"),
            std::string::npos);

  const std::string healthz = server.handle("GET /healthz HTTP/1.1\r\n\r\n");
  EXPECT_NE(healthz.find("200 OK"), std::string::npos);
  EXPECT_NE(healthz.find("ok\n"), std::string::npos);

  const std::string epoch = server.handle("GET /epoch HTTP/1.1\r\n\r\n");
  EXPECT_NE(epoch.find("application/json"), std::string::npos);
  EXPECT_NE(epoch.find("\"epoch\":42"), std::string::npos);

  const std::string spans = server.handle("GET /spans HTTP/1.1\r\n\r\n");
  EXPECT_NE(spans.find("200 OK"), std::string::npos);
}

TEST(TelemetryTest, HandleRejectsBadRequests) {
  TelemetryServer server;
  const double errors_before = metrics::telemetry_scrape_errors().value();
  EXPECT_NE(server.handle("GET /nope HTTP/1.1\r\n\r\n").find("404"),
            std::string::npos);
  EXPECT_NE(server.handle("POST /metrics HTTP/1.1\r\n\r\n").find("405"),
            std::string::npos);
  EXPECT_NE(server.handle("garbage").find("400"), std::string::npos);
  EXPECT_EQ(metrics::telemetry_scrape_errors().value(), errors_before + 3);
}

TEST(TelemetryTest, ReadyzFlipsWhenTheEpochGoesStale) {
  // The provider is consulted per request, so readiness flips within one
  // scrape of the epoch exceeding its age bound — no server restart.
  auto age = std::make_shared<std::atomic<double>>(10.0);
  TelemetryServer server({}, [age] {
    EpochStatus status = healthy_status();
    status.age_seconds = age->load();
    return status;
  });
  EXPECT_NE(server.handle("GET /readyz HTTP/1.1\r\n\r\n").find("200 OK"),
            std::string::npos);
  age->store(500.0);  // over the 120 s bound
  const std::string stale = server.handle("GET /readyz HTTP/1.1\r\n\r\n");
  EXPECT_NE(stale.find("503"), std::string::npos);
  EXPECT_NE(stale.find("unready"), std::string::npos);
  age->store(1.0);
  EXPECT_NE(server.handle("GET /readyz HTTP/1.1\r\n\r\n").find("200 OK"),
            std::string::npos);
}

TEST(TelemetryTest, ReadyzWithoutProviderIsUnready) {
  TelemetryServer server;
  const std::string response = server.handle("GET /readyz HTTP/1.1\r\n\r\n");
  EXPECT_NE(response.find("503"), std::string::npos);
  EXPECT_NE(response.find("no epoch published"), std::string::npos);
}

TEST(TelemetryTest, EndToEndScrapeOnEphemeralPort) {
  metrics::register_all();
  TelemetryOptions options;
  options.port = 0;
  TelemetryServer server(options, [] { return healthy_status(); });
  ASSERT_TRUE(server.start());
  ASSERT_GT(server.port(), 0);

  const auto metrics_response =
      http_get("127.0.0.1", server.port(), "/metrics");
  ASSERT_TRUE(metrics_response.has_value());
  EXPECT_EQ(metrics_response->status, 200);
  EXPECT_NE(metrics_response->body.find("nlarm_telemetry_scrapes_total"),
            std::string::npos);

  const auto ready_response =
      http_get("127.0.0.1", server.port(), "/readyz");
  ASSERT_TRUE(ready_response.has_value());
  EXPECT_EQ(ready_response->status, 200);

  const auto missing = http_get("127.0.0.1", server.port(), "/nothing");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, 404);

  server.stop();
  EXPECT_FALSE(server.running());
  // stop() is idempotent and start() works again after it.
  server.stop();
  ASSERT_TRUE(server.start());
  const auto again = http_get("127.0.0.1", server.port(), "/healthz");
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->status, 200);
  server.stop();
}

TEST(TelemetryTest, ConcurrentScrapesUnderLiveMetricWrites) {
  // The tsan contract: scrapes walk the registry and sketches while decide
  // threads hammer the same atomics. Writers simulate the decide path
  // (counter inc + sketch observe); readers are real HTTP scrapes.
  metrics::register_all();
  TelemetryOptions options;
  options.port = 0;
  TelemetryServer server(options, [] { return healthy_status(); });
  ASSERT_TRUE(server.start());

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        metrics::broker_decisions().inc();
        metrics::serve_decide_sketch().observe(1.5e-3);
        metrics::admission_wait_sketch().observe(2e-4);
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    const auto response = http_get("127.0.0.1", server.port(), "/metrics");
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 200);
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
  server.stop();

  metrics::export_quantile_gauges();
  // The sketch saw only 1.5 ms decides, so p50 must estimate 1.5 ms.
  EXPECT_NEAR(metrics::serve_decide_p50_seconds().value(), 1.5e-3,
              0.01 * 1.5e-3 * 1.0001);
}

TEST(HttpClientTest, StatusLineParsesStrictly) {
  // Well-formed lines, any HTTP version token, trailing CR/LF or headers.
  EXPECT_EQ(parse_http_status_line("HTTP/1.1 200 OK"), 200);
  EXPECT_EQ(parse_http_status_line("HTTP/1.0 404 Not Found\r\n"), 404);
  EXPECT_EQ(parse_http_status_line("HTTP/2 503 \r\nServer: x\r\n\r\nbody"),
            503);
  EXPECT_EQ(parse_http_status_line("HTTP/1.1 301\r\n"), 301);

  // The bare-atoi failure modes: non-HTTP garbage, truncation, missing or
  // malformed codes — all must fail to parse instead of returning 0.
  EXPECT_EQ(parse_http_status_line(""), std::nullopt);
  EXPECT_EQ(parse_http_status_line("HTTP/1.1"), std::nullopt);
  EXPECT_EQ(parse_http_status_line("HTTP/1.1 "), std::nullopt);
  EXPECT_EQ(parse_http_status_line("HTTP/1.1 20"), std::nullopt);
  EXPECT_EQ(parse_http_status_line("HTTP/1.1 2000 OK"), std::nullopt);
  EXPECT_EQ(parse_http_status_line("HTTP/1.1 abc OK"), std::nullopt);
  EXPECT_EQ(parse_http_status_line("HTTP/1.1 20x OK"), std::nullopt);
  EXPECT_EQ(parse_http_status_line("HTTP/1.1 099 Weird"), std::nullopt);
  EXPECT_EQ(parse_http_status_line("HTTP/1.1 600 Out of range"),
            std::nullopt);
  EXPECT_EQ(parse_http_status_line("SSH-2.0-OpenSSH_9.6"), std::nullopt);
  EXPECT_EQ(parse_http_status_line("random text 500 here"), std::nullopt);
  // A CR/LF before the code truncates the line — nothing to parse.
  EXPECT_EQ(parse_http_status_line("HTTP/1.1\r\n200 OK"), std::nullopt);
}

}  // namespace
}  // namespace nlarm::obs
