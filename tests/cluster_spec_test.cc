#include "cluster/spec_loader.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/check.h"

namespace nlarm::cluster {
namespace {

TEST(SpecParserTest, SingleGroup) {
  const ClusterSpec spec = parse_cluster_spec("4x8c@2.8");
  ASSERT_EQ(spec.switches.size(), 1u);
  ASSERT_EQ(spec.switches[0].size(), 1u);
  EXPECT_EQ(spec.switches[0][0].count, 4);
  EXPECT_EQ(spec.switches[0][0].cores, 8);
  EXPECT_DOUBLE_EQ(spec.switches[0][0].freq_ghz, 2.8);
  EXPECT_DOUBLE_EQ(spec.switches[0][0].mem_gb, 16.0);  // default
  EXPECT_EQ(spec.node_count(), 4);
}

TEST(SpecParserTest, MemoryOverride) {
  const ClusterSpec spec = parse_cluster_spec("2x12c@4.6m32");
  EXPECT_DOUBLE_EQ(spec.switches[0][0].mem_gb, 32.0);
}

TEST(SpecParserTest, PaperClusterSpec) {
  const ClusterSpec spec = parse_cluster_spec(
      "15x12c@4.6;15x12c@4.6;10x12c@4.6/5x8c@2.8;15x8c@2.8");
  EXPECT_EQ(spec.switches.size(), 4u);
  EXPECT_EQ(spec.node_count(), 60);
  EXPECT_EQ(spec.switches[2].size(), 2u);  // mixed switch
}

TEST(SpecParserTest, WhitespaceTolerated) {
  const ClusterSpec spec = parse_cluster_spec(" 2x4c@3.0 ; 3x8c@2.5 ");
  EXPECT_EQ(spec.node_count(), 5);
}

TEST(SpecParserTest, MalformedSpecsRejected) {
  EXPECT_THROW(parse_cluster_spec(""), util::CheckError);
  EXPECT_THROW(parse_cluster_spec("8c@2.8"), util::CheckError);
  EXPECT_THROW(parse_cluster_spec("4x8@2.8"), util::CheckError);
  EXPECT_THROW(parse_cluster_spec("4x8c2.8"), util::CheckError);
  EXPECT_THROW(parse_cluster_spec("0x8c@2.8"), util::CheckError);
  EXPECT_THROW(parse_cluster_spec("4x8c@-1"), util::CheckError);
}

TEST(SpecClusterTest, BuildsMatchingCluster) {
  const ClusterSpec spec = parse_cluster_spec("2x12c@4.6;3x8c@2.8m8");
  const Cluster c = make_cluster(spec);
  EXPECT_EQ(c.size(), 5);
  EXPECT_EQ(c.topology().switch_count(), 2);
  EXPECT_EQ(c.node(0).spec.core_count, 12);
  EXPECT_EQ(c.node(0).spec.switch_id, 0);
  EXPECT_EQ(c.node(4).spec.core_count, 8);
  EXPECT_EQ(c.node(4).spec.switch_id, 1);
  EXPECT_DOUBLE_EQ(c.node(4).spec.total_mem_gb, 8.0);
  EXPECT_EQ(c.node(2).spec.hostname, "csews3");
}

TEST(SpecClusterTest, EquivalentToIitkFactory) {
  const Cluster from_spec = make_cluster(parse_cluster_spec(
      "15x12c@4.6;15x12c@4.6;10x12c@4.6/5x8c@2.8;15x8c@2.8"));
  const Cluster from_factory = make_iitk_cluster();
  EXPECT_EQ(from_spec.size(), from_factory.size());
  EXPECT_EQ(from_spec.total_cores(), from_factory.total_cores());
  EXPECT_EQ(from_spec.topology().switch_count(),
            from_factory.topology().switch_count());
}

TEST(CsvClusterTest, LoadsNodeTable) {
  std::istringstream in(
      "hostname,switch,cores,freq_ghz,mem_gb\n"
      "alpha,0,12,4.6,16\n"
      "beta,0,12,4.6,16\n"
      "gamma,1,8,2.8,32\n");
  const Cluster c = load_cluster_csv(in);
  EXPECT_EQ(c.size(), 3);
  EXPECT_EQ(c.topology().switch_count(), 2);
  EXPECT_EQ(c.find_hostname("gamma"), 2);
  EXPECT_EQ(c.node(2).spec.switch_id, 1);
  EXPECT_DOUBLE_EQ(c.node(2).spec.total_mem_gb, 32.0);
}

TEST(CsvClusterTest, RowsReorderedBySwitch) {
  // Rows arrive interleaved; loader must group by switch for the chain
  // topology while keeping hostnames attached to the right specs.
  std::istringstream in(
      "hostname,switch,cores,freq_ghz,mem_gb\n"
      "far,1,8,2.8,16\n"
      "near,0,12,4.6,16\n");
  const Cluster c = load_cluster_csv(in);
  EXPECT_EQ(c.node(0).spec.hostname, "near");
  EXPECT_EQ(c.node(0).spec.switch_id, 0);
  EXPECT_EQ(c.node(1).spec.hostname, "far");
  EXPECT_EQ(c.node(1).spec.switch_id, 1);
}

TEST(CsvClusterTest, SparseSwitchIdsRejected) {
  std::istringstream in(
      "hostname,switch,cores,freq_ghz,mem_gb\n"
      "a,0,8,3.0,16\n"
      "b,2,8,3.0,16\n");  // switch 1 missing
  EXPECT_THROW(load_cluster_csv(in), util::CheckError);
}

TEST(CsvClusterTest, InvalidRowsRejected) {
  std::istringstream in(
      "hostname,switch,cores,freq_ghz,mem_gb\n"
      "a,0,0,3.0,16\n");
  EXPECT_THROW(load_cluster_csv(in), util::CheckError);
  std::istringstream empty("hostname,switch,cores,freq_ghz,mem_gb\n");
  EXPECT_THROW(load_cluster_csv(empty), util::CheckError);
}

}  // namespace
}  // namespace nlarm::cluster
