#include <gtest/gtest.h>

#include "apps/minife.h"
#include "apps/minimd.h"
#include "apps/synthetic.h"
#include "cluster/cluster.h"
#include "mpisim/cost_model.h"
#include "mpisim/placement.h"
#include "mpisim/runtime.h"
#include "net/flows.h"
#include "net/network_model.h"
#include "util/check.h"

namespace nlarm::apps {
namespace {

mpisim::Placement spread(int nranks, int ppn) {
  std::vector<cluster::NodeId> rank_nodes;
  for (int r = 0; r < nranks; ++r) {
    rank_nodes.push_back(static_cast<cluster::NodeId>(r / ppn));
  }
  return mpisim::Placement(std::move(rank_nodes));
}

TEST(MiniMdTest, AtomCountsMatchPaper) {
  // §5.1: s = 8..48 → "2K – 442K atoms".
  EXPECT_EQ(minimd_atoms(8), 2048);
  EXPECT_EQ(minimd_atoms(16), 16384);
  EXPECT_EQ(minimd_atoms(48), 442368);
}

TEST(MiniMdTest, ProfileIsValid) {
  for (int s : {8, 16, 24, 32, 40, 48}) {
    for (int p : {8, 16, 32, 64}) {
      MiniMdParams params;
      params.size = s;
      params.nranks = p;
      const auto profile = make_minimd_profile(params);
      EXPECT_NO_THROW(profile.validate());
      EXPECT_EQ(profile.nranks, p);
    }
  }
}

TEST(MiniMdTest, WorkScalesWithProblemSize) {
  MiniMdParams small;
  small.size = 8;
  MiniMdParams big;
  big.size = 48;
  const auto ps = make_minimd_profile(small);
  const auto pb = make_minimd_profile(big);
  const auto& cs = std::get<mpisim::ComputePhase>(ps.phases[0]);
  const auto& cb = std::get<mpisim::ComputePhase>(pb.phases[0]);
  // 6^3 = 216× the atoms → 216× the flops.
  EXPECT_NEAR(cb.flops_per_rank / cs.flops_per_rank, 216.0, 1e-9);
}

TEST(MiniMdTest, HaloShrinksSublinearly) {
  // Surface-to-volume: doubling ranks cuts per-rank halo by ~2^(2/3).
  MiniMdParams p8;
  p8.size = 32;
  p8.nranks = 8;
  MiniMdParams p64 = p8;
  p64.nranks = 64;
  const auto prof8 = make_minimd_profile(p8);
  const auto prof64 = make_minimd_profile(p64);
  const auto& h8 = std::get<mpisim::HaloPhase>(prof8.phases[1]);
  const auto& h64 = std::get<mpisim::HaloPhase>(prof64.phases[1]);
  EXPECT_NEAR(h8.bytes_per_face / h64.bytes_per_face, 4.0, 1e-6);
}

TEST(MiniMdTest, PeriodicBoundaries) {
  const auto profile = make_minimd_profile(MiniMdParams{});
  const auto& halo = std::get<mpisim::HaloPhase>(profile.phases[1]);
  EXPECT_TRUE(halo.periodic);
}

TEST(MiniFeTest, RowCountsMatchGeometry) {
  EXPECT_EQ(minife_rows(48), 49L * 49 * 49);
  EXPECT_EQ(minife_rows(384), 385L * 385 * 385);
}

TEST(MiniFeTest, ProfileIsValid) {
  for (int nx : {48, 96, 144, 256, 384}) {
    for (int p : {8, 16, 32, 48}) {
      MiniFeParams params;
      params.nx = nx;
      params.nranks = p;
      const auto profile = make_minife_profile(params);
      EXPECT_NO_THROW(profile.validate());
    }
  }
}

TEST(MiniFeTest, NonPeriodicBoundaries) {
  const auto profile = make_minife_profile(MiniFeParams{});
  const auto& halo = std::get<mpisim::HaloPhase>(profile.phases[1]);
  EXPECT_FALSE(halo.periodic);
}

TEST(MiniFeTest, TwoDotProductsPerIteration) {
  const auto profile = make_minife_profile(MiniFeParams{});
  int allreduces = 0;
  for (const auto& phase : profile.phases) {
    if (std::holds_alternative<mpisim::AllreducePhase>(phase)) ++allreduces;
  }
  EXPECT_EQ(allreduces, 2);
}

TEST(AppsCommFractionTest, MiniMdMoreCommIntensiveThanMiniFe) {
  // §5.2: "percentage of communication time was higher for miniMD (40-80%)
  // than for miniFE (25-60%)". Check the models' comm fractions are ordered
  // this way on identical placements.
  cluster::Cluster c = cluster::make_uniform_cluster(8, 2, 12, 4.6);
  net::FlowSet flows;
  net::NetworkModel network(c, flows);
  mpisim::MpiRuntime runtime(c, network);

  MiniMdParams md;
  md.size = 16;
  md.nranks = 32;
  MiniFeParams fe;
  fe.nx = 144;
  fe.nranks = 32;
  const auto placement = spread(32, 4);
  const auto md_result = runtime.estimate(make_minimd_profile(md), placement);
  const auto fe_result = runtime.estimate(make_minife_profile(fe), placement);
  EXPECT_GT(md_result.comm_fraction(), fe_result.comm_fraction());
  // Both in plausible bands.
  EXPECT_GT(md_result.comm_fraction(), 0.2);
  EXPECT_LT(fe_result.comm_fraction(), 0.8);
}

TEST(SyntheticTest, PhasesMatchConfiguration) {
  SyntheticParams params;
  params.flops_per_rank = 1e6;
  params.halo_bytes_per_face = 1e3;
  params.allreduce_bytes = 8.0;
  const auto profile = make_synthetic_profile(params);
  EXPECT_EQ(profile.phases.size(), 3u);
  SyntheticParams compute_only;
  compute_only.flops_per_rank = 1e6;
  EXPECT_EQ(make_synthetic_profile(compute_only).phases.size(), 1u);
}

TEST(SyntheticTest, AllZeroPhasesRejected) {
  SyntheticParams params;
  params.flops_per_rank = 0.0;
  EXPECT_THROW(make_synthetic_profile(params), util::CheckError);
}

TEST(SyntheticTest, ExtremesAreExtreme) {
  cluster::Cluster c = cluster::make_uniform_cluster(8, 2);
  net::FlowSet flows;
  net::NetworkModel network(c, flows);
  mpisim::MpiRuntime runtime(c, network);
  const auto placement = spread(8, 1);
  const auto compute =
      runtime.estimate(make_compute_bound_profile(8), placement);
  const auto comm = runtime.estimate(make_comm_bound_profile(8), placement);
  EXPECT_LT(compute.comm_fraction(), 0.2);
  EXPECT_GT(comm.comm_fraction(), 0.8);
}

}  // namespace
}  // namespace nlarm::apps
