// Binary snapshot codec (`#nlarm-snapb v2`): text↔binary parity, exact
// round-trips of the awkward values (NaN/±inf, "never measured" sentinels,
// invalid records, hostnames with spaces), and the corrupted-file matrix —
// every damaged artifact must fail with one loud CheckError, never parse
// to a partial cluster, and never shadow a last-good file.
#include "monitor/snapshot_codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "core/allocator.h"
#include "core/broker.h"
#include "exp/experiment.h"
#include "monitor/persistence.h"
#include "test_helpers.h"
#include "util/binio.h"
#include "util/check.h"

namespace nlarm::monitor {
namespace {

using nlarm::testing::TestNode;
using nlarm::testing::make_snapshot;

std::string encode(const ClusterSnapshot& snap) {
  std::string bytes;
  encode_snapshot_binary(snap, bytes);
  return bytes;
}

// Field-by-field equality that treats NaN == NaN (the default
// operator== would reject a snapshot that legitimately carries NaN).
void expect_same_snapshot(const ClusterSnapshot& a, const ClusterSnapshot& b) {
  auto same_f64 = [](double x, double y) {
    return (std::isnan(x) && std::isnan(y)) || x == y;
  };
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(same_f64(a.time, b.time));
  EXPECT_EQ(a.livehosts, b.livehosts);
  for (int i = 0; i < a.size(); ++i) {
    const NodeSnapshot& x = a.nodes[static_cast<std::size_t>(i)];
    const NodeSnapshot& y = b.nodes[static_cast<std::size_t>(i)];
    EXPECT_EQ(x.spec.id, y.spec.id);
    EXPECT_EQ(x.spec.hostname, y.spec.hostname);
    EXPECT_EQ(x.spec.switch_id, y.spec.switch_id);
    EXPECT_EQ(x.spec.core_count, y.spec.core_count);
    EXPECT_TRUE(same_f64(x.spec.cpu_freq_ghz, y.spec.cpu_freq_ghz));
    EXPECT_TRUE(same_f64(x.spec.total_mem_gb, y.spec.total_mem_gb));
    EXPECT_EQ(x.valid, y.valid);
    EXPECT_TRUE(same_f64(x.sample_time, y.sample_time));
    EXPECT_TRUE(same_f64(x.cpu_load, y.cpu_load)) << "node " << i;
    EXPECT_TRUE(same_f64(x.cpu_util, y.cpu_util));
    EXPECT_TRUE(same_f64(x.mem_used_gb, y.mem_used_gb));
    EXPECT_TRUE(same_f64(x.net_flow_mbps, y.net_flow_mbps));
    EXPECT_EQ(x.users, y.users);
    EXPECT_TRUE(same_f64(x.cpu_load_avg.five_min, y.cpu_load_avg.five_min));
    EXPECT_TRUE(same_f64(x.mem_avail_avg.fifteen_min,
                         y.mem_avail_avg.fifteen_min));
  }
  ASSERT_EQ(a.net.latency_us.size(), b.net.latency_us.size());
  for (std::size_t u = 0; u < a.net.latency_us.size(); ++u) {
    for (std::size_t v = 0; v < a.net.latency_us.size(); ++v) {
      EXPECT_TRUE(same_f64(a.net.latency_us[u][v], b.net.latency_us[u][v]))
          << "lat " << u << "," << v;
      EXPECT_TRUE(same_f64(a.net.latency_5min_us[u][v],
                           b.net.latency_5min_us[u][v]));
      EXPECT_TRUE(
          same_f64(a.net.bandwidth_mbps[u][v], b.net.bandwidth_mbps[u][v]));
      EXPECT_TRUE(same_f64(a.net.peak_mbps[u][v], b.net.peak_mbps[u][v]));
    }
  }
}

TEST(SnapshotCodecTest, BinaryRoundTripsEveryField) {
  std::vector<TestNode> nodes = nlarm::testing::idle_nodes(5);
  nodes[1].cpu_load = 3.25;
  nodes[2].live = false;
  nodes[4].users = 7;
  auto snap = make_snapshot(nodes, 123.0, 850.0, 1000.0);
  snap.time = 777.5;
  snap.version = 0x1234567890abcdefull;
  snap.nodes[3].valid = false;
  snap.nodes[0].spec.hostname = "rack 3 node 12";  // spaces survive binary
  nlarm::testing::set_pair(snap, 1, 2, -1.0, -1.0);

  const ClusterSnapshot loaded = decode_snapshot_binary(encode(snap));
  expect_same_snapshot(snap, loaded);
  // Unlike the text format, the binary header carries the version stamp.
  EXPECT_EQ(loaded.version, 0x1234567890abcdefull);
  EXPECT_EQ(loaded.usable_nodes(), snap.usable_nodes());
}

TEST(SnapshotCodecTest, NonFiniteAndSentinelValuesAreBitExact) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  auto snap = make_snapshot(nlarm::testing::idle_nodes(3));
  snap.nodes[0].cpu_load = std::numeric_limits<double>::quiet_NaN();
  snap.nodes[1].cpu_util = kInf;
  snap.nodes[2].net_flow_mbps = -kInf;
  snap.nodes[0].sample_time = -1.0;  // "never sampled" sentinel
  nlarm::testing::set_pair(snap, 0, 2, -1.0, -1.0);  // "never measured"
  snap.net.peak_mbps[0][2] = -1.0;
  snap.net.peak_mbps[2][0] = -1.0;

  const ClusterSnapshot loaded = decode_snapshot_binary(encode(snap));
  EXPECT_TRUE(std::isnan(loaded.nodes[0].cpu_load));
  EXPECT_EQ(loaded.nodes[1].cpu_util, kInf);
  EXPECT_EQ(loaded.nodes[2].net_flow_mbps, -kInf);
  EXPECT_DOUBLE_EQ(loaded.nodes[0].sample_time, -1.0);
  EXPECT_DOUBLE_EQ(loaded.net.latency_us[0][2], -1.0);
  EXPECT_DOUBLE_EQ(loaded.net.bandwidth_mbps[0][2], -1.0);
  EXPECT_DOUBLE_EQ(loaded.net.peak_mbps[0][2], -1.0);
}

TEST(SnapshotCodecTest, TextAndBinaryAgreeOnMonitoredSnapshot) {
  exp::Testbed::Options options;
  options.seed = 23;
  options.cluster.fast_nodes = 8;
  options.cluster.slow_nodes = 4;
  options.cluster.switches = 3;
  auto testbed = exp::Testbed::make(options);
  const ClusterSnapshot live = testbed->snapshot();

  std::ostringstream text;
  write_snapshot(text, live);
  const ClusterSnapshot from_text = read_snapshot_bytes(text.str());
  const ClusterSnapshot from_binary = decode_snapshot_binary(encode(live));
  // max_digits10 text output round-trips doubles exactly, so both decoded
  // snapshots must match the live one bit for bit.
  expect_same_snapshot(live, from_text);
  expect_same_snapshot(live, from_binary);
}

TEST(SnapshotCodecTest, BrokerDecidesIdenticallyFromEitherFormat) {
  exp::Testbed::Options options;
  options.seed = 31;
  options.cluster.fast_nodes = 10;
  options.cluster.slow_nodes = 6;
  options.cluster.switches = 4;
  auto testbed = exp::Testbed::make(options);
  const ClusterSnapshot live = testbed->snapshot();

  const std::string dir = ::testing::TempDir();
  const std::string text_path = dir + "/nlarm_codec_parity.txt";
  const std::string bin_path = dir + "/nlarm_codec_parity.bin";
  ASSERT_TRUE(save_snapshot_file(text_path, live, SnapshotFormat::kText));
  ASSERT_TRUE(save_snapshot_file(bin_path, live, SnapshotFormat::kBinary));

  core::AllocationRequest request;
  request.nprocs = 16;
  request.ppn = 4;
  request.job = core::JobWeights{0.3, 0.7};
  core::NetworkLoadAwareAllocator alloc_text;
  core::NetworkLoadAwareAllocator alloc_bin;
  core::ResourceBroker broker_text(alloc_text);
  core::ResourceBroker broker_bin(alloc_bin);
  const core::BrokerDecision from_text =
      broker_text.decide(load_snapshot_file(text_path), request);
  const core::BrokerDecision from_binary =
      broker_bin.decide(load_snapshot_file(bin_path), request);

  EXPECT_EQ(from_text.action, from_binary.action);
  EXPECT_EQ(from_text.allocation.nodes, from_binary.allocation.nodes);
  EXPECT_EQ(from_text.allocation.procs_per_node,
            from_binary.allocation.procs_per_node);
  EXPECT_EQ(from_text.cluster_load_per_core, from_binary.cluster_load_per_core);
  EXPECT_EQ(from_text.effective_capacity, from_binary.effective_capacity);
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
}

TEST(SnapshotCodecTest, MmapAndBufferedLoadsAgree) {
  auto snap = make_snapshot(nlarm::testing::idle_nodes(6), 99.0, 700.0, 941.0);
  snap.time = 55.0;
  const std::string path = ::testing::TempDir() + "/nlarm_codec_mmap.bin";
  ASSERT_TRUE(save_snapshot_file(path, snap, SnapshotFormat::kBinary));
  expect_same_snapshot(load_snapshot_file(path, /*use_mmap=*/true),
                       load_snapshot_file(path, /*use_mmap=*/false));
  std::remove(path.c_str());
}

// --- corrupted-file matrix ---

// Every rejection must be a single-line diagnostic: these artifacts show
// up in ops logs, and a multi-line dump per bad file drowns the one line
// that says why.
void expect_one_line_reject(const std::string& bytes) {
  try {
    (void)decode_snapshot_binary(bytes);
    FAIL() << "corrupt artifact decoded successfully";
  } catch (const util::CheckError& error) {
    const std::string what = error.what();
    EXPECT_EQ(std::count(what.begin(), what.end(), '\n'), 0) << what;
    EXPECT_FALSE(what.empty());
  }
}

TEST(SnapshotCodecTest, RejectsTruncatedHeader) {
  const std::string bytes = encode(make_snapshot(nlarm::testing::idle_nodes(3)));
  expect_one_line_reject(bytes.substr(0, kBinarySnapshotMagic.size() + 2));
  expect_one_line_reject(bytes.substr(0, 4));
  expect_one_line_reject("");
}

TEST(SnapshotCodecTest, RejectsBadMagic) {
  std::string bytes = encode(make_snapshot(nlarm::testing::idle_nodes(3)));
  bytes[1] ^= 0x20;
  expect_one_line_reject(bytes);
  expect_one_line_reject("#nlarm-snapb v9\n garbage");
}

TEST(SnapshotCodecTest, RejectsCrcMismatch) {
  std::string bytes = encode(make_snapshot(nlarm::testing::idle_nodes(4)));
  bytes[bytes.size() / 2] ^= 0x01;  // flip one payload bit
  expect_one_line_reject(bytes);
}

TEST(SnapshotCodecTest, RejectsShortPairwiseBlock) {
  // Cut inside the matrix section and re-seal with a valid CRC: the length
  // check must catch what the checksum no longer can.
  std::string bytes = encode(make_snapshot(nlarm::testing::idle_nodes(4)));
  std::string cut = bytes.substr(0, bytes.size() - 4 - 64);
  util::put_u32(cut, util::crc32(cut));
  expect_one_line_reject(cut);
}

TEST(SnapshotCodecTest, SparsePairwiseRoundTripsMeasuredPairs) {
  // A mostly-unmeasured pairwise section (the tiled monitor's O(G²) probe
  // set) must ship as sparse records — far smaller than the dense blocks —
  // and decode back bit-exactly, sentinels and all.
  const int n = 12;
  auto snap = make_snapshot(nlarm::testing::idle_nodes(n));
  snap.net.latency_us = make_matrix(n, -1.0);
  snap.net.latency_5min_us = make_matrix(n, -1.0);
  snap.net.bandwidth_mbps = make_matrix(n, -1.0);
  snap.net.peak_mbps = make_matrix(n, -1.0);
  nlarm::testing::set_pair(snap, 0, 1, 120.0, 800.0);
  nlarm::testing::set_pair(snap, 2, 7, 260.0, 450.0);
  nlarm::testing::set_pair(snap, 5, 11, 90.5, 975.25);
  // A half-measured pair (latency only) must survive too.
  snap.net.latency_us[3][9] = snap.net.latency_us[9][3] = 55.0;

  const std::string bytes = encode(snap);
  const std::size_t dense_pairwise = 4 * n * n * sizeof(double);
  EXPECT_LT(bytes.size(), dense_pairwise)
      << "sparse form should undercut the dense pairwise section alone";
  expect_same_snapshot(snap, decode_snapshot_binary(bytes));
}

TEST(SnapshotCodecTest, AsymmetricPairwiseFallsBackToDense) {
  // One asymmetric cell disqualifies the sparse form (it cannot represent
  // direction-dependent values); the codec must quietly emit dense blocks
  // and still round-trip exactly.
  const int n = 6;
  auto snap = make_snapshot(nlarm::testing::idle_nodes(n));
  snap.net.latency_us = make_matrix(n, -1.0);
  snap.net.latency_5min_us = make_matrix(n, -1.0);
  snap.net.bandwidth_mbps = make_matrix(n, -1.0);
  snap.net.peak_mbps = make_matrix(n, -1.0);
  snap.net.latency_us[0][1] = 100.0;
  snap.net.latency_us[1][0] = 140.0;  // asymmetric

  const std::string bytes = encode(snap);
  EXPECT_GT(bytes.size(), 4 * n * n * sizeof(double));
  expect_same_snapshot(snap, decode_snapshot_binary(bytes));
}

TEST(SnapshotCodecTest, SparseAndDenseEncodingsDecodeIdentically) {
  // The same logical state through both paths: a fully-sparse-eligible
  // snapshot vs a copy made ineligible by one off-diagonal diagonal-breaking
  // tweak that is then reverted in decoded comparison. Simpler: encode the
  // eligible snapshot, then force-compare against a dense re-encode of the
  // decoded result.
  auto snap = make_snapshot(nlarm::testing::idle_nodes(8));
  nlarm::testing::set_pair(snap, 1, 6, 75.0, 910.0);
  const ClusterSnapshot first = decode_snapshot_binary(encode(snap));
  const ClusterSnapshot second = decode_snapshot_binary(encode(first));
  expect_same_snapshot(first, second);
  expect_same_snapshot(snap, second);
}

TEST(SnapshotCodecTest, TornBinaryWriteLeavesLastGoodFile) {
  const std::string path = ::testing::TempDir() + "/nlarm_codec_torn.bin";
  std::remove(path.c_str());
  auto snap = make_snapshot(nlarm::testing::idle_nodes(4));
  snap.time = 100.0;
  ASSERT_TRUE(save_snapshot_file(path, snap, SnapshotFormat::kBinary));

  snap.time = 200.0;
  arm_torn_snapshot_write();
  EXPECT_FALSE(save_snapshot_file(path, snap, SnapshotFormat::kBinary));
  EXPECT_DOUBLE_EQ(load_snapshot_file(path).time, 100.0);

  EXPECT_TRUE(save_snapshot_file(path, snap, SnapshotFormat::kBinary));
  EXPECT_DOUBLE_EQ(load_snapshot_file(path).time, 200.0);
  std::remove(path.c_str());
}

TEST(SnapshotCodecTest, TruncatedBinaryFileOnDiskIsRejected) {
  auto snap = make_snapshot(nlarm::testing::idle_nodes(4));
  const std::string bytes = encode(snap);
  const std::string path = ::testing::TempDir() + "/nlarm_codec_trunc.bin";
  {
    std::ofstream file(path, std::ios::trunc | std::ios::binary);
    file << bytes.substr(0, bytes.size() / 2);
  }
  EXPECT_THROW(load_snapshot_file(path), util::CheckError);
  std::remove(path.c_str());
}

TEST(SnapshotCodecTest, FormatFlagParses) {
  EXPECT_EQ(parse_snapshot_format("text"), SnapshotFormat::kText);
  EXPECT_EQ(parse_snapshot_format("binary"), SnapshotFormat::kBinary);
  EXPECT_THROW(parse_snapshot_format("protobuf"), util::CheckError);
}

}  // namespace
}  // namespace nlarm::monitor
