// JSONL metrics flusher: frames land on disk as parseable one-line JSON
// objects with monotone sequence numbers, rotation caps the file at the
// configured size (two-deep retention), and stop() is idempotent while
// always writing a final frame.
#include "obs/flusher.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "obs/catalog.h"
#include "obs/metrics.h"

namespace nlarm::obs {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string temp_path(const char* stem) {
  std::ostringstream out;
  out << ::testing::TempDir() << stem << "." << ::getpid() << ".jsonl";
  return out.str();
}

TEST(FlusherTest, FramesAreSequencedJsonObjects) {
  metrics::register_all();
  const std::string path = temp_path("flusher_frames");
  std::remove(path.c_str());

  FlusherOptions options;
  options.path = path;
  options.interval_s = 3600.0;  // no timer frames; we drive flush_now()
  MetricsFlusher flusher(options);
  ASSERT_TRUE(flusher.start());
  EXPECT_TRUE(flusher.flush_now());
  metrics::broker_decisions().inc();
  EXPECT_TRUE(flusher.flush_now());
  flusher.stop();  // writes one final frame

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(flusher.frames_written(), 3u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].front(), '{') << lines[i];
    EXPECT_EQ(lines[i].back(), '}') << lines[i];
    std::ostringstream seq;
    seq << "\"seq\":" << (i + 1);
    EXPECT_NE(lines[i].find(seq.str()), std::string::npos) << lines[i];
    EXPECT_NE(lines[i].find("\"ts\":"), std::string::npos) << lines[i];
    EXPECT_NE(lines[i].find("nlarm_broker_decisions_total"),
              std::string::npos)
        << lines[i];
  }
  std::remove(path.c_str());
}

TEST(FlusherTest, PeriodicThreadWritesFrames) {
  metrics::register_all();
  const std::string path = temp_path("flusher_periodic");
  std::remove(path.c_str());

  FlusherOptions options;
  options.path = path;
  options.interval_s = 0.02;
  MetricsFlusher flusher(options);
  ASSERT_TRUE(flusher.start());
  // Wait until the timer thread has demonstrably fired a few times.
  for (int i = 0; i < 200 && flusher.frames_written() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  flusher.stop();
  EXPECT_GE(flusher.frames_written(), 3u);
  EXPECT_GE(read_lines(path).size(), 3u);
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

TEST(FlusherTest, RotationCapsTheFile) {
  metrics::register_all();
  const std::string path = temp_path("flusher_rotate");
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());

  FlusherOptions options;
  options.path = path;
  options.interval_s = 3600.0;
  options.rotate_bytes = 4096;  // a frame is a few KB: rotate quickly
  MetricsFlusher flusher(options);
  ASSERT_TRUE(flusher.start());
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(flusher.flush_now());
  flusher.stop();

  EXPECT_GE(flusher.rotations(), 1u);
  // Retention is two-deep: the live file plus one rotated generation.
  EXPECT_FALSE(read_lines(path).empty());
  EXPECT_FALSE(read_lines(path + ".1").empty());
  std::ifstream live(path, std::ios::ate | std::ios::binary);
  // The live file restarted after the last rotation, so it holds only the
  // frames written since then (a frame can exceed rotate_bytes on its own;
  // the bound is per-generation growth, not a hard byte ceiling).
  EXPECT_LT(static_cast<std::uint64_t>(live.tellg()),
            12 * static_cast<std::uint64_t>(options.rotate_bytes));
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

TEST(FlusherTest, StopIsIdempotentAndStartFailsOnBadPath) {
  const std::string path = temp_path("flusher_stop");
  std::remove(path.c_str());
  FlusherOptions options;
  options.path = path;
  options.interval_s = 3600.0;
  {
    MetricsFlusher flusher(options);
    ASSERT_TRUE(flusher.start());
    flusher.stop();
    const std::uint64_t frames = flusher.frames_written();
    flusher.stop();  // second stop: no extra frame, no hang
    EXPECT_EQ(flusher.frames_written(), frames);
  }  // destructor after explicit stop: also a no-op
  std::remove(path.c_str());

  FlusherOptions bad;
  bad.path = "/nonexistent-dir-for-nlarm-test/metrics.jsonl";
  MetricsFlusher broken(bad);
  EXPECT_FALSE(broken.start());
}

}  // namespace
}  // namespace nlarm::obs
