// Staleness filtering: records from dead daemons must stop being trusted.
#include <gtest/gtest.h>

#include <limits>

#include "exp/experiment.h"
#include "monitor/resource_monitor.h"
#include "monitor/snapshot.h"
#include "monitor/store.h"
#include "util/check.h"

namespace nlarm::monitor {
namespace {

NodeSnapshot record_at(cluster::NodeId id, double time) {
  NodeSnapshot record;
  record.spec.id = id;
  record.spec.core_count = 8;
  record.spec.cpu_freq_ghz = 3.0;
  record.spec.total_mem_gb = 16.0;
  record.valid = true;
  record.sample_time = time;
  return record;
}

TEST(StalenessFilterTest, InvalidatesOldRecords) {
  ClusterSnapshot snap;
  snap.time = 1000.0;
  snap.livehosts = {true, true, true};
  snap.nodes.push_back(record_at(0, 995.0));   // fresh
  snap.nodes.push_back(record_at(1, 800.0));   // stale
  snap.nodes.push_back(record_at(2, 990.0));   // fresh
  const int dropped = apply_staleness_filter(snap, 60.0);
  EXPECT_EQ(dropped, 1);
  EXPECT_TRUE(snap.nodes[0].valid);
  EXPECT_FALSE(snap.nodes[1].valid);
  EXPECT_EQ(snap.usable_nodes(), (std::vector<cluster::NodeId>{0, 2}));
}

TEST(StalenessFilterTest, AlreadyInvalidNotCounted) {
  ClusterSnapshot snap;
  snap.time = 100.0;
  snap.livehosts = {true};
  NodeSnapshot never = record_at(0, 0.0);
  never.valid = false;
  snap.nodes.push_back(never);
  EXPECT_EQ(apply_staleness_filter(snap, 10.0), 0);
}

TEST(StalenessFilterTest, NonPositiveLimitRejected) {
  ClusterSnapshot snap;
  EXPECT_THROW(apply_staleness_filter(snap, 0.0), util::CheckError);
}

TEST(StalenessFilterTest, MonitorDropsNodesWithDeadStateDaemon) {
  // End-to-end: kill one node's NodeStateD, abandon supervision so it stays
  // dead, advance past the record-age limit, and check the allocator's view
  // loses that node.
  cluster::Cluster cluster = cluster::make_uniform_cluster(5, 2);
  net::FlowSet flows;
  net::NetworkModel network(cluster, flows);
  sim::Simulation sim(31);
  MonitorConfig config;
  config.max_record_age_s = 60.0;
  ResourceMonitor monitor(cluster, network, sim, config);
  monitor.start();
  sim.run_until(30.0);
  EXPECT_EQ(monitor.snapshot().usable_nodes().size(), 5u);

  monitor.central().fail_master();
  monitor.central().fail_slave();
  sim.run_until(60.0);  // supervision abandons
  Daemon* statd = monitor.find_daemon("nodestate.3");
  ASSERT_NE(statd, nullptr);
  statd->kill();
  sim.run_until(200.0);  // well past the 60 s limit

  const ClusterSnapshot snap = monitor.snapshot();
  const auto usable = snap.usable_nodes();
  EXPECT_EQ(usable.size(), 4u);
  for (cluster::NodeId id : usable) EXPECT_NE(id, 3);
}

TEST(StalenessFilterTest, DisabledByZeroConfig) {
  cluster::Cluster cluster = cluster::make_uniform_cluster(3, 1);
  net::FlowSet flows;
  net::NetworkModel network(cluster, flows);
  sim::Simulation sim(32);
  MonitorConfig config;
  config.max_record_age_s = 0.0;  // filter off
  ResourceMonitor monitor(cluster, network, sim, config);
  monitor.start();
  sim.run_until(30.0);
  monitor.central().fail_master();
  monitor.central().fail_slave();
  sim.run_until(60.0);
  monitor.find_daemon("nodestate.1")->kill();
  sim.run_until(600.0);
  // Stale record still trusted when the filter is disabled.
  EXPECT_EQ(monitor.snapshot().usable_nodes().size(), 3u);
}

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(StalenessViewTest, NeverWrittenRecordsAreInfinitelyStale) {
  MonitorStore store(3);
  for (cluster::NodeId u = 0; u < 3; ++u) {
    EXPECT_EQ(store.node_staleness(100.0, u), kInf);
    for (cluster::NodeId v = 0; v < 3; ++v) {
      if (u != v) {
        EXPECT_EQ(store.pair_staleness(100.0, u, v), kInf);
      }
    }
  }
  const StalenessView view = store.staleness_view(100.0);
  EXPECT_DOUBLE_EQ(view.now, 100.0);
  ASSERT_EQ(view.node.size(), 3u);
  EXPECT_EQ(view.node[1], kInf);
  EXPECT_EQ(view.pair[0][2], kInf);
  // The diagonal is a self-measurement that never goes stale.
  EXPECT_DOUBLE_EQ(view.pair[1][1], 0.0);
}

TEST(StalenessViewTest, AgesTrackLastWriteAndRefreshOnRewrite) {
  MonitorStore store(3);
  NodeSnapshot record;
  record.spec.id = 1;
  record.valid = true;
  record.sample_time = 50.0;
  store.write_node_record(50.0, record);
  store.write_latency(60.0, 0, 1, 120.0, 120.0);
  store.write_bandwidth(70.0, 1, 0, 900.0, 900.0);

  EXPECT_DOUBLE_EQ(store.node_staleness(80.0, 1), 30.0);
  EXPECT_EQ(store.node_staleness(80.0, 0), kInf);
  // Each direction ages independently; the freshest of the pair's latency
  // and bandwidth writes is what counts.
  EXPECT_DOUBLE_EQ(store.pair_staleness(80.0, 0, 1), 20.0);
  EXPECT_DOUBLE_EQ(store.pair_staleness(80.0, 1, 0), 10.0);

  // A rewrite resets the age — and only the rewritten record's.
  record.sample_time = 75.0;
  store.write_node_record(75.0, record);
  EXPECT_DOUBLE_EQ(store.node_staleness(80.0, 1), 5.0);
  store.write_bandwidth(78.0, 0, 1, 880.0, 880.0);
  EXPECT_DOUBLE_EQ(store.pair_staleness(80.0, 0, 1), 2.0);
  EXPECT_DOUBLE_EQ(store.pair_staleness(80.0, 1, 0), 10.0);

  const StalenessView view = store.staleness_view(80.0);
  EXPECT_DOUBLE_EQ(view.node[1], 5.0);
  EXPECT_DOUBLE_EQ(view.pair[0][1], 2.0);
  EXPECT_DOUBLE_EQ(view.pair[1][0], 10.0);
}

TEST(StalenessViewTest, ReadingStalenessDoesNotDisturbDeltaTracking) {
  // staleness_view() is a pure read: it must not mark anything dirty, and
  // draining the delta must not reset staleness bookkeeping.
  MonitorStore store(2);
  store.assemble(10.0);
  (void)store.drain_delta();  // start from a clean dirty set

  store.write_latency(20.0, 0, 1, 100.0, 100.0);
  (void)store.staleness_view(30.0);
  store.assemble(30.0);
  SnapshotDelta delta = store.drain_delta();
  ASSERT_EQ(delta.dirty_pairs.size(), 1u);
  EXPECT_EQ(delta.dirty_pairs[0],
            std::make_pair(cluster::NodeId(0), cluster::NodeId(1)));

  // Draining cleared the dirty set but the pair is still 10 s old.
  EXPECT_DOUBLE_EQ(store.pair_staleness(30.0, 0, 1), 10.0);
  (void)store.staleness_view(40.0);
  store.assemble(40.0);
  EXPECT_TRUE(store.drain_delta().dirty_pairs.empty());
}

}  // namespace
}  // namespace nlarm::monitor
