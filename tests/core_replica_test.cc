// FollowerBroker: a replica tailing the delta log must serve decide()
// byte-identically to the leader at the same replicated version — including
// under degradation (quarantine, block quarantine, stale-pair fallback) —
// must fence on replication lag, and must promote from the last-good
// compaction frame when the leader dies mid-compaction.
#include "core/replica.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/allocator.h"
#include "core/broker.h"
#include "core/prepared.h"
#include "monitor/delta_log.h"
#include "monitor/persistence.h"
#include "monitor/store.h"
#include "obs/audit.h"
#include "util/check.h"

namespace nlarm::core {
namespace {

std::string log_path(const char* name) {
  const std::string path = ::testing::TempDir() + "/" + name +
                           std::string(monitor::kDeltaLogExtension);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

// A store with every record written once. Nodes are spread over switches
// (i / 3) so the block-quarantine overlay has blocks to act on.
std::unique_ptr<monitor::MonitorStore> seeded_store(int n, double now = 10.0) {
  auto store = std::make_unique<monitor::MonitorStore>(n);
  store->write_livehosts(now, std::vector<bool>(static_cast<std::size_t>(n),
                                               true));
  for (int i = 0; i < n; ++i) {
    monitor::NodeSnapshot record;
    record.spec.id = i;
    record.spec.hostname = "host" + std::to_string(i);
    record.spec.switch_id = i / 3;
    record.spec.core_count = 8;
    record.spec.cpu_freq_ghz = 3.0;
    record.spec.total_mem_gb = 16.0;
    record.cpu_load = 0.1 * i;
    store->write_node_record(now, record);
  }
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      store->write_latency(now, u, v, 100.0 + u + v, 101.0 + u + v);
      store->write_latency(now, v, u, 100.0 + u + v, 101.0 + u + v);
      store->write_bandwidth(now, u, v, 900.0 - u - v, 941.0);
      store->write_bandwidth(now, v, u, 900.0 - u - v, 941.0);
    }
  }
  return store;
}

AllocationRequest request_for(int nprocs = 8, int ppn = 4) {
  AllocationRequest request;
  request.nprocs = nprocs;
  request.ppn = ppn;
  request.job = JobWeights::balanced();
  return request;
}

void expect_decisions_equal(const BrokerDecision& leader,
                            const BrokerDecision& follower,
                            const char* context) {
  EXPECT_EQ(leader.action, follower.action) << context;
  EXPECT_EQ(leader.reason, follower.reason) << context;
  EXPECT_EQ(leader.cluster_load_per_core, follower.cluster_load_per_core)
      << context;
  EXPECT_EQ(leader.effective_capacity, follower.effective_capacity)
      << context;
  EXPECT_EQ(leader.allocation.policy, follower.allocation.policy) << context;
  EXPECT_EQ(leader.allocation.nodes, follower.allocation.nodes) << context;
  EXPECT_EQ(leader.allocation.procs_per_node,
            follower.allocation.procs_per_node)
      << context;
  EXPECT_EQ(leader.allocation.total_procs, follower.allocation.total_procs)
      << context;
  EXPECT_EQ(leader.allocation.avg_cpu_load, follower.allocation.avg_cpu_load)
      << context;
  EXPECT_EQ(leader.allocation.avg_bw_complement_mbps,
            follower.allocation.avg_bw_complement_mbps)
      << context;
  EXPECT_EQ(leader.allocation.avg_latency_us,
            follower.allocation.avg_latency_us)
      << context;
  EXPECT_EQ(leader.allocation.total_cost, follower.allocation.total_cost)
      << context;
}

// Everything but the follower's own wall-clock stage timings and cache-hit
// flags must replicate.
void expect_audit_parity(const obs::AuditRecord& leader,
                         const obs::AuditRecord& follower, int index) {
  EXPECT_EQ(leader.nprocs, follower.nprocs) << "record " << index;
  EXPECT_EQ(leader.ppn, follower.ppn) << "record " << index;
  EXPECT_EQ(leader.alpha, follower.alpha) << "record " << index;
  EXPECT_EQ(leader.beta, follower.beta) << "record " << index;
  EXPECT_EQ(leader.snapshot_version, follower.snapshot_version)
      << "record " << index;
  EXPECT_EQ(leader.snapshot_time, follower.snapshot_time)
      << "record " << index;
  EXPECT_EQ(leader.snapshot_nodes, follower.snapshot_nodes)
      << "record " << index;
  EXPECT_EQ(leader.usable_nodes, follower.usable_nodes) << "record " << index;
  EXPECT_EQ(leader.epoch, follower.epoch) << "record " << index;
  EXPECT_EQ(leader.action, follower.action) << "record " << index;
  EXPECT_EQ(leader.reason, follower.reason) << "record " << index;
  EXPECT_EQ(leader.cluster_load_per_core, follower.cluster_load_per_core)
      << "record " << index;
  EXPECT_EQ(leader.effective_capacity, follower.effective_capacity)
      << "record " << index;
  EXPECT_EQ(leader.degradation, follower.degradation) << "record " << index;
  EXPECT_EQ(leader.quarantined_nodes, follower.quarantined_nodes)
      << "record " << index;
  EXPECT_EQ(leader.policy, follower.policy) << "record " << index;
  EXPECT_EQ(leader.nodes, follower.nodes) << "record " << index;
  EXPECT_EQ(leader.hostnames, follower.hostnames) << "record " << index;
  EXPECT_EQ(leader.procs_per_node, follower.procs_per_node)
      << "record " << index;
  EXPECT_EQ(leader.compute_cost, follower.compute_cost) << "record " << index;
  EXPECT_EQ(leader.network_cost, follower.network_cost) << "record " << index;
  EXPECT_EQ(leader.total_cost, follower.total_cost) << "record " << index;
}

TEST(ReplicaTest, FollowerReplaysLeaderDecisionsBitForBit) {
  const std::string path = log_path("replica_parity");
  auto store = seeded_store(6);
  monitor::DeltaLogWriter writer(path);

  const AllocationRequest request = request_for();
  const RequestProfile profile = RequestProfile::of(request);
  NetworkLoadAwareAllocator leader_alloc;
  ResourceBroker leader(leader_alloc);
  obs::AuditLog leader_audit;
  leader.set_audit_log(&leader_audit);

  NetworkLoadAwareAllocator follower_alloc;
  FollowerBroker follower(follower_alloc, path, profile);
  obs::AuditLog follower_audit;
  follower.set_audit_log(&follower_audit);

  double now = 10.0;
  for (int epoch = 0; epoch < 6; ++epoch) {
    auto snapshot = std::make_shared<const monitor::ClusterSnapshot>(
        store->assemble(now));
    const monitor::SnapshotDelta delta = store->drain_delta();
    ASSERT_TRUE(writer.append(*snapshot, delta));
    leader.refresh_epoch(snapshot, delta, profile);
    EXPECT_EQ(follower.poll_once(now), 1);
    EXPECT_EQ(follower.status(now).state_version, snapshot->version);

    const BrokerDecision from_leader =
        leader.decide(leader.pin_epoch(), request);
    const BrokerDecision from_follower = follower.decide(request, now);
    expect_decisions_equal(from_leader, from_follower,
                           ("epoch " + std::to_string(epoch)).c_str());

    now += 3.0;
    monitor::NodeSnapshot record = store->node_record(epoch % 6);
    record.cpu_load += 0.4;
    store->write_node_record(now, record);
    store->write_latency(now, epoch % 6, (epoch + 2) % 6, 80.0 + epoch, 81.0);
    store->write_latency(now, (epoch + 2) % 6, epoch % 6, 80.0 + epoch, 81.0);
  }

  // Batch path: same pins, same answers (one shared profile, varying size).
  const std::vector<AllocationRequest> batch = {
      request_for(4), request_for(8), request_for(12)};
  const std::vector<BrokerDecision> leader_batch =
      leader.decide_batch(leader.pin_epoch(), batch);
  const std::vector<BrokerDecision> follower_batch =
      follower.decide_batch(batch, now);
  ASSERT_EQ(leader_batch.size(), follower_batch.size());
  for (std::size_t i = 0; i < leader_batch.size(); ++i) {
    expect_decisions_equal(leader_batch[i], follower_batch[i],
                           ("batch " + std::to_string(i)).c_str());
  }

  // Audit trails replicate too, modulo the follower's own timings.
  const std::vector<obs::AuditRecord> leader_records = leader_audit.records();
  const std::vector<obs::AuditRecord> follower_records =
      follower_audit.records();
  ASSERT_EQ(leader_records.size(), follower_records.size());
  for (std::size_t i = 0; i < leader_records.size(); ++i) {
    expect_audit_parity(leader_records[i], follower_records[i],
                        static_cast<int>(i));
  }
  std::remove(path.c_str());
}

TEST(ReplicaTest, DegradedParityUnderQuarantineAndStalePairFallback) {
  const std::string path = log_path("replica_degraded");
  auto store = seeded_store(6);
  // Pair-age parity holds across delta frames (writes land in the tick
  // that assembles the frame — see the FollowerBroker class comment); a
  // compaction frame re-stamps every pair at its snapshot time, so keep
  // the compaction policy out of this test's way.
  monitor::DeltaLogWriter::Options no_compaction;
  no_compaction.compact_after_deltas = 1 << 20;
  no_compaction.compact_bytes_ratio = 1e9;
  monitor::DeltaLogWriter writer(path, no_compaction);

  DegradationPolicy policy;
  policy.node_staleness_budget_s = 30.0;
  policy.node_readmit_s = 15.0;
  policy.pair_staleness_budget_s = 40.0;
  policy.pair_penalty = 1.5;
  policy.max_epoch_age_s = 1e6;
  policy.block_quarantine_fraction = 0.6;

  const AllocationRequest request = request_for();
  const RequestProfile profile = RequestProfile::of(request);
  NetworkLoadAwareAllocator leader_alloc;
  ResourceBroker leader(leader_alloc);
  leader.set_degradation(policy);
  NetworkLoadAwareAllocator follower_alloc;
  FollowerBroker follower(follower_alloc, path, profile);
  follower.set_degradation(policy);

  // Seed frame: every write stamped at t=10, so the follower's mirror
  // reconstructs the leader's staleness view exactly.
  double now = 10.0;
  {
    auto snapshot = std::make_shared<const monitor::ClusterSnapshot>(
        store->assemble(now));
    const monitor::SnapshotDelta delta = store->drain_delta();
    ASSERT_TRUE(writer.append(*snapshot, delta));
    leader.refresh_epoch(snapshot, delta, store->staleness_view(now),
                         profile);
    EXPECT_EQ(follower.poll_once(now), 1);
  }

  // Starve nodes 3 and 4 (switch 1 loses 2 of 3 — block quarantine takes
  // node 5 with them) and the (1,2) pair (falls back to the 5-min mean),
  // while refreshing everything else each tick.
  bool saw_quarantine = false;
  bool saw_block_overlay = false;
  bool saw_pair_fallback = false;
  for (now = 25.0; now <= 85.0; now += 20.0) {
    for (const int alive : {0, 1, 2, 5}) {
      monitor::NodeSnapshot record = store->node_record(alive);
      record.cpu_load = 0.1 * alive + 0.01 * now;
      store->write_node_record(now, record);
    }
    store->write_latency(now, 0, 1, 90.0 + now * 0.1, 91.0);
    store->write_latency(now, 1, 0, 90.0 + now * 0.1, 91.0);
    store->write_latency(now, 0, 2, 95.0 + now * 0.1, 96.0);
    store->write_latency(now, 2, 0, 95.0 + now * 0.1, 96.0);

    auto snapshot = std::make_shared<const monitor::ClusterSnapshot>(
        store->assemble(now));
    const monitor::SnapshotDelta delta = store->drain_delta();
    ASSERT_TRUE(writer.append(*snapshot, delta));
    leader.refresh_epoch(snapshot, delta, store->staleness_view(now),
                         profile);
    EXPECT_EQ(follower.poll_once(now), 1);

    const BrokerDecision from_leader =
        leader.decide(leader.pin_epoch(), request);
    const BrokerDecision from_follower = follower.decide(request, now);
    expect_decisions_equal(from_leader, from_follower,
                           ("tick " + std::to_string(now)).c_str());

    const EpochPin pin = leader.pin_epoch();
    ASSERT_TRUE(pin.valid());
    const obs::EpochStatus replicated = follower.epoch_status(now);
    EXPECT_EQ(pin.prepared->quarantined, replicated.quarantined)
        << "tick " << now;
    EXPECT_EQ(pin.prepared->pair_fallbacks, replicated.pair_fallbacks)
        << "tick " << now;
    EXPECT_EQ(pin.prepared->degraded, replicated.degraded) << "tick " << now;
    saw_quarantine |= replicated.quarantined >= 2;
    saw_block_overlay |= replicated.quarantined >= 3;
    saw_pair_fallback |= replicated.pair_fallbacks >= 1;
  }
  // The scenario actually engaged every degradation mechanism under test.
  EXPECT_TRUE(saw_quarantine);
  EXPECT_TRUE(saw_block_overlay);
  EXPECT_TRUE(saw_pair_fallback);
  std::remove(path.c_str());
}

TEST(ReplicaTest, FencesDecidesOnceReplicationLagExceedsTheBound) {
  const std::string path = log_path("replica_fence");
  auto store = seeded_store(4);
  monitor::DeltaLogWriter writer(path);
  ASSERT_TRUE(writer.append(store->assemble(10.0), store->drain_delta()));

  const AllocationRequest request = request_for();
  NetworkLoadAwareAllocator allocator;
  ReplicaOptions options;
  options.max_epoch_age_s = 50.0;
  FollowerBroker follower(allocator, path, RequestProfile::of(request),
                          options);

  // Before any frame: refused, not fenced.
  const BrokerDecision unseeded = follower.decide(request, 11.0);
  EXPECT_EQ(unseeded.action, BrokerDecision::Action::kWait);
  EXPECT_NE(unseeded.reason.find("no replicated state"), std::string::npos);
  EXPECT_FALSE(follower.epoch_status(11.0).published);

  EXPECT_EQ(follower.poll_once(12.0), 1);
  const BrokerDecision fresh = follower.decide(request, 30.0);
  EXPECT_EQ(fresh.action, BrokerDecision::Action::kAllocate);
  EXPECT_TRUE(follower.epoch_status(30.0).ready());

  // State time is 10; at now=100 the lag (90 s) exceeds the 50 s bound.
  const BrokerDecision fenced = follower.decide(request, 100.0);
  EXPECT_EQ(fenced.action, BrokerDecision::Action::kWait);
  EXPECT_NE(fenced.reason.find("replica fenced"), std::string::npos);
  EXPECT_TRUE(follower.status(100.0).fenced_now);
  EXPECT_EQ(follower.status(100.0).fenced_decides, 1);
  EXPECT_FALSE(follower.epoch_status(100.0).ready());

  const std::vector<AllocationRequest> batch = {request_for(4),
                                                request_for(8)};
  const std::vector<BrokerDecision> refused =
      follower.decide_batch(batch, 100.0);
  ASSERT_EQ(refused.size(), 2u);
  for (const BrokerDecision& decision : refused) {
    EXPECT_EQ(decision.action, BrokerDecision::Action::kWait);
    EXPECT_NE(decision.reason.find("replica fenced"), std::string::npos);
  }

  // A fresh frame heals the fence.
  monitor::NodeSnapshot record = store->node_record(1);
  record.cpu_load = 0.7;
  store->write_node_record(99.0, record);
  ASSERT_TRUE(writer.append(store->assemble(99.0), store->drain_delta()));
  EXPECT_EQ(follower.poll_once(100.0), 1);
  EXPECT_EQ(follower.decide(request, 100.0).action,
            BrokerDecision::Action::kAllocate);
  std::remove(path.c_str());
}

TEST(ReplicaTest, PromotesFromLastGoodFrameWhenLeaderDiesMidCompaction) {
  const std::string path = log_path("replica_promote");
  auto store = seeded_store(4);
  monitor::DeltaLogWriter writer(path);
  ASSERT_TRUE(writer.append(store->assemble(10.0), store->drain_delta()));
  monitor::NodeSnapshot record = store->node_record(2);
  record.cpu_load = 1.3;
  store->write_node_record(13.0, record);
  ASSERT_TRUE(writer.append(store->assemble(13.0), store->drain_delta()));

  const AllocationRequest request = request_for();
  NetworkLoadAwareAllocator allocator;
  FollowerBroker follower(allocator, path, RequestProfile::of(request));
  EXPECT_EQ(follower.poll_once(13.0), 2);
  const std::uint64_t replicated_version =
      follower.status(13.0).state_version;

  // The leader dies mid-compaction: the armed torn write damages the tmp
  // file, the append fails, and the log stops making progress.
  record = store->node_record(0);
  record.cpu_load = 2.2;
  store->write_node_record(16.0, record);
  monitor::arm_torn_snapshot_write();
  EXPECT_FALSE(writer.write_full(store->assemble(16.0)));
  EXPECT_EQ(follower.poll_once(16.0), 0);

  // Silence policy: 3 s of silence at t=16 is under the 15 s default...
  EXPECT_FALSE(follower.maybe_promote(16.0));
  EXPECT_EQ(follower.role(), ReplicaStatus::Role::kFollower);
  // ...16 s at t=29 is over it.
  EXPECT_TRUE(follower.maybe_promote(29.0));
  EXPECT_EQ(follower.role(), ReplicaStatus::Role::kLeader);
  EXPECT_EQ(follower.status(29.0).promotions, 1);
  EXPECT_FALSE(follower.promote(30.0));  // already leader

  // Promotion re-laid the log from the last-good replicated frame: a fresh
  // replay converges on exactly the promoted state, torn tail healed.
  const monitor::ClusterSnapshot replayed = monitor::replay_delta_log(path);
  EXPECT_EQ(replayed.version, replicated_version);
  EXPECT_EQ(replayed.version, follower.snapshot().version);
  EXPECT_EQ(replayed.net.latency_us, follower.snapshot().net.latency_us);
  EXPECT_EQ(replayed.nodes[2].cpu_load, 1.3);
  EXPECT_EQ(replayed.nodes[0].cpu_load, 0.0);  // the dying write never landed

  // The new leader takes over appends from a store restored off the
  // replicated state, and a second follower converges on the same log.
  monitor::MonitorStore takeover(4);
  takeover.restore(follower.snapshot());
  (void)takeover.drain_delta();
  record = takeover.node_record(3);
  record.cpu_load = 3.1;
  takeover.write_node_record(35.0, record);
  monitor::DeltaLogWriter takeover_writer(path);
  ASSERT_TRUE(
      takeover_writer.append(takeover.assemble(35.0), takeover.drain_delta()));
  const monitor::ClusterSnapshot converged = monitor::replay_delta_log(path);
  EXPECT_EQ(converged.nodes[3].cpu_load, 3.1);
  EXPECT_GT(converged.version, replicated_version);
  std::remove(path.c_str());
}

TEST(ReplicaTest, BackgroundTailThreadFollowsAndStops) {
  const std::string path = log_path("replica_thread");
  auto store = seeded_store(4);
  monitor::DeltaLogWriter writer(path);
  ASSERT_TRUE(writer.append(store->assemble(10.0), store->drain_delta()));

  const AllocationRequest request = request_for();
  NetworkLoadAwareAllocator allocator;
  ReplicaOptions options;
  options.poll_interval_s = 0.001;
  FollowerBroker follower(allocator, path, RequestProfile::of(request),
                          options);
  std::atomic<double> clock_now{10.0};
  follower.start([&clock_now] { return clock_now.load(); });

  for (int i = 0; i < 2000 && !follower.have_state(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(follower.have_state());
  EXPECT_EQ(follower.decide(request, clock_now.load()).action,
            BrokerDecision::Action::kAllocate);

  // Append under the live tail thread and watch the version advance.
  monitor::NodeSnapshot record = store->node_record(1);
  record.cpu_load = 0.9;
  store->write_node_record(20.0, record);
  ASSERT_TRUE(writer.append(store->assemble(20.0), store->drain_delta()));
  const std::uint64_t want = store->assemble(20.0).version;
  clock_now.store(20.0);
  for (int i = 0;
       i < 2000 && follower.status(20.0).state_version != want; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(follower.status(20.0).state_version, want);

  follower.stop();
  follower.stop();  // idempotent
  const long frames = follower.status(20.0).frames_ingested;
  follower.start([&clock_now] { return clock_now.load(); });
  follower.stop();
  EXPECT_GE(follower.status(20.0).frames_ingested, frames);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nlarm::core
