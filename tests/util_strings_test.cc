#include "util/strings.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace nlarm::util {
namespace {

TEST(SplitTest, BasicSplit) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
}

TEST(ToLowerTest, Lowercases) { EXPECT_EQ(to_lower("AbC"), "abc"); }

TEST(FormatTest, FormatsLikePrintf) {
  EXPECT_EQ(format("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
}

TEST(ParseDoubleTest, ParsesValid) {
  EXPECT_DOUBLE_EQ(parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(parse_double(" -3e2 "), -300.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_THROW(parse_double("abc"), CheckError);
  EXPECT_THROW(parse_double("1.5x"), CheckError);
  EXPECT_THROW(parse_double(""), CheckError);
}

TEST(ParseLongTest, ParsesValid) {
  EXPECT_EQ(parse_long("42"), 42);
  EXPECT_EQ(parse_long(" -7 "), -7);
}

TEST(ParseLongTest, RejectsGarbage) {
  EXPECT_THROW(parse_long("4.2"), CheckError);
  EXPECT_THROW(parse_long(""), CheckError);
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"one"}, ","), "one");
}

}  // namespace
}  // namespace nlarm::util
