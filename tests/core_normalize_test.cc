#include "core/normalize.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "util/check.h"

namespace nlarm::core {
namespace {

TEST(NormalizeTest, DividesBySum) {
  const std::vector<double> v{1.0, 3.0};
  const auto n = normalize_by_sum(v);
  EXPECT_DOUBLE_EQ(n[0], 0.25);
  EXPECT_DOUBLE_EQ(n[1], 0.75);
}

TEST(NormalizeTest, NormalizedValuesSumToOne) {
  const std::vector<double> v{0.2, 5.0, 1.7, 9.3};
  const auto n = normalize_by_sum(v);
  EXPECT_NEAR(std::accumulate(n.begin(), n.end(), 0.0), 1.0, 1e-12);
}

TEST(NormalizeTest, AllZeroStaysZero) {
  const std::vector<double> v{0.0, 0.0, 0.0};
  const auto n = normalize_by_sum(v);
  for (double x : n) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(NormalizeTest, NegativeInputRejected) {
  const std::vector<double> v{1.0, -2.0};
  EXPECT_THROW(normalize_by_sum(v), util::CheckError);
}

TEST(NormalizeTest, EmptyInputOk) {
  EXPECT_TRUE(normalize_by_sum({}).empty());
  EXPECT_TRUE(complement_max({}).empty());
}

TEST(ComplementTest, ComplementsAgainstMax) {
  const std::vector<double> v{1.0, 4.0, 2.5};
  const auto c = complement_max(v);
  EXPECT_DOUBLE_EQ(c[0], 3.0);
  EXPECT_DOUBLE_EQ(c[1], 0.0);
  EXPECT_DOUBLE_EQ(c[2], 1.5);
}

TEST(ComplementTest, ResultNonNegative) {
  const std::vector<double> v{0.1, 0.9, 0.5};
  for (double c : complement_max(v)) EXPECT_GE(c, 0.0);
}

TEST(ComplementTest, BestElementBecomesZero) {
  // The node with the most of a maximize-attribute should carry zero cost.
  const std::vector<double> v{10.0, 50.0, 30.0};
  const auto c = complement_max(v);
  EXPECT_DOUBLE_EQ(c[1], 0.0);
}

TEST(NormalizeAttributeTest, MinimizeIsPlainNormalization) {
  const std::vector<double> v{2.0, 2.0};
  const auto n = normalize_attribute(v, /*maximize=*/false);
  EXPECT_DOUBLE_EQ(n[0], 0.5);
}

TEST(NormalizeAttributeTest, MaximizeFlipsOrdering) {
  // Higher raw value (better for maximize) must yield lower cost.
  const std::vector<double> v{8.0, 16.0, 4.0};
  const auto n = normalize_attribute(v, /*maximize=*/true);
  EXPECT_LT(n[1], n[0]);
  EXPECT_LT(n[0], n[2]);
}

TEST(NormalizeAttributeTest, MinimizeKeepsOrdering) {
  const std::vector<double> v{8.0, 16.0, 4.0};
  const auto n = normalize_attribute(v, /*maximize=*/false);
  EXPECT_GT(n[1], n[0]);
  EXPECT_GT(n[0], n[2]);
}

TEST(NormalizeAttributeTest, EqualValuesEqualCosts) {
  const std::vector<double> v{3.0, 3.0, 3.0};
  for (bool maximize : {false, true}) {
    const auto n = normalize_attribute(v, maximize);
    EXPECT_DOUBLE_EQ(n[0], n[1]);
    EXPECT_DOUBLE_EQ(n[1], n[2]);
  }
}

}  // namespace
}  // namespace nlarm::core
