#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.h"

namespace nlarm::sim {
namespace {

TEST(EventQueueTest, DispatchesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.dispatch_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(0); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });
  while (!q.empty()) q.dispatch_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueTest, CancelPreventsDispatch) {
  EventQueue q;
  bool fired = false;
  EventHandle handle = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelIsIdempotentAndSafeAfterFire) {
  EventQueue q;
  EventHandle handle = q.schedule(1.0, [] {});
  q.dispatch_next();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no effect, no crash
  EventHandle empty;
  empty.cancel();  // default-constructed handle
  EXPECT_FALSE(empty.pending());
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  EventHandle first = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  first.cancel();
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueueTest, SchedulingIntoPastThrows) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.dispatch_next();
  EXPECT_THROW(q.schedule(4.0, [] {}), util::CheckError);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue q;
  std::vector<double> times;
  q.schedule(1.0, [&] {
    times.push_back(1.0);
    q.schedule(2.0, [&] { times.push_back(2.0); });
  });
  while (!q.empty()) q.dispatch_next();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(EventQueueTest, EmptyQueueOperationsThrow) {
  EventQueue q;
  EXPECT_THROW(q.next_time(), util::CheckError);
  EXPECT_THROW(q.dispatch_next(), util::CheckError);
}

TEST(EventQueueTest, EmptyCallbackRejected) {
  EventQueue q;
  EXPECT_THROW(q.schedule(1.0, EventFn{}), util::CheckError);
}

TEST(EventQueueTest, LastDispatchedTracksTime) {
  EventQueue q;
  q.schedule(2.5, [] {});
  EXPECT_DOUBLE_EQ(q.last_dispatched(), 0.0);
  q.dispatch_next();
  EXPECT_DOUBLE_EQ(q.last_dispatched(), 2.5);
}

}  // namespace
}  // namespace nlarm::sim
