// Sharded admission front end (core/serve_shard.h): SIMD scoring bit-
// identity, ledger semantics, decision-cache replay/invalidation, request
// coalescing, and the multi-producer stress cases ThreadSanitizer covers
// (CI test regex includes "Serve" and "Cache").
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "core/broker.h"
#include "core/prepared.h"
#include "core/serve_shard.h"
#include "test_helpers.h"
#include "util/check.h"
#include "util/flat_matrix.h"

namespace nlarm::core {
namespace {

using nlarm::testing::TestNode;
using nlarm::testing::idle_nodes;
using nlarm::testing::make_snapshot;

AllocationRequest request_for(int nprocs, int ppn = 2, double alpha = 0.3) {
  AllocationRequest req;
  req.nprocs = nprocs;
  req.ppn = ppn;
  req.job = JobWeights{alpha, 1.0 - alpha};
  return req;
}

std::shared_ptr<const monitor::ClusterSnapshot> versioned_snapshot(
    int nodes, std::uint64_t version) {
  auto snap = make_snapshot(idle_nodes(nodes));
  snap.version = version;
  return std::make_shared<const monitor::ClusterSnapshot>(std::move(snap));
}

void expect_same_decision(const BrokerDecision& a, const BrokerDecision& b) {
  EXPECT_EQ(a.action, b.action);
  EXPECT_EQ(a.allocation.nodes, b.allocation.nodes);
  EXPECT_EQ(a.allocation.procs_per_node, b.allocation.procs_per_node);
  EXPECT_EQ(a.allocation.total_cost, b.allocation.total_cost);
  EXPECT_EQ(a.effective_capacity, b.effective_capacity);
}

// --- SIMD scoring ---

TEST(ServeSimdTest, DispatchedKernelIsBitIdenticalToScalar) {
  // Every size from 1 to 41 exercises the vector body and every tail length
  // of both the AVX2 (stride 4) and NEON (stride 2) kernels.
  std::uint64_t state = 0x243f6a8885a308d3ULL;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state % 100000) / 997.0;
  };
  for (std::size_t n = 1; n <= 41; ++n) {
    std::vector<double> cl(n);
    std::vector<double> row(n);
    for (std::size_t i = 0; i < n; ++i) {
      cl[i] = next();
      row[i] = next();
    }
    for (const double alpha : {0.3, 0.5, 0.999}) {
      std::vector<double> got(n);
      std::vector<double> want(n);
      simd::score_addition_row(alpha, cl, row.data(), 1.0 - alpha, got);
      simd::score_addition_row_scalar(alpha, cl, row.data(), 1.0 - alpha,
                                      want);
      ASSERT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(double)), 0)
          << "kernel " << simd::active_kernel_name()
          << " diverged from scalar at n=" << n << " alpha=" << alpha;
    }
  }
}

TEST(ServeSimdTest, ActiveKernelIsReported) {
  const simd::Kernel kernel = simd::active_kernel();
  const char* name = simd::active_kernel_name();
  ASSERT_NE(name, nullptr);
  switch (kernel) {
    case simd::Kernel::kScalar:
      EXPECT_STREQ(name, "scalar");
      break;
    case simd::Kernel::kAvx2:
      EXPECT_STREQ(name, "avx2");
      break;
    case simd::Kernel::kNeon:
      EXPECT_STREQ(name, "neon");
      break;
  }
}

// --- AdmissionLedger ---

TEST(ServeLedgerTest, TryDebitIsAllOrNothing) {
  const std::vector<int> pc = {4, 4, 2};
  AdmissionLedger ledger(7, pc);
  EXPECT_EQ(ledger.epoch(), 7u);

  const std::vector<std::int32_t> positions = {0, 1, 2};
  const std::vector<int> takes = {2, 2, 2};
  EXPECT_TRUE(ledger.try_debit(positions, takes));

  // Position 2 is now empty; the whole debit must fail AND roll back the
  // partial reservations on positions 0 and 1.
  EXPECT_FALSE(ledger.try_debit(positions, takes));
  std::vector<int> remaining;
  std::vector<std::size_t> starts;
  EXPECT_EQ(ledger.snapshot(remaining, starts), 4);
  EXPECT_EQ(remaining, (std::vector<int>{2, 2, 0}));
  EXPECT_EQ(starts, (std::vector<std::size_t>{0, 1}));
}

TEST(ServeLedgerTest, DebitClampedFloorsAtZero) {
  const std::vector<int> pc = {3};
  AdmissionLedger ledger(1, pc);
  ledger.debit_clamped(0, 10);  // round-robin oversubscription grant
  std::vector<int> remaining;
  std::vector<std::size_t> starts;
  EXPECT_EQ(ledger.snapshot(remaining, starts), 0);
  EXPECT_EQ(remaining, (std::vector<int>{0}));
  EXPECT_TRUE(starts.empty());
}

// --- ServePlane determinism ---

TEST(ServePlaneTest, CacheOffSingleShardMatchesDecideBatch) {
  auto snapshot = versioned_snapshot(8, 3);
  const AllocationRequest probe = request_for(4);
  NetworkLoadAwareAllocator allocator;
  ResourceBroker broker(allocator);
  broker.refresh_epoch(snapshot, RequestProfile::of(probe));

  // Mixed shapes, including repeats — with the cache off every request is
  // fresh-scored against the ledger's post-debit capacities, which must
  // reproduce decide_batch's working-copy debits exactly.
  std::vector<AllocationRequest> requests;
  requests.push_back(request_for(4));
  requests.push_back(request_for(6, 2, 0.5));
  requests.push_back(request_for(4));
  requests.push_back(request_for(2, 2, 0.999));
  requests.push_back(request_for(8));

  EpochPin pin = broker.pin_epoch();
  const std::vector<BrokerDecision> batch = broker.decide_batch(pin, requests);

  ServeOptions options;
  options.shards = 1;
  options.decision_cache = false;
  ServePlane plane(broker, options);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const BrokerDecision served = plane.decide(requests[i]);
    SCOPED_TRACE("request " + std::to_string(i));
    expect_same_decision(served, batch[i]);
  }
  plane.stop();
  const ServeStats stats = plane.stats();
  EXPECT_EQ(stats.decisions, requests.size());
  EXPECT_EQ(stats.scoring_passes, requests.size());
  EXPECT_EQ(stats.cache_hits, 0u);
}

TEST(ServePlaneCacheTest, ReplayIsByteIdenticalToTheScoringPass) {
  auto snapshot = versioned_snapshot(8, 9);
  const AllocationRequest request = request_for(4);
  NetworkLoadAwareAllocator allocator;
  ResourceBroker broker(allocator);
  broker.refresh_epoch(snapshot, RequestProfile::of(request));

  ServeOptions options;
  options.shards = 1;
  options.decision_cache = true;
  options.debit_capacity = false;  // advisory: headroom never blocks replay
  ServePlane plane(broker, options);

  const BrokerDecision first = plane.decide(request);
  ASSERT_EQ(first.action, BrokerDecision::Action::kAllocate);
  for (int i = 0; i < 10; ++i) {
    const BrokerDecision replayed = plane.decide(request);
    expect_same_decision(replayed, first);
    EXPECT_EQ(replayed.reason, first.reason);
  }
  plane.stop();
  const ServeStats stats = plane.stats();
  EXPECT_EQ(stats.decisions, 11u);
  EXPECT_EQ(stats.scoring_passes, 1u) << "all replays must share one pass";
  EXPECT_EQ(stats.cache_hits, 10u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_invalidations, 0u);
}

TEST(ServePlaneCacheTest, ReplaySurvivesEpochRepublishByRescoring) {
  const AllocationRequest request = request_for(4);
  NetworkLoadAwareAllocator allocator;
  ResourceBroker broker(allocator);
  broker.refresh_epoch(versioned_snapshot(8, 1), RequestProfile::of(request));

  ServeOptions options;
  options.shards = 1;
  options.debit_capacity = false;
  ServePlane plane(broker, options);

  const BrokerDecision before = plane.decide(request);
  ASSERT_EQ(before.action, BrokerDecision::Action::kAllocate);
  broker.refresh_epoch(versioned_snapshot(8, 2), RequestProfile::of(request));
  const BrokerDecision after = plane.decide(request);
  ASSERT_EQ(after.action, BrokerDecision::Action::kAllocate);
  plane.stop();

  // The cache is keyed on the epoch: the republish must force a fresh pass,
  // never replay a placement scored against the retired epoch.
  const ServeStats stats = plane.stats();
  EXPECT_EQ(stats.scoring_passes, 2u);
  EXPECT_EQ(stats.cache_hits, 0u);
}

TEST(ServePlaneCacheTest, CapacityInvalidationFallsThroughToFreshScore) {
  // 4 idle nodes at ppn=2 -> capacity 8. The first nprocs=6 allocation
  // reserves 3 nodes; a same-shape replay cannot re-prove headroom (only
  // one untouched node is left), so the entry must be invalidated and the
  // request fresh-scored over the remainder — where the gate says wait,
  // exactly as decide_batch does for the same sequence.
  auto snapshot = versioned_snapshot(4, 5);
  const AllocationRequest request = request_for(6);
  NetworkLoadAwareAllocator allocator;
  ResourceBroker broker(allocator);
  broker.refresh_epoch(snapshot, RequestProfile::of(request));

  const std::vector<AllocationRequest> requests = {request, request};
  EpochPin pin = broker.pin_epoch();
  const std::vector<BrokerDecision> batch = broker.decide_batch(pin, requests);
  ASSERT_EQ(batch[0].action, BrokerDecision::Action::kAllocate);
  ASSERT_EQ(batch[1].action, BrokerDecision::Action::kWait);

  ServeOptions options;
  options.shards = 1;
  options.decision_cache = true;
  options.debit_capacity = true;
  ServePlane plane(broker, options);
  const BrokerDecision first = plane.decide(request);
  const BrokerDecision second = plane.decide(request);
  plane.stop();

  expect_same_decision(first, batch[0]);
  expect_same_decision(second, batch[1]);
  const ServeStats stats = plane.stats();
  EXPECT_EQ(stats.cache_invalidations, 1u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.scoring_passes, 2u);
}

TEST(ServePlaneCacheTest, CoalescingFansOneScoringPassToConcurrentWaiters) {
  auto snapshot = versioned_snapshot(12, 4);
  const AllocationRequest request = request_for(8);
  NetworkLoadAwareAllocator allocator;
  ResourceBroker broker(allocator);
  broker.refresh_epoch(snapshot, RequestProfile::of(request));

  ServeOptions options;
  options.shards = 1;            // one shard: every producer shares a drain
  options.debit_capacity = false;
  options.coalesce_window_us = 1000.0;
  ServePlane plane(broker, options);

  constexpr int kProducers = 8;
  constexpr int kPerProducer = 50;
  std::vector<BrokerDecision> firsts(kProducers);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      BrokerDecision mine = plane.decide(request);
      for (int i = 1; i < kPerProducer; ++i) {
        const BrokerDecision again = plane.decide(request);
        if (again.allocation.nodes != mine.allocation.nodes ||
            again.allocation.procs_per_node !=
                mine.allocation.procs_per_node) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
      firsts[static_cast<std::size_t>(p)] = std::move(mine);
    });
  }
  for (std::thread& t : producers) t.join();

  // Same epoch + same shape: every waiter must receive the identical
  // placement regardless of which drain served it.
  EXPECT_EQ(mismatches.load(), 0);
  for (int p = 1; p < kProducers; ++p) {
    expect_same_decision(firsts[static_cast<std::size_t>(p)], firsts[0]);
  }
  const ServeStats storm = plane.stats();
  EXPECT_EQ(storm.decisions,
            static_cast<std::uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(storm.scoring_passes, 1u)
      << "one shape against one epoch needs exactly one pass";

  // Coalescing needs >= 2 same-shape requests inside the scoring drain
  // itself. Under sanitizers, thread startup can serialize the storm enough
  // that the first drain holds a single slot; retry barrier-released bursts
  // on fresh shapes (distinct alpha bits -> distinct cache keys) until one
  // burst lands together.
  for (int attempt = 0; attempt < 10 && plane.stats().coalesced == 0;
       ++attempt) {
    AllocationRequest fresh = request;
    fresh.job.alpha += 1e-9 * static_cast<double>(attempt + 1);
    std::atomic<bool> go{false};
    std::vector<std::thread> burst;
    for (int p = 0; p < kProducers; ++p) {
      burst.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        for (int i = 0; i < 4; ++i) plane.decide(fresh);
      });
    }
    go.store(true, std::memory_order_release);
    for (std::thread& t : burst) t.join();
  }
  plane.stop();
  EXPECT_GT(plane.stats().coalesced, 0u)
      << "concurrent same-shape requests should ride a drain-mate's pass";
}

TEST(ServePlaneStressTest, ManyProducersManyShardsWithEpochChurn) {
  const AllocationRequest request = request_for(6);
  const RequestProfile profile = RequestProfile::of(request);
  NetworkLoadAwareAllocator allocator;
  ResourceBroker broker(allocator);
  broker.refresh_epoch(versioned_snapshot(10, 100), profile);

  ServeOptions options;
  options.shards = 3;
  options.queue_capacity = 16;  // small: exercises full-ring backpressure
  options.decision_cache = true;
  options.debit_capacity = true;
  ServePlane plane(broker, options);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 300;
  std::atomic<bool> stop_churn{false};
  std::thread churn([&broker, &profile, &stop_churn] {
    std::uint64_t version = 101;
    while (!stop_churn.load(std::memory_order_relaxed)) {
      broker.refresh_epoch(versioned_snapshot(10, version++), profile);
      std::this_thread::yield();
    }
  });

  std::atomic<int> allocated{0};
  std::atomic<int> waited{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        const BrokerDecision decision = plane.decide(request);
        if (decision.action == BrokerDecision::Action::kAllocate) {
          NLARM_CHECK(!decision.allocation.nodes.empty());
          allocated.fetch_add(1, std::memory_order_relaxed);
        } else {
          waited.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  stop_churn.store(true, std::memory_order_relaxed);
  churn.join();
  plane.stop();

  EXPECT_EQ(allocated.load() + waited.load(), kProducers * kPerProducer);
  const ServeStats stats = plane.stats();
  EXPECT_EQ(stats.decisions,
            static_cast<std::uint64_t>(kProducers * kPerProducer));
  // Epoch churn resets the ledger on every publish, so fresh capacity keeps
  // arriving and most decisions should allocate.
  EXPECT_GT(allocated.load(), 0);
}

TEST(ServePlaneTest, OptionsAreValidated) {
  EXPECT_THROW(
      {
        ServeOptions bad;
        bad.shards = 0;
        bad.validate();
      },
      util::CheckError);
  EXPECT_THROW(
      {
        ServeOptions bad;
        bad.coalesce_window_us = -1.0;
        bad.validate();
      },
      util::CheckError);
  EXPECT_THROW(
      {
        ServeOptions bad;
        bad.max_drain = 0;
        bad.validate();
      },
      util::CheckError);
}

TEST(ServePlaneTest, RequiresPublishedEpoch) {
  NetworkLoadAwareAllocator allocator;
  ResourceBroker broker(allocator);
  EXPECT_THROW(ServePlane(broker, ServeOptions{}), util::CheckError);
}

}  // namespace
}  // namespace nlarm::core
