#include "core/launcher_export.h"

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "test_helpers.h"

namespace nlarm::core {
namespace {

using nlarm::testing::idle_nodes;
using nlarm::testing::make_snapshot;

Allocation make_allocation(std::vector<cluster::NodeId> nodes, int ppn) {
  Allocation alloc;
  alloc.policy = "test";
  alloc.nodes = std::move(nodes);
  alloc.procs_per_node.assign(alloc.nodes.size(), ppn);
  alloc.total_procs = static_cast<int>(alloc.nodes.size()) * ppn;
  return alloc;
}

TEST(CompressHostlistTest, SingleHost) {
  EXPECT_EQ(compress_hostlist({"csews5"}), "csews5");
}

TEST(CompressHostlistTest, ContiguousRange) {
  EXPECT_EQ(compress_hostlist({"csews1", "csews2", "csews3"}),
            "csews[1-3]");
}

TEST(CompressHostlistTest, MixedRangesAndSingles) {
  EXPECT_EQ(
      compress_hostlist({"csews1", "csews2", "csews3", "csews7", "csews9",
                         "csews10"}),
      "csews[1-3,7,9-10]");
}

TEST(CompressHostlistTest, UnsortedAndDuplicatesHandled) {
  EXPECT_EQ(compress_hostlist({"csews3", "csews1", "csews2", "csews2"}),
            "csews[1-3]");
}

TEST(CompressHostlistTest, MultiplePrefixes) {
  EXPECT_EQ(compress_hostlist({"gpu1", "gpu2", "csews4"}),
            "csews4,gpu[1-2]");
}

TEST(CompressHostlistTest, NonNumericHostsVerbatim) {
  EXPECT_EQ(compress_hostlist({"headnode", "csews1"}), "csews1,headnode");
}

TEST(CompressHostlistTest, EmptyList) {
  EXPECT_EQ(compress_hostlist({}), "");
}

TEST(LauncherExportTest, OpenMpiHostfileFormat) {
  auto snap = make_snapshot(idle_nodes(4));
  const Allocation alloc = make_allocation({0, 2}, 4);
  const std::string hostfile = to_openmpi_hostfile(alloc, snap);
  EXPECT_EQ(hostfile, "csews1 slots=4\ncsews3 slots=4\n");
}

TEST(LauncherExportTest, MpichMachinefileFormat) {
  auto snap = make_snapshot(idle_nodes(4));
  const Allocation alloc = make_allocation({1}, 8);
  EXPECT_EQ(to_mpich_machinefile(alloc, snap), "csews2:8\n");
}

TEST(LauncherExportTest, SlurmNodelistCompressed) {
  auto snap = make_snapshot(idle_nodes(8));
  const Allocation alloc = make_allocation({0, 1, 2, 5}, 4);
  EXPECT_EQ(to_slurm_nodelist(alloc, snap), "csews[1-3,6]");
}

TEST(LauncherExportTest, SlurmExcludeIsComplement) {
  auto snap = make_snapshot(idle_nodes(6));
  const Allocation alloc = make_allocation({0, 1}, 4);
  EXPECT_EQ(to_slurm_exclude(alloc, snap), "csews[3-6]");
}

TEST(LauncherExportTest, ExcludeSkipsDeadNodes) {
  auto nodes = idle_nodes(4);
  nodes[3].live = false;
  auto snap = make_snapshot(nodes);
  const Allocation alloc = make_allocation({0}, 4);
  // Node 3 is not usable, so it is not "excludable" either.
  EXPECT_EQ(to_slurm_exclude(alloc, snap), "csews[2-3]");
}

TEST(LauncherExportTest, SrunCommandComplete) {
  auto snap = make_snapshot(idle_nodes(8));
  const Allocation alloc = make_allocation({0, 1, 2, 3}, 4);
  const std::string cmd = to_srun_command(alloc, snap, "./minimd");
  EXPECT_EQ(cmd,
            "srun --nodes=4 --ntasks=16 --ntasks-per-node=4 "
            "--nodelist=csews[1-4] ./minimd");
}

TEST(LauncherExportTest, TopologyConfListsSwitchesAndNodes) {
  cluster::Cluster c = cluster::make_uniform_cluster(6, 3);
  auto snap = make_snapshot(idle_nodes(6));
  const std::string conf =
      to_slurm_topology_conf(c.topology(), snap);
  EXPECT_NE(conf.find("SwitchName=sw0 Nodes=csews[1-2] Switches=sw1"),
            std::string::npos)
      << conf;
  EXPECT_NE(conf.find("SwitchName=sw2 Nodes=csews[5-6]"), std::string::npos)
      << conf;
}

}  // namespace
}  // namespace nlarm::core
