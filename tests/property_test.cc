// Property-based tests: invariants checked over parameterized sweeps of
// seeds, cluster shapes and request sizes (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "core/allocator.h"
#include "core/baselines.h"
#include "core/compute_load.h"
#include "core/network_load.h"
#include "core/normalize.h"
#include "monitor/snapshot.h"
#include "sim/rng.h"
#include "test_helpers.h"

namespace nlarm {
namespace {

using nlarm::testing::TestNode;
using nlarm::testing::make_snapshot;

/// Generates a random but valid snapshot from a seed.
monitor::ClusterSnapshot random_snapshot(std::uint64_t seed, int n) {
  sim::Rng rng(seed);
  std::vector<TestNode> nodes;
  for (int i = 0; i < n; ++i) {
    TestNode t;
    t.cpu_load = rng.uniform(0.0, 12.0);
    t.cpu_util = rng.uniform(0.0, 1.0);
    t.mem_used_gb = rng.uniform(0.0, 16.0);
    t.net_flow_mbps = rng.uniform(0.0, 900.0);
    t.users = static_cast<int>(rng.uniform_int(0, 8));
    t.cores = rng.chance(0.5) ? 8 : 12;
    t.freq_ghz = t.cores == 8 ? 2.8 : 4.6;
    nodes.push_back(t);
  }
  auto snap = make_snapshot(nodes);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      nlarm::testing::set_pair(snap, u, v, rng.uniform(50.0, 900.0),
                               rng.uniform(50.0, 1000.0));
    }
  }
  return snap;
}

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

TEST_P(SeededProperty, ComputeLoadsAreFiniteNonNegative) {
  const auto snap = random_snapshot(GetParam(), 12);
  std::vector<cluster::NodeId> nodes(12);
  std::iota(nodes.begin(), nodes.end(), 0);
  const auto cl = core::compute_loads(snap, nodes,
                                      core::ComputeLoadWeights{});
  for (double v : cl) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);  // sum of weights ≤ 1 and normalized columns ≤ 1
  }
}

TEST_P(SeededProperty, NetworkLoadMatrixSymmetricNonNegative) {
  const auto snap = random_snapshot(GetParam(), 10);
  std::vector<cluster::NodeId> nodes(10);
  std::iota(nodes.begin(), nodes.end(), 0);
  const auto nl = core::network_loads(snap, nodes,
                                      core::NetworkLoadWeights{});
  for (std::size_t i = 0; i < nl.size(); ++i) {
    EXPECT_DOUBLE_EQ(nl[i][i], 0.0);
    for (std::size_t j = 0; j < nl.size(); ++j) {
      EXPECT_DOUBLE_EQ(nl[i][j], nl[j][i]);
      EXPECT_GE(nl[i][j], 0.0);
      EXPECT_TRUE(std::isfinite(nl[i][j]));
    }
  }
}

TEST_P(SeededProperty, NormalizationPartitionOfUnity) {
  sim::Rng rng(GetParam());
  std::vector<double> values;
  for (int i = 0; i < 20; ++i) values.push_back(rng.uniform(0.0, 100.0));
  const auto n = core::normalize_by_sum(values);
  EXPECT_NEAR(std::accumulate(n.begin(), n.end(), 0.0), 1.0, 1e-9);
  for (double v : n) EXPECT_GE(v, 0.0);
}

TEST_P(SeededProperty, AllAllocatorsSatisfyRequestExactly) {
  const auto snap = random_snapshot(GetParam(), 14);
  core::AllocationRequest req;
  req.nprocs = 4 + static_cast<int>(GetParam() % 29);
  req.ppn = 4;
  req.job = core::JobWeights::balanced();

  core::RandomAllocator random(GetParam());
  core::SequentialAllocator sequential(GetParam());
  core::LoadAwareAllocator load_aware;
  core::NetworkLoadAwareAllocator ours;
  for (core::Allocator* a :
       {static_cast<core::Allocator*>(&random),
        static_cast<core::Allocator*>(&sequential),
        static_cast<core::Allocator*>(&load_aware),
        static_cast<core::Allocator*>(&ours)}) {
    const core::Allocation alloc = a->allocate(snap, req);
    EXPECT_EQ(std::accumulate(alloc.procs_per_node.begin(),
                              alloc.procs_per_node.end(), 0),
              req.nprocs)
        << a->name();
    const std::set<cluster::NodeId> unique(alloc.nodes.begin(),
                                           alloc.nodes.end());
    EXPECT_EQ(unique.size(), alloc.nodes.size()) << a->name();
    EXPECT_EQ(alloc.nodes.size(), alloc.procs_per_node.size()) << a->name();
    for (int procs : alloc.procs_per_node) EXPECT_GT(procs, 0) << a->name();
  }
}

TEST_P(SeededProperty, OursNeverWorseTotalCostThanAnyCandidate) {
  const auto snap = random_snapshot(GetParam(), 10);
  core::AllocationRequest req;
  req.nprocs = 12;
  req.ppn = 4;
  req.job = core::JobWeights{0.4, 0.6};
  core::NetworkLoadAwareAllocator ours;
  ours.allocate(snap, req);
  const auto& selection = ours.last_selection();
  const double best = selection.scored[selection.best_index].total_cost;
  for (const auto& scored : selection.scored) {
    EXPECT_LE(best, scored.total_cost + 1e-12);
  }
}

TEST_P(SeededProperty, EffectiveCoresWithinBounds) {
  const auto snap = random_snapshot(GetParam(), 16);
  std::vector<cluster::NodeId> nodes(16);
  std::iota(nodes.begin(), nodes.end(), 0);
  const auto pc = core::effective_process_counts(snap, nodes, 0);
  for (std::size_t i = 0; i < pc.size(); ++i) {
    EXPECT_GE(pc[i], 1);
    EXPECT_LE(pc[i], snap.nodes[i].spec.core_count);
  }
}

TEST_P(SeededProperty, AddingLoadNeverLowersANodesComputeLoad) {
  auto snap = random_snapshot(GetParam(), 8);
  std::vector<cluster::NodeId> nodes(8);
  std::iota(nodes.begin(), nodes.end(), 0);
  const auto before = core::compute_loads(snap, nodes,
                                          core::ComputeLoadWeights{});
  // Double node 3's CPU load.
  auto& target = snap.nodes[3];
  const double new_load = target.cpu_load_avg.one_min * 2.0 + 1.0;
  target.cpu_load = new_load;
  target.cpu_load_avg = {new_load, new_load, new_load};
  const auto after = core::compute_loads(snap, nodes,
                                         core::ComputeLoadWeights{});
  EXPECT_GT(after[3], before[3]);
}

class RequestSizeProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    Requests, RequestSizeProperty,
    ::testing::Combine(::testing::Values(1, 3, 8, 16, 32, 64),
                       ::testing::Values(1, 2, 4)));

TEST_P(RequestSizeProperty, NodeCountMatchesCeilDivision) {
  const auto [nprocs, ppn] = GetParam();
  const auto snap = random_snapshot(99, 20);
  core::AllocationRequest req;
  req.nprocs = nprocs;
  req.ppn = ppn;
  req.job = core::JobWeights::balanced();
  core::NetworkLoadAwareAllocator ours;
  const core::Allocation alloc = ours.allocate(snap, req);
  const int expected_nodes = std::min(20, (nprocs + ppn - 1) / ppn);
  EXPECT_EQ(static_cast<int>(alloc.nodes.size()), expected_nodes);
}

class ClusterSizeProperty : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Sizes, ClusterSizeProperty,
                         ::testing::Values(2, 3, 5, 10, 30, 60));

TEST_P(ClusterSizeProperty, CandidateCountEqualsNodeCount) {
  const int n = GetParam();
  const auto snap = random_snapshot(5, n);
  core::AllocationRequest req;
  req.nprocs = std::min(n * 4, 8);
  req.ppn = 4;
  req.job = core::JobWeights::balanced();
  core::NetworkLoadAwareAllocator ours;
  ours.allocate(snap, req);
  EXPECT_EQ(ours.last_selection().scored.size(),
            static_cast<std::size_t>(n));
}

TEST_P(ClusterSizeProperty, GroundTruthSnapshotUsableEverywhere) {
  cluster::Cluster c = cluster::make_uniform_cluster(GetParam(), 1);
  net::FlowSet flows;
  net::NetworkModel network(c, flows);
  const auto snap = monitor::make_ground_truth_snapshot(c, network, 1.0);
  EXPECT_EQ(snap.usable_nodes().size(), static_cast<std::size_t>(GetParam()));
}

}  // namespace
}  // namespace nlarm
