// Sparse network estimation: O(V) probes per round with per-link
// reconstruction for the pairs the rotating schedule skipped. The estimator
// must recover tree-additive latencies (and bottleneck bandwidths) it never
// measured, and the sparse probe daemons must keep the store covered while
// measuring only n/2 pairs per period.
#include "monitor/sparse.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/topology.h"
#include "monitor/daemons.h"
#include "monitor/resource_monitor.h"
#include "monitor/store.h"
#include "net/flows.h"
#include "net/network_model.h"
#include "util/check.h"

namespace nlarm::monitor {
namespace {

// Ground-truth pair latency for a hand-assigned per-link decomposition.
double path_sum(const cluster::Topology& topology,
                const std::vector<double>& link_latency, cluster::NodeId u,
                cluster::NodeId v) {
  double sum = 0.0;
  for (const cluster::LinkId link : topology.path_links(u, v)) {
    sum += link_latency[static_cast<std::size_t>(link)];
  }
  return sum;
}

TEST(SparseEstimatorTest, StarReconstructsTheUnmeasuredPair) {
  // 4 nodes, two leaf switches off a core: links are uplinks 0..3 then the
  // two leaf trunks. Ground truth is tree-additive by construction.
  const cluster::Topology topology =
      cluster::make_star_topology({2, 2}, 1000.0, 400.0);
  ASSERT_EQ(topology.node_count(), 4);
  ASSERT_EQ(topology.link_count(), 6);
  const std::vector<double> truth = {10.0, 20.0, 30.0, 40.0, 5.0, 7.0};

  SparseNetworkEstimator estimator(topology);
  EXPECT_FALSE(estimator.latency_ready(1, 3));

  // Train on every pair EXCEPT (1, 3). Its path is still determined by the
  // others ((1,3) = (0,3) + (1,2) - (0,2)), so the Kaczmarz sweeps converge
  // to a decomposition that reconstructs it exactly.
  const std::vector<std::pair<cluster::NodeId, cluster::NodeId>> training = {
      {0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 3}};
  for (int sweep = 0; sweep < 200; ++sweep) {
    for (const auto& [u, v] : training) {
      estimator.observe_latency(u, v, path_sum(topology, truth, u, v));
    }
  }
  EXPECT_EQ(estimator.latency_observations(), 1000);

  ASSERT_TRUE(estimator.latency_ready(1, 3));
  for (const auto& [u, v] : training) {
    EXPECT_NEAR(estimator.estimate_latency_us(u, v),
                path_sum(topology, truth, u, v), 0.5)
        << "measured pair " << u << "," << v;
  }
  EXPECT_NEAR(estimator.estimate_latency_us(1, 3),
              path_sum(topology, truth, 1, 3), 0.5);
}

TEST(SparseEstimatorTest, ChainReconstructsAcrossTrunks) {
  // Two switches in a chain, two nodes each: (0,3) is determined by
  // (0,2) + (1,3) - (1,2).
  const cluster::Topology topology =
      cluster::make_chain_topology({2, 2}, 1000.0, 400.0);
  ASSERT_EQ(topology.node_count(), 4);
  const std::vector<double> truth = {12.0, 24.0, 36.0, 48.0, 9.0};
  ASSERT_EQ(static_cast<int>(truth.size()), topology.link_count());

  SparseNetworkEstimator estimator(topology);
  const std::vector<std::pair<cluster::NodeId, cluster::NodeId>> training = {
      {0, 1}, {2, 3}, {0, 2}, {1, 2}, {1, 3}};
  for (int sweep = 0; sweep < 200; ++sweep) {
    for (const auto& [u, v] : training) {
      estimator.observe_latency(u, v, path_sum(topology, truth, u, v));
    }
  }
  ASSERT_TRUE(estimator.latency_ready(0, 3));
  EXPECT_NEAR(estimator.estimate_latency_us(0, 3),
              path_sum(topology, truth, 0, 3), 0.5);
}

TEST(SparseEstimatorTest, BandwidthBottleneckTracksTheTrunk) {
  const cluster::Topology topology =
      cluster::make_star_topology({2, 2}, 1000.0, 400.0);
  SparseNetworkEstimator estimator(topology);

  // Peaks are exact from capacities before any observation.
  EXPECT_DOUBLE_EQ(estimator.path_peak_mbps(0, 1), 1000.0);
  EXPECT_DOUBLE_EQ(estimator.path_peak_mbps(0, 2), 400.0);
  EXPECT_FALSE(estimator.bandwidth_ready(1, 3));

  // One cross-switch measurement under the trunk estimate eases the
  // bottleneck trunk toward it; (1, 3) shares both trunks, so its estimate
  // follows without ever being measured.
  estimator.observe_bandwidth(0, 1, 950.0);
  estimator.observe_bandwidth(2, 3, 900.0);
  estimator.observe_bandwidth(0, 2, 300.0);
  ASSERT_TRUE(estimator.bandwidth_ready(1, 3));
  const double reconstructed = estimator.estimate_bandwidth_mbps(1, 3);
  EXPECT_GE(reconstructed, 300.0);
  EXPECT_LT(reconstructed, 400.0);

  // The trunk recovering raises every path link to at least the new
  // measurement — the reconstruction recovers with it.
  estimator.observe_bandwidth(0, 2, 500.0);
  EXPECT_GE(estimator.estimate_bandwidth_mbps(1, 3), 500.0);
}

TEST(SparseEstimatorTest, RejectsBadOptions) {
  const cluster::Topology topology =
      cluster::make_star_topology({2, 2}, 1000.0, 400.0);
  SparseEstimatorOptions bad;
  bad.latency_gain = 0.0;
  EXPECT_THROW(SparseNetworkEstimator(topology, bad), util::CheckError);
  SparseEstimatorOptions bad2;
  bad2.bandwidth_gain = 1.5;
  EXPECT_THROW(SparseNetworkEstimator(topology, bad2), util::CheckError);
}

class SparseProbeTest : public ::testing::Test {
 protected:
  SparseProbeTest()
      : cluster_(cluster::make_uniform_cluster(6, 2)),
        network_(cluster_, flows_),
        store_(cluster_.size()),
        sim_(321) {}

  cluster::Cluster cluster_;
  net::FlowSet flows_;
  net::NetworkModel network_;
  MonitorStore store_;
  sim::Simulation sim_;
};

TEST_F(SparseProbeTest, LatencyDaemonMeasuresOneRoundPerPeriod) {
  LatencyD daemon("latencyd", cluster_, 0, 60.0, 0.05, network_, store_,
                  sim::Rng(4));
  daemon.enable_sparse(cluster_.topology(), /*reconstruct_min_age_s=*/90.0);
  ASSERT_TRUE(daemon.sparse());
  daemon.launch(sim_);
  sim_.run_until(400.0);

  // O(V) traffic: exactly n/2 = 3 pairs per tick instead of all 15.
  EXPECT_GT(daemon.tick_count(), 0u);
  EXPECT_EQ(daemon.pairs_measured(),
            3 * static_cast<long>(daemon.tick_count()));
  // The schedule leaves most pairs stale past the 90 s threshold between
  // real probes — reconstruction covers them.
  EXPECT_GT(daemon.pairs_reconstructed(), 0);

  // Coverage: by now the rotation has touched every pair at least once and
  // reconstruction keeps the rest warm; the assembled snapshot is as
  // complete as the dense daemon's.
  const ClusterSnapshot snap = store_.assemble(sim_.now());
  for (int u = 0; u < cluster_.size(); ++u) {
    for (int v = 0; v < cluster_.size(); ++v) {
      if (u == v) continue;
      EXPECT_GT(snap.net.latency_us[u][v], 0.0)
          << "pair " << u << "," << v << " uncovered";
      EXPECT_GT(snap.net.latency_5min_us[u][v], 0.0);
      // Reconstruction error stays small on the tree-additive model.
      const double actual = network_.latency_us(u, v);
      EXPECT_NEAR(snap.net.latency_us[u][v], actual, 0.25 * actual)
          << "pair " << u << "," << v;
    }
  }
  // Staleness is bounded by threshold + one period: reconstructions are
  // re-stamped every tick once a pair ages out.
  for (int u = 0; u < cluster_.size(); ++u) {
    for (int v = u + 1; v < cluster_.size(); ++v) {
      EXPECT_LE(store_.pair_staleness(sim_.now(), u, v), 90.0 + 60.0)
          << "pair " << u << "," << v;
    }
  }
}

TEST_F(SparseProbeTest, BandwidthDaemonReconstructsWithExactPeaks) {
  BandwidthD daemon("bandwidthd", cluster_, 0, 60.0, 0.05, network_, store_,
                    sim::Rng(5));
  daemon.enable_sparse(cluster_.topology(), /*reconstruct_min_age_s=*/90.0);
  daemon.launch(sim_);
  sim_.run_until(400.0);

  EXPECT_EQ(daemon.pairs_measured(),
            3 * static_cast<long>(daemon.tick_count()));
  EXPECT_GT(daemon.pairs_reconstructed(), 0);
  const ClusterSnapshot snap = store_.assemble(sim_.now());
  for (int u = 0; u < cluster_.size(); ++u) {
    for (int v = u + 1; v < cluster_.size(); ++v) {
      EXPECT_GT(snap.net.bandwidth_mbps[u][v], 0.0);
      EXPECT_DOUBLE_EQ(snap.net.bandwidth_mbps[u][v],
                       snap.net.bandwidth_mbps[v][u]);
      // Peaks are exact whether probed or reconstructed: min link capacity
      // on the path (uniform GigE testbed → 1000 everywhere).
      EXPECT_DOUBLE_EQ(snap.net.peak_mbps[u][v], 1000.0);
    }
  }
}

TEST_F(SparseProbeTest, DeadNodesAreNeitherProbedNorReconstructed) {
  cluster_.mutable_node(4).dyn.alive = false;
  LatencyD daemon("latencyd", cluster_, 0, 60.0, 0.05, network_, store_,
                  sim::Rng(6));
  daemon.enable_sparse(cluster_.topology(), 90.0);
  daemon.launch(sim_);
  sim_.run_until(400.0);
  const ClusterSnapshot snap = store_.assemble(sim_.now());
  EXPECT_LT(snap.net.latency_us[4][0], 0.0);  // never written
  EXPECT_GT(snap.net.latency_us[0][1], 0.0);
}

TEST_F(SparseProbeTest, EnableSparseValidatesItsInputs) {
  LatencyD daemon("latencyd", cluster_, 0, 60.0, 0.05, network_, store_,
                  sim::Rng(7));
  const cluster::Topology wrong =
      cluster::make_star_topology({2, 2}, 1000.0, 400.0);  // 4 != 6 nodes
  EXPECT_THROW(daemon.enable_sparse(wrong, 90.0), util::CheckError);
  EXPECT_THROW(daemon.enable_sparse(cluster_.topology(), -1.0),
               util::CheckError);
  EXPECT_FALSE(daemon.sparse());
}

TEST_F(SparseProbeTest, ResourceMonitorWiresSparseModeFromConfig) {
  MonitorConfig config;
  config.sparse_probes = true;
  config.latency_period_s = 60.0;
  config.bandwidth_period_s = 120.0;
  ResourceMonitor monitor(cluster_, network_, sim_, config);
  monitor.start();
  sim_.run_until(200.0);
  bool saw_sparse_probe_daemon = false;
  for (Daemon* daemon : monitor.daemons()) {
    if (auto* probe = dynamic_cast<PairProbeDaemon*>(daemon)) {
      EXPECT_TRUE(probe->sparse()) << daemon->name();
      saw_sparse_probe_daemon = true;
    }
  }
  EXPECT_TRUE(saw_sparse_probe_daemon);
  const ClusterSnapshot snap = monitor.snapshot();
  EXPECT_GT(snap.net.latency_us[0][1], 0.0);
}

}  // namespace
}  // namespace nlarm::monitor
