#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace nlarm::util {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  std::vector<int> out(10, 0);
  pool.parallel_for(10, [&](std::size_t i) { out[i] = static_cast<int>(i); });
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPoolTest, EmptyLoopIsANoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ResultsMatchSerialForSlotWrites) {
  // The allocator's usage pattern: each index writes only its own slot, so
  // parallel and serial runs must produce identical output.
  const std::size_t n = 257;
  std::vector<double> serial(n);
  for (std::size_t i = 0; i < n; ++i) {
    serial[i] = static_cast<double>(i) * 1.5 + 1.0;
  }
  ThreadPool pool(4);
  std::vector<double> parallel(n);
  pool.parallel_for(
      n, [&](std::size_t i) { parallel[i] = static_cast<double>(i) * 1.5 + 1.0; });
  EXPECT_EQ(parallel, serial);
}

TEST(ThreadPoolTest, ExceptionPropagatesAfterDraining) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(50,
                        [&](std::size_t i) {
                          if (i == 10) throw std::runtime_error("boom");
                          completed.fetch_add(1);
                        }),
      std::runtime_error);
  // Every non-throwing index still ran (slots stay fully written).
  EXPECT_EQ(completed.load(), 49);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(10, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 45u);
  }
}

TEST(ThreadPoolTest, ConcurrentCallersShareOnePool) {
  // Two parallel_for calls on ONE pool must be able to be in flight at the
  // same time — the refresh-plane usage pattern (an epoch rebuild racing an
  // allocator fan-out). The overlap is forced, not raced: call A's index 0
  // spins until call B's loop has run, so a pool that serialized whole calls
  // behind a submit lock would deadlock here instead of completing.
  ThreadPool pool(2);
  constexpr std::size_t kIndices = 8;
  std::atomic<bool> a_started{false};
  std::atomic<bool> b_ran{false};
  std::vector<std::atomic<int>> hits_a(kIndices);
  std::vector<std::atomic<int>> hits_b(kIndices);
  std::thread other([&] {
    // Submit B only once A is mid-call, so both jobs coexist on the pool.
    while (!a_started.load()) std::this_thread::yield();
    pool.parallel_for(kIndices, [&](std::size_t i) {
      hits_b[i].fetch_add(1);
      b_ran.store(true);
    });
  });
  pool.parallel_for(kIndices, [&](std::size_t i) {
    a_started.store(true);
    if (i == 0) {
      while (!b_ran.load()) std::this_thread::yield();
    }
    hits_a[i].fetch_add(1);
  });
  other.join();
  for (const auto& h : hits_a) EXPECT_EQ(h.load(), 1);
  for (const auto& h : hits_b) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ConcurrentCallerExceptionsStayPerCall) {
  // An exception in one caller's loop must surface on that caller only;
  // the overlapping caller's loop completes normally.
  ThreadPool pool(2);
  std::barrier sync(2);
  std::atomic<int> clean_runs{0};
  std::thread other([&] {
    sync.arrive_and_wait();
    pool.parallel_for(300, [&](std::size_t) { clean_runs.fetch_add(1); });
  });
  sync.arrive_and_wait();
  EXPECT_THROW(pool.parallel_for(300,
                                 [&](std::size_t i) {
                                   if (i == 7) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  other.join();
  EXPECT_EQ(clean_runs.load(), 300);
}

TEST(ThreadPoolTest, SharedPoolSingleton) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  std::atomic<int> count{0};
  a.parallel_for(32, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32);
}

}  // namespace
}  // namespace nlarm::util
