#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace nlarm::util {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  std::vector<int> out(10, 0);
  pool.parallel_for(10, [&](std::size_t i) { out[i] = static_cast<int>(i); });
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPoolTest, EmptyLoopIsANoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ResultsMatchSerialForSlotWrites) {
  // The allocator's usage pattern: each index writes only its own slot, so
  // parallel and serial runs must produce identical output.
  const std::size_t n = 257;
  std::vector<double> serial(n);
  for (std::size_t i = 0; i < n; ++i) {
    serial[i] = static_cast<double>(i) * 1.5 + 1.0;
  }
  ThreadPool pool(4);
  std::vector<double> parallel(n);
  pool.parallel_for(
      n, [&](std::size_t i) { parallel[i] = static_cast<double>(i) * 1.5 + 1.0; });
  EXPECT_EQ(parallel, serial);
}

TEST(ThreadPoolTest, ExceptionPropagatesAfterDraining) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(50,
                        [&](std::size_t i) {
                          if (i == 10) throw std::runtime_error("boom");
                          completed.fetch_add(1);
                        }),
      std::runtime_error);
  // Every non-throwing index still ran (slots stay fully written).
  EXPECT_EQ(completed.load(), 49);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(10, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 45u);
  }
}

TEST(ThreadPoolTest, SharedPoolSingleton) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  std::atomic<int> count{0};
  a.parallel_for(32, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32);
}

}  // namespace
}  // namespace nlarm::util
