// Linked into every test binary (see nlarm_test in CMakeLists.txt): silences
// nlarm logging before main() so ctest output stays clean now that the
// library logs at decision points. Set NLARM_LOG_LEVEL=debug (etc.) to see
// the logs while debugging a test.
#include <cstdlib>

#include "util/logging.h"

namespace {

struct QuietLogs {
  QuietLogs() {
    try {
      const char* level = std::getenv("NLARM_LOG_LEVEL");
      nlarm::util::set_log_level(level
                                     ? nlarm::util::parse_log_level(level)
                                     : nlarm::util::LogLevel::kOff);
    } catch (...) {
      nlarm::util::set_log_level(nlarm::util::LogLevel::kOff);
    }
  }
};

const QuietLogs quiet_logs;

}  // namespace
