// Integration: the broker pipeline's metrics and audit trail. Counters live
// in the process-global registry, so every assertion is a before/after delta
// rather than an absolute value.
#include <gtest/gtest.h>

#include <string>

#include "core/baselines.h"
#include "core/broker.h"
#include "obs/audit.h"
#include "obs/catalog.h"
#include "obs/metrics.h"
#include "test_helpers.h"

namespace nlarm::core {
namespace {

using nlarm::testing::TestNode;
using nlarm::testing::idle_nodes;
using nlarm::testing::make_snapshot;

AllocationRequest request_for(int nprocs, int ppn = 4) {
  AllocationRequest req;
  req.nprocs = nprocs;
  req.ppn = ppn;
  req.job = JobWeights{0.3, 0.7};
  return req;
}

TEST(BrokerMetricsTest, RepeatedDecideOnSameSnapshotHitsCaches) {
  auto snap = make_snapshot(idle_nodes(6));
  snap.version = 42;  // versioned like a MonitorStore snapshot → memoizable
  NetworkLoadAwareAllocator allocator;
  ResourceBroker broker(allocator);
  obs::AuditLog audit;
  broker.set_audit_log(&audit);

  const std::uint64_t prepared_hits0 =
      obs::metrics::alloc_prepared_cache_hits().value();
  const std::uint64_t prepared_misses0 =
      obs::metrics::alloc_prepared_cache_misses().value();
  const std::uint64_t agg_hits0 =
      obs::metrics::broker_aggregates_cache_hits().value();
  const std::uint64_t agg_misses0 =
      obs::metrics::broker_aggregates_cache_misses().value();
  const std::uint64_t decisions0 = obs::metrics::broker_decisions().value();
  const std::uint64_t allocations0 =
      obs::metrics::broker_allocations().value();
  const std::uint64_t requests0 = obs::metrics::alloc_requests().value();

  const BrokerDecision first = broker.decide(snap, request_for(8));
  ASSERT_EQ(first.action, BrokerDecision::Action::kAllocate);
  EXPECT_EQ(obs::metrics::alloc_prepared_cache_misses().value(),
            prepared_misses0 + 1);
  EXPECT_EQ(obs::metrics::broker_aggregates_cache_misses().value(),
            agg_misses0 + 1);

  const BrokerDecision second = broker.decide(snap, request_for(8));
  ASSERT_EQ(second.action, BrokerDecision::Action::kAllocate);

  // Unchanged snapshot + same request shape → both memo layers hit once.
  EXPECT_EQ(obs::metrics::alloc_prepared_cache_hits().value(),
            prepared_hits0 + 1);
  EXPECT_EQ(obs::metrics::alloc_prepared_cache_misses().value(),
            prepared_misses0 + 1);
  EXPECT_EQ(obs::metrics::broker_aggregates_cache_hits().value(),
            agg_hits0 + 1);
  EXPECT_EQ(obs::metrics::broker_decisions().value(), decisions0 + 2);
  EXPECT_EQ(obs::metrics::broker_allocations().value(), allocations0 + 2);
  EXPECT_EQ(obs::metrics::alloc_requests().value(), requests0 + 2);

  // Audit trail: one record per decide(), the second marked as a cache hit.
  ASSERT_EQ(audit.records().size(), 2u);
  const std::vector<obs::AuditRecord> records = audit.records();
  const obs::AuditRecord& r0 = records[0];
  const obs::AuditRecord& r1 = records[1];
  EXPECT_EQ(r0.action, "allocate");
  EXPECT_FALSE(r0.prepared_cache_hit);
  EXPECT_TRUE(r1.prepared_cache_hit);
  EXPECT_TRUE(r1.aggregates_cache_hit);
  EXPECT_FALSE(r1.nodes.empty());
  EXPECT_EQ(r1.nodes.size(), r1.hostnames.size());
  EXPECT_EQ(r1.nodes.size(), r1.procs_per_node.size());
  EXPECT_EQ(r1.policy, "network-load-aware");
  EXPECT_EQ(r1.nprocs, 8);
  EXPECT_EQ(r1.snapshot_version, 42u);
  EXPECT_GE(r1.total_seconds, 0.0);
  EXPECT_GE(r1.gate_seconds, 0.0);
  EXPECT_GE(r1.prepare_seconds, 0.0);
  EXPECT_GE(r1.generate_seconds, 0.0);
  EXPECT_GE(r1.select_seconds, 0.0);
  EXPECT_GT(r1.candidates_generated, 0u);
}

TEST(BrokerMetricsTest, WaitVerdictIsCountedAndAudited) {
  std::vector<TestNode> nodes = idle_nodes(6);
  for (auto& n : nodes) n.cpu_load = 20.0;  // far over the gate threshold
  auto snap = make_snapshot(nodes);
  NetworkLoadAwareAllocator allocator;
  ResourceBroker broker(allocator);
  obs::AuditLog audit;
  broker.set_audit_log(&audit);

  const std::uint64_t waits0 = obs::metrics::broker_waits().value();
  const std::uint64_t allocations0 =
      obs::metrics::broker_allocations().value();

  const BrokerDecision decision = broker.decide(snap, request_for(8));
  ASSERT_EQ(decision.action, BrokerDecision::Action::kWait);
  EXPECT_EQ(obs::metrics::broker_waits().value(), waits0 + 1);
  EXPECT_EQ(obs::metrics::broker_allocations().value(), allocations0);

  ASSERT_EQ(audit.records().size(), 1u);
  const std::vector<obs::AuditRecord> records = audit.records();
  const obs::AuditRecord& r = records[0];
  EXPECT_EQ(r.action, "wait");
  EXPECT_FALSE(r.reason.empty());
  EXPECT_TRUE(r.nodes.empty());
  // Wait records still round-trip through JSON.
  const obs::AuditRecord back = obs::AuditRecord::from_json(r.to_json());
  EXPECT_EQ(back.action, "wait");
  EXPECT_EQ(back.reason, r.reason);
}

TEST(BrokerMetricsTest, UnversionedSnapshotNeverHitsPreparedCache) {
  auto snap = make_snapshot(idle_nodes(6));  // version 0 = unversioned
  NetworkLoadAwareAllocator allocator;
  ResourceBroker broker(allocator);

  const std::uint64_t hits0 =
      obs::metrics::alloc_prepared_cache_hits().value();
  const std::uint64_t misses0 =
      obs::metrics::alloc_prepared_cache_misses().value();

  ASSERT_EQ(broker.decide(snap, request_for(8)).action,
            BrokerDecision::Action::kAllocate);
  ASSERT_EQ(broker.decide(snap, request_for(8)).action,
            BrokerDecision::Action::kAllocate);

  EXPECT_EQ(obs::metrics::alloc_prepared_cache_hits().value(), hits0);
  EXPECT_EQ(obs::metrics::alloc_prepared_cache_misses().value(),
            misses0 + 2);
}

TEST(BrokerMetricsTest, StageHistogramsObserveEachAllocation) {
  auto snap = make_snapshot(idle_nodes(6));
  snap.version = 7;
  NetworkLoadAwareAllocator allocator;
  ResourceBroker broker(allocator);

  const std::uint64_t total0 = obs::metrics::alloc_total_seconds().count();
  const std::uint64_t gate0 = obs::metrics::broker_gate_seconds().count();

  ASSERT_EQ(broker.decide(snap, request_for(8)).action,
            BrokerDecision::Action::kAllocate);

  EXPECT_EQ(obs::metrics::alloc_total_seconds().count(), total0 + 1);
  EXPECT_EQ(obs::metrics::broker_gate_seconds().count(), gate0 + 1);
}

TEST(BrokerMetricsTest, BaselineAllocatorAuditsWithoutStats) {
  // Baselines expose no AllocStats; the audit record still names the nodes.
  auto snap = make_snapshot(idle_nodes(4));
  RandomAllocator random(9);
  ResourceBroker broker(random);
  obs::AuditLog audit;
  broker.set_audit_log(&audit);

  ASSERT_EQ(broker.decide(snap, request_for(8)).action,
            BrokerDecision::Action::kAllocate);
  ASSERT_EQ(audit.records().size(), 1u);
  const std::vector<obs::AuditRecord> records = audit.records();
  const obs::AuditRecord& r = records[0];
  EXPECT_EQ(r.policy, "random");
  EXPECT_FALSE(r.nodes.empty());
  EXPECT_FALSE(r.prepared_cache_hit);
  EXPECT_EQ(r.candidates_generated, 0u);
}

TEST(BrokerMetricsTest, RegisterAllExposesEverySeries) {
  obs::metrics::register_all();
  const std::string text = obs::MetricsRegistry::global().prometheus_text();
  for (const char* name : {
           "nlarm_alloc_requests_total",
           "nlarm_alloc_prepared_cache_hits_total",
           "nlarm_alloc_prepared_cache_misses_total",
           "nlarm_alloc_total_seconds",
           "nlarm_broker_decisions_total",
           "nlarm_broker_gate_seconds",
           "nlarm_threadpool_threads",
           "nlarm_threadpool_tasks_total",
           "nlarm_monitor_daemons_running",
           "nlarm_monitor_node_samples_total",
           "nlarm_sim_events_total",
       }) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}


TEST(BrokerMetricsTest, DriftedSnapshotTimeStillHitsCaches) {
  // Regression: the memo keys used to include the snapshot's float
  // timestamp, so periodically re-assembled (identical, re-stamped) data
  // never hit. A nonzero version counter is the source of truth.
  auto snap = make_snapshot(idle_nodes(6));
  snap.version = 77;
  NetworkLoadAwareAllocator allocator;
  ResourceBroker broker(allocator);

  const std::uint64_t agg_hits0 =
      obs::metrics::broker_aggregates_cache_hits().value();
  const std::uint64_t prepared_hits0 =
      obs::metrics::alloc_prepared_cache_hits().value();

  const BrokerDecision first = broker.decide(snap, request_for(8));
  ASSERT_EQ(first.action, BrokerDecision::Action::kAllocate);

  snap.time += 30.0;  // same data, re-assembled later
  const BrokerDecision second = broker.decide(snap, request_for(8));
  ASSERT_EQ(second.action, BrokerDecision::Action::kAllocate);

  EXPECT_EQ(obs::metrics::broker_aggregates_cache_hits().value(),
            agg_hits0 + 1);
  EXPECT_EQ(obs::metrics::alloc_prepared_cache_hits().value(),
            prepared_hits0 + 1);
  EXPECT_EQ(second.allocation.nodes, first.allocation.nodes);
}

}  // namespace
}  // namespace nlarm::core
