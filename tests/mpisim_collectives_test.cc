// Tests for the extended collective cost models (broadcast, reduce,
// alltoall) and the miniFFT proxy that exercises them.
#include <gtest/gtest.h>

#include "apps/minifft.h"
#include "apps/minimd.h"
#include "cluster/cluster.h"
#include "mpisim/cost_model.h"
#include "mpisim/placement.h"
#include "mpisim/profiler.h"
#include "mpisim/runtime.h"
#include "net/flows.h"
#include "net/network_model.h"

namespace nlarm::mpisim {
namespace {

class CollectivesTest : public ::testing::Test {
 protected:
  CollectivesTest()
      : cluster_(cluster::make_uniform_cluster(8, 2)),
        network_(cluster_, flows_),
        model_(cluster_, network_) {}

  Placement spread(int nranks, int ppn) {
    std::vector<cluster::NodeId> rank_nodes;
    for (int r = 0; r < nranks; ++r) {
      rank_nodes.push_back(static_cast<cluster::NodeId>(r / ppn));
    }
    return Placement(std::move(rank_nodes));
  }

  AppProfile app_with(Phase phase, int nranks) {
    AppProfile app;
    app.nranks = nranks;
    app.grid = {1, 1, nranks};
    app.iterations = 1;
    app.phases.push_back(phase);
    return app;
  }

  cluster::Cluster cluster_;
  net::FlowSet flows_;
  net::NetworkModel network_;
  CostModel model_;
};

TEST_F(CollectivesTest, BroadcastSingleRankFree) {
  const auto app = app_with(BroadcastPhase{1e6}, 1);
  EXPECT_DOUBLE_EQ(model_.phase_time_s(app.phases[0], app, spread(1, 1)),
                   0.0);
}

TEST_F(CollectivesTest, BroadcastGrowsLogarithmically) {
  // Binomial tree: rounds = ceil(log2 P); 8 ranks spread on 8 nodes should
  // cost ~3 rounds, 4 ranks ~2 rounds.
  const auto app8 = app_with(BroadcastPhase{8.0}, 8);
  const auto app4 = app_with(BroadcastPhase{8.0}, 4);
  const double t8 = model_.phase_time_s(app8.phases[0], app8, spread(8, 1));
  const double t4 = model_.phase_time_s(app4.phases[0], app4, spread(4, 1));
  EXPECT_GT(t8, t4);
  EXPECT_LT(t8, t4 * 2.0);  // log growth, not linear
}

TEST_F(CollectivesTest, ReduceMatchesBroadcastCostShape) {
  const auto bc = app_with(BroadcastPhase{1024.0}, 8);
  const auto rd = app_with(ReducePhase{1024.0}, 8);
  const Placement p = spread(8, 2);
  EXPECT_DOUBLE_EQ(model_.phase_time_s(bc.phases[0], bc, p),
                   model_.phase_time_s(rd.phases[0], rd, p));
}

TEST_F(CollectivesTest, AlltoallSingleRankFree) {
  const auto app = app_with(AlltoallPhase{1e5}, 1);
  EXPECT_DOUBLE_EQ(model_.phase_time_s(app.phases[0], app, spread(1, 1)),
                   0.0);
}

TEST_F(CollectivesTest, AlltoallScalesWithRankCount) {
  const auto app4 = app_with(AlltoallPhase{1e5}, 4);
  const auto app8 = app_with(AlltoallPhase{1e5}, 8);
  const double t4 = model_.phase_time_s(app4.phases[0], app4, spread(4, 1));
  const double t8 = model_.phase_time_s(app8.phases[0], app8, spread(8, 1));
  EXPECT_GT(t8, t4 * 1.5);  // ~(P−1) messages per rank
}

TEST_F(CollectivesTest, AlltoallCheaperColocated) {
  const auto app = app_with(AlltoallPhase{1e5}, 8);
  const Placement together(std::vector<cluster::NodeId>(8, 0));
  const Placement apart = spread(8, 1);
  EXPECT_LT(model_.phase_time_s(app.phases[0], app, together),
            model_.phase_time_s(app.phases[0], app, apart));
}

TEST_F(CollectivesTest, AlltoallSensitiveToTrunkCongestion) {
  // 8 ranks across both switches: the trunk carries half the traffic.
  const auto app = app_with(AlltoallPhase{1e6}, 8);
  const Placement p = spread(8, 1);  // nodes 0..7 over switches 0 and 1
  const double idle = model_.phase_time_s(app.phases[0], app, p);
  flows_.add(0, 7, 900.0);  // load the trunk
  const double congested = model_.phase_time_s(app.phases[0], app, p);
  EXPECT_GT(congested, idle);
}

TEST(MiniFftTest, PointsCubed) {
  EXPECT_EQ(apps::minifft_points(4), 64);
  EXPECT_EQ(apps::minifft_points(128), 2097152);
}

TEST(MiniFftTest, ProfileValidAcrossSizes) {
  for (int n : {32, 64, 128, 256}) {
    for (int p : {4, 8, 16, 32}) {
      apps::MiniFftParams params;
      params.n = n;
      params.nranks = p;
      const auto profile = apps::make_minifft_profile(params);
      EXPECT_NO_THROW(profile.validate());
    }
  }
}

TEST(MiniFftTest, TransposeBytesConserveSlab) {
  apps::MiniFftParams params;
  params.n = 64;
  params.nranks = 8;
  const auto profile = apps::make_minifft_profile(params);
  const auto& a2a = std::get<AlltoallPhase>(profile.phases[1]);
  // Each rank's slab: n³/P points × 16 B, split over P partners.
  const double slab_bytes = 64.0 * 64 * 64 / 8 * 16;
  EXPECT_DOUBLE_EQ(a2a.bytes_per_pair * 8, slab_bytes);
}

TEST(MiniFftTest, MoreCommBoundThanMiniMd) {
  cluster::Cluster c = cluster::make_uniform_cluster(8, 2, 12, 4.6);
  net::FlowSet flows;
  net::NetworkModel network(c, flows);
  MpiRuntime runtime(c, network);
  std::vector<cluster::NodeId> rank_nodes;
  for (int r = 0; r < 32; ++r) {
    rank_nodes.push_back(static_cast<cluster::NodeId>(r / 4));
  }
  const Placement placement(rank_nodes);

  apps::MiniFftParams fft;
  fft.n = 128;
  fft.nranks = 32;
  apps::MiniMdParams md;
  md.size = 16;
  md.nranks = 32;
  const auto fft_result =
      runtime.estimate(apps::make_minifft_profile(fft), placement);
  const auto md_result =
      runtime.estimate(apps::make_minimd_profile(md), placement);
  EXPECT_GT(fft_result.comm_fraction(), md_result.comm_fraction());
}

TEST(MiniFftTest, ProfilerSeesBandwidthBoundApp) {
  cluster::Cluster c = cluster::make_uniform_cluster(8, 2, 12, 4.6);
  net::FlowSet flows;
  net::NetworkModel network(c, flows);
  JobProfiler profiler(c, network);
  apps::MiniFftParams params;
  params.n = 128;
  params.nranks = 16;
  std::vector<cluster::NodeId> rank_nodes;
  for (int r = 0; r < 16; ++r) {
    rank_nodes.push_back(static_cast<cluster::NodeId>(r / 4));
  }
  const auto report = profiler.profile(apps::make_minifft_profile(params),
                                       Placement(rank_nodes));
  // Big transpose messages → bandwidth-sensitive network weights.
  EXPECT_GT(report.network_weights.bandwidth,
            report.network_weights.latency);
  EXPECT_GT(report.job_weights.beta, 0.5);
}

}  // namespace
}  // namespace nlarm::mpisim
