#include "mpisim/footprint.h"

#include <gtest/gtest.h>

#include "apps/synthetic.h"
#include "cluster/cluster.h"
#include "core/allocator.h"
#include "exp/experiment.h"
#include "mpisim/runtime.h"
#include "net/flows.h"
#include "net/network_model.h"
#include "util/check.h"

namespace nlarm::mpisim {
namespace {

Placement spread(int nranks, int ppn) {
  std::vector<cluster::NodeId> rank_nodes;
  for (int r = 0; r < nranks; ++r) {
    rank_nodes.push_back(static_cast<cluster::NodeId>(r / ppn));
  }
  return Placement(std::move(rank_nodes));
}

TEST(PairTrafficTest, HaloTrafficBetweenDistinctNodesOnly) {
  apps::SyntheticParams params;
  params.nranks = 8;
  params.flops_per_rank = 1e6;
  params.halo_bytes_per_face = 1000.0;
  const auto app = apps::make_synthetic_profile(params);
  // All ranks on a single node: no network traffic at all.
  const Placement together(std::vector<cluster::NodeId>(8, 0));
  EXPECT_TRUE(estimate_pair_traffic(app, together).empty());
  // Spread: traffic between neighbor-hosting nodes.
  const auto traffic = estimate_pair_traffic(app, spread(8, 4));
  EXPECT_FALSE(traffic.empty());
  for (const PairTraffic& t : traffic) {
    EXPECT_NE(t.src, t.dst);
    EXPECT_GT(t.bytes_per_iteration, 0.0);
  }
}

TEST(PairTrafficTest, AlltoallCoversAllNodePairs) {
  apps::SyntheticParams params;
  params.nranks = 8;
  params.flops_per_rank = 1e6;
  const auto base = apps::make_synthetic_profile(params);
  AppProfile app = base;
  app.phases.push_back(AlltoallPhase{100.0});
  const auto traffic = estimate_pair_traffic(app, spread(8, 4));
  // 2 nodes → 2 directed pairs, each carrying 4×4 rank-pairs × 100 B.
  ASSERT_EQ(traffic.size(), 2u);
  EXPECT_DOUBLE_EQ(traffic[0].bytes_per_iteration, 1600.0);
}

TEST(FootprintTest, AppliesAndRemovesJobLoad) {
  cluster::Cluster c = cluster::make_uniform_cluster(4);
  net::FlowSet flows;
  apps::SyntheticParams params;
  params.nranks = 8;
  params.flops_per_rank = 1e6;
  params.halo_bytes_per_face = 1e5;
  const auto app = apps::make_synthetic_profile(params);
  {
    JobFootprint footprint(c, flows, app, spread(8, 4), 0.01);
    EXPECT_DOUBLE_EQ(c.node(0).dyn.job_load, 4.0);
    EXPECT_DOUBLE_EQ(c.node(1).dyn.job_load, 4.0);
    EXPECT_DOUBLE_EQ(c.node(2).dyn.job_load, 0.0);
    EXPECT_GT(flows.size(), 0u);
    EXPECT_DOUBLE_EQ(c.node(0).dyn.total_load(),
                     c.node(0).dyn.cpu_load + 4.0);
  }
  // RAII removal.
  EXPECT_DOUBLE_EQ(c.node(0).dyn.job_load, 0.0);
  EXPECT_EQ(flows.size(), 0u);
}

TEST(FootprintTest, SuspendResume) {
  cluster::Cluster c = cluster::make_uniform_cluster(2);
  net::FlowSet flows;
  apps::SyntheticParams params;
  params.nranks = 4;
  params.flops_per_rank = 1e6;
  params.halo_bytes_per_face = 1e5;
  const auto app = apps::make_synthetic_profile(params);
  JobFootprint footprint(c, flows, app, spread(4, 2), 0.01);
  EXPECT_TRUE(footprint.active());
  footprint.suspend();
  EXPECT_FALSE(footprint.active());
  EXPECT_DOUBLE_EQ(c.node(0).dyn.job_load, 0.0);
  EXPECT_EQ(flows.size(), 0u);
  footprint.resume();
  EXPECT_DOUBLE_EQ(c.node(0).dyn.job_load, 2.0);
  EXPECT_GT(flows.size(), 0u);
}

TEST(FootprintTest, SurvivesGeneratorTicks) {
  // The workload generator overwrites cpu_load but must not erase job_load.
  exp::Testbed::Options options;
  options.seed = 12;
  options.cluster.fast_nodes = 4;
  options.cluster.slow_nodes = 2;
  options.cluster.switches = 2;
  options.warmup_seconds = 300.0;
  auto testbed = exp::Testbed::make(options);
  apps::SyntheticParams params;
  params.nranks = 8;
  params.flops_per_rank = 1e6;
  params.halo_bytes_per_face = 1e5;
  const auto app = apps::make_synthetic_profile(params);
  JobFootprint footprint(testbed->cluster(), testbed->flows(), app,
                         spread(8, 4), 0.01);
  testbed->sim().run_until(testbed->sim().now() + 60.0);
  EXPECT_DOUBLE_EQ(testbed->cluster().node(0).dyn.job_load, 4.0);
}

TEST(FootprintTest, MonitorSeesRunningJob) {
  exp::Testbed::Options options;
  options.seed = 13;
  options.cluster.fast_nodes = 4;
  options.cluster.slow_nodes = 2;
  options.cluster.switches = 2;
  options.warmup_seconds = 300.0;
  auto testbed = exp::Testbed::make(options);
  const double before =
      testbed->snapshot().nodes[0].cpu_load;

  apps::SyntheticParams params;
  params.nranks = 8;
  params.flops_per_rank = 1e6;
  params.halo_bytes_per_face = 1e5;
  const auto app = apps::make_synthetic_profile(params);
  JobFootprint footprint(testbed->cluster(), testbed->flows(), app,
                         spread(8, 4), 0.01);
  testbed->sim().run_until(testbed->sim().now() + 30.0);  // NodeStateD ticks
  const double during = testbed->snapshot().nodes[0].cpu_load;
  EXPECT_GT(during, before + 3.0);  // ~4 ranks visible (modulo noise)
}

TEST(FootprintTest, RunWithFootprintMatchesPlainRunTime) {
  // The footprint must not change the job's own price (it is lifted while
  // pricing), only the world others see.
  exp::Testbed::Options options;
  options.seed = 14;
  options.cluster.fast_nodes = 4;
  options.cluster.slow_nodes = 2;
  options.cluster.switches = 2;
  options.warmup_seconds = 300.0;

  const auto app = apps::make_comm_bound_profile(8, 10);
  auto bed_a = exp::Testbed::make(options);
  const auto plain =
      bed_a->runtime().run(bed_a->sim(), app, spread(8, 4));
  auto bed_b = exp::Testbed::make(options);
  const auto with_footprint = bed_b->runtime().run_with_footprint(
      bed_b->sim(), app, spread(8, 4), bed_b->cluster(), bed_b->flows());
  EXPECT_NEAR(with_footprint.total_s, plain.total_s, plain.total_s * 1e-6);
}

TEST(FootprintTest, ConcurrentJobSeesTheFirstOne) {
  // Allocate a second job while the first is "running" (footprint active):
  // the allocator should steer clear of the first job's nodes.
  exp::Testbed::Options options;
  options.seed = 15;
  auto testbed = exp::Testbed::make(options);

  core::AllocationRequest request;
  request.nprocs = 16;
  request.ppn = 4;
  request.job = core::JobWeights{0.5, 0.5};
  core::NetworkLoadAwareAllocator allocator;
  const core::Allocation first =
      allocator.allocate(testbed->snapshot(), request);

  const auto app = apps::make_comm_bound_profile(16, 10);
  JobFootprint footprint(testbed->cluster(), testbed->flows(), app,
                         Placement::from_allocation(first), 0.05);
  testbed->sim().run_until(testbed->sim().now() + 30.0);  // monitor catches up

  core::NetworkLoadAwareAllocator allocator2;
  const core::Allocation second =
      allocator2.allocate(testbed->snapshot(), request);
  int overlap = 0;
  for (cluster::NodeId a : first.nodes) {
    for (cluster::NodeId b : second.nodes) {
      if (a == b) ++overlap;
    }
  }
  EXPECT_LE(overlap, 1);  // at most incidental overlap
}

TEST(FootprintTest, InvalidIterationTimeRejected) {
  cluster::Cluster c = cluster::make_uniform_cluster(2);
  net::FlowSet flows;
  apps::SyntheticParams params;
  params.nranks = 2;
  params.flops_per_rank = 1e6;
  const auto app = apps::make_synthetic_profile(params);
  EXPECT_THROW(JobFootprint(c, flows, app, spread(2, 1), 0.0),
               util::CheckError);
}

}  // namespace
}  // namespace nlarm::mpisim
