#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "net/flows.h"
#include "net/network_model.h"
#include "util/check.h"

namespace nlarm::net {
namespace {

class NetworkModelTest : public ::testing::Test {
 protected:
  NetworkModelTest()
      : cluster_(cluster::make_uniform_cluster(6, 3)),  // 2 nodes per switch
        model_(cluster_, flows_) {}

  cluster::Cluster cluster_;
  FlowSet flows_;
  NetworkModel model_;
};

TEST(FlowSetTest, AddRemoveAndRate) {
  FlowSet flows;
  const FlowId id = flows.add(0, 1, 100.0);
  EXPECT_EQ(flows.size(), 1u);
  EXPECT_DOUBLE_EQ(flows.node_rate_mbps(0), 100.0);
  EXPECT_DOUBLE_EQ(flows.node_rate_mbps(2), 0.0);
  EXPECT_TRUE(flows.remove(id));
  EXPECT_FALSE(flows.remove(id));
  EXPECT_EQ(flows.size(), 0u);
}

TEST(FlowSetTest, RevisionBumpsOnMutation) {
  FlowSet flows;
  const auto r0 = flows.revision();
  const FlowId id = flows.add(0, 1, 10.0);
  EXPECT_GT(flows.revision(), r0);
  const auto r1 = flows.revision();
  flows.set_rate(id, 20.0);
  EXPECT_GT(flows.revision(), r1);
}

TEST(FlowSetTest, InvalidFlowsRejected) {
  FlowSet flows;
  EXPECT_THROW(flows.add(1, 1, 10.0), util::CheckError);
  EXPECT_THROW(flows.add(0, 1, -5.0), util::CheckError);
  EXPECT_THROW(flows.set_rate(999, 1.0), util::CheckError);
}

TEST_F(NetworkModelTest, IdleNetworkGivesFullBandwidth) {
  EXPECT_DOUBLE_EQ(model_.available_bandwidth_mbps(0, 1), 1000.0);
  EXPECT_DOUBLE_EQ(model_.peak_bandwidth_mbps(0, 5), 1000.0);
}

TEST_F(NetworkModelTest, FlowReducesBandwidthOnItsPath) {
  flows_.add(0, 1, 400.0);
  // Same-switch pair 0↔1 shares both uplinks with the flow.
  EXPECT_NEAR(model_.available_bandwidth_mbps(0, 1), 600.0, 1e-9);
  // Pair 2↔3 (another switch) is unaffected.
  EXPECT_DOUBLE_EQ(model_.available_bandwidth_mbps(2, 3), 1000.0);
}

TEST_F(NetworkModelTest, CrossSwitchFlowLoadsTrunk) {
  flows_.add(0, 2, 300.0);  // crosses the sw0–sw1 trunk
  // 4↔5 on switch 2 untouched; 1↔3 shares the trunk.
  EXPECT_DOUBLE_EQ(model_.available_bandwidth_mbps(4, 5), 1000.0);
  EXPECT_NEAR(model_.available_bandwidth_mbps(1, 3), 700.0, 1e-9);
}

TEST_F(NetworkModelTest, SaturatedLinkStillGivesFairShareFloor) {
  flows_.add(0, 1, 5000.0);  // massively oversubscribed
  const double bw = model_.available_bandwidth_mbps(0, 1);
  EXPECT_NEAR(bw, 1000.0 * model_.options().fair_share_floor, 1e-9);
  EXPECT_GT(bw, 0.0);
}

TEST_F(NetworkModelTest, MoreTrafficNeverIncreasesBandwidth) {
  double last = model_.available_bandwidth_mbps(0, 3);
  for (int i = 1; i <= 5; ++i) {
    flows_.add(0, 3, 100.0);
    const double now = model_.available_bandwidth_mbps(0, 3);
    EXPECT_LE(now, last + 1e-9);
    last = now;
  }
}

TEST_F(NetworkModelTest, LatencyGrowsWithHops) {
  const double same_switch = model_.latency_us(0, 1);
  const double one_trunk = model_.latency_us(0, 2);
  const double two_trunks = model_.latency_us(0, 4);
  EXPECT_LT(same_switch, one_trunk);
  EXPECT_LT(one_trunk, two_trunks);
}

TEST_F(NetworkModelTest, LatencyGrowsWithCongestion) {
  const double idle = model_.latency_us(0, 1);
  flows_.add(0, 1, 900.0);
  const double loaded = model_.latency_us(0, 1);
  EXPECT_GT(loaded, idle);
}

TEST_F(NetworkModelTest, UplinkBackgroundCountsAsLoad) {
  const double before = model_.available_bandwidth_mbps(0, 1);
  model_.set_uplink_background_mbps(0, 250.0);
  const double after = model_.available_bandwidth_mbps(0, 1);
  EXPECT_NEAR(before - after, 250.0, 1e-9);
  EXPECT_DOUBLE_EQ(model_.uplink_background_mbps(0), 250.0);
}

TEST_F(NetworkModelTest, NodeFlowSumsChatterAndFlows) {
  model_.set_uplink_background_mbps(2, 50.0);
  flows_.add(2, 4, 100.0);
  flows_.add(0, 2, 25.0);
  EXPECT_DOUBLE_EQ(model_.node_flow_mbps(2), 175.0);
}

TEST_F(NetworkModelTest, LinkUtilizationReflectsOfferedLoad) {
  flows_.add(0, 1, 500.0);
  EXPECT_NEAR(model_.link_utilization(0), 0.5, 1e-9);   // node 0 uplink
  EXPECT_NEAR(model_.link_utilization(2), 0.0, 1e-9);   // node 2 uplink
}

TEST_F(NetworkModelTest, MeasurementNoiseIsBounded) {
  sim::Rng rng(5);
  flows_.add(0, 1, 200.0);
  for (int i = 0; i < 200; ++i) {
    const double bw = model_.measure_bandwidth_mbps(0, 1, rng);
    EXPECT_GT(bw, 0.0);
    EXPECT_LE(bw, 1000.0);  // never above peak
    const double lat = model_.measure_latency_us(0, 1, rng);
    EXPECT_GT(lat, 0.0);
  }
}

TEST_F(NetworkModelTest, MeasurementsCenterOnTruth) {
  sim::Rng rng(6);
  flows_.add(0, 1, 300.0);
  const double truth = model_.available_bandwidth_mbps(0, 1);
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) sum += model_.measure_bandwidth_mbps(0, 1, rng);
  EXPECT_NEAR(sum / n, truth, truth * 0.02);
}

TEST_F(NetworkModelTest, SelfPairRejected) {
  EXPECT_THROW(model_.available_bandwidth_mbps(2, 2), util::CheckError);
  EXPECT_THROW(model_.latency_us(2, 2), util::CheckError);
}

TEST_F(NetworkModelTest, ExpiredFlowRestoresBandwidth) {
  const FlowId id = flows_.add(0, 1, 400.0);
  EXPECT_LT(model_.available_bandwidth_mbps(0, 1), 1000.0);
  flows_.remove(id);
  EXPECT_DOUBLE_EQ(model_.available_bandwidth_mbps(0, 1), 1000.0);
}

}  // namespace
}  // namespace nlarm::net
