#include "core/job_queue.h"

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "test_helpers.h"
#include "util/check.h"

namespace nlarm::core {
namespace {

using nlarm::testing::TestNode;
using nlarm::testing::idle_nodes;
using nlarm::testing::make_snapshot;

AllocationRequest request_for(int nprocs, int ppn = 4) {
  AllocationRequest req;
  req.nprocs = nprocs;
  req.ppn = ppn;
  req.job = JobWeights::balanced();
  return req;
}

class JobQueueTest : public ::testing::Test {
 protected:
  NetworkLoadAwareAllocator allocator_;
};

TEST_F(JobQueueTest, StartsJobImmediatelyWhenClusterFree) {
  JobQueue queue(allocator_);
  auto snap = make_snapshot(idle_nodes(6));
  queue.submit("job-a", request_for(8), 0.0);
  const auto started = queue.poll(snap, 1.0);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].name, "job-a");
  EXPECT_DOUBLE_EQ(started[0].wait_time(), 1.0);
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_EQ(queue.running(), 1u);
}

TEST_F(JobQueueTest, ReservationPreventsDoubleBooking) {
  JobQueue queue(allocator_);
  auto snap = make_snapshot(idle_nodes(4));  // 4 nodes × ppn4 = 16 slots
  queue.submit("a", request_for(8), 0.0);   // 2 nodes
  queue.submit("b", request_for(8), 0.0);   // 2 nodes
  const auto started = queue.poll(snap, 0.0);
  ASSERT_EQ(started.size(), 2u);
  // Disjoint node sets.
  for (cluster::NodeId n : started[0].allocation.nodes) {
    for (cluster::NodeId m : started[1].allocation.nodes) {
      EXPECT_NE(n, m);
    }
  }
  EXPECT_EQ(queue.reserved_nodes().size(), 4u);
}

TEST_F(JobQueueTest, FullClusterQueuesUntilRelease) {
  JobQueue queue(allocator_);
  auto snap = make_snapshot(idle_nodes(2));
  const JobId first = queue.submit("big", request_for(8), 0.0);
  queue.submit("second", request_for(8), 0.0);
  auto started = queue.poll(snap, 0.0);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].id, first);
  EXPECT_EQ(queue.pending(), 1u);
  // Still blocked.
  EXPECT_TRUE(queue.poll(snap, 5.0).empty());
  // Free the nodes; the queued job starts.
  queue.release(first);
  started = queue.poll(snap, 10.0);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].name, "second");
  EXPECT_DOUBLE_EQ(started[0].wait_time(), 10.0);
}

TEST_F(JobQueueTest, BackfillLetsSmallJobJumpBlockedHead) {
  QueueOptions options;
  options.backfill = true;
  JobQueue queue(allocator_, options);
  auto snap = make_snapshot(idle_nodes(3));
  // Head job needs 3 nodes but 2 are taken; small job fits in 1.
  const JobId runner = queue.submit("runner", request_for(8), 0.0);
  queue.poll(snap, 0.0);
  queue.submit("head-too-big", request_for(8), 1.0);   // needs 2 free, has 1
  queue.submit("small", request_for(4), 1.0);          // needs 1 free
  const auto started = queue.poll(snap, 2.0);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].name, "small");
  EXPECT_EQ(queue.pending(), 1u);
  queue.release(runner);
}

TEST_F(JobQueueTest, FifoWithoutBackfill) {
  QueueOptions options;
  options.backfill = false;
  JobQueue queue(allocator_, options);
  auto snap = make_snapshot(idle_nodes(3));
  queue.submit("runner", request_for(8), 0.0);
  queue.poll(snap, 0.0);
  queue.submit("head-too-big", request_for(8), 1.0);
  queue.submit("small", request_for(4), 1.0);
  EXPECT_TRUE(queue.poll(snap, 2.0).empty());  // strict FIFO blocks
  EXPECT_EQ(queue.pending(), 2u);
}

TEST_F(JobQueueTest, MaxAttemptsRejects) {
  QueueOptions options;
  options.max_attempts = 2;
  JobQueue queue(allocator_, options);
  std::vector<TestNode> nodes = idle_nodes(2);
  for (auto& n : nodes) n.cpu_load = 50.0;  // broker always says wait
  auto snap = make_snapshot(nodes);
  queue.submit("doomed", request_for(4), 0.0);
  EXPECT_TRUE(queue.poll(snap, 1.0).empty());
  EXPECT_EQ(queue.rejected(), 0);
  EXPECT_TRUE(queue.poll(snap, 2.0).empty());
  EXPECT_EQ(queue.rejected(), 1);
  EXPECT_EQ(queue.pending(), 0u);
}

TEST_F(JobQueueTest, ReleaseUnknownJobThrows) {
  JobQueue queue(allocator_);
  EXPECT_THROW(queue.release(99), util::CheckError);
}

TEST_F(JobQueueTest, MeanWaitTimeTracked) {
  JobQueue queue(allocator_);
  auto snap = make_snapshot(idle_nodes(4));
  queue.submit("a", request_for(4), 0.0);
  queue.submit("b", request_for(4), 0.0);
  queue.poll(snap, 3.0);
  EXPECT_DOUBLE_EQ(queue.mean_wait_time(), 3.0);
}

TEST_F(JobQueueTest, ReservationCanBeDisabled) {
  QueueOptions options;
  options.reserve_nodes = false;
  JobQueue queue(allocator_, options);
  auto snap = make_snapshot(idle_nodes(2));
  queue.submit("a", request_for(8), 0.0);
  queue.submit("b", request_for(8), 0.0);
  // Without reservations both start (overlapping, like today's unmanaged
  // shared clusters).
  EXPECT_EQ(queue.poll(snap, 0.0).size(), 2u);
}

TEST_F(JobQueueTest, InvalidRequestRejectedAtSubmit) {
  JobQueue queue(allocator_);
  AllocationRequest bad;
  bad.nprocs = 0;
  EXPECT_THROW(queue.submit("bad", bad, 0.0), util::CheckError);
}

namespace backoff {

monitor::ClusterSnapshot loaded_snapshot(int n = 2) {
  std::vector<TestNode> nodes = idle_nodes(n);
  for (auto& node : nodes) node.cpu_load = 50.0;  // broker always says wait
  return make_snapshot(nodes);
}

QueueOptions backoff_options(double base, double max, double jitter = 0.0) {
  QueueOptions options;
  options.backoff_base_s = base;
  options.backoff_max_s = max;
  options.backoff_jitter = jitter;
  return options;
}

}  // namespace backoff

TEST_F(JobQueueTest, BackoffDisabledByDefaultRetriesEveryPoll) {
  QueueOptions options;
  EXPECT_DOUBLE_EQ(options.backoff_base_s, 0.0);  // legacy default
  options.max_attempts = 3;
  JobQueue queue(allocator_, options);
  const auto snap = backoff::loaded_snapshot();
  queue.submit("doomed", request_for(4), 0.0);
  // Back-to-back polls each burn an attempt: no deferral anywhere.
  EXPECT_TRUE(queue.poll(snap, 0.1).empty());
  EXPECT_TRUE(queue.poll(snap, 0.2).empty());
  EXPECT_TRUE(queue.poll(snap, 0.3).empty());
  EXPECT_EQ(queue.rejected(), 1);
}

TEST_F(JobQueueTest, BackoffDelaysGrowExponentiallyAndCap) {
  // base 2 s, cap 8 s, no jitter: deadlines after each failed attempt are
  // t+2, t+4, t+8, t+8... Observed via an idle cluster: the job may be
  // startable, but not before its backoff deadline passes.
  JobQueue queue(allocator_, backoff::backoff_options(2.0, 8.0));
  const auto busy = backoff::loaded_snapshot();
  const auto idle = make_snapshot(idle_nodes(2));
  queue.submit("patient", request_for(4), 0.0);

  EXPECT_TRUE(queue.poll(busy, 0.0).empty());   // attempt 1 → wait until 2
  EXPECT_TRUE(queue.poll(idle, 1.9).empty());   // deferred even though free
  EXPECT_TRUE(queue.poll(busy, 2.0).empty());   // attempt 2 → wait until 6
  EXPECT_TRUE(queue.poll(idle, 5.9).empty());
  EXPECT_TRUE(queue.poll(busy, 6.0).empty());   // attempt 3 → wait until 14
  EXPECT_TRUE(queue.poll(idle, 13.9).empty());
  EXPECT_TRUE(queue.poll(busy, 14.0).empty());  // attempt 4 → capped: 22
  EXPECT_TRUE(queue.poll(idle, 21.9).empty());
  const auto started = queue.poll(idle, 22.0);  // deadline passed: starts
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].name, "patient");
}

TEST_F(JobQueueTest, DeferredPollsDoNotBurnAttempts) {
  QueueOptions options = backoff::backoff_options(10.0, 100.0);
  options.max_attempts = 2;
  JobQueue queue(allocator_, options);
  const auto busy = backoff::loaded_snapshot();
  queue.submit("doomed", request_for(4), 0.0);
  EXPECT_TRUE(queue.poll(busy, 0.0).empty());  // attempt 1 → wait until 10
  // Polls inside the backoff window are free: still not rejected.
  for (double t = 1.0; t < 10.0; t += 1.0) {
    EXPECT_TRUE(queue.poll(busy, t).empty());
  }
  EXPECT_EQ(queue.rejected(), 0);
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_TRUE(queue.poll(busy, 10.0).empty());  // attempt 2 → rejected
  EXPECT_EQ(queue.rejected(), 1);
}

TEST_F(JobQueueTest, BackoffJitterStaysWithinBounds) {
  // base 10 s with ±50% jitter: the deadline lands in [5, 15]. The job
  // must still be deferred right after the failure and must be startable
  // by the upper bound.
  JobQueue queue(allocator_, backoff::backoff_options(10.0, 100.0, 0.5));
  const auto busy = backoff::loaded_snapshot();
  const auto idle = make_snapshot(idle_nodes(2));
  queue.submit("jittered", request_for(4), 0.0);
  EXPECT_TRUE(queue.poll(busy, 0.0).empty());
  EXPECT_TRUE(queue.poll(idle, 4.9).empty());      // below the lower bound
  EXPECT_EQ(queue.poll(idle, 15.0).size(), 1u);    // at the upper bound
}

TEST_F(JobQueueTest, BackfillJumpsHeadInBackoff) {
  // The head job sits in its backoff window; with backfill on, a later job
  // that fits starts instead of idling the free capacity.
  QueueOptions options = backoff::backoff_options(50.0, 100.0);
  options.backfill = true;
  JobQueue queue(allocator_, options);
  const auto busy = backoff::loaded_snapshot(3);
  const auto idle = make_snapshot(idle_nodes(3));
  queue.submit("head", request_for(8), 0.0);
  EXPECT_TRUE(queue.poll(busy, 0.0).empty());  // head → backoff until 50
  queue.submit("small", request_for(4), 1.0);
  const auto started = queue.poll(idle, 2.0);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].name, "small");
  EXPECT_EQ(queue.pending(), 1u);  // head still waiting out its backoff
}

TEST_F(JobQueueTest, BackoffOptionsValidated) {
  QueueOptions bad;
  bad.backoff_base_s = -1.0;
  EXPECT_THROW(JobQueue(allocator_, bad), util::CheckError);
  bad = QueueOptions{};
  bad.backoff_base_s = 10.0;
  bad.backoff_max_s = 5.0;  // max < base
  EXPECT_THROW(JobQueue(allocator_, bad), util::CheckError);
  bad = QueueOptions{};
  bad.backoff_jitter = 1.0;  // jitter must stay below 100%
  EXPECT_THROW(JobQueue(allocator_, bad), util::CheckError);
}

}  // namespace
}  // namespace nlarm::core
