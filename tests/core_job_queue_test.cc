#include "core/job_queue.h"

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "test_helpers.h"
#include "util/check.h"

namespace nlarm::core {
namespace {

using nlarm::testing::TestNode;
using nlarm::testing::idle_nodes;
using nlarm::testing::make_snapshot;

AllocationRequest request_for(int nprocs, int ppn = 4) {
  AllocationRequest req;
  req.nprocs = nprocs;
  req.ppn = ppn;
  req.job = JobWeights::balanced();
  return req;
}

class JobQueueTest : public ::testing::Test {
 protected:
  NetworkLoadAwareAllocator allocator_;
};

TEST_F(JobQueueTest, StartsJobImmediatelyWhenClusterFree) {
  JobQueue queue(allocator_);
  auto snap = make_snapshot(idle_nodes(6));
  queue.submit("job-a", request_for(8), 0.0);
  const auto started = queue.poll(snap, 1.0);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].name, "job-a");
  EXPECT_DOUBLE_EQ(started[0].wait_time(), 1.0);
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_EQ(queue.running(), 1u);
}

TEST_F(JobQueueTest, ReservationPreventsDoubleBooking) {
  JobQueue queue(allocator_);
  auto snap = make_snapshot(idle_nodes(4));  // 4 nodes × ppn4 = 16 slots
  queue.submit("a", request_for(8), 0.0);   // 2 nodes
  queue.submit("b", request_for(8), 0.0);   // 2 nodes
  const auto started = queue.poll(snap, 0.0);
  ASSERT_EQ(started.size(), 2u);
  // Disjoint node sets.
  for (cluster::NodeId n : started[0].allocation.nodes) {
    for (cluster::NodeId m : started[1].allocation.nodes) {
      EXPECT_NE(n, m);
    }
  }
  EXPECT_EQ(queue.reserved_nodes().size(), 4u);
}

TEST_F(JobQueueTest, FullClusterQueuesUntilRelease) {
  JobQueue queue(allocator_);
  auto snap = make_snapshot(idle_nodes(2));
  const JobId first = queue.submit("big", request_for(8), 0.0);
  queue.submit("second", request_for(8), 0.0);
  auto started = queue.poll(snap, 0.0);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].id, first);
  EXPECT_EQ(queue.pending(), 1u);
  // Still blocked.
  EXPECT_TRUE(queue.poll(snap, 5.0).empty());
  // Free the nodes; the queued job starts.
  queue.release(first);
  started = queue.poll(snap, 10.0);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].name, "second");
  EXPECT_DOUBLE_EQ(started[0].wait_time(), 10.0);
}

TEST_F(JobQueueTest, BackfillLetsSmallJobJumpBlockedHead) {
  QueueOptions options;
  options.backfill = true;
  JobQueue queue(allocator_, options);
  auto snap = make_snapshot(idle_nodes(3));
  // Head job needs 3 nodes but 2 are taken; small job fits in 1.
  const JobId runner = queue.submit("runner", request_for(8), 0.0);
  queue.poll(snap, 0.0);
  queue.submit("head-too-big", request_for(8), 1.0);   // needs 2 free, has 1
  queue.submit("small", request_for(4), 1.0);          // needs 1 free
  const auto started = queue.poll(snap, 2.0);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].name, "small");
  EXPECT_EQ(queue.pending(), 1u);
  queue.release(runner);
}

TEST_F(JobQueueTest, FifoWithoutBackfill) {
  QueueOptions options;
  options.backfill = false;
  JobQueue queue(allocator_, options);
  auto snap = make_snapshot(idle_nodes(3));
  queue.submit("runner", request_for(8), 0.0);
  queue.poll(snap, 0.0);
  queue.submit("head-too-big", request_for(8), 1.0);
  queue.submit("small", request_for(4), 1.0);
  EXPECT_TRUE(queue.poll(snap, 2.0).empty());  // strict FIFO blocks
  EXPECT_EQ(queue.pending(), 2u);
}

TEST_F(JobQueueTest, MaxAttemptsRejects) {
  QueueOptions options;
  options.max_attempts = 2;
  JobQueue queue(allocator_, options);
  std::vector<TestNode> nodes = idle_nodes(2);
  for (auto& n : nodes) n.cpu_load = 50.0;  // broker always says wait
  auto snap = make_snapshot(nodes);
  queue.submit("doomed", request_for(4), 0.0);
  EXPECT_TRUE(queue.poll(snap, 1.0).empty());
  EXPECT_EQ(queue.rejected(), 0);
  EXPECT_TRUE(queue.poll(snap, 2.0).empty());
  EXPECT_EQ(queue.rejected(), 1);
  EXPECT_EQ(queue.pending(), 0u);
}

TEST_F(JobQueueTest, ReleaseUnknownJobThrows) {
  JobQueue queue(allocator_);
  EXPECT_THROW(queue.release(99), util::CheckError);
}

TEST_F(JobQueueTest, MeanWaitTimeTracked) {
  JobQueue queue(allocator_);
  auto snap = make_snapshot(idle_nodes(4));
  queue.submit("a", request_for(4), 0.0);
  queue.submit("b", request_for(4), 0.0);
  queue.poll(snap, 3.0);
  EXPECT_DOUBLE_EQ(queue.mean_wait_time(), 3.0);
}

TEST_F(JobQueueTest, ReservationCanBeDisabled) {
  QueueOptions options;
  options.reserve_nodes = false;
  JobQueue queue(allocator_, options);
  auto snap = make_snapshot(idle_nodes(2));
  queue.submit("a", request_for(8), 0.0);
  queue.submit("b", request_for(8), 0.0);
  // Without reservations both start (overlapping, like today's unmanaged
  // shared clusters).
  EXPECT_EQ(queue.poll(snap, 0.0).size(), 2u);
}

TEST_F(JobQueueTest, InvalidRequestRejectedAtSubmit) {
  JobQueue queue(allocator_);
  AllocationRequest bad;
  bad.nprocs = 0;
  EXPECT_THROW(queue.submit("bad", bad, 0.0), util::CheckError);
}

}  // namespace
}  // namespace nlarm::core
