#include "core/compute_load.h"

#include <gtest/gtest.h>

#include <limits>

#include "core/attributes.h"
#include "test_helpers.h"
#include "util/check.h"

namespace nlarm::core {
namespace {

using nlarm::testing::TestNode;
using nlarm::testing::make_snapshot;

TEST(AttributesTest, CriteriaMatchTableOne) {
  EXPECT_EQ(criterion_of(Attribute::kCoreCount), Criterion::kMaximize);
  EXPECT_EQ(criterion_of(Attribute::kCpuFreq), Criterion::kMaximize);
  EXPECT_EQ(criterion_of(Attribute::kTotalMem), Criterion::kMaximize);
  EXPECT_EQ(criterion_of(Attribute::kMemAvail5), Criterion::kMaximize);
  EXPECT_EQ(criterion_of(Attribute::kUsers), Criterion::kMinimize);
  EXPECT_EQ(criterion_of(Attribute::kCpuLoad1), Criterion::kMinimize);
  EXPECT_EQ(criterion_of(Attribute::kCpuUtil15), Criterion::kMinimize);
  EXPECT_EQ(criterion_of(Attribute::kNetFlow5), Criterion::kMinimize);
}

TEST(AttributesTest, ValuesExtractedFromSnapshot) {
  auto snap = make_snapshot({TestNode{.cpu_load = 2.0,
                                      .cpu_util = 0.4,
                                      .mem_used_gb = 6.0,
                                      .net_flow_mbps = 12.0,
                                      .users = 3,
                                      .cores = 12,
                                      .freq_ghz = 4.6,
                                      .total_mem_gb = 16.0}});
  const auto& node = snap.nodes[0];
  EXPECT_DOUBLE_EQ(attribute_value(node, Attribute::kCoreCount), 12.0);
  EXPECT_DOUBLE_EQ(attribute_value(node, Attribute::kCpuFreq), 4.6);
  EXPECT_DOUBLE_EQ(attribute_value(node, Attribute::kCpuLoad5), 2.0);
  EXPECT_DOUBLE_EQ(attribute_value(node, Attribute::kNetFlow1), 12.0);
  EXPECT_DOUBLE_EQ(attribute_value(node, Attribute::kMemAvail15), 10.0);
  EXPECT_DOUBLE_EQ(attribute_value(node, Attribute::kUsers), 3.0);
}

TEST(AttributesTest, NamesAreUnique) {
  std::set<std::string> names;
  for (Attribute a : kAllAttributes) {
    EXPECT_TRUE(names.insert(to_string(a)).second);
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kAttributeCount));
}

TEST(ComputeLoadTest, LoadedNodeCostsMore) {
  auto snap = make_snapshot({TestNode{.cpu_load = 0.1},
                             TestNode{.cpu_load = 6.0}});
  const std::vector<cluster::NodeId> nodes{0, 1};
  const auto cl = compute_loads(snap, nodes, ComputeLoadWeights{});
  EXPECT_LT(cl[0], cl[1]);
}

TEST(ComputeLoadTest, FasterNodeCostsLess) {
  auto snap = make_snapshot({TestNode{.cores = 8, .freq_ghz = 2.8},
                             TestNode{.cores = 12, .freq_ghz = 4.6}});
  const std::vector<cluster::NodeId> nodes{0, 1};
  const auto cl = compute_loads(snap, nodes, ComputeLoadWeights{});
  EXPECT_GT(cl[0], cl[1]);
}

TEST(ComputeLoadTest, IdenticalNodesEqualCost) {
  auto snap = make_snapshot(nlarm::testing::idle_nodes(4));
  const std::vector<cluster::NodeId> nodes{0, 1, 2, 3};
  const auto cl = compute_loads(snap, nodes, ComputeLoadWeights{});
  for (std::size_t i = 1; i < cl.size(); ++i) {
    EXPECT_NEAR(cl[i], cl[0], 1e-12);
  }
}

TEST(ComputeLoadTest, NetworkFlowRaisesCost) {
  auto snap = make_snapshot({TestNode{.net_flow_mbps = 0.0},
                             TestNode{.net_flow_mbps = 500.0}});
  const std::vector<cluster::NodeId> nodes{0, 1};
  const auto cl = compute_loads(snap, nodes, ComputeLoadWeights{});
  EXPECT_LT(cl[0], cl[1]);
}

TEST(ComputeLoadTest, MemoryPressureRaisesCost) {
  auto snap = make_snapshot({TestNode{.mem_used_gb = 1.0},
                             TestNode{.mem_used_gb = 15.0}});
  const std::vector<cluster::NodeId> nodes{0, 1};
  const auto cl = compute_loads(snap, nodes, ComputeLoadWeights{});
  EXPECT_LT(cl[0], cl[1]);
}

TEST(ComputeLoadTest, SubsetNormalizationIsSelfContained) {
  auto snap = make_snapshot({TestNode{.cpu_load = 1.0},
                             TestNode{.cpu_load = 2.0},
                             TestNode{.cpu_load = 100.0}});
  // Over the pair {0,1} only, the extreme node 2 must not influence costs.
  const std::vector<cluster::NodeId> pair{0, 1};
  const auto cl_pair = compute_loads(snap, pair, ComputeLoadWeights{});
  auto snap2 = make_snapshot({TestNode{.cpu_load = 1.0},
                              TestNode{.cpu_load = 2.0}});
  const std::vector<cluster::NodeId> both{0, 1};
  const auto cl_two = compute_loads(snap2, both, ComputeLoadWeights{});
  EXPECT_NEAR(cl_pair[0], cl_two[0], 1e-12);
  EXPECT_NEAR(cl_pair[1], cl_two[1], 1e-12);
}

TEST(ComputeLoadTest, WeightProfilesChangeRanking) {
  // Node 0: loaded CPU but quiet network; node 1: idle CPU, busy network.
  auto snap = make_snapshot({TestNode{.cpu_load = 4.0, .net_flow_mbps = 0.0},
                             TestNode{.cpu_load = 0.0,
                                      .net_flow_mbps = 800.0}});
  const std::vector<cluster::NodeId> nodes{0, 1};
  const auto compute = compute_loads(snap, nodes,
                                     ComputeLoadWeights::compute_intensive());
  const auto network = compute_loads(snap, nodes,
                                     ComputeLoadWeights::network_intensive());
  EXPECT_GT(compute[0], compute[1]);  // CPU-heavy job avoids loaded CPU
  EXPECT_LT(network[0], network[1]);  // network-heavy job avoids busy NIC
}

TEST(ComputeLoadTest, InvalidWeightsRejected) {
  auto snap = make_snapshot(nlarm::testing::idle_nodes(2));
  const std::vector<cluster::NodeId> nodes{0, 1};
  ComputeLoadWeights w;
  w.cpu_load = -0.1;
  EXPECT_THROW(compute_loads(snap, nodes, w), util::CheckError);
  ComputeLoadWeights zero;
  zero.cpu_load = zero.cpu_util = zero.net_flow = zero.memory = 0.0;
  zero.core_count = zero.cpu_freq = zero.total_mem = zero.users = 0.0;
  EXPECT_THROW(compute_loads(snap, nodes, zero), util::CheckError);
}

TEST(ComputeLoadTest, AttributeWeightsDecomposeGroups) {
  ComputeLoadWeights w;
  const double total = w.attribute_weight(Attribute::kCpuLoad1) +
                       w.attribute_weight(Attribute::kCpuLoad5) +
                       w.attribute_weight(Attribute::kCpuLoad15);
  EXPECT_NEAR(total, w.cpu_load, 1e-12);
  EXPECT_DOUBLE_EQ(w.attribute_weight(Attribute::kCoreCount), w.core_count);
}

TEST(EffectiveProcessCountTest, MatchesEquationThree) {
  auto snap = make_snapshot({TestNode{.cpu_load = 0.0, .cores = 12}});
  // ceil(0) % 12 = 0 → pc = 12.
  EXPECT_EQ(effective_process_count(snap.nodes[0]), 12);

  snap = make_snapshot({TestNode{.cpu_load = 3.2, .cores = 12}});
  // ceil(3.2)=4, 4%12=4 → pc = 8.
  EXPECT_EQ(effective_process_count(snap.nodes[0]), 8);

  snap = make_snapshot({TestNode{.cpu_load = 13.0, .cores = 12}});
  // 13%12=1 → pc = 11 (the paper's modulo semantics).
  EXPECT_EQ(effective_process_count(snap.nodes[0]), 11);

  snap = make_snapshot({TestNode{.cpu_load = 12.0, .cores = 12}});
  // 12%12=0 → pc = 12.
  EXPECT_EQ(effective_process_count(snap.nodes[0]), 12);
}

TEST(EffectiveProcessCountTest, AlwaysInOneToCores) {
  for (double load = 0.0; load < 40.0; load += 0.7) {
    auto snap = make_snapshot({TestNode{.cpu_load = load, .cores = 8}});
    const int pc = effective_process_count(snap.nodes[0]);
    EXPECT_GE(pc, 1);
    EXPECT_LE(pc, 8);
  }
}

TEST(EffectiveProcessCountTest, GarbageLoadsAreClamped) {
  // Regression: a misbehaving NodeStateD can report a negative, NaN, or
  // absurdly large load. ceil() of those cast straight to int is UB; the
  // clamp must route them to a sane pc instead of crashing or wrapping.
  auto snap = make_snapshot({TestNode{.cpu_load = -3.5, .cores = 8}});
  EXPECT_EQ(effective_process_count(snap.nodes[0]), 8);  // negative → idle

  snap = make_snapshot({TestNode{.cpu_load = -1e300, .cores = 8}});
  EXPECT_EQ(effective_process_count(snap.nodes[0]), 8);

  snap = make_snapshot(
      {TestNode{.cpu_load = std::numeric_limits<double>::quiet_NaN(),
                .cores = 8}});
  EXPECT_EQ(effective_process_count(snap.nodes[0]), 8);  // NaN → idle

  // Loads at and beyond INT_MAX saturate instead of overflowing; the
  // result still lands in [1, cores] via the modulo.
  snap = make_snapshot({TestNode{.cpu_load = 1e18, .cores = 8}});
  int pc = effective_process_count(snap.nodes[0]);
  EXPECT_GE(pc, 1);
  EXPECT_LE(pc, 8);

  snap = make_snapshot(
      {TestNode{.cpu_load = std::numeric_limits<double>::infinity(),
                .cores = 8}});
  pc = effective_process_count(snap.nodes[0]);
  EXPECT_GE(pc, 1);
  EXPECT_LE(pc, 8);
  // INT_MAX % 8 = 7 → pc = 1: deterministic saturation, both paths agree.
  EXPECT_EQ(pc, 8 - std::numeric_limits<int>::max() % 8);
}

TEST(EffectiveProcessCountTest, PpnOverrides) {
  auto snap = make_snapshot({TestNode{.cpu_load = 5.0, .cores = 12},
                             TestNode{.cpu_load = 0.0, .cores = 8}});
  const std::vector<cluster::NodeId> nodes{0, 1};
  const auto pc = effective_process_counts(snap, nodes, /*ppn=*/4);
  EXPECT_EQ(pc, (std::vector<int>{4, 4}));
  const auto derived = effective_process_counts(snap, nodes, /*ppn=*/0);
  EXPECT_EQ(derived[0], 7);   // ceil(5)%12=5 → 7
  EXPECT_EQ(derived[1], 8);
}

}  // namespace
}  // namespace nlarm::core
