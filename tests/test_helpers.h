// Shared builders for nlarm tests: hand-crafted snapshots with exact
// attribute values, and small ready-made testbeds.
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "monitor/snapshot.h"

namespace nlarm::testing {

/// Per-node inputs for a hand-built snapshot.
struct TestNode {
  double cpu_load = 0.0;
  double cpu_util = 0.1;
  double mem_used_gb = 4.0;
  double net_flow_mbps = 0.0;
  int users = 0;
  int cores = 8;
  double freq_ghz = 3.0;
  double total_mem_gb = 16.0;
  bool live = true;
};

/// Builds a snapshot where every running mean equals the instantaneous
/// value and the network matrices are uniform (latency `lat_us`, bandwidth
/// `bw_mbps`, peak `peak_mbps`).
inline monitor::ClusterSnapshot make_snapshot(
    const std::vector<TestNode>& nodes, double lat_us = 100.0,
    double bw_mbps = 900.0, double peak_mbps = 1000.0) {
  monitor::ClusterSnapshot snap;
  const int n = static_cast<int>(nodes.size());
  snap.time = 0.0;
  snap.livehosts.resize(nodes.size());
  snap.nodes.resize(nodes.size());
  for (int i = 0; i < n; ++i) {
    const TestNode& t = nodes[static_cast<std::size_t>(i)];
    snap.livehosts[static_cast<std::size_t>(i)] = t.live;
    monitor::NodeSnapshot& ns = snap.nodes[static_cast<std::size_t>(i)];
    ns.spec.id = i;
    ns.spec.hostname = cluster::default_hostname(i);
    ns.spec.switch_id = 0;
    ns.spec.core_count = t.cores;
    ns.spec.cpu_freq_ghz = t.freq_ghz;
    ns.spec.total_mem_gb = t.total_mem_gb;
    ns.valid = true;
    ns.sample_time = 0.0;
    ns.cpu_load = t.cpu_load;
    ns.cpu_util = t.cpu_util;
    ns.mem_used_gb = t.mem_used_gb;
    ns.net_flow_mbps = t.net_flow_mbps;
    ns.users = t.users;
    ns.cpu_load_avg = {t.cpu_load, t.cpu_load, t.cpu_load};
    ns.cpu_util_avg = {t.cpu_util, t.cpu_util, t.cpu_util};
    ns.net_flow_avg = {t.net_flow_mbps, t.net_flow_mbps, t.net_flow_mbps};
    const double avail = t.total_mem_gb - t.mem_used_gb;
    ns.mem_avail_avg = {avail, avail, avail};
  }
  snap.net.latency_us = monitor::make_matrix(n, lat_us);
  snap.net.latency_5min_us = monitor::make_matrix(n, lat_us);
  snap.net.bandwidth_mbps = monitor::make_matrix(n, bw_mbps);
  snap.net.peak_mbps = monitor::make_matrix(n, peak_mbps);
  return snap;
}

/// Sets the latency/bandwidth for one (symmetric) pair.
inline void set_pair(monitor::ClusterSnapshot& snap, int u, int v,
                     double lat_us, double bw_mbps) {
  const auto uu = static_cast<std::size_t>(u);
  const auto vv = static_cast<std::size_t>(v);
  snap.net.latency_us[uu][vv] = lat_us;
  snap.net.latency_us[vv][uu] = lat_us;
  snap.net.latency_5min_us[uu][vv] = lat_us;
  snap.net.latency_5min_us[vv][uu] = lat_us;
  snap.net.bandwidth_mbps[uu][vv] = bw_mbps;
  snap.net.bandwidth_mbps[vv][uu] = bw_mbps;
}

/// A vector of n identical idle nodes.
inline std::vector<TestNode> idle_nodes(int n) {
  return std::vector<TestNode>(static_cast<std::size_t>(n));
}

}  // namespace nlarm::testing
