// MetricsRegistry: concurrent updates, Prometheus/JSONL exposition, and the
// registration contract.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/catalog.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace nlarm::obs {
namespace {

TEST(Counter, IncrementsByArbitraryDeltas) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.add(-0.25);
  EXPECT_DOUBLE_EQ(g.value(), 1.25);
  g.set(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), -3.0);
}

TEST(Histogram, BucketsBoundsInclusive) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);   // bucket 0 (<= 1)
  h.observe(1.0);   // bucket 0 (bounds are inclusive)
  h.observe(1.5);   // bucket 1
  h.observe(5.0);   // bucket 2
  h.observe(100.0); // +Inf bucket
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 5.0 + 100.0);
}

TEST(MetricsRegistry, RegisterOrGetReturnsSameInstance) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x_total", "help a");
  Counter& b = reg.counter("x_total", "different help is ignored");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(reg.counter_value("x_total"), 3u);
}

TEST(MetricsRegistry, TypeMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("dual_use", "a counter");
  EXPECT_THROW(reg.gauge("dual_use", "now a gauge"), util::CheckError);
  EXPECT_THROW(reg.histogram("dual_use", "now a histogram"),
               util::CheckError);
}

TEST(MetricsRegistry, FindersReturnNullForUnknownNames) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
  EXPECT_EQ(reg.counter_value("nope"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("nope"), 0.0);
}

// The acceptance-critical concurrency property: N threads hammering the same
// counter/gauge/histogram lose no updates (run under NLARM_SANITIZE=ON this
// also proves data-race freedom).
TEST(MetricsRegistry, ConcurrentUpdatesLoseNothing) {
  MetricsRegistry reg;
  Counter& counter = reg.counter("conc_total", "concurrent counter");
  Gauge& gauge = reg.gauge("conc_gauge", "concurrent gauge");
  Histogram& hist = reg.histogram("conc_seconds", "concurrent histogram",
                                  {0.25, 0.75});

  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &gauge, &hist] {
      for (int i = 0; i < kIters; ++i) {
        counter.inc();
        gauge.add(0.5);  // dyadic: the CAS-loop sum is exact
        hist.observe(i % 2 == 0 ? 0.25 : 1.0);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(gauge.value(), kThreads * kIters * 0.5);
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(hist.bucket_count(0),
            static_cast<std::uint64_t>(kThreads) * (kIters / 2));
  EXPECT_EQ(hist.bucket_count(2),
            static_cast<std::uint64_t>(kThreads) * (kIters / 2));
  EXPECT_DOUBLE_EQ(hist.sum(), kThreads * (kIters / 2) * (0.25 + 1.0));
}

// Golden-format test: exact Prometheus text exposition v0.0.4 for a private
// registry (dyadic values so the shortest round-trip formatting is stable).
TEST(MetricsRegistry, PrometheusGoldenFormat) {
  MetricsRegistry reg;
  reg.counter("nlarm_test_events_total", "Events seen.").inc(7);
  reg.gauge("nlarm_test_depth", "Queue depth.").set(0.5);
  Histogram& h =
      reg.histogram("nlarm_test_latency_seconds", "Latency.", {0.25, 1.0});
  h.observe(0.25);
  h.observe(0.5);
  h.observe(2.0);
  h.observe(2.0);

  const std::string expected =
      "# HELP nlarm_test_depth Queue depth.\n"
      "# TYPE nlarm_test_depth gauge\n"
      "nlarm_test_depth 0.5\n"
      "# HELP nlarm_test_events_total Events seen.\n"
      "# TYPE nlarm_test_events_total counter\n"
      "nlarm_test_events_total 7\n"
      "# HELP nlarm_test_latency_seconds Latency.\n"
      "# TYPE nlarm_test_latency_seconds histogram\n"
      "nlarm_test_latency_seconds_bucket{le=\"0.25\"} 1\n"
      "nlarm_test_latency_seconds_bucket{le=\"1\"} 2\n"
      "nlarm_test_latency_seconds_bucket{le=\"+Inf\"} 4\n"
      "nlarm_test_latency_seconds_sum 4.75\n"
      "nlarm_test_latency_seconds_count 4\n";
  EXPECT_EQ(reg.prometheus_text(), expected);
}

TEST(MetricsRegistry, JsonlListsEveryMetric) {
  MetricsRegistry reg;
  reg.counter("a_total", "a").inc(2);
  reg.gauge("b_gauge", "b").set(1.5);
  reg.histogram("c_seconds", "c", {1.0}).observe(0.5);

  const std::string jsonl = reg.jsonl();
  EXPECT_NE(jsonl.find("\"a_total\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"b_gauge\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"c_seconds\""), std::string::npos);
  // One line per metric.
  int lines = 0;
  for (char ch : jsonl) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3);
}

TEST(FormatMetricValue, ShortestRoundTrip) {
  EXPECT_EQ(format_metric_value(0.5), "0.5");
  EXPECT_EQ(format_metric_value(12.0), "12");
  EXPECT_EQ(format_metric_value(1e-06), "1e-06");
}

TEST(LatencyBounds, AscendingAndCoversTargetRange) {
  const auto bounds = latency_seconds_bounds();
  ASSERT_GE(bounds.size(), 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  EXPECT_LE(bounds.front(), 1e-6);
  EXPECT_GE(bounds.back(), 1.0);
}

TEST(LatencyBounds, FineBoundsResolveSubMillisecondDecides) {
  const auto bounds = fine_latency_seconds_bounds();
  ASSERT_GE(bounds.size(), 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  EXPECT_LE(bounds.front(), 1e-7);
  EXPECT_GE(bounds.back(), 1.0);
  // The regression this fixes: a 1.5 ms and a 2 ms decide must land in
  // different buckets (the coarse bounds lumped everything under 2.5 ms
  // into one bucket, flattening the V=16384 latency distribution).
  Histogram h(bounds);
  h.observe(1.5e-3);
  h.observe(2.0e-3);
  for (std::size_t i = 0; i <= bounds.size(); ++i) {
    EXPECT_LE(h.bucket_count(i), 1u) << "bucket " << i;
  }
  // And the sub-ms decades carry several buckets each, not one.
  int sub_ms = 0;
  for (const double b : bounds) {
    if (b >= 1e-4 && b < 1e-3) ++sub_ms;
  }
  EXPECT_GE(sub_ms, 4);
}

TEST(MetricsRegistry, CatalogAllocTotalUsesFineBounds) {
  metrics::register_all();
  const Histogram* h = MetricsRegistry::global().find_histogram(
      "nlarm_alloc_total_seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->bounds(), fine_latency_seconds_bounds());
}

TEST(MetricsRegistry, CompactJsonIsOneFlatObject) {
  MetricsRegistry reg;
  reg.counter("a_total", "a").inc(2);
  reg.gauge("b_gauge", "b").set(0.5);
  Histogram& h = reg.histogram("c_seconds", "c", {1.0});
  h.observe(0.5);
  h.observe(3.0);
  EXPECT_EQ(reg.compact_json(),
            "{\"a_total\":2,\"b_gauge\":0.5,\"c_seconds_count\":2,"
            "\"c_seconds_sum\":3.5}");
}

}  // namespace
}  // namespace nlarm::obs
