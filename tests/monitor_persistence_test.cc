#include "monitor/persistence.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/allocator.h"
#include "exp/experiment.h"
#include "test_helpers.h"
#include "util/check.h"

namespace nlarm::monitor {
namespace {

using nlarm::testing::TestNode;
using nlarm::testing::make_snapshot;

TEST(PersistenceTest, RoundTripsHandBuiltSnapshot) {
  std::vector<TestNode> nodes = nlarm::testing::idle_nodes(4);
  nodes[1].cpu_load = 3.25;
  nodes[2].live = false;
  auto snap = make_snapshot(nodes, 123.0, 850.0, 1000.0);
  snap.time = 777.5;
  snap.nodes[3].valid = false;

  std::ostringstream out;
  write_snapshot(out, snap);
  std::istringstream in(out.str());
  const ClusterSnapshot loaded = read_snapshot(in);

  EXPECT_DOUBLE_EQ(loaded.time, 777.5);
  ASSERT_EQ(loaded.size(), 4);
  EXPECT_DOUBLE_EQ(loaded.nodes[1].cpu_load, 3.25);
  EXPECT_DOUBLE_EQ(loaded.nodes[1].cpu_load_avg.fifteen_min, 3.25);
  EXPECT_EQ(loaded.nodes[0].spec.hostname, "csews1");
  EXPECT_FALSE(loaded.livehosts[2]);
  EXPECT_FALSE(loaded.nodes[3].valid);
  EXPECT_DOUBLE_EQ(loaded.net.latency_us[0][1], 123.0);
  EXPECT_DOUBLE_EQ(loaded.net.bandwidth_mbps[2][3], 850.0);
  EXPECT_DOUBLE_EQ(loaded.net.peak_mbps[1][2], 1000.0);
  EXPECT_EQ(loaded.usable_nodes(), snap.usable_nodes());
}

TEST(PersistenceTest, UnmeasuredPairsStayUnmeasured) {
  auto snap = make_snapshot(nlarm::testing::idle_nodes(3));
  nlarm::testing::set_pair(snap, 1, 2, -1.0, -1.0);
  snap.net.peak_mbps[1][2] = -1.0;
  snap.net.peak_mbps[2][1] = -1.0;
  std::ostringstream out;
  write_snapshot(out, snap);
  std::istringstream in(out.str());
  const ClusterSnapshot loaded = read_snapshot(in);
  EXPECT_LT(loaded.net.latency_us[1][2], 0.0);
  EXPECT_LT(loaded.net.bandwidth_mbps[1][2], 0.0);
  EXPECT_GT(loaded.net.latency_us[0][1], 0.0);
}

TEST(PersistenceTest, MonitorSnapshotRoundTripsAndAllocatesIdentically) {
  exp::Testbed::Options options;
  options.seed = 23;
  options.cluster.fast_nodes = 8;
  options.cluster.slow_nodes = 4;
  options.cluster.switches = 3;
  auto testbed = exp::Testbed::make(options);
  const ClusterSnapshot live = testbed->snapshot();

  std::ostringstream out;
  write_snapshot(out, live);
  std::istringstream in(out.str());
  const ClusterSnapshot loaded = read_snapshot(in);

  core::AllocationRequest request;
  request.nprocs = 16;
  request.ppn = 4;
  request.job = core::JobWeights{0.3, 0.7};
  core::NetworkLoadAwareAllocator a;
  core::NetworkLoadAwareAllocator b;
  // Offline allocation from the file equals the live decision exactly.
  EXPECT_EQ(a.allocate(live, request).nodes,
            b.allocate(loaded, request).nodes);
}

TEST(PersistenceTest, RejectsGarbage) {
  std::istringstream not_snapshot("hello world\n");
  EXPECT_THROW(read_snapshot(not_snapshot), util::CheckError);
  std::istringstream missing_time("#nlarm-snapshot v1\nlive 0 1\n");
  EXPECT_THROW(read_snapshot(missing_time), util::CheckError);
  std::istringstream bad_tag("#nlarm-snapshot v1\ntime 0\nwat 1 2\n");
  EXPECT_THROW(read_snapshot(bad_tag), util::CheckError);
  std::istringstream empty("#nlarm-snapshot v1\ntime 0\n");
  EXPECT_THROW(read_snapshot(empty), util::CheckError);
}

TEST(PersistenceTest, FileHelpersWork) {
  auto snap = make_snapshot(nlarm::testing::idle_nodes(2));
  const std::string path = ::testing::TempDir() + "/nlarm_snapshot_test.txt";
  EXPECT_TRUE(save_snapshot_file(path, snap));
  const ClusterSnapshot loaded = load_snapshot_file(path);
  EXPECT_EQ(loaded.size(), 2);
  EXPECT_THROW(load_snapshot_file("/nonexistent/snap.txt"),
               util::CheckError);
  std::remove(path.c_str());
}

TEST(PersistenceTest, SaveIsAtomicAndLeavesNoTempFile) {
  const std::string path = ::testing::TempDir() + "/nlarm_atomic_save.txt";
  std::remove(path.c_str());
  auto snap = make_snapshot(nlarm::testing::idle_nodes(3));
  snap.time = 42.0;
  ASSERT_TRUE(save_snapshot_file(path, snap));
  // The write went through <path>.tmp + rename; the staging file is gone.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());

  // Overwriting an existing file is just as safe.
  snap.time = 43.0;
  ASSERT_TRUE(save_snapshot_file(path, snap));
  EXPECT_DOUBLE_EQ(load_snapshot_file(path).time, 43.0);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(PersistenceTest, TornWriteNeverReplacesGoodSnapshot) {
  const std::string path = ::testing::TempDir() + "/nlarm_torn_save.txt";
  std::remove(path.c_str());
  auto snap = make_snapshot(nlarm::testing::idle_nodes(4));
  snap.time = 100.0;
  ASSERT_TRUE(save_snapshot_file(path, snap));

  // Fault injection: the next save is torn mid-write. It must report
  // failure and leave the previous good file byte-for-byte readable.
  snap.time = 200.0;
  arm_torn_snapshot_write();
  EXPECT_FALSE(save_snapshot_file(path, snap));
  const ClusterSnapshot survived = load_snapshot_file(path);
  EXPECT_DOUBLE_EQ(survived.time, 100.0);
  EXPECT_EQ(survived.size(), 4);

  // The injection is one-shot: the retry lands normally.
  EXPECT_TRUE(save_snapshot_file(path, snap));
  EXPECT_DOUBLE_EQ(load_snapshot_file(path).time, 200.0);
  std::remove(path.c_str());
}

TEST(PersistenceTest, TornFirstWriteLeavesNoSnapshotBehind) {
  // With no previous good file, a torn save must not leave a half-written
  // snapshot that a later load would trust.
  const std::string path = ::testing::TempDir() + "/nlarm_torn_first.txt";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  arm_torn_snapshot_write();
  EXPECT_FALSE(
      save_snapshot_file(path, make_snapshot(nlarm::testing::idle_nodes(2))));
  EXPECT_THROW(load_snapshot_file(path), util::CheckError);
  std::remove((path + ".tmp").c_str());
}

TEST(PersistenceTest, TruncatedFileIsRejectedOnLoad) {
  // A snapshot cut off mid-stream (what a non-atomic writer would leave
  // after a crash) fails loudly instead of parsing to a partial cluster.
  auto snap = make_snapshot(nlarm::testing::idle_nodes(4));
  std::ostringstream out;
  write_snapshot(out, snap);
  const std::string full = out.str();
  const std::string path = ::testing::TempDir() + "/nlarm_truncated.txt";
  {
    std::ofstream file(path, std::ios::trunc);
    file << full.substr(0, full.size() / 2);
  }
  EXPECT_THROW(load_snapshot_file(path), util::CheckError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nlarm::monitor
