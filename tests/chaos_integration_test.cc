// End-to-end fault-injection acceptance: the monitor→degrade→epoch→decide
// pipeline under a chaos schedule. The headline scenario (ISSUE 4): stall
// 10% of the NodeStateD daemons and tear one snapshot write — every decide
// completes, stale nodes quarantine (visibly), incremental degraded
// refreshes stay bit-identical to a shadow full-rebuild pipeline, and the
// torn write never corrupts the on-disk snapshot.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/allocator.h"
#include "core/broker.h"
#include "core/degrade.h"
#include "exp/chaos_harness.h"
#include "exp/experiment.h"
#include "monitor/persistence.h"
#include "test_helpers.h"
#include "util/check.h"

namespace nlarm {
namespace {

core::AllocationRequest make_request() {
  core::AllocationRequest request;
  request.nprocs = 16;
  request.ppn = 4;
  request.job = core::JobWeights{0.3, 0.7};
  return request;
}

void expect_same_decision(const core::BrokerDecision& a,
                          const core::BrokerDecision& b) {
  EXPECT_EQ(a.action, b.action);
  EXPECT_EQ(a.allocation.nodes, b.allocation.nodes);
  EXPECT_EQ(a.allocation.procs_per_node, b.allocation.procs_per_node);
  // Bit-exact cost equality, not a tolerance.
  EXPECT_EQ(a.allocation.total_cost, b.allocation.total_cost);
}

TEST(ChaosIntegrationTest, StalledDaemonsAndTornWriteZeroFailedDecides) {
  exp::Testbed::Options options;
  options.seed = 77;
  options.warmup_seconds = 400.0;
  options.cluster.fast_nodes = 12;  // small world, same structure
  options.cluster.slow_nodes = 6;
  options.cluster.switches = 2;
  auto testbed = exp::Testbed::make(options);
  sim::Simulation& sim = testbed->sim();

  core::NetworkLoadAwareAllocator allocator;       // incremental pipeline
  core::NetworkLoadAwareAllocator shadow_allocator;  // full-rebuild shadow
  core::ResourceBroker broker(allocator);
  core::ResourceBroker shadow(shadow_allocator);
  obs::AuditLog audit_log;
  broker.set_audit_log(&audit_log);

  core::DegradationPolicy degradation;
  degradation.node_staleness_budget_s = 30.0;
  degradation.node_readmit_s = 15.0;
  broker.set_degradation(degradation);
  shadow.set_degradation(degradation);

  const std::string dump_path =
      ::testing::TempDir() + "chaos_snapshot.txt";
  std::remove(dump_path.c_str());

  // 10% of the NodeStateDs wedge (alive but silent) for most of the run;
  // one snapshot write is torn mid-flight.
  exp::ChaosHarness harness(
      sim::ChaosSpec::parse("seed=7; stall:nodestate:0.1@10+400; "
                            "tear:snapshot@30"),
      sim, testbed->cluster(), testbed->monitor());
  harness.arm();

  const core::AllocationRequest request = make_request();
  const core::RequestProfile profile = core::RequestProfile::of(request);
  std::size_t max_quarantined = 0;
  std::size_t degraded_epochs = 0;
  int saves_failed = 0;
  core::EpochPin pin;
  core::EpochPin shadow_pin;
  const double end_time = sim.now() + 300.0;
  while (sim.now() < end_time) {
    sim.run_until(sim.now() + 5.0);
    const double now = sim.now() + harness.clock_skew();
    auto snapshot = std::make_shared<const monitor::ClusterSnapshot>(
        testbed->monitor().snapshot());
    const monitor::SnapshotDelta delta =
        testbed->monitor().store().drain_delta();
    const monitor::StalenessView staleness =
        testbed->monitor().store().staleness_view(now);

    broker.refresh_epoch(snapshot, delta, staleness, profile);
    shadow.refresh_epoch(snapshot, staleness, profile);  // always rebuilds
    broker.refresh_pin(pin);
    shadow.refresh_pin(shadow_pin);
    ASSERT_TRUE(pin.valid());

    max_quarantined = std::max(max_quarantined, pin.prepared->quarantined);
    if (pin.prepared->degraded) ++degraded_epochs;
    // Incremental degraded epochs must match the shadow full rebuild
    // bit-for-bit — including while nodes are quarantined.
    EXPECT_EQ(pin.prepared->quarantined, shadow_pin.prepared->quarantined);

    core::BrokerDecision decision;
    ASSERT_NO_THROW(decision = broker.decide(pin, request));
    const core::BrokerDecision shadow_decision =
        shadow.decide(shadow_pin, request);
    expect_same_decision(decision, shadow_decision);

    if (!monitor::save_snapshot_file(dump_path, *snapshot)) ++saves_failed;
  }

  // The stalled daemons' records aged out: quarantine was engaged and
  // visible on the published epochs.
  EXPECT_GT(max_quarantined, 0u);
  EXPECT_GT(degraded_epochs, 0u);
  // Zero failed decides: nothing threw (asserted above) and nothing was
  // refused.
  EXPECT_EQ(broker.stale_refusals(), 0);
  // Exactly the torn save failed; the file on disk still parses.
  EXPECT_EQ(saves_failed, 1);
  EXPECT_NO_THROW(monitor::load_snapshot_file(dump_path));

  // Degradation is visible in the audit trail.
  std::size_t degraded_records = 0;
  for (const obs::AuditRecord& record : audit_log.records()) {
    if (record.degradation == "degraded-epoch") {
      ++degraded_records;
      EXPECT_GT(record.quarantined_nodes, 0);
    }
  }
  EXPECT_GT(degraded_records, 0u);
  std::remove(dump_path.c_str());
}

TEST(ChaosIntegrationTest, PoisonedEpochFallsBackToLastGood) {
  core::NetworkLoadAwareAllocator allocator;
  core::ResourceBroker broker(allocator);
  obs::AuditLog audit_log;
  broker.set_audit_log(&audit_log);
  core::DegradationPolicy degradation;
  degradation.max_epoch_age_s = 120.0;
  broker.set_degradation(degradation);

  const core::AllocationRequest request = make_request();
  const core::RequestProfile profile = core::RequestProfile::of(request);
  const std::size_t n = 8;

  // Epoch 1: everything fresh — becomes the last-good epoch.
  auto good = std::make_shared<const monitor::ClusterSnapshot>(
      testing::make_snapshot(testing::idle_nodes(static_cast<int>(n))));
  monitor::StalenessView fresh;
  fresh.node.assign(n, 1.0);
  fresh.pair.assign(n, 1.0);
  broker.refresh_epoch(good, fresh, profile);
  core::EpochPin pin = broker.pin_epoch();
  const core::BrokerDecision healthy = broker.decide(pin, request);
  ASSERT_EQ(healthy.action, core::BrokerDecision::Action::kAllocate);

  // Epoch 2: every record over budget — all nodes quarantined, the epoch
  // is poisoned, but it is young enough to serve from the last-good one.
  auto poisoned_snap = std::make_shared<monitor::ClusterSnapshot>(*good);
  poisoned_snap->time = good->time + 60.0;
  monitor::StalenessView stale;
  stale.node.assign(n, 1000.0);
  stale.pair.assign(n, 1.0);
  broker.refresh_epoch(poisoned_snap, stale, profile);
  broker.refresh_pin(pin);
  ASSERT_TRUE(pin.prepared->usable.empty());
  const core::BrokerDecision fallback = broker.decide(pin, request);
  EXPECT_EQ(fallback.action, core::BrokerDecision::Action::kAllocate);
  EXPECT_EQ(fallback.allocation.nodes, healthy.allocation.nodes);
  EXPECT_EQ(broker.fallback_decisions(), 1);
  EXPECT_EQ(audit_log.records().back().degradation, "last-good-fallback");

  // Epoch 3: still poisoned, but now the last-good epoch is older than the
  // hard bound — the broker refuses rather than deciding on ancient state.
  auto ancient = std::make_shared<monitor::ClusterSnapshot>(*good);
  ancient->time = good->time + 200.0;
  broker.refresh_epoch(ancient, stale, profile);
  broker.refresh_pin(pin);
  const core::BrokerDecision refused = broker.decide(pin, request);
  EXPECT_EQ(refused.action, core::BrokerDecision::Action::kWait);
  EXPECT_NE(refused.reason.find("refusing"), std::string::npos);
  EXPECT_EQ(broker.stale_refusals(), 1);
  EXPECT_EQ(audit_log.records().back().degradation, "refused-stale");

  // decide_batch refuses the whole batch the same way.
  const std::vector<core::AllocationRequest> batch(3, request);
  const std::vector<core::BrokerDecision> decisions =
      broker.decide_batch(pin, batch);
  ASSERT_EQ(decisions.size(), 3u);
  for (const core::BrokerDecision& d : decisions) {
    EXPECT_EQ(d.action, core::BrokerDecision::Action::kWait);
  }
  EXPECT_EQ(broker.stale_refusals(), 4);
}

TEST(ChaosIntegrationTest, SupervisorKillsAndFlapsKeepMonitorCoherent) {
  exp::Testbed::Options options;
  options.seed = 13;
  options.warmup_seconds = 200.0;
  options.cluster.fast_nodes = 8;
  options.cluster.slow_nodes = 4;
  options.cluster.switches = 2;
  auto testbed = exp::Testbed::make(options);
  sim::Simulation& sim = testbed->sim();

  exp::ChaosHarness harness(
      sim::ChaosSpec::parse(
          "seed=3; kill:master@5; flap:random@20+30; skew:4.5@40"),
      sim, testbed->cluster(), testbed->monitor());
  harness.arm();
  sim.run_until(sim.now() + 120.0);

  // Master killed → the slave noticed and was promoted.
  EXPECT_GE(testbed->monitor().central().promotion_count(), 1);
  EXPECT_FALSE(testbed->monitor().central().abandoned());
  EXPECT_DOUBLE_EQ(harness.clock_skew(), 4.5);
  EXPECT_EQ(harness.engine().fired().size(), 3u);
  // The flapped node came back and the world still assembles.
  EXPECT_EQ(testbed->cluster().alive_nodes().size(), 12u);
  const monitor::ClusterSnapshot snapshot = testbed->monitor().snapshot();
  EXPECT_EQ(snapshot.nodes.size(), 12u);
}

}  // namespace
}  // namespace nlarm
