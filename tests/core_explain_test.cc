#include "core/explain.h"

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "test_helpers.h"

namespace nlarm::core {
namespace {

using nlarm::testing::TestNode;
using nlarm::testing::idle_nodes;
using nlarm::testing::make_snapshot;

AllocationRequest request_for(int nprocs) {
  AllocationRequest req;
  req.nprocs = nprocs;
  req.ppn = 4;
  req.job = JobWeights{0.3, 0.7};
  return req;
}

TEST(ExplainTest, ReportNamesNodesAndPolicy) {
  auto snap = make_snapshot(idle_nodes(6));
  NetworkLoadAwareAllocator allocator;
  const AllocationRequest req = request_for(8);
  const Allocation alloc = allocator.allocate(snap, req);
  const std::string report =
      explain_allocation(snap, req, alloc, &allocator);
  EXPECT_NE(report.find("network-load-aware"), std::string::npos);
  for (cluster::NodeId id : alloc.nodes) {
    EXPECT_NE(report.find(snap.nodes[static_cast<std::size_t>(id)]
                              .spec.hostname),
              std::string::npos);
  }
}

TEST(ExplainTest, IncludesCandidateRankingWhenAllocatorGiven) {
  auto snap = make_snapshot(idle_nodes(5));
  NetworkLoadAwareAllocator allocator;
  const AllocationRequest req = request_for(8);
  const Allocation alloc = allocator.allocate(snap, req);
  const std::string with =
      explain_allocation(snap, req, alloc, &allocator);
  const std::string without = explain_allocation(snap, req, alloc);
  EXPECT_NE(with.find("Candidates: 5 generated"), std::string::npos);
  EXPECT_EQ(without.find("Candidates:"), std::string::npos);
}

TEST(ExplainTest, WorksForBaselinePolicies) {
  auto snap = make_snapshot(idle_nodes(4));
  RandomAllocator allocator(3);
  const AllocationRequest req = request_for(8);
  const Allocation alloc = allocator.allocate(snap, req);
  const std::string report = explain_allocation(snap, req, alloc);
  EXPECT_NE(report.find("'random'"), std::string::npos);
  EXPECT_NE(report.find("Group network"), std::string::npos);
}

TEST(ExplainTest, ShowsMonitoredLoad) {
  std::vector<TestNode> nodes = idle_nodes(3);
  nodes[0].cpu_load = 7.25;
  auto snap = make_snapshot(nodes);
  LoadAwareAllocator allocator;
  const AllocationRequest req = request_for(12);
  const Allocation alloc = allocator.allocate(snap, req);
  const std::string report = explain_allocation(snap, req, alloc);
  EXPECT_NE(report.find("7.25"), std::string::npos);
}

TEST(ExplainTest, SingleNodeAllocationHasNoPairSection) {
  auto snap = make_snapshot(idle_nodes(3));
  NetworkLoadAwareAllocator allocator;
  const AllocationRequest req = request_for(4);  // one node at ppn 4
  const Allocation alloc = allocator.allocate(snap, req);
  const std::string report = explain_allocation(snap, req, alloc);
  EXPECT_EQ(report.find("Group network"), std::string::npos);
  EXPECT_NE(report.find("Group compute"), std::string::npos);
}

}  // namespace
}  // namespace nlarm::core
