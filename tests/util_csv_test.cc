#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/check.h"

namespace nlarm::util {
namespace {

TEST(CsvWriterTest, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_header({"a", "b"});
  writer.write_row(std::vector<std::string>{"1", "2"});
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
  EXPECT_EQ(writer.rows_written(), 1u);
}

TEST(CsvWriterTest, RejectsRowWidthMismatch) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_header({"a", "b"});
  EXPECT_THROW(writer.write_row(std::vector<std::string>{"1"}), CheckError);
}

TEST(CsvWriterTest, RejectsSecondHeader) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_header({"a"});
  EXPECT_THROW(writer.write_header({"b"}), CheckError);
}

TEST(CsvWriterTest, NumericRowsFormatted) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row(std::vector<double>{1.0, 2.5});
  EXPECT_EQ(out.str(), "1,2.5\n");
}

TEST(CsvEscapeTest, PlainFieldUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscapeTest, CommaQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscapeTest, QuoteDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvFormatTest, IntegersStayIntegral) {
  EXPECT_EQ(csv_format(42.0), "42");
  EXPECT_EQ(csv_format(-3.0), "-3");
}

TEST(CsvFormatTest, FractionsKeepPrecision) {
  EXPECT_EQ(csv_format(0.125), "0.125");
}

TEST(CsvReadTest, RoundTrips) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_header({"x", "label"});
  writer.write_row(std::vector<std::string>{"1.5", "with,comma"});
  writer.write_row(std::vector<std::string>{"2", "plain"});

  std::istringstream in(out.str());
  const CsvDocument doc = read_csv(in);
  ASSERT_EQ(doc.header.size(), 2u);
  EXPECT_EQ(doc.header[0], "x");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][1], "with,comma");
  EXPECT_EQ(doc.rows[1][0], "2");
}

TEST(CsvReadTest, ColumnLookup) {
  std::istringstream in("a,b,c\n1,2,3\n");
  const CsvDocument doc = read_csv(in);
  EXPECT_EQ(doc.column("b"), 1u);
  EXPECT_THROW(doc.column("missing"), CheckError);
}

TEST(CsvReadTest, SkipsEmptyLines) {
  std::istringstream in("a\n\n1\n\n2\n");
  const CsvDocument doc = read_csv(in);
  EXPECT_EQ(doc.rows.size(), 2u);
}

TEST(CsvReadTest, HandlesCrLf) {
  std::istringstream in("a,b\r\n1,2\r\n");
  const CsvDocument doc = read_csv(in);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(CsvFileTest, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path.csv"), CheckError);
}

}  // namespace
}  // namespace nlarm::util
