#include "core/network_load.h"

#include <gtest/gtest.h>

#include "test_helpers.h"
#include "util/check.h"

namespace nlarm::core {
namespace {

using nlarm::testing::TestNode;
using nlarm::testing::idle_nodes;
using nlarm::testing::make_snapshot;
using nlarm::testing::set_pair;

TEST(PairMetricsTest, ComplementIsPeakMinusAvailable) {
  auto snap = make_snapshot(idle_nodes(2), /*lat=*/100.0, /*bw=*/880.0,
                            /*peak=*/1000.0);
  const PairMetrics m = pair_metrics(snap, 0, 1);
  EXPECT_DOUBLE_EQ(m.latency_us, 100.0);
  EXPECT_DOUBLE_EQ(m.bandwidth_complement_mbps, 120.0);
}

TEST(PairMetricsTest, UnmeasuredPairSignalled) {
  auto snap = make_snapshot(idle_nodes(2));
  snap.net.bandwidth_mbps[0][1] = -1.0;
  const PairMetrics m = pair_metrics(snap, 0, 1);
  EXPECT_LT(m.bandwidth_complement_mbps, 0.0);
}

TEST(PairMetricsTest, SelfPairRejected) {
  auto snap = make_snapshot(idle_nodes(2));
  EXPECT_THROW(pair_metrics(snap, 1, 1), util::CheckError);
}

TEST(NetworkLoadTest, MatrixIsSymmetricZeroDiagonal) {
  auto snap = make_snapshot(idle_nodes(4));
  set_pair(snap, 0, 1, 300.0, 500.0);
  const std::vector<cluster::NodeId> nodes{0, 1, 2, 3};
  const auto nl = network_loads(snap, nodes, NetworkLoadWeights{});
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(nl[i][i], 0.0);
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(nl[i][j], nl[j][i]);
    }
  }
}

TEST(NetworkLoadTest, CongestedPairCostsMore) {
  auto snap = make_snapshot(idle_nodes(3), 100.0, 950.0, 1000.0);
  set_pair(snap, 0, 1, 600.0, 200.0);  // slow, congested pair
  const std::vector<cluster::NodeId> nodes{0, 1, 2};
  const auto nl = network_loads(snap, nodes, NetworkLoadWeights{});
  EXPECT_GT(nl[0][1], nl[0][2]);
  EXPECT_GT(nl[0][1], nl[1][2]);
}

TEST(NetworkLoadTest, LatencyWeightIsolatesLatency) {
  auto snap = make_snapshot(idle_nodes(3), 100.0, 900.0, 1000.0);
  set_pair(snap, 0, 1, 500.0, 900.0);  // high latency, same bandwidth
  set_pair(snap, 0, 2, 100.0, 300.0);  // low latency, poor bandwidth
  const std::vector<cluster::NodeId> nodes{0, 1, 2};
  const auto lat_only =
      network_loads(snap, nodes, NetworkLoadWeights{1.0, 0.0});
  EXPECT_GT(lat_only[0][1], lat_only[0][2]);
  const auto bw_only =
      network_loads(snap, nodes, NetworkLoadWeights{0.0, 1.0});
  EXPECT_LT(bw_only[0][1], bw_only[0][2]);
}

TEST(NetworkLoadTest, UniformNetworkUniformLoads) {
  auto snap = make_snapshot(idle_nodes(4));
  const std::vector<cluster::NodeId> nodes{0, 1, 2, 3};
  const auto nl = network_loads(snap, nodes, NetworkLoadWeights{});
  const double reference = nl[0][1];
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_NEAR(nl[i][j], reference, 1e-12);
    }
  }
}

TEST(NetworkLoadTest, MissingMeasurementsFilledWithMean) {
  auto snap = make_snapshot(idle_nodes(3), 100.0, 900.0, 1000.0);
  // Pair (1,2) never measured.
  set_pair(snap, 1, 2, -1.0, -1.0);
  snap.net.peak_mbps[1][2] = -1.0;
  snap.net.peak_mbps[2][1] = -1.0;
  const std::vector<cluster::NodeId> nodes{0, 1, 2};
  const auto nl = network_loads(snap, nodes, NetworkLoadWeights{});
  // Filled with the mean of measured pairs → equal to them.
  EXPECT_NEAR(nl[1][2], nl[0][1], 1e-12);
}

TEST(NetworkLoadTest, FullyUnmeasuredDegradesGracefully) {
  auto snap = make_snapshot(idle_nodes(3), -1.0, -1.0, -1.0);
  snap.net.peak_mbps.fill(-1.0);
  const std::vector<cluster::NodeId> nodes{0, 1, 2};
  const auto nl = network_loads(snap, nodes, NetworkLoadWeights{});
  // All pairs equal: the allocator falls back to compute load only.
  EXPECT_NEAR(nl[0][1], nl[0][2], 1e-12);
  EXPECT_NEAR(nl[0][1], nl[1][2], 1e-12);
}

TEST(NetworkLoadTest, SingleNodeHasNoNetworkLoad) {
  auto snap = make_snapshot(idle_nodes(1));
  const std::vector<cluster::NodeId> nodes{0};
  const auto nl = network_loads(snap, nodes, NetworkLoadWeights{});
  ASSERT_EQ(nl.size(), 1u);
  EXPECT_DOUBLE_EQ(nl[0][0], 0.0);
}

TEST(GroupNetworkLoadTest, AveragesOverPairs) {
  std::vector<std::vector<double>> nl{{0.0, 2.0, 4.0},
                                      {2.0, 0.0, 6.0},
                                      {4.0, 6.0, 0.0}};
  const std::vector<std::size_t> all{0, 1, 2};
  EXPECT_DOUBLE_EQ(group_network_load(nl, all), 4.0);  // (2+4+6)/3
  const std::vector<std::size_t> pair{0, 2};
  EXPECT_DOUBLE_EQ(group_network_load(nl, pair), 4.0);
  const std::vector<std::size_t> single{1};
  EXPECT_DOUBLE_EQ(group_network_load(nl, single), 0.0);
}

TEST(NetworkLoadWeightsTest, Validation) {
  NetworkLoadWeights w{-0.1, 0.5};
  EXPECT_THROW(w.validate(), util::CheckError);
  NetworkLoadWeights zero{0.0, 0.0};
  EXPECT_THROW(zero.validate(), util::CheckError);
  EXPECT_NO_THROW(NetworkLoadWeights{}.validate());
}

}  // namespace
}  // namespace nlarm::core
