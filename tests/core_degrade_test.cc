#include "core/degrade.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "test_helpers.h"
#include "util/check.h"

namespace nlarm::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

monitor::StalenessView fresh_view(std::size_t n) {
  monitor::StalenessView view;
  view.now = 1000.0;
  view.node.assign(n, 1.0);
  view.pair.assign(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) view.pair[i][i] = 0.0;
  return view;
}

std::shared_ptr<const monitor::ClusterSnapshot> snap4() {
  return std::make_shared<const monitor::ClusterSnapshot>(
      testing::make_snapshot(testing::idle_nodes(4)));
}

TEST(DegradationPolicyTest, ValidatesBounds) {
  DegradationPolicy policy;
  policy.validate();  // defaults are sane

  DegradationPolicy bad = policy;
  bad.node_readmit_s = bad.node_staleness_budget_s + 1.0;
  EXPECT_THROW(bad.validate(), util::CheckError);
  bad = policy;
  bad.pair_penalty = 0.5;
  EXPECT_THROW(bad.validate(), util::CheckError);
  bad = policy;
  bad.max_epoch_age_s = 0.0;
  EXPECT_THROW(bad.validate(), util::CheckError);
}

TEST(DegraderTest, FreshInputsPassThroughWithoutCopy) {
  Degrader degrader(DegradationPolicy{});
  auto snapshot = snap4();
  const DegradationOutcome out = degrader.apply(snapshot, fresh_view(4));
  EXPECT_FALSE(out.degraded);
  EXPECT_EQ(out.quarantined, 0u);
  EXPECT_EQ(out.pair_fallbacks, 0u);
  EXPECT_TRUE(out.changed_pairs.empty());
  // Same object, not a copy — fresh epochs stay bit-identical for free.
  EXPECT_EQ(out.snapshot.get(), snapshot.get());
}

TEST(DegraderTest, QuarantinesOverBudgetNodesWithHysteresis) {
  DegradationPolicy policy;
  policy.node_staleness_budget_s = 30.0;
  policy.node_readmit_s = 15.0;
  Degrader degrader(policy);
  auto snapshot = snap4();

  monitor::StalenessView view = fresh_view(4);
  view.node[2] = 31.0;  // over budget
  DegradationOutcome out = degrader.apply(snapshot, view);
  EXPECT_TRUE(out.degraded);
  EXPECT_TRUE(out.quarantine_changed);
  EXPECT_EQ(out.quarantined, 1u);
  ASSERT_NE(out.snapshot.get(), snapshot.get());
  EXPECT_FALSE(out.snapshot->livehosts[2]);
  EXPECT_TRUE(out.snapshot->livehosts[1]);

  // Back under budget but above the readmit threshold: still quarantined
  // (hysteresis), and the membership did not change.
  view.node[2] = 20.0;
  out = degrader.apply(snapshot, view);
  EXPECT_EQ(out.quarantined, 1u);
  EXPECT_FALSE(out.quarantine_changed);
  EXPECT_FALSE(out.snapshot->livehosts[2]);

  // Below the readmit threshold: back in.
  view.node[2] = 10.0;
  out = degrader.apply(snapshot, view);
  EXPECT_EQ(out.quarantined, 0u);
  EXPECT_TRUE(out.quarantine_changed);
  EXPECT_FALSE(out.degraded);
  EXPECT_EQ(out.snapshot.get(), snapshot.get());
}

TEST(DegraderTest, NeverWrittenNodesAreNotQuarantined) {
  // A node whose record the monitor already invalidated (or that is dead)
  // carries no quarantine state: rewriting it would be a no-op.
  Degrader degrader(DegradationPolicy{});
  auto raw = testing::make_snapshot(testing::idle_nodes(4));
  raw.nodes[1].valid = false;
  raw.livehosts[3] = false;
  auto snapshot = std::make_shared<const monitor::ClusterSnapshot>(raw);

  monitor::StalenessView view = fresh_view(4);
  view.node[1] = kInf;
  view.node[3] = kInf;
  const DegradationOutcome out = degrader.apply(snapshot, view);
  EXPECT_EQ(out.quarantined, 0u);
  EXPECT_FALSE(out.quarantine_changed);
}

TEST(DegraderTest, StalePairsFallBackToPenalizedRunningMean) {
  DegradationPolicy policy;
  policy.pair_staleness_budget_s = 600.0;
  policy.pair_penalty = 1.25;
  Degrader degrader(policy);

  auto raw = testing::make_snapshot(testing::idle_nodes(4), /*lat_us=*/100.0,
                                    /*bw_mbps=*/900.0, /*peak_mbps=*/1000.0);
  // Spot value drifted away from the 5-min mean; the fallback must serve
  // the mean with the penalty, not the stale spot value.
  raw.net.latency_us[0][1] = raw.net.latency_us[1][0] = 50.0;
  auto snapshot = std::make_shared<const monitor::ClusterSnapshot>(raw);

  monitor::StalenessView view = fresh_view(4);
  view.pair[0][1] = 700.0;  // one direction stale...
  view.pair[1][0] = 650.0;  // ...the fresher one still over budget
  DegradationOutcome out = degrader.apply(snapshot, view);
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.pair_fallbacks, 1u);
  ASSERT_EQ(out.changed_pairs.size(), 1u);
  EXPECT_EQ(out.changed_pairs[0], std::make_pair(cluster::NodeId(0),
                                                 cluster::NodeId(1)));
  // latency_5min_us is 100 → 100 * 1.25, both directions.
  EXPECT_DOUBLE_EQ(out.snapshot->net.latency_us[0][1], 125.0);
  EXPECT_DOUBLE_EQ(out.snapshot->net.latency_us[1][0], 125.0);
  // bandwidth deficit (1000-900) is amplified: 1000 - 100*1.25.
  EXPECT_DOUBLE_EQ(out.snapshot->net.bandwidth_mbps[0][1], 875.0);
  // Untouched pairs keep their values.
  EXPECT_DOUBLE_EQ(out.snapshot->net.latency_us[2][3], 100.0);

  // One fresh direction (daemons write both orders together) rescues the
  // pair: min() of the directions decides.
  view.pair[1][0] = 10.0;
  out = degrader.apply(snapshot, view);
  EXPECT_EQ(out.pair_fallbacks, 0u);
  // Leaving fallback is a flip too: the consumer must re-patch the pair
  // back to its true values.
  ASSERT_EQ(out.changed_pairs.size(), 1u);
  EXPECT_FALSE(out.degraded);
}

TEST(DegraderTest, NeverMeasuredPairsStayOut) {
  Degrader degrader(DegradationPolicy{});
  auto snapshot = snap4();
  monitor::StalenessView view = fresh_view(4);
  view.pair[0][1] = kInf;
  view.pair[1][0] = kInf;
  const DegradationOutcome out = degrader.apply(snapshot, view);
  EXPECT_EQ(out.pair_fallbacks, 0u);
  EXPECT_FALSE(out.degraded);
}

TEST(DegraderTest, UnchangedStateReportsNoFlips) {
  Degrader degrader(DegradationPolicy{});
  auto snapshot = snap4();
  monitor::StalenessView view = fresh_view(4);
  view.pair[0][1] = view.pair[1][0] = 700.0;
  DegradationOutcome out = degrader.apply(snapshot, view);
  EXPECT_EQ(out.changed_pairs.size(), 1u);
  // Same staleness again: the pair is already in fallback, nothing flipped.
  out = degrader.apply(snapshot, view);
  EXPECT_TRUE(out.changed_pairs.empty());
  EXPECT_EQ(out.pair_fallbacks, 1u);
  EXPECT_TRUE(out.degraded);
}

TEST(DegraderTest, RejectsMismatchedView) {
  Degrader degrader(DegradationPolicy{});
  EXPECT_THROW(degrader.apply(snap4(), fresh_view(3)), util::CheckError);
}

}  // namespace
}  // namespace nlarm::core
