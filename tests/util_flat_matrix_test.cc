#include "util/flat_matrix.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.h"

namespace nlarm::util {
namespace {

TEST(FlatMatrixTest, FilledConstruction) {
  FlatMatrix m(3, 2.5);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.value_count(), 9u);
  EXPECT_FALSE(m.empty());
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(m[i][j], 2.5);
    }
  }
}

TEST(FlatMatrixTest, DefaultIsEmpty) {
  FlatMatrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.value_count(), 0u);
}

TEST(FlatMatrixTest, ConvertsFromNestedVectors) {
  const std::vector<std::vector<double>> rows{
      {0.0, 1.0, 2.0}, {1.0, 0.0, 3.0}, {2.0, 3.0, 0.0}};
  const FlatMatrix m = rows;  // implicit conversion on purpose
  ASSERT_EQ(m.size(), 3u);
  EXPECT_DOUBLE_EQ(m[0][1], 1.0);
  EXPECT_DOUBLE_EQ(m[1][2], 3.0);
  EXPECT_DOUBLE_EQ(m[2][0], 2.0);
}

TEST(FlatMatrixTest, RaggedRowsRejected) {
  const std::vector<std::vector<double>> ragged{{0.0, 1.0}, {1.0}};
  EXPECT_THROW(FlatMatrix{ragged}, CheckError);
}

TEST(FlatMatrixTest, InitializerListConstruction) {
  const FlatMatrix m{{0.0, 4.0}, {4.0, 0.0}};
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m[0][1], 4.0);
  EXPECT_DOUBLE_EQ(m[1][0], 4.0);
}

TEST(FlatMatrixTest, RowsAreContiguous) {
  FlatMatrix m(4, 0.0);
  m[2][3] = 7.0;
  // Row-major layout: element (i, j) lives at data()[i*n + j].
  EXPECT_DOUBLE_EQ(m.data()[2 * 4 + 3], 7.0);
  EXPECT_EQ(m.row(2).size(), 4u);
  EXPECT_DOUBLE_EQ(m.row(2)[3], 7.0);
}

TEST(FlatMatrixTest, CheckedAccess) {
  FlatMatrix m(2, 1.0);
  m.at(0, 1) = 5.0;
  EXPECT_DOUBLE_EQ(m.at(0, 1), 5.0);
  EXPECT_THROW(m.at(2, 0), CheckError);
  EXPECT_THROW(m.at(0, 2), CheckError);
  const FlatMatrix& cm = m;
  EXPECT_THROW(cm.at(5, 5), CheckError);
}

TEST(FlatMatrixTest, AssignReshapesAndRefills) {
  FlatMatrix m(3, 9.0);
  m.assign(2, 1.5);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.value_count(), 4u);
  EXPECT_DOUBLE_EQ(m[1][1], 1.5);
}

TEST(FlatMatrixTest, FillAndZeroDiagonal) {
  FlatMatrix m(3, 0.0);
  m.fill(2.0);
  m.zero_diagonal();
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(m[i][j], i == j ? 0.0 : 2.0);
    }
  }
}

TEST(FlatMatrixTest, Equality) {
  FlatMatrix a(2, 1.0);
  FlatMatrix b(2, 1.0);
  EXPECT_EQ(a, b);
  b[0][1] = 2.0;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace nlarm::util
