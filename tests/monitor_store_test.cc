#include "monitor/store.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"

namespace nlarm::monitor {
namespace {

NodeSnapshot make_record(cluster::NodeId id, double load = 1.0) {
  NodeSnapshot record;
  record.spec.id = id;
  record.spec.hostname = cluster::default_hostname(id);
  record.spec.core_count = 8;
  record.spec.cpu_freq_ghz = 3.0;
  record.spec.total_mem_gb = 16.0;
  record.cpu_load = load;
  record.cpu_load_avg = {load, load, load};
  return record;
}

TEST(MonitorStoreTest, FreshStoreHasNoRecords) {
  MonitorStore store(3);
  EXPECT_FALSE(store.node_record(0).valid);
  EXPECT_TRUE(std::isinf(store.node_staleness(100.0, 0)));
  EXPECT_TRUE(std::isinf(store.pair_staleness(100.0, 0, 1)));
  EXPECT_LT(store.livehosts_time(), 0.0);
}

TEST(MonitorStoreTest, NodeRecordRoundTrips) {
  MonitorStore store(3);
  store.write_node_record(10.0, make_record(1, 2.5));
  const NodeSnapshot& record = store.node_record(1);
  EXPECT_TRUE(record.valid);
  EXPECT_DOUBLE_EQ(record.cpu_load, 2.5);
  EXPECT_DOUBLE_EQ(record.sample_time, 10.0);
  EXPECT_DOUBLE_EQ(store.node_staleness(14.0, 1), 4.0);
}

TEST(MonitorStoreTest, LivehostsRoundTrips) {
  MonitorStore store(3);
  store.write_livehosts(5.0, {true, false, true});
  EXPECT_TRUE(store.livehosts()[0]);
  EXPECT_FALSE(store.livehosts()[1]);
  EXPECT_DOUBLE_EQ(store.livehosts_time(), 5.0);
}

TEST(MonitorStoreTest, LivehostsSizeMismatchRejected) {
  MonitorStore store(3);
  EXPECT_THROW(store.write_livehosts(1.0, {true}), util::CheckError);
}

TEST(MonitorStoreTest, PairMeasurementsStored) {
  MonitorStore store(3);
  store.write_latency(10.0, 0, 1, 100.0, 120.0);
  store.write_bandwidth(12.0, 0, 1, 800.0, 1000.0);
  const ClusterSnapshot snap = store.assemble(20.0);
  EXPECT_DOUBLE_EQ(snap.net.latency_us[0][1], 100.0);
  EXPECT_DOUBLE_EQ(snap.net.latency_5min_us[0][1], 120.0);
  EXPECT_DOUBLE_EQ(snap.net.bandwidth_mbps[0][1], 800.0);
  EXPECT_DOUBLE_EQ(snap.net.peak_mbps[0][1], 1000.0);
  // Unmeasured pair stays at the "never measured" sentinel.
  EXPECT_LT(snap.net.latency_us[1][2], 0.0);
  EXPECT_DOUBLE_EQ(store.pair_staleness(20.0, 0, 1), 8.0);
}

TEST(MonitorStoreTest, SelfPairRejected) {
  MonitorStore store(3);
  EXPECT_THROW(store.write_latency(1.0, 2, 2, 1.0, 1.0), util::CheckError);
  EXPECT_THROW(store.write_bandwidth(1.0, 0, 0, 1.0, 1.0), util::CheckError);
}

TEST(MonitorStoreTest, AssembleReflectsUsability) {
  MonitorStore store(3);
  store.write_livehosts(1.0, {true, true, false});
  store.write_node_record(1.0, make_record(0));
  store.write_node_record(1.0, make_record(2));
  const ClusterSnapshot snap = store.assemble(2.0);
  // Node 0: live + record → usable. Node 1: live, no record. Node 2: record
  // but not live.
  EXPECT_EQ(snap.usable_nodes(), (std::vector<cluster::NodeId>{0}));
  EXPECT_DOUBLE_EQ(snap.time, 2.0);
}

TEST(MonitorStoreTest, OutOfRangeNodesRejected) {
  MonitorStore store(2);
  EXPECT_THROW(store.node_record(5), util::CheckError);
  EXPECT_THROW(store.write_latency(1.0, 0, 7, 1.0, 1.0), util::CheckError);
  EXPECT_THROW(store.write_node_record(1.0, make_record(9)),
               util::CheckError);
}

TEST(SnapshotTest, GroundTruthSnapshotIsComplete) {
  cluster::Cluster c = cluster::make_uniform_cluster(4, 2);
  c.mutable_node(1).dyn.cpu_load = 3.0;
  c.mutable_node(2).dyn.alive = false;
  net::FlowSet flows;
  net::NetworkModel network(c, flows);
  const ClusterSnapshot snap = make_ground_truth_snapshot(c, network, 50.0);
  EXPECT_EQ(snap.size(), 4);
  EXPECT_DOUBLE_EQ(snap.nodes[1].cpu_load, 3.0);
  EXPECT_DOUBLE_EQ(snap.nodes[1].cpu_load_avg.fifteen_min, 3.0);
  EXPECT_FALSE(snap.livehosts[2]);
  EXPECT_EQ(snap.usable_nodes(), (std::vector<cluster::NodeId>{0, 1, 3}));
  EXPECT_GT(snap.net.bandwidth_mbps[0][1], 0.0);
  EXPECT_DOUBLE_EQ(snap.net.bandwidth_mbps[0][0], 0.0);
}

TEST(SnapshotTest, MakeMatrixZeroDiagonal) {
  const auto m = make_matrix(3, 7.0);
  EXPECT_DOUBLE_EQ(m[0][0], 0.0);
  EXPECT_DOUBLE_EQ(m[0][1], 7.0);
}

TEST(SnapshotTest, MemAvailableComputed) {
  NodeSnapshot record = make_record(0);
  record.spec.total_mem_gb = 16.0;
  record.mem_used_gb = 6.0;
  EXPECT_DOUBLE_EQ(record.mem_available_gb(), 10.0);
  record.mem_used_gb = 20.0;
  EXPECT_DOUBLE_EQ(record.mem_available_gb(), 0.0);
}


TEST(SnapshotDeltaTest, FreshStoreDrainsEmptyDelta) {
  MonitorStore store(4);
  const SnapshotDelta delta = store.drain_delta();
  EXPECT_TRUE(delta.empty());
  EXPECT_FALSE(delta.requires_full_rebuild());
  EXPECT_EQ(delta.base_version, delta.version);
}

TEST(SnapshotDeltaTest, WritesAccumulateIntoOneDelta) {
  MonitorStore store(4);
  store.write_node_record(1.0, make_record(2, 1.5));
  store.write_node_record(2.0, make_record(0, 0.5));
  store.write_node_record(3.0, make_record(2, 2.5));  // dedup with first
  store.write_latency(4.0, 3, 1, 50.0, 60.0);
  store.write_bandwidth(5.0, 1, 3, 800.0, 1000.0);  // same pair, both orders
  store.write_latency(6.0, 0, 2, 70.0, 80.0);

  const SnapshotDelta delta = store.drain_delta();
  EXPECT_EQ(delta.dirty_nodes, (std::vector<cluster::NodeId>{0, 2}));
  ASSERT_EQ(delta.dirty_pairs.size(), 2u);
  EXPECT_EQ(delta.dirty_pairs[0], (std::pair<cluster::NodeId, cluster::NodeId>{0, 2}));
  EXPECT_EQ(delta.dirty_pairs[1], (std::pair<cluster::NodeId, cluster::NodeId>{1, 3}));
  EXPECT_FALSE(delta.livehosts_changed);
  EXPECT_FALSE(delta.full);
}

TEST(SnapshotDeltaTest, DrainSpansVersionsAndResets) {
  MonitorStore store(3);
  const std::uint64_t v0 = store.snapshot_version();
  store.write_node_record(1.0, make_record(1));
  const SnapshotDelta first = store.drain_delta();
  EXPECT_EQ(first.base_version, v0);
  EXPECT_EQ(first.version, store.snapshot_version());
  EXPECT_EQ(first.dirty_nodes.size(), 1u);

  // The second drain starts where the first ended and is empty.
  const SnapshotDelta second = store.drain_delta();
  EXPECT_EQ(second.base_version, first.version);
  EXPECT_TRUE(second.empty());
}

TEST(SnapshotDeltaTest, LivehostsChangeOnlyWhenVectorChanges) {
  MonitorStore store(3);
  store.write_livehosts(1.0, {true, true, false});
  EXPECT_TRUE(store.drain_delta().livehosts_changed);

  // The periodic rewrite of an identical view is a version bump but not a
  // livehosts change.
  store.write_livehosts(2.0, {true, true, false});
  const SnapshotDelta unchanged = store.drain_delta();
  EXPECT_FALSE(unchanged.livehosts_changed);
  EXPECT_NE(unchanged.base_version, unchanged.version);

  store.write_livehosts(3.0, {true, true, true});
  EXPECT_TRUE(store.drain_delta().livehosts_changed);
}

TEST(SnapshotDeltaTest, TrackerFullFlagAndBounds) {
  DeltaTracker tracker(3);
  tracker.mark_full();
  const SnapshotDelta delta = tracker.drain();
  EXPECT_TRUE(delta.full);
  EXPECT_TRUE(delta.requires_full_rebuild());
  EXPECT_FALSE(tracker.drain().full);  // drained flags reset

  EXPECT_THROW(tracker.mark_node(3), util::CheckError);
  EXPECT_THROW(tracker.mark_pair(0, 0), util::CheckError);
  EXPECT_THROW(tracker.mark_pair(0, 5), util::CheckError);
}

}  // namespace
}  // namespace nlarm::monitor
