#include "mpisim/profiler.h"

#include <gtest/gtest.h>

#include "apps/minife.h"
#include "apps/minimd.h"
#include "apps/synthetic.h"
#include "cluster/cluster.h"
#include "net/flows.h"
#include "net/network_model.h"

namespace nlarm::mpisim {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  ProfilerTest()
      : cluster_(cluster::make_uniform_cluster(8, 2, 12, 4.6)),
        network_(cluster_, flows_),
        profiler_(cluster_, network_) {}

  Placement spread(int nranks, int ppn) {
    std::vector<cluster::NodeId> rank_nodes;
    for (int r = 0; r < nranks; ++r) {
      rank_nodes.push_back(static_cast<cluster::NodeId>(r / ppn));
    }
    return Placement(std::move(rank_nodes));
  }

  cluster::Cluster cluster_;
  net::FlowSet flows_;
  net::NetworkModel network_;
  JobProfiler profiler_;
};

TEST_F(ProfilerTest, CommBoundAppGetsNetworkWeights) {
  const auto app = apps::make_comm_bound_profile(16);
  const auto report = profiler_.profile(app, spread(16, 4));
  EXPECT_GT(report.comm_fraction, 0.6);
  EXPECT_GT(report.job_weights.beta, report.job_weights.alpha);
  EXPECT_NO_THROW(report.job_weights.validate());
  // network-intensive Eq. 1 profile: high node-flow weight.
  EXPECT_GT(report.compute_weights.net_flow,
            core::ComputeLoadWeights::paper_defaults().net_flow);
}

TEST_F(ProfilerTest, ComputeBoundAppGetsComputeWeights) {
  const auto app = apps::make_compute_bound_profile(16);
  const auto report = profiler_.profile(app, spread(16, 4));
  EXPECT_LT(report.comm_fraction, 0.3);
  EXPECT_GT(report.job_weights.alpha, report.job_weights.beta);
  EXPECT_GT(report.compute_weights.cpu_load,
            core::ComputeLoadWeights::paper_defaults().cpu_load);
}

TEST_F(ProfilerTest, WeightsNeverDegenerate) {
  // Even a 100%-compute profile keeps β ≥ 0.05 (never network-blind).
  apps::SyntheticParams params;
  params.nranks = 8;
  params.flops_per_rank = 1e10;
  const auto app = apps::make_synthetic_profile(params);
  const auto report = profiler_.profile(app, spread(8, 4));
  EXPECT_GE(report.job_weights.beta, 0.05);
  EXPECT_GE(report.job_weights.alpha, 0.05);
}

TEST_F(ProfilerTest, MessageSizeDrivesLatencyVsBandwidth) {
  // Tiny allreduces only → latency-sensitive Eq. 2 weights.
  apps::SyntheticParams small;
  small.nranks = 8;
  small.flops_per_rank = 1e6;
  small.allreduce_bytes = 8.0;
  const auto small_report =
      profiler_.profile(apps::make_synthetic_profile(small), spread(8, 4));
  EXPECT_GT(small_report.network_weights.latency,
            small_report.network_weights.bandwidth);

  // Huge halos → bandwidth-sensitive.
  apps::SyntheticParams big;
  big.nranks = 8;
  big.flops_per_rank = 1e6;
  big.halo_bytes_per_face = 4e6;
  const auto big_report =
      profiler_.profile(apps::make_synthetic_profile(big), spread(8, 4));
  EXPECT_GT(big_report.network_weights.bandwidth,
            big_report.network_weights.latency);
}

TEST_F(ProfilerTest, MeanMessageBytesWeighted) {
  apps::SyntheticParams params;
  params.nranks = 8;
  params.flops_per_rank = 1e6;
  params.halo_bytes_per_face = 1000.0;
  const auto app = apps::make_synthetic_profile(params);
  EXPECT_DOUBLE_EQ(mean_message_bytes(app), 1000.0);
  // Pure compute → no messages.
  apps::SyntheticParams compute;
  compute.nranks = 8;
  compute.flops_per_rank = 1e6;
  EXPECT_DOUBLE_EQ(
      mean_message_bytes(apps::make_synthetic_profile(compute)), 0.0);
}

TEST_F(ProfilerTest, PaperAppsLandInTheirBands) {
  apps::MiniMdParams md;
  md.size = 16;
  md.nranks = 32;
  apps::MiniFeParams fe;
  fe.nx = 144;
  fe.nranks = 32;
  cluster::Cluster big = cluster::make_uniform_cluster(8, 2, 12, 4.6);
  net::FlowSet flows;
  net::NetworkModel network(big, flows);
  JobProfiler profiler(big, network);
  const auto md_report =
      profiler.profile(apps::make_minimd_profile(md), spread(32, 4));
  const auto fe_report =
      profiler.profile(apps::make_minife_profile(fe), spread(32, 4));
  // The derived β ordering matches the paper's empirical α/β choice
  // (miniMD more communication-weighted than miniFE).
  EXPECT_GT(md_report.job_weights.beta, fe_report.job_weights.beta);
}

}  // namespace
}  // namespace nlarm::mpisim
