#include "util/check.h"

#include <gtest/gtest.h>

namespace nlarm::util {
namespace {

TEST(CheckTest, PassingCheckDoesNothing) {
  EXPECT_NO_THROW(NLARM_CHECK(1 + 1 == 2) << "never evaluated");
}

TEST(CheckTest, FailingCheckThrowsCheckError) {
  EXPECT_THROW(NLARM_CHECK(false) << "boom", CheckError);
}

TEST(CheckTest, MessageContainsExpressionAndDetail) {
  try {
    NLARM_CHECK(2 > 3) << "detail " << 42;
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos) << what;
    EXPECT_NE(what.find("detail 42"), std::string::npos) << what;
    EXPECT_NE(what.find("util_check_test.cc"), std::string::npos) << what;
  }
}

TEST(CheckTest, MessageIsOptional) {
  try {
    NLARM_CHECK(false);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("false"), std::string::npos);
  }
}

TEST(CheckTest, StreamedMessageNotEvaluatedOnPass) {
  int calls = 0;
  auto count = [&]() {
    ++calls;
    return 1;
  };
  NLARM_CHECK(true) << count();
  EXPECT_EQ(calls, 0);
}

TEST(CheckTest, CheckErrorIsLogicError) {
  EXPECT_THROW(NLARM_CHECK(false), std::logic_error);
}

}  // namespace
}  // namespace nlarm::util
