#include "monitor/forecast.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.h"
#include "util/check.h"

namespace nlarm::monitor {
namespace {

TEST(PredictorTest, LastValueTracksLastObservation) {
  LastValuePredictor p;
  p.observe(0.0, 3.0);
  p.observe(1.0, 7.0);
  EXPECT_DOUBLE_EQ(p.predict(), 7.0);
}

TEST(PredictorTest, SlidingMeanAveragesWindow) {
  SlidingMeanPredictor p(3);
  p.observe(0, 1.0);
  p.observe(1, 2.0);
  p.observe(2, 3.0);
  EXPECT_DOUBLE_EQ(p.predict(), 2.0);
  p.observe(3, 10.0);  // evicts the 1.0
  EXPECT_DOUBLE_EQ(p.predict(), 5.0);
}

TEST(PredictorTest, SlidingMeanEmptyWindowRejected) {
  EXPECT_THROW(SlidingMeanPredictor(0), util::CheckError);
}

TEST(PredictorTest, EwmaConvergesToConstant) {
  EwmaPredictor p(0.5);
  p.observe(0, 10.0);
  for (int i = 1; i < 50; ++i) p.observe(i, 4.0);
  EXPECT_NEAR(p.predict(), 4.0, 1e-6);
}

TEST(PredictorTest, EwmaAlphaValidated) {
  EXPECT_THROW(EwmaPredictor(0.0), util::CheckError);
  EXPECT_THROW(EwmaPredictor(1.5), util::CheckError);
}

TEST(PredictorTest, Ar1LearnsPersistence) {
  // Strongly autocorrelated alternating-decay series: AR(1) should predict
  // better than the global mean.
  Ar1Predictor p;
  sim::Rng rng(1);
  double x = 5.0;
  for (int i = 0; i < 500; ++i) {
    x = 2.0 + 0.9 * (x - 2.0) + rng.normal(0.0, 0.1);
    p.observe(i, x);
  }
  // Next value should be near 2 + 0.9(x−2).
  const double expected = 2.0 + 0.9 * (x - 2.0);
  EXPECT_NEAR(p.predict(), expected, 0.5);
}

TEST(PredictorTest, Ar1ConstantSeriesPredictsConstant) {
  Ar1Predictor p;
  for (int i = 0; i < 20; ++i) p.observe(i, 3.0);
  EXPECT_NEAR(p.predict(), 3.0, 1e-9);
}

TEST(AdaptiveForecasterTest, NoObservationsForecastZero) {
  AdaptiveForecaster f;
  EXPECT_DOUBLE_EQ(f.forecast(), 0.0);
}

TEST(AdaptiveForecasterTest, ConstantSeriesForecastExact) {
  AdaptiveForecaster f;
  for (int i = 0; i < 50; ++i) f.observe(i, 2.5);
  EXPECT_NEAR(f.forecast(), 2.5, 1e-9);
  EXPECT_NEAR(f.best_error(), 0.0, 1e-9);
}

TEST(AdaptiveForecasterTest, PicksGoodPredictorForNoisySeries) {
  // White noise around a mean: sliding mean / EWMA should beat last-value.
  AdaptiveForecaster f;
  sim::Rng rng(2);
  for (int i = 0; i < 400; ++i) {
    f.observe(i, 5.0 + rng.normal(0.0, 1.0));
  }
  EXPECT_NE(f.best_predictor(), "last");
  EXPECT_NEAR(f.forecast(), 5.0, 1.0);
}

TEST(AdaptiveForecasterTest, PicksLastForRandomWalk) {
  // Random walk: last value is the optimal predictor.
  AdaptiveForecaster f;
  sim::Rng rng(3);
  double x = 0.0;
  for (int i = 0; i < 400; ++i) {
    x += rng.normal(0.0, 1.0);
    f.observe(i, x);
  }
  // last or ar1 (φ→1 mimics last); both acceptable, sliding mean is not.
  EXPECT_NE(f.best_predictor(), "sliding_mean");
  EXPECT_NEAR(f.forecast(), x, 3.0);
}

TEST(ForecastingStoreTest, ForecastReplacesInstantaneous) {
  MonitorStore store(2);
  NodeSnapshot record;
  record.spec.id = 0;
  record.spec.core_count = 8;
  record.spec.cpu_freq_ghz = 3.0;
  record.spec.total_mem_gb = 16.0;

  ForecastingStore forecast(store);
  // Feed a rising load series for node 0.
  for (int t = 0; t < 30; ++t) {
    record.cpu_load = 1.0 + 0.1 * t;
    record.cpu_load_avg = {record.cpu_load, record.cpu_load,
                           record.cpu_load};
    store.write_node_record(t, record);
    forecast.feed(t);
  }
  const ClusterSnapshot snap = forecast.assemble_forecast(30.0);
  // Forecast should be near the latest values (~3.9), not near zero.
  EXPECT_GT(snap.nodes[0].cpu_load, 3.0);
  EXPECT_DOUBLE_EQ(snap.nodes[0].cpu_load_avg.one_min,
                   snap.nodes[0].cpu_load);
  // Node 1 never reported: untouched (invalid).
  EXPECT_FALSE(snap.nodes[1].valid);
}

TEST(ForecastingStoreTest, ForecastsAreClamped) {
  MonitorStore store(1);
  NodeSnapshot record;
  record.spec.id = 0;
  record.spec.core_count = 8;
  record.spec.cpu_freq_ghz = 3.0;
  record.spec.total_mem_gb = 16.0;
  ForecastingStore forecast(store);
  // A crashing series could extrapolate below zero; it must clamp.
  for (int t = 0; t < 10; ++t) {
    record.cpu_load = std::max(0.0, 5.0 - t);
    record.cpu_util = 0.01;
    store.write_node_record(t, record);
    forecast.feed(t);
  }
  const ClusterSnapshot snap = forecast.assemble_forecast(10.0);
  EXPECT_GE(snap.nodes[0].cpu_load, 0.0);
  EXPECT_GE(snap.nodes[0].cpu_util, 0.0);
  EXPECT_LE(snap.nodes[0].cpu_util, 1.0);
}

TEST(ForecastingStoreTest, LoadForecasterAccessible) {
  MonitorStore store(3);
  ForecastingStore forecast(store);
  EXPECT_EQ(forecast.load_forecaster(1).observations(), 0u);
  EXPECT_THROW(forecast.load_forecaster(9), util::CheckError);
}

}  // namespace
}  // namespace nlarm::monitor
