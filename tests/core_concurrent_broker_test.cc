// Concurrent serving path: epoch publication, multi-threaded decide(), and
// batched admission. The multi-threaded cases are the ThreadSanitizer
// targets of the NLARM_SANITIZE=thread CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/broker.h"
#include "core/epoch.h"
#include "core/prepared.h"
#include "monitor/store.h"
#include "obs/audit.h"
#include "sim/rng.h"
#include "test_helpers.h"
#include "util/check.h"

namespace nlarm::core {
namespace {

using nlarm::testing::TestNode;
using nlarm::testing::idle_nodes;
using nlarm::testing::make_snapshot;

AllocationRequest request_for(int nprocs, int ppn = 2) {
  AllocationRequest req;
  req.nprocs = nprocs;
  req.ppn = ppn;
  req.job = JobWeights{0.3, 0.7};
  return req;
}

std::shared_ptr<const monitor::ClusterSnapshot> versioned_snapshot(
    int nodes, std::uint64_t version) {
  auto snap = make_snapshot(idle_nodes(nodes));
  snap.version = version;
  return std::make_shared<const monitor::ClusterSnapshot>(std::move(snap));
}

TEST(ConcurrentBrokerTest, EpochDecisionMatchesClassicPath) {
  auto snapshot = versioned_snapshot(6, 5);
  const AllocationRequest request = request_for(8);

  NetworkLoadAwareAllocator allocator;
  ResourceBroker broker(allocator);
  broker.refresh_epoch(snapshot, RequestProfile::of(request));
  EXPECT_EQ(broker.epoch(), 1u);

  EpochPin pin = broker.pin_epoch();
  ASSERT_TRUE(pin.valid());
  const BrokerDecision via_epoch = broker.decide(pin, request);
  const BrokerDecision classic = broker.decide(*snapshot, request);

  ASSERT_EQ(via_epoch.action, BrokerDecision::Action::kAllocate);
  EXPECT_EQ(via_epoch.allocation.nodes, classic.allocation.nodes);
  EXPECT_EQ(via_epoch.allocation.procs_per_node,
            classic.allocation.procs_per_node);
  EXPECT_EQ(via_epoch.allocation.total_cost, classic.allocation.total_cost);
  EXPECT_EQ(via_epoch.cluster_load_per_core, classic.cluster_load_per_core);
  EXPECT_EQ(via_epoch.effective_capacity, classic.effective_capacity);
  EXPECT_EQ(broker.decisions_made(), 2);
}

TEST(ConcurrentBrokerTest, DecideWithoutEpochRejected) {
  NetworkLoadAwareAllocator allocator;
  ResourceBroker broker(allocator);
  EpochPin pin;
  EXPECT_THROW(broker.decide(pin, request_for(4)), util::CheckError);
}

TEST(ConcurrentBrokerTest, PinTracksRepublishes) {
  NetworkLoadAwareAllocator allocator;
  ResourceBroker broker(allocator);
  const AllocationRequest request = request_for(4);
  const RequestProfile profile = RequestProfile::of(request);

  broker.refresh_epoch(versioned_snapshot(4, 10), profile);
  EpochPin pin = broker.pin_epoch();
  EXPECT_EQ(pin.epoch, 1u);
  EXPECT_FALSE(broker.refresh_pin(pin));  // still current

  broker.refresh_epoch(versioned_snapshot(4, 11), profile);
  EXPECT_TRUE(broker.refresh_pin(pin));
  EXPECT_EQ(pin.epoch, 2u);
  EXPECT_EQ(pin.prepared->version, 11u);
}

TEST(ConcurrentBrokerTest, ManyThreadsDecideWhilePublisherRepublishes) {
  constexpr int kThreads = 4;
  constexpr int kDecidesPerThread = 100;
  constexpr int kRepublishes = 50;

  monitor::MonitorStore store(8);
  sim::Rng rng(99);
  store.write_livehosts(1.0, std::vector<bool>(8, true));
  for (int i = 0; i < 8; ++i) {
    monitor::NodeSnapshot record;
    record.spec.id = i;
    record.spec.hostname = cluster::default_hostname(i);
    record.spec.core_count = 8;
    record.spec.cpu_freq_ghz = 3.0;
    record.spec.total_mem_gb = 16.0;
    record.cpu_load_avg = {0.5, 0.5, 0.5};
    store.write_node_record(1.0, record);
  }

  const AllocationRequest request = request_for(8);
  const RequestProfile profile = RequestProfile::of(request);
  NetworkLoadAwareAllocator allocator;
  ResourceBroker broker(allocator);
  obs::AuditLog audit;
  broker.set_audit_log(&audit);
  broker.refresh_epoch(
      std::make_shared<const monitor::ClusterSnapshot>(store.assemble(1.0)),
      profile);
  store.drain_delta();

  std::atomic<bool> stop{false};
  std::atomic<int> allocations{0};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&broker, &request, &allocations] {
      EpochPin pin = broker.pin_epoch();
      for (int i = 0; i < kDecidesPerThread; ++i) {
        broker.refresh_pin(pin);
        const BrokerDecision decision = broker.decide(pin, request);
        if (decision.action == BrokerDecision::Action::kAllocate) {
          int procs = 0;
          for (int p : decision.allocation.procs_per_node) procs += p;
          ASSERT_EQ(procs, request.nprocs);
          allocations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  double now = 1.0;
  for (int i = 0; i < kRepublishes && !stop.load(); ++i) {
    now += 1.0;
    monitor::NodeSnapshot record;
    const int id = static_cast<int>(rng.uniform_int(0, 7));
    record.spec.id = id;
    record.spec.hostname = cluster::default_hostname(id);
    record.spec.core_count = 8;
    record.spec.cpu_freq_ghz = 3.0;
    record.spec.total_mem_gb = 16.0;
    const double load = rng.uniform(0.0, 2.0);
    record.cpu_load_avg = {load, load, load};
    store.write_node_record(now, record);
    if (rng.chance(0.4)) {
      const int u = static_cast<int>(rng.uniform_int(0, 6));
      const int v = static_cast<int>(rng.uniform_int(u + 1, 7));
      store.write_latency(now, u, v, rng.uniform(20.0, 200.0), 100.0);
    }
    auto snapshot =
        std::make_shared<const monitor::ClusterSnapshot>(store.assemble(now));
    const monitor::SnapshotDelta delta = store.drain_delta();
    broker.refresh_epoch(snapshot, delta, profile);
  }
  for (std::thread& thread : readers) thread.join();

  EXPECT_EQ(broker.decisions_made(), kThreads * kDecidesPerThread);
  EXPECT_EQ(allocations.load(), kThreads * kDecidesPerThread);
  EXPECT_EQ(audit.size(),
            static_cast<std::size_t>(kThreads * kDecidesPerThread));
  EXPECT_GE(broker.epoch(), static_cast<std::uint64_t>(kRepublishes));
}

TEST(ConcurrentBrokerTest, BatchDebitsCapacityAcrossRequests) {
  // 4 idle identical nodes at ppn 2 → capacity 8. The first request takes
  // nodes {0, 1}; the second must land on the remaining {2, 3}; the third
  // finds nothing left and waits.
  auto snapshot = versioned_snapshot(4, 21);
  const AllocationRequest request = request_for(4);
  NetworkLoadAwareAllocator allocator;
  ResourceBroker broker(allocator);
  broker.refresh_epoch(snapshot, RequestProfile::of(request));
  EpochPin pin = broker.pin_epoch();

  const std::vector<AllocationRequest> batch{request, request, request};
  const std::vector<BrokerDecision> decisions =
      broker.decide_batch(pin, batch);
  ASSERT_EQ(decisions.size(), 3u);

  ASSERT_EQ(decisions[0].action, BrokerDecision::Action::kAllocate);
  EXPECT_EQ(decisions[0].allocation.nodes,
            (std::vector<cluster::NodeId>{0, 1}));
  ASSERT_EQ(decisions[1].action, BrokerDecision::Action::kAllocate);
  EXPECT_EQ(decisions[1].allocation.nodes,
            (std::vector<cluster::NodeId>{2, 3}));
  EXPECT_EQ(decisions[2].action, BrokerDecision::Action::kWait);
  EXPECT_EQ(decisions[2].effective_capacity, 0);

  // Unbatched, the same request still sees the epoch's full capacity.
  const BrokerDecision alone = broker.decide(pin, request);
  ASSERT_EQ(alone.action, BrokerDecision::Action::kAllocate);
  EXPECT_EQ(alone.allocation.nodes, (std::vector<cluster::NodeId>{0, 1}));
}

TEST(ConcurrentBrokerTest, BatchPrefersLightNodesThenSpills) {
  // Nodes 0/1 are heavily loaded; 2/3 idle. The first batched request takes
  // the idle pair, the second is forced onto the loaded pair.
  std::vector<TestNode> nodes = idle_nodes(4);
  nodes[0].cpu_load = 6.0;
  nodes[1].cpu_load = 6.0;
  auto snap = make_snapshot(nodes);
  snap.version = 31;
  auto snapshot =
      std::make_shared<const monitor::ClusterSnapshot>(std::move(snap));

  const AllocationRequest request = request_for(4);
  NetworkLoadAwareAllocator allocator;
  BrokerPolicy policy;
  policy.max_load_per_core = 10.0;  // gate stays open despite the hot pair
  ResourceBroker broker(allocator, policy);
  broker.refresh_epoch(snapshot, RequestProfile::of(request));
  EpochPin pin = broker.pin_epoch();

  const std::vector<AllocationRequest> batch{request, request};
  const std::vector<BrokerDecision> decisions =
      broker.decide_batch(pin, batch);
  ASSERT_EQ(decisions[0].action, BrokerDecision::Action::kAllocate);
  EXPECT_EQ(decisions[0].allocation.nodes,
            (std::vector<cluster::NodeId>{2, 3}));
  ASSERT_EQ(decisions[1].action, BrokerDecision::Action::kAllocate);
  EXPECT_EQ(decisions[1].allocation.nodes,
            (std::vector<cluster::NodeId>{0, 1}));
}

TEST(ConcurrentBrokerTest, ProfileMismatchRejected) {
  auto snapshot = versioned_snapshot(4, 41);
  const AllocationRequest request = request_for(4);
  NetworkLoadAwareAllocator allocator;
  ResourceBroker broker(allocator);
  broker.refresh_epoch(snapshot, RequestProfile::of(request));
  EpochPin pin = broker.pin_epoch();

  AllocationRequest other = request;
  other.ppn = 3;  // different profile than the epoch was prepared for
  EXPECT_THROW(broker.decide(pin, other), util::CheckError);
}

}  // namespace
}  // namespace nlarm::core
