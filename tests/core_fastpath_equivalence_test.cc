// Golden-equivalence property test for the allocation fast path.
//
// The optimized pipeline (flat matrices, top-k candidate generation,
// generation-time incremental costs, dedup'd selection, parallel fan-out,
// prepared-input memoization) must be BIT-IDENTICAL to the retained
// reference implementation (core/reference.h) — same members, same procs,
// same raw and normalized costs, same winner — on random monitored
// snapshots at several cluster sizes, through both the top-k path and the
// full-sort/round-robin overflow fallback, serially and in parallel.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/allocator.h"
#include "core/candidate.h"
#include "core/compute_load.h"
#include "core/degrade.h"
#include "core/hierarchical.h"
#include "core/network_load.h"
#include "core/normalize.h"
#include "core/prepared.h"
#include "core/reference.h"
#include "core/selection.h"
#include "monitor/snapshot.h"
#include "sim/rng.h"
#include "util/thread_pool.h"

namespace nlarm::core {
namespace {

monitor::ClusterSnapshot random_snapshot(int n, std::uint64_t seed) {
  sim::Rng rng(seed);
  monitor::ClusterSnapshot snap;
  snap.time = 123.0;
  snap.livehosts.assign(static_cast<std::size_t>(n), true);
  snap.nodes.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& node = snap.nodes[static_cast<std::size_t>(i)];
    node.spec.id = i;
    node.spec.hostname = cluster::default_hostname(i);
    node.spec.core_count = rng.chance(0.5) ? 8 : 12;
    node.spec.cpu_freq_ghz = rng.uniform(2.0, 4.5);
    node.spec.total_mem_gb = 16.0;
    node.valid = true;
    node.sample_time = 123.0;
    const double load = rng.uniform(0.0, 8.0);
    node.cpu_load = load;
    node.cpu_load_avg = {load, load * 0.9, load * 0.8};
    const double util = rng.uniform(0.0, 1.0);
    node.cpu_util = util;
    node.cpu_util_avg = {util, util, util};
    const double flow = rng.uniform(0.0, 400.0);
    node.net_flow_mbps = flow;
    node.net_flow_avg = {flow, flow, flow};
    node.mem_used_gb = rng.uniform(1.0, 14.0);
    const double avail = 16.0 - node.mem_used_gb;
    node.mem_avail_avg = {avail, avail, avail};
    node.users = static_cast<int>(rng.uniform_int(0, 4));
  }
  snap.net.latency_us = monitor::make_matrix(n, -1.0);
  snap.net.latency_5min_us = monitor::make_matrix(n, -1.0);
  snap.net.bandwidth_mbps = monitor::make_matrix(n, -1.0);
  snap.net.peak_mbps = monitor::make_matrix(n, -1.0);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const auto uu = static_cast<std::size_t>(u);
      const auto vv = static_cast<std::size_t>(v);
      if (rng.chance(0.1)) continue;  // ~10% of pairs stay unmeasured
      const double lat = rng.uniform(40.0, 800.0);
      const double bw = rng.uniform(50.0, 950.0);
      snap.net.latency_us[uu][vv] = snap.net.latency_us[vv][uu] = lat;
      snap.net.latency_5min_us[uu][vv] = snap.net.latency_5min_us[vv][uu] =
          lat;
      snap.net.bandwidth_mbps[uu][vv] = snap.net.bandwidth_mbps[vv][uu] = bw;
      snap.net.peak_mbps[uu][vv] = snap.net.peak_mbps[vv][uu] = 1000.0;
    }
  }
  return snap;
}

AllocationRequest make_request(int nprocs) {
  AllocationRequest request;
  request.nprocs = nprocs;
  request.ppn = 4;
  request.job = JobWeights{0.3, 0.7};
  return request;
}

void expect_same_candidates(const std::vector<Candidate>& actual,
                            const std::vector<Candidate>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].start_index, expected[i].start_index) << "cand " << i;
    EXPECT_EQ(actual[i].members, expected[i].members) << "cand " << i;
    EXPECT_EQ(actual[i].procs, expected[i].procs) << "cand " << i;
    EXPECT_EQ(actual[i].total_procs, expected[i].total_procs) << "cand " << i;
  }
}

void expect_same_selection(const SelectionResult& actual,
                           const SelectionResult& expected) {
  ASSERT_EQ(actual.scored.size(), expected.scored.size());
  EXPECT_EQ(actual.best_index, expected.best_index);
  for (std::size_t i = 0; i < actual.scored.size(); ++i) {
    // EXPECT_EQ on doubles on purpose: equality must be bit-exact, not
    // within a tolerance.
    EXPECT_EQ(actual.scored[i].compute_cost, expected.scored[i].compute_cost)
        << "cand " << i;
    EXPECT_EQ(actual.scored[i].network_cost, expected.scored[i].network_cost)
        << "cand " << i;
    EXPECT_EQ(actual.scored[i].total_cost, expected.scored[i].total_cost)
        << "cand " << i;
    EXPECT_EQ(actual.scored[i].candidate.members,
              expected.scored[i].candidate.members)
        << "cand " << i;
  }
}

void expect_same_allocation(const Allocation& actual,
                            const Allocation& expected) {
  EXPECT_EQ(actual.nodes, expected.nodes);
  EXPECT_EQ(actual.procs_per_node, expected.procs_per_node);
  EXPECT_EQ(actual.total_procs, expected.total_procs);
  EXPECT_EQ(actual.total_cost, expected.total_cost);
  EXPECT_EQ(actual.avg_cpu_load, expected.avg_cpu_load);
  EXPECT_EQ(actual.avg_latency_us, expected.avg_latency_us);
  EXPECT_EQ(actual.avg_bw_complement_mbps, expected.avg_bw_complement_mbps);
}

/// Checks the whole pipeline on one snapshot, through every fast-path
/// configuration.
void check_on_snapshot(const monitor::ClusterSnapshot& snap, int nprocs) {
  const int v = static_cast<int>(snap.nodes.size());
  const AllocationRequest request = make_request(nprocs);

  const std::vector<cluster::NodeId> usable = snap.usable_nodes();
  const std::vector<double> cl = rescale_unit_mean(
      compute_loads(snap, usable, request.compute_weights));
  const util::FlatMatrix nl = rescale_unit_mean(
      network_loads(snap, usable, request.network_weights));
  const std::vector<int> pc =
      effective_process_counts(snap, usable, request.ppn);

  // Reference generation vs optimized, serial and parallel.
  const std::vector<Candidate> ref_candidates =
      reference::generate_all_candidates(cl, nl, pc, nprocs, request.job);
  GenerationOptions serial;
  serial.parallel_threshold = -1;
  const std::vector<Candidate> fast_serial =
      generate_all_candidates(cl, nl, pc, nprocs, request.job, serial);
  util::ThreadPool pool(3);
  GenerationOptions parallel;
  parallel.parallel_threshold = 0;  // always fan out
  parallel.pool = &pool;
  const std::vector<Candidate> fast_parallel =
      generate_all_candidates(cl, nl, pc, nprocs, request.job, parallel);
  expect_same_candidates(fast_serial, ref_candidates);
  expect_same_candidates(fast_parallel, ref_candidates);

  // Generation-time costs must equal the canonical definition.
  for (const Candidate& candidate : fast_serial) {
    ASSERT_TRUE(candidate.has_costs);
    const CandidateCosts costs = candidate_costs(candidate.members, cl, nl);
    EXPECT_EQ(candidate.compute_cost, costs.compute);
    EXPECT_EQ(candidate.network_cost, costs.network);
  }

  // Selection: precomputed-cost path, dedup path (costs stripped) and the
  // reference cost-walk-per-candidate all agree.
  const SelectionResult ref_selection = reference::select_best_candidate(
      ref_candidates, cl, nl, request.job);
  const SelectionResult fast_selection =
      select_best_candidate(fast_serial, cl, nl, request.job);
  std::vector<Candidate> stripped = fast_serial;
  for (Candidate& candidate : stripped) candidate.has_costs = false;
  const SelectionResult dedup_selection =
      select_best_candidate(std::move(stripped), cl, nl, request.job);
  expect_same_selection(fast_selection, ref_selection);
  expect_same_selection(dedup_selection, ref_selection);

  // End to end through the public allocator, serial and parallel.
  const Allocation ref_alloc = reference::allocate(snap, request);
  NetworkLoadAwareAllocator allocator;
  allocator.set_generation_options(serial);
  expect_same_allocation(allocator.allocate(snap, request), ref_alloc);
  NetworkLoadAwareAllocator parallel_allocator;
  parallel_allocator.set_generation_options(parallel);
  expect_same_allocation(parallel_allocator.allocate(snap, request),
                         ref_alloc);

  // Memoized repeat on a versioned snapshot changes nothing.
  monitor::ClusterSnapshot versioned = snap;
  versioned.version = 0xbeef0000ull + static_cast<std::uint64_t>(v);
  NetworkLoadAwareAllocator memo_allocator;
  memo_allocator.set_generation_options(serial);
  expect_same_allocation(memo_allocator.allocate(versioned, request),
                         ref_alloc);
  expect_same_allocation(memo_allocator.allocate(versioned, request),
                         ref_alloc);
}

/// Random snapshot at one cluster size and process count.
void check_equivalence(int v, int nprocs, std::uint64_t seed) {
  SCOPED_TRACE(::testing::Message() << "V=" << v << " nprocs=" << nprocs
                                    << " seed=" << seed);
  check_on_snapshot(random_snapshot(v, seed), nprocs);
}

TEST(FastPathEquivalenceTest, TopKPathSmall) {
  check_equivalence(8, 13, 1001);  // k < V: partial-selection path
}

TEST(FastPathEquivalenceTest, TopKPathPaperScale) {
  check_equivalence(60, 32, 2002);
}

TEST(FastPathEquivalenceTest, TopKPathLarge) {
  check_equivalence(257, 48, 3003);
}

TEST(FastPathEquivalenceTest, FullSortOverflowSmall) {
  // nprocs exceeds effective capacity (ppn 4): k == V, full sort + the
  // round-robin overflow fallback.
  check_equivalence(8, 8 * 4 + 7, 4004);
}

TEST(FastPathEquivalenceTest, FullSortOverflowPaperScale) {
  check_equivalence(60, 60 * 4 + 11, 5005);
}

TEST(FastPathEquivalenceTest, FullSortOverflowLarge) {
  check_equivalence(257, 257 * 4 + 3, 6006);
}

TEST(FastPathEquivalenceTest, ManySeedsSmallClusters) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    check_equivalence(8, 5 + static_cast<int>(seed), 7000 + seed);
  }
}

TEST(FastPathEquivalenceTest, MemoizationInvalidatedByVersionBump) {
  // Two different versioned snapshots through one allocator must match what
  // a fresh allocator computes for each — the cache may never leak stale
  // inputs across versions.
  const AllocationRequest request = make_request(12);
  monitor::ClusterSnapshot snap_a = random_snapshot(20, 11);
  snap_a.version = 1;
  monitor::ClusterSnapshot snap_b = random_snapshot(20, 22);
  snap_b.version = 2;
  snap_b.time = snap_a.time;  // version alone must distinguish them

  NetworkLoadAwareAllocator reused;
  const Allocation a1 = reused.allocate(snap_a, request);
  const Allocation b1 = reused.allocate(snap_b, request);
  const Allocation a2 = reused.allocate(snap_a, request);

  NetworkLoadAwareAllocator fresh_a;
  NetworkLoadAwareAllocator fresh_b;
  expect_same_allocation(a1, fresh_a.allocate(snap_a, request));
  expect_same_allocation(b1, fresh_b.allocate(snap_b, request));
  expect_same_allocation(a2, a1);
}


TEST(FastPathEquivalenceTest, DegradedAndQuarantinedInputsStayEquivalent) {
  // Degradation rewrites the snapshot (quarantined livehosts, penalized
  // fallback pairs) and then hands the SAME rewritten snapshot to both
  // pipelines — so the fast path must stay bit-identical to the reference
  // on degraded inputs exactly as on fresh ones.
  for (std::uint64_t seed : {101ull, 202ull, 303ull}) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    const int v = 24;
    auto snapshot = std::make_shared<const monitor::ClusterSnapshot>(
        random_snapshot(v, seed));

    sim::Rng rng(seed ^ 0xdead);
    monitor::StalenessView view;
    view.now = 1000.0;
    view.node.assign(static_cast<std::size_t>(v), 1.0);
    view.pair.assign(static_cast<std::size_t>(v), 1.0);
    for (int i = 0; i < v; ++i) {
      if (rng.chance(0.2)) view.node[static_cast<std::size_t>(i)] = 100.0;
    }
    for (int u = 0; u < v; ++u) {
      for (int w = u + 1; w < v; ++w) {
        if (rng.chance(0.15)) {
          view.pair[static_cast<std::size_t>(u)][static_cast<std::size_t>(
              w)] = 700.0;
          view.pair[static_cast<std::size_t>(w)][static_cast<std::size_t>(
              u)] = 700.0;
        }
      }
    }

    Degrader degrader(DegradationPolicy{});
    const DegradationOutcome out = degrader.apply(snapshot, view);
    ASSERT_TRUE(out.degraded);  // the chance() draws above guarantee some
    check_on_snapshot(*out.snapshot, 16);
  }
}

/// random_snapshot leaves every node on switch 0; spread them so the tiled
/// partition has several blocks (the flat path never reads switch_id, so
/// the existing expectations are unaffected).
monitor::ClusterSnapshot switched_snapshot(int n, std::uint64_t seed,
                                           int per_switch) {
  monitor::ClusterSnapshot snap = random_snapshot(n, seed);
  for (int i = 0; i < n; ++i) {
    snap.nodes[static_cast<std::size_t>(i)].spec.switch_id = i / per_switch;
  }
  return snap;
}

/// In the covering regime (two_phase_min_nodes forces phase 1 to keep every
/// block) the two-phase allocator must be bit-identical to the flat
/// prepared fast path — both with the dense NL matrix published and with
/// the NL assembled purely from tiles (dense_nl_limit = 0).
void check_two_phase_covering(const monitor::ClusterSnapshot& snap,
                              int nprocs) {
  const AllocationRequest request = make_request(nprocs);
  const RequestProfile profile = RequestProfile::of(request);
  auto shared = std::make_shared<const monitor::ClusterSnapshot>(snap);

  PreparedBuilder flat(profile);
  flat.rebuild(shared);
  const auto flat_epoch = flat.build();
  const Allocation want = allocate_prepared(*flat_epoch, request);

  HierarchicalOptions options;
  options.pair_sample = 0;
  options.two_phase_min_nodes = std::numeric_limits<std::size_t>::max();

  for (const std::size_t dense_limit :
       {std::numeric_limits<std::size_t>::max(), std::size_t{0}}) {
    SCOPED_TRACE(::testing::Message() << "dense_nl_limit=" << dense_limit);
    TilingOptions tiling;
    tiling.dense_nl_limit = dense_limit;
    PreparedBuilder tiled(profile, tiling);
    tiled.rebuild(shared);
    const auto epoch = tiled.build();
    ASSERT_NE(epoch->tiles, nullptr);
    if (dense_limit == 0) ASSERT_EQ(epoch->nl, nullptr);
    HierStats hier;
    const Allocation got =
        allocate_two_phase(*epoch, request, options, {}, nullptr, &hier);
    expect_same_allocation(got, want);
    EXPECT_EQ(got.policy, "hierarchical");
    EXPECT_FALSE(hier.pruned);
    EXPECT_EQ(hier.chosen_groups, hier.groups);
  }
}

TEST(FastPathEquivalenceTest, TwoPhaseCoveringBitIdentitySmall) {
  check_two_phase_covering(switched_snapshot(8, 1111, 3), 13);
}

TEST(FastPathEquivalenceTest, TwoPhaseCoveringBitIdentityPaperScale) {
  check_two_phase_covering(switched_snapshot(60, 2222, 8), 32);
}

TEST(FastPathEquivalenceTest, TwoPhaseCoveringBitIdentityLarge) {
  check_two_phase_covering(switched_snapshot(257, 3333, 16), 48);
}

TEST(FastPathEquivalenceTest, TwoPhaseCoveringUnderDegradation) {
  // Degrade a multi-switch snapshot so that one switch is mostly stale —
  // node quarantine plus the block overlay take the whole rack out — and
  // some pairs ride the 5-minute fallback. Both pipelines then consume the
  // SAME rewritten snapshot, so covering-regime bit-identity must survive.
  const int v = 40;
  auto snapshot = std::make_shared<const monitor::ClusterSnapshot>(
      switched_snapshot(v, 4444, 8));

  monitor::StalenessView view;
  view.now = 1000.0;
  view.node.assign(static_cast<std::size_t>(v), 1.0);
  view.pair.assign(static_cast<std::size_t>(v), 1.0);
  // Switch 0 (nodes 0..7): six of eight nodes stale.
  for (int i = 0; i < 6; ++i) view.node[static_cast<std::size_t>(i)] = 100.0;
  // A few stale pairs elsewhere.
  sim::Rng rng(4444 ^ 0xfeed);
  for (int u = 8; u < v; ++u) {
    for (int w = u + 1; w < v; ++w) {
      if (rng.chance(0.1)) {
        view.pair[static_cast<std::size_t>(u)][static_cast<std::size_t>(w)] =
            700.0;
        view.pair[static_cast<std::size_t>(w)][static_cast<std::size_t>(u)] =
            700.0;
      }
    }
  }

  DegradationPolicy policy;
  policy.block_quarantine_fraction = 0.5;
  Degrader degrader(policy);
  const DegradationOutcome out = degrader.apply(snapshot, view);
  ASSERT_TRUE(out.degraded);
  EXPECT_EQ(out.block_quarantined, 2u);  // the two survivors of switch 0
  EXPECT_EQ(out.quarantined, 8u);
  check_on_snapshot(*out.snapshot, 16);
  check_two_phase_covering(*out.snapshot, 16);
}

TEST(FastPathEquivalenceTest, AnnotationMatchesPairMetricsReference) {
  // annotate_allocation walks the FlatMatrix views directly; its averages
  // must stay bit-identical to the per-pair pair_metrics() formulation.
  const monitor::ClusterSnapshot snap = random_snapshot(40, 909);
  const AllocationRequest request = make_request(24);
  NetworkLoadAwareAllocator allocator;
  const Allocation allocation = allocator.allocate(snap, request);
  ASSERT_GE(allocation.nodes.size(), 2u);

  double lat_sum = 0.0, comp_sum = 0.0;
  std::size_t lat_pairs = 0, comp_pairs = 0;
  for (std::size_t i = 0; i < allocation.nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < allocation.nodes.size(); ++j) {
      const PairMetrics m =
          pair_metrics(snap, allocation.nodes[i], allocation.nodes[j]);
      if (m.latency_us >= 0.0) {
        lat_sum += m.latency_us;
        ++lat_pairs;
      }
      if (m.bandwidth_complement_mbps >= 0.0) {
        comp_sum += m.bandwidth_complement_mbps;
        ++comp_pairs;
      }
    }
  }
  const double want_lat =
      lat_pairs > 0 ? lat_sum / static_cast<double>(lat_pairs) : 0.0;
  const double want_comp =
      comp_pairs > 0 ? comp_sum / static_cast<double>(comp_pairs) : 0.0;
  EXPECT_EQ(allocation.avg_latency_us, want_lat);
  EXPECT_EQ(allocation.avg_bw_complement_mbps, want_comp);
}

}  // namespace
}  // namespace nlarm::core
