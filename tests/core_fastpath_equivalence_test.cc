// Golden-equivalence property test for the allocation fast path.
//
// The optimized pipeline (flat matrices, top-k candidate generation,
// generation-time incremental costs, dedup'd selection, parallel fan-out,
// prepared-input memoization) must be BIT-IDENTICAL to the retained
// reference implementation (core/reference.h) — same members, same procs,
// same raw and normalized costs, same winner — on random monitored
// snapshots at several cluster sizes, through both the top-k path and the
// full-sort/round-robin overflow fallback, serially and in parallel.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "core/allocator.h"
#include "core/candidate.h"
#include "core/compute_load.h"
#include "core/degrade.h"
#include "core/hierarchical.h"
#include "core/network_load.h"
#include "core/normalize.h"
#include "core/prepared.h"
#include "core/reference.h"
#include "core/selection.h"
#include "monitor/snapshot.h"
#include "sim/rng.h"
#include "util/thread_pool.h"

namespace nlarm::core {
namespace {

monitor::ClusterSnapshot random_snapshot(int n, std::uint64_t seed) {
  sim::Rng rng(seed);
  monitor::ClusterSnapshot snap;
  snap.time = 123.0;
  snap.livehosts.assign(static_cast<std::size_t>(n), true);
  snap.nodes.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& node = snap.nodes[static_cast<std::size_t>(i)];
    node.spec.id = i;
    node.spec.hostname = cluster::default_hostname(i);
    node.spec.core_count = rng.chance(0.5) ? 8 : 12;
    node.spec.cpu_freq_ghz = rng.uniform(2.0, 4.5);
    node.spec.total_mem_gb = 16.0;
    node.valid = true;
    node.sample_time = 123.0;
    const double load = rng.uniform(0.0, 8.0);
    node.cpu_load = load;
    node.cpu_load_avg = {load, load * 0.9, load * 0.8};
    const double util = rng.uniform(0.0, 1.0);
    node.cpu_util = util;
    node.cpu_util_avg = {util, util, util};
    const double flow = rng.uniform(0.0, 400.0);
    node.net_flow_mbps = flow;
    node.net_flow_avg = {flow, flow, flow};
    node.mem_used_gb = rng.uniform(1.0, 14.0);
    const double avail = 16.0 - node.mem_used_gb;
    node.mem_avail_avg = {avail, avail, avail};
    node.users = static_cast<int>(rng.uniform_int(0, 4));
  }
  snap.net.latency_us = monitor::make_matrix(n, -1.0);
  snap.net.latency_5min_us = monitor::make_matrix(n, -1.0);
  snap.net.bandwidth_mbps = monitor::make_matrix(n, -1.0);
  snap.net.peak_mbps = monitor::make_matrix(n, -1.0);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const auto uu = static_cast<std::size_t>(u);
      const auto vv = static_cast<std::size_t>(v);
      if (rng.chance(0.1)) continue;  // ~10% of pairs stay unmeasured
      const double lat = rng.uniform(40.0, 800.0);
      const double bw = rng.uniform(50.0, 950.0);
      snap.net.latency_us[uu][vv] = snap.net.latency_us[vv][uu] = lat;
      snap.net.latency_5min_us[uu][vv] = snap.net.latency_5min_us[vv][uu] =
          lat;
      snap.net.bandwidth_mbps[uu][vv] = snap.net.bandwidth_mbps[vv][uu] = bw;
      snap.net.peak_mbps[uu][vv] = snap.net.peak_mbps[vv][uu] = 1000.0;
    }
  }
  return snap;
}

AllocationRequest make_request(int nprocs) {
  AllocationRequest request;
  request.nprocs = nprocs;
  request.ppn = 4;
  request.job = JobWeights{0.3, 0.7};
  return request;
}

void expect_same_candidates(const std::vector<Candidate>& actual,
                            const std::vector<Candidate>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].start_index, expected[i].start_index) << "cand " << i;
    EXPECT_EQ(actual[i].members, expected[i].members) << "cand " << i;
    EXPECT_EQ(actual[i].procs, expected[i].procs) << "cand " << i;
    EXPECT_EQ(actual[i].total_procs, expected[i].total_procs) << "cand " << i;
  }
}

void expect_same_selection(const SelectionResult& actual,
                           const SelectionResult& expected) {
  ASSERT_EQ(actual.scored.size(), expected.scored.size());
  EXPECT_EQ(actual.best_index, expected.best_index);
  for (std::size_t i = 0; i < actual.scored.size(); ++i) {
    // EXPECT_EQ on doubles on purpose: equality must be bit-exact, not
    // within a tolerance.
    EXPECT_EQ(actual.scored[i].compute_cost, expected.scored[i].compute_cost)
        << "cand " << i;
    EXPECT_EQ(actual.scored[i].network_cost, expected.scored[i].network_cost)
        << "cand " << i;
    EXPECT_EQ(actual.scored[i].total_cost, expected.scored[i].total_cost)
        << "cand " << i;
    EXPECT_EQ(actual.scored[i].candidate.members,
              expected.scored[i].candidate.members)
        << "cand " << i;
  }
}

void expect_same_allocation(const Allocation& actual,
                            const Allocation& expected) {
  EXPECT_EQ(actual.nodes, expected.nodes);
  EXPECT_EQ(actual.procs_per_node, expected.procs_per_node);
  EXPECT_EQ(actual.total_procs, expected.total_procs);
  EXPECT_EQ(actual.total_cost, expected.total_cost);
  EXPECT_EQ(actual.avg_cpu_load, expected.avg_cpu_load);
  EXPECT_EQ(actual.avg_latency_us, expected.avg_latency_us);
  EXPECT_EQ(actual.avg_bw_complement_mbps, expected.avg_bw_complement_mbps);
}

/// Checks the whole pipeline on one snapshot, through every fast-path
/// configuration.
void check_on_snapshot(const monitor::ClusterSnapshot& snap, int nprocs) {
  const int v = static_cast<int>(snap.nodes.size());
  const AllocationRequest request = make_request(nprocs);

  const std::vector<cluster::NodeId> usable = snap.usable_nodes();
  const std::vector<double> cl = rescale_unit_mean(
      compute_loads(snap, usable, request.compute_weights));
  const util::FlatMatrix nl = rescale_unit_mean(
      network_loads(snap, usable, request.network_weights));
  const std::vector<int> pc =
      effective_process_counts(snap, usable, request.ppn);

  // Reference generation vs optimized, serial and parallel.
  const std::vector<Candidate> ref_candidates =
      reference::generate_all_candidates(cl, nl, pc, nprocs, request.job);
  GenerationOptions serial;
  serial.parallel_threshold = -1;
  const std::vector<Candidate> fast_serial =
      generate_all_candidates(cl, nl, pc, nprocs, request.job, serial);
  util::ThreadPool pool(3);
  GenerationOptions parallel;
  parallel.parallel_threshold = 0;  // always fan out
  parallel.pool = &pool;
  const std::vector<Candidate> fast_parallel =
      generate_all_candidates(cl, nl, pc, nprocs, request.job, parallel);
  expect_same_candidates(fast_serial, ref_candidates);
  expect_same_candidates(fast_parallel, ref_candidates);

  // Generation-time costs must equal the canonical definition.
  for (const Candidate& candidate : fast_serial) {
    ASSERT_TRUE(candidate.has_costs);
    const CandidateCosts costs = candidate_costs(candidate.members, cl, nl);
    EXPECT_EQ(candidate.compute_cost, costs.compute);
    EXPECT_EQ(candidate.network_cost, costs.network);
  }

  // Selection: precomputed-cost path, dedup path (costs stripped) and the
  // reference cost-walk-per-candidate all agree.
  const SelectionResult ref_selection = reference::select_best_candidate(
      ref_candidates, cl, nl, request.job);
  const SelectionResult fast_selection =
      select_best_candidate(fast_serial, cl, nl, request.job);
  std::vector<Candidate> stripped = fast_serial;
  for (Candidate& candidate : stripped) candidate.has_costs = false;
  const SelectionResult dedup_selection =
      select_best_candidate(std::move(stripped), cl, nl, request.job);
  expect_same_selection(fast_selection, ref_selection);
  expect_same_selection(dedup_selection, ref_selection);

  // End to end through the public allocator, serial and parallel.
  const Allocation ref_alloc = reference::allocate(snap, request);
  NetworkLoadAwareAllocator allocator;
  allocator.set_generation_options(serial);
  expect_same_allocation(allocator.allocate(snap, request), ref_alloc);
  NetworkLoadAwareAllocator parallel_allocator;
  parallel_allocator.set_generation_options(parallel);
  expect_same_allocation(parallel_allocator.allocate(snap, request),
                         ref_alloc);

  // Memoized repeat on a versioned snapshot changes nothing.
  monitor::ClusterSnapshot versioned = snap;
  versioned.version = 0xbeef0000ull + static_cast<std::uint64_t>(v);
  NetworkLoadAwareAllocator memo_allocator;
  memo_allocator.set_generation_options(serial);
  expect_same_allocation(memo_allocator.allocate(versioned, request),
                         ref_alloc);
  expect_same_allocation(memo_allocator.allocate(versioned, request),
                         ref_alloc);
}

/// Random snapshot at one cluster size and process count.
void check_equivalence(int v, int nprocs, std::uint64_t seed) {
  SCOPED_TRACE(::testing::Message() << "V=" << v << " nprocs=" << nprocs
                                    << " seed=" << seed);
  check_on_snapshot(random_snapshot(v, seed), nprocs);
}

TEST(FastPathEquivalenceTest, TopKPathSmall) {
  check_equivalence(8, 13, 1001);  // k < V: partial-selection path
}

TEST(FastPathEquivalenceTest, TopKPathPaperScale) {
  check_equivalence(60, 32, 2002);
}

TEST(FastPathEquivalenceTest, TopKPathLarge) {
  check_equivalence(257, 48, 3003);
}

TEST(FastPathEquivalenceTest, FullSortOverflowSmall) {
  // nprocs exceeds effective capacity (ppn 4): k == V, full sort + the
  // round-robin overflow fallback.
  check_equivalence(8, 8 * 4 + 7, 4004);
}

TEST(FastPathEquivalenceTest, FullSortOverflowPaperScale) {
  check_equivalence(60, 60 * 4 + 11, 5005);
}

TEST(FastPathEquivalenceTest, FullSortOverflowLarge) {
  check_equivalence(257, 257 * 4 + 3, 6006);
}

TEST(FastPathEquivalenceTest, ManySeedsSmallClusters) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    check_equivalence(8, 5 + static_cast<int>(seed), 7000 + seed);
  }
}

TEST(FastPathEquivalenceTest, MemoizationInvalidatedByVersionBump) {
  // Two different versioned snapshots through one allocator must match what
  // a fresh allocator computes for each — the cache may never leak stale
  // inputs across versions.
  const AllocationRequest request = make_request(12);
  monitor::ClusterSnapshot snap_a = random_snapshot(20, 11);
  snap_a.version = 1;
  monitor::ClusterSnapshot snap_b = random_snapshot(20, 22);
  snap_b.version = 2;
  snap_b.time = snap_a.time;  // version alone must distinguish them

  NetworkLoadAwareAllocator reused;
  const Allocation a1 = reused.allocate(snap_a, request);
  const Allocation b1 = reused.allocate(snap_b, request);
  const Allocation a2 = reused.allocate(snap_a, request);

  NetworkLoadAwareAllocator fresh_a;
  NetworkLoadAwareAllocator fresh_b;
  expect_same_allocation(a1, fresh_a.allocate(snap_a, request));
  expect_same_allocation(b1, fresh_b.allocate(snap_b, request));
  expect_same_allocation(a2, a1);
}


TEST(FastPathEquivalenceTest, DegradedAndQuarantinedInputsStayEquivalent) {
  // Degradation rewrites the snapshot (quarantined livehosts, penalized
  // fallback pairs) and then hands the SAME rewritten snapshot to both
  // pipelines — so the fast path must stay bit-identical to the reference
  // on degraded inputs exactly as on fresh ones.
  for (std::uint64_t seed : {101ull, 202ull, 303ull}) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    const int v = 24;
    auto snapshot = std::make_shared<const monitor::ClusterSnapshot>(
        random_snapshot(v, seed));

    sim::Rng rng(seed ^ 0xdead);
    monitor::StalenessView view;
    view.now = 1000.0;
    view.node.assign(static_cast<std::size_t>(v), 1.0);
    view.pair.assign(static_cast<std::size_t>(v), 1.0);
    for (int i = 0; i < v; ++i) {
      if (rng.chance(0.2)) view.node[static_cast<std::size_t>(i)] = 100.0;
    }
    for (int u = 0; u < v; ++u) {
      for (int w = u + 1; w < v; ++w) {
        if (rng.chance(0.15)) {
          view.pair[static_cast<std::size_t>(u)][static_cast<std::size_t>(
              w)] = 700.0;
          view.pair[static_cast<std::size_t>(w)][static_cast<std::size_t>(
              u)] = 700.0;
        }
      }
    }

    Degrader degrader(DegradationPolicy{});
    const DegradationOutcome out = degrader.apply(snapshot, view);
    ASSERT_TRUE(out.degraded);  // the chance() draws above guarantee some
    check_on_snapshot(*out.snapshot, 16);
  }
}

/// random_snapshot leaves every node on switch 0; spread them so the tiled
/// partition has several blocks (the flat path never reads switch_id, so
/// the existing expectations are unaffected).
monitor::ClusterSnapshot switched_snapshot(int n, std::uint64_t seed,
                                           int per_switch) {
  monitor::ClusterSnapshot snap = random_snapshot(n, seed);
  for (int i = 0; i < n; ++i) {
    snap.nodes[static_cast<std::size_t>(i)].spec.switch_id = i / per_switch;
  }
  return snap;
}

/// In the covering regime (two_phase_min_nodes forces phase 1 to keep every
/// block) the two-phase allocator must be bit-identical to the flat
/// prepared fast path — both with the dense NL matrix published and with
/// the NL assembled purely from tiles (dense_nl_limit = 0).
void check_two_phase_covering(const monitor::ClusterSnapshot& snap,
                              int nprocs) {
  const AllocationRequest request = make_request(nprocs);
  const RequestProfile profile = RequestProfile::of(request);
  auto shared = std::make_shared<const monitor::ClusterSnapshot>(snap);

  PreparedBuilder flat(profile);
  flat.rebuild(shared);
  const auto flat_epoch = flat.build();
  const Allocation want = allocate_prepared(*flat_epoch, request);

  HierarchicalOptions options;
  options.pair_sample = 0;
  options.two_phase_min_nodes = std::numeric_limits<std::size_t>::max();

  for (const std::size_t dense_limit :
       {std::numeric_limits<std::size_t>::max(), std::size_t{0}}) {
    SCOPED_TRACE(::testing::Message() << "dense_nl_limit=" << dense_limit);
    TilingOptions tiling;
    tiling.dense_nl_limit = dense_limit;
    PreparedBuilder tiled(profile, tiling);
    tiled.rebuild(shared);
    const auto epoch = tiled.build();
    ASSERT_NE(epoch->tiles, nullptr);
    if (dense_limit == 0) ASSERT_EQ(epoch->nl, nullptr);
    HierStats hier;
    const Allocation got =
        allocate_two_phase(*epoch, request, options, {}, nullptr, &hier);
    expect_same_allocation(got, want);
    EXPECT_EQ(got.policy, "hierarchical");
    EXPECT_FALSE(hier.pruned);
    EXPECT_EQ(hier.chosen_groups, hier.groups);
  }
}

TEST(FastPathEquivalenceTest, TwoPhaseCoveringBitIdentitySmall) {
  check_two_phase_covering(switched_snapshot(8, 1111, 3), 13);
}

TEST(FastPathEquivalenceTest, TwoPhaseCoveringBitIdentityPaperScale) {
  check_two_phase_covering(switched_snapshot(60, 2222, 8), 32);
}

TEST(FastPathEquivalenceTest, TwoPhaseCoveringBitIdentityLarge) {
  check_two_phase_covering(switched_snapshot(257, 3333, 16), 48);
}

TEST(FastPathEquivalenceTest, TwoPhaseCoveringUnderDegradation) {
  // Degrade a multi-switch snapshot so that one switch is mostly stale —
  // node quarantine plus the block overlay take the whole rack out — and
  // some pairs ride the 5-minute fallback. Both pipelines then consume the
  // SAME rewritten snapshot, so covering-regime bit-identity must survive.
  const int v = 40;
  auto snapshot = std::make_shared<const monitor::ClusterSnapshot>(
      switched_snapshot(v, 4444, 8));

  monitor::StalenessView view;
  view.now = 1000.0;
  view.node.assign(static_cast<std::size_t>(v), 1.0);
  view.pair.assign(static_cast<std::size_t>(v), 1.0);
  // Switch 0 (nodes 0..7): six of eight nodes stale.
  for (int i = 0; i < 6; ++i) view.node[static_cast<std::size_t>(i)] = 100.0;
  // A few stale pairs elsewhere.
  sim::Rng rng(4444 ^ 0xfeed);
  for (int u = 8; u < v; ++u) {
    for (int w = u + 1; w < v; ++w) {
      if (rng.chance(0.1)) {
        view.pair[static_cast<std::size_t>(u)][static_cast<std::size_t>(w)] =
            700.0;
        view.pair[static_cast<std::size_t>(w)][static_cast<std::size_t>(u)] =
            700.0;
      }
    }
  }

  DegradationPolicy policy;
  policy.block_quarantine_fraction = 0.5;
  Degrader degrader(policy);
  const DegradationOutcome out = degrader.apply(snapshot, view);
  ASSERT_TRUE(out.degraded);
  EXPECT_EQ(out.block_quarantined, 2u);  // the two survivors of switch 0
  EXPECT_EQ(out.quarantined, 8u);
  check_on_snapshot(*out.snapshot, 16);
  check_two_phase_covering(*out.snapshot, 16);
}

// ---------------------------------------------------------------------------
// Parallel refresh plane: a PreparedBuilder with a thread pool attached must
// produce epochs BIT-IDENTICAL to a serial builder — full rebuilds (flat and
// tiled), sharded delta applies, and materializations, including on degraded
// snapshots. The pool may only change wall time, never bits (fixed-range
// ExactSum partials folded in canonical order; DESIGN.md §17).
// ---------------------------------------------------------------------------

void expect_same_matrix(const util::FlatMatrix* a, const util::FlatMatrix* b) {
  ASSERT_EQ(a == nullptr, b == nullptr);
  if (a == nullptr) return;
  ASSERT_EQ(a->size(), b->size());
  // memcmp, not EXPECT_DOUBLE_EQ: the contract is bit-exactness.
  EXPECT_EQ(std::memcmp(a->data(), b->data(),
                        a->value_count() * sizeof(double)),
            0);
}

void expect_same_epoch(const PreparedSnapshot& a, const PreparedSnapshot& b) {
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.usable, b.usable);
  EXPECT_EQ(a.cl, b.cl);
  EXPECT_EQ(a.pc, b.pc);
  EXPECT_EQ(a.pos_of, b.pos_of);
  EXPECT_EQ(a.load_per_core, b.load_per_core);
  EXPECT_EQ(a.effective_capacity, b.effective_capacity);
  expect_same_matrix(a.nl.get(), b.nl.get());
  ASSERT_EQ(a.tiles == nullptr, b.tiles == nullptr);
  if (a.tiles != nullptr) {
    EXPECT_EQ(a.tiles->scalars.lat_fill, b.tiles->scalars.lat_fill);
    EXPECT_EQ(a.tiles->scalars.comp_fill, b.tiles->scalars.comp_fill);
    EXPECT_EQ(a.tiles->scalars.lat_s, b.tiles->scalars.lat_s);
    EXPECT_EQ(a.tiles->scalars.comp_s, b.tiles->scalars.comp_s);
    EXPECT_EQ(a.tiles->scalars.rescale, b.tiles->scalars.rescale);
    ASSERT_EQ(a.tiles->tiles.size(), b.tiles->tiles.size());
    for (std::size_t t = 0; t < a.tiles->tiles.size(); ++t) {
      EXPECT_EQ(a.tiles->tiles[t].lat_mean, b.tiles->tiles[t].lat_mean)
          << "tile " << t;
      EXPECT_EQ(a.tiles->tiles[t].comp_mean, b.tiles->tiles[t].comp_mean)
          << "tile " << t;
      EXPECT_EQ(a.tiles->tiles[t].pairs, b.tiles->tiles[t].pairs)
          << "tile " << t;
    }
  }
}

/// Copies `base`, rewrites ~pair_fraction of the measured pairs (some to
/// unmeasured, to cross the missing-count transitions) and ~20% of node
/// loads, and returns the new snapshot plus the matching delta.
std::shared_ptr<const monitor::ClusterSnapshot> churned_snapshot(
    const monitor::ClusterSnapshot& base, std::uint64_t seed,
    double pair_fraction, monitor::SnapshotDelta& delta) {
  auto next = std::make_shared<monitor::ClusterSnapshot>(base);
  const int n = static_cast<int>(base.nodes.size());
  sim::Rng rng(seed);
  monitor::DeltaTracker tracker(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (!rng.chance(pair_fraction)) continue;
      const auto uu = static_cast<std::size_t>(u);
      const auto vv = static_cast<std::size_t>(v);
      if (rng.chance(0.1)) {
        next->net.latency_us[uu][vv] = next->net.latency_us[vv][uu] = -1.0;
        next->net.bandwidth_mbps[uu][vv] = next->net.bandwidth_mbps[vv][uu] =
            -1.0;
      } else {
        const double lat = rng.uniform(40.0, 800.0);
        const double bw = rng.uniform(50.0, 950.0);
        next->net.latency_us[uu][vv] = next->net.latency_us[vv][uu] = lat;
        next->net.bandwidth_mbps[uu][vv] = next->net.bandwidth_mbps[vv][uu] =
            bw;
        next->net.peak_mbps[uu][vv] = next->net.peak_mbps[vv][uu] = 1000.0;
      }
      tracker.mark_pair(u, v);
    }
  }
  for (int i = 0; i < n; ++i) {
    if (!rng.chance(0.2)) continue;
    auto& node = next->nodes[static_cast<std::size_t>(i)];
    const double load = rng.uniform(0.0, 8.0);
    node.cpu_load = load;
    node.cpu_load_avg = {load, load * 0.9, load * 0.8};
    tracker.mark_node(i);
  }
  next->version = base.version + 1;
  delta = tracker.drain();
  delta.base_version = base.version;
  delta.version = next->version;
  return next;
}

/// Serial builder vs pooled builder over one snapshot + one churn delta:
/// rebuild, update and build must all land on bit-identical epochs, and the
/// pooled incremental path must still match the pooled from-scratch oracle.
void check_parallel_builder(const monitor::ClusterSnapshot& base_snap,
                            std::uint64_t seed,
                            std::optional<TilingOptions> tiling) {
  auto base = std::make_shared<const monitor::ClusterSnapshot>(base_snap);
  const RequestProfile profile = RequestProfile::of(make_request(16));

  util::ThreadPool pool(4);
  PreparedBuilder serial =
      tiling ? PreparedBuilder(profile, *tiling) : PreparedBuilder(profile);
  PreparedBuilder pooled =
      tiling ? PreparedBuilder(profile, *tiling) : PreparedBuilder(profile);
  pooled.set_thread_pool(&pool);

  serial.rebuild(base);
  pooled.rebuild(base);
  expect_same_epoch(*pooled.build(), *serial.build());

  // Heavy churn so the sharded apply path sees real per-shard queues (and
  // duplicate-free delta order inside each shard).
  monitor::SnapshotDelta delta;
  const auto next = churned_snapshot(*base, seed ^ 0xc0ffee, 0.3, delta);
  ASSERT_TRUE(serial.update(next, delta));
  ASSERT_TRUE(pooled.update(next, delta));
  const auto serial_epoch = serial.build();
  const auto pooled_epoch = pooled.build();
  expect_same_epoch(*pooled_epoch, *serial_epoch);

  // The pooled incremental path must also equal a pooled full rebuild — the
  // bit-identity oracle holds inside parallel mode, not just across modes.
  PreparedBuilder oracle =
      tiling ? PreparedBuilder(profile, *tiling) : PreparedBuilder(profile);
  oracle.set_thread_pool(&pool);
  oracle.rebuild(next);
  expect_same_epoch(*pooled_epoch, *oracle.build());
}

TEST(ParallelRefreshEquivalenceTest, FlatBuildersBitIdentical) {
  for (const int v : {8, 60, 257}) {
    SCOPED_TRACE(::testing::Message() << "V=" << v);
    monitor::ClusterSnapshot snap =
        random_snapshot(v, 0x5eed0000ull + static_cast<std::uint64_t>(v));
    snap.version = 7;
    check_parallel_builder(snap, static_cast<std::uint64_t>(v), std::nullopt);
  }
}

TEST(ParallelRefreshEquivalenceTest, TiledBuildersBitIdentical) {
  for (const int v : {8, 60, 257}) {
    SCOPED_TRACE(::testing::Message() << "V=" << v);
    monitor::ClusterSnapshot snap = switched_snapshot(
        v, 0x7e5700ull + static_cast<std::uint64_t>(v), std::max(2, v / 8));
    snap.version = 9;
    check_parallel_builder(snap, static_cast<std::uint64_t>(v),
                           TilingOptions{});
  }
}

TEST(ParallelRefreshEquivalenceTest, DegradedSnapshotsStayBitIdentical) {
  // Degradation overlays rewrite the snapshot before it reaches the
  // builder; serial and pooled builders must agree on the rewritten input
  // exactly as on a fresh one.
  const int v = 40;
  auto snapshot = std::make_shared<const monitor::ClusterSnapshot>(
      switched_snapshot(v, 5150, 8));
  monitor::StalenessView view;
  view.now = 1000.0;
  view.node.assign(static_cast<std::size_t>(v), 1.0);
  view.pair.assign(static_cast<std::size_t>(v), 1.0);
  sim::Rng rng(0xabcdef);
  for (int i = 0; i < v; ++i) {
    if (rng.chance(0.2)) view.node[static_cast<std::size_t>(i)] = 100.0;
  }
  for (int u = 0; u < v; ++u) {
    for (int w = u + 1; w < v; ++w) {
      if (rng.chance(0.15)) {
        view.pair[static_cast<std::size_t>(u)][static_cast<std::size_t>(w)] =
            700.0;
        view.pair[static_cast<std::size_t>(w)][static_cast<std::size_t>(u)] =
            700.0;
      }
    }
  }
  Degrader degrader(DegradationPolicy{});
  const DegradationOutcome out = degrader.apply(snapshot, view);
  ASSERT_TRUE(out.degraded);
  monitor::ClusterSnapshot degraded = *out.snapshot;
  degraded.version = 11;
  check_parallel_builder(degraded, 99, std::nullopt);
  check_parallel_builder(degraded, 99, TilingOptions{});
}

/// Deterministic procedural pair terms: tiled V=4096 equivalence without
/// materializing a 4096² snapshot (the PairSource seam exists for exactly
/// this).
class HashPairSource final : public PairSource {
 public:
  explicit HashPairSource(std::uint64_t salt) : salt_(salt) {}

  Raw read(cluster::NodeId u, cluster::NodeId v) const override {
    const auto a = static_cast<std::uint64_t>(std::min(u, v));
    const auto b = static_cast<std::uint64_t>(std::max(u, v));
    std::uint64_t x = salt_ ^ (a * 0x9e3779b97f4a7c15ull) ^
                      (b * 0xbf58476d1ce4e5b9ull);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    Raw raw;
    if ((x & 0xf) == 0) return raw;  // ~6% unmeasured
    raw.lat = 40.0 + static_cast<double>(x % 760);
    raw.comp = static_cast<double>((x >> 10) % 950);
    return raw;
  }

 private:
  std::uint64_t salt_;
};

TEST(ParallelRefreshEquivalenceTest, TiledV4096ProceduralBitIdentical) {
  const std::size_t v = 4096;
  std::vector<cluster::NodeId> nodes(v);
  for (std::size_t i = 0; i < v; ++i) {
    nodes[i] = static_cast<cluster::NodeId>(i);
  }
  const HashPairSource old_source(0x01d);
  const HashPairSource new_source(0x4e3);
  const NetworkLoadWeights weights{0.5, 0.5};
  util::ThreadPool pool(4);

  detail::TiledNlState serial;
  detail::TiledNlState pooled;
  serial.full_build(old_source, nodes, util::BlockPartition::fixed(v, 64),
                    weights);
  pooled.full_build(old_source, nodes, util::BlockPartition::fixed(v, 64),
                    weights, &pool);

  const auto expect_same_state = [&](const detail::TiledNlState& a,
                                     const detail::TiledNlState& b) {
    EXPECT_EQ(a.scalars().lat_fill, b.scalars().lat_fill);
    EXPECT_EQ(a.scalars().comp_fill, b.scalars().comp_fill);
    EXPECT_EQ(a.scalars().lat_s, b.scalars().lat_s);
    EXPECT_EQ(a.scalars().comp_s, b.scalars().comp_s);
    EXPECT_EQ(a.scalars().rescale, b.scalars().rescale);
    const std::size_t tiles = a.partition().tile_count();
    ASSERT_EQ(tiles, b.partition().tile_count());
    std::size_t mismatches = 0;
    for (std::size_t t = 0; t < tiles; ++t) {
      if (a.tile_lat_mean(t) != b.tile_lat_mean(t) ||
          a.tile_comp_mean(t) != b.tile_comp_mean(t) ||
          a.tile_pairs(t) != b.tile_pairs(t)) {
        ++mismatches;
      }
    }
    EXPECT_EQ(mismatches, 0u);
  };
  expect_same_state(pooled, serial);

  // Sharded delta apply: a dirty set with repeats, replayed serially on one
  // state and sharded on the other.
  sim::Rng rng(0x600d);
  std::vector<detail::PairPosition> dirty;
  for (int d = 0; d < 4000; ++d) {
    const auto i = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(v) - 2));
    const auto j = static_cast<std::uint32_t>(rng.uniform_int(
        static_cast<std::int64_t>(i) + 1, static_cast<std::int64_t>(v) - 1));
    dirty.push_back({i, j});
    if (d % 37 == 0) dirty.push_back({i, j});  // duplicates, in order
  }
  for (const detail::PairPosition& p : dirty) {
    serial.patch_pair(old_source, new_source, nodes, p.i, p.j);
  }
  serial.refresh_dirty();
  pooled.patch_pairs(old_source, new_source, nodes, dirty, &pool);
  pooled.refresh_dirty();
  expect_same_state(pooled, serial);

  // The dense materialization (disjoint cell writes) agrees too — checked
  // at a smaller V to keep the suite fast.
  const std::size_t mv = 257;
  std::vector<cluster::NodeId> mnodes(nodes.begin(),
                                      nodes.begin() + static_cast<long>(mv));
  detail::TiledNlState mat_serial;
  detail::TiledNlState mat_pooled;
  mat_serial.full_build(new_source, mnodes,
                        util::BlockPartition::fixed(mv, 16), weights);
  mat_pooled.full_build(new_source, mnodes,
                        util::BlockPartition::fixed(mv, 16), weights, &pool);
  util::FlatMatrix want;
  util::FlatMatrix got;
  mat_serial.materialize_dense(new_source, mnodes, want);
  mat_pooled.materialize_dense(new_source, mnodes, got, &pool);
  expect_same_matrix(&got, &want);
}

TEST(FastPathEquivalenceTest, AnnotationMatchesPairMetricsReference) {
  // annotate_allocation walks the FlatMatrix views directly; its averages
  // must stay bit-identical to the per-pair pair_metrics() formulation.
  const monitor::ClusterSnapshot snap = random_snapshot(40, 909);
  const AllocationRequest request = make_request(24);
  NetworkLoadAwareAllocator allocator;
  const Allocation allocation = allocator.allocate(snap, request);
  ASSERT_GE(allocation.nodes.size(), 2u);

  double lat_sum = 0.0, comp_sum = 0.0;
  std::size_t lat_pairs = 0, comp_pairs = 0;
  for (std::size_t i = 0; i < allocation.nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < allocation.nodes.size(); ++j) {
      const PairMetrics m =
          pair_metrics(snap, allocation.nodes[i], allocation.nodes[j]);
      if (m.latency_us >= 0.0) {
        lat_sum += m.latency_us;
        ++lat_pairs;
      }
      if (m.bandwidth_complement_mbps >= 0.0) {
        comp_sum += m.bandwidth_complement_mbps;
        ++comp_pairs;
      }
    }
  }
  const double want_lat =
      lat_pairs > 0 ? lat_sum / static_cast<double>(lat_pairs) : 0.0;
  const double want_comp =
      comp_pairs > 0 ? comp_sum / static_cast<double>(comp_pairs) : 0.0;
  EXPECT_EQ(allocation.avg_latency_us, want_lat);
  EXPECT_EQ(allocation.avg_bw_complement_mbps, want_comp);
}

}  // namespace
}  // namespace nlarm::core
