// The sketch's contract is a hard error bound: every reported quantile is
// within alpha (relative) of the exact order statistic for in-range
// values. These tests check that bound against offline sorted data, the
// merge/geometry rules, and the wait-free concurrency contract.
#include "obs/sketch.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/check.h"

namespace nlarm::obs {
namespace {

/// The exact order statistic matching the sketch's rank definition
/// (rank = max(1, ceil(q * n)), 1-based).
double exact_quantile(std::vector<double> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  const std::size_t rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(q * n)));
  return sorted[rank - 1];
}

TEST(SketchTest, QuantilesWithinRelativeErrorBound) {
  // Latency-shaped data: three decades, log-uniform — the worst case for
  // fixed linear buckets and exactly what the sketch is for.
  std::mt19937_64 rng(2020);
  std::uniform_real_distribution<double> log_value(std::log(1e-5),
                                                   std::log(1e-2));
  QuantileSketch sketch(/*relative_error=*/0.01);
  std::vector<double> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double v = std::exp(log_value(rng));
    values.push_back(v);
    sketch.observe(v);
  }
  ASSERT_EQ(sketch.count(), 20000u);
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double exact = exact_quantile(values, q);
    const double estimate = sketch.quantile(q);
    EXPECT_NEAR(estimate, exact, 0.01 * exact * 1.0001)
        << "q=" << q << " exact=" << exact << " estimate=" << estimate;
  }
}

TEST(SketchTest, CoarserAlphaStillBounded) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> value(1e-4, 1e-1);
  QuantileSketch sketch(/*relative_error=*/0.05);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    const double v = value(rng);
    values.push_back(v);
    sketch.observe(v);
  }
  for (const double q : {0.5, 0.99}) {
    const double exact = exact_quantile(values, q);
    EXPECT_NEAR(sketch.quantile(q), exact, 0.05 * exact * 1.0001);
  }
}

TEST(SketchTest, QuantileIsMonotoneInQ) {
  std::mt19937_64 rng(11);
  std::exponential_distribution<double> value(1000.0);  // ~1ms mean
  QuantileSketch sketch;
  for (int i = 0; i < 10000; ++i) sketch.observe(value(rng) + 1e-6);
  double last = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double estimate = sketch.quantile(q);
    EXPECT_GE(estimate, last) << "q=" << q;
    last = estimate;
  }
}

TEST(SketchTest, MergeEqualsObservingEverything) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> value(1e-6, 1e-3);
  QuantileSketch left, right, combined;
  for (int i = 0; i < 4000; ++i) {
    const double v = value(rng);
    combined.observe(v);
    (i % 2 == 0 ? left : right).observe(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_NEAR(left.sum(), combined.sum(), 1e-9 * combined.sum());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    // Identical bucket contents → identical estimates, not just close ones.
    EXPECT_DOUBLE_EQ(left.quantile(q), combined.quantile(q)) << "q=" << q;
  }
}

TEST(SketchTest, MergeRejectsMismatchedGeometry) {
  QuantileSketch fine(0.01);
  QuantileSketch coarse(0.05);
  coarse.observe(0.5);
  EXPECT_THROW(fine.merge(coarse), util::CheckError);
}

TEST(SketchTest, ZeroAndOutOfRangeValuesAreCountedAndClamped) {
  QuantileSketch sketch(0.01, /*min_value=*/1e-6, /*max_value=*/1e3);
  sketch.observe(0.0);
  sketch.observe(-5.0);  // timers can underflow; never lose the count
  EXPECT_EQ(sketch.count(), 2u);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);  // all mass in the zero bucket

  sketch.reset();
  sketch.observe(1e-12);  // below range: clamps into the lowest bucket
  sketch.observe(1e9);    // above range: clamps into the highest bucket
  EXPECT_EQ(sketch.count(), 2u);
  EXPECT_NEAR(sketch.quantile(0.0), 1e-6, 0.02 * 1e-6);
  EXPECT_NEAR(sketch.quantile(1.0), 1e3, 0.02 * 1e3);
}

TEST(SketchTest, EmptySketchReportsZero) {
  QuantileSketch sketch;
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_DOUBLE_EQ(sketch.sum(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
}

TEST(SketchTest, ResetClearsEverything) {
  QuantileSketch sketch;
  for (int i = 0; i < 100; ++i) sketch.observe(0.001);
  sketch.reset();
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.99), 0.0);
}

TEST(SketchTest, ConcurrentObserveLosesNothing) {
  // The wait-free contract under tsan: concurrent observers plus a reader
  // polling quantiles mid-stream must be race-free, and no observation may
  // be dropped.
  QuantileSketch sketch;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&sketch, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) + 1);
      std::uniform_real_distribution<double> value(1e-5, 1e-2);
      for (int i = 0; i < kPerThread; ++i) sketch.observe(value(rng));
    });
  }
  double mid = 0.0;
  for (int i = 0; i < 100; ++i) mid = sketch.quantile(0.5);  // racing reads
  for (std::thread& w : writers) w.join();
  (void)mid;
  EXPECT_EQ(sketch.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Uniform on [1e-5, 1e-2]: the median is near the midpoint.
  EXPECT_NEAR(sketch.quantile(0.5), 5e-3, 5e-4);
}

}  // namespace
}  // namespace nlarm::obs
