// SpanTracer ring semantics and ScopedSpan timing.
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nlarm::obs {
namespace {

TEST(TraceClock, MonotoneNonNegative) {
  const double a = trace_clock_seconds();
  const double b = trace_clock_seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(SpanTracer, RecordsUpToCapacityOldestFirst) {
  SpanTracer tracer(3);
  tracer.record("a", 0.0, 1.0);
  tracer.record("b", 1.0, 1.0);
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, "a");
  EXPECT_STREQ(spans[1].name, "b");
  EXPECT_EQ(tracer.total_recorded(), 2u);
}

TEST(SpanTracer, RingOverwritesOldest) {
  SpanTracer tracer(3);
  tracer.record("a", 0.0, 1.0);
  tracer.record("b", 1.0, 1.0);
  tracer.record("c", 2.0, 1.0);
  tracer.record("d", 3.0, 1.0);  // evicts "a"
  tracer.record("e", 4.0, 1.0);  // evicts "b"
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_STREQ(spans[0].name, "c");
  EXPECT_STREQ(spans[1].name, "d");
  EXPECT_STREQ(spans[2].name, "e");
  EXPECT_EQ(tracer.total_recorded(), 5u);
}

TEST(SpanTracer, JsonlHasOneLinePerSpan) {
  SpanTracer tracer(4);
  tracer.record("alpha", 0.5, 0.25);
  tracer.record("beta", 1.0, 0.125);
  const std::string jsonl = tracer.jsonl();
  EXPECT_NE(jsonl.find("\"alpha\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"beta\""), std::string::npos);
  int lines = 0;
  for (char ch : jsonl) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 2);
}

TEST(ScopedSpan, RecordsIntoTracerAndHistogram) {
  SpanTracer tracer(8);
  Histogram hist({0.5, 1.0});
  {
    ScopedSpan span("scoped.work", &hist, &tracer);
  }
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "scoped.work");
  EXPECT_GE(spans[0].duration_seconds, 0.0);
  EXPECT_EQ(hist.count(), 1u);
}

TEST(ScopedSpan, StopIsIdempotent) {
  SpanTracer tracer(8);
  Histogram hist({0.5});
  ScopedSpan span("idem", &hist, &tracer);
  const double first = span.stop();
  const double second = span.stop();
  EXPECT_GE(first, 0.0);
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_EQ(tracer.total_recorded(), 1u);
  EXPECT_EQ(hist.count(), 1u);
}

TEST(SpanTracer, GlobalIsSingleton) {
  EXPECT_EQ(&SpanTracer::global(), &SpanTracer::global());
}

}  // namespace
}  // namespace nlarm::obs
