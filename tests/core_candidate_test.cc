#include "core/candidate.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/check.h"

namespace nlarm::core {
namespace {

std::vector<std::vector<double>> uniform_nl(std::size_t n, double value) {
  std::vector<std::vector<double>> nl(n, std::vector<double>(n, value));
  for (std::size_t i = 0; i < n; ++i) nl[i][i] = 0.0;
  return nl;
}

TEST(FillProcessesTest, StopsWhenSatisfied) {
  const std::vector<std::size_t> order{2, 0, 1};
  const std::vector<int> pc{4, 4, 4};
  const FillResult fill = fill_processes(order, pc, 6);
  EXPECT_EQ(fill.members, (std::vector<std::size_t>{2, 0}));
  EXPECT_EQ(fill.procs, (std::vector<int>{4, 2}));
}

TEST(FillProcessesTest, ExactFit) {
  const std::vector<std::size_t> order{0, 1};
  const std::vector<int> pc{4, 4};
  const FillResult fill = fill_processes(order, pc, 8);
  EXPECT_EQ(fill.procs, (std::vector<int>{4, 4}));
}

TEST(FillProcessesTest, RoundRobinOverflow) {
  const std::vector<std::size_t> order{0, 1};
  const std::vector<int> pc{2, 2};
  const FillResult fill = fill_processes(order, pc, 9);
  // 2+2 capacity, 5 extra spread round-robin: 0 gets 3 extra, 1 gets 2.
  EXPECT_EQ(fill.procs, (std::vector<int>{5, 4}));
  EXPECT_EQ(std::accumulate(fill.procs.begin(), fill.procs.end(), 0), 9);
}

TEST(FillProcessesTest, InvalidInputsRejected) {
  const std::vector<std::size_t> order{0};
  const std::vector<int> pc{4};
  EXPECT_THROW(fill_processes(order, pc, 0), util::CheckError);
  EXPECT_THROW(fill_processes({}, pc, 4), util::CheckError);
  const std::vector<int> bad_pc{0};
  EXPECT_THROW(fill_processes(order, bad_pc, 4), util::CheckError);
}

TEST(CandidateTest, StartNodeAlwaysFirst) {
  const std::vector<double> cl{0.9, 0.1, 0.5};
  const auto nl = uniform_nl(3, 0.2);
  const std::vector<int> pc{4, 4, 4};
  // Even though node 0 is the most loaded, a candidate started at 0 keeps it.
  const Candidate c =
      generate_candidate(0, cl, nl, pc, 8, JobWeights::balanced());
  ASSERT_GE(c.members.size(), 1u);
  EXPECT_EQ(c.members[0], 0u);
  EXPECT_EQ(c.start_index, 0u);
}

TEST(CandidateTest, PrefersLowAdditionCost) {
  // From start 0: node 1 has lower CL than node 2, equal NL → pick 1.
  const std::vector<double> cl{0.5, 0.1, 0.9};
  const auto nl = uniform_nl(3, 0.2);
  const std::vector<int> pc{4, 4, 4};
  const Candidate c =
      generate_candidate(0, cl, nl, pc, 8, JobWeights::balanced());
  EXPECT_EQ(c.members, (std::vector<std::size_t>{0, 1}));
}

TEST(CandidateTest, NetworkLoadSteersSelection) {
  // Node 1 is lightly loaded but far (high NL from 0); node 2 loaded but
  // close. With β-heavy weights the candidate picks node 2.
  const std::vector<double> cl{0.1, 0.1, 0.4};
  auto nl = uniform_nl(3, 0.0);
  nl[0][1] = nl[1][0] = 0.9;
  nl[0][2] = nl[2][0] = 0.05;
  const std::vector<int> pc{4, 4, 4};
  const Candidate comm = generate_candidate(0, cl, nl, pc, 8,
                                            JobWeights{0.1, 0.9});
  EXPECT_EQ(comm.members, (std::vector<std::size_t>{0, 2}));
  const Candidate comp = generate_candidate(0, cl, nl, pc, 8,
                                            JobWeights{0.9, 0.1});
  EXPECT_EQ(comp.members, (std::vector<std::size_t>{0, 1}));
}

TEST(CandidateTest, ProcsSumToRequest) {
  const std::vector<double> cl{0.1, 0.2, 0.3, 0.4};
  const auto nl = uniform_nl(4, 0.1);
  const std::vector<int> pc{4, 4, 4, 4};
  for (int n : {1, 3, 4, 9, 16, 40}) {
    const Candidate c =
        generate_candidate(1, cl, nl, pc, n, JobWeights::balanced());
    EXPECT_EQ(std::accumulate(c.procs.begin(), c.procs.end(), 0), n);
    EXPECT_EQ(c.total_procs, n);
  }
}

TEST(CandidateTest, AllCandidatesGenerated) {
  const std::vector<double> cl{0.1, 0.2, 0.3};
  const auto nl = uniform_nl(3, 0.1);
  const std::vector<int> pc{2, 2, 2};
  const auto candidates =
      generate_all_candidates(cl, nl, pc, 4, JobWeights::balanced());
  ASSERT_EQ(candidates.size(), 3u);
  for (std::size_t v = 0; v < 3; ++v) {
    EXPECT_EQ(candidates[v].start_index, v);
    EXPECT_EQ(candidates[v].members[0], v);
  }
}

TEST(CandidateTest, DeterministicTieBreakByIndex) {
  const std::vector<double> cl{0.5, 0.5, 0.5};
  const auto nl = uniform_nl(3, 0.5);
  const std::vector<int> pc{4, 4, 4};
  const Candidate c =
      generate_candidate(2, cl, nl, pc, 12, JobWeights::balanced());
  // Ties resolved by ascending index after the start node.
  EXPECT_EQ(c.members, (std::vector<std::size_t>{2, 0, 1}));
}

TEST(CandidateTest, SizeMismatchRejected) {
  const std::vector<double> cl{0.1, 0.2};
  const auto nl = uniform_nl(3, 0.1);
  const std::vector<int> pc{2, 2};
  EXPECT_THROW(
      generate_candidate(0, cl, nl, pc, 2, JobWeights::balanced()),
      util::CheckError);
  const auto nl2 = uniform_nl(2, 0.1);
  EXPECT_THROW(
      generate_candidate(5, cl, nl2, pc, 2, JobWeights::balanced()),
      util::CheckError);
}

TEST(CandidateTest, AlphaBetaMustSumToOne) {
  const std::vector<double> cl{0.1, 0.2};
  const auto nl = uniform_nl(2, 0.1);
  const std::vector<int> pc{2, 2};
  EXPECT_THROW(
      generate_candidate(0, cl, nl, pc, 2, JobWeights{0.5, 0.9}),
      util::CheckError);
}

}  // namespace
}  // namespace nlarm::core
