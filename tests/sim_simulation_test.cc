#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.h"

namespace nlarm::sim {
namespace {

TEST(SimulationTest, ClockAdvancesToRunUntilTarget) {
  Simulation sim;
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(SimulationTest, ScheduleInFiresAtRightTime) {
  Simulation sim;
  double fired_at = -1.0;
  sim.schedule_in(5.0, [&] { fired_at = sim.now(); });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(SimulationTest, EventsBeyondHorizonNotFired) {
  Simulation sim;
  bool fired = false;
  sim.schedule_in(20.0, [&] { fired = true; });
  sim.run_until(10.0);
  EXPECT_FALSE(fired);
  sim.run_until(25.0);
  EXPECT_TRUE(fired);
}

TEST(SimulationTest, NegativeDelayRejected) {
  Simulation sim;
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), util::CheckError);
}

TEST(SimulationTest, RunUntilPastRejected) {
  Simulation sim;
  sim.run_until(5.0);
  EXPECT_THROW(sim.run_until(4.0), util::CheckError);
}

TEST(SimulationTest, PeriodicTaskFiresRepeatedly) {
  Simulation sim;
  std::vector<double> fire_times;
  sim.schedule_every(2.0, 2.0, [&] { fire_times.push_back(sim.now()); });
  sim.run_until(9.0);
  EXPECT_EQ(fire_times, (std::vector<double>{2.0, 4.0, 6.0, 8.0}));
}

TEST(SimulationTest, PeriodicTaskInitialDelayIndependent) {
  Simulation sim;
  std::vector<double> fire_times;
  sim.schedule_every(5.0, 1.0, [&] { fire_times.push_back(sim.now()); });
  sim.run_until(12.0);
  EXPECT_EQ(fire_times, (std::vector<double>{1.0, 6.0, 11.0}));
}

TEST(SimulationTest, CancelledPeriodicStops) {
  Simulation sim;
  int count = 0;
  PeriodicHandle handle = sim.schedule_every(1.0, 1.0, [&] { ++count; });
  sim.run_until(3.5);
  EXPECT_EQ(count, 3);
  handle.cancel();
  EXPECT_FALSE(handle.active());
  sim.run_until(10.0);
  EXPECT_EQ(count, 3);
}

TEST(SimulationTest, PeriodicCanCancelItself) {
  Simulation sim;
  int count = 0;
  PeriodicHandle handle;
  handle = sim.schedule_every(1.0, 1.0, [&] {
    ++count;
    if (count == 2) handle.cancel();
  });
  sim.run_until(10.0);
  EXPECT_EQ(count, 2);
}

TEST(SimulationTest, EventsDispatchedCounter) {
  Simulation sim;
  sim.schedule_in(1.0, [] {});
  sim.schedule_in(2.0, [] {});
  sim.run_until(5.0);
  EXPECT_EQ(sim.events_dispatched(), 2u);
}

TEST(SimulationTest, ForkRngIsStableAcrossCallOrder) {
  Simulation sim_a(42);
  Rng first_a = sim_a.fork_rng("x");
  Rng second_a = sim_a.fork_rng("y");

  Simulation sim_b(42);
  Rng second_b = sim_b.fork_rng("y");
  Rng first_b = sim_b.fork_rng("x");

  EXPECT_EQ(first_a.next_u64(), first_b.next_u64());
  EXPECT_EQ(second_a.next_u64(), second_b.next_u64());
}

TEST(SimulationTest, ForkRngDependsOnSeed) {
  Simulation sim_a(1);
  Simulation sim_b(2);
  EXPECT_NE(sim_a.fork_rng("x").next_u64(), sim_b.fork_rng("x").next_u64());
}

TEST(SimulationTest, StepRunsOneEvent) {
  Simulation sim;
  int count = 0;
  sim.schedule_in(1.0, [&] { ++count; });
  sim.schedule_in(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

}  // namespace
}  // namespace nlarm::sim
