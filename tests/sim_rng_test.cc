#include "sim/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/check.h"
#include "util/stats.h"

namespace nlarm::sim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  util::StreamingStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
  EXPECT_THROW(rng.uniform(3.0, -2.0), util::CheckError);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 5);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RngTest, UniformIntSinglePoint) {
  Rng rng(19);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(RngTest, NormalMomentsCorrect) {
  Rng rng(23);
  util::StreamingStats stats;
  for (int i = 0; i < 40000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stdev(), 1.0, 0.02);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(29);
  util::StreamingStats stats;
  for (int i = 0; i < 40000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stdev(), 2.0, 0.05);
  EXPECT_THROW(rng.normal(0.0, -1.0), util::CheckError);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(31);
  util::StreamingStats stats;
  for (int i = 0; i < 40000; ++i) stats.add(rng.exponential(0.5));
  EXPECT_NEAR(stats.mean(), 2.0, 0.05);
  EXPECT_THROW(rng.exponential(0.0), util::CheckError);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(37);
  util::StreamingStats small;
  for (int i = 0; i < 20000; ++i) {
    small.add(static_cast<double>(rng.poisson(3.0)));
  }
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  util::StreamingStats large;
  for (int i = 0; i < 20000; ++i) {
    large.add(static_cast<double>(rng.poisson(200.0)));
  }
  EXPECT_NEAR(large.mean(), 200.0, 1.0);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(RngTest, LognormalMedian) {
  Rng rng(41);
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) samples.push_back(rng.lognormal(std::log(10.0), 0.5));
  EXPECT_NEAR(util::median(samples), 10.0, 0.5);
}

TEST(RngTest, ChanceProbability) {
  Rng rng(43);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
  EXPECT_THROW(rng.chance(1.5), util::CheckError);
}

TEST(RngTest, ForkedStreamsIndependent) {
  Rng root(99);
  Rng a = root.fork("alpha");
  Rng b = root.fork("beta");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(51);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  rng.shuffle(v.data(), v.size());
  std::set<int> seen(v.begin(), v.end());
  EXPECT_EQ(seen.size(), 8u);
}

TEST(HashLabelTest, DistinctLabelsDistinctHashes) {
  EXPECT_NE(hash_label("a"), hash_label("b"));
  EXPECT_EQ(hash_label("same"), hash_label("same"));
}

}  // namespace
}  // namespace nlarm::sim
