// nlarm_top — a terminal dashboard for a live nlarm_broker.
//
// Polls the broker's telemetry plane (obs/telemetry_server.h) over plain
// HTTP — /metrics for the Prometheus exposition and /epoch for the SLO
// header — and renders a compact top(1)-style view: serving rate, decide
// latency quantiles from the streaming sketches, epoch freshness against
// the staleness budget, and the degradation counters.
//
//   nlarm_top --port 9464                 # refresh every second
//   nlarm_top --port 9464 --interval 0.2  # finer refresh
//   nlarm_top --port 9464 --once          # one frame, no ANSI (scripts/CI)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <chrono>

#include "obs/http_client.h"
#include "util/args.h"

namespace {

/// Parses a Prometheus text exposition into name → value. Histogram bucket
/// lines keep their label clause in the key (`name_bucket{le="0.001"}`), so
/// plain series are addressable by bare name.
std::map<std::string, double> parse_prometheus(const std::string& text) {
  std::map<std::string, double> series;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) continue;
    const std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    char* tail = nullptr;
    const double parsed = std::strtod(value.c_str(), &tail);
    if (tail != value.c_str()) series[name] = parsed;
  }
  return series;
}

double series(const std::map<std::string, double>& metrics,
              const std::string& name) {
  const auto it = metrics.find(name);
  return it == metrics.end() ? 0.0 : it->second;
}

/// Pulls `"key":<number>` out of the /epoch JSON (flat object, no nesting —
/// a full parser would be overkill for five numeric fields).
double json_number(const std::string& body, const std::string& key,
                   double fallback = 0.0) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return fallback;
  const char* start = body.c_str() + at + needle.size();
  char* tail = nullptr;
  const double parsed = std::strtod(start, &tail);
  return tail != start ? parsed : fallback;
}

bool json_true(const std::string& body, const std::string& key) {
  return body.find("\"" + key + "\":true") != std::string::npos;
}

/// Counter-delta rate over one frame interval. A restarted broker resets
/// its counters to zero, so a negative delta means the sample straddles a
/// restart: report 0 instead of a negative rate and flag the sample so the
/// header can say "[reset]".
double counter_rate(double current, double& last, double interval,
                    bool& reset) {
  double rate = 0.0;
  if (!std::isnan(last) && interval > 0.0) {
    const double delta = current - last;
    if (delta < 0.0) {
      reset = true;
    } else {
      rate = delta / interval;
    }
  }
  last = current;
  return rate;
}

std::string format_latency(double seconds) {
  char buffer[32];
  if (seconds <= 0.0) {
    std::snprintf(buffer, sizeof buffer, "    -");
  } else if (seconds < 1e-3) {
    std::snprintf(buffer, sizeof buffer, "%5.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buffer, sizeof buffer, "%5.2fms", seconds * 1e3);
  } else {
    std::snprintf(buffer, sizeof buffer, "%5.2fs ", seconds);
  }
  return buffer;
}

}  // namespace

using namespace nlarm;

int main(int argc, char** argv) {
  util::ArgParser parser(
      "nlarm_top: live terminal dashboard over an nlarm_broker telemetry "
      "endpoint (--telemetry-port).",
      {{"host", "broker host (default 127.0.0.1)"},
       {"port", "broker telemetry port (required)"},
       {"interval", "seconds between frames (default 1)"},
       {"frames", "stop after this many frames; 0 = forever (default 0)"},
       {"once", "print a single frame without ANSI control (for scripts)"}});
  if (!parser.parse(argc, argv)) return 0;

  const std::string host = parser.get_string("host", "127.0.0.1");
  const int port = static_cast<int>(parser.get_long("port", 0));
  if (port <= 0) {
    std::fprintf(stderr, "nlarm_top: --port is required (the broker prints "
                         "it at startup, or use --telemetry-port-file)\n");
    return 1;
  }
  const bool once = parser.get_bool("once");
  const double interval = parser.get_double("interval", 1.0);
  long frames_left = parser.get_long("frames", 0);
  if (once) frames_left = 1;

  double last_decides = NAN;
  double last_allocs = NAN;
  double last_plane_decisions = NAN;
  double last_epochs = NAN;
  for (long frame = 0;; ++frame) {
    const std::optional<obs::HttpResponse> metrics_response =
        obs::http_get(host, port, "/metrics");
    const std::optional<obs::HttpResponse> epoch_response =
        obs::http_get(host, port, "/epoch");
    const std::optional<obs::HttpResponse> ready_response =
        obs::http_get(host, port, "/readyz");
    if (!metrics_response || metrics_response->status != 200) {
      std::fprintf(stderr, "nlarm_top: no /metrics from %s:%d\n",
                   host.c_str(), port);
      return 1;
    }
    const std::map<std::string, double> m =
        parse_prometheus(metrics_response->body);
    const std::string epoch_body = epoch_response ? epoch_response->body : "";

    const double decides = series(m, "nlarm_broker_decisions_total");
    const double allocs = series(m, "nlarm_broker_allocations_total");
    bool counter_reset = false;
    const double decide_rate =
        counter_rate(decides, last_decides, interval, counter_reset);
    const double alloc_rate =
        counter_rate(allocs, last_allocs, interval, counter_reset);
    const double plane_decisions =
        series(m, "nlarm_serve_plane_decisions_total");
    const double plane_rate = counter_rate(plane_decisions,
                                           last_plane_decisions, interval,
                                           counter_reset);

    if (!once) std::printf("\033[H\033[2J");  // clear + home
    const bool ready = ready_response && ready_response->status == 200;
    std::printf("nlarm_top — %s:%d   [%s]%s\n", host.c_str(), port,
                ready ? "READY" : "NOT READY",
                counter_reset ? " [reset]" : "");
    std::printf(
        "epoch %.0f  age %.1fs / %.0fs budget  burn %3.0f%%  published=%s\n",
        json_number(epoch_body, "epoch"),
        json_number(epoch_body, "age_seconds"),
        json_number(epoch_body, "max_age_seconds"),
        100.0 * json_number(epoch_body, "staleness_burn"),
        json_true(epoch_body, "published") ? "yes" : "no");
    std::printf(
        "nodes  usable %.0f  quarantined %.0f  pair-fallbacks %.0f  "
        "degraded=%s  tiled-state %.1f KiB\n",
        json_number(epoch_body, "usable_nodes"),
        json_number(epoch_body, "quarantined"),
        json_number(epoch_body, "pair_fallbacks"),
        json_true(epoch_body, "degraded") ? "yes" : "no",
        json_number(epoch_body, "tiled_state_bytes") / 1024.0);
    std::printf("\n");
    std::printf("serve   %8.0f decide/s  %8.0f alloc/s   inflight %.0f on "
                "%.0f thread(s)\n",
                decide_rate, alloc_rate, series(m, "nlarm_serve_inflight"),
                series(m, "nlarm_serve_threads"));
    std::printf("decide  p50 %s  p95 %s  p99 %s  p999 %s\n",
                format_latency(
                    series(m, "nlarm_serve_decide_p50_seconds")).c_str(),
                format_latency(
                    series(m, "nlarm_serve_decide_p95_seconds")).c_str(),
                format_latency(
                    series(m, "nlarm_serve_decide_p99_seconds")).c_str(),
                format_latency(
                    series(m, "nlarm_serve_decide_p999_seconds")).c_str());
    std::printf("admit   p50 %s  p99 %s      refresh  p50 %s  p99 %s\n",
                format_latency(
                    series(m, "nlarm_admission_wait_p50_seconds")).c_str(),
                format_latency(
                    series(m, "nlarm_admission_wait_p99_seconds")).c_str(),
                format_latency(
                    series(m, "nlarm_epoch_refresh_p50_seconds")).c_str(),
                format_latency(
                    series(m, "nlarm_epoch_refresh_p99_seconds")).c_str());

    // Sharded front end (core/serve_shard.h): decisions/sec through the
    // plane, cache effectiveness, coalescing, and queue pressure.
    const double plane_hits = series(m, "nlarm_serve_cache_hits_total");
    const double plane_hit_pct =
        plane_decisions > 0.0 ? 100.0 * plane_hits / plane_decisions : 0.0;
    const double plane_coalesced = series(m, "nlarm_serve_coalesced_total");
    const double plane_coalesce_pct =
        plane_decisions > 0.0 ? 100.0 * plane_coalesced / plane_decisions
                              : 0.0;
    std::printf("shards  %8.0f decide/s  cache %3.0f%% hit  coalesced %3.0f%%"
                "  queue %.0f  on %.0f shard(s)\n",
                plane_rate, plane_hit_pct, plane_coalesce_pct,
                series(m, "nlarm_serve_shard_queue_depth"),
                series(m, "nlarm_serve_shards"));
    std::printf("        invalidations %.0f  scoring-passes %.0f  "
                "full-ring spins %.0f  simd-kernel %.0f\n",
                series(m, "nlarm_serve_cache_invalidations_total"),
                series(m, "nlarm_serve_scoring_passes_total"),
                series(m, "nlarm_serve_queue_full_spins_total"),
                series(m, "nlarm_simd_kernel"));
    std::printf("\n");
    std::printf("totals  decisions %.0f  allocations %.0f  waits %.0f  "
                "fallbacks %.0f  refusals %.0f\n",
                decides, allocs, series(m, "nlarm_broker_waits_total"),
                series(m, "nlarm_broker_fallback_decisions_total"),
                series(m, "nlarm_broker_stale_refusals_total"));
    const double epochs_published = series(m, "nlarm_epoch_publishes_total");
    const double epoch_rate =
        counter_rate(epochs_published, last_epochs, interval, counter_reset);
    std::printf("epochs  published %.0f (%.1f/s)  refresh-lag %.3fs  "
                "delta-log tail %.0f B\n",
                epochs_published, epoch_rate,
                series(m, "nlarm_epoch_refresh_lag_seconds"),
                series(m, "nlarm_delta_log_tail_bytes"));
    // Parallel refresh plane (DESIGN.md §17): rebuild/apply stage latency,
    // active worker count, and the decode-ahead log-ingest pipeline.
    std::printf("refresh workers %.0f  rebuild p50 %s p95 %s  "
                "apply p50 %s p95 %s\n",
                series(m, "nlarm_refresh_workers"),
                format_latency(
                    series(m, "nlarm_refresh_rebuild_p50_seconds")).c_str(),
                format_latency(
                    series(m, "nlarm_refresh_rebuild_p95_seconds")).c_str(),
                format_latency(
                    series(m, "nlarm_refresh_apply_p50_seconds")).c_str(),
                format_latency(
                    series(m, "nlarm_refresh_apply_p95_seconds")).c_str());
    std::printf("        parallel rebuilds %.0f  applies %.0f  "
                "decode-ahead frames %.0f  queue depth %.0f\n",
                series(m, "nlarm_refresh_parallel_rebuilds_total"),
                series(m, "nlarm_refresh_parallel_applies_total"),
                series(m, "nlarm_refresh_decode_ahead_frames_total"),
                series(m, "nlarm_refresh_decode_ahead_depth"));
    // Replication panel, shown only when this broker is part of a
    // replicated fleet (a follower that ingested frames, or a promoted /
    // configured leader).
    const double replica_frames =
        series(m, "nlarm_replica_frames_ingested_total");
    const double replica_role = series(m, "nlarm_replica_role");
    const double replica_promotions =
        series(m, "nlarm_replica_promotions_total");
    if (replica_frames > 0.0 || replica_role > 0.0 ||
        replica_promotions > 0.0) {
      std::printf("replica %s  lag %.1fs  frames %.0f  epochs %.0f  "
                  "fenced %.0f  promotions %.0f\n",
                  replica_role > 0.0 ? "LEADER  " : "FOLLOWER",
                  series(m, "nlarm_replica_lag_seconds"), replica_frames,
                  series(m, "nlarm_replica_epochs_total"),
                  series(m, "nlarm_replica_fenced_total"),
                  replica_promotions);
    }
    // Sparse-probe panel, shown once the pair daemons run in sparse mode.
    const double probe_rounds = series(m, "nlarm_probe_rounds_total");
    if (probe_rounds > 0.0) {
      std::printf("probes  rounds %.0f  measured %.0f  reconstructed %.0f  "
                  "traffic %.1f%% of full mesh\n",
                  probe_rounds, series(m, "nlarm_probe_pairs_measured_total"),
                  series(m, "nlarm_probe_pairs_reconstructed_total"),
                  100.0 * series(m, "nlarm_probe_traffic_fraction"));
    }
    std::printf("chaos   events %.0f  quarantine-events %.0f  "
                "readmissions %.0f  clock-skew %.1fs\n",
                series(m, "nlarm_chaos_events_total"),
                series(m, "nlarm_degrade_quarantine_events_total"),
                series(m, "nlarm_degrade_readmissions_total"),
                series(m, "nlarm_chaos_clock_skew_seconds"));
    std::printf("scrapes %.0f (%.0f error(s))  flushes %.0f\n",
                series(m, "nlarm_telemetry_scrapes_total"),
                series(m, "nlarm_telemetry_scrape_errors_total"),
                series(m, "nlarm_telemetry_flushes_total"));
    std::fflush(stdout);

    if (frames_left > 0 && frame + 1 >= frames_left) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }
  return 0;
}
