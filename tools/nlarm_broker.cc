// nlarm_broker — the command-line face of the resource manager.
//
// Builds a cluster (the paper's testbed or a user --cluster spec), runs the
// background workload and the Resource Monitor for a warm-up period, then
// serves one allocation request and prints the result in a launcher-ready
// format. One process = one brokered decision, like invoking the paper's
// tool before an mpiexec.
//
// Examples:
//   nlarm_broker --procs 32 --ppn 4 --beta 0.7 --format srun
//   nlarm_broker --cluster "8x12c@4.6;8x8c@2.8" --procs 16 --format openmpi
//   nlarm_broker --procs 64 --scenario heavy            # → wait advice
//   nlarm_broker --procs 32 --policy hierarchical --explain
//   nlarm_broker --procs 32 --metrics-out metrics.prom --audit-out audit.jsonl
//   nlarm_broker --procs 32 --serve-threads 4 --serve-requests 20000
//   nlarm_broker --serve-threads 4 --telemetry-port 0 --telemetry-hold 30
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <thread>

#include "apps/minimd.h"
#include "cluster/spec_loader.h"
#include "core/baselines.h"
#include "core/broker.h"
#include "core/epoch.h"
#include "core/explain.h"
#include "core/hierarchical.h"
#include "core/prepared.h"
#include "core/launcher_export.h"
#include "core/replica.h"
#include "core/serve_shard.h"
#include "monitor/delta_log.h"
#include "exp/chaos_harness.h"
#include "exp/experiment.h"
#include "monitor/persistence.h"
#include "sim/chaos.h"
#include "util/check.h"
#include "obs/audit.h"
#include "obs/catalog.h"
#include "obs/flusher.h"
#include "obs/metrics.h"
#include "obs/telemetry_server.h"
#include "obs/trace.h"
#include "util/args.h"
#include "util/logging.h"
#include "util/strings.h"

namespace {

/// Writes the full Prometheus exposition (every catalog series — they are
/// all registered at startup), the audit JSONL, and the span-ring JSONL,
/// if requested.
void write_observability_outputs(const std::string& metrics_path,
                                 const std::string& audit_path,
                                 const std::string& trace_path,
                                 const nlarm::obs::AuditLog& audit_log) {
  if (!metrics_path.empty()) {
    nlarm::obs::metrics::export_quantile_gauges();
    std::ofstream out(metrics_path);
    if (!out) {
      std::cerr << "cannot write metrics to " << metrics_path << "\n";
    } else {
      out << nlarm::obs::MetricsRegistry::global().prometheus_text();
      std::cerr << "metrics written to " << metrics_path << "\n";
    }
  }
  if (!audit_path.empty()) {
    std::ofstream out(audit_path, std::ios::app);
    if (!out) {
      std::cerr << "cannot write audit log to " << audit_path << "\n";
    } else {
      out << audit_log.jsonl();
      std::cerr << "audit record(s) appended to " << audit_path << "\n";
    }
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot write trace spans to " << trace_path << "\n";
    } else {
      out << nlarm::obs::SpanTracer::global().jsonl();
      std::cerr << "trace spans written to " << trace_path << "\n";
    }
  }
}

}  // namespace

using namespace nlarm;

namespace {

std::unique_ptr<core::Allocator> make_policy_allocator(
    const std::string& policy, std::uint64_t seed) {
  if (policy == "hierarchical")
    return std::make_unique<core::HierarchicalAllocator>();
  if (policy == "load-aware")
    return std::make_unique<core::LoadAwareAllocator>();
  if (policy == "sequential")
    return std::make_unique<core::SequentialAllocator>(seed);
  if (policy == "random") return std::make_unique<core::RandomAllocator>(seed);
  return std::make_unique<core::NetworkLoadAwareAllocator>();
}

/// Bitwise decision parity: the drill requires the follower's decision at
/// epoch E to reproduce the leader's exactly, diagnostics included.
bool decisions_equal(const core::BrokerDecision& a,
                     const core::BrokerDecision& b) {
  return a.action == b.action && a.reason == b.reason &&
         a.cluster_load_per_core == b.cluster_load_per_core &&
         a.effective_capacity == b.effective_capacity &&
         a.allocation.policy == b.allocation.policy &&
         a.allocation.nodes == b.allocation.nodes &&
         a.allocation.procs_per_node == b.allocation.procs_per_node &&
         a.allocation.total_procs == b.allocation.total_procs &&
         a.allocation.avg_cpu_load == b.allocation.avg_cpu_load &&
         a.allocation.avg_bw_complement_mbps ==
             b.allocation.avg_bw_complement_mbps &&
         a.allocation.avg_latency_us == b.allocation.avg_latency_us &&
         a.allocation.total_cost == b.allocation.total_cost;
}

/// In-process leader-failover drill: a leader broker replicates every tick
/// through a delta log to a FollowerBroker; seeded chaos kills the leader
/// mid-compaction (its full-frame rewrite is torn); the follower promotes
/// from the last-good frame after the silence threshold and takes over the
/// append side. Both sides decide every tick on the non-degraded epoch
/// path so follower decisions must be bit-identical to the leader's at the
/// same replicated version. Returns the process exit code (0 pass, 3 fail).
int run_failover_drill(sim::Simulation& sim, monitor::ResourceMonitor& monitor,
                       exp::ChaosHarness& harness, bool* kill_pending,
                       const std::string& policy_name, std::uint64_t seed,
                       const core::BrokerPolicy& broker_policy,
                       const core::AllocationRequest& request,
                       const std::string& log_path_arg, double drill_seconds,
                       double promote_after, double max_epoch_age,
                       int refresh_threads,
                       std::atomic<double>& telemetry_now) {
  const std::string log_path =
      log_path_arg.empty() ? "nlarm_failover_drill.nlarmd" : log_path_arg;
  std::remove(log_path.c_str());

  const core::RequestProfile profile = core::RequestProfile::of(request);
  // Separate allocator instances: the classic-path allocator carries shared
  // mutable scratch, and the drill's two brokers decide in the same tick.
  const auto leader_allocator = make_policy_allocator(policy_name, seed);
  const auto follower_allocator = make_policy_allocator(policy_name, seed);
  core::ResourceBroker leader(*leader_allocator, broker_policy);
  if (refresh_threads > 1) leader.set_refresh_threads(refresh_threads);
  monitor::DeltaLogWriter writer(log_path);

  core::ReplicaOptions replica_options;
  replica_options.max_epoch_age_s = max_epoch_age;
  replica_options.promote_after_s = promote_after;
  replica_options.refresh_threads = refresh_threads;
  core::FollowerBroker follower(*follower_allocator, log_path, profile,
                                replica_options, broker_policy);

  const double tick_s = 5.0;
  const double end_time = sim.now() + drill_seconds;
  bool leader_alive = true;
  long parity_checks = 0;
  long mismatches = 0;
  long refused = 0;
  long follower_decides = 0;
  long decides_after_promotion = 0;
  std::unique_ptr<monitor::DeltaLogWriter> takeover_writer;
  double now = sim.now();
  while (sim.now() < end_time) {
    sim.run_until(std::min(end_time, sim.now() + tick_s));
    now = sim.now();
    telemetry_now.store(now, std::memory_order_relaxed);

    std::optional<core::BrokerDecision> leader_decision;
    std::uint64_t leader_version = 0;
    if (leader_alive) {
      auto tick_snapshot = std::make_shared<const monitor::ClusterSnapshot>(
          monitor.snapshot());
      const monitor::SnapshotDelta delta = monitor.store().drain_delta();
      if (*kill_pending) {
        // The leader dies mid-compaction: the chaos hook armed a torn
        // write, so this full-frame rewrite attempt is truncated before
        // the rename and the log keeps only the pre-kill frames.
        (void)writer.write_full(*tick_snapshot);
        leader_alive = false;
        std::cerr << "drill: leader died at t=" << now
                  << " (in-flight compaction frame torn)\n";
      } else {
        writer.append(*tick_snapshot, delta);
        leader.refresh_epoch(tick_snapshot, delta, profile);
        leader_decision = leader.decide(leader.pin_epoch(), request);
        leader_version = tick_snapshot->version;
      }
    } else if (follower.role() == core::ReplicaStatus::Role::kLeader) {
      // The promoted follower is the new leader: it takes over the append
      // side of the same log (and keeps tailing its own appends below).
      auto tick_snapshot = std::make_shared<const monitor::ClusterSnapshot>(
          monitor.snapshot());
      const monitor::SnapshotDelta delta = monitor.store().drain_delta();
      takeover_writer->append(*tick_snapshot, delta);
    }

    follower.poll_once(now);
    const double silence = follower.seconds_since_progress(now);
    if (follower.maybe_promote(now)) {
      takeover_writer = std::make_unique<monitor::DeltaLogWriter>(log_path);
      std::cerr << "drill: follower promoted at t=" << now << " after "
                << silence << " s of log silence\n";
    }
    if (follower.have_state()) {
      const core::BrokerDecision decision = follower.decide(request, now);
      ++follower_decides;
      if (decision.reason.rfind("replica", 0) == 0) ++refused;
      if (follower.role() == core::ReplicaStatus::Role::kLeader) {
        ++decides_after_promotion;
      }
      if (leader_decision.has_value() &&
          follower.status(now).state_version == leader_version) {
        ++parity_checks;
        if (!decisions_equal(*leader_decision, decision)) ++mismatches;
      }
    }
  }

  const core::ReplicaStatus status = follower.status(now);
  bool log_ok = false;
  std::uint64_t replayed_version = 0;
  try {
    // The promoted follower healed the torn tail and kept appending: the
    // log on disk must replay cleanly to the follower's final state.
    replayed_version = monitor::replay_delta_log(log_path).version;
    log_ok = replayed_version == status.state_version;
  } catch (const util::CheckError& error) {
    std::cerr << "drill: final log replay failed: " << error.what() << "\n";
  }

  const bool ok = status.promotions == 1 && parity_checks > 0 &&
                  mismatches == 0 && refused == 0 &&
                  decides_after_promotion > 0 && log_ok &&
                  !harness.engine().fired().empty();
  std::fprintf(
      stderr,
      "failover drill: %ld parity check(s), %ld mismatch(es), %ld follower "
      "decide(s) (%ld after promotion, %ld replica-refused), %d "
      "promotion(s), %ld frame(s) ingested, log replay %s (version %llu vs "
      "replica %llu) -> %s\n",
      parity_checks, mismatches, follower_decides, decides_after_promotion,
      refused, status.promotions, status.frames_ingested,
      log_ok ? "ok" : "FAILED",
      static_cast<unsigned long long>(replayed_version),
      static_cast<unsigned long long>(status.state_version),
      ok ? "PASS" : "FAIL");
  return ok ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser(
      "nlarm_broker: network- and load-aware node allocation for one MPI "
      "job on a (simulated) shared cluster.",
      {{"procs", "total MPI processes (default 32)"},
       {"ppn", "processes per node; 0 derives from Eq. 3 (default 4)"},
       {"alpha", "compute weight; beta = 1 - alpha (default 0.3)"},
       {"beta", "network weight (overrides alpha if given)"},
       {"policy",
        "network-load-aware|hierarchical|load-aware|sequential|random "
        "(default network-load-aware)"},
       {"allocator",
        "flat|hierarchical epoch serving path (default flat); hierarchical "
        "keeps tiled pair state and decides via the two-phase hot path"},
       {"block-size",
        "tiled mode: fixed nodes per block; 0 groups by switch (default 0)"},
       {"pair-sample",
        "hierarchical: sampled pairs per group pair; 0 = exact tile "
        "aggregation (default 4)"},
       {"two-phase-min-nodes",
        "tiled mode: prune blocks only at or above this many usable nodes; "
        "0 always prunes (default 0)"},
       {"format", "hostfile|openmpi|srun|nodelist (default hostfile)"},
       {"cluster", "cluster spec string (default: the paper's testbed)"},
       {"scenario", "quiet|shared_lab|hotspot|heavy (default shared_lab)"},
       {"seed", "simulation seed (default 2020)"},
       {"warmup", "simulated warm-up seconds before deciding (default 1500)"},
       {"max-load", "broker wait threshold, load per core (default 0.5)"},
       {"explain", "print the decision rationale"},
       {"topology-conf", "also print SLURM topology.conf"},
       {"snapshot", "decide offline from a saved snapshot file"},
       {"dump-snapshot", "save the monitored snapshot to a file and exit"},
       {"snapshot-format",
        "text|binary artifact format for --dump-snapshot (default text; "
        "loading auto-detects either)"},
       {"metrics-out", "write Prometheus text exposition to this file"},
       {"audit-out", "append one decision-audit JSON line to this file"},
       {"trace-out", "write the span-tracer ring as JSONL to this file"},
       {"telemetry-port",
        "serve live telemetry over HTTP on this port (/metrics /healthz "
        "/readyz /spans /epoch); 0 picks an ephemeral port"},
       {"telemetry-port-file",
        "write the bound telemetry port to this file (for scripts using "
        "--telemetry-port 0)"},
       {"telemetry-hold",
        "keep the telemetry server up this many wall seconds after the "
        "work finishes (default 0)"},
       {"metrics-jsonl",
        "append one JSONL metrics frame per --metrics-interval to this "
        "file (live time series; .1 rotation via --metrics-rotate-bytes)"},
       {"metrics-interval",
        "wall seconds between JSONL metrics frames (default 1)"},
       {"metrics-rotate-bytes",
        "rotate the JSONL metrics file above this size; 0 never (default 0)"},
       {"serve-threads",
        "serve decisions concurrently from a published epoch on this many "
        "threads, print throughput, and exit"},
       {"serve-requests", "total decisions to serve in serve mode "
                          "(default 10000)"},
       {"refresh-threads",
        "worker threads for epoch refreshes (full rebuilds, delta applies); "
        "1 = serial (default). Published epochs are bit-identical at any "
        "count; followers also use this for replicated rebuilds"},
       {"serve-shards",
        "route serve mode through the sharded admission front end with this "
        "many shard workers (0 = direct decide(pin) per thread)"},
       {"decision-cache",
        "1|0: serve-shard decision cache on/off (default 1; only with "
        "--serve-shards)"},
       {"coalesce-window-us",
        "hold each serve-shard drain open this many microseconds to gather "
        "same-shape bursts (default 0; only with --serve-shards)"},
       {"chaos-spec",
        "fault-injection schedule (see sim/chaos.h), e.g. "
        "\"seed=7; stall:nodestate:0.1@30+120; tear:snapshot@60\"; runs the "
        "chaos loop instead of a single decision"},
       {"chaos-seconds",
        "simulated seconds to run the chaos loop (default 300)"},
       {"role",
        "leader|follower replication role: leader runs the chaos loop, "
        "appends one delta-log frame per tick to --delta-log and dies when "
        "kill:leader fires; follower tails --follow read-only, promotes "
        "itself after --promote-after seconds of log silence, and serves "
        "one decision"},
       {"delta-log",
        "leader mode / failover drill: replicate state through this delta "
        "append-log file"},
       {"follow",
        "follower mode: tail this delta log (defaults to --delta-log)"},
       {"promote-after",
        "follower/drill: promote once the log has been silent this many "
        "seconds (default 15)"},
       {"follow-seconds",
        "follower mode: wall seconds to keep tailing before serving "
        "(default 30; a promotion serves immediately)"},
       {"failover-drill",
        "run the in-process leader-failover drill — kill:leader chaos, "
        "follower promotion from the last-good compaction frame, per-epoch "
        "decision parity — and exit 0/3"},
       {"sparse-probes",
        "pair daemons probe one tournament round (n/2 disjoint pairs, O(V) "
        "traffic) per period and reconstruct stale pairs from per-link "
        "topology estimates instead of walking all O(V^2) pairs"},
       {"staleness-budget",
        "quarantine nodes whose record is older than this many seconds in "
        "chaos mode (default 30)"},
       {"max-epoch-age",
        "refuse decisions once even the last-good epoch is this many "
        "seconds stale (default 120)"},
       {"log-level", "debug|info|warn|error|off (default warn)"}});
  if (!parser.parse(argc, argv)) return 0;

  util::set_log_level(
      util::parse_log_level(parser.get_string("log-level", "warn")));

  // Register every catalog series up front so the live /metrics endpoint
  // (and any exposition dump) is complete from the first scrape, not just
  // for code paths that happened to run.
  obs::metrics::register_all();

  const std::string role = parser.get_string("role", "");
  if (!role.empty() && role != "leader" && role != "follower") {
    std::cerr << "unknown --role '" << role << "' (leader|follower)\n";
    return 1;
  }
  const std::string delta_log_path = parser.get_string("delta-log", "");
  if (role == "leader" && delta_log_path.empty()) {
    std::cerr << "--role leader needs --delta-log <file> to replicate into\n";
    return 1;
  }

  exp::Testbed::Options options;
  options.seed = static_cast<std::uint64_t>(parser.get_long("seed", 2020));
  options.scenario = workload::parse_scenario_kind(
      parser.get_string("scenario", "shared_lab"));
  options.warmup_seconds = parser.get_double("warmup", 1500.0);
  options.monitor.sparse_probes = parser.get_bool("sparse-probes");
  const std::string cluster_spec = parser.get_string("cluster", "");
  if (!cluster_spec.empty()) {
    // Translate the spec into factory options via a spec-built cluster: the
    // testbed factory only knows the two-kind layout, so for a custom spec
    // we rebuild the whole world around it below.
  }

  // Custom specs need their own wiring; the Testbed covers the default.
  std::unique_ptr<exp::Testbed> testbed;
  std::unique_ptr<cluster::Cluster> custom_cluster;
  std::unique_ptr<net::NetworkModel> custom_network;
  std::unique_ptr<sim::Simulation> custom_sim;
  std::unique_ptr<workload::Scenario> custom_scenario;
  std::unique_ptr<monitor::ResourceMonitor> custom_monitor;
  net::FlowSet custom_flows;

  std::string chaos_text = parser.get_string("chaos-spec", "");
  // A leader without an explicit schedule still has to die: the role exists
  // to exercise follower promotion from the other process.
  if ((role == "leader" || parser.get_bool("failover-drill")) &&
      chaos_text.empty()) {
    chaos_text = "seed=11; kill:leader@40";
  }
  sim::ChaosSpec chaos_spec;
  if (!chaos_text.empty()) {
    try {
      chaos_spec = sim::ChaosSpec::parse(chaos_text);
    } catch (const util::CheckError& error) {
      std::cerr << "bad --chaos-spec: " << error.what() << "\n";
      return 1;
    }
    if (parser.has("snapshot")) {
      std::cerr << "--chaos-spec needs a live simulation; it cannot run "
                   "against a saved --snapshot file\n";
      return 1;
    }
  }

  monitor::ClusterSnapshot snapshot;
  const std::string snapshot_path = parser.get_string("snapshot", "");
  if (!snapshot_path.empty()) {
    // Offline decision from a dumped snapshot — no simulation at all.
    try {
      snapshot = monitor::load_snapshot_file(snapshot_path);
    } catch (const util::CheckError& error) {
      std::cerr << "cannot load snapshot '" << snapshot_path
                << "': " << error.what() << "\n";
      return 1;
    }
  } else if (role == "follower") {
    // No simulated world: the replicated log is the follower's only input.
    // `snapshot` stays empty; nothing below the follower block reads it.
  } else if (cluster_spec.empty()) {
    testbed = exp::Testbed::make(options);
    snapshot = testbed->snapshot();
  } else {
    custom_cluster = std::make_unique<cluster::Cluster>(
        cluster::make_cluster(cluster::parse_cluster_spec(cluster_spec)));
    custom_network = std::make_unique<net::NetworkModel>(*custom_cluster,
                                                         custom_flows);
    custom_sim = std::make_unique<sim::Simulation>(options.seed);
    workload::ScenarioOptions scenario_options;
    scenario_options.kind = options.scenario;
    scenario_options.seed = options.seed ^ 0x5ce9a210ULL;
    custom_scenario = std::make_unique<workload::Scenario>(
        *custom_cluster, custom_flows, *custom_network, scenario_options);
    custom_scenario->attach(*custom_sim);
    custom_monitor = std::make_unique<monitor::ResourceMonitor>(
        *custom_cluster, *custom_network, *custom_sim, options.monitor);
    custom_monitor->start();
    custom_sim->run_until(options.warmup_seconds);
    snapshot = custom_monitor->snapshot();
  }

  const std::string dump_path = parser.get_string("dump-snapshot", "");
  const monitor::SnapshotFormat dump_format = monitor::parse_snapshot_format(
      parser.get_string("snapshot-format", "text"));
  if (!dump_path.empty() && chaos_text.empty()) {
    if (monitor::save_snapshot_file(dump_path, snapshot, dump_format)) {
      std::cerr << "snapshot written to " << dump_path << "\n";
      return 0;
    }
    std::cerr << "snapshot save to " << dump_path << " failed\n";
    return 1;
  }

  core::AllocationRequest request;
  request.nprocs = static_cast<int>(parser.get_long("procs", 32));
  request.ppn = static_cast<int>(parser.get_long("ppn", 4));
  double alpha = parser.get_double("alpha", 0.3);
  if (parser.has("beta")) alpha = 1.0 - parser.get_double("beta", 0.7);
  request.job = core::JobWeights{alpha, 1.0 - alpha};

  // Pick the policy.
  const std::string policy_name =
      parser.get_string("policy", "network-load-aware");
  core::NetworkLoadAwareAllocator ours;
  core::HierarchicalAllocator hierarchical;
  core::LoadAwareAllocator load_aware;
  core::SequentialAllocator sequential(options.seed);
  core::RandomAllocator random(options.seed);
  core::Allocator* allocator = nullptr;
  if (policy_name == "network-load-aware") allocator = &ours;
  else if (policy_name == "hierarchical") allocator = &hierarchical;
  else if (policy_name == "load-aware") allocator = &load_aware;
  else if (policy_name == "sequential") allocator = &sequential;
  else if (policy_name == "random") allocator = &random;
  if (allocator == nullptr) {
    std::cerr << "unknown --policy '" << policy_name << "'\n";
    return 1;
  }

  core::BrokerPolicy broker_policy;
  broker_policy.max_load_per_core = parser.get_double("max-load", 0.5);
  core::ResourceBroker broker(*allocator, broker_policy);
  obs::AuditLog audit_log;
  broker.set_audit_log(&audit_log);

  const int refresh_threads =
      static_cast<int>(parser.get_long("refresh-threads", 1));
  if (refresh_threads < 1) {
    std::cerr << "--refresh-threads must be >= 1\n";
    return 1;
  }
  if (refresh_threads > 1) broker.set_refresh_threads(refresh_threads);

  // Serving-path selection, orthogonal to --policy (which picks the classic
  // one-shot allocator): hierarchical keeps tiled pair state in the epoch
  // builder and routes decide() through allocate_two_phase.
  const std::string allocator_mode = parser.get_string("allocator", "flat");
  if (allocator_mode == "hierarchical") {
    core::HierarchicalOptions hier_options;
    hier_options.pair_sample =
        static_cast<int>(parser.get_long("pair-sample", 4));
    hier_options.two_phase_min_nodes = static_cast<std::size_t>(
        parser.get_long("two-phase-min-nodes", 0));
    hier_options.block_size =
        static_cast<std::size_t>(parser.get_long("block-size", 0));
    core::TilingOptions tiling;
    tiling.block_size = hier_options.block_size;
    try {
      hier_options.validate();
    } catch (const util::CheckError& error) {
      std::cerr << "bad hierarchical options: " << error.what() << "\n";
      return 1;
    }
    broker.set_hierarchy(hier_options, tiling);
  } else if (allocator_mode != "flat") {
    std::cerr << "unknown --allocator '" << allocator_mode << "'\n";
    return 1;
  }

  const std::string metrics_path = parser.get_string("metrics-out", "");
  const std::string audit_path = parser.get_string("audit-out", "");
  const std::string trace_path = parser.get_string("trace-out", "");

  // --- live telemetry plane (obs/telemetry_server.h) ---
  // The epoch provider pins the broker's current epoch (thread-safe, lock-
  // free fast path) and ages it against `telemetry_now`, which the driving
  // loop keeps current on whichever clock it runs (sim time in chaos mode,
  // snapshot time otherwise).
  const double max_epoch_age = parser.get_double("max-epoch-age", 120.0);
  auto telemetry_now = std::make_shared<std::atomic<double>>(snapshot.time);
  // Follower mode publishes its replica through here so /readyz reflects
  // replication health (the epoch age becomes the replication lag).
  std::atomic<core::FollowerBroker*> follower_ptr{nullptr};
  obs::TelemetryServer::EpochProvider epoch_provider =
      [&broker, telemetry_now, max_epoch_age, &follower_ptr]() {
        if (core::FollowerBroker* replica =
                follower_ptr.load(std::memory_order_acquire)) {
          obs::EpochStatus replica_status = replica->epoch_status(
              telemetry_now->load(std::memory_order_relaxed));
          obs::metrics::epoch_staleness_burn_ratio().set(
              replica_status.staleness_burn());
          return replica_status;
        }
        obs::EpochStatus status;
        const core::EpochPin pin = broker.pin_epoch();
        if (!pin.valid()) return status;
        const core::PreparedSnapshot& prepared = *pin.prepared;
        status.published = true;
        status.epoch = prepared.epoch;
        status.age_seconds =
            std::max(0.0, telemetry_now->load(std::memory_order_relaxed) -
                              prepared.time);
        status.max_age_seconds = max_epoch_age;
        status.usable_nodes = prepared.usable.size();
        status.quarantined = prepared.quarantined;
        status.pair_fallbacks = prepared.pair_fallbacks;
        status.degraded = prepared.degraded;
        status.tiled_state_bytes =
            prepared.tiles != nullptr ? prepared.tiles->memory_bytes() : 0;
        obs::metrics::epoch_staleness_burn_ratio().set(
            status.staleness_burn());
        return status;
      };
  std::unique_ptr<obs::TelemetryServer> telemetry;
  if (parser.has("telemetry-port")) {
    obs::TelemetryOptions telemetry_options;
    telemetry_options.port =
        static_cast<int>(parser.get_long("telemetry-port", 0));
    telemetry = std::make_unique<obs::TelemetryServer>(telemetry_options,
                                                       epoch_provider);
    if (!telemetry->start()) {
      std::cerr << "cannot start telemetry server on port "
                << telemetry_options.port << "\n";
      return 1;
    }
    std::cerr << "telemetry: http://127.0.0.1:" << telemetry->port()
              << " (/metrics /healthz /readyz /spans /epoch)\n";
    const std::string port_file =
        parser.get_string("telemetry-port-file", "");
    if (!port_file.empty()) {
      std::ofstream out(port_file);
      out << telemetry->port() << "\n";
    }
  }
  std::unique_ptr<obs::MetricsFlusher> flusher;
  const std::string metrics_jsonl = parser.get_string("metrics-jsonl", "");
  if (!metrics_jsonl.empty()) {
    obs::FlusherOptions flusher_options;
    flusher_options.path = metrics_jsonl;
    flusher_options.interval_s = parser.get_double("metrics-interval", 1.0);
    flusher_options.rotate_bytes = static_cast<std::uint64_t>(
        parser.get_long("metrics-rotate-bytes", 0));
    flusher = std::make_unique<obs::MetricsFlusher>(flusher_options);
    if (!flusher->start()) {
      std::cerr << "cannot open --metrics-jsonl " << metrics_jsonl << "\n";
      return 1;
    }
  }
  // Keeps the exposition endpoints scrapeable after the work completes
  // (CI smoke and operators attach nlarm_top to short runs this way).
  const double telemetry_hold = parser.get_double("telemetry-hold", 0.0);
  const auto hold_telemetry = [&telemetry, telemetry_hold] {
    if (telemetry != nullptr && telemetry_hold > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(telemetry_hold));
    }
  };

  // Follower mode: no simulation — tail a leader's delta log, serve a
  // read-only decision, and promote if the log goes silent long enough.
  if (role == "follower") {
    const std::string follow_override = parser.get_string("follow", "");
    const std::string follow_path =
        follow_override.empty() ? delta_log_path : follow_override;
    if (follow_path.empty()) {
      std::cerr << "--role follower needs --follow <log> "
                   "(or --delta-log)\n";
      return 1;
    }
    core::ReplicaOptions replica_options;
    replica_options.max_epoch_age_s = max_epoch_age;
    replica_options.promote_after_s =
        parser.get_double("promote-after", 15.0);
    replica_options.refresh_threads = refresh_threads;
    core::FollowerBroker follower(*allocator, follow_path,
                                  core::RequestProfile::of(request),
                                  replica_options, broker_policy);
    follower.set_audit_log(&audit_log);
    follower_ptr.store(&follower, std::memory_order_release);

    const double run_seconds = parser.get_double("follow-seconds", 30.0);
    const auto wall_start = std::chrono::steady_clock::now();
    const auto wall_elapsed = [&wall_start] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           wall_start)
          .count();
    };
    // The log carries the leader's clock (sim time); pin it on the first
    // ingested frame and advance with wall time from there, so lag,
    // fencing and the promotion threshold all read in log seconds.
    bool have_base = false;
    double base_wall = 0.0;
    double base_state_time = 0.0;
    double now = 0.0;
    while (wall_elapsed() < run_seconds) {
      const double wall = wall_elapsed();
      now = have_base ? base_state_time + (wall - base_wall) : 0.0;
      follower.poll_once(now);
      if (!have_base && follower.have_state()) {
        have_base = true;
        base_wall = wall;
        base_state_time = follower.status(now).state_time;
        now = base_state_time;
      }
      telemetry_now->store(now, std::memory_order_relaxed);
      const double silence = follower.seconds_since_progress(now);
      if (follower.maybe_promote(now)) {
        std::cerr << "follower: promoted to leader after " << silence
                  << " s of log silence\n";
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    const core::BrokerDecision served = follower.decide(request, now);
    const core::ReplicaStatus replica_status = follower.status(now);
    std::fprintf(
        stderr,
        "follower: role=%s frames=%ld epochs=%ld version=%llu lag=%.1f s "
        "fenced=%ld promotions=%d decision=%s\n",
        replica_status.role == core::ReplicaStatus::Role::kLeader
            ? "leader"
            : "follower",
        replica_status.frames_ingested, replica_status.epochs_published,
        static_cast<unsigned long long>(replica_status.state_version),
        replica_status.lag_seconds, replica_status.fenced_decides,
        replica_status.promotions,
        served.action == core::BrokerDecision::Action::kAllocate
            ? "allocate"
            : "wait");
    if (served.action == core::BrokerDecision::Action::kWait) {
      std::cerr << "follower decision reason: " << served.reason << "\n";
    }
    write_observability_outputs(metrics_path, audit_path, trace_path,
                                audit_log);
    hold_telemetry();
    // Stop the server before the stack-allocated follower goes away.
    telemetry.reset();
    follower_ptr.store(nullptr, std::memory_order_release);
    const bool replica_refused = served.reason.rfind("replica", 0) == 0;
    return (!replica_status.have_state || replica_refused) ? 3 : 0;
  }

  // In-process failover drill (see run_failover_drill above).
  if (parser.get_bool("failover-drill")) {
    if (!snapshot_path.empty()) {
      std::cerr << "--failover-drill needs a live simulation\n";
      return 1;
    }
    const bool has_kill_leader = std::any_of(
        chaos_spec.events.begin(), chaos_spec.events.end(),
        [](const sim::ChaosEvent& event) {
          return event.kind == sim::ChaosEvent::Kind::kKillLeader;
        });
    if (!has_kill_leader) {
      std::cerr << "--failover-drill needs a kill:leader@<t> event in "
                   "--chaos-spec\n";
      return 1;
    }
    sim::Simulation& sim = testbed ? testbed->sim() : *custom_sim;
    cluster::Cluster& drill_cluster =
        testbed ? testbed->cluster() : *custom_cluster;
    monitor::ResourceMonitor& drill_monitor =
        testbed ? testbed->monitor() : *custom_monitor;
    exp::ChaosHarness harness(chaos_spec, sim, drill_cluster, drill_monitor);
    bool kill_pending = false;
    harness.on_kill_leader([&kill_pending] { kill_pending = true; });
    harness.arm();
    const int code = run_failover_drill(
        sim, drill_monitor, harness, &kill_pending, policy_name, options.seed,
        broker_policy, request, delta_log_path,
        parser.get_double("chaos-seconds", 150.0),
        parser.get_double("promote-after", 15.0), max_epoch_age,
        refresh_threads, *telemetry_now);
    write_observability_outputs(metrics_path, audit_path, trace_path,
                                audit_log);
    hold_telemetry();
    return code;
  }

  // Chaos mode: arm the fault schedule, then keep the monitor→epoch→decide
  // pipeline running under it. The degradation policy quarantines nodes
  // with over-budget records and falls back to the last-good epoch, so a
  // well-behaved run completes every decide without a refusal or a throw.
  if (!chaos_text.empty()) {
    sim::Simulation& sim = testbed ? testbed->sim() : *custom_sim;
    cluster::Cluster& chaos_cluster =
        testbed ? testbed->cluster() : *custom_cluster;
    monitor::ResourceMonitor& chaos_monitor =
        testbed ? testbed->monitor() : *custom_monitor;

    core::DegradationPolicy degradation;
    degradation.node_staleness_budget_s =
        parser.get_double("staleness-budget", 30.0);
    degradation.node_readmit_s = degradation.node_staleness_budget_s / 2.0;
    degradation.max_epoch_age_s = parser.get_double("max-epoch-age", 120.0);
    broker.set_degradation(degradation);

    exp::ChaosHarness harness(chaos_spec, sim, chaos_cluster, chaos_monitor);
    // Leader role: replicate every tick into the delta log so followers
    // (other processes) can tail it, and die when kill:leader fires.
    std::unique_ptr<monitor::DeltaLogWriter> delta_writer;
    if (!delta_log_path.empty()) {
      std::remove(delta_log_path.c_str());
      delta_writer = std::make_unique<monitor::DeltaLogWriter>(
          delta_log_path);
    }
    bool leader_killed = false;
    harness.on_kill_leader([&leader_killed] { leader_killed = true; });
    harness.arm();

    const double chaos_seconds = parser.get_double("chaos-seconds", 300.0);
    const double tick_s = 5.0;
    const core::RequestProfile profile = core::RequestProfile::of(request);
    const double end_time = sim.now() + chaos_seconds;
    long decides = 0;
    long allocates = 0;
    long fallbacks = 0;
    long failures = 0;
    core::EpochPin pin;
    while (sim.now() < end_time) {
      sim.run_until(std::min(end_time, sim.now() + tick_s));
      const double now = sim.now() + harness.clock_skew();
      telemetry_now->store(now, std::memory_order_relaxed);
      auto tick_snapshot = std::make_shared<const monitor::ClusterSnapshot>(
          chaos_monitor.snapshot());
      const monitor::SnapshotDelta delta =
          chaos_monitor.store().drain_delta();
      if (leader_killed) {
        if (delta_writer != nullptr) {
          // Die mid-compaction: the chaos hook armed a torn write, so this
          // full-frame rewrite is truncated before the rename — followers
          // keep the pre-kill frames and must promote from them.
          (void)delta_writer->write_full(*tick_snapshot);
        }
        std::cerr << "chaos: leader killed at t=" << sim.now()
                  << "; exiting as the dead leader\n";
        break;
      }
      if (delta_writer != nullptr) {
        delta_writer->append(*tick_snapshot, delta);
      }
      const monitor::StalenessView staleness =
          chaos_monitor.store().staleness_view(now);
      broker.refresh_epoch(tick_snapshot, delta, staleness, profile);
      broker.refresh_pin(pin);
      try {
        const core::BrokerDecision served = broker.decide(pin, request);
        ++decides;
        if (served.action == core::BrokerDecision::Action::kAllocate) {
          ++allocates;
        }
      } catch (const util::CheckError& error) {
        ++failures;
        std::cerr << "chaos decide failed: " << error.what() << "\n";
      }
      if (!dump_path.empty()) {
        monitor::save_snapshot_file(dump_path, *tick_snapshot, dump_format);
      }
    }
    fallbacks = broker.fallback_decisions();
    const long refusals = broker.stale_refusals();

    if (!dump_path.empty()) {
      // A torn write must never have replaced a good snapshot: whatever is
      // on disk at the end still parses.
      try {
        monitor::load_snapshot_file(dump_path);
        std::cerr << "final snapshot file " << dump_path
                  << " loads cleanly\n";
      } catch (const util::CheckError& error) {
        ++failures;
        std::cerr << "final snapshot file is corrupt: " << error.what()
                  << "\n";
      }
    }

    std::fprintf(stderr,
                 "chaos run: %zu event(s) fired, %ld decide(s) "
                 "(%ld allocate, %ld last-good fallback, %ld refusal(s), "
                 "%ld failure(s)), %d node(s) quarantined at end\n",
                 harness.engine().fired().size(), decides, allocates,
                 fallbacks, refusals, failures,
                 static_cast<int>(
                     pin.valid() ? pin.prepared->quarantined : 0));
    write_observability_outputs(metrics_path, audit_path, trace_path,
                                audit_log);
    hold_telemetry();
    return (failures > 0 || refusals > 0) ? 3 : 0;
  }

  // Serve mode: publish one epoch from the monitored snapshot and hammer it
  // with concurrent decide() calls — the multi-threaded front-door the
  // epoch machinery exists for, runnable from the command line.
  const int serve_threads =
      static_cast<int>(parser.get_long("serve-threads", 0));
  if (serve_threads > 0) {
    const long serve_requests = parser.get_long("serve-requests", 10000);
    const int serve_shards =
        static_cast<int>(parser.get_long("serve-shards", 0));
    broker.refresh_epoch(
        std::make_shared<const monitor::ClusterSnapshot>(snapshot),
        core::RequestProfile::of(request));
    std::atomic<long> remaining{serve_requests};
    std::atomic<long> allocated{0};
    obs::metrics::serve_threads().set(static_cast<double>(serve_threads));
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> servers;
    servers.reserve(static_cast<std::size_t>(serve_threads));
    std::unique_ptr<core::ServePlane> plane;
    if (serve_shards > 0) {
      // Sharded front end: producers enqueue into per-core shard rings and
      // the shard workers score (or cache-replay) against the epoch.
      // Advisory serving like the direct mode — the closed-loop hammer
      // would otherwise drain one epoch's capacity in milliseconds.
      core::ServeOptions serve_options;
      serve_options.shards = serve_shards;
      serve_options.decision_cache = parser.get_long("decision-cache", 1) != 0;
      serve_options.coalesce_window_us =
          parser.get_double("coalesce-window-us", 0.0);
      serve_options.debit_capacity = false;
      plane = std::make_unique<core::ServePlane>(broker, serve_options);
    }
    for (int t = 0; t < serve_threads; ++t) {
      servers.emplace_back([&broker, &request, &remaining, &allocated,
                            &plane] {
        core::EpochPin pin = broker.pin_epoch();
        while (remaining.fetch_sub(1, std::memory_order_relaxed) > 0) {
          obs::metrics::serve_inflight().add(1.0);
          core::BrokerDecision served;
          if (plane != nullptr) {
            served = plane->decide(request);
          } else {
            broker.refresh_pin(pin);
            served = broker.decide(pin, request);
          }
          obs::metrics::serve_inflight().add(-1.0);
          if (served.action == core::BrokerDecision::Action::kAllocate) {
            allocated.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& server : servers) server.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    obs::metrics::serve_threads().set(0.0);
    std::fprintf(stderr,
                 "served %ld decisions (%ld allocate) on %d thread(s) in "
                 "%.3f s -> %.0f decisions/s\n",
                 serve_requests, allocated.load(), serve_threads, seconds,
                 seconds > 0.0 ? static_cast<double>(serve_requests) / seconds
                               : 0.0);
    if (plane != nullptr) {
      plane->stop();
      const core::ServeStats stats = plane->stats();
      const double hit_rate =
          stats.decisions > 0
              ? 100.0 * static_cast<double>(stats.cache_hits) /
                    static_cast<double>(stats.decisions)
              : 0.0;
      std::fprintf(stderr,
                   "serve plane: %d shard(s), %llu drain(s), cache %llu hit / "
                   "%llu miss / %llu invalidation(s) (%.1f%% hit), %llu "
                   "coalesced, %llu scoring pass(es), %llu full-ring spin(s), "
                   "simd=%s\n",
                   serve_shards,
                   static_cast<unsigned long long>(stats.drains),
                   static_cast<unsigned long long>(stats.cache_hits),
                   static_cast<unsigned long long>(stats.cache_misses),
                   static_cast<unsigned long long>(stats.cache_invalidations),
                   hit_rate,
                   static_cast<unsigned long long>(stats.coalesced),
                   static_cast<unsigned long long>(stats.scoring_passes),
                   static_cast<unsigned long long>(stats.queue_full_spins),
                   core::simd::active_kernel_name());
      plane.reset();
    }
    write_observability_outputs(metrics_path, audit_path, trace_path,
                                audit_log);
    hold_telemetry();
    return 0;
  }

  const core::BrokerDecision decision = broker.decide(snapshot, request);
  write_observability_outputs(metrics_path, audit_path, trace_path,
                              audit_log);
  hold_telemetry();

  if (decision.action == core::BrokerDecision::Action::kWait) {
    std::cerr << "WAIT: " << decision.reason << "\n";
    return 2;  // scripts can retry later
  }

  const std::string format = parser.get_string("format", "hostfile");
  if (format == "hostfile") {
    std::cout << core::to_mpich_machinefile(decision.allocation, snapshot);
  } else if (format == "openmpi") {
    std::cout << core::to_openmpi_hostfile(decision.allocation, snapshot);
  } else if (format == "srun") {
    std::cout << core::to_srun_command(decision.allocation, snapshot,
                                       "<your-binary>")
              << "\n";
  } else if (format == "nodelist") {
    std::cout << core::to_slurm_nodelist(decision.allocation, snapshot)
              << "\n";
  } else {
    std::cerr << "unknown --format '" << format << "'\n";
    return 1;
  }

  if (parser.get_bool("explain")) {
    std::cerr << "\n"
              << core::explain_allocation(
                     snapshot, request, decision.allocation,
                     policy_name == "network-load-aware" ? &ours : nullptr);
  }
  if (parser.get_bool("topology-conf")) {
    if (!snapshot_path.empty()) {
      std::cerr << "--topology-conf needs a live cluster (snapshots carry "
                   "no switch tree)\n";
    } else {
      const cluster::Topology& topo = cluster_spec.empty()
                                          ? testbed->cluster().topology()
                                          : custom_cluster->topology();
      std::cerr << "\n" << core::to_slurm_topology_conf(topo, snapshot);
    }
  }
  return 0;
}
