// Profile-guided α/β selection (the procedure §5 sketches: "One may set
// these weights by profiling an application and decide the relative weights
// on the basis of the computation and communication times").
//
// The example profiles an application once on a quiet allocation, derives
// β from the measured communication fraction, and shows the tuned weights
// beating both fixed extremes on a contended cluster.
#include <iostream>

#include "apps/minimd.h"
#include "exp/experiment.h"
#include "mpisim/placement.h"
#include "util/args.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

using namespace nlarm;

namespace {

double run_with_weights(exp::Testbed& testbed, const mpisim::AppProfile& app,
                        core::JobWeights job, int reps) {
  core::AllocationRequest request;
  request.nprocs = app.nranks;
  request.ppn = 4;
  request.job = job;
  core::NetworkLoadAwareAllocator allocator;
  std::vector<double> times;
  for (int rep = 0; rep < reps; ++rep) {
    const auto alloc = allocator.allocate(testbed.snapshot(), request);
    const auto result = testbed.runtime().run(
        testbed.sim(), app, mpisim::Placement::from_allocation(alloc));
    times.push_back(result.total_s);
    testbed.sim().run_until(testbed.sim().now() + 20.0);
  }
  return util::mean(times);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser(
      "Derive alpha/beta from a profiling run, then compare against fixed "
      "weights.",
      {{"size", "miniMD problem size s (default 16)"},
       {"procs", "process count (default 32)"},
       {"reps", "repetitions per setting (default 3)"},
       {"seed", "RNG seed (default 17)"}});
  if (!parser.parse(argc, argv)) return 0;

  apps::MiniMdParams params;
  params.size = static_cast<int>(parser.get_long("size", 16));
  params.nranks = static_cast<int>(parser.get_long("procs", 32));
  const auto app = apps::make_minimd_profile(params);
  const int reps = static_cast<int>(parser.get_long("reps", 3));
  const auto seed = static_cast<std::uint64_t>(parser.get_long("seed", 17));

  // --- Step 1: profiling run on a quiet cluster ---------------------------
  exp::Testbed::Options quiet;
  quiet.scenario = workload::ScenarioKind::kQuiet;
  quiet.seed = seed;
  auto profiling_bed = exp::Testbed::make(quiet);
  core::AllocationRequest request;
  request.nprocs = params.nranks;
  request.ppn = 4;
  request.job = core::JobWeights::balanced();
  core::NetworkLoadAwareAllocator allocator;
  const auto alloc = allocator.allocate(profiling_bed->snapshot(), request);
  const auto profile_run = profiling_bed->runtime().run(
      profiling_bed->sim(), app, mpisim::Placement::from_allocation(alloc));
  const double comm_fraction = profile_run.comm_fraction();
  std::cout << "Profiling run: " << profile_run.total_s << " s, "
            << static_cast<int>(comm_fraction * 100)
            << "% communication\n";

  // --- Step 2: derive beta from the communication fraction ----------------
  core::JobWeights tuned{1.0 - comm_fraction, comm_fraction};
  std::cout << util::format("Derived weights: alpha=%.2f beta=%.2f "
                            "(paper used 0.3/0.7 for miniMD)\n\n",
                            tuned.alpha, tuned.beta);

  // --- Step 3: compare on a contended cluster -----------------------------
  util::TextTable table({"weights", "alpha", "beta", "mean exec (s)"});
  struct Setting {
    std::string name;
    core::JobWeights job;
  };
  const std::vector<Setting> settings{
      {"compute-only", {1.0, 0.0}},
      {"network-only", {0.0, 1.0}},
      {"paper miniMD", core::JobWeights::minimd_defaults()},
      {"profile-tuned", tuned}};
  double tuned_time = 0.0;
  double worst_time = 0.0;
  for (const Setting& setting : settings) {
    exp::Testbed::Options contended;
    contended.scenario = workload::ScenarioKind::kHotspot;
    contended.seed = seed + 100;  // same world for every setting
    auto testbed = exp::Testbed::make(contended);
    const double mean = run_with_weights(*testbed, app, setting.job, reps);
    if (setting.name == "profile-tuned") tuned_time = mean;
    worst_time = std::max(worst_time, mean);
    table.add_row({setting.name, util::format("%.2f", setting.job.alpha),
                   util::format("%.2f", setting.job.beta),
                   util::format("%.3f", mean)});
  }
  table.print(std::cout);
  std::cout << util::format(
      "\nprofile-tuned weights are %.1f%% faster than the worst fixed "
      "setting\n",
      (1.0 - tuned_time / worst_time) * 100.0);
  return 0;
}
