// Demonstrates the Resource Monitor's fault tolerance (§4):
//  * a crashed daemon is relaunched by the CentralMonitor;
//  * a dead host gets its daemon migrated to another node;
//  * when the master dies, the slave promotes itself and spawns a new slave;
//  * when both die at once, daemons keep running but are unsupervised.
#include <iostream>

#include "exp/experiment.h"
#include "monitor/resource_monitor.h"

using namespace nlarm;

namespace {
void status(const exp::Testbed& testbed, const monitor::CentralMonitor& cm,
            const std::string& label) {
  std::cout << label << "\n  master on node " << cm.master_host()
            << (cm.master_alive() ? " (alive)" : " (dead)")
            << ", slave on node " << cm.slave_host()
            << (cm.slave_alive() ? " (alive)" : " (dead)")
            << ", relaunches so far: " << cm.relaunch_count()
            << ", promotions: " << cm.promotion_count()
            << (cm.abandoned() ? " [ABANDONED]" : "") << "\n";
  (void)testbed;
}
}  // namespace

int main() {
  exp::Testbed::Options options;
  options.seed = 5;
  auto testbed = exp::Testbed::make(options);
  auto& monitor = testbed->monitor();
  auto& central = monitor.central();
  auto& sim = testbed->sim();

  std::cout << "=== Resource Monitor failover walkthrough ===\n\n";
  status(*testbed, central, "[t=warm-up] initial state:");

  // --- 1: kill a daemon process; supervision relaunches it ---------------
  monitor::Daemon* latencyd = monitor.find_daemon("latencyd");
  latencyd->kill();
  std::cout << "\nKilled latencyd (daemon process crash).\n";
  sim.run_until(sim.now() + 30.0);
  std::cout << "latencyd running again: " << std::boolalpha
            << latencyd->running() << " (host " << latencyd->host() << ")\n";

  // --- 2: kill a daemon's host node; daemon migrates ----------------------
  monitor::Daemon* bandwidthd = monitor.find_daemon("bandwidthd");
  const cluster::NodeId old_host = bandwidthd->host();
  testbed->cluster().mutable_node(old_host).dyn.alive = false;
  std::cout << "\nPowered off node " << old_host
            << " (bandwidthd's host).\n";
  sim.run_until(sim.now() + 40.0);
  std::cout << "bandwidthd running: " << bandwidthd->running()
            << ", migrated " << old_host << " -> " << bandwidthd->host()
            << "\n";
  testbed->cluster().mutable_node(old_host).dyn.alive = true;  // node repaired

  // --- 3: master dies; slave promotes itself ------------------------------
  std::cout << "\nKilling the master CentralMonitor process...\n";
  central.fail_master();
  sim.run_until(sim.now() + 30.0);
  status(*testbed, central, "[after master failure]");

  // --- 4: both master and slave die at once -------------------------------
  std::cout << "\nKilling master AND slave simultaneously...\n";
  central.fail_master();
  central.fail_slave();
  sim.run_until(sim.now() + 30.0);
  status(*testbed, central, "[after double failure]");
  std::cout << "\nDaemons keep collecting unsupervised (paper §4): "
            << "latencyd running = " << latencyd->running() << "\n";
  latencyd->kill();
  sim.run_until(sim.now() + 60.0);
  std::cout << "...but a further crash is no longer repaired: running = "
            << latencyd->running() << "\n";

  // The store still serves (possibly stale) data for allocation.
  const auto snap = monitor.snapshot();
  std::cout << "\nSnapshot still usable: " << snap.usable_nodes().size()
            << " usable nodes at t=" << snap.time << " s\n";
  return 0;
}
