// Hand an nlarm allocation to real launchers: profile the job to derive its
// weights (§5's procedure), allocate, then emit the MPICH machinefile, the
// OpenMPI hostfile, the srun command line, and the SLURM topology.conf that
// §6's planned SLURM integration would install.
#include <iostream>

#include "apps/minimd.h"
#include "core/launcher_export.h"
#include "exp/experiment.h"
#include "mpisim/profiler.h"

using namespace nlarm;

int main() {
  exp::Testbed::Options options;
  options.seed = 77;
  auto testbed = exp::Testbed::make(options);
  const monitor::ClusterSnapshot snap = testbed->snapshot();

  // --- Profile the job to derive its weights ------------------------------
  apps::MiniMdParams params;
  params.size = 16;
  params.nranks = 32;
  const auto app = apps::make_minimd_profile(params);
  mpisim::JobProfiler profiler(testbed->cluster(), testbed->network());
  // Reference placement: first 8 usable nodes, 4 ranks each.
  std::vector<cluster::NodeId> reference_nodes;
  for (int r = 0; r < 32; ++r) {
    reference_nodes.push_back(snap.usable_nodes()[r / 4]);
  }
  const auto report =
      profiler.profile(app, mpisim::Placement(reference_nodes));
  std::cout << "Profiled " << app.name << ": "
            << static_cast<int>(report.comm_fraction * 100)
            << "% communication, mean message "
            << static_cast<long>(report.mean_message_bytes)
            << " B\n  -> alpha=" << report.job_weights.alpha
            << " beta=" << report.job_weights.beta << "\n\n";

  // --- Allocate with the derived weights ----------------------------------
  core::AllocationRequest request;
  request.nprocs = 32;
  request.ppn = 4;
  request.job = report.job_weights;
  request.compute_weights = report.compute_weights;
  request.network_weights = report.network_weights;
  core::NetworkLoadAwareAllocator allocator;
  const core::Allocation alloc = allocator.allocate(snap, request);

  // --- Emit every launcher format ------------------------------------------
  std::cout << "MPICH machinefile:\n"
            << core::to_mpich_machinefile(alloc, snap) << "\n";
  std::cout << "OpenMPI hostfile:\n"
            << core::to_openmpi_hostfile(alloc, snap) << "\n";
  std::cout << "SLURM: " << core::to_srun_command(alloc, snap, "./miniMD")
            << "\n";
  std::cout << "       --exclude=" << core::to_slurm_exclude(alloc, snap)
            << "\n\n";
  std::cout << "topology.conf for SLURM's topology/tree plugin:\n"
            << core::to_slurm_topology_conf(testbed->cluster().topology(),
                                            snap);
  return 0;
}
