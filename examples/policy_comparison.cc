// Compare the four allocation policies on one job, the way §5 does:
// run them in sequence on the same cluster, repeat, report mean times.
#include <iostream>

#include "apps/minifft.h"
#include "apps/minife.h"
#include "apps/minimd.h"
#include "exp/experiment.h"
#include "util/args.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

using namespace nlarm;

int main(int argc, char** argv) {
  util::ArgParser parser(
      "Run one job under all four allocation policies and compare.",
      {{"app", "application: minimd|minife|minifft (default minimd)"},
       {"procs", "process count (default 32)"},
       {"size", "problem size: miniMD s / miniFE nx / miniFFT n (default 16)"},
       {"reps", "repetitions (default 5, like the paper)"},
       {"scenario", "quiet|shared_lab|hotspot|heavy (default shared_lab)"},
       {"seed", "RNG seed (default 1)"}});
  if (!parser.parse(argc, argv)) return 0;

  exp::Testbed::Options options;
  options.seed = static_cast<std::uint64_t>(parser.get_long("seed", 1));
  options.scenario = workload::parse_scenario_kind(
      parser.get_string("scenario", "shared_lab"));
  auto testbed = exp::Testbed::make(options);

  exp::ComparisonConfig config;
  const std::string app = parser.get_string("app", "minimd");
  const int size = static_cast<int>(
      parser.get_long("size", app == "minimd" ? 16 : app == "minife" ? 96
                                                                     : 128));
  config.nprocs = static_cast<int>(parser.get_long("procs", 32));
  config.repetitions = static_cast<int>(parser.get_long("reps", 5));
  config.ppn = 4;
  if (app == "minimd") {
    config.job = core::JobWeights::minimd_defaults();
    config.make_app = [size](int nranks) {
      apps::MiniMdParams params;
      params.size = size;
      params.nranks = nranks;
      return apps::make_minimd_profile(params);
    };
  } else if (app == "minife") {
    config.job = core::JobWeights::minife_defaults();
    config.make_app = [size](int nranks) {
      apps::MiniFeParams params;
      params.nx = size;
      params.nranks = nranks;
      return apps::make_minife_profile(params);
    };
  } else if (app == "minifft") {
    config.job = core::JobWeights{0.2, 0.8};
    config.make_app = [size](int nranks) {
      apps::MiniFftParams params;
      params.n = size;
      params.nranks = nranks;
      return apps::make_minifft_profile(params);
    };
  } else {
    std::cerr << "unknown --app '" << app
              << "' (expected minimd|minife|minifft)\n";
    return 1;
  }

  std::cout << app << " size=" << size << ", " << config.nprocs
            << " processes, scenario " << workload::to_string(options.scenario)
            << ", " << config.repetitions << " repetitions\n\n";
  const exp::ComparisonResult result =
      exp::run_policy_comparison(*testbed, config);

  util::TextTable table({"policy", "mean (s)", "min (s)", "max (s)", "CoV"});
  for (int p = 0; p < exp::kPolicyCount; ++p) {
    const auto policy = static_cast<exp::Policy>(p);
    const auto times = result.times(policy);
    const util::Summary s = util::summarize(times);
    table.add_row({exp::to_string(policy), util::format("%.3f", s.mean),
                   util::format("%.3f", s.min), util::format("%.3f", s.max),
                   util::format("%.3f", s.cov)});
  }
  table.print(std::cout);

  const double ours = result.mean_time(exp::Policy::kNetworkLoadAware);
  std::cout << "\nGain vs random:     "
            << util::format("%.1f%%",
                            (1 - ours / result.mean_time(exp::Policy::kRandom)) *
                                100)
            << "\nGain vs sequential: "
            << util::format(
                   "%.1f%%",
                   (1 - ours / result.mean_time(exp::Policy::kSequential)) *
                       100)
            << "\nGain vs load-aware: "
            << util::format(
                   "%.1f%%",
                   (1 - ours / result.mean_time(exp::Policy::kLoadAware)) *
                       100)
            << "\n";
  return 0;
}
