// A day in the life of the broker on a shared cluster — with a real queue.
//
// MPI jobs arrive at random times over a simulated day and are submitted to
// a JobQueue (reservations + backfill) in front of the network-and-load-
// aware allocator. Started jobs run *concurrently*: each leaves a
// JobFootprint (CPU load + traffic) that the monitor picks up, so later
// decisions see earlier jobs. Waiting jobs are retried on a poll timer —
// the closed-loop version of §6's "recommend waiting".
#include <iostream>
#include <map>
#include <memory>

#include "apps/minife.h"
#include "apps/minimd.h"
#include "core/job_queue.h"
#include "exp/experiment.h"
#include "mpisim/footprint.h"
#include "mpisim/placement.h"
#include "util/args.h"
#include "util/strings.h"
#include "util/table.h"

using namespace nlarm;

namespace {

struct RunningJob {
  std::string name;
  double start = 0.0;
  double expected_end = 0.0;
  std::unique_ptr<mpisim::JobFootprint> footprint;
};

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser(
      "Simulate a day of queued MPI job arrivals on a shared cluster.",
      {{"hours", "length of the (compressed) day in hours (default 0.2)"},
       {"jobs", "number of job arrivals (default 32)"},
       {"scenario", "workload scenario (default hotspot)"},
       {"seed", "RNG seed (default 9)"}});
  if (!parser.parse(argc, argv)) return 0;
  const double hours = parser.get_double("hours", 0.2);
  const int jobs = static_cast<int>(parser.get_long("jobs", 32));

  exp::Testbed::Options options;
  options.seed = static_cast<std::uint64_t>(parser.get_long("seed", 9));
  options.scenario = workload::parse_scenario_kind(
      parser.get_string("scenario", "hotspot"));
  auto testbed = exp::Testbed::make(options);

  core::NetworkLoadAwareAllocator allocator;
  core::QueueOptions queue_options;
  queue_options.broker.max_load_per_core = 0.6;
  core::JobQueue queue(allocator, queue_options);

  sim::Rng rng = testbed->sim().fork_rng("job-arrivals");
  util::TextTable log({"hour", "job", "procs", "event", "nodes", "waited (s)",
                       "runtime (s)"});
  std::map<core::JobId, RunningJob> running;
  std::map<core::JobId, std::pair<std::string, int>> submitted;

  auto poll_queue = [&]() {
    const auto started = queue.poll(testbed->snapshot(), testbed->sim().now());
    for (const core::StartedJob& job : started) {
      const auto& meta = submitted.at(job.id);
      mpisim::AppProfile profile;
      if (meta.first == "miniMD") {
        apps::MiniMdParams params;
        params.size = 16;
        params.nranks = meta.second;
        params.timesteps = 20000;  // a production run, not a benchmark blip
        profile = apps::make_minimd_profile(params);
      } else {
        apps::MiniFeParams params;
        params.nx = 96;
        params.nranks = meta.second;
        params.cg_iterations = 12000;  // several solves back to back
        profile = apps::make_minife_profile(params);
      }
      const auto placement =
          mpisim::Placement::from_allocation(job.allocation);
      // Price under current conditions (footprint not yet applied), then
      // leave the footprint in place until completion.
      const auto estimate = testbed->runtime().estimate(profile, placement);
      RunningJob run;
      run.name = job.name;
      run.start = testbed->sim().now();
      run.expected_end = run.start + estimate.total_s;
      run.footprint = std::make_unique<mpisim::JobFootprint>(
          testbed->cluster(), testbed->flows(), profile, placement,
          std::max(estimate.total_s / profile.iterations, 1e-9));
      log.add_row({util::format("%.2f", run.start / 3600.0), job.name,
                   util::format("%d", meta.second), "start",
                   util::format("%d", job.allocation.node_count()),
                   util::format("%.0f", job.wait_time()),
                   util::format("%.2f", estimate.total_s)});
      const core::JobId id = job.id;
      testbed->sim().schedule_in(estimate.total_s, [&, id]() {
        auto it = running.find(id);
        if (it == running.end()) return;
        it->second.footprint.reset();  // lift the footprint
        queue.release(id);
        running.erase(it);
      });
      running.emplace(id, std::move(run));
    }
  };

  // Poll the queue every 30 s, like a scheduler daemon.
  testbed->sim().schedule_every(30.0, 30.0, poll_queue);

  const double horizon = hours * 3600.0;
  const double t0 = testbed->sim().now();
  for (int j = 0; j < jobs; ++j) {
    const double arrival =
        t0 + horizon * (j + rng.uniform()) / static_cast<double>(jobs);
    if (arrival > testbed->sim().now()) {
      testbed->sim().run_until(arrival);
    }
    const bool is_md = rng.chance(0.5);
    const int procs = 4 * static_cast<int>(rng.uniform_int(5, 20));
    core::AllocationRequest request;
    request.nprocs = procs;
    request.ppn = 4;
    request.job = is_md ? core::JobWeights::minimd_defaults()
                        : core::JobWeights::minife_defaults();
    const std::string name = util::format("%s-%02d", is_md ? "miniMD" : "miniFE", j);
    const core::JobId id =
        queue.submit(name, request, testbed->sim().now());
    submitted[id] = {is_md ? "miniMD" : "miniFE", procs};
    log.add_row({util::format("%.2f", testbed->sim().now() / 3600.0), name,
                 util::format("%d", procs), "submit", "-", "-", "-"});
    poll_queue();  // eager attempt on arrival
  }
  // Drain: keep polling until everything started and finished.
  while (queue.pending() > 0 || queue.running() > 0) {
    testbed->sim().run_until(testbed->sim().now() + 60.0);
  }

  std::cout << "=== A queued day on the shared cluster ("
            << workload::to_string(options.scenario) << ") ===\n\n";
  log.print(std::cout);
  std::cout << util::format(
      "\n%d jobs, mean wait %.0f s, %d rejected; backfill %s, reservations "
      "%s\n",
      jobs, queue.mean_wait_time(), queue.rejected(),
      queue_options.backfill ? "on" : "off",
      queue_options.reserve_nodes ? "on" : "off");
  return 0;
}
