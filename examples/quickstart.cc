// Quickstart: the whole system in one file.
//
//  1. Build a simulated shared cluster (the paper's 60-node IITK testbed).
//  2. Let background users load it and start the Resource Monitor daemons.
//  3. Ask the ResourceBroker for nodes for a 32-process MPI job.
//  4. Run miniMD on the chosen nodes and print the result + hostfile.
#include <iostream>

#include "apps/minimd.h"
#include "core/broker.h"
#include "exp/experiment.h"
#include "mpisim/placement.h"

using namespace nlarm;

int main() {
  // --- 1+2: a warmed-up testbed: cluster + workload + monitor ------------
  exp::Testbed::Options options;
  options.scenario = workload::ScenarioKind::kSharedLab;
  options.seed = 2020;
  auto testbed = exp::Testbed::make(options);
  std::cout << "Cluster: " << testbed->cluster().size() << " nodes, "
            << testbed->cluster().total_cores() << " cores, "
            << testbed->cluster().topology().switch_count()
            << " switches\n";

  // --- 3: request 32 processes, 4 per node, communication-heavy job ------
  core::AllocationRequest request;
  request.nprocs = 32;
  request.ppn = 4;
  request.job = core::JobWeights::minimd_defaults();  // α=0.3, β=0.7

  core::NetworkLoadAwareAllocator allocator;
  core::ResourceBroker broker(allocator);
  const core::BrokerDecision decision =
      broker.decide(testbed->snapshot(), request);

  if (decision.action == core::BrokerDecision::Action::kWait) {
    std::cout << "Broker recommends waiting: " << decision.reason << "\n";
    return 0;
  }
  std::cout << "Broker: " << decision.reason << "\n";
  std::cout << "Allocated nodes (avg CPU load "
            << decision.allocation.avg_cpu_load << ", avg latency "
            << decision.allocation.avg_latency_us << " us):\n";
  std::cout << core::to_hostfile(decision.allocation, testbed->snapshot());

  // --- 4: run miniMD (s=16 → 16K atoms) on the allocation ----------------
  apps::MiniMdParams app;
  app.size = 16;
  app.nranks = request.nprocs;
  const auto profile = apps::make_minimd_profile(app);
  const auto placement =
      mpisim::Placement::from_allocation(decision.allocation);
  const auto result =
      testbed->runtime().run(testbed->sim(), profile, placement);

  std::cout << "\nminiMD finished: " << result.total_s << " s total ("
            << result.compute_s << " s compute, " << result.comm_s
            << " s communication, "
            << static_cast<int>(result.comm_fraction() * 100)
            << "% comm)\n";
  return 0;
}
