
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/minife.cc" "src/CMakeFiles/nlarm.dir/apps/minife.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/apps/minife.cc.o.d"
  "/root/repo/src/apps/minifft.cc" "src/CMakeFiles/nlarm.dir/apps/minifft.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/apps/minifft.cc.o.d"
  "/root/repo/src/apps/minimd.cc" "src/CMakeFiles/nlarm.dir/apps/minimd.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/apps/minimd.cc.o.d"
  "/root/repo/src/apps/synthetic.cc" "src/CMakeFiles/nlarm.dir/apps/synthetic.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/apps/synthetic.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/nlarm.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/node.cc" "src/CMakeFiles/nlarm.dir/cluster/node.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/cluster/node.cc.o.d"
  "/root/repo/src/cluster/spec_loader.cc" "src/CMakeFiles/nlarm.dir/cluster/spec_loader.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/cluster/spec_loader.cc.o.d"
  "/root/repo/src/cluster/topology.cc" "src/CMakeFiles/nlarm.dir/cluster/topology.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/cluster/topology.cc.o.d"
  "/root/repo/src/core/allocator.cc" "src/CMakeFiles/nlarm.dir/core/allocator.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/core/allocator.cc.o.d"
  "/root/repo/src/core/attributes.cc" "src/CMakeFiles/nlarm.dir/core/attributes.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/core/attributes.cc.o.d"
  "/root/repo/src/core/baselines.cc" "src/CMakeFiles/nlarm.dir/core/baselines.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/core/baselines.cc.o.d"
  "/root/repo/src/core/broker.cc" "src/CMakeFiles/nlarm.dir/core/broker.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/core/broker.cc.o.d"
  "/root/repo/src/core/candidate.cc" "src/CMakeFiles/nlarm.dir/core/candidate.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/core/candidate.cc.o.d"
  "/root/repo/src/core/compute_load.cc" "src/CMakeFiles/nlarm.dir/core/compute_load.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/core/compute_load.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/CMakeFiles/nlarm.dir/core/explain.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/core/explain.cc.o.d"
  "/root/repo/src/core/hierarchical.cc" "src/CMakeFiles/nlarm.dir/core/hierarchical.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/core/hierarchical.cc.o.d"
  "/root/repo/src/core/job_queue.cc" "src/CMakeFiles/nlarm.dir/core/job_queue.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/core/job_queue.cc.o.d"
  "/root/repo/src/core/launcher_export.cc" "src/CMakeFiles/nlarm.dir/core/launcher_export.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/core/launcher_export.cc.o.d"
  "/root/repo/src/core/network_load.cc" "src/CMakeFiles/nlarm.dir/core/network_load.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/core/network_load.cc.o.d"
  "/root/repo/src/core/normalize.cc" "src/CMakeFiles/nlarm.dir/core/normalize.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/core/normalize.cc.o.d"
  "/root/repo/src/core/selection.cc" "src/CMakeFiles/nlarm.dir/core/selection.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/core/selection.cc.o.d"
  "/root/repo/src/core/weights.cc" "src/CMakeFiles/nlarm.dir/core/weights.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/core/weights.cc.o.d"
  "/root/repo/src/exp/experiment.cc" "src/CMakeFiles/nlarm.dir/exp/experiment.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/exp/experiment.cc.o.d"
  "/root/repo/src/exp/report.cc" "src/CMakeFiles/nlarm.dir/exp/report.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/exp/report.cc.o.d"
  "/root/repo/src/monitor/central.cc" "src/CMakeFiles/nlarm.dir/monitor/central.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/monitor/central.cc.o.d"
  "/root/repo/src/monitor/daemons.cc" "src/CMakeFiles/nlarm.dir/monitor/daemons.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/monitor/daemons.cc.o.d"
  "/root/repo/src/monitor/forecast.cc" "src/CMakeFiles/nlarm.dir/monitor/forecast.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/monitor/forecast.cc.o.d"
  "/root/repo/src/monitor/persistence.cc" "src/CMakeFiles/nlarm.dir/monitor/persistence.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/monitor/persistence.cc.o.d"
  "/root/repo/src/monitor/resource_monitor.cc" "src/CMakeFiles/nlarm.dir/monitor/resource_monitor.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/monitor/resource_monitor.cc.o.d"
  "/root/repo/src/monitor/snapshot.cc" "src/CMakeFiles/nlarm.dir/monitor/snapshot.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/monitor/snapshot.cc.o.d"
  "/root/repo/src/monitor/store.cc" "src/CMakeFiles/nlarm.dir/monitor/store.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/monitor/store.cc.o.d"
  "/root/repo/src/mpisim/app_profile.cc" "src/CMakeFiles/nlarm.dir/mpisim/app_profile.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/mpisim/app_profile.cc.o.d"
  "/root/repo/src/mpisim/cost_model.cc" "src/CMakeFiles/nlarm.dir/mpisim/cost_model.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/mpisim/cost_model.cc.o.d"
  "/root/repo/src/mpisim/footprint.cc" "src/CMakeFiles/nlarm.dir/mpisim/footprint.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/mpisim/footprint.cc.o.d"
  "/root/repo/src/mpisim/placement.cc" "src/CMakeFiles/nlarm.dir/mpisim/placement.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/mpisim/placement.cc.o.d"
  "/root/repo/src/mpisim/profiler.cc" "src/CMakeFiles/nlarm.dir/mpisim/profiler.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/mpisim/profiler.cc.o.d"
  "/root/repo/src/mpisim/runtime.cc" "src/CMakeFiles/nlarm.dir/mpisim/runtime.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/mpisim/runtime.cc.o.d"
  "/root/repo/src/net/flows.cc" "src/CMakeFiles/nlarm.dir/net/flows.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/net/flows.cc.o.d"
  "/root/repo/src/net/network_model.cc" "src/CMakeFiles/nlarm.dir/net/network_model.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/net/network_model.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/nlarm.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/markov.cc" "src/CMakeFiles/nlarm.dir/sim/markov.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/sim/markov.cc.o.d"
  "/root/repo/src/sim/ou_process.cc" "src/CMakeFiles/nlarm.dir/sim/ou_process.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/sim/ou_process.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/nlarm.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/simulation.cc" "src/CMakeFiles/nlarm.dir/sim/simulation.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/sim/simulation.cc.o.d"
  "/root/repo/src/util/args.cc" "src/CMakeFiles/nlarm.dir/util/args.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/util/args.cc.o.d"
  "/root/repo/src/util/check.cc" "src/CMakeFiles/nlarm.dir/util/check.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/util/check.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/nlarm.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/util/csv.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/nlarm.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/util/logging.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/nlarm.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/util/stats.cc.o.d"
  "/root/repo/src/util/strings.cc" "src/CMakeFiles/nlarm.dir/util/strings.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/util/strings.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/nlarm.dir/util/table.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/util/table.cc.o.d"
  "/root/repo/src/workload/net_flow_gen.cc" "src/CMakeFiles/nlarm.dir/workload/net_flow_gen.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/workload/net_flow_gen.cc.o.d"
  "/root/repo/src/workload/node_load_gen.cc" "src/CMakeFiles/nlarm.dir/workload/node_load_gen.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/workload/node_load_gen.cc.o.d"
  "/root/repo/src/workload/replay.cc" "src/CMakeFiles/nlarm.dir/workload/replay.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/workload/replay.cc.o.d"
  "/root/repo/src/workload/scenario.cc" "src/CMakeFiles/nlarm.dir/workload/scenario.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/workload/scenario.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/nlarm.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/nlarm.dir/workload/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
