file(REMOVE_RECURSE
  "libnlarm.a"
)
