# Empty compiler generated dependencies file for nlarm.
# This may be replaced when dependencies are built.
