# Empty compiler generated dependencies file for slurm_handoff.
# This may be replaced when dependencies are built.
