file(REMOVE_RECURSE
  "CMakeFiles/slurm_handoff.dir/slurm_handoff.cc.o"
  "CMakeFiles/slurm_handoff.dir/slurm_handoff.cc.o.d"
  "slurm_handoff"
  "slurm_handoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slurm_handoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
