file(REMOVE_RECURSE
  "CMakeFiles/monitor_failover.dir/monitor_failover.cc.o"
  "CMakeFiles/monitor_failover.dir/monitor_failover.cc.o.d"
  "monitor_failover"
  "monitor_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
