# Empty compiler generated dependencies file for monitor_failover.
# This may be replaced when dependencies are built.
