# Empty compiler generated dependencies file for shared_cluster_day.
# This may be replaced when dependencies are built.
