file(REMOVE_RECURSE
  "CMakeFiles/shared_cluster_day.dir/shared_cluster_day.cc.o"
  "CMakeFiles/shared_cluster_day.dir/shared_cluster_day.cc.o.d"
  "shared_cluster_day"
  "shared_cluster_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_cluster_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
