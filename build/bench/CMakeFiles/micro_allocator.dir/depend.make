# Empty dependencies file for micro_allocator.
# This may be replaced when dependencies are built.
