# Empty dependencies file for fig05_cpu_load_per_core.
# This may be replaced when dependencies are built.
