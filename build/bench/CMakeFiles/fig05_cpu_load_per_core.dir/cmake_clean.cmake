file(REMOVE_RECURSE
  "CMakeFiles/fig05_cpu_load_per_core.dir/fig05_cpu_load_per_core.cc.o"
  "CMakeFiles/fig05_cpu_load_per_core.dir/fig05_cpu_load_per_core.cc.o.d"
  "fig05_cpu_load_per_core"
  "fig05_cpu_load_per_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_cpu_load_per_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
