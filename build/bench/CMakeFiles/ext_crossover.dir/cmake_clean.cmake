file(REMOVE_RECURSE
  "CMakeFiles/ext_crossover.dir/ext_crossover.cc.o"
  "CMakeFiles/ext_crossover.dir/ext_crossover.cc.o.d"
  "ext_crossover"
  "ext_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
