# Empty dependencies file for fig06_minife_scaling.
# This may be replaced when dependencies are built.
