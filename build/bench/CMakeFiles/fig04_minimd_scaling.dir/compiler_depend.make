# Empty compiler generated dependencies file for fig04_minimd_scaling.
# This may be replaced when dependencies are built.
