# Empty dependencies file for table4_allocation_analysis.
# This may be replaced when dependencies are built.
