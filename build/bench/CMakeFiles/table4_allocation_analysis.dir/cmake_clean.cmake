file(REMOVE_RECURSE
  "CMakeFiles/table4_allocation_analysis.dir/table4_allocation_analysis.cc.o"
  "CMakeFiles/table4_allocation_analysis.dir/table4_allocation_analysis.cc.o.d"
  "table4_allocation_analysis"
  "table4_allocation_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_allocation_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
