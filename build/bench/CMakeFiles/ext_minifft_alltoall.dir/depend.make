# Empty dependencies file for ext_minifft_alltoall.
# This may be replaced when dependencies are built.
