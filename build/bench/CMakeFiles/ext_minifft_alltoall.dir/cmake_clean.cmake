file(REMOVE_RECURSE
  "CMakeFiles/ext_minifft_alltoall.dir/ext_minifft_alltoall.cc.o"
  "CMakeFiles/ext_minifft_alltoall.dir/ext_minifft_alltoall.cc.o.d"
  "ext_minifft_alltoall"
  "ext_minifft_alltoall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_minifft_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
