# Empty dependencies file for table2_minimd_gains.
# This may be replaced when dependencies are built.
