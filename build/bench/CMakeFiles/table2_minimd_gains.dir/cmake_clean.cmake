file(REMOVE_RECURSE
  "CMakeFiles/table2_minimd_gains.dir/table2_minimd_gains.cc.o"
  "CMakeFiles/table2_minimd_gains.dir/table2_minimd_gains.cc.o.d"
  "table2_minimd_gains"
  "table2_minimd_gains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_minimd_gains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
