# Empty dependencies file for fig01_resource_variation.
# This may be replaced when dependencies are built.
