file(REMOVE_RECURSE
  "CMakeFiles/fig01_resource_variation.dir/fig01_resource_variation.cc.o"
  "CMakeFiles/fig01_resource_variation.dir/fig01_resource_variation.cc.o.d"
  "fig01_resource_variation"
  "fig01_resource_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_resource_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
