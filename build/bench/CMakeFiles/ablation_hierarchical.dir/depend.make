# Empty dependencies file for ablation_hierarchical.
# This may be replaced when dependencies are built.
