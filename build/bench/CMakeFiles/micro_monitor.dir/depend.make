# Empty dependencies file for micro_monitor.
# This may be replaced when dependencies are built.
