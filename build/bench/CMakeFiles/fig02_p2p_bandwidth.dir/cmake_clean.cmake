file(REMOVE_RECURSE
  "CMakeFiles/fig02_p2p_bandwidth.dir/fig02_p2p_bandwidth.cc.o"
  "CMakeFiles/fig02_p2p_bandwidth.dir/fig02_p2p_bandwidth.cc.o.d"
  "fig02_p2p_bandwidth"
  "fig02_p2p_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_p2p_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
