# Empty dependencies file for fig02_p2p_bandwidth.
# This may be replaced when dependencies are built.
