# Empty dependencies file for table3_minife_gains.
# This may be replaced when dependencies are built.
