file(REMOVE_RECURSE
  "CMakeFiles/table3_minife_gains.dir/table3_minife_gains.cc.o"
  "CMakeFiles/table3_minife_gains.dir/table3_minife_gains.cc.o.d"
  "table3_minife_gains"
  "table3_minife_gains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_minife_gains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
