file(REMOVE_RECURSE
  "CMakeFiles/core_launcher_export_test.dir/core_launcher_export_test.cc.o"
  "CMakeFiles/core_launcher_export_test.dir/core_launcher_export_test.cc.o.d"
  "core_launcher_export_test"
  "core_launcher_export_test.pdb"
  "core_launcher_export_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_launcher_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
