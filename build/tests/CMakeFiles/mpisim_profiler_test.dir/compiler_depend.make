# Empty compiler generated dependencies file for mpisim_profiler_test.
# This may be replaced when dependencies are built.
