file(REMOVE_RECURSE
  "CMakeFiles/mpisim_profiler_test.dir/mpisim_profiler_test.cc.o"
  "CMakeFiles/mpisim_profiler_test.dir/mpisim_profiler_test.cc.o.d"
  "mpisim_profiler_test"
  "mpisim_profiler_test.pdb"
  "mpisim_profiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisim_profiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
