# Empty compiler generated dependencies file for core_normalize_test.
# This may be replaced when dependencies are built.
