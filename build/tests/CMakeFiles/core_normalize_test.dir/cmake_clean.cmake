file(REMOVE_RECURSE
  "CMakeFiles/core_normalize_test.dir/core_normalize_test.cc.o"
  "CMakeFiles/core_normalize_test.dir/core_normalize_test.cc.o.d"
  "core_normalize_test"
  "core_normalize_test.pdb"
  "core_normalize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_normalize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
