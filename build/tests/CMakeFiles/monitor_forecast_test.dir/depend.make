# Empty dependencies file for monitor_forecast_test.
# This may be replaced when dependencies are built.
