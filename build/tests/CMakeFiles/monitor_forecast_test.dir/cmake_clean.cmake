file(REMOVE_RECURSE
  "CMakeFiles/monitor_forecast_test.dir/monitor_forecast_test.cc.o"
  "CMakeFiles/monitor_forecast_test.dir/monitor_forecast_test.cc.o.d"
  "monitor_forecast_test"
  "monitor_forecast_test.pdb"
  "monitor_forecast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_forecast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
