file(REMOVE_RECURSE
  "CMakeFiles/monitor_store_test.dir/monitor_store_test.cc.o"
  "CMakeFiles/monitor_store_test.dir/monitor_store_test.cc.o.d"
  "monitor_store_test"
  "monitor_store_test.pdb"
  "monitor_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
