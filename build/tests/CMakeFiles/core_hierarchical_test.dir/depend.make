# Empty dependencies file for core_hierarchical_test.
# This may be replaced when dependencies are built.
