file(REMOVE_RECURSE
  "CMakeFiles/sim_processes_test.dir/sim_processes_test.cc.o"
  "CMakeFiles/sim_processes_test.dir/sim_processes_test.cc.o.d"
  "sim_processes_test"
  "sim_processes_test.pdb"
  "sim_processes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_processes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
