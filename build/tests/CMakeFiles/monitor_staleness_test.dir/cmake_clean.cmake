file(REMOVE_RECURSE
  "CMakeFiles/monitor_staleness_test.dir/monitor_staleness_test.cc.o"
  "CMakeFiles/monitor_staleness_test.dir/monitor_staleness_test.cc.o.d"
  "monitor_staleness_test"
  "monitor_staleness_test.pdb"
  "monitor_staleness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_staleness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
