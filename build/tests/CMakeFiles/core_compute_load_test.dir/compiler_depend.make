# Empty compiler generated dependencies file for core_compute_load_test.
# This may be replaced when dependencies are built.
