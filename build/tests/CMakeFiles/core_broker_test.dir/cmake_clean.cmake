file(REMOVE_RECURSE
  "CMakeFiles/core_broker_test.dir/core_broker_test.cc.o"
  "CMakeFiles/core_broker_test.dir/core_broker_test.cc.o.d"
  "core_broker_test"
  "core_broker_test.pdb"
  "core_broker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_broker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
