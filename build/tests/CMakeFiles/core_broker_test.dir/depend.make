# Empty dependencies file for core_broker_test.
# This may be replaced when dependencies are built.
