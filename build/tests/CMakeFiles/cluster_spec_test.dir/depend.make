# Empty dependencies file for cluster_spec_test.
# This may be replaced when dependencies are built.
