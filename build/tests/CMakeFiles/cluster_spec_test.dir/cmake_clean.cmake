file(REMOVE_RECURSE
  "CMakeFiles/cluster_spec_test.dir/cluster_spec_test.cc.o"
  "CMakeFiles/cluster_spec_test.dir/cluster_spec_test.cc.o.d"
  "cluster_spec_test"
  "cluster_spec_test.pdb"
  "cluster_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
