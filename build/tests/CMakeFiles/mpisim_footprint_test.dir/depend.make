# Empty dependencies file for mpisim_footprint_test.
# This may be replaced when dependencies are built.
