file(REMOVE_RECURSE
  "CMakeFiles/mpisim_footprint_test.dir/mpisim_footprint_test.cc.o"
  "CMakeFiles/mpisim_footprint_test.dir/mpisim_footprint_test.cc.o.d"
  "mpisim_footprint_test"
  "mpisim_footprint_test.pdb"
  "mpisim_footprint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisim_footprint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
