file(REMOVE_RECURSE
  "CMakeFiles/workload_failures_test.dir/workload_failures_test.cc.o"
  "CMakeFiles/workload_failures_test.dir/workload_failures_test.cc.o.d"
  "workload_failures_test"
  "workload_failures_test.pdb"
  "workload_failures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_failures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
