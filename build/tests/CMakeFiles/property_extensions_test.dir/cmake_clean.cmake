file(REMOVE_RECURSE
  "CMakeFiles/property_extensions_test.dir/property_extensions_test.cc.o"
  "CMakeFiles/property_extensions_test.dir/property_extensions_test.cc.o.d"
  "property_extensions_test"
  "property_extensions_test.pdb"
  "property_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
