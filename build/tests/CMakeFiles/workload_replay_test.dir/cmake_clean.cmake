file(REMOVE_RECURSE
  "CMakeFiles/workload_replay_test.dir/workload_replay_test.cc.o"
  "CMakeFiles/workload_replay_test.dir/workload_replay_test.cc.o.d"
  "workload_replay_test"
  "workload_replay_test.pdb"
  "workload_replay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
