# Empty dependencies file for workload_replay_test.
# This may be replaced when dependencies are built.
