# Empty compiler generated dependencies file for monitor_daemons_test.
# This may be replaced when dependencies are built.
