file(REMOVE_RECURSE
  "CMakeFiles/monitor_daemons_test.dir/monitor_daemons_test.cc.o"
  "CMakeFiles/monitor_daemons_test.dir/monitor_daemons_test.cc.o.d"
  "monitor_daemons_test"
  "monitor_daemons_test.pdb"
  "monitor_daemons_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_daemons_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
