file(REMOVE_RECURSE
  "CMakeFiles/monitor_central_test.dir/monitor_central_test.cc.o"
  "CMakeFiles/monitor_central_test.dir/monitor_central_test.cc.o.d"
  "monitor_central_test"
  "monitor_central_test.pdb"
  "monitor_central_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_central_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
