file(REMOVE_RECURSE
  "CMakeFiles/monitor_persistence_test.dir/monitor_persistence_test.cc.o"
  "CMakeFiles/monitor_persistence_test.dir/monitor_persistence_test.cc.o.d"
  "monitor_persistence_test"
  "monitor_persistence_test.pdb"
  "monitor_persistence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_persistence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
