# Empty dependencies file for monitor_persistence_test.
# This may be replaced when dependencies are built.
