file(REMOVE_RECURSE
  "CMakeFiles/core_candidate_test.dir/core_candidate_test.cc.o"
  "CMakeFiles/core_candidate_test.dir/core_candidate_test.cc.o.d"
  "core_candidate_test"
  "core_candidate_test.pdb"
  "core_candidate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_candidate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
