# Empty compiler generated dependencies file for core_candidate_test.
# This may be replaced when dependencies are built.
