file(REMOVE_RECURSE
  "CMakeFiles/nlarm_broker.dir/nlarm_broker.cc.o"
  "CMakeFiles/nlarm_broker.dir/nlarm_broker.cc.o.d"
  "nlarm_broker"
  "nlarm_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlarm_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
