# Empty dependencies file for nlarm_broker.
# This may be replaced when dependencies are built.
