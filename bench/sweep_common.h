// Shared sweep driver for the strong-scaling experiments (Figures 4 and 6,
// Tables 2 and 3): run the four-policy comparison over a grid of process
// counts and problem sizes on the paper's testbed, shared-lab scenario.
#pragma once

#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "exp/report.h"
#include "util/args.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace nlarm::bench {

struct SweepOptions {
  std::vector<int> proc_counts;
  std::vector<int> problem_sizes;
  int repetitions = 3;   ///< paper uses 5; default trimmed for quick runs
  int ppn = 4;           ///< 4 processes/node throughout §5
  core::JobWeights job;
  std::uint64_t seed = 42;
  workload::ScenarioKind scenario = workload::ScenarioKind::kSharedLab;
};

/// Results for one process count: one ComparisonResult per problem size.
struct SweepRow {
  int nprocs = 0;
  std::vector<exp::ComparisonResult> by_size;
};

using AppFactory =
    std::function<mpisim::AppProfile(int problem_size, int nranks)>;

inline std::vector<SweepRow> run_sweep(const SweepOptions& options,
                                       const AppFactory& make_app) {
  std::vector<SweepRow> rows;
  for (int nprocs : options.proc_counts) {
    // A fresh testbed per process count, like separate sessions on the real
    // cluster; the same testbed carries across problem sizes.
    exp::Testbed::Options testbed_options;
    testbed_options.seed = options.seed + static_cast<std::uint64_t>(nprocs);
    testbed_options.scenario = options.scenario;
    auto testbed = exp::Testbed::make(testbed_options);

    SweepRow row;
    row.nprocs = nprocs;
    for (int size : options.problem_sizes) {
      exp::ComparisonConfig config;
      config.nprocs = nprocs;
      config.ppn = options.ppn;
      config.job = options.job;
      config.repetitions = options.repetitions;
      config.make_app = [&, size](int nranks) {
        return make_app(size, nranks);
      };
      row.by_size.push_back(exp::run_policy_comparison(*testbed, config));
      std::fprintf(stderr, "  [sweep] procs=%d size=%d done\n", nprocs, size);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Flattens every ComparisonResult of a sweep (for pooled gain statistics).
inline std::vector<exp::ComparisonResult> flatten(
    const std::vector<SweepRow>& rows) {
  std::vector<exp::ComparisonResult> all;
  for (const SweepRow& row : rows) {
    for (const exp::ComparisonResult& result : row.by_size) {
      all.push_back(result);
    }
  }
  return all;
}

/// Adds the standard sweep flags to a parser spec.
inline util::ArgParser make_sweep_parser(const std::string& description) {
  return util::ArgParser(
      description,
      {{"reps", "repetitions per configuration (paper: 5; default 3)"},
       {"seed", "base RNG seed (default 42)"},
       {"full", "run the paper's full grid and 5 repetitions"},
       {"scenario", "workload scenario: quiet|shared_lab|hotspot|heavy"}});
}

}  // namespace nlarm::bench
