// Figure 6: miniFE strong scaling under the four allocation policies.
//
// Grid: processes ∈ {8,16,32,48} (4 per node), nx ∈ {48,96,144,256,384}
// with ny = nz = nx.
#include <iostream>

#include "apps/minife.h"
#include "sweep_common.h"

using namespace nlarm;

int main(int argc, char** argv) {
  auto parser = bench::make_sweep_parser(
      "Figure 6 reproduction: miniFE execution times under random, "
      "sequential, load-aware and network-and-load-aware allocation.");
  if (!parser.parse(argc, argv)) return 0;
  const bool full = parser.get_bool("full");

  bench::SweepOptions options;
  options.proc_counts = {8, 16, 32, 48};
  options.problem_sizes = full ? std::vector<int>{48, 96, 144, 256, 384}
                               : std::vector<int>{48, 144, 384};
  options.repetitions =
      static_cast<int>(parser.get_long("reps", full ? 5 : 3));
  options.seed = static_cast<std::uint64_t>(parser.get_long("seed", 43));
  options.scenario = workload::parse_scenario_kind(
      parser.get_string("scenario", "shared_lab"));
  options.job = core::JobWeights::minife_defaults();  // α=0.4, β=0.6

  const auto rows = bench::run_sweep(
      options, [](int nx, int nranks) {
        apps::MiniFeParams params;
        params.nx = nx;
        params.nranks = nranks;
        return apps::make_minife_profile(params);
      });

  std::cout << "=== Figure 6: miniFE strong scaling (" << options.repetitions
            << " repetitions, 4 processes/node, scenario "
            << workload::to_string(options.scenario) << ") ===\n\n";
  std::vector<double> sizes(options.problem_sizes.begin(),
                            options.problem_sizes.end());
  for (const auto& row : rows) {
    exp::print_time_table(
        std::cout,
        util::format("#procs = %d  (execution time vs problem size nx)",
                     row.nprocs),
        "nx", sizes, row.by_size);
  }

  const auto all = bench::flatten(rows);
  int ours_best = 0;
  for (const auto& result : all) {
    const double ours = result.mean_time(exp::Policy::kNetworkLoadAware);
    if (ours <= result.mean_time(exp::Policy::kRandom) &&
        ours <= result.mean_time(exp::Policy::kSequential) &&
        ours <= result.mean_time(exp::Policy::kLoadAware)) {
      ++ours_best;
    }
  }
  const exp::GainStats vs_random =
      exp::pooled_gains(all, exp::Policy::kRandom);
  const exp::GainStats vs_sequential =
      exp::pooled_gains(all, exp::Policy::kSequential);
  const exp::GainStats vs_load =
      exp::pooled_gains(all, exp::Policy::kLoadAware);

  // The paper's comm-fraction comparison: ~40% for miniFE at 48 procs,
  // > 50% for miniMD (§5.2) — checked in apps_test; here we verify the
  // cheaper comm makes miniFE gains smaller than pure-network would give.
  std::vector<exp::ShapeCheck> checks;
  checks.push_back(exp::check(
      "network-and-load-aware best in most configurations",
      ours_best * 2 > static_cast<int>(all.size()),
      util::format("best in %d/%zu", ours_best, all.size())));
  checks.push_back(exp::check(
      "positive average gain over random (paper: 47.9%)",
      vs_random.average > 0.0,
      util::format("%.1f%%", vs_random.average * 100)));
  checks.push_back(exp::check(
      "positive average gain over sequential (paper: 31.1%)",
      vs_sequential.average > 0.0,
      util::format("%.1f%%", vs_sequential.average * 100)));
  checks.push_back(exp::check(
      "positive average gain over load-aware (paper: 34.8%)",
      vs_load.average > 0.0, util::format("%.1f%%", vs_load.average * 100)));
  exp::print_shape_checks(std::cout, checks);
  return 0;
}
