// Table 4 + Figure 7: resource-allocation analysis for one job.
//
// The paper's §5.3 case study: miniMD, 32 processes (4/node, 8 nodes),
// s = 16 (16K atoms). All four policies allocate against the same cluster
// state; Table 4 reports the allocated groups' average CPU load, average
// complement of available bandwidth and average latency, and Figure 7 shows
// the P2P bandwidth heatmap with each policy's selection and the per-node
// CPU load row.
#include <algorithm>
#include <iostream>

#include "apps/minimd.h"
#include "core/baselines.h"
#include "core/network_load.h"
#include "exp/experiment.h"
#include "exp/report.h"
#include "mpisim/placement.h"
#include "util/args.h"
#include "util/strings.h"
#include "util/table.h"

using namespace nlarm;

int main(int argc, char** argv) {
  util::ArgParser parser(
      "Table 4 + Figure 7 reproduction: state of the resource groups chosen "
      "by each policy for one miniMD job (32 procs, s=16).",
      {{"seed", "RNG seed (default 46)"},
       {"scenario", "workload scenario (default hotspot, for contrast)"}});
  if (!parser.parse(argc, argv)) return 0;

  exp::Testbed::Options testbed_options;
  testbed_options.seed =
      static_cast<std::uint64_t>(parser.get_long("seed", 46));
  testbed_options.scenario = workload::parse_scenario_kind(
      parser.get_string("scenario", "hotspot"));
  auto testbed = exp::Testbed::make(testbed_options);
  const monitor::ClusterSnapshot snap = testbed->snapshot();

  core::AllocationRequest request;
  request.nprocs = 32;
  request.ppn = 4;
  request.job = core::JobWeights::minimd_defaults();
  request.validate();

  core::RandomAllocator random_alloc(7);
  core::SequentialAllocator sequential_alloc(7);
  core::LoadAwareAllocator load_aware_alloc;
  core::NetworkLoadAwareAllocator ours;
  struct Entry {
    std::string label;
    core::Allocator* allocator;
    core::Allocation allocation;
    double exec_s = 0.0;
  };
  std::vector<Entry> entries{{"Random", &random_alloc, {}, 0.0},
                             {"Sequential", &sequential_alloc, {}, 0.0},
                             {"Load Aware", &load_aware_alloc, {}, 0.0},
                             {"Network and load-aware", &ours, {}, 0.0}};

  apps::MiniMdParams app_params;
  app_params.size = 16;
  app_params.nranks = 32;
  const auto app = apps::make_minimd_profile(app_params);

  for (Entry& entry : entries) {
    entry.allocation = entry.allocator->allocate(snap, request);
    // Execute on a frozen copy of the conditions so every policy faces the
    // exact same cluster state (the paper ran them back-to-back).
    entry.exec_s =
        testbed->runtime()
            .estimate(app,
                      mpisim::Placement::from_allocation(entry.allocation))
            .total_s;
  }

  std::cout << "=== Table 4: usage of allocated resource group during "
               "allocation ===\n";
  std::cout << "(miniMD, 32 processes, 4/node, s=16; complement of available "
               "bandwidth in MB/s as in the paper)\n\n";
  util::TextTable table({"Algorithm", "Avg. CPU load", "Avg. bandwidth",
                         "Avg. latency (us)", "Exec time (s)"});
  for (const Entry& entry : entries) {
    table.add_row({entry.label,
                   util::format("%.3f", entry.allocation.avg_cpu_load),
                   util::format("%.2f",
                                entry.allocation.avg_bw_complement_mbps / 8.0),
                   util::format("%.2f", entry.allocation.avg_latency_us),
                   util::format("%.2f", entry.exec_s)});
  }
  table.print(std::cout);
  std::cout << "\nPaper's Table 4 (for shape comparison):\n"
               "  Random                  1.242  17.07  546.46\n"
               "  Sequential              1.262  10.72  304.25\n"
               "  Load Aware              0.453  18.64  354.51\n"
               "  Network and load-aware  0.633   5.36   82.90\n\n";

  // ---- Figure 7: heatmap + selections + CPU load row ----
  // Show the sub-cluster covering every selected node (plus context).
  std::vector<cluster::NodeId> shown;
  for (const Entry& entry : entries) {
    for (cluster::NodeId id : entry.allocation.nodes) shown.push_back(id);
  }
  std::sort(shown.begin(), shown.end());
  shown.erase(std::unique(shown.begin(), shown.end()), shown.end());

  std::vector<std::vector<double>> complement(
      shown.size(), std::vector<double>(shown.size(), 0.0));
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < shown.size(); ++i) {
    labels.push_back(snap.nodes[static_cast<std::size_t>(shown[i])]
                         .spec.hostname);
    for (std::size_t j = 0; j < shown.size(); ++j) {
      if (i == j) continue;
      const core::PairMetrics m = core::pair_metrics(snap, shown[i], shown[j]);
      complement[i][j] =
          m.bandwidth_complement_mbps >= 0 ? m.bandwidth_complement_mbps : 0;
    }
  }

  std::cout << "=== Figure 7: P2P bandwidth (complement) heatmap over the "
               "selected nodes ===\n";
  std::cout << "darker = lower available bandwidth (larger complement)\n\n";
  util::HeatmapOptions heat;
  heat.labels = labels;
  std::cout << util::render_heatmap(complement, heat) << "\n";

  std::cout << "Selections (x = node chosen by the policy):\n";
  const std::size_t label_width = 24;
  for (const Entry& entry : entries) {
    std::string line = entry.label;
    line.resize(label_width, ' ');
    for (cluster::NodeId id : shown) {
      const bool chosen =
          std::find(entry.allocation.nodes.begin(),
                    entry.allocation.nodes.end(),
                    id) != entry.allocation.nodes.end();
      line += chosen ? " x" : " .";
    }
    std::cout << line << "\n";
  }
  std::string load_line = "CPU load";
  load_line.resize(label_width, ' ');
  std::cout << load_line;
  for (cluster::NodeId id : shown) {
    std::printf(" %.0f",
                snap.nodes[static_cast<std::size_t>(id)].cpu_load_avg.one_min);
  }
  std::cout << "\nSwitch    ";
  std::cout << std::string(label_width - 10, ' ');
  for (cluster::NodeId id : shown) {
    std::printf(" %d", testbed->cluster().topology().switch_of(id));
  }
  std::cout << "\n\n";

  const Entry& ours_entry = entries[3];
  const Entry& load_entry = entries[2];
  std::vector<exp::ShapeCheck> checks;
  checks.push_back(exp::check(
      "ours has the lowest average bandwidth complement (most headroom)",
      ours_entry.allocation.avg_bw_complement_mbps <=
          entries[0].allocation.avg_bw_complement_mbps &&
          ours_entry.allocation.avg_bw_complement_mbps <=
              entries[1].allocation.avg_bw_complement_mbps &&
          ours_entry.allocation.avg_bw_complement_mbps <=
              load_entry.allocation.avg_bw_complement_mbps,
      util::format("%.1f Mbit/s",
                   ours_entry.allocation.avg_bw_complement_mbps)));
  checks.push_back(exp::check(
      "ours has the lowest average latency",
      ours_entry.allocation.avg_latency_us <=
          entries[0].allocation.avg_latency_us &&
          ours_entry.allocation.avg_latency_us <=
              entries[1].allocation.avg_latency_us &&
          ours_entry.allocation.avg_latency_us <=
              load_entry.allocation.avg_latency_us,
      util::format("%.1f us", ours_entry.allocation.avg_latency_us)));
  checks.push_back(exp::check(
      "load-aware's CPU load is at most ours plus noise (it optimizes only "
      "that)",
      load_entry.allocation.avg_cpu_load <=
          ours_entry.allocation.avg_cpu_load + 0.15,
      util::format("%.3f vs ours %.3f", load_entry.allocation.avg_cpu_load,
                   ours_entry.allocation.avg_cpu_load)));
  checks.push_back(exp::check(
      "ours is the fastest despite not having the lowest CPU load",
      ours_entry.exec_s <= entries[0].exec_s &&
          ours_entry.exec_s <= entries[1].exec_s &&
          ours_entry.exec_s <= load_entry.exec_s,
      util::format("%.2f s vs load-aware %.2f s", ours_entry.exec_s,
                   load_entry.exec_s)));
  // Topology capture: all our nodes within few switch hops.
  int max_hops = 0;
  for (std::size_t i = 0; i < ours_entry.allocation.nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < ours_entry.allocation.nodes.size(); ++j) {
      max_hops = std::max(
          max_hops, testbed->cluster().topology().hops(
                        ours_entry.allocation.nodes[i],
                        ours_entry.allocation.nodes[j]));
    }
  }
  checks.push_back(exp::check(
      "ours automatically captures topology (selection does not span the "
      "whole 4-switch chain)",
      max_hops <= 3, util::format("max hops %d", max_hops)));
  exp::print_shape_checks(std::cout, checks);
  return 0;
}
