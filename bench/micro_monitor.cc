// Microbenchmarks for the monitoring substrate: per-sample daemon work,
// windowed-mean maintenance, snapshot assembly and the network model's
// pairwise queries. These bound the "light-weight daemons" claim of §4.
#include <benchmark/benchmark.h>

#include "cluster/cluster.h"
#include "monitor/daemons.h"
#include "monitor/store.h"
#include "net/flows.h"
#include "net/network_model.h"
#include "sim/rng.h"
#include "util/stats.h"

using namespace nlarm;

namespace {

void BM_WindowedMeanAdd(benchmark::State& state) {
  util::WindowedMean window(60.0);
  double t = 0.0;
  for (auto _ : state) {
    t += 3.0;
    window.add(t, 1.0 + 0.1 * (static_cast<int>(t) % 7));
    benchmark::DoNotOptimize(window.value());
  }
}
BENCHMARK(BM_WindowedMeanAdd);

void BM_LoadAveragesAdd(benchmark::State& state) {
  util::LoadAverages averages;
  double t = 0.0;
  for (auto _ : state) {
    t += 3.0;
    averages.add(t, 2.0);
    benchmark::DoNotOptimize(averages.fifteen_minutes());
  }
}
BENCHMARK(BM_LoadAveragesAdd);

void BM_SnapshotAssembly(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  monitor::MonitorStore store(n);
  for (int i = 0; i < n; ++i) {
    monitor::NodeSnapshot record;
    record.spec.id = i;
    record.spec.core_count = 8;
    record.spec.cpu_freq_ghz = 3.0;
    record.spec.total_mem_gb = 16.0;
    store.write_node_record(1.0, record);
  }
  store.write_livehosts(1.0, std::vector<bool>(static_cast<std::size_t>(n),
                                               true));
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.assemble(2.0));
  }
}
BENCHMARK(BM_SnapshotAssembly)->Arg(60)->Arg(256);

void BM_BandwidthQuery(benchmark::State& state) {
  cluster::Cluster cluster = cluster::make_iitk_cluster();
  net::FlowSet flows;
  sim::Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    const auto src = static_cast<cluster::NodeId>(rng.uniform_int(0, 59));
    auto dst = static_cast<cluster::NodeId>(rng.uniform_int(0, 59));
    if (dst == src) dst = (dst + 1) % 60;
    flows.add(src, dst, rng.uniform(10.0, 400.0));
  }
  net::NetworkModel network(cluster, flows);
  int u = 0;
  for (auto _ : state) {
    const int v = (u + 17) % 60;
    benchmark::DoNotOptimize(
        network.available_bandwidth_mbps(u, v == u ? (u + 1) % 60 : v));
    u = (u + 1) % 60;
  }
}
BENCHMARK(BM_BandwidthQuery);

void BM_LatencyQuery(benchmark::State& state) {
  cluster::Cluster cluster = cluster::make_iitk_cluster();
  net::FlowSet flows;
  net::NetworkModel network(cluster, flows);
  int u = 0;
  for (auto _ : state) {
    const int v = (u + 31) % 60;
    benchmark::DoNotOptimize(
        network.latency_us(u, v == u ? (u + 1) % 60 : v));
    u = (u + 1) % 60;
  }
}
BENCHMARK(BM_LatencyQuery);

void BM_FullProbeSweep(benchmark::State& state) {
  // One BandwidthD sweep over the paper's 60-node cluster: n−1 rounds of
  // n/2 pairs (what happens every 5 minutes on the real cluster).
  cluster::Cluster cluster = cluster::make_iitk_cluster();
  net::FlowSet flows;
  net::NetworkModel network(cluster, flows);
  sim::Rng rng(2);
  const auto rounds = monitor::tournament_rounds(cluster.size());
  for (auto _ : state) {
    double sum = 0.0;
    for (const auto& round : rounds) {
      for (const auto& [u, v] : round) {
        sum += network.measure_bandwidth_mbps(u, v, rng);
      }
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_FullProbeSweep);

void BM_TournamentSchedule(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor::tournament_rounds(n));
  }
}
BENCHMARK(BM_TournamentSchedule)->Arg(60)->Arg(256);

}  // namespace

#include "bench_main.h"
NLARM_BENCHMARK_MAIN()
