// Microbenchmarks for the monitoring substrate: per-sample daemon work,
// windowed-mean maintenance, snapshot assembly, snapshot persistence
// (text vs binary codec vs mmap ingest vs delta append-log) and the
// network model's pairwise queries. These bound the "light-weight
// daemons" claim of §4.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "cluster/cluster.h"
#include "cluster/topology.h"
#include "monitor/daemons.h"
#include "monitor/delta_log.h"
#include "monitor/persistence.h"
#include "monitor/snapshot_codec.h"
#include "monitor/sparse.h"
#include "monitor/store.h"
#include "net/flows.h"
#include "net/network_model.h"
#include "sim/rng.h"
#include "util/stats.h"

using namespace nlarm;

namespace {

void BM_WindowedMeanAdd(benchmark::State& state) {
  util::WindowedMean window(60.0);
  double t = 0.0;
  for (auto _ : state) {
    t += 3.0;
    window.add(t, 1.0 + 0.1 * (static_cast<int>(t) % 7));
    benchmark::DoNotOptimize(window.value());
  }
}
BENCHMARK(BM_WindowedMeanAdd);

void BM_LoadAveragesAdd(benchmark::State& state) {
  util::LoadAverages averages;
  double t = 0.0;
  for (auto _ : state) {
    t += 3.0;
    averages.add(t, 2.0);
    benchmark::DoNotOptimize(averages.fifteen_minutes());
  }
}
BENCHMARK(BM_LoadAveragesAdd);

void BM_SnapshotAssembly(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  monitor::MonitorStore store(n);
  for (int i = 0; i < n; ++i) {
    monitor::NodeSnapshot record;
    record.spec.id = i;
    record.spec.core_count = 8;
    record.spec.cpu_freq_ghz = 3.0;
    record.spec.total_mem_gb = 16.0;
    store.write_node_record(1.0, record);
  }
  store.write_livehosts(1.0, std::vector<bool>(static_cast<std::size_t>(n),
                                               true));
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.assemble(2.0));
  }
}
BENCHMARK(BM_SnapshotAssembly)->Arg(60)->Arg(256);

void BM_BandwidthQuery(benchmark::State& state) {
  cluster::Cluster cluster = cluster::make_iitk_cluster();
  net::FlowSet flows;
  sim::Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    const auto src = static_cast<cluster::NodeId>(rng.uniform_int(0, 59));
    auto dst = static_cast<cluster::NodeId>(rng.uniform_int(0, 59));
    if (dst == src) dst = (dst + 1) % 60;
    flows.add(src, dst, rng.uniform(10.0, 400.0));
  }
  net::NetworkModel network(cluster, flows);
  int u = 0;
  for (auto _ : state) {
    const int v = (u + 17) % 60;
    benchmark::DoNotOptimize(
        network.available_bandwidth_mbps(u, v == u ? (u + 1) % 60 : v));
    u = (u + 1) % 60;
  }
}
BENCHMARK(BM_BandwidthQuery);

void BM_LatencyQuery(benchmark::State& state) {
  cluster::Cluster cluster = cluster::make_iitk_cluster();
  net::FlowSet flows;
  net::NetworkModel network(cluster, flows);
  int u = 0;
  for (auto _ : state) {
    const int v = (u + 31) % 60;
    benchmark::DoNotOptimize(
        network.latency_us(u, v == u ? (u + 1) % 60 : v));
    u = (u + 1) % 60;
  }
}
BENCHMARK(BM_LatencyQuery);

void BM_FullProbeSweep(benchmark::State& state) {
  // One BandwidthD sweep over the paper's 60-node cluster: n−1 rounds of
  // n/2 pairs (what happens every 5 minutes on the real cluster).
  cluster::Cluster cluster = cluster::make_iitk_cluster();
  net::FlowSet flows;
  net::NetworkModel network(cluster, flows);
  sim::Rng rng(2);
  const auto rounds = monitor::tournament_rounds(cluster.size());
  for (auto _ : state) {
    double sum = 0.0;
    for (const auto& round : rounds) {
      for (const auto& [u, v] : round) {
        sum += network.measure_bandwidth_mbps(u, v, rng);
      }
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_FullProbeSweep);

void BM_TournamentSchedule(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor::tournament_rounds(n));
  }
}
BENCHMARK(BM_TournamentSchedule)->Arg(60)->Arg(256);

// --- snapshot persistence: text vs binary codec vs mmap vs delta log ---

// A fully measured V-node snapshot (every pair carries all four values),
// the worst case for both serializers.
monitor::ClusterSnapshot make_dense_snapshot(int n) {
  monitor::ClusterSnapshot snap;
  snap.time = 1234.5;
  snap.version = 42;
  snap.livehosts.assign(static_cast<std::size_t>(n), true);
  snap.nodes.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& node = snap.nodes[static_cast<std::size_t>(i)];
    node.spec.id = i;
    node.spec.hostname = "node" + std::to_string(i);
    node.spec.switch_id = i / 24;
    node.spec.core_count = 8;
    node.spec.cpu_freq_ghz = 2.6;
    node.spec.total_mem_gb = 16.0;
    node.valid = true;
    node.sample_time = 1230.0;
    node.cpu_load = 0.25 + 0.001 * i;
    node.cpu_util = 12.5;
    node.mem_used_gb = 3.75;
    node.net_flow_mbps = 88.125;
    node.users = 1 + i % 3;
    node.cpu_load_avg = {0.25, 0.3, 0.35};
    node.cpu_util_avg = {12.5, 13.0, 13.5};
    node.net_flow_avg = {88.0, 90.0, 92.0};
    node.mem_avail_avg = {12.25, 12.0, 11.75};
  }
  snap.net.latency_us = monitor::make_matrix(n, 0.0);
  snap.net.latency_5min_us = monitor::make_matrix(n, 0.0);
  snap.net.bandwidth_mbps = monitor::make_matrix(n, 0.0);
  snap.net.peak_mbps = monitor::make_matrix(n, 0.0);
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u == v) continue;
      const auto uu = static_cast<std::size_t>(u);
      const auto vv = static_cast<std::size_t>(v);
      snap.net.latency_us[uu][vv] = 60.0 + 0.125 * ((u + v) % 37);
      snap.net.latency_5min_us[uu][vv] = 62.0 + 0.125 * ((u + v) % 41);
      snap.net.bandwidth_mbps[uu][vv] = 900.0 - 0.25 * ((u * 7 + v) % 101);
      snap.net.peak_mbps[uu][vv] = 941.0;
    }
  }
  return snap;
}

std::string bench_path(const char* tag, int n) {
  return "nlarm_bench_" + std::string(tag) + "_" + std::to_string(n) + ".tmp";
}

void BM_SnapshotSave(benchmark::State& state,
                     monitor::SnapshotFormat format, const char* tag) {
  const int n = static_cast<int>(state.range(0));
  const monitor::ClusterSnapshot snap = make_dense_snapshot(n);
  const std::string path = bench_path(tag, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor::save_snapshot_file(path, snap, format));
  }
  std::remove(path.c_str());
}
void BM_SnapshotSaveText(benchmark::State& state) {
  BM_SnapshotSave(state, monitor::SnapshotFormat::kText, "save_text");
}
void BM_SnapshotSaveBinary(benchmark::State& state) {
  BM_SnapshotSave(state, monitor::SnapshotFormat::kBinary, "save_bin");
}
BENCHMARK(BM_SnapshotSaveText)
    ->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SnapshotSaveBinary)
    ->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_SnapshotLoad(benchmark::State& state, monitor::SnapshotFormat format,
                     bool use_mmap, const char* tag) {
  const int n = static_cast<int>(state.range(0));
  const std::string path = bench_path(tag, n);
  monitor::save_snapshot_file(path, make_dense_snapshot(n), format);
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor::load_snapshot_file(path, use_mmap));
  }
  std::remove(path.c_str());
}
void BM_SnapshotLoadText(benchmark::State& state) {
  BM_SnapshotLoad(state, monitor::SnapshotFormat::kText, false, "load_text");
}
void BM_SnapshotLoadBinary(benchmark::State& state) {
  BM_SnapshotLoad(state, monitor::SnapshotFormat::kBinary, false, "load_bin");
}
void BM_SnapshotLoadBinaryMmap(benchmark::State& state) {
  BM_SnapshotLoad(state, monitor::SnapshotFormat::kBinary, true, "load_mmap");
}
BENCHMARK(BM_SnapshotLoadText)
    ->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SnapshotLoadBinary)
    ->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SnapshotLoadBinaryMmap)
    ->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

// One O(dirty) delta frame per iteration: ~1% of nodes re-sampled plus one
// probe round of pairs, the shape a live monitor appends every few seconds.
void BM_DeltaLogAppend(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  monitor::MonitorStore store(n);
  const monitor::ClusterSnapshot seed = make_dense_snapshot(n);
  store.restore(seed);
  (void)store.drain_delta();
  const std::string path = bench_path("delta_append", n);
  std::remove(path.c_str());
  monitor::DeltaLogWriter::Options options;
  options.compact_after_deltas = 1 << 30;  // isolate the append cost
  options.compact_bytes_ratio = 1e9;
  monitor::DeltaLogWriter writer(path, options);
  double now = seed.time;
  int next_node = 0;
  // Anchor the log with its full frame outside timing — iterations then
  // measure pure O(dirty) delta appends, not the one-off compaction.
  writer.write_full(store.assemble(now));
  (void)store.drain_delta();
  for (auto _ : state) {
    now += 3.0;
    const int dirty_nodes = n / 100 + 1;
    for (int i = 0; i < dirty_nodes; ++i) {
      monitor::NodeSnapshot record =
          seed.nodes[static_cast<std::size_t>(next_node)];
      record.cpu_load += 0.01;
      store.write_node_record(now, record);
      next_node = (next_node + 1) % n;
    }
    for (int u = 0; u + 1 < n; u += 2) {
      store.write_latency(now, u, u + 1, 61.0, 62.5);
      store.write_latency(now, u + 1, u, 61.0, 62.5);
    }
    const monitor::ClusterSnapshot snap = store.assemble(now);
    const monitor::SnapshotDelta delta = store.drain_delta();
    benchmark::DoNotOptimize(writer.append(snap, delta));
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_DeltaLogAppend)
    ->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

// Full replay of a log holding one full frame plus 32 delta frames — the
// cold-start cost of a reader attaching to an existing log.
void BM_DeltaLogReplay(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  monitor::MonitorStore store(n);
  store.restore(make_dense_snapshot(n));
  (void)store.drain_delta();
  const std::string path = bench_path("delta_replay", n);
  std::remove(path.c_str());
  monitor::DeltaLogWriter::Options options;
  options.compact_after_deltas = 1 << 30;
  options.compact_bytes_ratio = 1e9;
  monitor::DeltaLogWriter writer(path, options);
  double now = 1234.5;
  for (int frame = 0; frame < 33; ++frame) {
    now += 3.0;
    monitor::NodeSnapshot record = store.node_record(frame % n);
    record.cpu_load += 0.01;
    store.write_node_record(now, record);
    store.write_latency(now, frame % n, (frame + 1) % n, 61.0, 62.5);
    writer.append(store.assemble(now), store.drain_delta());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor::replay_delta_log(path));
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_DeltaLogReplay)
    ->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

// Steady-state follower tail: the leader appends one O(dirty) delta frame
// and the attached reader polls it into its running state — the per-epoch
// cost of a replicated FollowerBroker once it has caught up.
void BM_DeltaLogTail(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  monitor::MonitorStore store(n);
  const monitor::ClusterSnapshot seed = make_dense_snapshot(n);
  store.restore(seed);
  (void)store.drain_delta();
  const std::string path = bench_path("delta_tail", n);
  std::remove(path.c_str());
  monitor::DeltaLogWriter::Options options;
  options.compact_after_deltas = 1 << 30;  // isolate the tail cost
  options.compact_bytes_ratio = 1e9;
  monitor::DeltaLogWriter writer(path, options);
  double now = seed.time;
  writer.write_full(store.assemble(now));
  (void)store.drain_delta();
  monitor::DeltaLogReader reader(path);
  reader.poll();  // consume the anchor frame outside timing
  (void)reader.drain_delta();
  int next_node = 0;
  for (auto _ : state) {
    now += 3.0;
    const int dirty_nodes = n / 100 + 1;
    for (int i = 0; i < dirty_nodes; ++i) {
      monitor::NodeSnapshot record =
          seed.nodes[static_cast<std::size_t>(next_node)];
      record.cpu_load += 0.01;
      store.write_node_record(now, record);
      next_node = (next_node + 1) % n;
    }
    for (int u = 0; u + 1 < n; u += 2) {
      store.write_latency(now, u, u + 1, 61.0, 62.5);
      store.write_latency(now, u + 1, u, 61.0, 62.5);
    }
    writer.append(store.assemble(now), store.drain_delta());
    benchmark::DoNotOptimize(reader.poll());
    benchmark::DoNotOptimize(reader.drain_delta());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_DeltaLogTail)
    ->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

// One sparse monitoring round: n/2 disjoint probes folded into the
// per-link estimator plus a full-mesh reconstruction pass — the work the
// sparse LatencyD does per period instead of BM_FullProbeSweep's n-1
// rounds of real probes.
void BM_SparseRoundReconstruct(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const cluster::Topology topology = cluster::make_star_topology(
      std::vector<int>(static_cast<std::size_t>(n) / 32, 32), 1000.0, 400.0);
  monitor::SparseNetworkEstimator estimator(topology);
  const auto rounds = monitor::tournament_rounds(n);
  std::size_t cursor = 0;
  for (auto _ : state) {
    for (const auto& [u, v] : rounds[cursor % rounds.size()]) {
      estimator.observe_latency(u, v, 100.0 + (u + v) % 13);
    }
    ++cursor;
    double sum = 0.0;
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (estimator.latency_ready(u, v)) {
          sum += estimator.estimate_latency_us(u, v);
        }
      }
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_SparseRoundReconstruct)->Arg(64)->Arg(256);

}  // namespace

#include "bench_main.h"
NLARM_BENCHMARK_MAIN()
