// Admission front-end microbenchmarks (google-benchmark).
//
// The tentpole claim: the sharded serve path (core/serve_shard.h) sustains
// >= 5x the decisions/sec of the mutex-fronted classic path at 8 producer
// threads. Four front ends over one V=256 snapshot, same request:
//
//   BM_MutexFrontedServe  classic decide(snapshot, request): the allocator
//                         and aggregates memo serialize on decide_mutex_.
//   BM_EpochDirectServe   decide(pin, request): lock-free epoch path, but
//                         every caller pays a full Algorithm-1/2 pass.
//   BM_ShardServeNoCache  sharded rings + per-drain epoch pinning, every
//                         request fresh-scored (isolates the pipeline cost).
//   BM_ShardServeWarm     sharded + decision cache: steady-state replay of
//                         the scoring pass (the million-QPS configuration).
//
// The committed BENCH_serve.json carries the full-length run; CI re-runs a
// short version and enforces the warm/mutex ratio (see ci.yml).
//
// BM_ScoreAdditionRow* isolate the SIMD inner loop itself (addition costs
// A_v(u) = alpha*CL(u) + beta*NL(v,u) over one contiguous NL row).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/broker.h"
#include "core/prepared.h"
#include "core/serve_shard.h"
#include "monitor/snapshot.h"
#include "sim/rng.h"

#include "bench_main.h"

using namespace nlarm;

namespace {

constexpr int kNodes = 256;
constexpr int kProducerThreads = 8;

monitor::ClusterSnapshot synthetic_snapshot(int n, std::uint64_t seed) {
  sim::Rng rng(seed);
  monitor::ClusterSnapshot snap;
  snap.version = (seed << 16) | static_cast<std::uint64_t>(n);
  snap.livehosts.assign(static_cast<std::size_t>(n), true);
  snap.nodes.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& node = snap.nodes[static_cast<std::size_t>(i)];
    node.spec.id = i;
    node.spec.hostname = cluster::default_hostname(i);
    node.spec.core_count = rng.chance(0.5) ? 8 : 12;
    node.spec.cpu_freq_ghz = node.spec.core_count == 8 ? 2.8 : 4.6;
    node.spec.total_mem_gb = 16.0;
    node.valid = true;
    node.sample_time = 0.0;
    const double load = rng.uniform(0.0, 2.0);
    node.cpu_load = load;
    node.cpu_load_avg = {load, load, load};
    const double util = rng.uniform(0.0, 1.0);
    node.cpu_util = util;
    node.cpu_util_avg = {util, util, util};
    const double flow = rng.uniform(0.0, 500.0);
    node.net_flow_mbps = flow;
    node.net_flow_avg = {flow, flow, flow};
    node.mem_used_gb = rng.uniform(1.0, 12.0);
    const double avail = 16.0 - node.mem_used_gb;
    node.mem_avail_avg = {avail, avail, avail};
    node.users = static_cast<int>(rng.uniform_int(0, 5));
  }
  snap.net.latency_us = monitor::make_matrix(n, 0.0);
  snap.net.latency_5min_us = monitor::make_matrix(n, 0.0);
  snap.net.bandwidth_mbps = monitor::make_matrix(n, 0.0);
  snap.net.peak_mbps = monitor::make_matrix(n, 0.0);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const double lat = rng.uniform(50.0, 600.0);
      const double bw = rng.uniform(100.0, 1000.0);
      const auto uu = static_cast<std::size_t>(u);
      const auto vv = static_cast<std::size_t>(v);
      snap.net.latency_us[uu][vv] = snap.net.latency_us[vv][uu] = lat;
      snap.net.latency_5min_us[uu][vv] = snap.net.latency_5min_us[vv][uu] =
          lat;
      snap.net.bandwidth_mbps[uu][vv] = snap.net.bandwidth_mbps[vv][uu] = bw;
      snap.net.peak_mbps[uu][vv] = snap.net.peak_mbps[vv][uu] = 1000.0;
    }
  }
  return snap;
}

core::AllocationRequest standard_request() {
  core::AllocationRequest request;
  request.nprocs = 32;
  request.ppn = 4;
  request.job = core::JobWeights{0.3, 0.7};
  return request;
}

core::BrokerPolicy permissive_policy() {
  // The synthetic loads would trip the wait gate; these benches measure the
  // serving machinery, so every decision should allocate.
  core::BrokerPolicy policy;
  policy.max_load_per_core = 1e9;
  policy.allow_oversubscription = true;
  return policy;
}

/// One broker + published epoch shared by all producer threads of a bench.
/// Function-local statics construct it exactly once (thread-safe init).
struct ServeWorld {
  monitor::ClusterSnapshot snapshot = synthetic_snapshot(kNodes, 7);
  core::AllocationRequest request = standard_request();
  core::NetworkLoadAwareAllocator allocator;
  core::ResourceBroker broker{allocator, permissive_policy()};

  ServeWorld() {
    broker.refresh_epoch(
        std::make_shared<const monitor::ClusterSnapshot>(snapshot),
        core::RequestProfile::of(request));
  }
};

struct PlaneWorld : ServeWorld {
  core::ServePlane plane;

  explicit PlaneWorld(bool cache)
      : plane(broker, [cache] {
          core::ServeOptions options;
          options.shards = 4;
          options.decision_cache = cache;
          options.debit_capacity = false;  // advisory closed-loop hammer
          return options;
        }()) {}
};

void BM_MutexFrontedServe(benchmark::State& state) {
  static ServeWorld world;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.broker.decide(world.snapshot,
                                                 world.request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutexFrontedServe)->Threads(kProducerThreads)->UseRealTime();

void BM_EpochDirectServe(benchmark::State& state) {
  static ServeWorld world;
  core::EpochPin pin = world.broker.pin_epoch();
  for (auto _ : state) {
    world.broker.refresh_pin(pin);
    benchmark::DoNotOptimize(world.broker.decide(pin, world.request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EpochDirectServe)->Threads(kProducerThreads)->UseRealTime();

void BM_ShardServeNoCache(benchmark::State& state) {
  static PlaneWorld world(/*cache=*/false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.plane.decide(world.request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardServeNoCache)->Threads(kProducerThreads)->UseRealTime();

void BM_ShardServeWarm(benchmark::State& state) {
  static PlaneWorld world(/*cache=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.plane.decide(world.request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardServeWarm)->Threads(kProducerThreads)->UseRealTime();

// --- SIMD inner loop ---

void score_row_bench(benchmark::State& state, bool scalar) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(11);
  std::vector<double> cl(n);
  std::vector<double> row(n);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    cl[i] = rng.uniform(0.0, 1.0);
    row[i] = rng.uniform(0.0, 1.0);
  }
  for (auto _ : state) {
    if (scalar) {
      core::simd::score_addition_row_scalar(0.3, cl, row.data(), 0.7, out);
    } else {
      core::simd::score_addition_row(0.3, cl, row.data(), 0.7, out);
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
  state.SetLabel(scalar ? "scalar" : core::simd::active_kernel_name());
}

void BM_ScoreAdditionRowScalar(benchmark::State& state) {
  score_row_bench(state, /*scalar=*/true);
}
BENCHMARK(BM_ScoreAdditionRowScalar)->Arg(256)->Arg(4096);

void BM_ScoreAdditionRowDispatched(benchmark::State& state) {
  score_row_bench(state, /*scalar=*/false);
}
BENCHMARK(BM_ScoreAdditionRowDispatched)->Arg(256)->Arg(4096);

}  // namespace

NLARM_BENCHMARK_MAIN()
