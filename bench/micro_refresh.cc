// Epoch-refresh microbenchmarks (google-benchmark).
//
// The tentpole claim: the parallel refresh plane (DESIGN.md §17) takes
// PreparedBuilder full rebuilds, tiled rebuilds, and 1%-dirty delta applies
// from one core to all of them — with published epochs byte-identical to
// the serial path (the equivalence suite proves the bits; this file prices
// the wall time). Every case runs at 1 and 8 refresh threads:
//
//   BM_FullRebuild/V/T     flat rebuild() + build(): the O(V²) ExactSum
//                          pass over every directed pair plus the dense NL
//                          materialization, both pool fan-outs.
//   BM_TiledFullRebuild/V/T  tiled-state rebuild (block_size 64, dense NL
//                          suppressed above the limit): per-tile partials
//                          folded in canonical tile order.
//   BM_DeltaApply1pct/V/T  one epoch refresh from a 1%-dirty delta:
//                          sharded O(dirty) apply + NL rematerialization.
//   BM_LogIngest/ahead     DeltaLogReader replay of a 64-delta log with
//                          decode-ahead off/on (CRC+decode of frame k+1
//                          overlaps the apply of frame k).
//
// The committed BENCH_refresh.json carries V=16384; CI re-runs the V=4096
// cases and enforces the 8-thread/1-thread full-rebuild ratio (see ci.yml).
// Single-core runners cannot show a speedup — the gate runs on multi-core
// CI machines; EXPERIMENTS.md records the provenance of committed numbers.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/broker.h"
#include "core/prepared.h"
#include "monitor/delta_log.h"
#include "monitor/snapshot.h"
#include "monitor/store.h"
#include "util/thread_pool.h"

#include "bench_main.h"

using namespace nlarm;

namespace {

core::AllocationRequest standard_request() {
  core::AllocationRequest request;
  request.nprocs = 32;
  request.ppn = 4;
  request.job = core::JobWeights{0.3, 0.7};
  return request;
}

// Formula-filled snapshot: identical shape to the serve-bench generator but
// O(V²) without per-pair RNG, so V=16384 (268M directed pairs, ~8.6 GB of
// matrices) sets up in seconds.
std::shared_ptr<monitor::ClusterSnapshot> synthetic_snapshot(int n) {
  auto snap = std::make_shared<monitor::ClusterSnapshot>();
  snap->version = 1;
  snap->time = 1.0;
  snap->livehosts.assign(static_cast<std::size_t>(n), true);
  snap->nodes.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& node = snap->nodes[static_cast<std::size_t>(i)];
    node.spec.id = i;
    node.spec.hostname = cluster::default_hostname(i);
    node.spec.core_count = (i % 2 == 0) ? 8 : 12;
    node.spec.cpu_freq_ghz = node.spec.core_count == 8 ? 2.8 : 4.6;
    node.spec.total_mem_gb = 16.0;
    node.valid = true;
    node.sample_time = 1.0;
    const double load = 0.1 + 1.8 * ((i * 37) % 100) / 100.0;
    node.cpu_load = load;
    node.cpu_load_avg = {load, load, load};
    node.cpu_util = 0.5;
    node.cpu_util_avg = {0.5, 0.5, 0.5};
    node.net_flow_mbps = 10.0;
    node.net_flow_avg = {10.0, 10.0, 10.0};
    node.mem_used_gb = 4.0;
    node.mem_avail_avg = {12.0, 12.0, 12.0};
    node.users = i % 3;
  }
  snap->net.latency_us = monitor::make_matrix(n, 0.0);
  snap->net.latency_5min_us = monitor::make_matrix(n, 0.0);
  snap->net.bandwidth_mbps = monitor::make_matrix(n, 0.0);
  snap->net.peak_mbps = monitor::make_matrix(n, 0.0);
  for (int u = 0; u < n; ++u) {
    const auto uu = static_cast<std::size_t>(u);
    for (int v = 0; v < n; ++v) {
      if (u == v) continue;
      const auto vv = static_cast<std::size_t>(v);
      const int lo = u < v ? u : v;
      const int hi = u < v ? v : u;
      const double lat = 50.0 + ((lo * 131 + hi * 29) % 550);
      const double bw = 100.0 + ((lo * 17 + hi * 53) % 900);
      snap->net.latency_us[uu][vv] = lat;
      snap->net.latency_5min_us[uu][vv] = lat;
      snap->net.bandwidth_mbps[uu][vv] = bw;
      snap->net.peak_mbps[uu][vv] = 1000.0;
    }
  }
  return snap;
}

// Snapshots are expensive to synthesize at V=16384; share them across the
// thread-count variants of each bench (benches run sequentially).
std::shared_ptr<monitor::ClusterSnapshot> cached_snapshot(int n) {
  static std::map<int, std::shared_ptr<monitor::ClusterSnapshot>> cache;
  auto& slot = cache[n];
  if (!slot) slot = synthetic_snapshot(n);
  return slot;
}

void BM_FullRebuild(benchmark::State& state) {
  const int v = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  auto snap = cached_snapshot(v);
  util::ThreadPool pool(static_cast<std::size_t>(threads - 1));
  core::PreparedBuilder builder(core::RequestProfile::of(standard_request()));
  builder.set_thread_pool(threads > 1 ? &pool : nullptr);
  for (auto _ : state) {
    builder.rebuild(snap);
    benchmark::DoNotOptimize(builder.build());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(v) * v);
}
BENCHMARK(BM_FullRebuild)
    ->ArgsProduct({{4096, 16384}, {1, 8}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_TiledFullRebuild(benchmark::State& state) {
  const int v = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  auto snap = cached_snapshot(v);
  util::ThreadPool pool(static_cast<std::size_t>(threads - 1));
  core::TilingOptions tiling;
  tiling.block_size = 64;
  core::PreparedBuilder builder(core::RequestProfile::of(standard_request()),
                                tiling);
  builder.set_thread_pool(threads > 1 ? &pool : nullptr);
  for (auto _ : state) {
    builder.rebuild(snap);
    benchmark::DoNotOptimize(builder.build());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(v) * v);
}
BENCHMARK(BM_TiledFullRebuild)
    ->ArgsProduct({{4096, 16384}, {1, 8}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_DeltaApply1pct(benchmark::State& state) {
  const int v = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  auto snap = cached_snapshot(v);
  util::ThreadPool pool(static_cast<std::size_t>(threads - 1));
  core::PreparedBuilder builder(core::RequestProfile::of(standard_request()));
  builder.set_thread_pool(threads > 1 ? &pool : nullptr);
  builder.rebuild(snap);
  (void)builder.build();

  const int dirty = v / 100;
  std::uint64_t version = snap->version;
  int phase = 0;
  for (auto _ : state) {
    // 1% of nodes re-sampled and 1% of pairs re-measured, spread across the
    // cluster; mutate in place and advance the version chain.
    monitor::SnapshotDelta delta;
    delta.base_version = version;
    delta.version = ++version;
    const int stride = v / dirty;
    for (int i = 0; i < dirty; ++i) {
      const int id = (i * stride + phase) % v;
      auto& node = snap->nodes[static_cast<std::size_t>(id)];
      node.cpu_load = 0.1 + 1.8 * ((id + phase) % 100) / 100.0;
      node.cpu_load_avg = {node.cpu_load, node.cpu_load, node.cpu_load};
      delta.dirty_nodes.push_back(id);
    }
    std::sort(delta.dirty_nodes.begin(), delta.dirty_nodes.end());
    for (int i = 0; i < dirty; ++i) {
      const int u = (i * stride + phase) % (v - 1);
      const int w = u + 1 + (phase % (v - u - 1));
      const auto uu = static_cast<std::size_t>(u);
      const auto ww = static_cast<std::size_t>(w);
      const double lat = 50.0 + ((u + w + phase) % 550);
      snap->net.latency_us[uu][ww] = snap->net.latency_us[ww][uu] = lat;
      snap->net.latency_5min_us[uu][ww] =
          snap->net.latency_5min_us[ww][uu] = lat;
      delta.dirty_pairs.emplace_back(u, w);
    }
    std::sort(delta.dirty_pairs.begin(), delta.dirty_pairs.end());
    delta.dirty_pairs.erase(
        std::unique(delta.dirty_pairs.begin(), delta.dirty_pairs.end()),
        delta.dirty_pairs.end());
    snap->version = version;
    ++phase;

    if (!builder.update(snap, delta)) {
      state.SkipWithError("delta apply fell back to a full rebuild");
      break;
    }
    benchmark::DoNotOptimize(builder.build());
  }
  state.SetItemsProcessed(state.iterations() * dirty);
}
BENCHMARK(BM_DeltaApply1pct)
    ->ArgsProduct({{4096, 16384}, {1, 8}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// A 1-full + 64-delta log replayed by a fresh reader per iteration, with
// the decode-ahead worker off (0) and on (1).
void BM_LogIngest(benchmark::State& state) {
  constexpr int kNodes = 512;
  constexpr int kFrames = 64;
  static const std::string path = [] {
    std::string p = "/tmp/micro_refresh_ingest.nlarmd";
    std::remove(p.c_str());
    monitor::MonitorStore store(kNodes);
    double now = 1.0;
    store.write_livehosts(now, std::vector<bool>(kNodes, true));
    for (int i = 0; i < kNodes; ++i) {
      monitor::NodeSnapshot record;
      record.spec.id = i;
      record.spec.hostname = cluster::default_hostname(i);
      record.spec.core_count = 8;
      record.spec.cpu_freq_ghz = 3.0;
      record.spec.total_mem_gb = 16.0;
      record.cpu_load = 0.5;
      store.write_node_record(now, record);
    }
    for (int u = 0; u < kNodes; ++u) {
      for (int w = u + 1; w < kNodes; ++w) {
        store.write_latency(now, u, w, 100.0 + u + w, 100.0 + u + w);
        store.write_bandwidth(now, u, w, 900.0, 1000.0);
      }
    }
    monitor::DeltaLogWriter::Options options;
    options.compact_after_deltas = 1 << 20;
    options.compact_bytes_ratio = 1e9;
    monitor::DeltaLogWriter writer(p, options);
    writer.append(store.assemble(now), store.drain_delta());
    for (int f = 0; f < kFrames; ++f) {
      now += 1.0;
      for (int i = 0; i < kNodes / 20; ++i) {
        monitor::NodeSnapshot record;
        const int id = (f * 31 + i * 20) % kNodes;
        record.spec.id = id;
        record.spec.hostname = cluster::default_hostname(id);
        record.spec.core_count = 8;
        record.spec.cpu_freq_ghz = 3.0;
        record.spec.total_mem_gb = 16.0;
        record.cpu_load = 0.1 + (f + i) % 10 * 0.2;
        store.write_node_record(now, record);
        const int u = id % (kNodes - 1);
        store.write_latency(now, u, u + 1, 100.0 + f, 100.0 + f);
      }
      writer.append(store.assemble(now), store.drain_delta());
    }
    return p;
  }();

  const bool ahead = state.range(0) != 0;
  for (auto _ : state) {
    monitor::DeltaLogReader reader(path);
    reader.set_decode_ahead(ahead);
    int frames = 0;
    while (int polled = reader.poll()) frames += polled;
    if (frames != kFrames + 1) {
      state.SkipWithError("short read of the ingest log");
      break;
    }
    benchmark::DoNotOptimize(reader.snapshot());
  }
  state.SetItemsProcessed(state.iterations() * (kFrames + 1));
  state.SetLabel(ahead ? "decode-ahead" : "serial");
}
BENCHMARK(BM_LogIngest)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

NLARM_BENCHMARK_MAIN()
