// Ablation: NWS-style forecasting (§2 cites the Network Weather Service) —
// does allocating on *forecasted* node state beat allocating on the latest
// (possibly stale) samples?
//
// Node load is spiky: a node that just entered or left a spike will be
// misjudged by the raw snapshot. The adaptive forecaster smooths noise and
// tracks trends, so its allocations should be at least as good on average.
#include <iostream>

#include "apps/synthetic.h"
#include "exp/experiment.h"
#include "exp/report.h"
#include "monitor/forecast.h"
#include "util/args.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

using namespace nlarm;

int main(int argc, char** argv) {
  util::ArgParser parser(
      "Ablation: allocation on forecasted vs instantaneous monitored state.",
      {{"trials", "independent testbeds (default 8)"},
       {"reps", "allocations per testbed (default 3)"},
       {"seed", "RNG seed (default 42)"}});
  if (!parser.parse(argc, argv)) return 0;
  const int trials = static_cast<int>(parser.get_long("trials", 8));
  const int reps = static_cast<int>(parser.get_long("reps", 3));
  const auto seed = static_cast<std::uint64_t>(parser.get_long("seed", 42));

  std::vector<double> raw_times;
  std::vector<double> forecast_times;
  std::vector<std::string> best_predictors;

  for (int trial = 0; trial < trials; ++trial) {
    exp::Testbed::Options options;
    options.seed = seed + static_cast<std::uint64_t>(trial) * 17;
    options.scenario = workload::ScenarioKind::kHotspot;
    auto testbed = exp::Testbed::make(options);

    monitor::ForecastingStore forecasting(testbed->monitor().store());
    // Feed the forecasters for a few minutes of samples.
    for (int i = 0; i < 60; ++i) {
      testbed->sim().run_until(testbed->sim().now() + 10.0);
      forecasting.feed(testbed->sim().now());
    }

    core::AllocationRequest request;
    request.nprocs = 24;
    request.ppn = 4;
    request.job = core::JobWeights{0.3, 0.7};
    const auto app = apps::make_comm_bound_profile(24, 30);

    for (int rep = 0; rep < reps; ++rep) {
      // Let conditions drift and keep the forecasters fed.
      for (int i = 0; i < 6; ++i) {
        testbed->sim().run_until(testbed->sim().now() + 10.0);
        forecasting.feed(testbed->sim().now());
      }
      const double now = testbed->sim().now();
      core::NetworkLoadAwareAllocator raw_alloc;
      core::NetworkLoadAwareAllocator fc_alloc;
      const core::Allocation raw =
          raw_alloc.allocate(testbed->monitor().snapshot(), request);
      const core::Allocation forecast =
          fc_alloc.allocate(forecasting.assemble_forecast(now), request);

      // Price both against frozen ground truth.
      raw_times.push_back(
          testbed->runtime()
              .estimate(app, mpisim::Placement::from_allocation(raw))
              .total_s);
      forecast_times.push_back(
          testbed->runtime()
              .estimate(app, mpisim::Placement::from_allocation(forecast))
              .total_s);
    }
    best_predictors.push_back(
        forecasting.load_forecaster(0).best_predictor());
  }

  const double mean_raw = util::mean(raw_times);
  const double mean_forecast = util::mean(forecast_times);

  std::cout << "=== Ablation: forecasted vs instantaneous monitoring data "
               "===\n\n";
  util::TextTable table({"allocation input", "mean exec time (s)"});
  table.add_row({"latest monitored samples", util::format("%.3f", mean_raw)});
  table.add_row(
      {"NWS-style adaptive forecast", util::format("%.3f", mean_forecast)});
  table.print(std::cout);
  std::cout << "\nwinning predictor for node 0's load per trial: "
            << util::join(best_predictors, ", ") << "\n\n";

  std::vector<exp::ShapeCheck> checks;
  checks.push_back(exp::check(
      "forecast-driven allocation is not worse than raw (within 5%)",
      mean_forecast <= mean_raw * 1.05,
      util::format("%.3f vs %.3f s", mean_forecast, mean_raw)));
  // Adaptation check: the bank must choose *by signal type* — a smoother
  // for white noise, last-value (or AR) for a random walk. Picking "last"
  // for spiky node load is the correct NWS behaviour, not a failure.
  monitor::AdaptiveForecaster noise_fc;
  monitor::AdaptiveForecaster walk_fc;
  sim::Rng check_rng(seed ^ 0xF0F0);
  double walk = 0.0;
  for (int t = 0; t < 400; ++t) {
    noise_fc.observe(t, 5.0 + check_rng.normal(0.0, 1.0));
    walk += check_rng.normal(0.0, 1.0);
    walk_fc.observe(t, walk);
  }
  checks.push_back(exp::check(
      "forecaster adapts per signal: smoother wins on white noise, "
      "last/AR on a random walk",
      noise_fc.best_predictor() != "last" &&
          walk_fc.best_predictor() != "sliding_mean",
      util::format("noise → %s, walk → %s",
                   noise_fc.best_predictor().c_str(),
                   walk_fc.best_predictor().c_str())));
  exp::print_shape_checks(std::cout, checks);
  return 0;
}
