// Ablation: is generating |V| candidate sub-graphs (Algorithm 1 from every
// start node) worth it?
//
// Compares three strategies on identical snapshots:
//  * paper     — |V| candidates + Algorithm 2 selection;
//  * single    — one candidate started at the globally least-loaded node;
//  * brute     — exhaustive best subset of the required size under the same
//                T_Gv objective (small clusters only; the paper notes the
//                brute force "would not scale", §3.3.1).
#include <algorithm>
#include <iostream>
#include <numeric>

#include "core/allocator.h"
#include "core/baselines.h"
#include "core/compute_load.h"
#include "core/network_load.h"
#include "exp/experiment.h"
#include "exp/report.h"
#include "util/args.h"
#include "util/strings.h"
#include "util/table.h"

using namespace nlarm;

namespace {

struct GroupScore {
  double compute = 0.0;
  double network = 0.0;
};

GroupScore score_group(const std::vector<std::size_t>& members,
                       const std::vector<double>& cl,
                       const util::FlatMatrix& nl) {
  GroupScore s;
  for (std::size_t m : members) s.compute += cl[m];
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      s.network += nl[members[i]][members[j]];
    }
  }
  return s;
}

/// Raw weighted objective (no cross-candidate normalization) used to compare
/// strategies on equal footing.
double raw_objective(const GroupScore& s, const core::JobWeights& job) {
  return job.alpha * s.compute + job.beta * s.network;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser(
      "Ablation: |V|-start candidate generation vs single-start greedy vs "
      "exhaustive search.",
      {{"trials", "snapshots to evaluate (default 20)"},
       {"nodes", "cluster size for the comparison (default 12)"},
       {"group", "nodes per allocation (default 4)"},
       {"seed", "RNG seed (default 42)"}});
  if (!parser.parse(argc, argv)) return 0;
  const int trials = static_cast<int>(parser.get_long("trials", 20));
  const int node_count = static_cast<int>(parser.get_long("nodes", 12));
  const int group = static_cast<int>(parser.get_long("group", 4));
  const auto seed = static_cast<std::uint64_t>(parser.get_long("seed", 42));

  const core::JobWeights job{0.3, 0.7};
  const int nprocs = group * 4;

  int paper_matches_brute = 0;
  int single_matches_brute = 0;
  double paper_excess = 0.0;
  double single_excess = 0.0;

  for (int trial = 0; trial < trials; ++trial) {
    exp::Testbed::Options options;
    options.seed = seed + static_cast<std::uint64_t>(trial);
    options.scenario = workload::ScenarioKind::kHotspot;
    options.cluster.fast_nodes = node_count * 2 / 3;
    options.cluster.slow_nodes = node_count - options.cluster.fast_nodes;
    options.cluster.switches = 3;
    auto testbed = exp::Testbed::make(options);
    const monitor::ClusterSnapshot snap = testbed->snapshot();
    const std::vector<cluster::NodeId> usable = snap.usable_nodes();
    const std::size_t n = usable.size();

    const auto cl =
        core::compute_loads(snap, usable, core::ComputeLoadWeights{});
    const auto nl =
        core::network_loads(snap, usable, core::NetworkLoadWeights{});
    const std::vector<int> pc(n, 4);

    // Paper: all |V| candidates + selection.
    auto candidates = core::generate_all_candidates(cl, nl, pc, nprocs, job);
    const auto selection =
        core::select_best_candidate(std::move(candidates), cl, nl, job);
    const auto& paper_members =
        selection.scored[selection.best_index].candidate.members;
    const double paper_cost =
        raw_objective(score_group(paper_members, cl, nl), job);

    // Single-start: greedy from the minimum-CL node only.
    const auto min_cl = static_cast<std::size_t>(
        std::min_element(cl.begin(), cl.end()) - cl.begin());
    const auto single =
        core::generate_candidate(min_cl, cl, nl, pc, nprocs, job);
    const double single_cost =
        raw_objective(score_group(single.members, cl, nl), job);

    // Brute force: every subset of size `group` containing any node.
    std::vector<std::size_t> indices(n);
    std::iota(indices.begin(), indices.end(), 0);
    std::vector<bool> mask(n, false);
    std::fill(mask.begin(), mask.begin() + group, true);
    std::sort(mask.begin(), mask.end());  // lexicographically first
    double brute_cost = 0.0;
    bool first = true;
    do {
      std::vector<std::size_t> members;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask[i]) members.push_back(i);
      }
      const double cost = raw_objective(score_group(members, cl, nl), job);
      if (first || cost < brute_cost) {
        brute_cost = cost;
        first = false;
      }
    } while (std::next_permutation(mask.begin(), mask.end()));

    if (paper_cost <= brute_cost * 1.0001) ++paper_matches_brute;
    if (single_cost <= brute_cost * 1.0001) ++single_matches_brute;
    paper_excess += (paper_cost - brute_cost) / std::max(brute_cost, 1e-12);
    single_excess += (single_cost - brute_cost) / std::max(brute_cost, 1e-12);
  }

  std::cout << "=== Ablation: candidate-generation strategies vs exhaustive "
               "search ===\n";
  std::cout << "(" << trials << " monitored snapshots, " << node_count
            << "-node cluster, groups of " << group << " nodes)\n\n";
  util::TextTable table(
      {"strategy", "optimal picks", "mean excess cost vs optimal"});
  table.add_row({"paper (|V| candidates)",
                 util::format("%d/%d", paper_matches_brute, trials),
                 util::format("%.2f%%", paper_excess / trials * 100)});
  table.add_row({"single-start greedy",
                 util::format("%d/%d", single_matches_brute, trials),
                 util::format("%.2f%%", single_excess / trials * 100)});
  table.add_row({"brute force", util::format("%d/%d", trials, trials),
                 "0.00% (reference)"});
  table.print(std::cout);
  std::cout << "\n";

  std::vector<exp::ShapeCheck> checks;
  // Algorithm 2 selects by the cross-candidate-normalized T, not by the raw
  // objective we audit with, so the two greedy variants can land within a
  // percent of each other either way; the claim is "not meaningfully worse".
  checks.push_back(exp::check(
      "|V|-start candidates within 1% of single-start on average",
      paper_excess <= single_excess + 0.01 * trials,
      util::format("excess %.2f%% vs %.2f%%", paper_excess / trials * 100,
                   single_excess / trials * 100)));
  checks.push_back(exp::check(
      "greedy is near-optimal (mean excess < 10%)",
      paper_excess / trials < 0.10,
      util::format("%.2f%%", paper_excess / trials * 100)));
  exp::print_shape_checks(std::cout, checks);
  return 0;
}
