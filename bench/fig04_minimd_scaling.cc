// Figure 4: miniMD strong scaling under the four allocation policies.
//
// Grid: processes ∈ {8,16,32,64} (4 per node), problem size s ∈ {8..48},
// each configuration run for all policies in sequence and repeated. Prints
// one mean-execution-time table per process count plus the paper's
// qualitative findings as shape checks.
#include <iostream>

#include "apps/minimd.h"
#include "sweep_common.h"

using namespace nlarm;

int main(int argc, char** argv) {
  auto parser = bench::make_sweep_parser(
      "Figure 4 reproduction: miniMD execution times under random, "
      "sequential, load-aware and network-and-load-aware allocation.");
  if (!parser.parse(argc, argv)) return 0;
  const bool full = parser.get_bool("full");

  bench::SweepOptions options;
  options.proc_counts = {8, 16, 32, 64};
  options.problem_sizes =
      full ? std::vector<int>{8, 16, 24, 32, 40, 48}
           : std::vector<int>{8, 24, 48};
  options.repetitions =
      static_cast<int>(parser.get_long("reps", full ? 5 : 3));
  options.seed = static_cast<std::uint64_t>(parser.get_long("seed", 42));
  options.scenario = workload::parse_scenario_kind(
      parser.get_string("scenario", "shared_lab"));
  options.job = core::JobWeights::minimd_defaults();  // α=0.3, β=0.7

  const auto rows = bench::run_sweep(
      options, [](int size, int nranks) {
        apps::MiniMdParams params;
        params.size = size;
        params.nranks = nranks;
        return apps::make_minimd_profile(params);
      });

  std::cout << "=== Figure 4: miniMD strong scaling (" << options.repetitions
            << " repetitions, 4 processes/node, scenario "
            << workload::to_string(options.scenario) << ") ===\n\n";
  std::vector<double> sizes(options.problem_sizes.begin(),
                            options.problem_sizes.end());
  for (const auto& row : rows) {
    exp::print_time_table(
        std::cout,
        util::format("#procs = %d  (execution time vs problem size s)",
                     row.nprocs),
        "s", sizes, row.by_size);
  }

  // Shape checks against the paper's qualitative findings (§5.1).
  const auto all = bench::flatten(rows);
  int ours_best = 0;
  int random_worst = 0;
  for (const auto& result : all) {
    const double ours = result.mean_time(exp::Policy::kNetworkLoadAware);
    const double random = result.mean_time(exp::Policy::kRandom);
    const double sequential = result.mean_time(exp::Policy::kSequential);
    const double load_aware = result.mean_time(exp::Policy::kLoadAware);
    if (ours <= random && ours <= sequential && ours <= load_aware) {
      ++ours_best;
    }
    if (random >= sequential && random >= load_aware) ++random_worst;
  }

  // CoV of our policy vs the others (the paper's stability claim).
  auto pooled_cov = [&](exp::Policy policy) {
    std::vector<double> covs;
    for (const auto& result : all) {
      const auto times = result.times(policy);
      covs.push_back(util::coefficient_of_variation(times));
    }
    return util::mean(covs);
  };
  const double cov_ours = pooled_cov(exp::Policy::kNetworkLoadAware);
  const double cov_load = pooled_cov(exp::Policy::kLoadAware);
  const double cov_seq = pooled_cov(exp::Policy::kSequential);

  const exp::GainStats vs_random =
      exp::pooled_gains(all, exp::Policy::kRandom);
  const exp::GainStats vs_load =
      exp::pooled_gains(all, exp::Policy::kLoadAware);

  std::vector<exp::ShapeCheck> checks;
  checks.push_back(exp::check(
      "network-and-load-aware is the best policy in most configurations",
      ours_best * 2 > static_cast<int>(all.size()),
      util::format("best in %d/%zu", ours_best, all.size())));
  checks.push_back(exp::check(
      "random allocation is the worst policy in most configurations",
      random_worst * 2 > static_cast<int>(all.size()),
      util::format("worst in %d/%zu", random_worst, all.size())));
  checks.push_back(exp::check(
      "positive average gain over random (paper: 49.9%)",
      vs_random.average > 0.0,
      util::format("%.1f%%", vs_random.average * 100)));
  checks.push_back(exp::check(
      "positive average gain over load-aware (paper: 32.4%)",
      vs_load.average > 0.0, util::format("%.1f%%", vs_load.average * 100)));
  checks.push_back(exp::check(
      "our runs are more stable than sequential (lower CoV; paper: 0.07 vs "
      "0.27)",
      cov_ours < cov_seq,
      util::format("ours %.3f, load-aware %.3f, sequential %.3f", cov_ours,
                   cov_load, cov_seq)));
  exp::print_shape_checks(std::cout, checks);
  return 0;
}
