// Table 2: "Percentage gain in performance of network and load-aware
// allocation algorithm for miniMD executions" — average / median / maximum
// gain over random, sequential and load-aware allocation, pooled over the
// Figure-4 grid.
#include <iostream>

#include "apps/minimd.h"
#include "sweep_common.h"

using namespace nlarm;

int main(int argc, char** argv) {
  auto parser = bench::make_sweep_parser(
      "Table 2 reproduction: miniMD gains of the network-and-load-aware "
      "policy over the three baselines.");
  if (!parser.parse(argc, argv)) return 0;
  const bool full = parser.get_bool("full");

  bench::SweepOptions options;
  options.proc_counts = full ? std::vector<int>{8, 16, 32, 64}
                             : std::vector<int>{16, 64};
  options.problem_sizes = full ? std::vector<int>{8, 16, 24, 32, 40, 48}
                               : std::vector<int>{8, 24, 48};
  options.repetitions =
      static_cast<int>(parser.get_long("reps", full ? 5 : 3));
  options.seed = static_cast<std::uint64_t>(parser.get_long("seed", 42));
  options.scenario = workload::parse_scenario_kind(
      parser.get_string("scenario", "shared_lab"));
  options.job = core::JobWeights::minimd_defaults();

  const auto rows = bench::run_sweep(
      options, [](int size, int nranks) {
        apps::MiniMdParams params;
        params.size = size;
        params.nranks = nranks;
        return apps::make_minimd_profile(params);
      });
  const auto all = bench::flatten(rows);

  std::vector<exp::GainRow> table;
  {
    exp::GainRow row;
    row.baseline = "Random";
    row.measured = exp::pooled_gains(all, exp::Policy::kRandom);
    row.paper_average = 0.499;
    row.paper_median = 0.507;
    row.paper_max = 0.878;
    table.push_back(row);
  }
  {
    exp::GainRow row;
    row.baseline = "Sequential";
    row.measured = exp::pooled_gains(all, exp::Policy::kSequential);
    row.paper_average = 0.431;
    row.paper_median = 0.421;
    row.paper_max = 0.845;
    table.push_back(row);
  }
  {
    exp::GainRow row;
    row.baseline = "Load-Aware";
    row.measured = exp::pooled_gains(all, exp::Policy::kLoadAware);
    row.paper_average = 0.324;
    row.paper_median = 0.298;
    row.paper_max = 0.877;
    table.push_back(row);
  }

  exp::print_gain_table(
      std::cout,
      "=== Table 2: miniMD percentage gain of network-and-load-aware "
      "allocation ===",
      table);

  std::vector<exp::ShapeCheck> checks;
  for (const auto& row : table) {
    checks.push_back(exp::check(
        util::format("positive average gain over %s", row.baseline.c_str()),
        row.measured.average > 0.0,
        util::format("%.1f%% (paper %.1f%%)", row.measured.average * 100,
                     row.paper_average * 100)));
  }
  checks.push_back(exp::check(
      "maximum gains are large (> 30%) for every baseline",
      table[0].measured.max > 0.3 && table[1].measured.max > 0.3 &&
          table[2].measured.max > 0.3,
      util::format("%.0f%% / %.0f%% / %.0f%%", table[0].measured.max * 100,
                   table[1].measured.max * 100,
                   table[2].measured.max * 100)));
  exp::print_shape_checks(std::cout, checks);
  return 0;
}
