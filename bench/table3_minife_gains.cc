// Table 3: "Percentage gain in performance of network and load-aware
// allocation algorithm for miniFE executions".
#include <iostream>

#include "apps/minife.h"
#include "sweep_common.h"

using namespace nlarm;

int main(int argc, char** argv) {
  auto parser = bench::make_sweep_parser(
      "Table 3 reproduction: miniFE gains of the network-and-load-aware "
      "policy over the three baselines.");
  if (!parser.parse(argc, argv)) return 0;
  const bool full = parser.get_bool("full");

  bench::SweepOptions options;
  options.proc_counts = full ? std::vector<int>{8, 16, 32, 48}
                             : std::vector<int>{16, 48};
  options.problem_sizes = full ? std::vector<int>{48, 96, 144, 256, 384}
                               : std::vector<int>{48, 144, 384};
  options.repetitions =
      static_cast<int>(parser.get_long("reps", full ? 5 : 3));
  options.seed = static_cast<std::uint64_t>(parser.get_long("seed", 43));
  options.scenario = workload::parse_scenario_kind(
      parser.get_string("scenario", "shared_lab"));
  options.job = core::JobWeights::minife_defaults();

  const auto rows = bench::run_sweep(
      options, [](int nx, int nranks) {
        apps::MiniFeParams params;
        params.nx = nx;
        params.nranks = nranks;
        return apps::make_minife_profile(params);
      });
  const auto all = bench::flatten(rows);

  std::vector<exp::GainRow> table;
  {
    exp::GainRow row;
    row.baseline = "Random";
    row.measured = exp::pooled_gains(all, exp::Policy::kRandom);
    row.paper_average = 0.479;
    row.paper_median = 0.504;
    row.paper_max = 0.921;
    table.push_back(row);
  }
  {
    exp::GainRow row;
    row.baseline = "Sequential";
    row.measured = exp::pooled_gains(all, exp::Policy::kSequential);
    row.paper_average = 0.311;
    row.paper_median = 0.280;
    row.paper_max = 0.804;
    table.push_back(row);
  }
  {
    exp::GainRow row;
    row.baseline = "Load-Aware";
    row.measured = exp::pooled_gains(all, exp::Policy::kLoadAware);
    row.paper_average = 0.348;
    row.paper_median = 0.387;
    row.paper_max = 0.910;
    table.push_back(row);
  }

  exp::print_gain_table(
      std::cout,
      "=== Table 3: miniFE percentage gain of network-and-load-aware "
      "allocation ===",
      table);

  std::vector<exp::ShapeCheck> checks;
  for (const auto& row : table) {
    checks.push_back(exp::check(
        util::format("positive average gain over %s", row.baseline.c_str()),
        row.measured.average > 0.0,
        util::format("%.1f%% (paper %.1f%%)", row.measured.average * 100,
                     row.paper_average * 100)));
  }
  exp::print_shape_checks(std::cout, checks);
  return 0;
}
