// Microbenchmarks for the allocation algorithms (google-benchmark).
//
// §3.3.2 claims: candidate generation O(V log V) per start (O(V² log V)
// total), best-candidate selection O(V·(n/ppn)²), and a total runtime of
// ~1–2 ms — "practically nil overhead". These benches verify the wall-clock
// claim at the paper's scale (V = 60) and the scaling trend beyond it.
#include <benchmark/benchmark.h>

#include <numeric>

#include "core/allocator.h"
#include "core/baselines.h"
#include "core/candidate.h"
#include "core/compute_load.h"
#include "core/network_load.h"
#include "monitor/snapshot.h"
#include "sim/rng.h"

using namespace nlarm;

namespace {

monitor::ClusterSnapshot synthetic_snapshot(int n, std::uint64_t seed) {
  sim::Rng rng(seed);
  monitor::ClusterSnapshot snap;
  // Versioned like a MonitorStore-assembled snapshot, so repeated allocate()
  // calls exercise the prepared-input memoization (the broker's steady-state
  // pattern: many requests between monitor updates).
  snap.version = (seed << 16) | static_cast<std::uint64_t>(n);
  snap.livehosts.assign(static_cast<std::size_t>(n), true);
  snap.nodes.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& node = snap.nodes[static_cast<std::size_t>(i)];
    node.spec.id = i;
    node.spec.hostname = cluster::default_hostname(i);
    node.spec.core_count = rng.chance(0.5) ? 8 : 12;
    node.spec.cpu_freq_ghz = node.spec.core_count == 8 ? 2.8 : 4.6;
    node.spec.total_mem_gb = 16.0;
    node.valid = true;
    node.sample_time = 0.0;
    const double load = rng.uniform(0.0, 6.0);
    node.cpu_load = load;
    node.cpu_load_avg = {load, load, load};
    const double util = rng.uniform(0.0, 1.0);
    node.cpu_util = util;
    node.cpu_util_avg = {util, util, util};
    const double flow = rng.uniform(0.0, 500.0);
    node.net_flow_mbps = flow;
    node.net_flow_avg = {flow, flow, flow};
    node.mem_used_gb = rng.uniform(1.0, 12.0);
    const double avail = 16.0 - node.mem_used_gb;
    node.mem_avail_avg = {avail, avail, avail};
    node.users = static_cast<int>(rng.uniform_int(0, 5));
  }
  snap.net.latency_us = monitor::make_matrix(n, 0.0);
  snap.net.latency_5min_us = monitor::make_matrix(n, 0.0);
  snap.net.bandwidth_mbps = monitor::make_matrix(n, 0.0);
  snap.net.peak_mbps = monitor::make_matrix(n, 0.0);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const double lat = rng.uniform(50.0, 600.0);
      const double bw = rng.uniform(100.0, 1000.0);
      const auto uu = static_cast<std::size_t>(u);
      const auto vv = static_cast<std::size_t>(v);
      snap.net.latency_us[uu][vv] = snap.net.latency_us[vv][uu] = lat;
      snap.net.latency_5min_us[uu][vv] = snap.net.latency_5min_us[vv][uu] =
          lat;
      snap.net.bandwidth_mbps[uu][vv] = snap.net.bandwidth_mbps[vv][uu] = bw;
      snap.net.peak_mbps[uu][vv] = snap.net.peak_mbps[vv][uu] = 1000.0;
    }
  }
  return snap;
}

core::AllocationRequest standard_request(int nprocs) {
  core::AllocationRequest request;
  request.nprocs = nprocs;
  request.ppn = 4;
  request.job = core::JobWeights{0.3, 0.7};
  return request;
}

void BM_FullAllocation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto snap = synthetic_snapshot(n, 42);
  const auto request = standard_request(32);
  core::NetworkLoadAwareAllocator allocator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.allocate(snap, request));
  }
  state.SetComplexityN(n);
}
// V=60 is the paper's cluster; the ~1-2 ms claim applies there.
BENCHMARK(BM_FullAllocation)->Arg(16)->Arg(60)->Arg(128)->Arg(256)->Arg(512)
    ->Arg(1024)->Complexity(benchmark::oNSquared);

// Worst case: every request arrives with fresh monitored state (version 0 =
// unversioned, memoization disabled), so the O(V²) CL/NL preparation runs
// on every call.
void BM_FullAllocationColdInputs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto snap = synthetic_snapshot(n, 42);
  snap.version = 0;
  const auto request = standard_request(32);
  core::NetworkLoadAwareAllocator allocator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.allocate(snap, request));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_FullAllocationColdInputs)->Arg(60)->Arg(256)->Arg(512)
    ->Complexity(benchmark::oNSquared);

void BM_CandidateGeneration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto snap = synthetic_snapshot(n, 42);
  std::vector<cluster::NodeId> usable(static_cast<std::size_t>(n));
  std::iota(usable.begin(), usable.end(), 0);
  const auto cl =
      core::compute_loads(snap, usable, core::ComputeLoadWeights{});
  const auto nl =
      core::network_loads(snap, usable, core::NetworkLoadWeights{});
  const std::vector<int> pc(static_cast<std::size_t>(n), 4);
  const core::JobWeights job{0.3, 0.7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::generate_all_candidates(cl, nl, pc, 32, job));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_CandidateGeneration)->Arg(16)->Arg(60)->Arg(128)->Arg(256)
    ->Arg(512)->Arg(1024)->Complexity();

void BM_ComputeLoads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto snap = synthetic_snapshot(n, 42);
  std::vector<cluster::NodeId> usable(static_cast<std::size_t>(n));
  std::iota(usable.begin(), usable.end(), 0);
  const core::ComputeLoadWeights weights;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_loads(snap, usable, weights));
  }
}
BENCHMARK(BM_ComputeLoads)->Arg(60)->Arg(256);

void BM_NetworkLoads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto snap = synthetic_snapshot(n, 42);
  std::vector<cluster::NodeId> usable(static_cast<std::size_t>(n));
  std::iota(usable.begin(), usable.end(), 0);
  const core::NetworkLoadWeights weights;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::network_loads(snap, usable, weights));
  }
}
BENCHMARK(BM_NetworkLoads)->Arg(60)->Arg(256);

void BM_BaselineLoadAware(benchmark::State& state) {
  const auto snap = synthetic_snapshot(60, 42);
  const auto request = standard_request(32);
  core::LoadAwareAllocator allocator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.allocate(snap, request));
  }
}
BENCHMARK(BM_BaselineLoadAware);

void BM_BaselineRandom(benchmark::State& state) {
  const auto snap = synthetic_snapshot(60, 42);
  const auto request = standard_request(32);
  core::RandomAllocator allocator(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.allocate(snap, request));
  }
}
BENCHMARK(BM_BaselineRandom);

}  // namespace

#include "bench_main.h"
NLARM_BENCHMARK_MAIN()
