// Extension analysis: the baseline crossover of §5.1 — "Load-aware
// performed better than sequential for less number of nodes whereas worse
// for a large number of nodes. This is because when the node count is high,
// network dynamics impact the communication times more."
//
// This harness measures the load-aware/sequential time ratio as the node
// count grows and reports where (and whether) the crossover lands in the
// simulated cluster, together with the mechanism: the communication share
// of total time per scale.
#include <iostream>

#include "apps/minimd.h"
#include "sweep_common.h"

using namespace nlarm;

int main(int argc, char** argv) {
  auto parser = bench::make_sweep_parser(
      "Extension: load-aware vs sequential crossover across node counts "
      "(the mechanism behind the paper's §5.1 observation).");
  if (!parser.parse(argc, argv)) return 0;
  const bool full = parser.get_bool("full");

  bench::SweepOptions options;
  options.proc_counts = full ? std::vector<int>{8, 16, 24, 32, 48, 64}
                             : std::vector<int>{8, 32, 64};
  options.problem_sizes = {16};  // fixed problem, scale the nodes
  options.repetitions =
      static_cast<int>(parser.get_long("reps", full ? 5 : 4));
  options.seed = static_cast<std::uint64_t>(parser.get_long("seed", 45));
  options.scenario = workload::parse_scenario_kind(
      parser.get_string("scenario", "shared_lab"));
  options.job = core::JobWeights::minimd_defaults();

  const auto rows = bench::run_sweep(
      options, [](int size, int nranks) {
        apps::MiniMdParams params;
        params.size = size;
        params.nranks = nranks;
        return apps::make_minimd_profile(params);
      });

  std::cout << "=== Load-aware vs sequential across scale (miniMD s=16) "
               "===\n\n";
  util::TextTable table({"procs", "nodes", "load-aware (s)",
                         "sequential (s)", "LA/SEQ ratio",
                         "ours comm share"});
  std::vector<double> ratios;
  for (const auto& row : rows) {
    const auto& result = row.by_size[0];
    const double la = result.mean_time(exp::Policy::kLoadAware);
    const double seq = result.mean_time(exp::Policy::kSequential);
    ratios.push_back(la / seq);
    // Mean communication fraction of our policy's runs at this scale.
    double comm = 0.0;
    const auto& runs =
        result.runs[static_cast<std::size_t>(exp::Policy::kNetworkLoadAware)];
    for (const auto& run : runs) comm += run.execution.comm_fraction();
    comm /= static_cast<double>(runs.size());
    table.add_row({util::format("%d", row.nprocs),
                   util::format("%d", row.nprocs / 4),
                   util::format("%.2f", la), util::format("%.2f", seq),
                   util::format("%.2f", la / seq),
                   util::format("%.0f%%", comm * 100.0)});
  }
  table.print(std::cout);
  std::cout << "(ratio < 1: load-aware wins; the paper observed the ratio "
               "rising with node count)\n\n";

  std::vector<exp::ShapeCheck> checks;
  checks.push_back(exp::check(
      "load-aware's relative standing degrades as node count grows "
      "(last ratio > first)",
      ratios.back() > ratios.front(),
      util::format("%.2f at %d procs vs %.2f at %d procs", ratios.front(),
                   options.proc_counts.front(), ratios.back(),
                   options.proc_counts.back())));
  // Mechanism: communication dominates more at scale, which is what makes
  // network-blind load-aware fall behind.
  const auto& first_runs =
      rows.front().by_size[0]
          .runs[static_cast<std::size_t>(exp::Policy::kNetworkLoadAware)];
  const auto& last_runs =
      rows.back().by_size[0]
          .runs[static_cast<std::size_t>(exp::Policy::kNetworkLoadAware)];
  double first_comm = 0.0;
  double last_comm = 0.0;
  for (const auto& run : first_runs) {
    first_comm += run.execution.comm_fraction() / first_runs.size();
  }
  for (const auto& run : last_runs) {
    last_comm += run.execution.comm_fraction() / last_runs.size();
  }
  checks.push_back(exp::check(
      "communication share grows with node count (the paper's mechanism)",
      last_comm > first_comm,
      util::format("%.0f%% → %.0f%%", first_comm * 100, last_comm * 100)));
  exp::print_shape_checks(std::cout, checks);
  return 0;
}
