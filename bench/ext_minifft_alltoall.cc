// Extension experiment (beyond the paper): miniFFT — a bisection-bandwidth-
// bound all-to-all workload — under the four allocation policies, plus the
// block-vs-cyclic rank-placement question the paper leaves to the process
// manager.
//
// Expectation: the transpose's all-pairs traffic makes network awareness
// matter even more than for miniMD's halos, and block placement beats
// cyclic for halo apps while the alltoall is placement-order-insensitive.
#include <iostream>

#include "apps/minifft.h"
#include "apps/minimd.h"
#include "sweep_common.h"

using namespace nlarm;

int main(int argc, char** argv) {
  auto parser = bench::make_sweep_parser(
      "Extension: miniFFT (all-to-all transposes) under the four policies, "
      "and block vs cyclic rank placement.");
  if (!parser.parse(argc, argv)) return 0;
  const bool full = parser.get_bool("full");

  bench::SweepOptions options;
  options.proc_counts = full ? std::vector<int>{8, 16, 32, 48}
                             : std::vector<int>{16, 32};
  options.problem_sizes = full ? std::vector<int>{64, 128, 192, 256}
                               : std::vector<int>{64, 192};
  options.repetitions =
      static_cast<int>(parser.get_long("reps", full ? 5 : 3));
  options.seed = static_cast<std::uint64_t>(parser.get_long("seed", 44));
  options.scenario = workload::parse_scenario_kind(
      parser.get_string("scenario", "shared_lab"));
  options.job = core::JobWeights{0.2, 0.8};  // transpose-dominated

  const auto rows = bench::run_sweep(
      options, [](int n, int nranks) {
        apps::MiniFftParams params;
        params.n = n;
        params.nranks = nranks;
        return apps::make_minifft_profile(params);
      });

  std::cout << "=== Extension: miniFFT all-to-all under the four policies "
               "===\n\n";
  std::vector<double> sizes(options.problem_sizes.begin(),
                            options.problem_sizes.end());
  for (const auto& row : rows) {
    exp::print_time_table(
        std::cout,
        util::format("#procs = %d  (execution time vs grid size n)",
                     row.nprocs),
        "n", sizes, row.by_size);
  }

  const auto all = bench::flatten(rows);
  const exp::GainStats vs_random =
      exp::pooled_gains(all, exp::Policy::kRandom);
  const exp::GainStats vs_load =
      exp::pooled_gains(all, exp::Policy::kLoadAware);

  // --- block vs cyclic placement on a fixed allocation --------------------
  exp::Testbed::Options testbed_options;
  testbed_options.seed = options.seed + 999;
  testbed_options.scenario = options.scenario;
  auto testbed = exp::Testbed::make(testbed_options);
  core::AllocationRequest request;
  request.nprocs = 32;
  request.ppn = 4;
  request.job = core::JobWeights{0.3, 0.7};
  core::NetworkLoadAwareAllocator allocator;
  const core::Allocation alloc =
      allocator.allocate(testbed->snapshot(), request);

  apps::MiniMdParams md;
  md.size = 16;
  md.nranks = 32;
  const auto md_app = apps::make_minimd_profile(md);
  apps::MiniFftParams fft;
  fft.n = 128;
  fft.nranks = 32;
  const auto fft_app = apps::make_minifft_profile(fft);

  const auto block = mpisim::Placement::from_allocation(alloc);
  const auto cyclic = mpisim::Placement::round_robin_from_allocation(alloc);
  const double md_block = testbed->runtime().estimate(md_app, block).total_s;
  const double md_cyclic =
      testbed->runtime().estimate(md_app, cyclic).total_s;
  const double fft_block =
      testbed->runtime().estimate(fft_app, block).total_s;
  const double fft_cyclic =
      testbed->runtime().estimate(fft_app, cyclic).total_s;

  util::TextTable placement_table(
      {"app", "block placement (s)", "cyclic placement (s)"});
  placement_table.add_row({"miniMD (halo)", util::format("%.3f", md_block),
                           util::format("%.3f", md_cyclic)});
  placement_table.add_row({"miniFFT (alltoall)",
                           util::format("%.3f", fft_block),
                           util::format("%.3f", fft_cyclic)});
  placement_table.print(std::cout);
  std::cout << "\n";

  std::vector<exp::ShapeCheck> checks;
  checks.push_back(exp::check(
      "network-aware allocation still wins for the alltoall workload",
      vs_random.average > 0.0 && vs_load.average > 0.0,
      util::format("gain vs random %.1f%%, vs load-aware %.1f%%",
                   vs_random.average * 100, vs_load.average * 100)));
  checks.push_back(exp::check(
      "block placement is no worse than cyclic for the halo app",
      md_block <= md_cyclic * 1.02,
      util::format("%.3f vs %.3f s", md_block, md_cyclic)));
  checks.push_back(exp::check(
      "alltoall is placement-order insensitive (within 5%)",
      std::abs(fft_block - fft_cyclic) <= 0.05 * fft_block,
      util::format("%.3f vs %.3f s", fft_block, fft_cyclic)));
  exp::print_shape_checks(std::cout, checks);
  return 0;
}
