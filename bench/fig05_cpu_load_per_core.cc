// Figure 5: "Average CPU load per logical core for the allocation
// algorithms across several runs of miniMD".
//
// Paper values: network-and-load-aware 0.43, load-aware 0.31, sequential
// 0.68, random 0.72 — and crucially ours beats load-aware on execution time
// *despite* the higher CPU load, because its nodes are better connected.
#include <iostream>

#include "apps/minimd.h"
#include "sweep_common.h"

using namespace nlarm;

int main(int argc, char** argv) {
  auto parser = bench::make_sweep_parser(
      "Figure 5 reproduction: mean CPU load per logical core of the nodes "
      "each policy selects (miniMD runs).");
  if (!parser.parse(argc, argv)) return 0;
  const bool full = parser.get_bool("full");

  bench::SweepOptions options;
  options.proc_counts = {32};
  options.problem_sizes = full ? std::vector<int>{8, 16, 24, 32, 40, 48}
                               : std::vector<int>{8, 16, 32};
  options.repetitions =
      static_cast<int>(parser.get_long("reps", full ? 5 : 3));
  options.seed = static_cast<std::uint64_t>(parser.get_long("seed", 42));
  options.scenario = workload::parse_scenario_kind(
      parser.get_string("scenario", "shared_lab"));
  options.job = core::JobWeights::minimd_defaults();

  const auto rows = bench::run_sweep(
      options, [](int size, int nranks) {
        apps::MiniMdParams params;
        params.size = size;
        params.nranks = nranks;
        return apps::make_minimd_profile(params);
      });
  const auto all = bench::flatten(rows);

  auto pooled_load = [&](exp::Policy policy) {
    std::vector<double> loads;
    for (const auto& result : all) {
      const auto policy_loads = result.loads_per_core(policy);
      loads.insert(loads.end(), policy_loads.begin(), policy_loads.end());
    }
    return util::mean(loads);
  };
  auto pooled_time = [&](exp::Policy policy) {
    std::vector<double> times;
    for (const auto& result : all) {
      const auto t = result.times(policy);
      times.insert(times.end(), t.begin(), t.end());
    }
    return util::mean(times);
  };

  const double load_ours = pooled_load(exp::Policy::kNetworkLoadAware);
  const double load_load_aware = pooled_load(exp::Policy::kLoadAware);
  const double load_sequential = pooled_load(exp::Policy::kSequential);
  const double load_random = pooled_load(exp::Policy::kRandom);

  std::cout << "=== Figure 5: average CPU load per logical core of selected "
               "nodes ===\n\n";
  util::TextTable table(
      {"policy", "measured load/core", "paper load/core", "mean exec (s)"});
  table.add_row({"random", util::format("%.3f", load_random), "0.72",
                 util::format("%.2f", pooled_time(exp::Policy::kRandom))});
  table.add_row({"sequential", util::format("%.3f", load_sequential), "0.68",
                 util::format("%.2f",
                              pooled_time(exp::Policy::kSequential))});
  table.add_row({"load-aware", util::format("%.3f", load_load_aware), "0.31",
                 util::format("%.2f", pooled_time(exp::Policy::kLoadAware))});
  table.add_row(
      {"network-load-aware", util::format("%.3f", load_ours), "0.43",
       util::format("%.2f",
                    pooled_time(exp::Policy::kNetworkLoadAware))});
  table.print(std::cout);
  std::cout << "\n";

  std::vector<exp::ShapeCheck> checks;
  checks.push_back(exp::check(
      "load-aware selects the least-loaded nodes",
      load_load_aware <= load_ours && load_load_aware <= load_sequential &&
          load_load_aware <= load_random,
      util::format("load-aware %.3f vs ours %.3f", load_load_aware,
                   load_ours)));
  checks.push_back(exp::check(
      "ours accepts somewhat more load than load-aware (connectivity trade)",
      load_ours >= load_load_aware,
      util::format("%.3f vs %.3f", load_ours, load_load_aware)));
  checks.push_back(exp::check(
      "random and sequential pick more-loaded nodes than ours",
      load_random > load_ours && load_sequential > load_ours,
      util::format("random %.3f, sequential %.3f, ours %.3f", load_random,
                   load_sequential, load_ours)));
  checks.push_back(exp::check(
      "ours is still faster than load-aware despite the extra load",
      pooled_time(exp::Policy::kNetworkLoadAware) <
          pooled_time(exp::Policy::kLoadAware),
      util::format("%.2f s vs %.2f s",
                   pooled_time(exp::Policy::kNetworkLoadAware),
                   pooled_time(exp::Policy::kLoadAware))));
  exp::print_shape_checks(std::cout, checks);
  return 0;
}
