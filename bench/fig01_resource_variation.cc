// Figure 1: "Variation in node resource usage in a shared cluster".
//
// Simulates two days of the shared-lab background workload on 20 nodes and
// prints (a) CPU load of two nodes + the 20-node average, (b) network I/O
// of two nodes + average, (c) average CPU utilization and memory usage —
// the same three panels as the paper's Figure 1, as hourly CSV rows.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "cluster/cluster.h"
#include "exp/report.h"
#include "net/flows.h"
#include "net/network_model.h"
#include "sim/simulation.h"
#include "util/args.h"
#include "util/stats.h"
#include "util/strings.h"
#include "workload/scenario.h"
#include "workload/trace.h"

using namespace nlarm;

int main(int argc, char** argv) {
  util::ArgParser parser(
      "Figure 1 reproduction: two days of node resource usage variation.",
      {{"hours", "simulated hours (default 48, the paper's 2 days)"},
       {"nodes", "cluster size (default 20, as in Figure 1)"},
       {"seed", "RNG seed (default 42)"}});
  if (!parser.parse(argc, argv)) return 0;
  const double hours = parser.get_double("hours", 48.0);
  const int node_count = static_cast<int>(parser.get_long("nodes", 20));
  const auto seed = static_cast<std::uint64_t>(parser.get_long("seed", 42));

  cluster::Cluster cluster =
      cluster::make_uniform_cluster(node_count, 2, /*cores=*/12, 4.6);
  net::FlowSet flows;
  net::NetworkModel network(cluster, flows);
  sim::Simulation sim(seed);
  workload::ScenarioOptions scenario_options;
  scenario_options.kind = workload::ScenarioKind::kSharedLab;
  scenario_options.seed = seed;
  workload::Scenario scenario(cluster, flows, network, scenario_options);
  scenario.attach(sim);

  // The paper picks two random nodes; we fix A=2, B=7 for reproducibility.
  const cluster::NodeId node_a = 2 % node_count;
  const cluster::NodeId node_b = 7 % node_count;

  workload::TraceRecorder recorder;
  recorder.add_channel("load_A", [&] { return cluster.node(node_a).dyn.cpu_load; });
  recorder.add_channel("load_B", [&] { return cluster.node(node_b).dyn.cpu_load; });
  recorder.add_channel("load_avg", [&] {
    double sum = 0.0;
    for (cluster::NodeId n = 0; n < cluster.size(); ++n) {
      sum += cluster.node(n).dyn.cpu_load;
    }
    return sum / cluster.size();
  });
  recorder.add_channel("netio_A",
                       [&] { return cluster.node(node_a).dyn.net_flow_mbps; });
  recorder.add_channel("netio_B",
                       [&] { return cluster.node(node_b).dyn.net_flow_mbps; });
  recorder.add_channel("netio_avg", [&] {
    double sum = 0.0;
    for (cluster::NodeId n = 0; n < cluster.size(); ++n) {
      sum += cluster.node(n).dyn.net_flow_mbps;
    }
    return sum / cluster.size();
  });
  recorder.add_channel("util_avg", [&] {
    double sum = 0.0;
    for (cluster::NodeId n = 0; n < cluster.size(); ++n) {
      sum += cluster.node(n).dyn.cpu_util;
    }
    return sum / cluster.size() * 100.0;  // percent, like Fig. 1(c)
  });
  recorder.add_channel("mem_avg_pct", [&] {
    double sum = 0.0;
    for (cluster::NodeId n = 0; n < cluster.size(); ++n) {
      sum += cluster.node(n).dyn.mem_used_gb /
             cluster.node(n).spec.total_mem_gb;
    }
    return sum / cluster.size() * 100.0;
  });
  recorder.attach(sim, 300.0);  // 5-minute samples

  sim.run_until(hours * 3600.0);

  std::cout << "=== Figure 1: node resource usage variation ("
            << hours << " h, " << node_count << " nodes) ===\n\n";
  std::cout << "hour,load_A,load_B,load_avg,netio_A_mbps,netio_B_mbps,"
               "netio_avg_mbps,util_avg_pct,mem_avg_pct\n";
  const auto& times = recorder.series("load_A").times;
  for (std::size_t i = 0; i < times.size(); i += 12) {  // hourly rows
    std::printf("%.1f,%.2f,%.2f,%.2f,%.1f,%.1f,%.1f,%.1f,%.1f\n",
                times[i] / 3600.0, recorder.series("load_A").values[i],
                recorder.series("load_B").values[i],
                recorder.series("load_avg").values[i],
                recorder.series("netio_A").values[i],
                recorder.series("netio_B").values[i],
                recorder.series("netio_avg").values[i],
                recorder.series("util_avg").values[i],
                recorder.series("mem_avg_pct").values[i]);
  }

  const util::Summary load_avg =
      util::summarize(recorder.series("load_avg").values);
  const util::Summary load_a = util::summarize(recorder.series("load_A").values);
  const util::Summary util_avg =
      util::summarize(recorder.series("util_avg").values);
  const util::Summary mem_avg =
      util::summarize(recorder.series("mem_avg_pct").values);
  const util::Summary netio_avg =
      util::summarize(recorder.series("netio_avg").values);

  std::cout << "\nSummary:\n";
  std::printf("  avg CPU load (cluster mean over time): %.2f (max %.2f)\n",
              load_avg.mean, load_avg.max);
  std::printf("  node A CPU load: mean %.2f, max %.2f (spikes)\n",
              load_a.mean, load_a.max);
  std::printf("  avg CPU utilization: %.1f%% (paper: 20-35%%)\n",
              util_avg.mean);
  std::printf("  avg memory usage: %.1f%% (paper: ~25%% of 16 GB)\n",
              mem_avg.mean);
  std::printf("  avg network I/O: %.1f Mbit/s (CoV %.2f)\n", netio_avg.mean,
              netio_avg.cov);

  std::vector<exp::ShapeCheck> checks;
  checks.push_back(exp::check(
      "average CPU load is mostly low (< 1.5)", load_avg.mean < 1.5,
      util::format("mean %.2f", load_avg.mean)));
  checks.push_back(exp::check(
      "occasional CPU-load spikes occur (node max > 4x node mean)",
      load_a.max > 4.0 * std::max(load_a.mean, 0.05),
      util::format("node A mean %.2f max %.2f", load_a.mean, load_a.max)));
  checks.push_back(exp::check(
      "CPU utilization in the paper's 15-40% band",
      util_avg.mean >= 15.0 && util_avg.mean <= 40.0,
      util::format("%.1f%%", util_avg.mean)));
  checks.push_back(exp::check(
      "memory usage near 25% (15-40%)",
      mem_avg.mean >= 15.0 && mem_avg.mean <= 40.0,
      util::format("%.1f%%", mem_avg.mean)));
  checks.push_back(exp::check(
      "network I/O varies a lot over time (CoV > 0.3)", netio_avg.cov > 0.3,
      util::format("CoV %.2f", netio_avg.cov)));
  std::cout << "\n";
  exp::print_shape_checks(std::cout, checks);
  return 0;
}
