// Microbenchmarks for incremental re-preparation and concurrent serving.
//
// BM_DeltaUpdate vs BM_FullPrepare quantifies the tentpole claim: applying a
// SnapshotDelta touching c% of nodes and pairs re-prepares O(dirty) state
// instead of the O(V²) from-scratch pipeline. BM_ConcurrentDecide measures
// decide() throughput against a pinned immutable epoch from 1/4/8 threads
// (the serialized classic path is benchmarked alongside for contrast — on a
// single-core host the thread counts time-slice, so the interesting number
// is the absence of a slowdown, not a speedup).
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <utility>
#include <vector>

#include "core/allocator.h"
#include "core/broker.h"
#include "core/epoch.h"
#include "core/prepared.h"
#include "monitor/snapshot.h"
#include "monitor/snapshot_delta.h"
#include "sim/rng.h"

using namespace nlarm;

namespace {

monitor::ClusterSnapshot synthetic_snapshot(int n, std::uint64_t seed) {
  sim::Rng rng(seed);
  monitor::ClusterSnapshot snap;
  snap.version = (seed << 20) | static_cast<std::uint64_t>(n);
  snap.livehosts.assign(static_cast<std::size_t>(n), true);
  snap.nodes.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& node = snap.nodes[static_cast<std::size_t>(i)];
    node.spec.id = i;
    node.spec.hostname = cluster::default_hostname(i);
    node.spec.core_count = rng.chance(0.5) ? 8 : 12;
    node.spec.cpu_freq_ghz = node.spec.core_count == 8 ? 2.8 : 4.6;
    node.spec.total_mem_gb = 16.0;
    node.valid = true;
    node.sample_time = 0.0;
    const double load = rng.uniform(0.0, 6.0);
    node.cpu_load = load;
    node.cpu_load_avg = {load, load, load};
    const double util = rng.uniform(0.0, 1.0);
    node.cpu_util = util;
    node.cpu_util_avg = {util, util, util};
    const double flow = rng.uniform(0.0, 500.0);
    node.net_flow_mbps = flow;
    node.net_flow_avg = {flow, flow, flow};
    node.mem_used_gb = rng.uniform(1.0, 12.0);
    const double avail = 16.0 - node.mem_used_gb;
    node.mem_avail_avg = {avail, avail, avail};
    node.users = static_cast<int>(rng.uniform_int(0, 5));
  }
  snap.net.latency_us = monitor::make_matrix(n, 0.0);
  snap.net.latency_5min_us = monitor::make_matrix(n, 0.0);
  snap.net.bandwidth_mbps = monitor::make_matrix(n, 0.0);
  snap.net.peak_mbps = monitor::make_matrix(n, 0.0);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const double lat = rng.uniform(50.0, 600.0);
      const double bw = rng.uniform(100.0, 1000.0);
      const auto uu = static_cast<std::size_t>(u);
      const auto vv = static_cast<std::size_t>(v);
      snap.net.latency_us[uu][vv] = snap.net.latency_us[vv][uu] = lat;
      snap.net.latency_5min_us[uu][vv] = snap.net.latency_5min_us[vv][uu] =
          lat;
      snap.net.bandwidth_mbps[uu][vv] = snap.net.bandwidth_mbps[vv][uu] = bw;
      snap.net.peak_mbps[uu][vv] = snap.net.peak_mbps[vv][uu] = 1000.0;
    }
  }
  return snap;
}

core::AllocationRequest standard_request(int nprocs) {
  core::AllocationRequest request;
  request.nprocs = nprocs;
  request.ppn = 4;
  request.job = core::JobWeights{0.3, 0.7};
  return request;
}

/// Evenly strided sample of `count` dirty node ids out of [0, n).
std::vector<cluster::NodeId> strided_nodes(int n, int count) {
  std::vector<cluster::NodeId> ids;
  ids.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    ids.push_back(static_cast<cluster::NodeId>(
        static_cast<long long>(i) * n / count));
  }
  return ids;
}

/// Evenly strided sample of `count` (u, v) pairs in i-major order — already
/// sorted the way DeltaTracker::drain() emits them.
std::vector<std::pair<cluster::NodeId, cluster::NodeId>> strided_pairs(
    int n, long long count) {
  const long long total = static_cast<long long>(n) * (n - 1) / 2;
  std::vector<std::pair<cluster::NodeId, cluster::NodeId>> pairs;
  pairs.reserve(static_cast<std::size_t>(count));
  int u = 0;
  long long row_start = 0;  // linear index of pair (u, u + 1)
  for (long long i = 0; i < count; ++i) {
    const long long k = i * total / count;
    while (k >= row_start + (n - 1 - u)) {
      row_start += n - 1 - u;
      ++u;
    }
    const int v = u + 1 + static_cast<int>(k - row_start);
    pairs.emplace_back(u, v);
  }
  return pairs;
}

/// The churned-tick setup shared by the delta benches: one mutable snapshot
/// whose dirty subset is rewritten in place before every timed update.
struct DeltaFixture {
  DeltaFixture(int n, int churn_pct)
      : snap(std::make_shared<monitor::ClusterSnapshot>(
            synthetic_snapshot(n, 42))),
        rng(7),
        dirty_nodes(strided_nodes(n, std::max(1, n * churn_pct / 100))),
        dirty_pairs(strided_pairs(
            n, std::max<long long>(
                   1, static_cast<long long>(n) * (n - 1) / 2 * churn_pct /
                          100))) {}

  /// Rewrites the dirty subset with fresh values, bumps the version, and
  /// returns the matching delta.
  monitor::SnapshotDelta churn() {
    for (const cluster::NodeId id : dirty_nodes) {
      auto& node = snap->nodes[static_cast<std::size_t>(id)];
      const double load = rng.uniform(0.0, 6.0);
      node.cpu_load = load;
      node.cpu_load_avg = {load, load, load};
      node.mem_used_gb = rng.uniform(1.0, 12.0);
    }
    for (const auto& [u, v] : dirty_pairs) {
      const double lat = rng.uniform(50.0, 600.0);
      const double bw = rng.uniform(100.0, 1000.0);
      const auto uu = static_cast<std::size_t>(u);
      const auto vv = static_cast<std::size_t>(v);
      snap->net.latency_us[uu][vv] = snap->net.latency_us[vv][uu] = lat;
      snap->net.bandwidth_mbps[uu][vv] = snap->net.bandwidth_mbps[vv][uu] =
          bw;
    }
    monitor::SnapshotDelta delta;
    delta.base_version = snap->version;
    snap->version += 1;
    delta.version = snap->version;
    delta.dirty_nodes = dirty_nodes;
    delta.dirty_pairs = dirty_pairs;
    return delta;
  }

  std::shared_ptr<monitor::ClusterSnapshot> snap;
  sim::Rng rng;
  std::vector<cluster::NodeId> dirty_nodes;
  std::vector<std::pair<cluster::NodeId, cluster::NodeId>> dirty_pairs;
};

/// Incremental path: apply a churn% delta to primed prepared state. Manual
/// time so the in-place snapshot mutation stays out of the measurement.
void BM_DeltaUpdate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int churn_pct = static_cast<int>(state.range(1));
  DeltaFixture fixture(n, churn_pct);
  core::PreparedBuilder builder(
      core::RequestProfile::of(standard_request(32)));
  builder.rebuild(fixture.snap);
  for (auto _ : state) {
    const monitor::SnapshotDelta delta = fixture.churn();
    const auto start = std::chrono::steady_clock::now();
    const bool applied = builder.update(fixture.snap, delta);
    const auto end = std::chrono::steady_clock::now();
    if (!applied) {
      state.SkipWithError("incremental update fell back to a full rebuild");
      break;
    }
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
  state.counters["dirty_nodes"] =
      static_cast<double>(fixture.dirty_nodes.size());
  state.counters["dirty_pairs"] =
      static_cast<double>(fixture.dirty_pairs.size());
}
BENCHMARK(BM_DeltaUpdate)
    ->Args({256, 1})
    ->Args({256, 10})
    ->Args({1024, 1})
    ->Args({1024, 10})
    ->Args({4096, 1})
    ->Args({4096, 10})
    ->UseManualTime();

/// Baseline the delta path is judged against: the O(V²) from-scratch
/// re-preparation of the same snapshot.
void BM_FullPrepare(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto snap = std::make_shared<const monitor::ClusterSnapshot>(
      synthetic_snapshot(n, 42));
  core::PreparedBuilder builder(
      core::RequestProfile::of(standard_request(32)));
  for (auto _ : state) {
    builder.rebuild(snap);
    benchmark::DoNotOptimize(builder.state_version());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_FullPrepare)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Complexity(benchmark::oNSquared);

/// End-to-end republish: delta update + immutable epoch build (including
/// the lazy NL materialization forced by the dirty pairs).
void BM_EpochBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int churn_pct = static_cast<int>(state.range(1));
  DeltaFixture fixture(n, churn_pct);
  core::PreparedBuilder builder(
      core::RequestProfile::of(standard_request(32)));
  builder.rebuild(fixture.snap);
  for (auto _ : state) {
    const monitor::SnapshotDelta delta = fixture.churn();
    const auto start = std::chrono::steady_clock::now();
    bool applied = builder.update(fixture.snap, delta);
    std::shared_ptr<const core::PreparedSnapshot> epoch = builder.build();
    const auto end = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(epoch);
    if (!applied) {
      state.SkipWithError("incremental update fell back to a full rebuild");
      break;
    }
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
}
BENCHMARK(BM_EpochBuild)
    ->Args({256, 1})
    ->Args({1024, 1})
    ->UseManualTime();

/// Lock-free serving: N threads decide against pinned immutable epochs.
void BM_ConcurrentDecide(benchmark::State& state) {
  static core::NetworkLoadAwareAllocator allocator;
  static core::ResourceBroker* broker = [] {
    auto* b = new core::ResourceBroker(allocator);
    b->refresh_epoch(std::make_shared<const monitor::ClusterSnapshot>(
                         synthetic_snapshot(256, 42)),
                     core::RequestProfile::of(standard_request(32)));
    return b;
  }();
  const auto request = standard_request(32);
  core::EpochPin pin = broker->pin_epoch();
  for (auto _ : state) {
    broker->refresh_pin(pin);
    benchmark::DoNotOptimize(broker->decide(pin, request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentDecide)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/// Contrast: the classic mutex-serialized decide() under the same fan-in.
/// Memoization makes the per-call work comparable; the difference is the
/// critical section.
void BM_ClassicDecideLocked(benchmark::State& state) {
  static core::NetworkLoadAwareAllocator allocator;
  static core::ResourceBroker broker(allocator);
  static const monitor::ClusterSnapshot snap = synthetic_snapshot(256, 42);
  const auto request = standard_request(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(broker.decide(snap, request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassicDecideLocked)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

}  // namespace

#include "bench_main.h"
NLARM_BENCHMARK_MAIN()
