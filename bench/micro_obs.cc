// Microbenchmarks for the observability hot-path cost. The telemetry
// plane's contract is that instrumentation is effectively free where it
// matters: one sketch observe() is a handful of nanoseconds against a
// millisecond-scale decide, and scrapes/flushes materialize quantiles
// lazily off the decide path. The headline pair is BM_WarmDecide vs
// BM_WarmDecideInstrumented at V=16384 — the acceptance bar allows at
// most 3% overhead between their means (checked by the CI smoke over
// BENCH_obs.json).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "core/allocator.h"
#include "core/compute_load.h"
#include "core/hierarchical.h"
#include "core/normalize.h"
#include "core/prepared.h"
#include "monitor/snapshot.h"
#include "obs/catalog.h"
#include "obs/metrics.h"
#include "obs/sketch.h"
#include "obs/telemetry_server.h"
#include "obs/trace.h"
#include "sim/rng.h"
#include "util/tiled_matrix.h"

using namespace nlarm;

namespace {

constexpr std::size_t kBlockNodes = 128;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double unit_double(std::uint64_t x) { return (x >> 11) * 0x1.0p-53; }

// Same procedural pair source as micro_hier: pair terms are a hash of
// (u, v), so V=16384 carries zero bytes of dense pair state.
class ProceduralPairSource final : public core::PairSource {
 public:
  explicit ProceduralPairSource(std::uint64_t seed) : seed_(seed) {}

  Raw read(cluster::NodeId u, cluster::NodeId v) const override {
    const auto a = static_cast<std::uint64_t>(u < v ? u : v);
    const auto b = static_cast<std::uint64_t>(u < v ? v : u);
    const std::uint64_t h = mix64(seed_ ^ (a << 32) ^ b);
    Raw raw;
    raw.lat = 50.0 + 550.0 * unit_double(h);
    raw.comp = 900.0 * unit_double(mix64(h));
    return raw;
  }

 private:
  std::uint64_t seed_;
};

core::AllocationRequest standard_request(int nprocs) {
  core::AllocationRequest request;
  request.nprocs = nprocs;
  request.ppn = 4;
  request.job = core::JobWeights{0.3, 0.7};
  return request;
}

std::shared_ptr<const monitor::ClusterSnapshot> netless_snapshot(
    std::size_t v, std::uint64_t seed) {
  sim::Rng rng(seed);
  auto snap = std::make_shared<monitor::ClusterSnapshot>();
  snap->version = (seed << 24) | static_cast<std::uint64_t>(v);
  snap->livehosts.assign(v, true);
  snap->nodes.resize(v);
  for (std::size_t i = 0; i < v; ++i) {
    auto& node = snap->nodes[i];
    node.spec.id = static_cast<cluster::NodeId>(i);
    node.spec.hostname =
        cluster::default_hostname(static_cast<cluster::NodeId>(i));
    node.spec.switch_id = static_cast<std::int32_t>(i / kBlockNodes);
    node.spec.core_count = 8;
    node.spec.cpu_freq_ghz = 2.8;
    node.spec.total_mem_gb = 16.0;
    node.valid = true;
    node.sample_time = 0.0;
    const double load = rng.uniform(0.0, 6.0);
    node.cpu_load = load;
    node.cpu_load_avg = {load, load, load};
    const double util = rng.uniform(0.0, 1.0);
    node.cpu_util = util;
    node.cpu_util_avg = {util, util, util};
    const double flow = rng.uniform(0.0, 500.0);
    node.net_flow_mbps = flow;
    node.net_flow_avg = {flow, flow, flow};
    node.mem_used_gb = rng.uniform(1.0, 12.0);
    const double avail = 16.0 - node.mem_used_gb;
    node.mem_avail_avg = {avail, avail, avail};
    node.users = static_cast<int>(rng.uniform_int(0, 5));
  }
  return snap;
}

struct ObsSetup {
  std::shared_ptr<const monitor::ClusterSnapshot> snapshot;
  std::shared_ptr<const ProceduralPairSource> source;
  std::shared_ptr<core::TiledPairState> tiles;
  core::PreparedSnapshot prepared;
};

// Hand-assembled tiled epoch, cached per V (setup is O(V²) time but
// O(G² + V) memory) — identical shape to micro_hier's hier_setup.
const ObsSetup& obs_setup(std::size_t v) {
  static std::map<std::size_t, ObsSetup>* cache =
      new std::map<std::size_t, ObsSetup>();
  const auto it = cache->find(v);
  if (it != cache->end()) {
    return it->second;
  }

  ObsSetup s;
  s.snapshot = netless_snapshot(v, 42);
  s.source = std::make_shared<ProceduralPairSource>(0x746c6573ULL);

  const core::AllocationRequest request = standard_request(32);
  core::PreparedSnapshot& p = s.prepared;
  p.snapshot = s.snapshot;
  p.profile = core::RequestProfile::of(request);
  p.version = s.snapshot->version;
  p.usable.resize(v);
  std::iota(p.usable.begin(), p.usable.end(), cluster::NodeId{0});
  p.cl = core::rescale_unit_mean(
      core::compute_loads(*s.snapshot, p.usable, p.profile.compute_weights));
  p.pc = core::effective_process_counts(*s.snapshot, p.usable, p.profile.ppn);
  p.pos_of.assign(v, -1);
  for (std::size_t i = 0; i < v; ++i) {
    p.pos_of[i] = static_cast<std::int32_t>(i);
  }
  double load_sum = 0.0;
  double core_sum = 0.0;
  for (const cluster::NodeId id : p.usable) {
    const monitor::NodeSnapshot& node =
        s.snapshot->nodes[static_cast<std::size_t>(id)];
    load_sum += node.cpu_load_avg.one_min;
    core_sum += static_cast<double>(node.spec.core_count);
  }
  p.load_per_core = core_sum > 0.0 ? load_sum / core_sum : 0.0;
  p.effective_capacity = 0;
  for (const int c : p.pc) p.effective_capacity += c;

  util::BlockPartition part = util::BlockPartition::fixed(v, kBlockNodes);
  std::vector<double> tile_lat(part.tile_count(), 0.0);
  std::vector<double> tile_comp(part.tile_count(), 0.0);
  std::vector<std::uint64_t> tile_pairs(part.tile_count(), 0);
  double lat_sum = 0.0;
  double comp_sum = 0.0;
  for (std::size_t i = 0; i < v; ++i) {
    const std::size_t bi = part.block_of(i);
    for (std::size_t j = i + 1; j < v; ++j) {
      const core::PairSource::Raw raw =
          s.source->read(p.usable[i], p.usable[j]);
      const std::size_t t = part.tile_index(bi, part.block_of(j));
      tile_lat[t] += raw.lat;
      tile_comp[t] += raw.comp;
      ++tile_pairs[t];
      lat_sum += raw.lat;
      comp_sum += raw.comp;
    }
  }
  const std::size_t pairs = v * (v - 1) / 2;

  s.tiles = std::make_shared<core::TiledPairState>();
  s.tiles->partition = part;
  s.tiles->weights = p.profile.network_weights;
  s.tiles->scalars = core::detail::compute_nl_scalars(
      lat_sum, comp_sum, /*lat_missing=*/0, /*comp_missing=*/0, pairs,
      p.profile.network_weights);
  s.tiles->nodes = p.usable;
  s.tiles->source = s.source;
  s.tiles->tiles.resize(part.tile_count());
  for (std::size_t t = 0; t < part.tile_count(); ++t) {
    const double n = static_cast<double>(tile_pairs[t]);
    s.tiles->tiles[t] = {tile_pairs[t] > 0 ? tile_lat[t] / n : 0.0,
                         tile_pairs[t] > 0 ? tile_comp[t] / n : 0.0,
                         tile_pairs[t]};
  }
  p.tiles = s.tiles;
  p.nl = nullptr;

  return cache->emplace(v, std::move(s)).first->second;
}

// One sketch observe: the entire per-decide cost the instrumentation adds
// (a log, a clamp, one relaxed fetch_add, one CAS-add for the sum).
void BM_SketchObserve(benchmark::State& state) {
  obs::QuantileSketch sketch;
  double v = 1e-6;
  for (auto _ : state) {
    sketch.observe(v);
    v = v * 1.0000001 + 1e-9;  // defeat constant-folding of index_of
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SketchObserve);

// Quantile reads walk the bucket array — the lazy cost a scrape pays so
// the decide path does not.
void BM_SketchQuantile(benchmark::State& state) {
  obs::QuantileSketch sketch;
  sim::Rng rng(7);
  for (int i = 0; i < 100000; ++i) sketch.observe(rng.uniform(1e-5, 1e-2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.quantile(0.99));
  }
}
BENCHMARK(BM_SketchQuantile);

// A full /metrics materialization: refresh the quantile gauges from the
// sketches, then render the whole registry as Prometheus text.
void BM_PrometheusScrape(benchmark::State& state) {
  obs::metrics::register_all();
  obs::metrics::serve_decide_sketch().observe(1.5e-3);
  obs::TelemetryServer server;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        server.handle("GET /metrics HTTP/1.1\r\n\r\n"));
  }
}
BENCHMARK(BM_PrometheusScrape);

// Baseline: the warm two-phase decide at scale, no instrumentation beyond
// what the core path itself carries.
void BM_WarmDecide(benchmark::State& state) {
  const auto v = static_cast<std::size_t>(state.range(0));
  const ObsSetup& s = obs_setup(v);
  const core::AllocationRequest request = standard_request(32);
  core::HierarchicalOptions options;
  options.two_phase_min_nodes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::allocate_two_phase(s.prepared, request, options));
  }
}
BENCHMARK(BM_WarmDecide)->Arg(16384);

// The same decide wrapped exactly the way core/broker.cc wraps it: a
// trace-clock read before and after, the total observed into the decide
// sketch and the fine histogram. CI gates mean(Instrumented) within 3% of
// mean(WarmDecide).
void BM_WarmDecideInstrumented(benchmark::State& state) {
  const auto v = static_cast<std::size_t>(state.range(0));
  const ObsSetup& s = obs_setup(v);
  const core::AllocationRequest request = standard_request(32);
  core::HierarchicalOptions options;
  options.two_phase_min_nodes = 0;
  obs::metrics::register_all();
  for (auto _ : state) {
    const double start = obs::trace_clock_seconds();
    benchmark::DoNotOptimize(
        core::allocate_two_phase(s.prepared, request, options));
    const double total = obs::trace_clock_seconds() - start;
    obs::metrics::serve_decide_sketch().observe(total);
    obs::metrics::alloc_total_seconds().observe(total);
  }
}
BENCHMARK(BM_WarmDecideInstrumented)->Arg(16384);

// Decide throughput while a live scraper hammers /metrics from another
// thread — the worst-case interference a dashboard can cause. Reported as
// its own row (not part of the 3% gate: on a single-core runner the
// scraper thread legitimately steals cycles).
void BM_WarmDecideUnderScrape(benchmark::State& state) {
  const auto v = static_cast<std::size_t>(state.range(0));
  const ObsSetup& s = obs_setup(v);
  const core::AllocationRequest request = standard_request(32);
  core::HierarchicalOptions options;
  options.two_phase_min_nodes = 0;
  obs::metrics::register_all();
  obs::TelemetryServer server;
  std::atomic<bool> stop{false};
  std::thread scraper([&server, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      benchmark::DoNotOptimize(
          server.handle("GET /metrics HTTP/1.1\r\n\r\n"));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto _ : state) {
    const double start = obs::trace_clock_seconds();
    benchmark::DoNotOptimize(
        core::allocate_two_phase(s.prepared, request, options));
    obs::metrics::serve_decide_sketch().observe(
        obs::trace_clock_seconds() - start);
  }
  stop.store(true);
  scraper.join();
}
BENCHMARK(BM_WarmDecideUnderScrape)->Arg(16384);

}  // namespace

#include "bench_main.h"
NLARM_BENCHMARK_MAIN()
