// Microbenchmarks for the tiled two-phase hierarchical hot path (§3.3.2 at
// scale). The flat fast path is O(V² log V) per decide and carries a dense
// V×V NL matrix — at V=16384 that is 2 GiB of pair state and a multi-second
// decide. The tiled path holds O(G²) aggregates plus the few tiles a decide
// actually touches, and runs phase 1 over G groups + phase 2 over the W
// chosen-pool nodes. These benches pin the headline claim: decide() at
// V=16384 lands in the same wall-clock band as the flat path at V=1024
// (BM_FlatDecide/1024 is the reference row committed to BENCH_hier.json).
//
// Raw pair terms come from a procedural hash source, not dense matrices —
// the whole point is that nothing at V=16384 may be O(V²) in memory. Tile
// aggregates are computed in one O(V²)-time pass at setup (cached per V),
// mirroring what PreparedBuilder's tiled full_build does over a snapshot.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "core/allocator.h"
#include "core/compute_load.h"
#include "core/hierarchical.h"
#include "core/normalize.h"
#include "core/prepared.h"
#include "monitor/snapshot.h"
#include "sim/rng.h"
#include "util/tiled_matrix.h"

using namespace nlarm;

namespace {

// One topology block per 128 nodes — the "switch" granularity the sweep
// holds fixed while V grows, so G = V/128 ∈ {8, 32, 128}.
constexpr std::size_t kBlockNodes = 128;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double unit_double(std::uint64_t x) { return (x >> 11) * 0x1.0p-53; }

// Deterministic pair terms as a hash of (u, v): same value ranges as the
// dense synthetic snapshots (latency 50–600 µs, bandwidth complement
// 0–900 Mbit/s), zero bytes of per-pair storage.
class ProceduralPairSource final : public core::PairSource {
 public:
  explicit ProceduralPairSource(std::uint64_t seed) : seed_(seed) {}

  Raw read(cluster::NodeId u, cluster::NodeId v) const override {
    const auto a = static_cast<std::uint64_t>(u < v ? u : v);
    const auto b = static_cast<std::uint64_t>(u < v ? v : u);
    const std::uint64_t h = mix64(seed_ ^ (a << 32) ^ b);
    Raw raw;
    raw.lat = 50.0 + 550.0 * unit_double(h);
    raw.comp = 900.0 * unit_double(mix64(h));
    return raw;
  }

 private:
  std::uint64_t seed_;
};

core::AllocationRequest standard_request(int nprocs) {
  core::AllocationRequest request;
  request.nprocs = nprocs;
  request.ppn = 4;
  request.job = core::JobWeights{0.3, 0.7};
  return request;
}

// V nodes with per-node state but EMPTY net matrices: pair terms flow only
// through the PairSource, never a dense snapshot section.
std::shared_ptr<const monitor::ClusterSnapshot> netless_snapshot(
    std::size_t v, std::uint64_t seed) {
  sim::Rng rng(seed);
  auto snap = std::make_shared<monitor::ClusterSnapshot>();
  snap->version = (seed << 24) | static_cast<std::uint64_t>(v);
  snap->livehosts.assign(v, true);
  snap->nodes.resize(v);
  for (std::size_t i = 0; i < v; ++i) {
    auto& node = snap->nodes[i];
    node.spec.id = static_cast<cluster::NodeId>(i);
    node.spec.hostname =
        cluster::default_hostname(static_cast<cluster::NodeId>(i));
    node.spec.switch_id = static_cast<std::int32_t>(i / kBlockNodes);
    node.spec.core_count = 8;
    node.spec.cpu_freq_ghz = 2.8;
    node.spec.total_mem_gb = 16.0;
    node.valid = true;
    node.sample_time = 0.0;
    const double load = rng.uniform(0.0, 6.0);
    node.cpu_load = load;
    node.cpu_load_avg = {load, load, load};
    const double util = rng.uniform(0.0, 1.0);
    node.cpu_util = util;
    node.cpu_util_avg = {util, util, util};
    const double flow = rng.uniform(0.0, 500.0);
    node.net_flow_mbps = flow;
    node.net_flow_avg = {flow, flow, flow};
    node.mem_used_gb = rng.uniform(1.0, 12.0);
    const double avail = 16.0 - node.mem_used_gb;
    node.mem_avail_avg = {avail, avail, avail};
    node.users = static_cast<int>(rng.uniform_int(0, 5));
  }
  return snap;
}

struct HierSetup {
  std::shared_ptr<const monitor::ClusterSnapshot> snapshot;
  std::shared_ptr<const ProceduralPairSource> source;
  std::shared_ptr<core::TiledPairState> tiles;
  core::PreparedSnapshot prepared;
};

// Hand-assembled tiled epoch: the same fields PreparedBuilder::build()
// publishes, with tile aggregates and canonical scalars computed in one
// pass over the procedural source. Cached per V — setup is O(V²) time (a
// hash per pair) but O(G² + V) memory.
const HierSetup& hier_setup(std::size_t v) {
  static std::map<std::size_t, HierSetup>* cache =
      new std::map<std::size_t, HierSetup>();
  const auto it = cache->find(v);
  if (it != cache->end()) {
    return it->second;
  }

  HierSetup s;
  s.snapshot = netless_snapshot(v, 42);
  s.source = std::make_shared<ProceduralPairSource>(0x746c6573ULL);

  const core::AllocationRequest request = standard_request(32);
  core::PreparedSnapshot& p = s.prepared;
  p.snapshot = s.snapshot;
  p.profile = core::RequestProfile::of(request);
  p.version = s.snapshot->version;
  p.usable.resize(v);
  std::iota(p.usable.begin(), p.usable.end(), cluster::NodeId{0});
  p.cl = core::rescale_unit_mean(
      core::compute_loads(*s.snapshot, p.usable, p.profile.compute_weights));
  p.pc = core::effective_process_counts(*s.snapshot, p.usable, p.profile.ppn);
  p.pos_of.assign(v, -1);
  for (std::size_t i = 0; i < v; ++i) {
    p.pos_of[i] = static_cast<std::int32_t>(i);
  }
  double load_sum = 0.0;
  double core_sum = 0.0;
  for (const cluster::NodeId id : p.usable) {
    const monitor::NodeSnapshot& node =
        s.snapshot->nodes[static_cast<std::size_t>(id)];
    load_sum += node.cpu_load_avg.one_min;
    core_sum += static_cast<double>(node.spec.core_count);
  }
  p.load_per_core = core_sum > 0.0 ? load_sum / core_sum : 0.0;
  p.effective_capacity = 0;
  for (const int c : p.pc) p.effective_capacity += c;

  util::BlockPartition part = util::BlockPartition::fixed(v, kBlockNodes);
  std::vector<double> tile_lat(part.tile_count(), 0.0);
  std::vector<double> tile_comp(part.tile_count(), 0.0);
  std::vector<std::uint64_t> tile_pairs(part.tile_count(), 0);
  double lat_sum = 0.0;
  double comp_sum = 0.0;
  for (std::size_t i = 0; i < v; ++i) {
    const std::size_t bi = part.block_of(i);
    for (std::size_t j = i + 1; j < v; ++j) {
      const core::PairSource::Raw raw =
          s.source->read(p.usable[i], p.usable[j]);
      const std::size_t t = part.tile_index(bi, part.block_of(j));
      tile_lat[t] += raw.lat;
      tile_comp[t] += raw.comp;
      ++tile_pairs[t];
      lat_sum += raw.lat;
      comp_sum += raw.comp;
    }
  }
  const std::size_t pairs = v * (v - 1) / 2;

  s.tiles = std::make_shared<core::TiledPairState>();
  s.tiles->partition = part;
  s.tiles->weights = p.profile.network_weights;
  s.tiles->scalars = core::detail::compute_nl_scalars(
      lat_sum, comp_sum, /*lat_missing=*/0, /*comp_missing=*/0, pairs,
      p.profile.network_weights);
  s.tiles->nodes = p.usable;
  s.tiles->source = s.source;
  s.tiles->tiles.resize(part.tile_count());
  for (std::size_t t = 0; t < part.tile_count(); ++t) {
    const double n = static_cast<double>(tile_pairs[t]);
    s.tiles->tiles[t] = {tile_pairs[t] > 0 ? tile_lat[t] / n : 0.0,
                         tile_pairs[t] > 0 ? tile_comp[t] / n : 0.0,
                         tile_pairs[t]};
  }
  p.tiles = s.tiles;
  p.nl = nullptr;  // above dense_nl_limit: decides go through the tiles

  return cache->emplace(v, std::move(s)).first->second;
}

// Steady-state serving: many decides against one published epoch, tile
// cache warm after the first. This is the headline number the acceptance
// bar compares against BM_FlatDecide/1024.
void BM_TwoPhaseDecide(benchmark::State& state) {
  const auto v = static_cast<std::size_t>(state.range(0));
  const HierSetup& s = hier_setup(v);
  const core::AllocationRequest request = standard_request(32);
  core::HierarchicalOptions options;
  options.two_phase_min_nodes = 0;  // prune whenever G > 1
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::allocate_two_phase(s.prepared, request, options));
  }
  core::HierStats hier;
  core::allocate_two_phase(s.prepared, request, options,
                           core::GenerationOptions{}, nullptr, &hier);
  state.counters["groups"] = static_cast<double>(hier.groups);
  state.counters["pool_nodes"] = static_cast<double>(hier.pool_nodes);
  state.counters["pair_state_MB"] =
      static_cast<double>(s.tiles->memory_bytes()) / (1024.0 * 1024.0);
  state.counters["dense_MB"] =
      static_cast<double>(v * v * sizeof(double)) / (1024.0 * 1024.0);
  state.SetComplexityN(static_cast<std::int64_t>(v));
}
BENCHMARK(BM_TwoPhaseDecide)->Arg(1024)->Arg(4096)->Arg(16384);

// First decide against a freshly published epoch: the tile cache starts
// cold, so this includes materializing the chosen blocks' tiles from the
// pair source (the per-epoch one-off the warm bench amortizes away).
void BM_TwoPhaseDecideColdTiles(benchmark::State& state) {
  const auto v = static_cast<std::size_t>(state.range(0));
  const HierSetup& s = hier_setup(v);
  const core::AllocationRequest request = standard_request(32);
  core::HierarchicalOptions options;
  options.two_phase_min_nodes = 0;
  core::PreparedSnapshot prepared = s.prepared;
  for (auto _ : state) {
    state.PauseTiming();
    auto fresh = std::make_shared<core::TiledPairState>();
    fresh->partition = s.tiles->partition;
    fresh->weights = s.tiles->weights;
    fresh->tiles = s.tiles->tiles;
    fresh->scalars = s.tiles->scalars;
    fresh->nodes = s.tiles->nodes;
    fresh->source = s.tiles->source;
    prepared.tiles = std::move(fresh);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        core::allocate_two_phase(prepared, request, options));
  }
}
BENCHMARK(BM_TwoPhaseDecideColdTiles)->Arg(1024)->Arg(4096)->Arg(16384);

// Monitor churn against the tiled accumulators: swap one pair's
// contribution and re-derive the scalars — what a SnapshotDelta apply pays
// per dirty pair in tiled mode.
void BM_TilePatch(benchmark::State& state) {
  const auto v = static_cast<std::size_t>(state.range(0));
  struct PatchSetup {
    std::shared_ptr<const ProceduralPairSource> source;
    std::vector<cluster::NodeId> nodes;
    core::detail::TiledNlState state;
  };
  static std::map<std::size_t, std::unique_ptr<PatchSetup>>* cache =
      new std::map<std::size_t, std::unique_ptr<PatchSetup>>();
  auto it = cache->find(v);
  if (it == cache->end()) {
    auto setup = std::make_unique<PatchSetup>();
    setup->source = std::make_shared<ProceduralPairSource>(0x746c6573ULL);
    setup->nodes.resize(v);
    std::iota(setup->nodes.begin(), setup->nodes.end(), cluster::NodeId{0});
    setup->state.full_build(*setup->source, setup->nodes,
                            util::BlockPartition::fixed(v, kBlockNodes),
                            core::NetworkLoadWeights{});
    it = cache->emplace(v, std::move(setup)).first;
  }
  PatchSetup& ps = *it->second;
  std::size_t k = 0;
  for (auto _ : state) {
    // Identical old/new source: the patch does its full read-sub-read-add
    // work while the accumulators stay exact across iterations.
    const std::size_t i = k % (v - 1);
    const std::size_t j = i + 1 + (mix64(k) % (v - i - 1));
    ps.state.patch_pair(*ps.source, *ps.source, ps.nodes, i, j);
    ps.state.refresh_dirty();
    ++k;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TilePatch)->Arg(1024)->Arg(16384);

// Reference row for the acceptance bar: the dense flat path at V=1024,
// same shape as micro_allocator's BM_FullAllocation/1024.
monitor::ClusterSnapshot dense_snapshot(int n, std::uint64_t seed) {
  sim::Rng rng(seed);
  monitor::ClusterSnapshot snap;
  snap.version = (seed << 16) | static_cast<std::uint64_t>(n);
  snap.livehosts.assign(static_cast<std::size_t>(n), true);
  snap.nodes.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& node = snap.nodes[static_cast<std::size_t>(i)];
    node.spec.id = i;
    node.spec.hostname = cluster::default_hostname(i);
    node.spec.core_count = rng.chance(0.5) ? 8 : 12;
    node.spec.cpu_freq_ghz = node.spec.core_count == 8 ? 2.8 : 4.6;
    node.spec.total_mem_gb = 16.0;
    node.valid = true;
    node.sample_time = 0.0;
    const double load = rng.uniform(0.0, 6.0);
    node.cpu_load = load;
    node.cpu_load_avg = {load, load, load};
    const double util = rng.uniform(0.0, 1.0);
    node.cpu_util = util;
    node.cpu_util_avg = {util, util, util};
    const double flow = rng.uniform(0.0, 500.0);
    node.net_flow_mbps = flow;
    node.net_flow_avg = {flow, flow, flow};
    node.mem_used_gb = rng.uniform(1.0, 12.0);
    const double avail = 16.0 - node.mem_used_gb;
    node.mem_avail_avg = {avail, avail, avail};
    node.users = static_cast<int>(rng.uniform_int(0, 5));
  }
  snap.net.latency_us = monitor::make_matrix(static_cast<std::size_t>(n), 0.0);
  snap.net.latency_5min_us =
      monitor::make_matrix(static_cast<std::size_t>(n), 0.0);
  snap.net.bandwidth_mbps =
      monitor::make_matrix(static_cast<std::size_t>(n), 0.0);
  snap.net.peak_mbps = monitor::make_matrix(static_cast<std::size_t>(n), 0.0);
  for (int u = 0; u < n; ++u) {
    for (int w = u + 1; w < n; ++w) {
      const double lat = rng.uniform(50.0, 600.0);
      const double bw = rng.uniform(100.0, 1000.0);
      const auto uu = static_cast<std::size_t>(u);
      const auto ww = static_cast<std::size_t>(w);
      snap.net.latency_us[uu][ww] = snap.net.latency_us[ww][uu] = lat;
      snap.net.latency_5min_us[uu][ww] = snap.net.latency_5min_us[ww][uu] =
          lat;
      snap.net.bandwidth_mbps[uu][ww] = snap.net.bandwidth_mbps[ww][uu] = bw;
      snap.net.peak_mbps[uu][ww] = snap.net.peak_mbps[ww][uu] = 1000.0;
    }
  }
  return snap;
}

void BM_FlatDecide(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto snap = dense_snapshot(n, 42);
  const auto request = standard_request(32);
  core::NetworkLoadAwareAllocator allocator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.allocate(snap, request));
  }
  state.counters["dense_MB"] = static_cast<double>(
                                   static_cast<std::size_t>(n) *
                                   static_cast<std::size_t>(n) *
                                   sizeof(double)) /
                               (1024.0 * 1024.0);
}
BENCHMARK(BM_FlatDecide)->Arg(1024);

}  // namespace

#include "bench_main.h"
NLARM_BENCHMARK_MAIN()
