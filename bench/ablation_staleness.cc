// Ablation: how much does deciding on *monitored* (noisy, stale) data cost
// versus deciding on ground truth?
//
// The paper's allocator reads NFS records written seconds-to-minutes
// earlier. This ablation allocates twice from the same instant — once from
// the monitor snapshot, once from a perfect ground-truth snapshot — and
// executes both, quantifying the fidelity gap of the monitoring pipeline.
#include <iostream>

#include "apps/synthetic.h"
#include "exp/experiment.h"
#include "exp/report.h"
#include "monitor/snapshot.h"
#include "util/args.h"
#include "util/strings.h"
#include "util/table.h"

using namespace nlarm;

int main(int argc, char** argv) {
  util::ArgParser parser(
      "Ablation: allocation quality on monitored vs ground-truth data.",
      {{"trials", "independent testbeds (default 10)"},
       {"seed", "RNG seed (default 42)"}});
  if (!parser.parse(argc, argv)) return 0;
  const int trials = static_cast<int>(parser.get_long("trials", 10));
  const auto seed = static_cast<std::uint64_t>(parser.get_long("seed", 42));

  std::vector<double> monitored_times;
  std::vector<double> truth_times;
  int same_choice = 0;

  for (int trial = 0; trial < trials; ++trial) {
    exp::Testbed::Options options;
    options.seed = seed + static_cast<std::uint64_t>(trial) * 31;
    options.scenario = workload::ScenarioKind::kHotspot;
    auto testbed = exp::Testbed::make(options);

    core::AllocationRequest request;
    request.nprocs = 24;
    request.ppn = 4;
    request.job = core::JobWeights{0.3, 0.7};

    const monitor::ClusterSnapshot monitored = testbed->snapshot();
    const monitor::ClusterSnapshot truth = monitor::make_ground_truth_snapshot(
        testbed->cluster(), testbed->network(), testbed->sim().now());

    core::NetworkLoadAwareAllocator allocator_a;
    core::NetworkLoadAwareAllocator allocator_b;
    const core::Allocation from_monitored =
        allocator_a.allocate(monitored, request);
    const core::Allocation from_truth = allocator_b.allocate(truth, request);
    if (from_monitored.nodes == from_truth.nodes) ++same_choice;

    const auto app = apps::make_comm_bound_profile(24, 30);
    // Price both placements under identical (frozen) true conditions.
    monitored_times.push_back(
        testbed->runtime()
            .estimate(app,
                      mpisim::Placement::from_allocation(from_monitored))
            .total_s);
    truth_times.push_back(
        testbed->runtime()
            .estimate(app, mpisim::Placement::from_allocation(from_truth))
            .total_s);
  }

  const double mean_monitored = util::mean(monitored_times);
  const double mean_truth = util::mean(truth_times);
  const double penalty = (mean_monitored - mean_truth) / mean_truth;

  std::cout << "=== Ablation: monitored vs ground-truth allocation inputs "
               "===\n\n";
  util::TextTable table({"input", "mean exec time (s)"});
  table.add_row({"monitored snapshot (daemons, noise, staleness)",
                 util::format("%.3f", mean_monitored)});
  table.add_row(
      {"ground truth (oracle)", util::format("%.3f", mean_truth)});
  table.print(std::cout);
  std::cout << util::format(
      "\nidentical node choice in %d/%d trials; monitoring penalty %.1f%%\n\n",
      same_choice, trials, penalty * 100);

  std::vector<exp::ShapeCheck> checks;
  checks.push_back(exp::check(
      "monitored decisions are close to oracle (penalty < 15%)",
      penalty < 0.15, util::format("%.1f%%", penalty * 100)));
  checks.push_back(exp::check(
      "monitored pipeline usually picks a comparable group (>= half the "
      "trials within 5% of oracle time)",
      [&] {
        int close = 0;
        for (int i = 0; i < trials; ++i) {
          if (monitored_times[static_cast<std::size_t>(i)] <=
              truth_times[static_cast<std::size_t>(i)] * 1.05) {
            ++close;
          }
        }
        return close * 2 >= trials;
      }(),
      ""));
  exp::print_shape_checks(std::cout, checks);
  return 0;
}
