// Ablation: sensitivity of the allocator to the α/β split (Eq. 4).
//
// §5 sets (α, β) empirically per application; §6 calls choosing them "a
// challenging problem". This ablation sweeps α for a communication-heavy
// and a compute-heavy job and reports mean execution time per setting —
// the minimum should sit at low α for the former and high α for the latter.
#include <iostream>

#include "apps/synthetic.h"
#include "exp/experiment.h"
#include "exp/report.h"
#include "util/args.h"
#include "util/strings.h"
#include "util/table.h"

using namespace nlarm;

namespace {

double mean_time_for_alpha(double alpha, bool comm_heavy, std::uint64_t seed,
                           int reps) {
  exp::Testbed::Options options;
  options.seed = seed;
  options.scenario = workload::ScenarioKind::kHotspot;
  auto testbed = exp::Testbed::make(options);

  core::AllocationRequest request;
  request.nprocs = 24;
  request.ppn = 4;
  request.job = core::JobWeights{alpha, 1.0 - alpha};
  core::NetworkLoadAwareAllocator allocator;

  const auto app = comm_heavy ? apps::make_comm_bound_profile(24, 30)
                              : apps::make_compute_bound_profile(24, 30);
  std::vector<double> times;
  for (int rep = 0; rep < reps; ++rep) {
    const core::Allocation alloc =
        allocator.allocate(testbed->snapshot(), request);
    const auto result = testbed->runtime().run(
        testbed->sim(), app, mpisim::Placement::from_allocation(alloc));
    times.push_back(result.total_s);
    testbed->sim().run_until(testbed->sim().now() + 30.0);
  }
  return util::mean(times);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser(
      "Ablation: execution time as a function of the alpha/beta job weights.",
      {{"reps", "repetitions per alpha (default 3)"},
       {"seed", "RNG seed (default 42)"}});
  if (!parser.parse(argc, argv)) return 0;
  const int reps = static_cast<int>(parser.get_long("reps", 3));
  const auto seed = static_cast<std::uint64_t>(parser.get_long("seed", 42));

  const std::vector<double> alphas{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  std::cout << "=== Ablation: alpha/beta sensitivity (hotspot scenario) "
               "===\n\n";
  util::TextTable table({"alpha (compute wt)", "comm-heavy app (s)",
                         "compute-heavy app (s)"});
  std::vector<double> comm_times;
  std::vector<double> comp_times;
  for (double alpha : alphas) {
    const double comm = mean_time_for_alpha(alpha, true, seed, reps);
    const double comp = mean_time_for_alpha(alpha, false, seed + 1, reps);
    comm_times.push_back(comm);
    comp_times.push_back(comp);
    table.add_row({util::format("%.1f", alpha), util::format("%.3f", comm),
                   util::format("%.3f", comp)});
  }
  table.print(std::cout);
  std::cout << "\n";

  // Where does each app run fastest?
  const auto comm_best = static_cast<std::size_t>(
      std::min_element(comm_times.begin(), comm_times.end()) -
      comm_times.begin());
  const auto comp_best = static_cast<std::size_t>(
      std::min_element(comp_times.begin(), comp_times.end()) -
      comp_times.begin());

  std::vector<exp::ShapeCheck> checks;
  checks.push_back(exp::check(
      "comm-heavy app prefers network-weighted allocation (best alpha <= "
      "0.4)",
      alphas[comm_best] <= 0.4,
      util::format("best alpha %.1f", alphas[comm_best])));
  checks.push_back(exp::check(
      "compute-heavy app tolerates (or prefers) compute-weighted allocation "
      "(best alpha >= comm-heavy's)",
      alphas[comp_best] >= alphas[comm_best],
      util::format("best alpha %.1f vs %.1f", alphas[comp_best],
                   alphas[comm_best])));
  checks.push_back(exp::check(
      "pure-compute weighting hurts the comm-heavy app vs best",
      comm_times.back() >= comm_times[comm_best],
      util::format("alpha=1: %.3f s, best %.3f s", comm_times.back(),
                   comm_times[comm_best])));
  exp::print_shape_checks(std::cout, checks);
  return 0;
}
