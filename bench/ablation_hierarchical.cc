// Ablation: flat (paper) vs hierarchical (the paper's §3.3.2/§6 scaling
// sketch) allocation — decision quality and decision latency as the cluster
// grows. The hierarchical variant should be drastically cheaper at large V
// while conceding little execution time at the paper's scale.
#include <chrono>
#include <iostream>

#include "apps/synthetic.h"
#include "core/hierarchical.h"
#include "core/prepared.h"
#include "exp/experiment.h"
#include "exp/report.h"
#include "util/args.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

using namespace nlarm;

namespace {

struct Row {
  int nodes = 0;
  double flat_ms = 0.0;
  double hier_ms = 0.0;
  double two_phase_ms = 0.0;
  double flat_exec_s = 0.0;
  double hier_exec_s = 0.0;
  double two_phase_exec_s = 0.0;
};

Row run_scale(int fast_nodes, int slow_nodes, int switches,
              std::uint64_t seed, int reps) {
  exp::Testbed::Options options;
  options.seed = seed;
  options.scenario = workload::ScenarioKind::kHotspot;
  options.cluster.fast_nodes = fast_nodes;
  options.cluster.slow_nodes = slow_nodes;
  options.cluster.switches = switches;
  // Monitoring a big cluster is expensive in wall-clock; trim the warm-up.
  options.warmup_seconds = 700.0;
  auto testbed = exp::Testbed::make(options);

  core::AllocationRequest request;
  request.nprocs = 32;
  request.ppn = 4;
  request.job = core::JobWeights{0.3, 0.7};
  const auto app = apps::make_comm_bound_profile(32, 20);

  Row row;
  row.nodes = fast_nodes + slow_nodes;
  core::NetworkLoadAwareAllocator flat;
  core::HierarchicalAllocator hier;
  // The tiled serving path: the monitor thread maintains a tiled
  // PreparedBuilder (dense_nl_limit=0 forces tile-only epochs) and decide()
  // runs the two-phase hot path. Builder maintenance happens outside the
  // timed window — it is the refresh cadence's cost, not the decide's.
  core::PreparedBuilder builder(core::RequestProfile::of(request),
                                core::TilingOptions{/*dense_nl_limit=*/0,
                                                    /*block_size=*/0});
  core::HierarchicalOptions two_phase;
  two_phase.two_phase_min_nodes = 0;  // prune whenever there are > 1 groups
  for (int rep = 0; rep < reps; ++rep) {
    const monitor::ClusterSnapshot snap = testbed->snapshot();
    builder.rebuild(std::make_shared<const monitor::ClusterSnapshot>(snap));
    const auto epoch = builder.build();

    const auto t0 = std::chrono::steady_clock::now();
    const core::Allocation flat_alloc = flat.allocate(snap, request);
    const auto t1 = std::chrono::steady_clock::now();
    const core::Allocation hier_alloc = hier.allocate(snap, request);
    const auto t2 = std::chrono::steady_clock::now();
    const core::Allocation two_phase_alloc =
        core::allocate_two_phase(*epoch, request, two_phase);
    const auto t3 = std::chrono::steady_clock::now();

    row.flat_ms +=
        std::chrono::duration<double, std::milli>(t1 - t0).count() / reps;
    row.hier_ms +=
        std::chrono::duration<double, std::milli>(t2 - t1).count() / reps;
    row.two_phase_ms +=
        std::chrono::duration<double, std::milli>(t3 - t2).count() / reps;
    row.flat_exec_s +=
        testbed->runtime()
            .estimate(app, mpisim::Placement::from_allocation(flat_alloc))
            .total_s /
        reps;
    row.hier_exec_s +=
        testbed->runtime()
            .estimate(app, mpisim::Placement::from_allocation(hier_alloc))
            .total_s /
        reps;
    row.two_phase_exec_s +=
        testbed->runtime()
            .estimate(app,
                      mpisim::Placement::from_allocation(two_phase_alloc))
            .total_s /
        reps;
    testbed->sim().run_until(testbed->sim().now() + 30.0);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser(
      "Ablation: flat vs hierarchical allocation at growing cluster sizes.",
      {{"reps", "allocations per size (default 3)"},
       {"seed", "RNG seed (default 42)"},
       {"full", "include the 480-node point"}});
  if (!parser.parse(argc, argv)) return 0;
  const int reps = static_cast<int>(parser.get_long("reps", 3));
  const auto seed = static_cast<std::uint64_t>(parser.get_long("seed", 42));

  std::vector<Row> rows;
  rows.push_back(run_scale(40, 20, 4, seed, reps));      // the paper's 60
  rows.push_back(run_scale(80, 40, 8, seed + 1, reps));  // 120
  rows.push_back(run_scale(160, 80, 16, seed + 2, reps));  // 240
  if (parser.get_bool("full")) {
    rows.push_back(run_scale(320, 160, 32, seed + 3, reps));  // 480
  }

  std::cout << "=== Ablation: flat vs hierarchical allocation ===\n\n";
  util::TextTable table({"nodes", "flat (ms)", "hierarchical (ms)",
                         "two-phase (ms)", "speedup", "flat exec (s)",
                         "hier exec (s)", "2p exec (s)", "exec penalty"});
  for (const Row& row : rows) {
    table.add_row(
        {util::format("%d", row.nodes), util::format("%.2f", row.flat_ms),
         util::format("%.2f", row.hier_ms),
         util::format("%.2f", row.two_phase_ms),
         util::format("%.1fx", row.flat_ms / std::max(row.hier_ms, 1e-9)),
         util::format("%.3f", row.flat_exec_s),
         util::format("%.3f", row.hier_exec_s),
         util::format("%.3f", row.two_phase_exec_s),
         util::format("%+.1f%%", (row.hier_exec_s / row.flat_exec_s - 1.0) *
                                     100.0)});
  }
  table.print(std::cout);
  std::cout << "\n";

  const Row& largest = rows.back();
  const Row& paper_scale = rows.front();
  std::vector<exp::ShapeCheck> checks;
  checks.push_back(exp::check(
      "hierarchical is faster to decide at the largest size",
      largest.hier_ms < largest.flat_ms,
      util::format("%.2f vs %.2f ms", largest.hier_ms, largest.flat_ms)));
  checks.push_back(exp::check(
      "hierarchical speedup grows with cluster size",
      largest.flat_ms / std::max(largest.hier_ms, 1e-9) >
          paper_scale.flat_ms / std::max(paper_scale.hier_ms, 1e-9),
      ""));
  checks.push_back(exp::check(
      "two-phase decide beats the flat path at the largest size",
      largest.two_phase_ms < largest.flat_ms,
      util::format("%.2f vs %.2f ms", largest.two_phase_ms,
                   largest.flat_ms)));
  checks.push_back(exp::check(
      "two-phase execution-time penalty is small (< 25% mean)",
      [&] {
        double penalty = 0.0;
        for (const Row& row : rows) {
          penalty += row.two_phase_exec_s / row.flat_exec_s - 1.0;
        }
        return penalty / static_cast<double>(rows.size()) < 0.25;
      }(),
      ""));
  checks.push_back(exp::check(
      "execution-time penalty of the hierarchy is small (< 25% mean)",
      [&] {
        double penalty = 0.0;
        for (const Row& row : rows) {
          penalty += row.hier_exec_s / row.flat_exec_s - 1.0;
        }
        return penalty / static_cast<double>(rows.size()) < 0.25;
      }(),
      ""));
  exp::print_shape_checks(std::cout, checks);
  return 0;
}
