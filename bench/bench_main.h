// Shared main() for the google-benchmark microbenches, replacing the stock
// benchmark_main so runs can opt into an nlarm metrics dump:
//
//   micro_allocator --metrics-out=metrics.prom   (or NLARM_METRICS_OUT=...)
//
// writes the full Prometheus exposition of the global registry after the
// benchmarks finish, letting EXPERIMENTS.md runs correlate wall-clock
// numbers with cache-hit rates and stage histograms. Also silences nlarm
// logging by default (NLARM_LOG_LEVEL overrides) so bench output stays
// machine-parseable.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/catalog.h"
#include "obs/metrics.h"
#include "util/logging.h"

inline int nlarm_benchmark_main(int argc, char** argv) {
  std::string metrics_out;
  if (const char* env = std::getenv("NLARM_METRICS_OUT")) metrics_out = env;

  // Strip --metrics-out before google-benchmark sees (and rejects) it.
  std::vector<char*> args;
  const std::string prefix = "--metrics-out=";
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      metrics_out = std::string(argv[i]).substr(prefix.size());
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());

  try {
    const char* level = std::getenv("NLARM_LOG_LEVEL");
    nlarm::util::set_log_level(level ? nlarm::util::parse_log_level(level)
                                     : nlarm::util::LogLevel::kOff);
  } catch (...) {
    nlarm::util::set_log_level(nlarm::util::LogLevel::kOff);
  }

  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  // The stock "library_build_type" context key reports how the *benchmark
  // library* was compiled (debug on most distro packages); this key reports
  // how nlarm itself was compiled, and the CI bench smokes gate on it so
  // committed BENCH_*.json files can never come from a debug build.
#ifdef NDEBUG
  benchmark::AddCustomContext("nlarm_build_type", "release");
#else
  benchmark::AddCustomContext("nlarm_build_type", "debug");
#endif
  benchmark::RunSpecifiedBenchmarks();

  if (!metrics_out.empty()) {
    nlarm::obs::metrics::register_all();
    std::ofstream out(metrics_out);
    if (!out) {
      std::cerr << "cannot write metrics to " << metrics_out << "\n";
      return 1;
    }
    out << nlarm::obs::MetricsRegistry::global().prometheus_text();
    std::cerr << "metrics written to " << metrics_out << "\n";
  }
  return 0;
}

#define NLARM_BENCHMARK_MAIN()                  \
  int main(int argc, char** argv) {             \
    return nlarm_benchmark_main(argc, argv);    \
  }
