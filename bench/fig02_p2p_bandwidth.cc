// Figure 2: "P2P Bandwidth variation across node pairs".
//
// (a) heatmap of measured P2P bandwidth between 30 nodes, averaged over ten
//     measurement sweeps — nodes numbered by physical proximity should show
//     brighter (higher-bandwidth) blocks near the diagonal;
// (b) bandwidth of three node pairs sampled over several hours — each
//     fluctuates around a base value set by its topology.
#include <cstdio>
#include <iostream>

#include "cluster/cluster.h"
#include "exp/report.h"
#include "net/flows.h"
#include "net/network_model.h"
#include "sim/simulation.h"
#include "util/args.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"
#include "workload/scenario.h"

using namespace nlarm;

int main(int argc, char** argv) {
  util::ArgParser parser(
      "Figure 2 reproduction: P2P bandwidth across pairs and time.",
      {{"nodes", "cluster size (default 30, as in Figure 2(a))"},
       {"sweeps", "measurement sweeps to average (default 10)"},
       {"hours", "hours for the time-series panel (default 6)"},
       {"seed", "RNG seed (default 42)"}});
  if (!parser.parse(argc, argv)) return 0;
  const int node_count = static_cast<int>(parser.get_long("nodes", 30));
  const int sweeps = static_cast<int>(parser.get_long("sweeps", 10));
  const double hours = parser.get_double("hours", 6.0);
  const auto seed = static_cast<std::uint64_t>(parser.get_long("seed", 42));

  // 30 nodes over 4 chained switches, like the left half of the testbed.
  cluster::IitkClusterOptions cluster_options;
  cluster_options.fast_nodes = node_count;
  cluster_options.slow_nodes = 0;
  cluster::Cluster cluster = cluster::make_iitk_cluster(cluster_options);
  net::FlowSet flows;
  net::NetworkModel network(cluster, flows);
  sim::Simulation sim(seed);
  workload::ScenarioOptions scenario_options;
  scenario_options.seed = seed;
  workload::Scenario scenario(cluster, flows, network, scenario_options);
  scenario.attach(sim);
  sim.run_until(900.0);  // let traffic develop

  sim::Rng probe_rng(seed ^ 0xbeef);

  // ---- Panel (a): pairwise bandwidth averaged over `sweeps` sweeps ----
  std::vector<std::vector<double>> bw(
      node_count, std::vector<double>(node_count, 0.0));
  for (int s = 0; s < sweeps; ++s) {
    for (int u = 0; u < node_count; ++u) {
      for (int v = 0; v < node_count; ++v) {
        if (u == v) continue;
        bw[u][v] += network.measure_bandwidth_mbps(u, v, probe_rng) /
                    static_cast<double>(sweeps);
      }
    }
    sim.run_until(sim.now() + 120.0);  // conditions drift between sweeps
  }
  for (int u = 0; u < node_count; ++u) bw[u][u] = 0.0;

  std::cout << "=== Figure 2(a): P2P bandwidth heatmap (" << node_count
            << " nodes, avg of " << sweeps << " sweeps) ===\n";
  std::cout << "light = high available bandwidth, dark = low\n\n";
  util::HeatmapOptions heat;
  heat.invert = true;  // high bandwidth → light
  std::cout << util::render_heatmap(bw, heat) << "\n";

  // Proximity statistics: mean bandwidth by hop count.
  std::vector<util::StreamingStats> by_hops(5);
  for (int u = 0; u < node_count; ++u) {
    for (int v = u + 1; v < node_count; ++v) {
      const int hops = cluster.topology().hops(u, v);
      by_hops[static_cast<std::size_t>(hops)].add(bw[u][v]);
    }
  }
  util::TextTable hop_table({"hops", "pairs", "mean bandwidth (Mbit/s)"});
  for (int h = 1; h <= 4; ++h) {
    const auto& stats = by_hops[static_cast<std::size_t>(h)];
    if (stats.count() == 0) continue;
    hop_table.add_row({util::format("%d", h),
                       util::format("%zu", stats.count()),
                       util::format("%.1f", stats.mean())});
  }
  hop_table.print(std::cout);

  // ---- Panel (b): three pairs over time ----
  struct TrackedPair {
    cluster::NodeId u, v;
    std::vector<double> samples;
  };
  // One same-switch pair, one adjacent-switch pair, one distant pair.
  std::vector<TrackedPair> pairs{{0, 3, {}},
                                 {2, node_count / 3 + 1, {}},
                                 {1, node_count - 1, {}}};
  const double step = 300.0;  // the paper's 5-minute bandwidth period
  const int samples = static_cast<int>(hours * 3600.0 / step);
  std::vector<double> sample_hours;
  for (int i = 0; i < samples; ++i) {
    sim.run_until(sim.now() + step);
    sample_hours.push_back(sim.now() / 3600.0);
    for (auto& pair : pairs) {
      pair.samples.push_back(
          network.measure_bandwidth_mbps(pair.u, pair.v, probe_rng));
    }
  }

  std::cout << "\n=== Figure 2(b): P2P bandwidth of three pairs across time "
               "===\n\n";
  std::cout << "hour";
  for (const auto& pair : pairs) {
    std::cout << "," << cluster.node(pair.u).spec.hostname << "-"
              << cluster.node(pair.v).spec.hostname;
  }
  std::cout << "\n";
  for (int i = 0; i < samples; ++i) {
    std::printf("%.2f", sample_hours[static_cast<std::size_t>(i)]);
    for (const auto& pair : pairs) {
      std::printf(",%.1f", pair.samples[static_cast<std::size_t>(i)]);
    }
    std::printf("\n");
  }

  std::cout << "\nPer-pair statistics:\n";
  std::vector<double> pair_means;
  std::vector<double> pair_covs;
  for (const auto& pair : pairs) {
    const util::Summary s = util::summarize(pair.samples);
    pair_means.push_back(s.mean);
    pair_covs.push_back(s.cov);
    std::printf("  %s-%s (%d hops): mean %.1f Mbit/s, CoV %.3f\n",
                cluster.node(pair.u).spec.hostname.c_str(),
                cluster.node(pair.v).spec.hostname.c_str(),
                cluster.topology().hops(pair.u, pair.v), s.mean, s.cov);
  }

  std::vector<exp::ShapeCheck> checks;
  const bool proximity_ordered =
      by_hops[1].mean() > by_hops[2].mean() &&
      by_hops[2].mean() >= by_hops[3].mean();
  checks.push_back(exp::check(
      "closer proximity → higher mean bandwidth (hops 1 > 2 >= 3)",
      proximity_ordered,
      util::format("%.0f / %.0f / %.0f Mbit/s", by_hops[1].mean(),
                   by_hops[2].mean(), by_hops[3].mean())));
  bool variation = true;
  for (double cov : pair_covs) variation = variation && cov > 0.02;
  checks.push_back(exp::check(
      "every tracked pair fluctuates over time (CoV > 0.02)", variation,
      util::format("CoVs %.3f / %.3f / %.3f", pair_covs[0], pair_covs[1],
                   pair_covs[2])));
  checks.push_back(exp::check(
      "pairs differ in their base bandwidth (topology-determined)",
      util::max_value(pair_means) > 1.05 * util::min_value(pair_means),
      util::format("means %.0f / %.0f / %.0f", pair_means[0], pair_means[1],
                   pair_means[2])));
  std::cout << "\n";
  exp::print_shape_checks(std::cout, checks);
  return 0;
}
