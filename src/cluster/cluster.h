// A cluster = nodes + topology, plus factories for the paper's testbed.
//
// The Cluster owns the ground-truth node state. Workload generators mutate
// it; the Resource Monitor samples it; the allocator never touches it
// directly.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/node.h"
#include "cluster/topology.h"

namespace nlarm::cluster {

class Cluster {
 public:
  Cluster(std::vector<Node> nodes, Topology topology);

  int size() const { return static_cast<int>(nodes_.size()); }

  const Node& node(NodeId id) const;
  Node& mutable_node(NodeId id);

  const std::vector<Node>& nodes() const { return nodes_; }
  const Topology& topology() const { return topology_; }

  /// Total logical cores across all nodes.
  int total_cores() const;

  /// NodeId by hostname; throws if unknown.
  NodeId find_hostname(const std::string& hostname) const;

  /// All currently-alive node ids (ground truth; the monitor's livehosts
  /// view may lag this).
  std::vector<NodeId> alive_nodes() const;

 private:
  std::vector<Node> nodes_;
  Topology topology_;
};

/// Parameters for the IITK-like testbed factory.
struct IitkClusterOptions {
  int fast_nodes = 40;          ///< 12-core, 4.6 GHz
  int slow_nodes = 20;          ///< 8-core, 2.8 GHz
  double fast_freq_ghz = 4.6;
  double slow_freq_ghz = 2.8;
  int fast_cores = 12;
  int slow_cores = 8;
  double mem_gb = 16.0;         ///< "most systems have 16 GB memory"
  double uplink_mbps = 1000.0;  ///< Gigabit Ethernet
  /// Inter-switch trunks are modestly aggregated (1.5×GigE): cross-switch
  /// paths are latency- and contention-penalized but not starved.
  double trunk_mbps = 1500.0;
  int switches = 4;             ///< tree of 4 switches
};

/// Builds the paper's evaluation cluster: 40×12-core 4.6 GHz + 20×8-core
/// 2.8 GHz over a 4-switch chain (node numbering follows physical
/// proximity, 1–4 hops, as in §1). Node kinds are interleaved across
/// switches the way a lab grows: earlier switches hold the newer 12-core
/// machines, the last one the 8-core machines.
Cluster make_iitk_cluster(const IitkClusterOptions& options = {});

/// Homogeneous cluster for tests: `node_count` identical nodes spread
/// round-robin over `switch_count` chained switches.
Cluster make_uniform_cluster(int node_count, int switch_count = 1,
                             int cores = 8, double freq_ghz = 3.0,
                             double mem_gb = 16.0,
                             double link_mbps = 1000.0);

}  // namespace nlarm::cluster
