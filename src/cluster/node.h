// Compute-node model: static specification (what `lscpu` and /proc/meminfo
// would report) and dynamic ground-truth state (what the shared cluster's
// other users are doing to the node right now).
#pragma once

#include <cstdint>
#include <string>

namespace nlarm::cluster {

/// Index of a node within its cluster. Dense, 0-based.
using NodeId = std::int32_t;

/// Index of a switch within the topology. Dense, 0-based.
using SwitchId = std::int32_t;

constexpr NodeId kInvalidNode = -1;

/// Static node attributes (Table 1, "maximize" rows).
struct NodeSpec {
  NodeId id = kInvalidNode;
  std::string hostname;
  SwitchId switch_id = 0;
  int core_count = 0;          ///< logical cores
  double cpu_freq_ghz = 0.0;   ///< nominal clock
  double total_mem_gb = 0.0;   ///< physical RAM
};

/// Dynamic ground-truth state of a node. The Resource Monitor *samples*
/// this (with noise and staleness); the allocator only ever sees the
/// sampled values, never this struct directly.
struct NodeDynamics {
  double cpu_load = 0.0;      ///< background runnable-queue length
  /// Runnable processes contributed by brokered MPI jobs (JobFootprint).
  /// Kept separate from cpu_load because the background generators own and
  /// overwrite cpu_load every tick; observers see the sum.
  double job_load = 0.0;
  double cpu_util = 0.0;      ///< fraction of aggregate core time busy, [0,1]
  double mem_used_gb = 0.0;   ///< resident memory in use
  int users = 0;              ///< logged-in user sessions
  double net_flow_mbps = 0.0; ///< node data flow rate (rx+tx), Mbit/s
  bool alive = true;          ///< reachable (LivehostsD pings this)

  /// What `uptime` would report: background + job load.
  double total_load() const { return cpu_load + job_load; }
};

/// A node = spec + current dynamics.
struct Node {
  NodeSpec spec;
  NodeDynamics dyn;

  /// Free memory right now, floored at zero.
  double mem_available_gb() const;

  /// Clamps dynamics to physically meaningful ranges (call after applying
  /// generator deltas).
  void clamp_dynamics();
};

/// Builds the paper's hostname convention ("csews<N>", 1-based).
std::string default_hostname(NodeId id);

}  // namespace nlarm::cluster
