#include "cluster/cluster.h"

#include <algorithm>

#include "util/check.h"

namespace nlarm::cluster {

Cluster::Cluster(std::vector<Node> nodes, Topology topology)
    : nodes_(std::move(nodes)), topology_(std::move(topology)) {
  NLARM_CHECK(static_cast<int>(nodes_.size()) == topology_.node_count())
      << "node list (" << nodes_.size() << ") and topology ("
      << topology_.node_count() << ") disagree";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NLARM_CHECK(nodes_[i].spec.id == static_cast<NodeId>(i))
        << "node " << i << " has id " << nodes_[i].spec.id
        << "; ids must be dense and ordered";
    NLARM_CHECK(nodes_[i].spec.switch_id == topology_.switch_of(
                                                static_cast<NodeId>(i)))
        << "node " << i << " switch id disagrees with topology";
    NLARM_CHECK(nodes_[i].spec.core_count > 0)
        << "node " << i << " has no cores";
  }
}

const Node& Cluster::node(NodeId id) const {
  NLARM_CHECK(id >= 0 && id < size()) << "bad node id " << id;
  return nodes_[id];
}

Node& Cluster::mutable_node(NodeId id) {
  NLARM_CHECK(id >= 0 && id < size()) << "bad node id " << id;
  return nodes_[id];
}

int Cluster::total_cores() const {
  int total = 0;
  for (const Node& n : nodes_) total += n.spec.core_count;
  return total;
}

NodeId Cluster::find_hostname(const std::string& hostname) const {
  for (const Node& n : nodes_) {
    if (n.spec.hostname == hostname) return n.spec.id;
  }
  NLARM_CHECK(false) << "unknown hostname '" << hostname << "'";
}

std::vector<NodeId> Cluster::alive_nodes() const {
  std::vector<NodeId> alive;
  for (const Node& n : nodes_) {
    if (n.dyn.alive) alive.push_back(n.spec.id);
  }
  return alive;
}

Cluster make_iitk_cluster(const IitkClusterOptions& options) {
  NLARM_CHECK(options.fast_nodes >= 0 && options.slow_nodes >= 0 &&
              options.fast_nodes + options.slow_nodes > 0)
      << "cluster needs nodes";
  NLARM_CHECK(options.switches > 0) << "cluster needs switches";

  const int total = options.fast_nodes + options.slow_nodes;
  // Spread nodes over a chain of switches as evenly as possible; the chain
  // reproduces the 1–4 hop proximity structure of the paper's Figure 2(a).
  std::vector<int> per_switch(options.switches, total / options.switches);
  for (int s = 0; s < total % options.switches; ++s) per_switch[s] += 1;

  Topology topo = make_chain_topology(per_switch, options.uplink_mbps,
                                      options.trunk_mbps);

  std::vector<Node> nodes;
  nodes.reserve(total);
  for (NodeId id = 0; id < total; ++id) {
    const bool fast = id < options.fast_nodes;
    Node n;
    n.spec.id = id;
    n.spec.hostname = default_hostname(id);
    n.spec.switch_id = topo.switch_of(id);
    n.spec.core_count = fast ? options.fast_cores : options.slow_cores;
    n.spec.cpu_freq_ghz = fast ? options.fast_freq_ghz : options.slow_freq_ghz;
    n.spec.total_mem_gb = options.mem_gb;
    nodes.push_back(std::move(n));
  }
  return Cluster(std::move(nodes), std::move(topo));
}

Cluster make_uniform_cluster(int node_count, int switch_count, int cores,
                             double freq_ghz, double mem_gb,
                             double link_mbps) {
  NLARM_CHECK(node_count > 0 && switch_count > 0)
      << "need nodes and switches";
  NLARM_CHECK(node_count >= switch_count)
      << "more switches than nodes";
  std::vector<int> per_switch(switch_count, node_count / switch_count);
  for (int s = 0; s < node_count % switch_count; ++s) per_switch[s] += 1;
  Topology topo = make_chain_topology(per_switch, link_mbps, link_mbps);
  std::vector<Node> nodes;
  nodes.reserve(node_count);
  for (NodeId id = 0; id < node_count; ++id) {
    Node n;
    n.spec.id = id;
    n.spec.hostname = default_hostname(id);
    n.spec.switch_id = topo.switch_of(id);
    n.spec.core_count = cores;
    n.spec.cpu_freq_ghz = freq_ghz;
    n.spec.total_mem_gb = mem_gb;
    nodes.push_back(std::move(n));
  }
  return Cluster(std::move(nodes), std::move(topo));
}

}  // namespace nlarm::cluster
