// Switch-tree topology.
//
// The paper's testbed: "a tree-like hierarchical topology with 4 switches.
// Each switch connects 10–15 nodes using Gigabit Ethernet", with node
// numbering by physical proximity spanning 1–4 hops. We model an arbitrary
// tree of switches; each node has an uplink to exactly one switch. The hop
// count between two nodes is the number of switches on their path (1 when
// they share a switch), and the link path is uplink → inter-switch trunks →
// uplink.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/node.h"

namespace nlarm::cluster {

/// Index of a physical link. Links are: one uplink per node (LinkId ==
/// NodeId), then one trunk per switch with a parent (LinkId == node_count +
/// switch index ordered by switch id, skipping the root).
using LinkId = std::int32_t;

struct LinkSpec {
  LinkId id = -1;
  double capacity_mbps = 0.0;
  bool is_trunk = false;
};

class Topology {
 public:
  /// `switch_parent[s]` is the parent switch of s in the tree, or -1 for the
  /// root (exactly one root required). `node_switch[i]` assigns node i to a
  /// switch. Uplink/trunk capacities are in Mbit/s.
  Topology(std::vector<SwitchId> switch_parent,
           std::vector<SwitchId> node_switch, double uplink_mbps,
           double trunk_mbps);

  int node_count() const { return static_cast<int>(node_switch_.size()); }
  int switch_count() const { return static_cast<int>(switch_parent_.size()); }
  int link_count() const { return static_cast<int>(links_.size()); }

  SwitchId switch_of(NodeId node) const;
  SwitchId parent_of(SwitchId sw) const;

  const LinkSpec& link(LinkId id) const;

  /// Number of switches on the path between two distinct nodes (the paper's
  /// "hops"); 1 when the nodes share a switch. hops(u, u) == 0.
  int hops(NodeId u, NodeId v) const;

  /// The links (uplinks and trunks) traversed between two distinct nodes,
  /// in path order. Empty for u == v.
  std::vector<LinkId> path_links(NodeId u, NodeId v) const;

  /// All nodes attached to a switch, in id order.
  std::vector<NodeId> nodes_on_switch(SwitchId sw) const;

  /// Distance in the switch tree between two switches (0 if equal).
  int switch_distance(SwitchId a, SwitchId b) const;

  double uplink_mbps() const { return uplink_mbps_; }
  double trunk_mbps() const { return trunk_mbps_; }

  /// Trunk link id for the edge between `sw` and its parent; sw must not be
  /// the root.
  LinkId trunk_link(SwitchId sw) const;

 private:
  std::vector<SwitchId> path_to_root(SwitchId sw) const;

  std::vector<SwitchId> switch_parent_;
  std::vector<SwitchId> node_switch_;
  double uplink_mbps_;
  double trunk_mbps_;
  std::vector<LinkSpec> links_;
  std::vector<LinkId> trunk_of_switch_;  // -1 for root
  std::vector<int> switch_depth_;
};

/// Star-of-switches or chain-of-switches convenience builders.
Topology make_chain_topology(const std::vector<int>& nodes_per_switch,
                             double uplink_mbps, double trunk_mbps);
Topology make_star_topology(const std::vector<int>& leaf_nodes_per_switch,
                            double uplink_mbps, double trunk_mbps);

}  // namespace nlarm::cluster
