// Cluster description loading, so users can model their own cluster
// instead of the paper's testbed.
//
// Two inputs are supported:
//  * a compact spec string — one group per switch (switches chained, as in
//    the testbed), e.g. the paper's cluster is
//        "15x12c@4.6;15x12c@4.6;10x12c@4.6/5x8c@2.8;15x8c@2.8"
//    group grammar: <count>x<cores>c@<ghz>[m<mem_gb>], '/' concatenates
//    sub-groups on the same switch;
//  * a CSV node table with header
//        hostname,switch,cores,freq_ghz,mem_gb
//    (switches chained in index order).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cluster/cluster.h"

namespace nlarm::cluster {

struct NodeGroupSpec {
  int count = 0;
  int cores = 0;
  double freq_ghz = 0.0;
  double mem_gb = 16.0;
};

struct ClusterSpec {
  /// One entry per switch; each switch holds one or more node groups.
  std::vector<std::vector<NodeGroupSpec>> switches;
  double uplink_mbps = 1000.0;
  double trunk_mbps = 1500.0;

  int node_count() const;
};

/// Parses the compact spec grammar. Throws CheckError with a pointer to the
/// offending token on malformed input.
ClusterSpec parse_cluster_spec(const std::string& text);

/// Builds a Cluster (chained switch topology, hostnames csews1..N) from a
/// spec.
Cluster make_cluster(const ClusterSpec& spec);

/// Loads the CSV node-table format.
Cluster load_cluster_csv(std::istream& in, double uplink_mbps = 1000.0,
                         double trunk_mbps = 1500.0);

}  // namespace nlarm::cluster
