#include "cluster/spec_loader.h"

#include <algorithm>
#include <istream>

#include "util/check.h"
#include "util/csv.h"
#include "util/strings.h"

namespace nlarm::cluster {

int ClusterSpec::node_count() const {
  int total = 0;
  for (const auto& sw : switches) {
    for (const NodeGroupSpec& group : sw) total += group.count;
  }
  return total;
}

namespace {

NodeGroupSpec parse_group(const std::string& token) {
  // <count>x<cores>c@<ghz>[m<mem_gb>]
  NodeGroupSpec group;
  const auto x = token.find('x');
  NLARM_CHECK(x != std::string::npos)
      << "group '" << token << "': expected <count>x<cores>c@<ghz>";
  group.count = static_cast<int>(util::parse_long(token.substr(0, x)));
  const auto c = token.find('c', x);
  NLARM_CHECK(c != std::string::npos && token.size() > c + 1 &&
              token[c + 1] == '@')
      << "group '" << token << "': expected '<cores>c@'";
  group.cores = static_cast<int>(util::parse_long(token.substr(x + 1, c - x - 1)));
  const auto m = token.find('m', c + 2);
  if (m == std::string::npos) {
    group.freq_ghz = util::parse_double(token.substr(c + 2));
  } else {
    group.freq_ghz = util::parse_double(token.substr(c + 2, m - c - 2));
    group.mem_gb = util::parse_double(token.substr(m + 1));
  }
  NLARM_CHECK(group.count > 0 && group.cores > 0 && group.freq_ghz > 0.0 &&
              group.mem_gb > 0.0)
      << "group '" << token << "': all quantities must be positive";
  return group;
}

}  // namespace

ClusterSpec parse_cluster_spec(const std::string& text) {
  ClusterSpec spec;
  const std::string trimmed = util::trim(text);
  NLARM_CHECK(!trimmed.empty()) << "empty cluster spec";
  for (const std::string& switch_token : util::split(trimmed, ';')) {
    std::vector<NodeGroupSpec> groups;
    for (const std::string& group_token :
         util::split(util::trim(switch_token), '/')) {
      groups.push_back(parse_group(util::trim(group_token)));
    }
    spec.switches.push_back(std::move(groups));
  }
  return spec;
}

Cluster make_cluster(const ClusterSpec& spec) {
  NLARM_CHECK(!spec.switches.empty()) << "spec has no switches";
  std::vector<int> per_switch;
  for (const auto& sw : spec.switches) {
    int count = 0;
    for (const NodeGroupSpec& group : sw) count += group.count;
    NLARM_CHECK(count > 0) << "switch with no nodes";
    per_switch.push_back(count);
  }
  Topology topo = make_chain_topology(per_switch, spec.uplink_mbps,
                                      spec.trunk_mbps);
  std::vector<Node> nodes;
  NodeId id = 0;
  for (const auto& sw : spec.switches) {
    for (const NodeGroupSpec& group : sw) {
      for (int i = 0; i < group.count; ++i, ++id) {
        Node node;
        node.spec.id = id;
        node.spec.hostname = default_hostname(id);
        node.spec.switch_id = topo.switch_of(id);
        node.spec.core_count = group.cores;
        node.spec.cpu_freq_ghz = group.freq_ghz;
        node.spec.total_mem_gb = group.mem_gb;
        nodes.push_back(std::move(node));
      }
    }
  }
  return Cluster(std::move(nodes), std::move(topo));
}

Cluster load_cluster_csv(std::istream& in, double uplink_mbps,
                         double trunk_mbps) {
  const util::CsvDocument doc = util::read_csv(in);
  NLARM_CHECK(!doc.rows.empty()) << "cluster CSV has no nodes";
  const std::size_t col_host = doc.column("hostname");
  const std::size_t col_switch = doc.column("switch");
  const std::size_t col_cores = doc.column("cores");
  const std::size_t col_freq = doc.column("freq_ghz");
  const std::size_t col_mem = doc.column("mem_gb");

  // Collect switch ids; they must be dense after sorting/uniquing.
  std::vector<long> switch_ids;
  for (const auto& row : doc.rows) {
    switch_ids.push_back(util::parse_long(row[col_switch]));
  }
  std::vector<long> unique_switches = switch_ids;
  std::sort(unique_switches.begin(), unique_switches.end());
  unique_switches.erase(
      std::unique(unique_switches.begin(), unique_switches.end()),
      unique_switches.end());
  for (std::size_t i = 0; i < unique_switches.size(); ++i) {
    NLARM_CHECK(unique_switches[i] == static_cast<long>(i))
        << "switch ids must be dense starting at 0, got "
        << unique_switches[i];
  }

  std::vector<int> per_switch(unique_switches.size(), 0);
  for (long sw : switch_ids) per_switch[static_cast<std::size_t>(sw)] += 1;
  Topology topo = make_chain_topology(per_switch, uplink_mbps, trunk_mbps);

  // Nodes must be assigned ids in switch-major order to match the chain
  // topology's layout; sort row indices by (switch, original order).
  std::vector<std::size_t> order(doc.rows.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return switch_ids[a] < switch_ids[b];
                   });

  std::vector<Node> nodes;
  NodeId id = 0;
  for (std::size_t row_index : order) {
    const auto& row = doc.rows[row_index];
    Node node;
    node.spec.id = id;
    node.spec.hostname = row[col_host];
    node.spec.switch_id = topo.switch_of(id);
    NLARM_CHECK(node.spec.switch_id == switch_ids[row_index])
        << "internal switch-ordering mismatch";
    node.spec.core_count = static_cast<int>(util::parse_long(row[col_cores]));
    node.spec.cpu_freq_ghz = util::parse_double(row[col_freq]);
    node.spec.total_mem_gb = util::parse_double(row[col_mem]);
    NLARM_CHECK(node.spec.core_count > 0 && node.spec.cpu_freq_ghz > 0.0 &&
                node.spec.total_mem_gb > 0.0)
        << "invalid node row for host '" << node.spec.hostname << "'";
    nodes.push_back(std::move(node));
    ++id;
  }
  return Cluster(std::move(nodes), std::move(topo));
}

}  // namespace nlarm::cluster
