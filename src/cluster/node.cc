#include "cluster/node.h"

#include <algorithm>

#include "util/strings.h"

namespace nlarm::cluster {

double Node::mem_available_gb() const {
  return std::max(0.0, spec.total_mem_gb - dyn.mem_used_gb);
}

void Node::clamp_dynamics() {
  dyn.cpu_load = std::max(0.0, dyn.cpu_load);
  dyn.job_load = std::max(0.0, dyn.job_load);
  dyn.cpu_util = std::clamp(dyn.cpu_util, 0.0, 1.0);
  dyn.mem_used_gb = std::clamp(dyn.mem_used_gb, 0.0, spec.total_mem_gb);
  dyn.users = std::max(0, dyn.users);
  dyn.net_flow_mbps = std::max(0.0, dyn.net_flow_mbps);
}

std::string default_hostname(NodeId id) {
  return util::format("csews%d", id + 1);
}

}  // namespace nlarm::cluster
