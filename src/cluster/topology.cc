#include "cluster/topology.h"

#include <algorithm>

#include "util/check.h"

namespace nlarm::cluster {

Topology::Topology(std::vector<SwitchId> switch_parent,
                   std::vector<SwitchId> node_switch, double uplink_mbps,
                   double trunk_mbps)
    : switch_parent_(std::move(switch_parent)),
      node_switch_(std::move(node_switch)),
      uplink_mbps_(uplink_mbps),
      trunk_mbps_(trunk_mbps) {
  NLARM_CHECK(!switch_parent_.empty()) << "topology needs at least one switch";
  NLARM_CHECK(!node_switch_.empty()) << "topology needs at least one node";
  NLARM_CHECK(uplink_mbps_ > 0.0 && trunk_mbps_ > 0.0)
      << "link capacities must be positive";

  int roots = 0;
  for (std::size_t s = 0; s < switch_parent_.size(); ++s) {
    const SwitchId parent = switch_parent_[s];
    if (parent < 0) {
      ++roots;
    } else {
      NLARM_CHECK(parent < static_cast<SwitchId>(switch_parent_.size()) &&
                  parent != static_cast<SwitchId>(s))
          << "switch " << s << " has invalid parent " << parent;
    }
  }
  NLARM_CHECK(roots == 1) << "switch tree must have exactly one root, found "
                          << roots;

  for (std::size_t i = 0; i < node_switch_.size(); ++i) {
    NLARM_CHECK(node_switch_[i] >= 0 &&
                node_switch_[i] < static_cast<SwitchId>(switch_parent_.size()))
        << "node " << i << " assigned to invalid switch " << node_switch_[i];
  }

  // Depths; also validates acyclicity.
  switch_depth_.assign(switch_parent_.size(), -1);
  for (std::size_t s = 0; s < switch_parent_.size(); ++s) {
    SwitchId cursor = static_cast<SwitchId>(s);
    int depth = 0;
    while (switch_parent_[cursor] >= 0) {
      cursor = switch_parent_[cursor];
      ++depth;
      NLARM_CHECK(depth <= static_cast<int>(switch_parent_.size()))
          << "cycle in switch parent links at switch " << s;
    }
    switch_depth_[s] = depth;
  }

  // Links: uplinks first (one per node), then trunks (one per non-root
  // switch, ordered by switch id).
  links_.reserve(node_switch_.size() + switch_parent_.size());
  for (std::size_t i = 0; i < node_switch_.size(); ++i) {
    links_.push_back(LinkSpec{static_cast<LinkId>(i), uplink_mbps_, false});
  }
  trunk_of_switch_.assign(switch_parent_.size(), -1);
  for (std::size_t s = 0; s < switch_parent_.size(); ++s) {
    if (switch_parent_[s] >= 0) {
      const LinkId id = static_cast<LinkId>(links_.size());
      trunk_of_switch_[s] = id;
      links_.push_back(LinkSpec{id, trunk_mbps_, true});
    }
  }
}

SwitchId Topology::switch_of(NodeId node) const {
  NLARM_CHECK(node >= 0 && node < node_count()) << "bad node id " << node;
  return node_switch_[node];
}

SwitchId Topology::parent_of(SwitchId sw) const {
  NLARM_CHECK(sw >= 0 && sw < switch_count()) << "bad switch id " << sw;
  return switch_parent_[sw];
}

const LinkSpec& Topology::link(LinkId id) const {
  NLARM_CHECK(id >= 0 && id < link_count()) << "bad link id " << id;
  return links_[id];
}

LinkId Topology::trunk_link(SwitchId sw) const {
  NLARM_CHECK(sw >= 0 && sw < switch_count()) << "bad switch id " << sw;
  NLARM_CHECK(trunk_of_switch_[sw] >= 0)
      << "switch " << sw << " is the root; it has no trunk";
  return trunk_of_switch_[sw];
}

std::vector<SwitchId> Topology::path_to_root(SwitchId sw) const {
  std::vector<SwitchId> path;
  for (SwitchId cursor = sw; cursor >= 0; cursor = switch_parent_[cursor]) {
    path.push_back(cursor);
  }
  return path;
}

int Topology::switch_distance(SwitchId a, SwitchId b) const {
  NLARM_CHECK(a >= 0 && a < switch_count() && b >= 0 && b < switch_count())
      << "bad switch ids " << a << ", " << b;
  if (a == b) return 0;
  auto pa = path_to_root(a);
  auto pb = path_to_root(b);
  // Strip the common suffix (shared ancestors).
  while (pa.size() > 1 && pb.size() > 1 &&
         pa[pa.size() - 2] == pb[pb.size() - 2]) {
    pa.pop_back();
    pb.pop_back();
  }
  // pa.back() == pb.back() is the lowest common ancestor.
  NLARM_CHECK(pa.back() == pb.back()) << "switch tree is disconnected";
  return static_cast<int>(pa.size() - 1) + static_cast<int>(pb.size() - 1);
}

int Topology::hops(NodeId u, NodeId v) const {
  if (u == v) return 0;
  // Switches on the path: distance in the tree + 1 (sharing a switch = 1).
  return switch_distance(switch_of(u), switch_of(v)) + 1;
}

std::vector<LinkId> Topology::path_links(NodeId u, NodeId v) const {
  NLARM_CHECK(u >= 0 && u < node_count() && v >= 0 && v < node_count())
      << "bad node ids " << u << ", " << v;
  std::vector<LinkId> path;
  if (u == v) return path;
  path.push_back(static_cast<LinkId>(u));  // u's uplink

  const SwitchId su = switch_of(u);
  const SwitchId sv = switch_of(v);
  if (su != sv) {
    auto pu = path_to_root(su);
    auto pv = path_to_root(sv);
    while (pu.size() > 1 && pv.size() > 1 &&
           pu[pu.size() - 2] == pv[pv.size() - 2]) {
      pu.pop_back();
      pv.pop_back();
    }
    // Ascend from su to (but not including) the LCA...
    for (std::size_t i = 0; i + 1 < pu.size(); ++i) {
      path.push_back(trunk_of_switch_[pu[i]]);
    }
    // ...then descend to sv.
    for (std::size_t i = pv.size() - 1; i-- > 0;) {
      path.push_back(trunk_of_switch_[pv[i]]);
    }
  }

  path.push_back(static_cast<LinkId>(v));  // v's uplink
  return path;
}

std::vector<NodeId> Topology::nodes_on_switch(SwitchId sw) const {
  NLARM_CHECK(sw >= 0 && sw < switch_count()) << "bad switch id " << sw;
  std::vector<NodeId> nodes;
  for (NodeId i = 0; i < node_count(); ++i) {
    if (node_switch_[i] == sw) nodes.push_back(i);
  }
  return nodes;
}

Topology make_chain_topology(const std::vector<int>& nodes_per_switch,
                             double uplink_mbps, double trunk_mbps) {
  NLARM_CHECK(!nodes_per_switch.empty()) << "need at least one switch";
  std::vector<SwitchId> parents(nodes_per_switch.size());
  parents[0] = -1;
  for (std::size_t s = 1; s < nodes_per_switch.size(); ++s) {
    parents[s] = static_cast<SwitchId>(s - 1);
  }
  std::vector<SwitchId> node_switch;
  for (std::size_t s = 0; s < nodes_per_switch.size(); ++s) {
    NLARM_CHECK(nodes_per_switch[s] > 0) << "empty switch " << s;
    for (int i = 0; i < nodes_per_switch[s]; ++i) {
      node_switch.push_back(static_cast<SwitchId>(s));
    }
  }
  return Topology(std::move(parents), std::move(node_switch), uplink_mbps,
                  trunk_mbps);
}

Topology make_star_topology(const std::vector<int>& leaf_nodes_per_switch,
                            double uplink_mbps, double trunk_mbps) {
  NLARM_CHECK(!leaf_nodes_per_switch.empty()) << "need at least one leaf";
  // Switch 0 is a core switch with no nodes; leaves 1..k hang off it.
  std::vector<SwitchId> parents(leaf_nodes_per_switch.size() + 1);
  parents[0] = -1;
  for (std::size_t s = 1; s < parents.size(); ++s) parents[s] = 0;
  std::vector<SwitchId> node_switch;
  for (std::size_t s = 0; s < leaf_nodes_per_switch.size(); ++s) {
    NLARM_CHECK(leaf_nodes_per_switch[s] > 0) << "empty leaf switch " << s;
    for (int i = 0; i < leaf_nodes_per_switch[s]; ++i) {
      node_switch.push_back(static_cast<SwitchId>(s + 1));
    }
  }
  return Topology(std::move(parents), std::move(node_switch), uplink_mbps,
                  trunk_mbps);
}

}  // namespace nlarm::cluster
