// Hierarchical allocation — the scaling adaptation the paper sketches in
// §3.3.2 ("our solution may need to be adapted for larger scale by grouping
// the nodes based on cluster topology and calculating inter-group
// bandwidth/latency so that P2P bandwidth/latency calculation requires less
// amount of communication") and again in §6 for multi-cluster deployments.
//
// Two levels:
//  1. nodes are grouped by topology (their switch); each group gets an
//     aggregate compute load and capacity, and each group pair an aggregate
//     network load (mean over a sample of cross pairs);
//  2. Algorithms 1+2 run over *groups* to pick a group subset, then over
//     the nodes of the chosen groups only.
//
// Complexity drops from O(V² log V) to O(G² log G + W² log W) where W is
// the chosen groups' node count, and — on the real system — only O(G²)
// inter-group probes would be needed instead of O(V²).
#pragma once

#include <vector>

#include "core/allocator.h"

namespace nlarm::core {

struct HierarchicalOptions {
  /// Cross-group pair sample size per group pair when aggregating network
  /// load (0 = all pairs; the real deployment would probe only this many).
  int pair_sample = 4;
};

/// A topology group (one per switch) with its aggregates.
struct NodeGroup {
  cluster::SwitchId switch_id = 0;
  std::vector<cluster::NodeId> nodes;
  double compute_load = 0.0;  ///< mean CL over member nodes
  int capacity = 0;           ///< Σ pc over member nodes
};

class HierarchicalAllocator : public Allocator {
 public:
  explicit HierarchicalAllocator(HierarchicalOptions options = {});

  std::string name() const override { return "hierarchical"; }
  Allocation allocate(const monitor::ClusterSnapshot& snapshot,
                      const AllocationRequest& request) override;

  /// Groups formed during the last allocate() (diagnostics).
  const std::vector<NodeGroup>& last_groups() const { return groups_; }
  /// Groups chosen at level 1 during the last allocate().
  const std::vector<std::size_t>& last_chosen_groups() const {
    return chosen_; }

 private:
  HierarchicalOptions options_;
  std::vector<NodeGroup> groups_;
  std::vector<std::size_t> chosen_;
};

/// Partitions the usable nodes of a snapshot by switch id.
std::vector<NodeGroup> form_groups(const monitor::ClusterSnapshot& snapshot,
                                   const std::vector<cluster::NodeId>& usable);

}  // namespace nlarm::core
