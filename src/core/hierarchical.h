// Hierarchical allocation — the scaling adaptation the paper sketches in
// §3.3.2 ("our solution may need to be adapted for larger scale by grouping
// the nodes based on cluster topology and calculating inter-group
// bandwidth/latency so that P2P bandwidth/latency calculation requires less
// amount of communication") and again in §6 for multi-cluster deployments.
//
// Two levels:
//  1. nodes are grouped by topology (their switch); each group gets an
//     aggregate compute load and capacity, and each group pair an aggregate
//     network load (from the tiled pair state's per-tile means, or from a
//     seeded sample of cross pairs in measurement-frugal mode);
//  2. Algorithms 1+2 run over *groups* to pick a group subset, then over
//     the nodes of the chosen groups only.
//
// Complexity drops from O(V² log V) to O(G² log G + W² log W) where W is
// the chosen groups' node count, and — on the real system — only O(G²)
// inter-group probes would be needed instead of O(V²).
//
// allocate_two_phase() is the serving-stack hot path: it consumes the
// immutable TiledPairState a tiled PreparedBuilder publishes with each
// epoch, so decide() at V=16384 touches O(G²) aggregates plus the W×W
// pair values of the chosen blocks instead of a dense V×V matrix.
//
// Bit-identity contract: in the *covering* regime — phase 1 selects every
// block (G == 1, or the cluster is below two_phase_min_nodes) — the result
// is bit-identical to the flat fast path over the same epoch, because
// select_best_candidate normalizes C/N over the candidate set and the
// covering pool reproduces that set exactly, with tile-materialized NL
// values equal to the dense matrix bit for bit. Once pruning engages the
// candidate set genuinely shrinks, which is the point.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/allocator.h"
#include "core/prepared.h"

namespace nlarm::core {

struct HierarchicalOptions {
  /// Cross-group pair sample size per group pair when aggregating network
  /// load from a raw snapshot (0 = exact tiled aggregation over all pairs;
  /// the real deployment would probe only this many). Sampling is driven by
  /// a seeded RNG forked per group pair, so runs are reproducible.
  int pair_sample = 4;
  /// Root seed for the pair-sample streams.
  std::uint64_t sample_seed = 0x6e6c61726dULL;  // "nlarm"
  /// Phase-1 pruning engages only when the usable-node count is at least
  /// this (and there is more than one block). 0 = always prune; set it
  /// large to force the covering regime (bit-identical to the flat path).
  std::size_t two_phase_min_nodes = 0;
  /// Standalone-allocator partition override: 0 = one block per switch,
  /// > 0 = fixed-size blocks over the usable set.
  std::size_t block_size = 0;

  void validate() const;
};

/// Diagnostics from one two-phase decide.
struct HierStats {
  bool pruned = false;             ///< phase 1 actually narrowed the pool
  std::size_t groups = 0;          ///< blocks in the partition
  std::size_t chosen_groups = 0;   ///< blocks surviving phase 1
  std::size_t pool_nodes = 0;      ///< W — nodes entering phase 2
  std::vector<std::size_t> chosen_blocks;  ///< phase-1 winners (block idx)
  std::size_t tiles_materialized = 0;  ///< dense tiles filled this decide
  std::size_t tile_cache_hits = 0;     ///< tiles served from the epoch cache
  double phase1_seconds = 0.0;
  double phase2_seconds = 0.0;
};

/// Two-phase Algorithms 1+2 against an immutable tiled epoch — the
/// hierarchical decide() hot path. Requires prepared.tiles != nullptr (a
/// tiled PreparedBuilder). `pc_override`/`starts` have allocate_prepared
/// semantics (batch admission); starts are working-set positions and are
/// intersected with the phase-1 pool. Thread-safe against one epoch.
Allocation allocate_two_phase(const PreparedSnapshot& prepared,
                              const AllocationRequest& request,
                              const HierarchicalOptions& options,
                              const GenerationOptions& gen = {},
                              AllocStats* stats = nullptr,
                              HierStats* hier = nullptr,
                              std::span<const int> pc_override = {},
                              std::span<const std::size_t> starts = {});

/// A topology group (one per switch) with its aggregates.
struct NodeGroup {
  cluster::SwitchId switch_id = 0;
  std::vector<cluster::NodeId> nodes;
  double compute_load = 0.0;  ///< mean CL over member nodes
  int capacity = 0;           ///< Σ pc over member nodes
};

/// Snapshot-facing hierarchical allocator. pair_sample == 0 runs the exact
/// tiled two-phase path (phase-1 aggregates from exact per-tile
/// accumulators); pair_sample > 0 aggregates group pairs from a seeded
/// sample instead — the measurement-frugal deployment mode, O(G²·s) probe
/// reads instead of O(V²).
class HierarchicalAllocator : public Allocator {
 public:
  explicit HierarchicalAllocator(HierarchicalOptions options = {});

  std::string name() const override { return "hierarchical"; }
  Allocation allocate(const monitor::ClusterSnapshot& snapshot,
                      const AllocationRequest& request) override;

  /// Groups formed during the last allocate() (diagnostics). With the
  /// default switch partition these are index-aligned with the phase-1
  /// blocks (both orders ascend by switch id).
  const std::vector<NodeGroup>& last_groups() const { return groups_; }
  /// Groups chosen at level 1 during the last allocate().
  const std::vector<std::size_t>& last_chosen_groups() const {
    return chosen_; }
  const HierStats& last_hier_stats() const { return stats_; }

 private:
  HierarchicalOptions options_;
  std::vector<NodeGroup> groups_;
  std::vector<std::size_t> chosen_;
  HierStats stats_;
};

/// Partitions the usable nodes of a snapshot by switch id.
std::vector<NodeGroup> form_groups(const monitor::ClusterSnapshot& snapshot,
                                   const std::vector<cluster::NodeId>& usable);

}  // namespace nlarm::core
