// Allocation explanation: render *why* the allocator picked what it picked.
//
// A resource manager users trust is one whose decisions they can audit. The
// explainer recomputes the decision's inputs for the chosen nodes — the
// monitored attributes behind CL, the pairwise network metrics behind NL,
// and each node's effective process count — and renders them as a report,
// together with where the winning candidate ranked among all |V|.
#pragma once

#include <string>

#include "core/allocator.h"

namespace nlarm::core {

/// Human-readable report for an allocation made from `snapshot` under
/// `request`. Works for any policy's Allocation (the candidate-ranking
/// section appears only when `allocator` — the one that made the decision —
/// is passed).
std::string explain_allocation(const monitor::ClusterSnapshot& snapshot,
                               const AllocationRequest& request,
                               const Allocation& allocation,
                               const NetworkLoadAwareAllocator* allocator =
                                   nullptr);

}  // namespace nlarm::core
