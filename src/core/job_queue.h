// JobQueue: a queued front-end over the ResourceBroker.
//
// The paper's broker answers one request at a time and, under §6's
// extension, may answer "wait". This module closes the loop: waiting jobs
// stay queued and are retried on the next poll. Options cover the two
// behaviours a shared cluster actually needs:
//  * node reservation — queued jobs do not double-book nodes that earlier
//    jobs are still running on (a real shared cluster has no enforcement,
//    but the broker should not *recommend* overlap);
//  * conservative backfill — when the head job cannot start, later jobs
//    that fit may jump it (classic EASY-style backfill restricted to
//    currently-free capacity).
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/broker.h"
#include "sim/rng.h"

namespace nlarm::core {

using JobId = std::int64_t;

struct QueueOptions {
  BrokerPolicy broker;
  bool reserve_nodes = true;
  bool backfill = true;
  /// Give up and reject a job after this many failed attempts (0 = never).
  int max_attempts = 0;
  /// Exponential backoff for wait verdicts: after the k-th failed attempt a
  /// job is not retried for min(base * 2^(k-1), max) seconds, with a
  /// uniform ±jitter fraction so synchronized jobs desynchronize. 0 keeps
  /// the legacy behavior (retry on every poll).
  double backoff_base_s = 0.0;
  double backoff_max_s = 300.0;
  double backoff_jitter = 0.2;  ///< fraction of the delay, in [0, 1)
  std::uint64_t backoff_seed = 0x6a6f62;  ///< jitter stream seed
};

struct QueuedJob {
  JobId id = -1;
  std::string name;
  AllocationRequest request;
  double submit_time = 0.0;
  int attempts = 0;
  double not_before = 0.0;  ///< backoff: skip polls before this time
};

struct StartedJob {
  JobId id = -1;
  std::string name;
  Allocation allocation;
  double submit_time = 0.0;
  double start_time = 0.0;
  double wait_time() const { return start_time - submit_time; }
};

class JobQueue {
 public:
  /// The queue borrows the allocator; it must outlive the queue.
  JobQueue(Allocator& allocator, QueueOptions options = {});

  /// Enqueues a request; returns its job id.
  JobId submit(const std::string& name, const AllocationRequest& request,
               double now);

  /// Attempts to start queued jobs against the snapshot (FIFO, with
  /// optional backfill). Started jobs hold their nodes until release().
  std::vector<StartedJob> poll(const monitor::ClusterSnapshot& snapshot,
                               double now);

  /// Marks a started job finished, freeing its nodes.
  void release(JobId id);

  std::size_t pending() const { return queue_.size(); }
  std::size_t running() const { return running_.size(); }
  int rejected() const { return rejected_; }

  /// Nodes currently reserved by running jobs.
  std::vector<cluster::NodeId> reserved_nodes() const;

  /// Mean wait time of all jobs started so far.
  double mean_wait_time() const;

 private:
  /// Attempts one job; on success registers the reservation.
  std::optional<StartedJob> try_start(
      const QueuedJob& job, const monitor::ClusterSnapshot& snapshot,
      double now);

  /// The post-failure backoff deadline for a job on its (new) attempt count.
  double backoff_deadline(const QueuedJob& job, double now);

  Allocator& allocator_;
  ResourceBroker broker_;
  QueueOptions options_;
  sim::Rng backoff_rng_;
  std::deque<QueuedJob> queue_;
  std::map<JobId, StartedJob> running_;
  JobId next_id_ = 0;
  int rejected_ = 0;
  double wait_sum_ = 0.0;
  std::size_t started_count_ = 0;
};

}  // namespace nlarm::core
