// FollowerBroker: a read-only broker replica fed by a leader's delta
// append-log.
//
// The `.nlarmd` log (monitor/delta_log.h) is already a replication stream:
// one CRC-framed frame per drained delta, compacted to a full snapshot
// frame whenever the tail outgrows the policy. A follower tails that file
// with a DeltaLogReader — on its own thread or driven explicitly — and
// turns every batch of frames into an epoch refresh on an embedded
// ResourceBroker, so any number of follower processes serve decide() /
// decide_batch() through the same lock-free epoch-pin path the leader
// uses, scaling the read side horizontally without touching the leader.
//
// Replication-specific semantics on top of the plain broker:
//
//   * Epoch-age fencing. A follower that stops receiving frames keeps its
//     last epoch forever; serving from it would silently hand out
//     arbitrarily stale placements. decide() therefore refuses fresh work
//     (kWait, "replica fenced") once `now - state.time` exceeds
//     ReplicaOptions::max_epoch_age_s — the same bound the degradation
//     layer puts on last-good epochs. epoch_status() exposes the lag as
//     the epoch age, so a follower's /readyz flips to 503 when its
//     replication stream stalls.
//   * Degradation parity. With set_degradation(), the follower maintains a
//     mirror MonitorStore rebuilt from the replicated frames and feeds its
//     staleness view through the same Degrader pipeline as the leader, so
//     quarantine and stale-pair fallback decisions replicate too. Node
//     record ages reconstruct exactly (records carry their sample time);
//     pair write times are approximated by the frame's snapshot time, so
//     leader/follower staleness agrees whenever pair writes land in the
//     same tick that assembles the frame (exact in the drills and tests).
//   * Promotion. When the leader dies — detectable as the log going silent
//     — a follower can promote(): it rewrites the log from its last-good
//     replicated state as a fresh compaction frame (tmp + rename, healing
//     any torn tail the dying leader left) and flips to the leader role,
//     ready to take over appends. maybe_promote() packages the standard
//     silence-threshold policy.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/allocator.h"
#include "core/broker.h"
#include "monitor/delta_log.h"
#include "monitor/store.h"
#include "obs/audit.h"
#include "obs/telemetry_server.h"

namespace nlarm::core {

struct ReplicaOptions {
  /// Epoch-age fence: refuse fresh decides once the replicated state is
  /// older than this many seconds on the caller's clock (<= 0 disables).
  /// The caller's `now` must be comparable to the leader's snapshot times.
  double max_epoch_age_s = 120.0;
  /// Background tail-thread poll cadence (start()).
  double poll_interval_s = 0.05;
  /// maybe_promote(): promote once the log has made no progress for this
  /// many seconds.
  double promote_after_s = 15.0;
  /// Refresh worker count for the embedded broker (forwarded to
  /// ResourceBroker::set_refresh_threads): replicated epoch rebuilds and
  /// delta applies fan out across this many threads. <= 1 keeps the serial
  /// path; published epochs are bit-identical either way.
  int refresh_threads = 1;
  /// Pipelined log ingest (DeltaLogReader::set_decode_ahead): decode+CRC
  /// frame k+1 on a worker thread while frame k applies, shrinking the
  /// follower's steady-state catch-up lag on multi-frame polls.
  bool decode_ahead = true;
};

struct ReplicaStatus {
  enum class Role { kFollower, kLeader };
  Role role = Role::kFollower;
  bool have_state = false;
  std::uint64_t state_version = 0;
  double state_time = 0.0;
  double lag_seconds = 0.0;     ///< now - state_time (0 before first frame)
  double silent_seconds = 0.0;  ///< now - last poll that ingested frames
  bool fenced_now = false;      ///< lag currently over the fence bound
  long frames_ingested = 0;
  long epochs_published = 0;
  long fenced_decides = 0;
  int promotions = 0;
};

class FollowerBroker {
 public:
  /// Borrows the allocator (like ResourceBroker). `profile` is the request
  /// profile every replicated epoch is prepared for; decide() requests
  /// must match it, exactly as on the leader's epoch path.
  FollowerBroker(Allocator& allocator, std::string log_path,
                 const RequestProfile& profile, ReplicaOptions options = {},
                 BrokerPolicy policy = {});
  ~FollowerBroker();

  FollowerBroker(const FollowerBroker&) = delete;
  FollowerBroker& operator=(const FollowerBroker&) = delete;

  /// Enables the replicated degradation pipeline (see file comment). Call
  /// before the first poll, with the LEADER's policy — divergent policies
  /// break decision parity.
  void set_degradation(const DegradationPolicy& policy);

  /// Forwards to the embedded broker (records carry the follower's own
  /// decide timings; placements and verdicts replicate the leader's).
  void set_audit_log(obs::AuditLog* log);

  /// One tail step: poll the log, and when frames arrived fold their
  /// coalesced delta into a published epoch. `now` is the caller's clock
  /// (sim time in drills, wall-derived in the CLI follower). Returns the
  /// number of frames ingested.
  int poll_once(double now);

  /// Read-only decide against the latest replicated epoch, fenced on
  /// replication lag (see file comment).
  BrokerDecision decide(const AllocationRequest& request, double now);
  std::vector<BrokerDecision> decide_batch(
      std::span<const AllocationRequest> requests, double now);

  /// Leader-failover promotion from the last-good replicated state. False
  /// when already leader, no state has been replicated yet, or the
  /// compaction write failed (role unchanged in every failure case).
  bool promote(double now);

  /// promote() iff still a follower, state exists, and the log has been
  /// silent for at least options.promote_after_s. Returns true on the
  /// transition.
  bool maybe_promote(double now);

  /// Starts the background tail thread: poll_once(clock()) every
  /// options.poll_interval_s. `clock` defaults to monotonic wall seconds;
  /// pass a custom one when the log carries a different time base.
  void start(std::function<double()> clock = {});
  void stop();

  ReplicaStatus status(double now) const;

  /// Telemetry /readyz + /epoch view: the epoch age is the REPLICATION lag
  /// (now - last replicated state time) bounded by the fence, so a stalled
  /// stream turns the follower unready.
  obs::EpochStatus epoch_status(double now) const;

  bool have_state() const {
    return have_state_.load(std::memory_order_acquire);
  }
  ReplicaStatus::Role role() const {
    return leader_.load(std::memory_order_relaxed)
               ? ReplicaStatus::Role::kLeader
               : ReplicaStatus::Role::kFollower;
  }
  double seconds_since_progress(double now) const;

  /// The replicated snapshot (requires have_state()); promotion seeds the
  /// new leader's store from this.
  const monitor::ClusterSnapshot& snapshot() const;

  ResourceBroker& broker() { return broker_; }
  const std::string& log_path() const { return log_path_; }

 private:
  void mirror_apply(const monitor::ClusterSnapshot& snapshot,
                    const monitor::SnapshotDelta& delta);
  double lag_seconds(double now) const;
  BrokerDecision refuse(const char* reason_prefix, double lag);

  ReplicaOptions options_;
  std::string log_path_;
  RequestProfile profile_;
  ResourceBroker broker_;

  /// Serializes poll/promote (the tail thread vs explicit drivers). decide
  /// stays lock-free: fencing reads the atomics below.
  std::mutex poll_mutex_;
  monitor::DeltaLogReader reader_;
  std::unique_ptr<monitor::MonitorStore> mirror_;  ///< degradation only
  bool degradation_enabled_ = false;

  std::atomic<bool> have_state_{false};
  std::atomic<bool> leader_{false};
  std::atomic<double> state_time_{0.0};
  std::atomic<std::uint64_t> state_version_{0};
  std::atomic<double> last_progress_time_{0.0};
  std::atomic<bool> saw_progress_{false};
  std::atomic<long> frames_ingested_{0};
  std::atomic<long> epochs_published_{0};
  std::atomic<long> fenced_decides_{0};
  std::atomic<int> promotions_{0};

  std::thread tail_thread_;
  std::atomic<bool> stop_requested_{false};
};

}  // namespace nlarm::core
