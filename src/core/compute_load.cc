#include "core/compute_load.h"

#include <cmath>
#include <limits>

#include "core/normalize.h"
#include "util/check.h"

namespace nlarm::core {

std::vector<double> compute_loads(const monitor::ClusterSnapshot& snapshot,
                                  std::span<const cluster::NodeId> nodes,
                                  const ComputeLoadWeights& weights) {
  weights.validate();
  const std::size_t count = nodes.size();
  std::vector<double> loads(count, 0.0);
  if (count == 0) return loads;

  std::vector<double> column(count);
  for (Attribute attribute : kAllAttributes) {
    const double weight = weights.attribute_weight(attribute);
    if (weight == 0.0) continue;
    for (std::size_t i = 0; i < count; ++i) {
      const auto id = static_cast<std::size_t>(nodes[i]);
      NLARM_CHECK(id < snapshot.nodes.size()) << "node out of snapshot";
      const monitor::NodeSnapshot& record = snapshot.nodes[id];
      NLARM_CHECK(record.valid)
          << "compute_loads over a node with no record: " << nodes[i];
      column[i] = attribute_value(record, attribute);
    }
    const std::vector<double> normalized = normalize_attribute(
        column, criterion_of(attribute) == Criterion::kMaximize);
    for (std::size_t i = 0; i < count; ++i) {
      loads[i] += weight * normalized[i];
    }
  }
  return loads;
}

int effective_process_count(const monitor::NodeSnapshot& node) {
  NLARM_CHECK(node.spec.core_count > 0) << "node has no cores";
  const int cores = node.spec.core_count;
  // A misbehaving daemon can report a negative, NaN or absurdly large load;
  // casting such a ceil() straight to int is UB. Clamp to [0, INT_MAX]
  // first (the !(x > 0) form also routes NaN to 0).
  double ceiled = std::ceil(node.cpu_load_avg.one_min);
  if (!(ceiled > 0.0)) ceiled = 0.0;
  const int load =
      ceiled >= static_cast<double>(std::numeric_limits<int>::max())
          ? std::numeric_limits<int>::max()
          : static_cast<int>(ceiled);
  // Eq. 3 verbatim: coreCount − ceil(Load) % coreCount. The modulo keeps the
  // result in [1, coreCount]: a node is never entirely excluded, it just
  // contributes fewer slots when loaded.
  return cores - (load % cores);
}

std::vector<int> effective_process_counts(
    const monitor::ClusterSnapshot& snapshot,
    std::span<const cluster::NodeId> nodes, int ppn) {
  NLARM_CHECK(ppn >= 0) << "negative ppn";
  std::vector<int> counts;
  counts.reserve(nodes.size());
  for (cluster::NodeId id : nodes) {
    const auto idx = static_cast<std::size_t>(id);
    NLARM_CHECK(idx < snapshot.nodes.size()) << "node out of snapshot";
    const monitor::NodeSnapshot& record = snapshot.nodes[idx];
    NLARM_CHECK(record.valid) << "pc over a node with no record: " << id;
    if (ppn > 0) {
      counts.push_back(ppn);
    } else {
      counts.push_back(effective_process_count(record));
    }
  }
  return counts;
}

}  // namespace nlarm::core
