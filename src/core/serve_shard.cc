#include "core/serve_shard.h"

#include <algorithm>
#include <bit>
#include <chrono>

#include "obs/catalog.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"

namespace nlarm::core {

void ServeOptions::validate() const {
  NLARM_CHECK(shards >= 1) << "need at least one serve shard";
  NLARM_CHECK(queue_capacity >= 1) << "shard ring needs at least one slot";
  NLARM_CHECK(coalesce_window_us >= 0.0)
      << "coalesce window must be non-negative";
  NLARM_CHECK(max_drain >= 1) << "a drain must serve at least one request";
}

// --- AdmissionLedger ---

AdmissionLedger::AdmissionLedger(std::uint64_t epoch, std::span<const int> pc)
    : epoch_(epoch), remaining_(pc.size()) {
  for (std::size_t i = 0; i < pc.size(); ++i) {
    remaining_[i].store(pc[i], std::memory_order_relaxed);
  }
}

bool AdmissionLedger::try_debit(std::span<const std::int32_t> positions,
                                std::span<const int> takes) {
  NLARM_CHECK(positions.size() == takes.size())
      << "debit positions/takes size mismatch";
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const auto pos = static_cast<std::size_t>(positions[i]);
    NLARM_CHECK(positions[i] >= 0 && pos < remaining_.size())
        << "debit position out of ledger range";
    std::atomic<int>& cell = remaining_[pos];
    int have = cell.load(std::memory_order_relaxed);
    for (;;) {
      if (have < takes[i]) {
        // Shortfall: undo the nodes already reserved so a concurrent fresh
        // pass sees the true remainders (all-or-nothing).
        for (std::size_t j = 0; j < i; ++j) {
          remaining_[static_cast<std::size_t>(positions[j])].fetch_add(
              takes[j], std::memory_order_relaxed);
        }
        return false;
      }
      if (cell.compare_exchange_weak(have, have - takes[i],
                                     std::memory_order_relaxed)) {
        break;
      }
    }
  }
  return true;
}

void AdmissionLedger::debit_clamped(std::int32_t position, int take) {
  const auto pos = static_cast<std::size_t>(position);
  NLARM_CHECK(position >= 0 && pos < remaining_.size())
      << "debit position out of ledger range";
  std::atomic<int>& cell = remaining_[pos];
  int have = cell.load(std::memory_order_relaxed);
  for (;;) {
    const int delta = std::min(have, take);
    if (delta <= 0) return;  // round-robin oversubscription floors at zero
    if (cell.compare_exchange_weak(have, have - delta,
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

int AdmissionLedger::snapshot(std::vector<int>& out,
                              std::vector<std::size_t>& starts) const {
  out.resize(remaining_.size());
  starts.clear();
  int total = 0;
  for (std::size_t i = 0; i < remaining_.size(); ++i) {
    const int left = remaining_[i].load(std::memory_order_relaxed);
    out[i] = left;
    if (left > 0) starts.push_back(i);
    total += left;
  }
  return total;
}

// --- ServePlane ---

/// One in-flight request. Lives on the producer's stack; the worker fills
/// `decision` then publishes through `done` (release store + notify, paired
/// with the producer's acquire wait).
struct ServePlane::Slot {
  const AllocationRequest* request = nullptr;
  BrokerDecision decision;
  double enqueue_time = 0.0;
  std::atomic<bool> done{false};
};

struct ServePlane::CacheEntry {
  std::uint64_t epoch = 0;
  BrokerDecision decision;
  /// Working-set positions and process counts of the placement, precomputed
  /// at insert so a replay's capacity re-proof is two flat array walks.
  std::vector<std::int32_t> positions;
  std::vector<int> takes;
};

struct ServePlane::Shard {
  explicit Shard(std::size_t capacity) : ring(capacity) {}

  util::MpmcRing<Slot*> ring;
  std::thread worker;

  // Parking: the worker raises `sleeping` then re-checks the ring before
  // waiting, so a producer that enqueued concurrently either sees the flag
  // (and notifies) or its push is seen by the re-check. The bounded wait_for
  // makes any residual missed wakeup a latency blip, not a hang.
  std::mutex wake_mutex;
  std::condition_variable wake_cv;
  std::atomic<bool> sleeping{false};

  // Worker-thread-only state (lock-free by construction).
  std::unordered_map<ShapeKey, CacheEntry, ShapeKeyHash> cache;
  std::uint64_t cache_epoch = 0;  ///< cache cleared when the served epoch moves
};

std::size_t ServePlane::ShapeKeyHash::operator()(const ShapeKey& key) const {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.nprocs)));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.ppn)));
  mix(key.alpha_bits);
  mix(key.beta_bits);
  return static_cast<std::size_t>(h);
}

ServePlane::ServePlane(ResourceBroker& broker, ServeOptions options)
    : broker_(broker), options_(options) {
  options_.validate();
  NLARM_CHECK(broker_.epoch() != 0)
      << "publish an epoch with refresh_epoch() before starting the serve "
         "plane";
  shards_.reserve(static_cast<std::size_t>(options_.shards));
  for (int s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(options_.queue_capacity));
  }
  for (auto& shard : shards_) {
    Shard& ref = *shard;
    ref.worker = std::thread([this, &ref] { worker_loop(ref); });
  }
  obs::metrics::serve_shards().set(static_cast<double>(options_.shards));
  NLARM_INFO << "serve plane up: " << options_.shards << " shard(s), ring "
             << shards_.front()->ring.capacity() << ", cache "
             << (options_.decision_cache ? "on" : "off") << ", coalesce "
             << options_.coalesce_window_us << " us";
}

ServePlane::~ServePlane() { stop(); }

BrokerDecision ServePlane::decide(const AllocationRequest& request) {
  Slot slot;
  slot.request = &request;
  slot.enqueue_time = obs::trace_clock_seconds();

  const std::size_t index = next_shard_.fetch_add(
                                1, std::memory_order_relaxed) %
                            shards_.size();
  Shard& shard = *shards_[index];
  while (!shard.ring.try_push(&slot)) {
    queue_full_spins_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics::serve_queue_full_spins().inc();
    std::this_thread::yield();
  }
  wake(shard);

  // Short spin first (at serve rates the worker usually answers within a
  // drain), then block on the futex-backed atomic wait.
  for (int spin = 0; spin < 256; ++spin) {
    if (slot.done.load(std::memory_order_acquire)) {
      return std::move(slot.decision);
    }
  }
  while (!slot.done.load(std::memory_order_acquire)) {
    slot.done.wait(false, std::memory_order_acquire);
  }
  return std::move(slot.decision);
}

void ServePlane::stop() {
  stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->wake_mutex);
      shard->wake_cv.notify_all();
    }
    if (shard->worker.joinable()) shard->worker.join();
  }
  obs::metrics::serve_shards().set(0.0);
}

ServeStats ServePlane::stats() const {
  ServeStats out;
  out.decisions = decisions_.load(std::memory_order_relaxed);
  out.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  out.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  out.cache_invalidations =
      cache_invalidations_.load(std::memory_order_relaxed);
  out.coalesced = coalesced_.load(std::memory_order_relaxed);
  out.scoring_passes = scoring_passes_.load(std::memory_order_relaxed);
  out.drains = drains_.load(std::memory_order_relaxed);
  out.queue_full_spins = queue_full_spins_.load(std::memory_order_relaxed);
  return out;
}

void ServePlane::worker_loop(Shard& shard) {
  EpochPin pin = broker_.pin_epoch();
  std::vector<Slot*> batch;
  batch.reserve(options_.max_drain);
  for (;;) {
    batch.clear();
    Slot* slot = nullptr;
    while (batch.size() < options_.max_drain && shard.ring.try_pop(slot)) {
      batch.push_back(slot);
    }
    if (batch.empty()) {
      // stop() guarantees no producer is inside decide(), so an empty pop
      // sweep after the flag means the ring is drained for good.
      if (stop_.load(std::memory_order_acquire)) return;
      park(shard);
      continue;
    }
    if (options_.coalesce_window_us > 0.0 &&
        batch.size() < options_.max_drain) {
      // Hold the drain open to gather more of a same-shape burst into this
      // scoring window.
      const double deadline =
          obs::trace_clock_seconds() + options_.coalesce_window_us * 1e-6;
      while (batch.size() < options_.max_drain &&
             obs::trace_clock_seconds() < deadline) {
        if (shard.ring.try_pop(slot)) {
          batch.push_back(slot);
        } else {
          std::this_thread::yield();
        }
      }
    }
    drain(shard, pin, batch);
  }
}

void ServePlane::drain(Shard& shard, EpochPin& pin,
                       std::vector<Slot*>& batch) {
  // The pin is re-validated once per drain: every request in the batch is
  // served against one immutable epoch, amortizing the publisher handshake
  // over the whole sweep.
  broker_.refresh_pin(pin);
  drains_.fetch_add(1, std::memory_order_relaxed);
  obs::metrics::serve_drains().inc();
  std::size_t depth = 0;
  for (const auto& other : shards_) depth += other->ring.size_estimate();
  obs::metrics::serve_shard_queue_depth().set(static_cast<double>(depth));

  std::shared_ptr<const PreparedSnapshot> keepalive;
  const char* note = "";
  double last_good_age = 0.0;
  const PreparedSnapshot* prepared =
      broker_.resolve_degraded(*pin.prepared, keepalive, note, last_good_age);
  if (prepared == nullptr) {
    for (Slot* waiting : batch) {
      waiting->decision =
          broker_.refuse_stale(*pin.prepared, *waiting->request,
                               last_good_age);
      decisions_.fetch_add(1, std::memory_order_relaxed);
      obs::metrics::serve_plane_decisions().inc();
      obs::metrics::admission_wait_sketch().observe(
          obs::trace_clock_seconds() - waiting->enqueue_time);
      waiting->done.store(true, std::memory_order_release);
      waiting->done.notify_one();
    }
    return;
  }

  if (shard.cache_epoch != prepared->epoch) {
    shard.cache.clear();
    shard.cache_epoch = prepared->epoch;
  }

  AdmissionLedger* ledger = nullptr;
  std::shared_ptr<AdmissionLedger> ledger_keepalive;
  if (options_.debit_capacity) {
    ledger_keepalive = ledger_for(*prepared);
    ledger = ledger_keepalive.get();
  }

  // Shapes freshly scored in THIS drain — a later cache hit on one of them
  // is a coalesced request (it rode a drain-mate's pass).
  thread_local std::vector<ShapeKey> drain_fresh;
  drain_fresh.clear();
  for (Slot* waiting : batch) {
    serve_slot(shard, *prepared, note, ledger, *waiting, drain_fresh);
  }
}

void ServePlane::serve_slot(Shard& shard, const PreparedSnapshot& prepared,
                            const char* note, AdmissionLedger* ledger,
                            Slot& slot,
                            std::vector<ShapeKey>& drain_fresh) {
  const AllocationRequest& request = *slot.request;
  request.validate();
  ShapeKey key;
  key.nprocs = request.nprocs;
  key.ppn = request.ppn;
  key.alpha_bits = std::bit_cast<std::uint64_t>(request.job.alpha);
  key.beta_bits = std::bit_cast<std::uint64_t>(request.job.beta);

  BrokerDecision decision;
  bool served = false;
  if (options_.decision_cache) {
    const auto it = shard.cache.find(key);
    if (it != shard.cache.end() && it->second.epoch == prepared.epoch) {
      CacheEntry& entry = it->second;
      // Replay only if every chosen node still has headroom after the debits
      // that landed since the entry was scored (all-or-nothing reservation).
      const bool headroom =
          ledger == nullptr || ledger->try_debit(entry.positions, entry.takes);
      if (headroom) {
        decision = broker_.replay_decision(prepared, request, entry.decision,
                                           note);
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        obs::metrics::serve_cache_hits().inc();
        if (std::find(drain_fresh.begin(), drain_fresh.end(), key) !=
            drain_fresh.end()) {
          coalesced_.fetch_add(1, std::memory_order_relaxed);
          obs::metrics::serve_coalesced().inc();
        }
        served = true;
      } else {
        shard.cache.erase(it);
        cache_invalidations_.fetch_add(1, std::memory_order_relaxed);
        obs::metrics::serve_cache_invalidations().inc();
      }
    }
  }

  if (!served) {
    if (options_.decision_cache) {
      cache_misses_.fetch_add(1, std::memory_order_relaxed);
      obs::metrics::serve_cache_misses().inc();
    }
    thread_local std::vector<int> pc;
    thread_local std::vector<std::size_t> starts;
    if (ledger != nullptr) {
      // Fresh pass over what is left: post-debit capacities via the same
      // pc_override/starts mechanism decide_batch uses.
      const int capacity = ledger->snapshot(pc, starts);
      decision = broker_.decide_prepared(prepared, request, pc, starts,
                                         starts.size(), capacity, note);
    } else {
      decision = broker_.decide_prepared(prepared, request, /*pc_override=*/{},
                                         /*starts=*/{},
                                         prepared.usable.size(),
                                         prepared.effective_capacity, note);
    }
    scoring_passes_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics::serve_scoring_passes().inc();

    if (decision.action == BrokerDecision::Action::kAllocate) {
      CacheEntry entry;
      entry.epoch = prepared.epoch;
      const Allocation& alloc = decision.allocation;
      entry.positions.reserve(alloc.nodes.size());
      entry.takes.reserve(alloc.nodes.size());
      for (std::size_t i = 0; i < alloc.nodes.size(); ++i) {
        const auto id = static_cast<std::size_t>(alloc.nodes[i]);
        NLARM_CHECK(id < prepared.pos_of.size()) << "allocated unknown node";
        const std::int32_t pos = prepared.pos_of[id];
        NLARM_CHECK(pos >= 0) << "allocated node outside the working set";
        entry.positions.push_back(pos);
        entry.takes.push_back(alloc.procs_per_node[i]);
      }
      if (ledger != nullptr) {
        // Clamped like decide_batch's working-copy debit: round-robin
        // oversubscription may grant more than a node's remainder.
        for (std::size_t i = 0; i < entry.positions.size(); ++i) {
          ledger->debit_clamped(entry.positions[i], entry.takes[i]);
        }
      }
      if (options_.decision_cache) {
        entry.decision = decision;
        shard.cache[key] = std::move(entry);
        drain_fresh.push_back(key);
      }
    }
  }

  decisions_.fetch_add(1, std::memory_order_relaxed);
  obs::metrics::serve_plane_decisions().inc();
  // Admission wait: enqueue → scored, per request (what this caller
  // actually waited for its verdict).
  obs::metrics::admission_wait_sketch().observe(obs::trace_clock_seconds() -
                                                slot.enqueue_time);
  slot.decision = std::move(decision);
  slot.done.store(true, std::memory_order_release);
  slot.done.notify_one();
}

void ServePlane::park(Shard& shard) {
  std::unique_lock<std::mutex> lock(shard.wake_mutex);
  shard.sleeping.store(true, std::memory_order_seq_cst);
  // Re-check under the flag: a producer that pushed before our store sees
  // its slot caught here; one that pushed after sees the flag and notifies.
  if (shard.ring.empty_estimate() && !stop_.load(std::memory_order_acquire)) {
    shard.wake_cv.wait_for(lock, std::chrono::milliseconds(1));
  }
  shard.sleeping.store(false, std::memory_order_relaxed);
}

void ServePlane::wake(Shard& shard) {
  if (!shard.sleeping.load(std::memory_order_seq_cst)) return;
  std::lock_guard<std::mutex> lock(shard.wake_mutex);
  shard.wake_cv.notify_one();
}

std::shared_ptr<AdmissionLedger> ServePlane::ledger_for(
    const PreparedSnapshot& prepared) {
  std::lock_guard<std::mutex> lock(ledger_mutex_);
  if (ledger_ == nullptr || ledger_->epoch() != prepared.epoch) {
    ledger_ = std::make_shared<AdmissionLedger>(prepared.epoch, prepared.pc);
  }
  return ledger_;
}

}  // namespace nlarm::core
