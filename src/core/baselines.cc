#include "core/baselines.h"

#include <algorithm>
#include <numeric>

#include "core/candidate.h"
#include "core/compute_load.h"
#include "util/check.h"

namespace nlarm::core {

namespace {

/// Builds an Allocation from an ordering over the usable node set.
Allocation build_from_order(const std::string& policy,
                            const monitor::ClusterSnapshot& snapshot,
                            const AllocationRequest& request,
                            const std::vector<cluster::NodeId>& usable,
                            const std::vector<std::size_t>& order) {
  const std::vector<int> pc =
      effective_process_counts(snapshot, usable, request.ppn);
  const FillResult fill = fill_processes(order, pc, request.nprocs);
  Allocation allocation;
  allocation.policy = policy;
  allocation.total_procs = request.nprocs;
  for (std::size_t i = 0; i < fill.members.size(); ++i) {
    allocation.nodes.push_back(usable[fill.members[i]]);
    allocation.procs_per_node.push_back(fill.procs[i]);
  }
  annotate_allocation(allocation, snapshot);
  return allocation;
}

std::vector<cluster::NodeId> require_usable(
    const monitor::ClusterSnapshot& snapshot) {
  const std::vector<cluster::NodeId> usable = snapshot.usable_nodes();
  NLARM_CHECK(!usable.empty()) << "no usable nodes in snapshot";
  return usable;
}

}  // namespace

Allocation RandomAllocator::allocate(const monitor::ClusterSnapshot& snapshot,
                                     const AllocationRequest& request) {
  request.validate();
  const std::vector<cluster::NodeId> usable = require_usable(snapshot);
  std::vector<std::size_t> order(usable.size());
  std::iota(order.begin(), order.end(), 0);
  rng_.shuffle(order.data(), order.size());
  return build_from_order(name(), snapshot, request, usable, order);
}

Allocation SequentialAllocator::allocate(
    const monitor::ClusterSnapshot& snapshot,
    const AllocationRequest& request) {
  request.validate();
  const std::vector<cluster::NodeId> usable = require_usable(snapshot);
  // Random start, then consecutive node ids (node numbering follows
  // physical proximity in the paper's cluster), wrapping around.
  const auto start = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(usable.size()) - 1));
  std::vector<std::size_t> order(usable.size());
  for (std::size_t i = 0; i < usable.size(); ++i) {
    order[i] = (start + i) % usable.size();
  }
  return build_from_order(name(), snapshot, request, usable, order);
}

Allocation LoadAwareAllocator::allocate(
    const monitor::ClusterSnapshot& snapshot,
    const AllocationRequest& request) {
  request.validate();
  const std::vector<cluster::NodeId> usable = require_usable(snapshot);
  const std::vector<double> cl =
      compute_loads(snapshot, usable, request.compute_weights);
  std::vector<std::size_t> order(usable.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (cl[a] != cl[b]) return cl[a] < cl[b];
                     return a < b;
                   });
  return build_from_order(name(), snapshot, request, usable, order);
}

}  // namespace nlarm::core
