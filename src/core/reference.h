// Reference (pre-fast-path) implementations of Algorithms 1 + 2, retained
// verbatim in spirit for the golden-equivalence property test: full
// stable_sort over all |V| nodes per start, a fresh O(k²) cost walk per
// candidate during selection, no dedup, no parallelism, no memoization.
//
// The only machinery shared with the optimized path is candidate_costs(),
// which *defines* the raw cost of a member set (canonical ascending order);
// both paths must agree with it bit-for-bit, so it is the common ground
// truth rather than an optimization.
#pragma once

#include <span>
#include <vector>

#include "core/allocator.h"
#include "core/candidate.h"
#include "core/selection.h"
#include "core/weights.h"
#include "monitor/snapshot.h"
#include "util/flat_matrix.h"

namespace nlarm::core::reference {

/// Algorithm 1 for one start node: sorts ALL nodes by addition cost with a
/// stable sort, then fills processes. Never attaches generation-time costs.
Candidate generate_candidate(std::size_t start, std::span<const double> cl,
                             const util::FlatMatrix& nl,
                             std::span<const int> pc, int nprocs,
                             const JobWeights& job);

/// All |V| candidates, strictly serial.
std::vector<Candidate> generate_all_candidates(std::span<const double> cl,
                                               const util::FlatMatrix& nl,
                                               std::span<const int> pc,
                                               int nprocs,
                                               const JobWeights& job);

/// Algorithm 2 with a full cost walk per candidate (no dedup, no reuse of
/// generation-time costs).
SelectionResult select_best_candidate(std::vector<Candidate> candidates,
                                      std::span<const double> cl,
                                      const util::FlatMatrix& nl,
                                      const JobWeights& job);

/// The whole pipeline end to end with none of the fast paths: inputs are
/// prepared from scratch on every call.
Allocation allocate(const monitor::ClusterSnapshot& snapshot,
                    const AllocationRequest& request);

}  // namespace nlarm::core::reference
