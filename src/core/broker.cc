#include "core/broker.h"

#include "core/compute_load.h"
#include "obs/catalog.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/strings.h"

namespace nlarm::core {

ResourceBroker::ResourceBroker(Allocator& allocator, BrokerPolicy policy)
    : allocator_(allocator), policy_(policy) {
  NLARM_CHECK(policy.max_load_per_core > 0.0)
      << "max load per core must be positive";
  NLARM_CHECK(policy.min_usable_nodes >= 1) << "need at least one node";
}

const ResourceBroker::Aggregates& ResourceBroker::aggregates(
    const monitor::ClusterSnapshot& snapshot,
    const AllocationRequest& request) {
  AggregatesKey key;
  key.version = snapshot.version;
  key.time = snapshot.time;
  key.node_count = snapshot.nodes.size();
  key.ppn = request.ppn;
  if (has_aggregates_ && key.version != 0 && key == aggregates_key_) {
    last_aggregates_hit_ = true;
    obs::metrics::broker_aggregates_cache_hits().inc();
    return aggregates_;
  }
  if (has_aggregates_) {
    NLARM_DEBUG << "broker aggregates memo invalidated: snapshot version "
                << aggregates_key_.version << " -> " << key.version;
  }
  last_aggregates_hit_ = false;
  obs::metrics::broker_aggregates_cache_misses().inc();

  has_aggregates_ = false;
  aggregates_.usable = snapshot.usable_nodes();

  // Cluster-wide load per core.
  double load_sum = 0.0;
  double core_sum = 0.0;
  for (cluster::NodeId id : aggregates_.usable) {
    const monitor::NodeSnapshot& node =
        snapshot.nodes[static_cast<std::size_t>(id)];
    load_sum += node.cpu_load_avg.one_min;
    core_sum += static_cast<double>(node.spec.core_count);
  }
  aggregates_.load_per_core = core_sum > 0.0 ? load_sum / core_sum : 0.0;

  aggregates_.effective_capacity = 0;
  if (!aggregates_.usable.empty()) {
    const std::vector<int> pc =
        effective_process_counts(snapshot, aggregates_.usable, request.ppn);
    for (int c : pc) aggregates_.effective_capacity += c;
  }

  aggregates_key_ = key;
  has_aggregates_ = true;
  return aggregates_;
}

namespace {

/// The wait/allocate gate verdict (extracted so decide() can audit it).
BrokerDecision evaluate_gate(const BrokerPolicy& policy,
                             const AllocationRequest& request,
                             std::size_t usable_count, double load_per_core,
                             int effective_capacity) {
  BrokerDecision decision;
  decision.cluster_load_per_core = load_per_core;
  decision.effective_capacity = effective_capacity;
  decision.action = BrokerDecision::Action::kWait;

  if (static_cast<int>(usable_count) < policy.min_usable_nodes) {
    decision.reason =
        util::format("only %zu usable node(s), need at least %d",
                     usable_count, policy.min_usable_nodes);
    return decision;
  }
  if (load_per_core > policy.max_load_per_core) {
    decision.reason = util::format(
        "cluster load per core %.2f exceeds threshold %.2f; "
        "not enough lightly loaded processors — wait and retry",
        load_per_core, policy.max_load_per_core);
    return decision;
  }
  if (!policy.allow_oversubscription &&
      effective_capacity < request.nprocs) {
    decision.reason = util::format(
        "request for %d processes exceeds effective capacity %d; "
        "allocation would oversubscribe — wait and retry",
        request.nprocs, effective_capacity);
    return decision;
  }
  decision.action = BrokerDecision::Action::kAllocate;
  return decision;
}

}  // namespace

BrokerDecision ResourceBroker::decide(
    const monitor::ClusterSnapshot& snapshot,
    const AllocationRequest& request) {
  request.validate();
  ++decisions_;
  obs::metrics::broker_decisions().inc();
  obs::ScopedSpan decide_span("broker.decide");

  obs::ScopedSpan gate_span("broker.gate",
                            &obs::metrics::broker_gate_seconds());
  const Aggregates& agg = aggregates(snapshot, request);
  BrokerDecision decision =
      evaluate_gate(policy_, request, agg.usable.size(), agg.load_per_core,
                    agg.effective_capacity);
  const double gate_seconds = gate_span.stop();

  if (decision.action == BrokerDecision::Action::kWait) {
    ++waits_;
    obs::metrics::broker_waits().inc();
    NLARM_INFO << "broker verdict: wait — " << decision.reason;
  } else {
    decision.allocation = allocator_.allocate(snapshot, request);
    decision.reason = util::format(
        "allocated %d node(s) via %s", decision.allocation.node_count(),
        decision.allocation.policy.c_str());
    obs::metrics::broker_allocations().inc();
    NLARM_DEBUG << "broker verdict: " << decision.reason;
  }

  if (audit_log_ != nullptr) {
    obs::AuditRecord record;
    record.nprocs = request.nprocs;
    record.ppn = request.ppn;
    record.alpha = request.job.alpha;
    record.beta = request.job.beta;
    record.snapshot_version = snapshot.version;
    record.snapshot_time = snapshot.time;
    record.snapshot_nodes = snapshot.size();
    record.usable_nodes = static_cast<int>(agg.usable.size());
    record.action = decision.action == BrokerDecision::Action::kAllocate
                        ? "allocate"
                        : "wait";
    record.reason = decision.reason;
    record.cluster_load_per_core = decision.cluster_load_per_core;
    record.effective_capacity = decision.effective_capacity;
    record.aggregates_cache_hit = last_aggregates_hit_;
    record.gate_seconds = gate_seconds;
    if (decision.action == BrokerDecision::Action::kAllocate) {
      const Allocation& alloc = decision.allocation;
      record.policy = alloc.policy;
      record.total_cost = alloc.total_cost;
      for (std::size_t i = 0; i < alloc.nodes.size(); ++i) {
        const auto id = static_cast<std::size_t>(alloc.nodes[i]);
        record.nodes.push_back(static_cast<int>(alloc.nodes[i]));
        if (id < snapshot.nodes.size()) {
          record.hostnames.push_back(snapshot.nodes[id].spec.hostname);
        }
        record.procs_per_node.push_back(alloc.procs_per_node[i]);
      }
      if (const AllocStats* stats = allocator_.last_stats()) {
        record.prepared_cache_hit = stats->prepared_cache_hit;
        record.candidates_generated = stats->candidates_generated;
        record.compute_cost = stats->compute_cost;
        record.network_cost = stats->network_cost;
        record.prepare_seconds = stats->prepare_seconds;
        record.generate_seconds = stats->generate_seconds;
        record.select_seconds = stats->select_seconds;
      }
    }
    record.total_seconds = decide_span.stop();
    audit_log_->append(std::move(record));
  }
  return decision;
}

}  // namespace nlarm::core
