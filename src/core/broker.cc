#include "core/broker.h"

#include "core/compute_load.h"
#include "util/check.h"
#include "util/strings.h"

namespace nlarm::core {

ResourceBroker::ResourceBroker(Allocator& allocator, BrokerPolicy policy)
    : allocator_(allocator), policy_(policy) {
  NLARM_CHECK(policy.max_load_per_core > 0.0)
      << "max load per core must be positive";
  NLARM_CHECK(policy.min_usable_nodes >= 1) << "need at least one node";
}

const ResourceBroker::Aggregates& ResourceBroker::aggregates(
    const monitor::ClusterSnapshot& snapshot,
    const AllocationRequest& request) {
  AggregatesKey key;
  key.version = snapshot.version;
  key.time = snapshot.time;
  key.node_count = snapshot.nodes.size();
  key.ppn = request.ppn;
  if (has_aggregates_ && key.version != 0 && key == aggregates_key_) {
    return aggregates_;
  }

  has_aggregates_ = false;
  aggregates_.usable = snapshot.usable_nodes();

  // Cluster-wide load per core.
  double load_sum = 0.0;
  double core_sum = 0.0;
  for (cluster::NodeId id : aggregates_.usable) {
    const monitor::NodeSnapshot& node =
        snapshot.nodes[static_cast<std::size_t>(id)];
    load_sum += node.cpu_load_avg.one_min;
    core_sum += static_cast<double>(node.spec.core_count);
  }
  aggregates_.load_per_core = core_sum > 0.0 ? load_sum / core_sum : 0.0;

  aggregates_.effective_capacity = 0;
  if (!aggregates_.usable.empty()) {
    const std::vector<int> pc =
        effective_process_counts(snapshot, aggregates_.usable, request.ppn);
    for (int c : pc) aggregates_.effective_capacity += c;
  }

  aggregates_key_ = key;
  has_aggregates_ = true;
  return aggregates_;
}

BrokerDecision ResourceBroker::decide(
    const monitor::ClusterSnapshot& snapshot,
    const AllocationRequest& request) {
  request.validate();
  ++decisions_;
  BrokerDecision decision;

  const Aggregates& agg = aggregates(snapshot, request);
  decision.cluster_load_per_core = agg.load_per_core;
  decision.effective_capacity = agg.effective_capacity;

  if (static_cast<int>(agg.usable.size()) < policy_.min_usable_nodes) {
    decision.action = BrokerDecision::Action::kWait;
    decision.reason = util::format(
        "only %zu usable node(s), need at least %d", agg.usable.size(),
        policy_.min_usable_nodes);
    ++waits_;
    return decision;
  }

  if (decision.cluster_load_per_core > policy_.max_load_per_core) {
    decision.action = BrokerDecision::Action::kWait;
    decision.reason = util::format(
        "cluster load per core %.2f exceeds threshold %.2f; "
        "not enough lightly loaded processors — wait and retry",
        decision.cluster_load_per_core, policy_.max_load_per_core);
    ++waits_;
    return decision;
  }

  if (!policy_.allow_oversubscription &&
      decision.effective_capacity < request.nprocs) {
    decision.action = BrokerDecision::Action::kWait;
    decision.reason = util::format(
        "request for %d processes exceeds effective capacity %d; "
        "allocation would oversubscribe — wait and retry",
        request.nprocs, decision.effective_capacity);
    ++waits_;
    return decision;
  }

  decision.action = BrokerDecision::Action::kAllocate;
  decision.allocation = allocator_.allocate(snapshot, request);
  decision.reason = util::format(
      "allocated %d node(s) via %s", decision.allocation.node_count(),
      decision.allocation.policy.c_str());
  return decision;
}

}  // namespace nlarm::core
