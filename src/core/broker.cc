#include "core/broker.h"

#include <algorithm>

#include "core/compute_load.h"
#include "obs/catalog.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/strings.h"

namespace nlarm::core {

ResourceBroker::ResourceBroker(Allocator& allocator, BrokerPolicy policy)
    : allocator_(allocator), policy_(policy) {
  NLARM_CHECK(policy.max_load_per_core > 0.0)
      << "max load per core must be positive";
  NLARM_CHECK(policy.min_usable_nodes >= 1) << "need at least one node";
}

const ResourceBroker::Aggregates& ResourceBroker::aggregates(
    const monitor::ClusterSnapshot& snapshot,
    const AllocationRequest& request) {
  AggregatesKey key;
  key.version = snapshot.version;
  key.node_count = snapshot.nodes.size();
  key.ppn = request.ppn;
  if (has_aggregates_ && key.version != 0 && key == aggregates_key_) {
    last_aggregates_hit_ = true;
    obs::metrics::broker_aggregates_cache_hits().inc();
    return aggregates_;
  }
  if (has_aggregates_) {
    NLARM_DEBUG << "broker aggregates memo invalidated: snapshot version "
                << aggregates_key_.version << " -> " << key.version;
  }
  last_aggregates_hit_ = false;
  obs::metrics::broker_aggregates_cache_misses().inc();

  has_aggregates_ = false;
  aggregates_.usable = snapshot.usable_nodes();

  // Cluster-wide load per core.
  double load_sum = 0.0;
  double core_sum = 0.0;
  for (cluster::NodeId id : aggregates_.usable) {
    const monitor::NodeSnapshot& node =
        snapshot.nodes[static_cast<std::size_t>(id)];
    load_sum += node.cpu_load_avg.one_min;
    core_sum += static_cast<double>(node.spec.core_count);
  }
  aggregates_.load_per_core = core_sum > 0.0 ? load_sum / core_sum : 0.0;

  aggregates_.effective_capacity = 0;
  if (!aggregates_.usable.empty()) {
    const std::vector<int> pc =
        effective_process_counts(snapshot, aggregates_.usable, request.ppn);
    for (int c : pc) aggregates_.effective_capacity += c;
  }

  aggregates_key_ = key;
  has_aggregates_ = true;
  return aggregates_;
}

namespace {

/// The wait/allocate gate verdict (extracted so decide() can audit it).
BrokerDecision evaluate_gate(const BrokerPolicy& policy,
                             const AllocationRequest& request,
                             std::size_t usable_count, double load_per_core,
                             int effective_capacity) {
  BrokerDecision decision;
  decision.cluster_load_per_core = load_per_core;
  decision.effective_capacity = effective_capacity;
  decision.action = BrokerDecision::Action::kWait;

  if (static_cast<int>(usable_count) < policy.min_usable_nodes) {
    decision.reason =
        util::format("only %zu usable node(s), need at least %d",
                     usable_count, policy.min_usable_nodes);
    return decision;
  }
  if (load_per_core > policy.max_load_per_core) {
    decision.reason = util::format(
        "cluster load per core %.2f exceeds threshold %.2f; "
        "not enough lightly loaded processors — wait and retry",
        load_per_core, policy.max_load_per_core);
    return decision;
  }
  if (!policy.allow_oversubscription &&
      effective_capacity < request.nprocs) {
    decision.reason = util::format(
        "request for %d processes exceeds effective capacity %d; "
        "allocation would oversubscribe — wait and retry",
        request.nprocs, effective_capacity);
    return decision;
  }
  decision.action = BrokerDecision::Action::kAllocate;
  return decision;
}

}  // namespace

BrokerDecision ResourceBroker::decide(
    const monitor::ClusterSnapshot& snapshot,
    const AllocationRequest& request) {
  request.validate();
  decisions_.fetch_add(1, std::memory_order_relaxed);
  obs::metrics::broker_decisions().inc();
  obs::ScopedSpan decide_span("broker.decide");

  // Only the genuinely shared mutable state takes the lock: the aggregates
  // memo here, the borrowed allocator below. Gate evaluation, counters and
  // the audit append run unserialized, so concurrent classic callers whose
  // verdict is "wait" (and the audit I/O of all callers) no longer queue
  // behind each other.
  obs::ScopedSpan gate_span("broker.gate",
                            &obs::metrics::broker_gate_seconds());
  std::size_t usable_count = 0;
  double load_per_core = 0.0;
  int effective_capacity = 0;
  bool memo_hit = false;
  {
    std::lock_guard<std::mutex> lock(decide_mutex_);
    const Aggregates& agg = aggregates(snapshot, request);
    usable_count = agg.usable.size();
    load_per_core = agg.load_per_core;
    effective_capacity = agg.effective_capacity;
    memo_hit = last_aggregates_hit_;
  }
  BrokerDecision decision = evaluate_gate(policy_, request, usable_count,
                                          load_per_core, effective_capacity);
  const double gate_seconds = gate_span.stop();

  AllocStats stats;
  bool have_stats = false;
  if (decision.action == BrokerDecision::Action::kWait) {
    waits_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics::broker_waits().inc();
    NLARM_INFO << "broker verdict: wait — " << decision.reason;
  } else {
    {
      std::lock_guard<std::mutex> lock(decide_mutex_);
      decision.allocation = allocator_.allocate(snapshot, request);
      if (const AllocStats* last = allocator_.last_stats()) {
        stats = *last;
        have_stats = true;
      }
    }
    decision.reason = util::format(
        "allocated %d node(s) via %s", decision.allocation.node_count(),
        decision.allocation.policy.c_str());
    obs::metrics::broker_allocations().inc();
    NLARM_DEBUG << "broker verdict: " << decision.reason;
  }

  const double total_seconds = decide_span.stop();
  obs::metrics::serve_decide_sketch().observe(total_seconds);

  if (audit_log_ != nullptr) {
    obs::AuditRecord record;
    record.nprocs = request.nprocs;
    record.ppn = request.ppn;
    record.alpha = request.job.alpha;
    record.beta = request.job.beta;
    record.snapshot_version = snapshot.version;
    record.snapshot_time = snapshot.time;
    record.snapshot_nodes = snapshot.size();
    record.usable_nodes = static_cast<int>(usable_count);
    record.action = decision.action == BrokerDecision::Action::kAllocate
                        ? "allocate"
                        : "wait";
    record.reason = decision.reason;
    record.cluster_load_per_core = decision.cluster_load_per_core;
    record.effective_capacity = decision.effective_capacity;
    record.aggregates_cache_hit = memo_hit;
    record.gate_seconds = gate_seconds;
    if (decision.action == BrokerDecision::Action::kAllocate) {
      const Allocation& alloc = decision.allocation;
      record.policy = alloc.policy;
      record.total_cost = alloc.total_cost;
      for (std::size_t i = 0; i < alloc.nodes.size(); ++i) {
        const auto id = static_cast<std::size_t>(alloc.nodes[i]);
        record.nodes.push_back(static_cast<int>(alloc.nodes[i]));
        if (id < snapshot.nodes.size()) {
          record.hostnames.push_back(snapshot.nodes[id].spec.hostname);
        }
        record.procs_per_node.push_back(alloc.procs_per_node[i]);
      }
      if (have_stats) {
        record.prepared_cache_hit = stats.prepared_cache_hit;
        record.candidates_generated = stats.candidates_generated;
        record.compute_cost = stats.compute_cost;
        record.network_cost = stats.network_cost;
        record.prepare_seconds = stats.prepare_seconds;
        record.generate_seconds = stats.generate_seconds;
        record.select_seconds = stats.select_seconds;
      }
    }
    record.total_seconds = total_seconds;
    audit_log_->append(std::move(record));
  }
  return decision;
}

void ResourceBroker::set_refresh_threads(int threads) {
  NLARM_CHECK(threads >= 1) << "refresh thread count must be positive";
  std::lock_guard<std::mutex> lock(builder_mutex_);
  refresh_threads_ = threads;
  refresh_pool_ =
      threads > 1 ? std::make_unique<util::ThreadPool>(
                        static_cast<std::size_t>(threads - 1))
                  : nullptr;
  if (builder_.has_value()) builder_->set_thread_pool(refresh_pool_.get());
  obs::metrics::refresh_workers().set(static_cast<double>(threads));
}

PreparedBuilder& ResourceBroker::ensure_builder(
    const RequestProfile& profile) {
  if (!builder_.has_value() || !(builder_->profile() == profile)) {
    if (hierarchy_.has_value()) {
      builder_.emplace(profile, tiling_);
    } else {
      builder_.emplace(profile);
    }
    builder_->set_thread_pool(refresh_pool_.get());
  }
  return *builder_;
}

void ResourceBroker::refresh_epoch(
    std::shared_ptr<const monitor::ClusterSnapshot> snapshot,
    const RequestProfile& profile) {
  std::lock_guard<std::mutex> lock(builder_mutex_);
  PreparedBuilder& builder = ensure_builder(profile);
  builder.rebuild(std::move(snapshot));
  publisher_.publish(builder.build());
}

bool ResourceBroker::refresh_epoch(
    std::shared_ptr<const monitor::ClusterSnapshot> snapshot,
    const monitor::SnapshotDelta& delta, const RequestProfile& profile) {
  std::lock_guard<std::mutex> lock(builder_mutex_);
  PreparedBuilder& builder = ensure_builder(profile);
  const bool incremental = builder.update(std::move(snapshot), delta);
  publisher_.publish(builder.build());
  return incremental;
}

int ResourceBroker::ingest_delta_log(monitor::DeltaLogReader& log,
                                     const RequestProfile& profile) {
  const int frames = log.poll();
  if (frames == 0) return 0;
  const monitor::SnapshotDelta delta = log.drain_delta();
  auto snapshot =
      std::make_shared<const monitor::ClusterSnapshot>(log.snapshot());
  refresh_epoch(std::move(snapshot), delta, profile);
  return frames;
}

void ResourceBroker::set_degradation(const DegradationPolicy& policy) {
  policy.validate();
  degradation_ = policy;
}

void ResourceBroker::set_hierarchy(const HierarchicalOptions& options,
                                   const TilingOptions& tiling) {
  options.validate();
  std::lock_guard<std::mutex> lock(builder_mutex_);
  hierarchy_ = options;
  tiling_ = tiling;
  // Any existing builder holds flat (or differently-tiled) state; drop it so
  // the next refresh constructs the tiled one.
  builder_.reset();
}

void ResourceBroker::refresh_epoch(
    std::shared_ptr<const monitor::ClusterSnapshot> snapshot,
    const monitor::StalenessView& staleness, const RequestProfile& profile) {
  NLARM_CHECK(degradation_.has_value())
      << "degraded refresh without set_degradation()";
  std::lock_guard<std::mutex> lock(builder_mutex_);
  if (!degrader_.has_value()) degrader_.emplace(*degradation_);
  DegradationOutcome out = degrader_->apply(std::move(snapshot), staleness);
  PreparedBuilder& builder = ensure_builder(profile);
  builder.rebuild(std::move(out.snapshot));
  auto built = builder.build();
  built->degraded = out.degraded;
  built->quarantined = out.quarantined;
  built->pair_fallbacks = out.pair_fallbacks;
  publisher_.publish(std::move(built));
}

bool ResourceBroker::refresh_epoch(
    std::shared_ptr<const monitor::ClusterSnapshot> snapshot,
    const monitor::SnapshotDelta& delta,
    const monitor::StalenessView& staleness, const RequestProfile& profile) {
  NLARM_CHECK(degradation_.has_value())
      << "degraded refresh without set_degradation()";
  std::lock_guard<std::mutex> lock(builder_mutex_);
  if (!degrader_.has_value()) degrader_.emplace(*degradation_);
  DegradationOutcome out = degrader_->apply(std::move(snapshot), staleness);
  PreparedBuilder& builder = ensure_builder(profile);
  bool incremental = false;
  if (out.quarantine_changed) {
    // Quarantine membership moved, so the degraded livehosts vector changed
    // shape — the delta cannot prove continuity against that.
    builder.rebuild(std::move(out.snapshot));
  } else if (out.changed_pairs.empty()) {
    incremental = builder.update(std::move(out.snapshot), delta);
  } else {
    // Pairs can cross the staleness budget without any store write, so
    // their fallback rewrite is invisible to the delta's dirty set; patch
    // them alongside. patch_pair is idempotent (subtract-old/add-new), so
    // overlap with the delta's own dirty pairs is harmless.
    monitor::SnapshotDelta merged = delta;
    merged.dirty_pairs.insert(merged.dirty_pairs.end(),
                              out.changed_pairs.begin(),
                              out.changed_pairs.end());
    incremental = builder.update(std::move(out.snapshot), merged);
  }
  auto built = builder.build();
  built->degraded = out.degraded;
  built->quarantined = out.quarantined;
  built->pair_fallbacks = out.pair_fallbacks;
  publisher_.publish(std::move(built));
  return incremental;
}

BrokerDecision ResourceBroker::decide_prepared(
    const PreparedSnapshot& prepared, const AllocationRequest& request,
    std::span<const int> pc_override, std::span<const std::size_t> starts,
    std::size_t gate_usable, int gate_capacity,
    const char* degradation_note) {
  request.validate();
  decisions_.fetch_add(1, std::memory_order_relaxed);
  obs::metrics::broker_decisions().inc();
  obs::metrics::broker_epoch_decisions().inc();
  obs::ScopedSpan decide_span("broker.decide");

  obs::ScopedSpan gate_span("broker.gate",
                            &obs::metrics::broker_gate_seconds());
  BrokerDecision decision = evaluate_gate(
      policy_, request, gate_usable, prepared.load_per_core, gate_capacity);
  const double gate_seconds = gate_span.stop();

  AllocStats stats;
  if (decision.action == BrokerDecision::Action::kWait) {
    waits_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics::broker_waits().inc();
    NLARM_DEBUG << "broker verdict (epoch " << prepared.epoch << "): wait — "
                << decision.reason;
  } else {
    if (hierarchy_.has_value() && prepared.tiles != nullptr) {
      decision.allocation =
          allocate_two_phase(prepared, request, *hierarchy_,
                             epoch_generation_options_, &stats,
                             /*hier=*/nullptr, pc_override, starts);
    } else {
      decision.allocation =
          allocate_prepared(prepared, request, epoch_generation_options_,
                            &stats, pc_override, starts);
    }
    decision.reason = util::format(
        "allocated %d node(s) via %s", decision.allocation.node_count(),
        decision.allocation.policy.c_str());
    obs::metrics::broker_allocations().inc();
    NLARM_DEBUG << "broker verdict (epoch " << prepared.epoch
                << "): " << decision.reason;
  }

  const double total_seconds = decide_span.stop();
  obs::metrics::serve_decide_sketch().observe(total_seconds);

  if (audit_log_ != nullptr) {
    obs::AuditRecord record;
    record.nprocs = request.nprocs;
    record.ppn = request.ppn;
    record.alpha = request.job.alpha;
    record.beta = request.job.beta;
    record.snapshot_version = prepared.version;
    record.snapshot_time = prepared.time;
    record.snapshot_nodes = static_cast<int>(prepared.snapshot->size());
    record.usable_nodes = static_cast<int>(gate_usable);
    record.epoch = prepared.epoch;
    record.action = decision.action == BrokerDecision::Action::kAllocate
                        ? "allocate"
                        : "wait";
    record.reason = decision.reason;
    record.cluster_load_per_core = decision.cluster_load_per_core;
    record.effective_capacity = decision.effective_capacity;
    // The epoch IS the prepared/aggregate cache; serving from it is a hit
    // by construction.
    record.aggregates_cache_hit = true;
    record.gate_seconds = gate_seconds;
    record.degradation = (degradation_note != nullptr &&
                          degradation_note[0] != '\0')
                             ? degradation_note
                             : (prepared.degraded ? "degraded-epoch" : "none");
    record.quarantined_nodes = static_cast<int>(prepared.quarantined);
    if (decision.action == BrokerDecision::Action::kAllocate) {
      const Allocation& alloc = decision.allocation;
      record.policy = alloc.policy;
      record.total_cost = alloc.total_cost;
      const monitor::ClusterSnapshot& snapshot = *prepared.snapshot;
      for (std::size_t i = 0; i < alloc.nodes.size(); ++i) {
        const auto id = static_cast<std::size_t>(alloc.nodes[i]);
        record.nodes.push_back(static_cast<int>(alloc.nodes[i]));
        if (id < snapshot.nodes.size()) {
          record.hostnames.push_back(snapshot.nodes[id].spec.hostname);
        }
        record.procs_per_node.push_back(alloc.procs_per_node[i]);
      }
      record.prepared_cache_hit = stats.prepared_cache_hit;
      record.candidates_generated = stats.candidates_generated;
      record.compute_cost = stats.compute_cost;
      record.network_cost = stats.network_cost;
      record.prepare_seconds = stats.prepare_seconds;
      record.generate_seconds = stats.generate_seconds;
      record.select_seconds = stats.select_seconds;
    }
    record.total_seconds = total_seconds;
    audit_log_->append(std::move(record));
  }
  return decision;
}

const PreparedSnapshot* ResourceBroker::resolve_degraded(
    const PreparedSnapshot& current,
    std::shared_ptr<const PreparedSnapshot>& keepalive, const char*& note,
    double& last_good_age) {
  note = "";
  last_good_age = 0.0;
  if (!degradation_.has_value() || !current.usable.empty()) return &current;
  keepalive = publisher_.last_good();
  // With no last-good epoch at all there is nothing to fall back to; the
  // gate's min_usable_nodes check turns the poisoned epoch into a wait.
  if (keepalive == nullptr) return &current;
  last_good_age = current.time - keepalive->time;
  if (last_good_age > degradation_->max_epoch_age_s) return nullptr;
  fallbacks_.fetch_add(1, std::memory_order_relaxed);
  obs::metrics::broker_fallback_decisions().inc();
  note = "last-good-fallback";
  return keepalive.get();
}

BrokerDecision ResourceBroker::refuse_stale(const PreparedSnapshot& prepared,
                                            const AllocationRequest& request,
                                            double last_good_age) {
  request.validate();
  decisions_.fetch_add(1, std::memory_order_relaxed);
  obs::metrics::broker_decisions().inc();
  obs::metrics::broker_epoch_decisions().inc();
  waits_.fetch_add(1, std::memory_order_relaxed);
  obs::metrics::broker_waits().inc();
  refusals_.fetch_add(1, std::memory_order_relaxed);
  obs::metrics::broker_stale_refusals().inc();

  BrokerDecision decision;
  decision.action = BrokerDecision::Action::kWait;
  decision.cluster_load_per_core = prepared.load_per_core;
  decision.effective_capacity = 0;
  decision.reason = util::format(
      "current epoch has no usable nodes and the last-good epoch is "
      "%.0f s stale (bound %.0f s) — refusing to decide",
      last_good_age, degradation_->max_epoch_age_s);
  NLARM_WARN << "broker verdict (epoch " << prepared.epoch << "): wait — "
             << decision.reason;

  if (audit_log_ != nullptr) {
    obs::AuditRecord record;
    record.nprocs = request.nprocs;
    record.ppn = request.ppn;
    record.alpha = request.job.alpha;
    record.beta = request.job.beta;
    record.snapshot_version = prepared.version;
    record.snapshot_time = prepared.time;
    record.snapshot_nodes = static_cast<int>(prepared.snapshot->size());
    record.usable_nodes = 0;
    record.epoch = prepared.epoch;
    record.action = "wait";
    record.reason = decision.reason;
    record.effective_capacity = 0;
    record.degradation = "refused-stale";
    record.quarantined_nodes = static_cast<int>(prepared.quarantined);
    audit_log_->append(std::move(record));
  }
  return decision;
}

BrokerDecision ResourceBroker::decide(const EpochPin& pin,
                                      const AllocationRequest& request) {
  NLARM_CHECK(pin.valid())
      << "no epoch pinned — publish one with refresh_epoch() first";
  std::shared_ptr<const PreparedSnapshot> keepalive;
  const char* note = "";
  double last_good_age = 0.0;
  const PreparedSnapshot* prepared =
      resolve_degraded(*pin.prepared, keepalive, note, last_good_age);
  if (prepared == nullptr) {
    return refuse_stale(*pin.prepared, request, last_good_age);
  }
  return decide_prepared(*prepared, request, /*pc_override=*/{},
                         /*starts=*/{}, prepared->usable.size(),
                         prepared->effective_capacity, note);
}

std::vector<BrokerDecision> ResourceBroker::decide_batch(
    const EpochPin& pin, std::span<const AllocationRequest> requests) {
  NLARM_CHECK(pin.valid())
      << "no epoch pinned — publish one with refresh_epoch() first";
  std::shared_ptr<const PreparedSnapshot> keepalive;
  const char* note = "";
  double last_good_age = 0.0;
  const PreparedSnapshot* resolved =
      resolve_degraded(*pin.prepared, keepalive, note, last_good_age);
  if (resolved == nullptr) {
    std::vector<BrokerDecision> refused;
    refused.reserve(requests.size());
    for (const AllocationRequest& request : requests) {
      refused.push_back(refuse_stale(*pin.prepared, request, last_good_age));
    }
    return refused;
  }
  const PreparedSnapshot& prepared = *resolved;
  obs::metrics::broker_batches().inc();
  obs::metrics::broker_batch_requests().inc(requests.size());

  // Working copy of the epoch's capacities; every admitted request debits
  // the processes it took, so later requests in the batch compete only for
  // what is left.
  std::vector<int> remaining = prepared.pc;
  int remaining_capacity = prepared.effective_capacity;
  std::vector<std::size_t> starts;
  std::vector<BrokerDecision> decisions;
  decisions.reserve(requests.size());

  // Admission wait: enqueue → scored. Each request's observation covers the
  // time it spent queued behind the earlier ones PLUS its own scoring pass,
  // so the sketch reflects what a caller actually waited for a verdict —
  // not just its queue position at batch start.
  const double batch_start = obs::trace_clock_seconds();

  for (const AllocationRequest& request : requests) {
    starts.clear();
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      if (remaining[i] > 0) starts.push_back(i);
    }
    // With zero nodes left the gate's min_usable_nodes check forces a wait,
    // so the empty `starts` span never reaches candidate generation.
    BrokerDecision decision =
        decide_prepared(prepared, request, remaining, starts, starts.size(),
                        remaining_capacity, note);
    obs::metrics::admission_wait_sketch().observe(
        obs::trace_clock_seconds() - batch_start);
    if (decision.action == BrokerDecision::Action::kAllocate) {
      const Allocation& alloc = decision.allocation;
      for (std::size_t i = 0; i < alloc.nodes.size(); ++i) {
        const auto id = static_cast<std::size_t>(alloc.nodes[i]);
        NLARM_CHECK(id < prepared.pos_of.size()) << "allocated unknown node";
        const std::int32_t pos = prepared.pos_of[id];
        NLARM_CHECK(pos >= 0) << "allocated node outside the working set";
        // Round-robin oversubscription can hand a node more processes than
        // its remaining capacity; the debit floors at zero.
        const int take =
            std::min(alloc.procs_per_node[i],
                     remaining[static_cast<std::size_t>(pos)]);
        remaining[static_cast<std::size_t>(pos)] -= take;
        remaining_capacity -= take;
      }
    }
    decisions.push_back(std::move(decision));
  }
  return decisions;
}

BrokerDecision ResourceBroker::replay_decision(
    const PreparedSnapshot& prepared, const AllocationRequest& request,
    const BrokerDecision& cached, const char* degradation_note) {
  decisions_.fetch_add(1, std::memory_order_relaxed);
  obs::metrics::broker_decisions().inc();
  obs::metrics::broker_epoch_decisions().inc();
  obs::ScopedSpan decide_span("broker.decide");

  // Byte-identical replay of the scoring pass that produced the entry; the
  // serve plane has already re-proven capacity headroom via the ledger.
  // Only kAllocate decisions are cached, so this is always an allocation.
  BrokerDecision decision = cached;
  obs::metrics::broker_allocations().inc();
  const double total_seconds = decide_span.stop();
  obs::metrics::serve_decide_sketch().observe(total_seconds);

  if (audit_log_ != nullptr) {
    obs::AuditRecord record;
    record.nprocs = request.nprocs;
    record.ppn = request.ppn;
    record.alpha = request.job.alpha;
    record.beta = request.job.beta;
    record.snapshot_version = prepared.version;
    record.snapshot_time = prepared.time;
    record.snapshot_nodes = static_cast<int>(prepared.snapshot->size());
    record.usable_nodes = static_cast<int>(prepared.usable.size());
    record.epoch = prepared.epoch;
    record.action = "allocate";
    record.reason = decision.reason;
    record.cluster_load_per_core = decision.cluster_load_per_core;
    record.effective_capacity = decision.effective_capacity;
    record.aggregates_cache_hit = true;
    record.degradation = (degradation_note != nullptr &&
                          degradation_note[0] != '\0')
                             ? degradation_note
                             : "cache-replay";
    record.quarantined_nodes = static_cast<int>(prepared.quarantined);
    const Allocation& alloc = decision.allocation;
    record.policy = alloc.policy;
    record.total_cost = alloc.total_cost;
    const monitor::ClusterSnapshot& snapshot = *prepared.snapshot;
    for (std::size_t i = 0; i < alloc.nodes.size(); ++i) {
      const auto id = static_cast<std::size_t>(alloc.nodes[i]);
      record.nodes.push_back(static_cast<int>(alloc.nodes[i]));
      if (id < snapshot.nodes.size()) {
        record.hostnames.push_back(snapshot.nodes[id].spec.hostname);
      }
      record.procs_per_node.push_back(alloc.procs_per_node[i]);
    }
    record.total_seconds = total_seconds;
    audit_log_->append(std::move(record));
  }
  return decision;
}

}  // namespace nlarm::core
