// Compute load CL_v (Eq. 1): Simple Additive Weighting over the normalized
// Table-1 attributes of each node.
#pragma once

#include <span>
#include <vector>

#include "core/weights.h"
#include "monitor/snapshot.h"

namespace nlarm::core {

/// CL_v for every node in `nodes` (positions in the result correspond to
/// positions in `nodes`). Normalization spans exactly this node set — adding
/// or removing a node changes everyone's normalized values, as in the paper.
std::vector<double> compute_loads(const monitor::ClusterSnapshot& snapshot,
                                  std::span<const cluster::NodeId> nodes,
                                  const ComputeLoadWeights& weights);

/// Effective processor count pc_v (Eq. 3):
///   pc_v = coreCount_v − ceil(Load_v) % coreCount_v.
/// `Load_v` is the node's 1-minute average CPU load. Always in
/// [1, coreCount] by construction of the modulo.
int effective_process_count(const monitor::NodeSnapshot& node);

/// pc vector for a node set; if `ppn` > 0 it overrides Eq. 3 (the paper's
/// "process per node" option).
std::vector<int> effective_process_counts(
    const monitor::ClusterSnapshot& snapshot,
    std::span<const cluster::NodeId> nodes, int ppn);

}  // namespace nlarm::core
