// The high-throughput admission front end: per-core serve shards over MPMC
// rings, a capacity-aware decision cache, and same-shape request coalescing.
//
// The epoch machinery (core/epoch.h) already made decide() lock-free, but
// every caller still paid a full scoring pass (Algorithms 1+2), and batched
// admission serialized on one thread. This layer turns admission into a
// pipeline that scales with cores and with request redundancy:
//
//   producers ──round-robin──► Shard 0 [MpmcRing] ── worker ─┐
//                              Shard 1 [MpmcRing] ── worker ─┼─► decisions
//                              ...                           │
//                              Shard N [MpmcRing] ── worker ─┘
//
//  * Each worker drains its ring in batches, re-validating its epoch pin
//    ONCE per drain (not per request) and serving every drained request
//    against that one immutable epoch.
//  * Admission debits flow through an AdmissionLedger: per-node atomic
//    reservations shared by all shards, reset whenever a new epoch is
//    published. Fresh scoring passes see the post-debit capacities
//    (pc_override/starts, exactly like ResourceBroker::decide_batch);
//    grants debit with the same floor-at-zero semantics.
//  * A per-shard decision cache keyed on (epoch, canonical job shape:
//    nprocs, ppn, α/β) replays a previous scoring pass's placement — but
//    only after an all-or-nothing atomic debit of every chosen node proves
//    the placement still has headroom. A failed debit invalidates the
//    entry and falls through to a fresh scoring pass over what is left.
//  * Concurrent same-shape requests landing in one drain window coalesce:
//    the first one's scoring pass populates the cache and the rest replay
//    it, so a burst of identical requests costs one Algorithm-1/2 pass.
//    An optional wall-clock window (coalesce_window_us) holds a drain open
//    to gather more of the burst.
//
// Determinism: with the cache off, a single shard serves a request
// sequence bit-identically to decide_batch over the same epoch (same
// pc_override/starts mechanics, same debit order). With the cache on, a
// replayed placement is byte-identical to the scoring pass that produced
// it; the suites in tests/core_serve_test.cc pin both properties.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/broker.h"
#include "util/mpmc_ring.h"

namespace nlarm::core {

struct ServeOptions {
  /// Serve shards (one worker thread each). The intended setting is one
  /// per core that should serve admission.
  int shards = 1;
  /// Per-shard ring capacity (rounded up to a power of two). A full ring
  /// back-pressures producers (they spin-yield until a slot frees up).
  std::size_t queue_capacity = 1024;
  /// Decision cache on/off.
  bool decision_cache = true;
  /// Hold a drain open this many wall microseconds to gather more
  /// same-shape requests into one scoring pass. 0 = serve what one pop
  /// sweep found (coalescing then only catches requests already queued).
  double coalesce_window_us = 0.0;
  /// Debit granted placements from the shared per-epoch AdmissionLedger.
  /// Off = advisory serving (every request scores against the epoch's full
  /// capacity, like plain decide(pin) — the old --serve-threads mode).
  bool debit_capacity = true;
  /// Max requests one drain serves before re-checking the epoch pin.
  std::size_t max_drain = 256;

  void validate() const;
};

/// Aggregate front-end counters (process-wide; mirrors the nlarm_serve_*
/// series so tools can read them without a metrics scrape).
struct ServeStats {
  std::uint64_t decisions = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_invalidations = 0;
  std::uint64_t coalesced = 0;       ///< requests that rode a drain-mate's pass
  std::uint64_t scoring_passes = 0;  ///< fresh Algorithm-1/2 passes
  std::uint64_t drains = 0;
  std::uint64_t queue_full_spins = 0;
};

/// Per-epoch shared admission state: one atomic reservation counter per
/// working-set position. All shards debit the same ledger, so concurrent
/// admissions against one epoch never hand out more capacity than the
/// epoch had (up to decide_batch's floor-at-zero round-robin contract).
class AdmissionLedger {
 public:
  AdmissionLedger(std::uint64_t epoch, std::span<const int> pc);

  std::uint64_t epoch() const { return epoch_; }

  /// All-or-nothing debit of `takes[i]` from position `positions[i]`
  /// (CAS per node, rolled back on any shortfall). True = the whole
  /// placement still had headroom and is now reserved.
  bool try_debit(std::span<const std::int32_t> positions,
                 std::span<const int> takes);

  /// Clamped debit for freshly scored grants: takes min(take, remaining),
  /// flooring at zero — the same semantics as decide_batch's working-copy
  /// debit (round-robin overflow may oversubscribe a node).
  void debit_clamped(std::int32_t position, int take);

  /// Current remaining capacities, copied into `out`; returns the summed
  /// remaining capacity. `starts` receives the positions with capacity
  /// left (the fresh-scoring candidate start set).
  int snapshot(std::vector<int>& out, std::vector<std::size_t>& starts) const;

 private:
  std::uint64_t epoch_ = 0;
  std::vector<std::atomic<int>> remaining_;
};

/// The sharded admission front end. Owns its worker threads; producers call
/// decide() from any thread and block until their request is served.
class ServePlane {
 public:
  /// The broker must outlive the plane and have an epoch published before
  /// the first decide(). Workers start immediately.
  ServePlane(ResourceBroker& broker, ServeOptions options);
  ~ServePlane();

  ServePlane(const ServePlane&) = delete;
  ServePlane& operator=(const ServePlane&) = delete;

  /// Serves one admission decision through the sharded pipeline (blocking).
  /// The request's profile must match the published epoch's, and its α/β +
  /// nprocs/ppn form the decision-cache shape key.
  BrokerDecision decide(const AllocationRequest& request);

  /// Stops the workers after draining every queued request. Idempotent;
  /// the destructor calls it.
  void stop();

  const ServeOptions& options() const { return options_; }
  ServeStats stats() const;

 private:
  struct Slot;
  struct Shard;
  struct CacheEntry;

  /// The decision-cache key: one epoch's canonical job shape. The weight
  /// profiles (ComputeLoadWeights/NetworkLoadWeights) are epoch-wide — a
  /// decide against an epoch must already match its profile — so the
  /// per-request shape is the process count plus the α/β trade-off.
  struct ShapeKey {
    int nprocs = 0;
    int ppn = 0;
    std::uint64_t alpha_bits = 0;
    std::uint64_t beta_bits = 0;
    bool operator==(const ShapeKey&) const = default;
  };
  struct ShapeKeyHash {
    std::size_t operator()(const ShapeKey& key) const;
  };

  void worker_loop(Shard& shard);
  void drain(Shard& shard, EpochPin& pin, std::vector<Slot*>& batch);
  void serve_slot(Shard& shard, const PreparedSnapshot& prepared,
                  const char* note, AdmissionLedger* ledger, Slot& slot,
                  std::vector<ShapeKey>& drain_fresh);
  void park(Shard& shard);
  void wake(Shard& shard);

  /// The ledger for `prepared`'s epoch, created on first use (mutex-
  /// guarded; shards race only on the first drain after a publish).
  std::shared_ptr<AdmissionLedger> ledger_for(const PreparedSnapshot& prepared);

  ResourceBroker& broker_;
  ServeOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_shard_{0};
  std::atomic<bool> stop_{false};

  std::mutex ledger_mutex_;
  std::shared_ptr<AdmissionLedger> ledger_;

  // Plane-local stat counters (the nlarm_serve_* series aggregate across
  // planes; these back ServeStats for tools/tests).
  std::atomic<std::uint64_t> decisions_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> cache_invalidations_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> scoring_passes_{0};
  std::atomic<std::uint64_t> drains_{0};
  std::atomic<std::uint64_t> queue_full_spins_{0};
};

}  // namespace nlarm::core
