#include "core/hierarchical.h"

#include <algorithm>
#include <map>

#include "core/candidate.h"
#include "core/compute_load.h"
#include "core/network_load.h"
#include "core/normalize.h"
#include "core/selection.h"
#include "util/check.h"

namespace nlarm::core {

HierarchicalAllocator::HierarchicalAllocator(HierarchicalOptions options)
    : options_(options) {
  NLARM_CHECK(options.pair_sample >= 0) << "negative pair sample";
}

std::vector<NodeGroup> form_groups(
    const monitor::ClusterSnapshot& snapshot,
    const std::vector<cluster::NodeId>& usable) {
  std::map<cluster::SwitchId, NodeGroup> by_switch;
  for (cluster::NodeId id : usable) {
    const monitor::NodeSnapshot& node =
        snapshot.nodes[static_cast<std::size_t>(id)];
    NodeGroup& group = by_switch[node.spec.switch_id];
    group.switch_id = node.spec.switch_id;
    group.nodes.push_back(id);
  }
  std::vector<NodeGroup> groups;
  groups.reserve(by_switch.size());
  for (auto& [sw, group] : by_switch) groups.push_back(std::move(group));
  return groups;
}

Allocation HierarchicalAllocator::allocate(
    const monitor::ClusterSnapshot& snapshot,
    const AllocationRequest& request) {
  request.validate();
  const std::vector<cluster::NodeId> usable = snapshot.usable_nodes();
  NLARM_CHECK(!usable.empty()) << "no usable nodes in snapshot";

  // Per-node costs once (normalized over the full usable set).
  const std::vector<double> node_cl = rescale_unit_mean(
      compute_loads(snapshot, usable, request.compute_weights));
  const std::vector<int> node_pc =
      effective_process_counts(snapshot, usable, request.ppn);
  std::map<cluster::NodeId, std::size_t> usable_index;
  for (std::size_t i = 0; i < usable.size(); ++i) usable_index[usable[i]] = i;

  // ---- Level 1: groups --------------------------------------------------
  groups_ = form_groups(snapshot, usable);
  const std::size_t g = groups_.size();
  for (NodeGroup& group : groups_) {
    double cl_sum = 0.0;
    for (cluster::NodeId id : group.nodes) {
      const std::size_t i = usable_index.at(id);
      cl_sum += node_cl[i];
      group.capacity += node_pc[i];
    }
    group.compute_load = cl_sum / static_cast<double>(group.nodes.size());
  }

  // Inter-group network load: mean pair metric over a bounded sample of
  // cross pairs (deterministic stride so results are reproducible).
  util::FlatMatrix group_lat(g, 0.0);
  util::FlatMatrix group_cmp(g, 0.0);
  for (std::size_t a = 0; a < g; ++a) {
    for (std::size_t b = a + 1; b < g; ++b) {
      double lat_sum = 0.0;
      double cmp_sum = 0.0;
      std::size_t counted = 0;
      const auto& na = groups_[a].nodes;
      const auto& nb = groups_[b].nodes;
      const std::size_t total = na.size() * nb.size();
      const std::size_t want =
          options_.pair_sample == 0
              ? total
              : std::min<std::size_t>(
                    total, static_cast<std::size_t>(options_.pair_sample));
      const std::size_t stride = std::max<std::size_t>(1, total / want);
      for (std::size_t k = 0; k < total; k += stride) {
        const cluster::NodeId u = na[k % na.size()];
        const cluster::NodeId v = nb[k / na.size() % nb.size()];
        const PairMetrics m = pair_metrics(snapshot, u, v);
        if (m.latency_us >= 0.0) lat_sum += m.latency_us;
        if (m.bandwidth_complement_mbps >= 0.0) {
          cmp_sum += m.bandwidth_complement_mbps;
        }
        ++counted;
      }
      const double denom = static_cast<double>(std::max<std::size_t>(1, counted));
      group_lat[a][b] = group_lat[b][a] = lat_sum / denom;
      group_cmp[a][b] = group_cmp[b][a] = cmp_sum / denom;
    }
  }

  // Normalize the two aggregate terms over group pairs and combine (Eq. 2
  // at group granularity).
  util::FlatMatrix group_nl(g, 0.0);
  if (g > 1) {
    std::vector<double> lat_flat;
    std::vector<double> cmp_flat;
    for (std::size_t a = 0; a < g; ++a) {
      for (std::size_t b = a + 1; b < g; ++b) {
        lat_flat.push_back(group_lat[a][b]);
        cmp_flat.push_back(group_cmp[a][b]);
      }
    }
    const auto lat_norm = normalize_by_sum(lat_flat);
    const auto cmp_norm = normalize_by_sum(cmp_flat);
    std::size_t k = 0;
    for (std::size_t a = 0; a < g; ++a) {
      for (std::size_t b = a + 1; b < g; ++b, ++k) {
        const double value =
            request.network_weights.latency * lat_norm[k] +
            request.network_weights.bandwidth * cmp_norm[k];
        group_nl[a][b] = group_nl[b][a] = value;
      }
    }
  }

  std::vector<double> group_cl(g);
  std::vector<int> group_capacity(g);
  for (std::size_t a = 0; a < g; ++a) {
    group_cl[a] = groups_[a].compute_load;
    group_capacity[a] = std::max(1, groups_[a].capacity);
  }
  const std::vector<double> group_cl_scaled = rescale_unit_mean(group_cl);
  rescale_unit_mean_inplace(group_nl);

  std::vector<Candidate> group_candidates = generate_all_candidates(
      group_cl_scaled, group_nl, group_capacity, request.nprocs,
      request.job);
  const SelectionResult group_selection = select_best_candidate(
      std::move(group_candidates), group_cl_scaled, group_nl,
      request.job);
  chosen_ =
      group_selection.scored[group_selection.best_index].candidate.members;

  // ---- Level 2: nodes of the chosen groups ------------------------------
  std::vector<cluster::NodeId> pool;
  for (std::size_t member : chosen_) {
    const auto& nodes = groups_[member].nodes;
    pool.insert(pool.end(), nodes.begin(), nodes.end());
  }
  std::sort(pool.begin(), pool.end());

  const std::vector<double> pool_cl = rescale_unit_mean(
      compute_loads(snapshot, pool, request.compute_weights));
  const util::FlatMatrix pool_nl = rescale_unit_mean(
      network_loads(snapshot, pool, request.network_weights));
  const std::vector<int> pool_pc =
      effective_process_counts(snapshot, pool, request.ppn);

  std::vector<Candidate> node_candidates = generate_all_candidates(
      pool_cl, pool_nl, pool_pc, request.nprocs, request.job);
  const SelectionResult node_selection = select_best_candidate(
      std::move(node_candidates), pool_cl, pool_nl, request.job);
  const ScoredCandidate& best =
      node_selection.scored[node_selection.best_index];

  Allocation allocation;
  allocation.policy = name();
  allocation.total_procs = request.nprocs;
  allocation.total_cost = best.total_cost;
  for (std::size_t i = 0; i < best.candidate.members.size(); ++i) {
    allocation.nodes.push_back(pool[best.candidate.members[i]]);
    allocation.procs_per_node.push_back(best.candidate.procs[i]);
  }
  annotate_allocation(allocation, snapshot);
  return allocation;
}

}  // namespace nlarm::core
