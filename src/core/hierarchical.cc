#include "core/hierarchical.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "core/candidate.h"
#include "core/compute_load.h"
#include "core/network_load.h"
#include "core/normalize.h"
#include "core/selection.h"
#include "obs/catalog.h"
#include "obs/trace.h"
#include "sim/rng.h"
#include "util/check.h"

namespace nlarm::core {

namespace {

/// Level-1 Algorithms 1+2 over group aggregates: normalizes the two raw
/// aggregate terms over group pairs, combines them (Eq. 2 at group
/// granularity), and picks the best group subset. Returns sorted block
/// indices. Groups with zero capacity never start a candidate (batch
/// admission can drain a whole block).
std::vector<std::size_t> choose_blocks(std::span<const double> group_cl,
                                       const util::FlatMatrix& group_lat,
                                       const util::FlatMatrix& group_cmp,
                                       std::span<const int> group_capacity,
                                       const AllocationRequest& request,
                                       const GenerationOptions& gen) {
  const std::size_t g = group_cl.size();
  if (g == 1) {
    return {0};
  }
  util::FlatMatrix group_nl(g, 0.0);
  std::vector<double> lat_flat;
  std::vector<double> cmp_flat;
  lat_flat.reserve(g * (g - 1) / 2);
  cmp_flat.reserve(g * (g - 1) / 2);
  for (std::size_t a = 0; a < g; ++a) {
    for (std::size_t b = a + 1; b < g; ++b) {
      lat_flat.push_back(group_lat[a][b]);
      cmp_flat.push_back(group_cmp[a][b]);
    }
  }
  const auto lat_norm = normalize_by_sum(lat_flat);
  const auto cmp_norm = normalize_by_sum(cmp_flat);
  std::size_t k = 0;
  for (std::size_t a = 0; a < g; ++a) {
    for (std::size_t b = a + 1; b < g; ++b, ++k) {
      const double value = request.network_weights.latency * lat_norm[k] +
                           request.network_weights.bandwidth * cmp_norm[k];
      group_nl[a][b] = group_nl[b][a] = value;
    }
  }
  const std::vector<double> group_cl_scaled =
      rescale_unit_mean({group_cl.begin(), group_cl.end()});
  rescale_unit_mean_inplace(group_nl);

  std::vector<std::size_t> group_starts;
  group_starts.reserve(g);
  for (std::size_t a = 0; a < g; ++a) {
    if (group_capacity[a] > 0) group_starts.push_back(a);
  }
  NLARM_CHECK(!group_starts.empty()) << "no capacity in any block";

  std::vector<Candidate> candidates =
      generate_all_candidates(group_cl_scaled, group_nl, group_capacity,
                              request.nprocs, request.job, group_starts, gen);
  const SelectionResult selection = select_best_candidate(
      std::move(candidates), group_cl_scaled, group_nl, request.job);
  std::vector<std::size_t> chosen =
      selection.scored[selection.best_index].candidate.members;
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace

void HierarchicalOptions::validate() const {
  NLARM_CHECK(pair_sample >= 0) << "negative pair sample";
}

HierarchicalAllocator::HierarchicalAllocator(HierarchicalOptions options)
    : options_(options) {
  options_.validate();
}

std::vector<NodeGroup> form_groups(
    const monitor::ClusterSnapshot& snapshot,
    const std::vector<cluster::NodeId>& usable) {
  std::map<cluster::SwitchId, NodeGroup> by_switch;
  for (cluster::NodeId id : usable) {
    const monitor::NodeSnapshot& node =
        snapshot.nodes[static_cast<std::size_t>(id)];
    NodeGroup& group = by_switch[node.spec.switch_id];
    group.switch_id = node.spec.switch_id;
    group.nodes.push_back(id);
  }
  std::vector<NodeGroup> groups;
  groups.reserve(by_switch.size());
  for (auto& [sw, group] : by_switch) groups.push_back(std::move(group));
  return groups;
}

Allocation allocate_two_phase(const PreparedSnapshot& prepared,
                              const AllocationRequest& request,
                              const HierarchicalOptions& options,
                              const GenerationOptions& gen, AllocStats* stats,
                              HierStats* hier,
                              std::span<const int> pc_override,
                              std::span<const std::size_t> starts) {
  request.validate();
  options.validate();
  NLARM_CHECK(RequestProfile::of(request) == prepared.profile)
      << "request profile does not match the epoch's prepared inputs";
  NLARM_CHECK(prepared.snapshot != nullptr) << "epoch carries no snapshot";
  NLARM_CHECK(prepared.tiles != nullptr)
      << "epoch carries no tiled pair state (builder not in tiled mode?)";
  NLARM_CHECK(!prepared.usable.empty()) << "no usable nodes in epoch";
  const std::span<const int> pc =
      pc_override.empty() ? std::span<const int>(prepared.pc) : pc_override;
  NLARM_CHECK(pc.size() == prepared.usable.size())
      << "pc override size mismatch";

  const TiledPairState& tiled = *prepared.tiles;
  const util::BlockPartition& part = tiled.partition;
  const std::size_t g = part.block_count();
  NLARM_CHECK(part.position_count() == prepared.usable.size())
      << "tiled partition does not cover the epoch's working set";

  HierStats local_hier;
  HierStats& hs = hier != nullptr ? *hier : local_hier;
  hs = HierStats{};
  hs.groups = g;
  obs::metrics::hier_decisions().inc();

  // ---- Phase 1: block selection over O(G²) aggregates -------------------
  // Pruning is only sound when the candidate set may shrink: with a single
  // block, or below the two-phase threshold, every block is kept and the
  // result stays bit-identical to the flat fast path (the covering regime).
  const bool prune =
      g > 1 && prepared.usable.size() >= options.two_phase_min_nodes;
  obs::ScopedSpan phase1_span("hier.phase1",
                              &obs::metrics::hier_phase1_seconds());
  std::vector<std::size_t> chosen;
  if (prune) {
    std::vector<double> group_cl(g, 0.0);
    std::vector<int> group_capacity(g, 0);
    for (std::size_t b = 0; b < g; ++b) {
      double cl_sum = 0.0;
      for (const std::size_t pos : part.members(b)) {
        cl_sum += prepared.cl[pos];
        group_capacity[b] += pc[pos];
      }
      group_cl[b] = cl_sum / static_cast<double>(part.members(b).size());
    }
    util::FlatMatrix group_lat(g, 0.0);
    util::FlatMatrix group_cmp(g, 0.0);
    for (std::size_t a = 0; a < g; ++a) {
      for (std::size_t b = a + 1; b < g; ++b) {
        const TiledPairState::TileAggregate& agg =
            tiled.tiles[part.tile_index(a, b)];
        group_lat[a][b] = group_lat[b][a] = agg.lat_mean;
        group_cmp[a][b] = group_cmp[b][a] = agg.comp_mean;
      }
    }
    chosen = choose_blocks(group_cl, group_lat, group_cmp, group_capacity,
                           request, gen);
    obs::metrics::hier_pruned_decisions().inc();
  } else {
    chosen.resize(g);
    std::iota(chosen.begin(), chosen.end(), std::size_t{0});
  }
  hs.phase1_seconds = phase1_span.stop();
  hs.pruned = prune;
  hs.chosen_groups = chosen.size();
  hs.chosen_blocks = chosen;
  obs::metrics::hier_blocks_chosen().inc(chosen.size());

  // ---- Phase 2: the flat fast path over the chosen blocks' nodes --------
  if (!prune && prepared.nl != nullptr) {
    // Covering with the dense matrix still published: phase 2 IS the flat
    // fast path — delegate outright (trivially bit-identical).
    obs::ScopedSpan phase2_span("hier.phase2",
                                &obs::metrics::hier_phase2_seconds());
    Allocation allocation =
        allocate_prepared(prepared, request, gen, stats, pc_override, starts);
    hs.pool_nodes = prepared.usable.size();
    hs.phase2_seconds = phase2_span.stop();
    allocation.policy = "hierarchical";
    return allocation;
  }

  obs::metrics::alloc_requests().inc();
  AllocStats local_stats;
  AllocStats& out_stats = stats != nullptr ? *stats : local_stats;
  out_stats = AllocStats{};
  out_stats.prepared_cache_hit = true;
  out_stats.usable_nodes = prepared.usable.size();
  obs::ScopedSpan total_span("alloc.total",
                             &obs::metrics::alloc_total_seconds());
  obs::ScopedSpan phase2_span("hier.phase2",
                              &obs::metrics::hier_phase2_seconds());

  // Pool = member positions of the chosen blocks, ascending, so the pool
  // inherits the working set's canonical order (covering pool == the full
  // working set, reproducing the flat path's start order exactly).
  std::vector<std::size_t> pool;
  for (const std::size_t b : chosen) {
    const auto members = part.members(b);
    pool.insert(pool.end(), members.begin(), members.end());
  }
  std::sort(pool.begin(), pool.end());
  const std::size_t w = pool.size();
  hs.pool_nodes = w;
  std::vector<std::int32_t> pos_in_pool(prepared.usable.size(), -1);
  for (std::size_t i = 0; i < w; ++i) {
    pos_in_pool[pool[i]] = static_cast<std::int32_t>(i);
  }

  // Pool inputs keep the epoch's GLOBAL canonical normalization — CL and NL
  // values are the same numbers the flat path sees, just restricted to the
  // pool (select_best_candidate renormalizes over the candidate set anyway).
  std::vector<double> pool_cl(w);
  std::vector<int> pool_pc(w);
  for (std::size_t i = 0; i < w; ++i) {
    pool_cl[i] = prepared.cl[pool[i]];
    pool_pc[i] = pc[pool[i]];
  }

  const std::size_t tiles_before = tiled.tiles_materialized();
  const std::size_t hits_before = tiled.tile_cache_hits();
  util::FlatMatrix pool_nl(w, 0.0);
  for (std::size_t x = 0; x < chosen.size(); ++x) {
    for (std::size_t y = x; y < chosen.size(); ++y) {
      const std::size_t a = chosen[x];
      const std::size_t b = chosen[y];
      const std::span<const double> tile = tiled.tile_values(a, b);
      const auto rows = part.members(a);
      const auto cols = part.members(b);
      for (std::size_t r = 0; r < rows.size(); ++r) {
        const auto pr = static_cast<std::size_t>(pos_in_pool[rows[r]]);
        for (std::size_t c = 0; c < cols.size(); ++c) {
          const auto pcol = static_cast<std::size_t>(pos_in_pool[cols[c]]);
          const double value = tile[r * cols.size() + c];
          pool_nl[pr][pcol] = value;
          pool_nl[pcol][pr] = value;
        }
      }
    }
  }
  hs.tiles_materialized = tiled.tiles_materialized() - tiles_before;
  hs.tile_cache_hits = tiled.tile_cache_hits() - hits_before;
  obs::metrics::hier_tiles_materialized().inc(hs.tiles_materialized);
  obs::metrics::hier_tile_cache_hits().inc(hs.tile_cache_hits);

  // Batch-admission starts are working-set positions; keep their order while
  // dropping the ones phase 1 pruned away.
  std::vector<std::size_t> pool_starts;
  if (!starts.empty()) {
    pool_starts.reserve(starts.size());
    for (const std::size_t s : starts) {
      if (pos_in_pool[s] >= 0) {
        pool_starts.push_back(static_cast<std::size_t>(pos_in_pool[s]));
      }
    }
    NLARM_CHECK(!pool_starts.empty())
        << "no admissible start survived phase-1 pruning";
  }

  obs::ScopedSpan generate_span("alloc.generate",
                                &obs::metrics::alloc_generate_seconds());
  std::vector<Candidate> candidates =
      pool_starts.empty() && starts.empty()
          ? generate_all_candidates(pool_cl, pool_nl, pool_pc, request.nprocs,
                                    request.job, gen)
          : generate_all_candidates(pool_cl, pool_nl, pool_pc, request.nprocs,
                                    request.job, pool_starts, gen);
  out_stats.generate_seconds = generate_span.stop();
  out_stats.candidates_generated = candidates.size();
  obs::metrics::alloc_candidates_generated().inc(candidates.size());
  if (static_cast<std::size_t>(request.nprocs) < w) {
    obs::metrics::alloc_topk_generations().inc();
  } else {
    obs::metrics::alloc_fullsort_generations().inc();
  }

  obs::ScopedSpan select_span("alloc.select",
                              &obs::metrics::alloc_select_seconds());
  const SelectionResult selection = select_best_candidate(
      std::move(candidates), pool_cl, pool_nl, request.job);
  out_stats.select_seconds = select_span.stop();

  const ScoredCandidate& best = selection.scored[selection.best_index];
  out_stats.compute_cost = best.compute_cost;
  out_stats.network_cost = best.network_cost;
  Allocation allocation;
  allocation.policy = "hierarchical";
  allocation.total_procs = request.nprocs;
  allocation.total_cost = best.total_cost;
  for (std::size_t i = 0; i < best.candidate.members.size(); ++i) {
    allocation.nodes.push_back(
        prepared.usable[pool[best.candidate.members[i]]]);
    allocation.procs_per_node.push_back(best.candidate.procs[i]);
  }
  annotate_allocation(allocation, *prepared.snapshot);
  hs.phase2_seconds = phase2_span.stop();
  out_stats.total_seconds = total_span.stop();
  out_stats.valid = true;
  return allocation;
}

Allocation HierarchicalAllocator::allocate(
    const monitor::ClusterSnapshot& snapshot,
    const AllocationRequest& request) {
  request.validate();
  const std::vector<cluster::NodeId> usable = snapshot.usable_nodes();
  NLARM_CHECK(!usable.empty()) << "no usable nodes in snapshot";

  // Per-node costs once (normalized over the full usable set).
  const std::vector<double> node_cl = rescale_unit_mean(
      compute_loads(snapshot, usable, request.compute_weights));
  const std::vector<int> node_pc =
      effective_process_counts(snapshot, usable, request.ppn);
  std::map<cluster::NodeId, std::size_t> usable_index;
  for (std::size_t i = 0; i < usable.size(); ++i) usable_index[usable[i]] = i;

  // Diagnostics: the switch groups with their aggregates. With the default
  // switch partition (block_size == 0) these are index-aligned with the
  // phase-1 blocks (both ascend by switch id).
  groups_ = form_groups(snapshot, usable);
  for (NodeGroup& group : groups_) {
    double cl_sum = 0.0;
    group.capacity = 0;
    for (cluster::NodeId id : group.nodes) {
      const std::size_t i = usable_index.at(id);
      cl_sum += node_cl[i];
      group.capacity += node_pc[i];
    }
    group.compute_load = cl_sum / static_cast<double>(group.nodes.size());
  }

  if (options_.pair_sample == 0) {
    // Exact mode: run the real two-phase path against a tiled epoch built
    // from this snapshot (phase-1 aggregates from exact tile accumulators).
    const auto snapshot_ref = std::shared_ptr<const monitor::ClusterSnapshot>(
        std::shared_ptr<const void>(), &snapshot);
    TilingOptions tiling;
    tiling.block_size = options_.block_size;
    tiling.dense_nl_limit = 0;  // phase 2 materializes only chosen tiles
    PreparedBuilder builder(RequestProfile::of(request), tiling);
    builder.rebuild(snapshot_ref);
    const std::shared_ptr<PreparedSnapshot> prepared = builder.build();
    Allocation allocation =
        allocate_two_phase(*prepared, request, options_, {}, nullptr, &stats_);
    chosen_ = stats_.chosen_blocks;
    return allocation;
  }

  // Sampled mode — the measurement-frugal deployment path: inter-group
  // aggregates come from a bounded seeded sample of cross pairs (O(G²·s)
  // probe reads instead of O(V²)), and phase 2 prepares canonical inputs
  // over the chosen pool only.
  const std::size_t g = groups_.size();
  util::FlatMatrix group_lat(g, 0.0);
  util::FlatMatrix group_cmp(g, 0.0);
  sim::Rng root(options_.sample_seed);
  for (std::size_t a = 0; a < g; ++a) {
    for (std::size_t b = a + 1; b < g; ++b) {
      // One independent stream per group pair: sampling is reproducible
      // under a fixed seed no matter how G or the iteration order evolves.
      sim::Rng rng = root.fork(static_cast<std::uint64_t>(a) * g + b);
      const auto& na = groups_[a].nodes;
      const auto& nb = groups_[b].nodes;
      const std::size_t total = na.size() * nb.size();
      const std::size_t want = std::min<std::size_t>(
          total, static_cast<std::size_t>(options_.pair_sample));
      double lat_sum = 0.0;
      double cmp_sum = 0.0;
      std::size_t counted = 0;
      for (std::size_t k = 0; k < want; ++k) {
        const auto idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(total) - 1));
        const cluster::NodeId u = na[idx % na.size()];
        const cluster::NodeId v = nb[idx / na.size()];
        const PairMetrics m = pair_metrics(snapshot, u, v);
        if (m.latency_us >= 0.0) lat_sum += m.latency_us;
        if (m.bandwidth_complement_mbps >= 0.0) {
          cmp_sum += m.bandwidth_complement_mbps;
        }
        ++counted;
      }
      const double denom =
          static_cast<double>(std::max<std::size_t>(1, counted));
      group_lat[a][b] = group_lat[b][a] = lat_sum / denom;
      group_cmp[a][b] = group_cmp[b][a] = cmp_sum / denom;
    }
  }

  std::vector<double> group_cl(g);
  std::vector<int> group_capacity(g);
  for (std::size_t a = 0; a < g; ++a) {
    group_cl[a] = groups_[a].compute_load;
    group_capacity[a] = groups_[a].capacity;
  }

  stats_ = HierStats{};
  stats_.groups = g;
  const bool prune = g > 1 && usable.size() >= options_.two_phase_min_nodes;
  obs::metrics::hier_decisions().inc();
  obs::ScopedSpan phase1_span("hier.phase1",
                              &obs::metrics::hier_phase1_seconds());
  if (prune) {
    chosen_ = choose_blocks(group_cl, group_lat, group_cmp, group_capacity,
                            request, {});
    obs::metrics::hier_pruned_decisions().inc();
  } else {
    chosen_.resize(g);
    std::iota(chosen_.begin(), chosen_.end(), std::size_t{0});
  }
  stats_.phase1_seconds = phase1_span.stop();
  stats_.pruned = prune;
  stats_.chosen_groups = chosen_.size();
  stats_.chosen_blocks = chosen_;
  obs::metrics::hier_blocks_chosen().inc(chosen_.size());

  // ---- Level 2: nodes of the chosen groups ------------------------------
  obs::ScopedSpan phase2_span("hier.phase2",
                              &obs::metrics::hier_phase2_seconds());
  std::vector<cluster::NodeId> pool;
  for (std::size_t member : chosen_) {
    const auto& nodes = groups_[member].nodes;
    pool.insert(pool.end(), nodes.begin(), nodes.end());
  }
  std::sort(pool.begin(), pool.end());
  stats_.pool_nodes = pool.size();

  const std::vector<double> pool_cl = rescale_unit_mean(
      compute_loads(snapshot, pool, request.compute_weights));
  util::FlatMatrix pool_nl;
  prepared_network_loads(snapshot, pool, request.network_weights, pool_nl);
  const std::vector<int> pool_pc =
      effective_process_counts(snapshot, pool, request.ppn);

  std::vector<Candidate> node_candidates = generate_all_candidates(
      pool_cl, pool_nl, pool_pc, request.nprocs, request.job);
  const SelectionResult node_selection = select_best_candidate(
      std::move(node_candidates), pool_cl, pool_nl, request.job);
  const ScoredCandidate& best =
      node_selection.scored[node_selection.best_index];

  Allocation allocation;
  allocation.policy = name();
  allocation.total_procs = request.nprocs;
  allocation.total_cost = best.total_cost;
  for (std::size_t i = 0; i < best.candidate.members.size(); ++i) {
    allocation.nodes.push_back(pool[best.candidate.members[i]]);
    allocation.procs_per_node.push_back(best.candidate.procs[i]);
  }
  annotate_allocation(allocation, snapshot);
  stats_.phase2_seconds = phase2_span.stop();
  return allocation;
}

}  // namespace nlarm::core
