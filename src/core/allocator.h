// The public allocator API: requests, allocations, the Allocator interface
// and the paper's network-and-load-aware implementation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/selection.h"
#include "core/weights.h"
#include "monitor/snapshot.h"

namespace nlarm::core {

/// A user's node request (§3.3: "User specifies the total number of
/// processes and process count per node (optionally)").
struct AllocationRequest {
  int nprocs = 1;
  int ppn = 0;  ///< processes per node; 0 = derive from Eq. 3
  JobWeights job;                     ///< α/β (Eq. 4)
  ComputeLoadWeights compute_weights; ///< Eq. 1 weights
  NetworkLoadWeights network_weights; ///< Eq. 2 weights

  void validate() const;
};

/// Result of an allocation. `nodes`/`procs_per_node` are parallel; procs sum
/// to the requested count. Diagnostics mirror Table 4 of the paper.
struct Allocation {
  std::string policy;
  std::vector<cluster::NodeId> nodes;
  std::vector<int> procs_per_node;
  int total_procs = 0;

  // Diagnostics over the allocated group at allocation time:
  double avg_cpu_load = 0.0;             ///< mean 1-min CPU load
  double avg_bw_complement_mbps = 0.0;   ///< mean (peak − available) over pairs
  double avg_latency_us = 0.0;           ///< mean P2P latency over pairs
  double total_cost = 0.0;               ///< T_Gv for the winning candidate

  int node_count() const { return static_cast<int>(nodes.size()); }
};

/// Fills the Allocation diagnostics from the snapshot the decision was made
/// on. Unmeasured pairs are skipped in the averages.
void annotate_allocation(Allocation& allocation,
                         const monitor::ClusterSnapshot& snapshot);

/// Renders an MPI machinefile ("hostname:slots" lines) for the allocation.
std::string to_hostfile(const Allocation& allocation,
                        const monitor::ClusterSnapshot& snapshot);

/// Observability record of the last allocate() call: cache behaviour and
/// per-stage wall times. Consumed by the broker's decision audit.
struct AllocStats {
  bool valid = false;  ///< set once allocate() has run
  bool prepared_cache_hit = false;
  std::size_t usable_nodes = 0;
  std::uint64_t candidates_generated = 0;
  double compute_cost = 0.0;  ///< C_Gv of the winning candidate
  double network_cost = 0.0;  ///< N_Gv of the winning candidate
  double prepare_seconds = 0.0;
  double generate_seconds = 0.0;
  double select_seconds = 0.0;
  double total_seconds = 0.0;
};

/// Allocation policy interface. Implementations must be deterministic given
/// their construction-time seed and the snapshot.
class Allocator {
 public:
  virtual ~Allocator() = default;
  virtual std::string name() const = 0;

  /// Chooses nodes for the request. Throws CheckError if the snapshot has
  /// no usable nodes.
  virtual Allocation allocate(const monitor::ClusterSnapshot& snapshot,
                              const AllocationRequest& request) = 0;

  /// Stats for the last allocate() call; null for policies that don't
  /// instrument themselves (the baselines).
  virtual const AllocStats* last_stats() const { return nullptr; }
};

/// The paper's contribution: Algorithms 1 + 2 over monitored compute and
/// network load.
///
/// Fast path: the normalized CL vector, NL matrix and pc vector only depend
/// on the snapshot and the request's weight/ppn profile, so the allocator
/// memoizes them keyed on the snapshot's version counter. Back-to-back
/// requests against the same monitored state (the common broker pattern)
/// skip the O(V²) input preparation entirely. Unversioned snapshots
/// (version == 0) always recompute.
class NetworkLoadAwareAllocator : public Allocator {
 public:
  std::string name() const override { return "network-load-aware"; }
  Allocation allocate(const monitor::ClusterSnapshot& snapshot,
                      const AllocationRequest& request) override;

  /// Controls the candidate-generation fan-out (see GenerationOptions).
  void set_generation_options(const GenerationOptions& options) {
    generation_options_ = options;
  }
  const GenerationOptions& generation_options() const {
    return generation_options_;
  }

  /// Full scoring detail of the last allocate() call (for analysis benches).
  const SelectionResult& last_selection() const { return last_selection_; }
  const std::vector<cluster::NodeId>& last_node_set() const {
    return last_node_set_;
  }

  const AllocStats* last_stats() const override {
    return stats_.valid ? &stats_ : nullptr;
  }

 private:
  /// Normalized allocator inputs over the snapshot's usable node set.
  struct PreparedInputs {
    std::vector<cluster::NodeId> usable;
    std::vector<double> cl;
    util::FlatMatrix nl;
    std::vector<int> pc;
  };
  /// Everything the prepared inputs depend on. `version` 0 never matches.
  /// The snapshot's float timestamp is deliberately NOT part of the key:
  /// the version counter already changes on every store write, and keying
  /// on wall-clock time made periodic re-assembly of unchanged data defeat
  /// the memo.
  struct PreparedKey {
    std::uint64_t version = 0;
    std::size_t node_count = 0;
    ComputeLoadWeights compute_weights;
    NetworkLoadWeights network_weights;
    int ppn = 0;

    bool operator==(const PreparedKey&) const = default;
  };

  const PreparedInputs& prepare(const monitor::ClusterSnapshot& snapshot,
                                const AllocationRequest& request);

  GenerationOptions generation_options_;
  PreparedInputs prepared_;
  PreparedKey prepared_key_;
  bool has_prepared_ = false;
  SelectionResult last_selection_;
  std::vector<cluster::NodeId> last_node_set_;
  AllocStats stats_;
};

}  // namespace nlarm::core
