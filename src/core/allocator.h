// The public allocator API: requests, allocations, the Allocator interface
// and the paper's network-and-load-aware implementation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/selection.h"
#include "core/weights.h"
#include "monitor/snapshot.h"

namespace nlarm::core {

/// A user's node request (§3.3: "User specifies the total number of
/// processes and process count per node (optionally)").
struct AllocationRequest {
  int nprocs = 1;
  int ppn = 0;  ///< processes per node; 0 = derive from Eq. 3
  JobWeights job;                     ///< α/β (Eq. 4)
  ComputeLoadWeights compute_weights; ///< Eq. 1 weights
  NetworkLoadWeights network_weights; ///< Eq. 2 weights

  void validate() const;
};

/// Result of an allocation. `nodes`/`procs_per_node` are parallel; procs sum
/// to the requested count. Diagnostics mirror Table 4 of the paper.
struct Allocation {
  std::string policy;
  std::vector<cluster::NodeId> nodes;
  std::vector<int> procs_per_node;
  int total_procs = 0;

  // Diagnostics over the allocated group at allocation time:
  double avg_cpu_load = 0.0;             ///< mean 1-min CPU load
  double avg_bw_complement_mbps = 0.0;   ///< mean (peak − available) over pairs
  double avg_latency_us = 0.0;           ///< mean P2P latency over pairs
  double total_cost = 0.0;               ///< T_Gv for the winning candidate

  int node_count() const { return static_cast<int>(nodes.size()); }
};

/// Fills the Allocation diagnostics from the snapshot the decision was made
/// on. Unmeasured pairs are skipped in the averages.
void annotate_allocation(Allocation& allocation,
                         const monitor::ClusterSnapshot& snapshot);

/// Renders an MPI machinefile ("hostname:slots" lines) for the allocation.
std::string to_hostfile(const Allocation& allocation,
                        const monitor::ClusterSnapshot& snapshot);

/// Allocation policy interface. Implementations must be deterministic given
/// their construction-time seed and the snapshot.
class Allocator {
 public:
  virtual ~Allocator() = default;
  virtual std::string name() const = 0;

  /// Chooses nodes for the request. Throws CheckError if the snapshot has
  /// no usable nodes.
  virtual Allocation allocate(const monitor::ClusterSnapshot& snapshot,
                              const AllocationRequest& request) = 0;
};

/// The paper's contribution: Algorithms 1 + 2 over monitored compute and
/// network load.
class NetworkLoadAwareAllocator : public Allocator {
 public:
  std::string name() const override { return "network-load-aware"; }
  Allocation allocate(const monitor::ClusterSnapshot& snapshot,
                      const AllocationRequest& request) override;

  /// Full scoring detail of the last allocate() call (for analysis benches).
  const SelectionResult& last_selection() const { return last_selection_; }
  const std::vector<cluster::NodeId>& last_node_set() const {
    return last_node_set_;
  }

 private:
  SelectionResult last_selection_;
  std::vector<cluster::NodeId> last_node_set_;
};

}  // namespace nlarm::core
