// Weight profiles for the SAW compute load (Eq. 1), the network load
// (Eq. 2) and the job-level compute/communication trade-off (Eq. 4).
//
// Paper defaults (§5): 0.3 CPU load, 0.2 CPU utilization, 0.2 node data
// flow rate, 0.1 used memory, 0.1 logical core count, 0.05 CPU clock speed,
// 0.05 total physical memory; w_lt = 0.25, w_bw = 0.75; (α, β) = (0.3, 0.7)
// for miniMD and (0.4, 0.6) for miniFE.
#pragma once

#include "core/attributes.h"

namespace nlarm::core {

/// Group weights for Eq. 1. Each dynamic group is spread over its 1/5/15-
/// minute running means using `window_blend` (the paper keeps all three "for
/// a more informed selection" without publishing the split; the default
/// weights recent data highest).
struct ComputeLoadWeights {
  double cpu_load = 0.3;
  double cpu_util = 0.2;
  double net_flow = 0.2;  ///< "node bandwidth" in §5 = node data flow rate
  double memory = 0.1;    ///< used/available memory
  double core_count = 0.1;
  double cpu_freq = 0.05;
  double total_mem = 0.05;
  double users = 0.0;  ///< in Table 1 but unweighted in the paper's §5 setup

  struct WindowBlend {
    double one_min = 0.5;
    double five_min = 0.3;
    double fifteen_min = 0.2;

    bool operator==(const WindowBlend&) const = default;
  };
  WindowBlend window_blend;

  bool operator==(const ComputeLoadWeights&) const = default;

  /// Throws CheckError if any weight is negative or all are zero.
  void validate() const;

  /// Effective weight of one attribute (group weight × window share).
  double attribute_weight(Attribute attribute) const;

  static ComputeLoadWeights paper_defaults() { return {}; }
  /// Higher CPU-load/utilization weights (§3.2.1, compute-intensive jobs).
  static ComputeLoadWeights compute_intensive();
  /// Higher available-memory and node-flow weights (§3.2.1).
  static ComputeLoadWeights memory_intensive();
  static ComputeLoadWeights network_intensive();
};

/// Eq. 2 weights.
struct NetworkLoadWeights {
  double latency = 0.25;    ///< w_lt
  double bandwidth = 0.75;  ///< w_bw

  bool operator==(const NetworkLoadWeights&) const = default;

  void validate() const;

  static NetworkLoadWeights paper_defaults() { return {}; }
  /// Latency-dominated jobs: chatty, small messages (§3.2.2).
  static NetworkLoadWeights latency_sensitive() { return {0.75, 0.25}; }
  /// Bandwidth-dominated jobs: bulky communication (§3.2.2).
  static NetworkLoadWeights bandwidth_sensitive() { return {0.1, 0.9}; }
};

/// Eq. 4 weights; α + β = 1.
struct JobWeights {
  double alpha = 0.3;  ///< compute share
  double beta = 0.7;   ///< network share

  bool operator==(const JobWeights&) const = default;

  void validate() const;

  static JobWeights minimd_defaults() { return {0.3, 0.7}; }
  static JobWeights minife_defaults() { return {0.4, 0.6}; }
  static JobWeights balanced() { return {0.5, 0.5}; }
};

}  // namespace nlarm::core
