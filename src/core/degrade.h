// Staleness-aware degradation of monitor snapshots (the consumer side of
// MonitorStore's record timestamps).
//
// The paper's monitor keeps serving whatever NFS holds; nothing downstream
// reacts to how old that data is. This layer closes the gap on the
// allocator side: before a snapshot becomes a prepared epoch, the Degrader
// rewrites a copy of it according to per-record staleness —
//
//   * nodes whose NodeStateD record exceeds the staleness budget are
//     quarantined out of the usable set (livehosts forced false), with
//     two-threshold hysteresis so a node flapping around the budget does
//     not thrash the working set;
//   * pairs whose P2P probes exceed their budget fall back to the 5-minute
//     running mean with a pessimism penalty (stale data is trusted less);
//   * everything fresh passes through bit-identically.
//
// Both the fast path and the reference allocator consume the SAME degraded
// snapshot, so the bit-identity equivalence contract survives degradation
// untouched. The Degrader is stateful (hysteresis, change tracking) and
// owner-thread only, like PreparedBuilder; ResourceBroker drives it under
// its refresh lock.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/node.h"
#include "monitor/snapshot.h"
#include "monitor/store.h"

namespace nlarm::core {

struct DegradationPolicy {
  /// Quarantine a node once its record is older than this.
  double node_staleness_budget_s = 30.0;
  /// Hysteresis: readmit a quarantined node only once its record is fresher
  /// than this (must be <= node_staleness_budget_s).
  double node_readmit_s = 15.0;
  /// A pair older than this serves the 5-minute mean instead of the 1-minute
  /// instantaneous values.
  double pair_staleness_budget_s = 600.0;
  /// Pessimism multiplier applied to fallback pair costs (latency and the
  /// bandwidth deficit); >= 1.
  double pair_penalty = 1.25;
  /// decide() falls back to the last-good epoch when the current one is
  /// poisoned, but refuses once that epoch is older than this.
  double max_epoch_age_s = 120.0;
  /// Block (switch) quarantine: once this fraction of a switch's usable
  /// nodes is stale-quarantined, the *remaining* members are quarantined
  /// too — a mostly-dark rack usually means the switch (or its daemon
  /// uplink) is the problem, not the survivors. In (0, 1]; the default 1.0
  /// never triggers on a partial outage, so the overlay is opt-in.
  double block_quarantine_fraction = 1.0;

  void validate() const;
};

/// One apply() call's result. `snapshot` is the input pointer when nothing
/// needed rewriting, else a rewritten copy.
struct DegradationOutcome {
  std::shared_ptr<const monitor::ClusterSnapshot> snapshot;
  bool degraded = false;          ///< anything was rewritten
  std::size_t quarantined = 0;    ///< nodes currently quarantined (incl. block overlay)
  std::size_t block_quarantined = 0;  ///< nodes out via the block overlay only
  std::size_t pair_fallbacks = 0; ///< unordered pairs on the 5-min fallback
  /// Quarantine membership changed since the previous apply() — the usable
  /// set's shape moved, so incremental prepared updates must rebuild.
  bool quarantine_changed = false;
  /// Unordered pairs whose fallback state flipped since the previous
  /// apply(). A pair can cross the budget without any store write (staleness
  /// grows by itself), so these must be patched alongside the delta's dirty
  /// pairs to keep incremental state bit-identical to a rebuild.
  std::vector<std::pair<cluster::NodeId, cluster::NodeId>> changed_pairs;
};

/// Stateful snapshot rewriter. Not thread-safe; one refresh thread drives
/// it (ResourceBroker holds it under builder_mutex_).
class Degrader {
 public:
  explicit Degrader(DegradationPolicy policy);

  const DegradationPolicy& policy() const { return policy_; }

  /// Applies the policy to one snapshot given the store's staleness view.
  /// Hysteresis state carries across calls; a node-count change resets it.
  DegradationOutcome apply(
      std::shared_ptr<const monitor::ClusterSnapshot> snapshot,
      const monitor::StalenessView& staleness);

  std::size_t quarantined_count() const { return quarantined_count_; }

 private:
  void reset(std::size_t n);

  DegradationPolicy policy_;
  std::size_t n_ = 0;
  std::vector<char> node_quarantined_;
  /// Block-overlay quarantine, recomputed from scratch each apply() (it is
  /// a pure function of the node states — no hysteresis of its own).
  std::vector<char> block_overlay_;
  std::vector<char> pair_fallback_;  ///< unordered (u,v), u<v, at u*n+v
  std::size_t quarantined_count_ = 0;
  std::size_t block_overlay_count_ = 0;
  std::size_t pair_fallback_count_ = 0;
};

}  // namespace nlarm::core
