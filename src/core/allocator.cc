#include "core/allocator.h"

#include <algorithm>
#include <sstream>

#include "core/compute_load.h"
#include "core/normalize.h"
#include "core/prepared.h"
#include "obs/catalog.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"

namespace nlarm::core {

void AllocationRequest::validate() const {
  NLARM_CHECK(nprocs > 0) << "request needs at least one process";
  NLARM_CHECK(ppn >= 0) << "negative ppn";
  job.validate();
  compute_weights.validate();
  network_weights.validate();
}

void annotate_allocation(Allocation& allocation,
                         const monitor::ClusterSnapshot& snapshot) {
  if (allocation.nodes.empty()) return;
  double load_sum = 0.0;
  for (cluster::NodeId id : allocation.nodes) {
    const auto idx = static_cast<std::size_t>(id);
    NLARM_CHECK(idx < snapshot.nodes.size()) << "node out of snapshot";
    load_sum += snapshot.nodes[idx].cpu_load_avg.one_min;
  }
  allocation.avg_cpu_load =
      load_sum / static_cast<double>(allocation.nodes.size());

  // A snapshot without pairwise matrices (tiled benches feed pair data
  // through a PairSource instead) has no network diagnostics to annotate.
  if (snapshot.net.latency_us.empty()) return;

  // Walks the FlatMatrix views directly with one row-pointer hoist per
  // outer node; same reads and accumulation order as the former per-pair
  // pair_metrics() calls, so diagnostics are unchanged bit for bit.
  const util::FlatMatrix& lat_m = snapshot.net.latency_us;
  const util::FlatMatrix& bw_m = snapshot.net.bandwidth_mbps;
  const util::FlatMatrix& peak_m = snapshot.net.peak_mbps;
  const auto matrix_size = static_cast<std::size_t>(snapshot.net.size());
  double lat_sum = 0.0;
  double comp_sum = 0.0;
  std::size_t lat_pairs = 0;
  std::size_t comp_pairs = 0;
  for (std::size_t i = 0; i < allocation.nodes.size(); ++i) {
    const auto ui = static_cast<std::size_t>(allocation.nodes[i]);
    NLARM_CHECK(ui < matrix_size) << "pair out of snapshot";
    const double* lat_row = lat_m[ui];
    const double* bw_row = bw_m[ui];
    const double* peak_row = peak_m[ui];
    for (std::size_t j = i + 1; j < allocation.nodes.size(); ++j) {
      const auto vj = static_cast<std::size_t>(allocation.nodes[j]);
      NLARM_CHECK(vj < matrix_size) << "pair out of snapshot";
      const double lat = lat_row[vj];
      if (lat >= 0.0) {
        lat_sum += lat;
        ++lat_pairs;
      }
      const double bw = bw_row[vj];
      const double peak = peak_row[vj];
      const double comp =
          (bw < 0.0 || peak < 0.0) ? -1.0 : std::max(0.0, peak - bw);
      if (comp >= 0.0) {
        comp_sum += comp;
        ++comp_pairs;
      }
    }
  }
  allocation.avg_latency_us =
      lat_pairs > 0 ? lat_sum / static_cast<double>(lat_pairs) : 0.0;
  allocation.avg_bw_complement_mbps =
      comp_pairs > 0 ? comp_sum / static_cast<double>(comp_pairs) : 0.0;
}

std::string to_hostfile(const Allocation& allocation,
                        const monitor::ClusterSnapshot& snapshot) {
  std::ostringstream out;
  for (std::size_t i = 0; i < allocation.nodes.size(); ++i) {
    const auto id = static_cast<std::size_t>(allocation.nodes[i]);
    NLARM_CHECK(id < snapshot.nodes.size()) << "node out of snapshot";
    out << snapshot.nodes[id].spec.hostname << ":"
        << allocation.procs_per_node[i] << "\n";
  }
  return out.str();
}

const NetworkLoadAwareAllocator::PreparedInputs&
NetworkLoadAwareAllocator::prepare(const monitor::ClusterSnapshot& snapshot,
                                   const AllocationRequest& request) {
  PreparedKey key;
  key.version = snapshot.version;
  key.node_count = snapshot.nodes.size();
  key.compute_weights = request.compute_weights;
  key.network_weights = request.network_weights;
  key.ppn = request.ppn;
  // version 0 marks a hand-built snapshot with no change tracking; those
  // must always be prepared from scratch.
  if (has_prepared_ && key.version != 0 && key == prepared_key_) {
    stats_.prepared_cache_hit = true;
    obs::metrics::alloc_prepared_cache_hits().inc();
    return prepared_;
  }
  if (has_prepared_) {
    NLARM_DEBUG << "prepared-input memo invalidated: snapshot version "
                << prepared_key_.version << " -> " << key.version
                << " (nodes " << prepared_key_.node_count << " -> "
                << key.node_count << ")";
  }
  stats_.prepared_cache_hit = false;
  obs::metrics::alloc_prepared_cache_misses().inc();

  has_prepared_ = false;  // invalidate while prepared_ is being rebuilt
  prepared_.usable = snapshot.usable_nodes();
  NLARM_CHECK(!prepared_.usable.empty()) << "no usable nodes in snapshot";

  // Unit-mean rescaling puts node costs and pair costs on a common scale so
  // α/β trade them off as intended (see rescale_unit_mean). NL goes through
  // the canonical chunked pipeline shared with the epoch builder and the
  // reference path (core/prepared.h).
  prepared_.cl = rescale_unit_mean(
      compute_loads(snapshot, prepared_.usable, request.compute_weights));
  prepared_network_loads(snapshot, prepared_.usable, request.network_weights,
                         prepared_.nl);
  prepared_.pc =
      effective_process_counts(snapshot, prepared_.usable, request.ppn);

  prepared_key_ = key;
  has_prepared_ = true;
  return prepared_;
}

Allocation NetworkLoadAwareAllocator::allocate(
    const monitor::ClusterSnapshot& snapshot,
    const AllocationRequest& request) {
  request.validate();
  obs::metrics::alloc_requests().inc();
  stats_ = AllocStats{};
  obs::ScopedSpan total_span("alloc.total",
                             &obs::metrics::alloc_total_seconds());

  obs::ScopedSpan prepare_span("alloc.prepare",
                               &obs::metrics::alloc_prepare_seconds());
  const PreparedInputs& inputs = prepare(snapshot, request);
  stats_.prepare_seconds = prepare_span.stop();
  stats_.usable_nodes = inputs.usable.size();

  obs::ScopedSpan generate_span("alloc.generate",
                                &obs::metrics::alloc_generate_seconds());
  std::vector<Candidate> candidates =
      generate_all_candidates(inputs.cl, inputs.nl, inputs.pc, request.nprocs,
                              request.job, generation_options_);
  stats_.generate_seconds = generate_span.stop();
  stats_.candidates_generated = candidates.size();
  obs::metrics::alloc_candidates_generated().inc(candidates.size());
  if (static_cast<std::size_t>(request.nprocs) < inputs.usable.size()) {
    obs::metrics::alloc_topk_generations().inc();
  } else {
    obs::metrics::alloc_fullsort_generations().inc();
  }

  obs::ScopedSpan select_span("alloc.select",
                              &obs::metrics::alloc_select_seconds());
  last_selection_ = select_best_candidate(std::move(candidates), inputs.cl,
                                          inputs.nl, request.job);
  stats_.select_seconds = select_span.stop();
  last_node_set_ = inputs.usable;

  const ScoredCandidate& best =
      last_selection_.scored[last_selection_.best_index];
  stats_.compute_cost = best.compute_cost;
  stats_.network_cost = best.network_cost;
  Allocation allocation;
  allocation.policy = name();
  allocation.total_procs = request.nprocs;
  allocation.total_cost = best.total_cost;
  for (std::size_t i = 0; i < best.candidate.members.size(); ++i) {
    allocation.nodes.push_back(inputs.usable[best.candidate.members[i]]);
    allocation.procs_per_node.push_back(best.candidate.procs[i]);
  }
  annotate_allocation(allocation, snapshot);
  stats_.total_seconds = total_span.stop();
  stats_.valid = true;
  return allocation;
}

}  // namespace nlarm::core
