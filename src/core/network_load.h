// Network load NL_(u,v) (Eq. 2): weighted sum of normalized P2P latency and
// normalized complement of available P2P bandwidth.
#pragma once

#include <span>
#include <vector>

#include "core/weights.h"
#include "monitor/snapshot.h"
#include "util/flat_matrix.h"

namespace nlarm::core {

/// NL matrix over the given node set: result[i][j] is the network load
/// between nodes[i] and nodes[j] (symmetric, diagonal 0).
///
/// Missing measurements (the store may not have every pair yet) are filled
/// with the mean of the measured values; a completely unmeasured network
/// degrades gracefully to "all pairs equal" (pure load-aware behaviour).
util::FlatMatrix network_loads(const monitor::ClusterSnapshot& snapshot,
                               std::span<const cluster::NodeId> nodes,
                               const NetworkLoadWeights& weights);

/// Storage-reusing variant: writes the NL matrix into `out` (resized as
/// needed). The allocator calls this with a long-lived scratch matrix so a
/// request allocates no per-row buffers.
void network_loads_into(const monitor::ClusterSnapshot& snapshot,
                        std::span<const cluster::NodeId> nodes,
                        const NetworkLoadWeights& weights,
                        util::FlatMatrix& out);

/// Raw (unnormalized) pairwise terms, exposed for diagnostics (Table 4):
/// latency in µs and complement of available bandwidth in Mbit/s.
struct PairMetrics {
  double latency_us = 0.0;
  double bandwidth_complement_mbps = 0.0;
};
PairMetrics pair_metrics(const monitor::ClusterSnapshot& snapshot,
                         cluster::NodeId u, cluster::NodeId v);

/// Group network load of a node set: the paper takes "the average of
/// network load between all pairs of nodes" (§3.2.2).
double group_network_load(const util::FlatMatrix& nl,
                          std::span<const std::size_t> member_indices);

}  // namespace nlarm::core
