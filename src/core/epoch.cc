#include "core/epoch.h"

#include <algorithm>

#include "obs/catalog.h"
#include "obs/trace.h"
#include "util/check.h"

namespace nlarm::core {

void EpochPublisher::publish(std::shared_ptr<PreparedSnapshot> prepared) {
  NLARM_CHECK(prepared != nullptr) << "publishing a null epoch";
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t next = epoch_.load(std::memory_order_relaxed) + 1;
  prepared->epoch = next;
  if (next > 1) {
    // How stale the previous epoch had become, in snapshot time.
    const double age = prepared->time - last_publish_time_;
    obs::metrics::epoch_age_seconds().set(age);
    obs::metrics::broker_epoch_age_seconds().observe(std::max(0.0, age));
  }
  // Refresh lag runs on the wall clock, not snapshot time: it is the
  // refresh loop's real cadence, which live dashboards alert on.
  const double wall = obs::trace_clock_seconds();
  if (next > 1) {
    const double lag = wall - last_publish_wall_;
    obs::metrics::epoch_refresh_lag_seconds().set(lag);
    obs::metrics::epoch_refresh_sketch().observe(lag);
  }
  last_publish_wall_ = wall;
  obs::metrics::epoch_tiled_state_bytes().set(
      prepared->tiles != nullptr
          ? static_cast<double>(prepared->tiles->memory_bytes())
          : 0.0);
  last_publish_time_ = prepared->time;
  current_ = std::move(prepared);
  if (!current_->usable.empty()) last_good_ = current_;
  epoch_.store(next, std::memory_order_release);
  obs::metrics::epoch_publishes().inc();
}

bool EpochPublisher::refresh(EpochPin& pin) const {
  const std::uint64_t current = epoch_.load(std::memory_order_acquire);
  if (pin.valid() && pin.epoch == current) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  pin.prepared = current_;
  pin.epoch = epoch_.load(std::memory_order_relaxed);
  return true;
}

}  // namespace nlarm::core
