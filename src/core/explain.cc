#include "core/explain.h"

#include <algorithm>
#include <sstream>

#include "core/compute_load.h"
#include "core/network_load.h"
#include "util/strings.h"
#include "util/table.h"

namespace nlarm::core {

std::string explain_allocation(const monitor::ClusterSnapshot& snapshot,
                               const AllocationRequest& request,
                               const Allocation& allocation,
                               const NetworkLoadAwareAllocator* allocator) {
  std::ostringstream out;
  out << "Allocation by '" << allocation.policy << "': "
      << allocation.total_procs << " processes over "
      << allocation.node_count() << " node(s)\n\n";

  // Per-node view: the monitored attributes the decision saw.
  const std::vector<double> cl =
      compute_loads(snapshot, allocation.nodes, request.compute_weights);
  const std::vector<int> pc =
      effective_process_counts(snapshot, allocation.nodes, request.ppn);
  util::TextTable nodes({"node", "procs", "pc", "load(1m)", "util(1m)",
                         "flow Mb/s", "mem free GB", "users", "CL*"});
  for (std::size_t i = 0; i < allocation.nodes.size(); ++i) {
    const monitor::NodeSnapshot& record =
        snapshot.nodes[static_cast<std::size_t>(allocation.nodes[i])];
    nodes.add_row({record.spec.hostname,
                   util::format("%d", allocation.procs_per_node[i]),
                   util::format("%d", pc[i]),
                   util::format("%.2f", record.cpu_load_avg.one_min),
                   util::format("%.2f", record.cpu_util_avg.one_min),
                   util::format("%.0f", record.net_flow_avg.one_min),
                   util::format("%.1f", record.mem_avail_avg.one_min),
                   util::format("%d", record.users),
                   util::format("%.3f", cl[i])});
  }
  nodes.print(out);
  out << "(* CL normalized within the allocated group only)\n\n";

  // Pairwise view: worst and best links inside the group.
  if (allocation.nodes.size() >= 2) {
    double best_lat = 0.0, worst_lat = 0.0, best_cmp = 0.0, worst_cmp = 0.0;
    bool first = true;
    for (std::size_t i = 0; i < allocation.nodes.size(); ++i) {
      for (std::size_t j = i + 1; j < allocation.nodes.size(); ++j) {
        const PairMetrics m =
            pair_metrics(snapshot, allocation.nodes[i], allocation.nodes[j]);
        if (m.latency_us < 0.0 || m.bandwidth_complement_mbps < 0.0) continue;
        if (first) {
          best_lat = worst_lat = m.latency_us;
          best_cmp = worst_cmp = m.bandwidth_complement_mbps;
          first = false;
        } else {
          best_lat = std::min(best_lat, m.latency_us);
          worst_lat = std::max(worst_lat, m.latency_us);
          best_cmp = std::min(best_cmp, m.bandwidth_complement_mbps);
          worst_cmp = std::max(worst_cmp, m.bandwidth_complement_mbps);
        }
      }
    }
    out << util::format(
        "Group network: latency %.0f..%.0f us (avg %.0f), bandwidth "
        "complement %.0f..%.0f Mbit/s (avg %.0f)\n",
        best_lat, worst_lat, allocation.avg_latency_us, best_cmp, worst_cmp,
        allocation.avg_bw_complement_mbps);
  }
  out << util::format(
      "Group compute: mean monitored CPU load %.2f; weighted cost T = %.4f "
      "(alpha=%.2f beta=%.2f)\n",
      allocation.avg_cpu_load, allocation.total_cost, request.job.alpha,
      request.job.beta);

  // Candidate ranking, when the deciding allocator is available.
  if (allocator != nullptr && !allocator->last_selection().scored.empty()) {
    const auto& selection = allocator->last_selection();
    std::vector<double> costs;
    costs.reserve(selection.scored.size());
    for (const auto& scored : selection.scored) {
      costs.push_back(scored.total_cost);
    }
    std::vector<double> sorted = costs;
    std::sort(sorted.begin(), sorted.end());
    const double winner = costs[selection.best_index];
    out << util::format(
        "Candidates: %zu generated; winner T=%.4f vs median %.4f and worst "
        "%.4f\n",
        costs.size(), winner, sorted[sorted.size() / 2], sorted.back());
  }
  return out.str();
}

}  // namespace nlarm::core
