#include "core/attributes.h"

#include "util/check.h"

namespace nlarm::core {

Criterion criterion_of(Attribute attribute) {
  switch (attribute) {
    case Attribute::kCoreCount:
    case Attribute::kCpuFreq:
    case Attribute::kTotalMem:
    case Attribute::kMemAvail1:
    case Attribute::kMemAvail5:
    case Attribute::kMemAvail15:
      return Criterion::kMaximize;
    case Attribute::kUsers:
    case Attribute::kCpuLoad1:
    case Attribute::kCpuLoad5:
    case Attribute::kCpuLoad15:
    case Attribute::kCpuUtil1:
    case Attribute::kCpuUtil5:
    case Attribute::kCpuUtil15:
    case Attribute::kNetFlow1:
    case Attribute::kNetFlow5:
    case Attribute::kNetFlow15:
      return Criterion::kMinimize;
  }
  NLARM_CHECK(false) << "unknown attribute";
}

double attribute_value(const monitor::NodeSnapshot& node,
                       Attribute attribute) {
  switch (attribute) {
    case Attribute::kCoreCount:
      return static_cast<double>(node.spec.core_count);
    case Attribute::kCpuFreq:
      return node.spec.cpu_freq_ghz;
    case Attribute::kTotalMem:
      return node.spec.total_mem_gb;
    case Attribute::kUsers:
      return static_cast<double>(node.users);
    case Attribute::kCpuLoad1:
      return node.cpu_load_avg.one_min;
    case Attribute::kCpuLoad5:
      return node.cpu_load_avg.five_min;
    case Attribute::kCpuLoad15:
      return node.cpu_load_avg.fifteen_min;
    case Attribute::kCpuUtil1:
      return node.cpu_util_avg.one_min;
    case Attribute::kCpuUtil5:
      return node.cpu_util_avg.five_min;
    case Attribute::kCpuUtil15:
      return node.cpu_util_avg.fifteen_min;
    case Attribute::kNetFlow1:
      return node.net_flow_avg.one_min;
    case Attribute::kNetFlow5:
      return node.net_flow_avg.five_min;
    case Attribute::kNetFlow15:
      return node.net_flow_avg.fifteen_min;
    case Attribute::kMemAvail1:
      return node.mem_avail_avg.one_min;
    case Attribute::kMemAvail5:
      return node.mem_avail_avg.five_min;
    case Attribute::kMemAvail15:
      return node.mem_avail_avg.fifteen_min;
  }
  NLARM_CHECK(false) << "unknown attribute";
}

std::string to_string(Attribute attribute) {
  switch (attribute) {
    case Attribute::kCoreCount:
      return "core_count";
    case Attribute::kCpuFreq:
      return "cpu_freq";
    case Attribute::kTotalMem:
      return "total_mem";
    case Attribute::kUsers:
      return "users";
    case Attribute::kCpuLoad1:
      return "cpu_load_1m";
    case Attribute::kCpuLoad5:
      return "cpu_load_5m";
    case Attribute::kCpuLoad15:
      return "cpu_load_15m";
    case Attribute::kCpuUtil1:
      return "cpu_util_1m";
    case Attribute::kCpuUtil5:
      return "cpu_util_5m";
    case Attribute::kCpuUtil15:
      return "cpu_util_15m";
    case Attribute::kNetFlow1:
      return "net_flow_1m";
    case Attribute::kNetFlow5:
      return "net_flow_5m";
    case Attribute::kNetFlow15:
      return "net_flow_15m";
    case Attribute::kMemAvail1:
      return "mem_avail_1m";
    case Attribute::kMemAvail5:
      return "mem_avail_5m";
    case Attribute::kMemAvail15:
      return "mem_avail_15m";
  }
  return "?";
}

}  // namespace nlarm::core
