#include "core/reference.h"

#include <algorithm>
#include <numeric>

#include "core/compute_load.h"
#include "core/normalize.h"
#include "core/prepared.h"
#include "util/check.h"

namespace nlarm::core::reference {

Candidate generate_candidate(std::size_t start, std::span<const double> cl,
                             const util::FlatMatrix& nl,
                             std::span<const int> pc, int nprocs,
                             const JobWeights& job) {
  job.validate();
  const std::size_t count = cl.size();
  NLARM_CHECK(start < count) << "start index out of range";
  NLARM_CHECK(nl.size() == count && pc.size() == count)
      << "cl/nl/pc size mismatch";

  // Addition costs A_v(u); A_v(v) = 0 so the start node sorts first.
  std::vector<double> addition(count);
  for (std::size_t u = 0; u < count; ++u) {
    addition[u] =
        (u == start) ? 0.0 : job.alpha * cl[u] + job.beta * nl[start][u];
  }

  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&addition](std::size_t a, std::size_t b) {
                     return addition[a] < addition[b];
                   });
  NLARM_CHECK(order.front() == start)
      << "start node must sort first (its addition cost is 0)";

  FillResult fill = fill_processes(order, pc, nprocs);
  Candidate candidate;
  candidate.start_index = start;
  candidate.members = std::move(fill.members);
  candidate.procs = std::move(fill.procs);
  candidate.total_procs = nprocs;
  return candidate;
}

std::vector<Candidate> generate_all_candidates(std::span<const double> cl,
                                               const util::FlatMatrix& nl,
                                               std::span<const int> pc,
                                               int nprocs,
                                               const JobWeights& job) {
  std::vector<Candidate> candidates;
  candidates.reserve(cl.size());
  for (std::size_t start = 0; start < cl.size(); ++start) {
    candidates.push_back(
        reference::generate_candidate(start, cl, nl, pc, nprocs, job));
  }
  return candidates;
}

SelectionResult select_best_candidate(std::vector<Candidate> candidates,
                                      std::span<const double> cl,
                                      const util::FlatMatrix& nl,
                                      const JobWeights& job) {
  job.validate();
  NLARM_CHECK(!candidates.empty()) << "no candidates to select from";

  SelectionResult result;
  result.scored.reserve(candidates.size());
  double compute_sum = 0.0;
  double network_sum = 0.0;
  for (Candidate& candidate : candidates) {
    ScoredCandidate scored;
    scored.candidate = std::move(candidate);
    const CandidateCosts costs =
        candidate_costs(scored.candidate.members, cl, nl);
    scored.compute_cost = costs.compute;
    scored.network_cost = costs.network;
    compute_sum += scored.compute_cost;
    network_sum += scored.network_cost;
    result.scored.push_back(std::move(scored));
  }

  double best = 0.0;
  bool have_best = false;
  for (std::size_t i = 0; i < result.scored.size(); ++i) {
    ScoredCandidate& scored = result.scored[i];
    const double c_norm =
        compute_sum > 0.0 ? scored.compute_cost / compute_sum : 0.0;
    const double n_norm =
        network_sum > 0.0 ? scored.network_cost / network_sum : 0.0;
    scored.total_cost = job.alpha * c_norm + job.beta * n_norm;
    if (!have_best || scored.total_cost < best) {
      best = scored.total_cost;
      result.best_index = i;
      have_best = true;
    }
  }
  return result;
}

Allocation allocate(const monitor::ClusterSnapshot& snapshot,
                    const AllocationRequest& request) {
  request.validate();
  const std::vector<cluster::NodeId> usable = snapshot.usable_nodes();
  NLARM_CHECK(!usable.empty()) << "no usable nodes in snapshot";

  const std::vector<double> cl = rescale_unit_mean(
      compute_loads(snapshot, usable, request.compute_weights));
  // Same canonical NL pipeline as the fast allocator and the epoch builder,
  // so the equivalence suite compares like with like bit for bit.
  util::FlatMatrix nl;
  prepared_network_loads(snapshot, usable, request.network_weights, nl);
  const std::vector<int> pc =
      effective_process_counts(snapshot, usable, request.ppn);

  std::vector<Candidate> candidates = reference::generate_all_candidates(
      cl, nl, pc, request.nprocs, request.job);
  const SelectionResult selection = reference::select_best_candidate(
      std::move(candidates), cl, nl, request.job);

  const ScoredCandidate& winner = selection.scored[selection.best_index];
  Allocation allocation;
  allocation.policy = "network-load-aware";
  allocation.total_procs = request.nprocs;
  allocation.total_cost = winner.total_cost;
  for (std::size_t i = 0; i < winner.candidate.members.size(); ++i) {
    allocation.nodes.push_back(usable[winner.candidate.members[i]]);
    allocation.procs_per_node.push_back(winner.candidate.procs[i]);
  }
  annotate_allocation(allocation, snapshot);
  return allocation;
}

}  // namespace nlarm::core::reference
