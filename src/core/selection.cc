#include "core/selection.h"

#include "util/check.h"

namespace nlarm::core {

SelectionResult select_best_candidate(
    std::vector<Candidate> candidates, std::span<const double> cl,
    const std::vector<std::vector<double>>& nl, const JobWeights& job) {
  job.validate();
  NLARM_CHECK(!candidates.empty()) << "no candidates to select from";

  SelectionResult result;
  result.scored.reserve(candidates.size());
  double compute_sum = 0.0;
  double network_sum = 0.0;
  for (Candidate& candidate : candidates) {
    ScoredCandidate scored;
    scored.candidate = std::move(candidate);
    const auto& members = scored.candidate.members;
    for (std::size_t m : members) {
      NLARM_CHECK(m < cl.size()) << "member out of cl range";
      scored.compute_cost += cl[m];
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        scored.network_cost += nl[members[i]][members[j]];
      }
    }
    compute_sum += scored.compute_cost;
    network_sum += scored.network_cost;
    result.scored.push_back(std::move(scored));
  }

  double best = 0.0;
  bool have_best = false;
  for (std::size_t i = 0; i < result.scored.size(); ++i) {
    ScoredCandidate& scored = result.scored[i];
    const double c_norm =
        compute_sum > 0.0 ? scored.compute_cost / compute_sum : 0.0;
    const double n_norm =
        network_sum > 0.0 ? scored.network_cost / network_sum : 0.0;
    scored.total_cost = job.alpha * c_norm + job.beta * n_norm;
    if (!have_best || scored.total_cost < best) {
      best = scored.total_cost;
      result.best_index = i;
      have_best = true;
    }
  }
  return result;
}

}  // namespace nlarm::core
