#include "core/selection.h"

#include <algorithm>
#include <cstdint>
#include <map>

#include "obs/catalog.h"
#include "util/check.h"

namespace nlarm::core {

SelectionResult select_best_candidate(std::vector<Candidate> candidates,
                                      std::span<const double> cl,
                                      const util::FlatMatrix& nl,
                                      const JobWeights& job) {
  job.validate();
  NLARM_CHECK(!candidates.empty()) << "no candidates to select from";

  SelectionResult result;
  result.scored.reserve(candidates.size());
  double compute_sum = 0.0;
  double network_sum = 0.0;
  // Cost-walk dedup for candidates that arrive without generation-time
  // costs: raw costs depend only on the member set (canonical order), so
  // each unique set is walked once.
  std::map<std::vector<std::size_t>, CandidateCosts> by_member_set;
  std::uint64_t cost_walks = 0;
  std::uint64_t dedup_hits = 0;
  for (Candidate& candidate : candidates) {
    ScoredCandidate scored;
    scored.candidate = std::move(candidate);
    if (scored.candidate.has_costs) {
      scored.compute_cost = scored.candidate.compute_cost;
      scored.network_cost = scored.candidate.network_cost;
    } else {
      std::vector<std::size_t> key = scored.candidate.members;
      std::sort(key.begin(), key.end());
      auto it = by_member_set.find(key);
      if (it == by_member_set.end()) {
        ++cost_walks;
        it = by_member_set
                 .emplace(std::move(key),
                          candidate_costs(scored.candidate.members, cl, nl))
                 .first;
      } else {
        ++dedup_hits;
      }
      scored.compute_cost = it->second.compute;
      scored.network_cost = it->second.network;
    }
    compute_sum += scored.compute_cost;
    network_sum += scored.network_cost;
    result.scored.push_back(std::move(scored));
  }
  if (cost_walks > 0) obs::metrics::select_cost_walks().inc(cost_walks);
  if (dedup_hits > 0) obs::metrics::select_cost_dedup_hits().inc(dedup_hits);

  double best = 0.0;
  bool have_best = false;
  for (std::size_t i = 0; i < result.scored.size(); ++i) {
    ScoredCandidate& scored = result.scored[i];
    const double c_norm =
        compute_sum > 0.0 ? scored.compute_cost / compute_sum : 0.0;
    const double n_norm =
        network_sum > 0.0 ? scored.network_cost / network_sum : 0.0;
    scored.total_cost = job.alpha * c_norm + job.beta * n_norm;
    if (!have_best || scored.total_cost < best) {
      best = scored.total_cost;
      result.best_index = i;
      have_best = true;
    }
  }
  return result;
}

}  // namespace nlarm::core
