// Algorithm 1: candidate sub-graph generation.
//
// For a start node v, every other node u is scored with the addition cost
// A_v(u) = α·CL(u) + β·NL(v,u) (A_v(v) = 0), nodes are taken in increasing
// cost order until the requested process count is covered, and any shortfall
// (cluster smaller than the request) is assigned round-robin.
//
// Fast path: the allocator only ever consumes the first min(|V|, n) entries
// of the sorted order (every taken node contributes at least one process),
// so generation selects that top-k with a partial selection instead of
// sorting all |V| nodes, falling back to the full sort only when the request
// needs the whole cluster. The (addition cost, index) key is a strict total
// order, so the partial selection is deterministic and reproduces the full
// stable_sort prefix exactly.
#pragma once

#include <span>
#include <vector>

#include "core/weights.h"
#include "util/flat_matrix.h"
#include "util/thread_pool.h"

namespace nlarm::core {

/// A candidate sub-graph. All indices are positions in the working node set
/// the costs were computed over (not raw NodeIds).
struct Candidate {
  std::size_t start_index = 0;
  std::vector<std::size_t> members;  ///< in selection order, starts with start_index
  std::vector<int> procs;            ///< processes assigned per member; sums to n
  int total_procs = 0;

  // Raw Algorithm-2 costs, accumulated during generation over the canonical
  // (ascending-index) member order so identical member sets always produce
  // bit-identical values. Selection skips its own cost walk when
  // `has_costs` is set.
  double compute_cost = 0.0;  ///< C_Gv = Σ CL over members
  double network_cost = 0.0;  ///< N_Gv = Σ NL over sub-graph edges
  bool has_costs = false;
};

/// Raw candidate costs over the canonical ascending member order: members
/// are sorted by index, then each member's CL and its NL edges to the
/// already-added members are accumulated incrementally. One definition
/// shared by generation, selection and the retained reference path keeps
/// the three bit-identical.
struct CandidateCosts {
  double compute = 0.0;
  double network = 0.0;
};
CandidateCosts candidate_costs(std::span<const std::size_t> members,
                               std::span<const double> cl,
                               const util::FlatMatrix& nl);

/// Distributes `nprocs` over the prefix of `order` using per-node capacity
/// `pc` (Algorithm 1 lines 8–14): nodes are consumed in order until the
/// request is covered; if capacity runs out, the remainder is handed out
/// round-robin one process at a time. Zero-capacity nodes (batch admission
/// debits capacities down to 0) are skipped, never oversubscribed.
struct FillResult {
  std::vector<std::size_t> members;
  std::vector<int> procs;
};
FillResult fill_processes(std::span<const std::size_t> order,
                          std::span<const int> pc, int nprocs);

/// Generates the candidate sub-graph G_v for start index `start`.
/// `cl` is the CL vector, `nl` the NL matrix, `pc` the effective process
/// counts — all over the same working node set.
Candidate generate_candidate(std::size_t start, std::span<const double> cl,
                             const util::FlatMatrix& nl,
                             std::span<const int> pc, int nprocs,
                             const JobWeights& job);

/// Controls how generate_all_candidates fans out over start nodes.
struct GenerationOptions {
  /// Fan out across the thread pool when the working set has at least this
  /// many nodes; below it the per-request fork-join overhead outweighs the
  /// win. Negative disables parallelism entirely.
  int parallel_threshold = 192;
  /// Pool to fan out on; nullptr uses ThreadPool::shared().
  util::ThreadPool* pool = nullptr;
};

/// All |V| candidates (one per possible start node). Results are ordered by
/// start index and bit-identical whether generated serially or in parallel
/// (each start node writes only its own slot).
std::vector<Candidate> generate_all_candidates(
    std::span<const double> cl, const util::FlatMatrix& nl,
    std::span<const int> pc, int nprocs, const JobWeights& job,
    const GenerationOptions& options = {});

/// Restricted fan-out: one candidate per entry of `starts` (working-set
/// positions, each with pc > 0), in `starts` order. Batch admission uses
/// this to only start from nodes with remaining capacity.
std::vector<Candidate> generate_all_candidates(
    std::span<const double> cl, const util::FlatMatrix& nl,
    std::span<const int> pc, int nprocs, const JobWeights& job,
    std::span<const std::size_t> starts, const GenerationOptions& options = {});

}  // namespace nlarm::core
