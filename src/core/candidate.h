// Algorithm 1: candidate sub-graph generation.
//
// For a start node v, every other node u is scored with the addition cost
// A_v(u) = α·CL(u) + β·NL(v,u) (A_v(v) = 0), nodes are taken in increasing
// cost order until the requested process count is covered, and any shortfall
// (cluster smaller than the request) is assigned round-robin.
#pragma once

#include <span>
#include <vector>

#include "core/weights.h"

namespace nlarm::core {

/// A candidate sub-graph. All indices are positions in the working node set
/// the costs were computed over (not raw NodeIds).
struct Candidate {
  std::size_t start_index = 0;
  std::vector<std::size_t> members;  ///< in selection order, starts with start_index
  std::vector<int> procs;            ///< processes assigned per member; sums to n
  int total_procs = 0;
};

/// Distributes `nprocs` over the prefix of `order` using per-node capacity
/// `pc` (Algorithm 1 lines 8–14): nodes are consumed in order until the
/// request is covered; if capacity runs out, the remainder is handed out
/// round-robin one process at a time.
struct FillResult {
  std::vector<std::size_t> members;
  std::vector<int> procs;
};
FillResult fill_processes(std::span<const std::size_t> order,
                          std::span<const int> pc, int nprocs);

/// Generates the candidate sub-graph G_v for start index `start`.
/// `cl` is the CL vector, `nl` the NL matrix, `pc` the effective process
/// counts — all over the same working node set.
Candidate generate_candidate(std::size_t start, std::span<const double> cl,
                             const std::vector<std::vector<double>>& nl,
                             std::span<const int> pc, int nprocs,
                             const JobWeights& job);

/// All |V| candidates (one per possible start node).
std::vector<Candidate> generate_all_candidates(
    std::span<const double> cl, const std::vector<std::vector<double>>& nl,
    std::span<const int> pc, int nprocs, const JobWeights& job);

}  // namespace nlarm::core
