#include "core/network_load.h"

#include <algorithm>

#include "core/normalize.h"
#include "util/check.h"

namespace nlarm::core {

namespace {

/// Fills unmeasured (<0) entries of a pairwise value list with the mean of
/// the measured entries (or `fallback` if nothing was measured).
void fill_missing(std::vector<double>& values, double fallback) {
  double sum = 0.0;
  std::size_t measured = 0;
  for (double v : values) {
    if (v >= 0.0) {
      sum += v;
      ++measured;
    }
  }
  const double fill =
      measured > 0 ? sum / static_cast<double>(measured) : fallback;
  for (double& v : values) {
    if (v < 0.0) v = fill;
  }
}

}  // namespace

PairMetrics pair_metrics(const monitor::ClusterSnapshot& snapshot,
                         cluster::NodeId u, cluster::NodeId v) {
  NLARM_CHECK(u != v) << "pair metrics of a self pair";
  const auto uu = static_cast<std::size_t>(u);
  const auto vv = static_cast<std::size_t>(v);
  NLARM_CHECK(uu < snapshot.net.latency_us.size() &&
              vv < snapshot.net.latency_us.size())
      << "pair out of snapshot";
  PairMetrics m;
  m.latency_us = snapshot.net.latency_us[uu][vv];
  const double bw = snapshot.net.bandwidth_mbps[uu][vv];
  const double peak = snapshot.net.peak_mbps[uu][vv];
  if (bw < 0.0 || peak < 0.0) {
    m.bandwidth_complement_mbps = -1.0;  // unmeasured
  } else {
    m.bandwidth_complement_mbps = std::max(0.0, peak - bw);
  }
  return m;
}

std::vector<std::vector<double>> network_loads(
    const monitor::ClusterSnapshot& snapshot,
    std::span<const cluster::NodeId> nodes,
    const NetworkLoadWeights& weights) {
  weights.validate();
  const std::size_t count = nodes.size();
  std::vector<std::vector<double>> nl(count, std::vector<double>(count, 0.0));
  if (count < 2) return nl;

  // Gather the upper-triangle pair terms.
  const std::size_t pair_count = count * (count - 1) / 2;
  std::vector<double> latency(pair_count);
  std::vector<double> complement(pair_count);
  std::size_t k = 0;
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t j = i + 1; j < count; ++j, ++k) {
      const PairMetrics m = pair_metrics(snapshot, nodes[i], nodes[j]);
      latency[k] = m.latency_us;  // may be <0 (unmeasured)
      complement[k] = m.bandwidth_complement_mbps;
    }
  }
  fill_missing(latency, /*fallback=*/100.0);
  fill_missing(complement, /*fallback=*/0.0);

  // "Normalization is done similar to compute load" — divide by the sum
  // over pairs. Both terms are already minimization criteria (latency, and
  // bandwidth complemented at the measurement stage).
  const std::vector<double> latency_norm = normalize_by_sum(latency);
  const std::vector<double> complement_norm = normalize_by_sum(complement);

  k = 0;
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t j = i + 1; j < count; ++j, ++k) {
      const double value = weights.latency * latency_norm[k] +
                           weights.bandwidth * complement_norm[k];
      nl[i][j] = value;
      nl[j][i] = value;
    }
  }
  return nl;
}

double group_network_load(const std::vector<std::vector<double>>& nl,
                          std::span<const std::size_t> member_indices) {
  const std::size_t count = member_indices.size();
  if (count < 2) return 0.0;
  double sum = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t j = i + 1; j < count; ++j) {
      const std::size_t a = member_indices[i];
      const std::size_t b = member_indices[j];
      NLARM_CHECK(a < nl.size() && b < nl.size()) << "member out of matrix";
      sum += nl[a][b];
      ++pairs;
    }
  }
  return sum / static_cast<double>(pairs);
}

}  // namespace nlarm::core
