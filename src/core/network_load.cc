#include "core/network_load.h"

#include <algorithm>

#include "core/normalize.h"
#include "util/check.h"

namespace nlarm::core {

namespace {

/// Fills unmeasured (<0) entries of a pairwise value list with the mean of
/// the measured entries (or `fallback` if nothing was measured).
void fill_missing(std::vector<double>& values, double fallback) {
  double sum = 0.0;
  std::size_t measured = 0;
  for (double v : values) {
    if (v >= 0.0) {
      sum += v;
      ++measured;
    }
  }
  const double fill =
      measured > 0 ? sum / static_cast<double>(measured) : fallback;
  for (double& v : values) {
    if (v < 0.0) v = fill;
  }
}

}  // namespace

PairMetrics pair_metrics(const monitor::ClusterSnapshot& snapshot,
                         cluster::NodeId u, cluster::NodeId v) {
  NLARM_CHECK(u != v) << "pair metrics of a self pair";
  const auto uu = static_cast<std::size_t>(u);
  const auto vv = static_cast<std::size_t>(v);
  NLARM_CHECK(uu < snapshot.net.latency_us.size() &&
              vv < snapshot.net.latency_us.size())
      << "pair out of snapshot";
  PairMetrics m;
  m.latency_us = snapshot.net.latency_us[uu][vv];
  const double bw = snapshot.net.bandwidth_mbps[uu][vv];
  const double peak = snapshot.net.peak_mbps[uu][vv];
  if (bw < 0.0 || peak < 0.0) {
    m.bandwidth_complement_mbps = -1.0;  // unmeasured
  } else {
    m.bandwidth_complement_mbps = std::max(0.0, peak - bw);
  }
  return m;
}

util::FlatMatrix network_loads(const monitor::ClusterSnapshot& snapshot,
                               std::span<const cluster::NodeId> nodes,
                               const NetworkLoadWeights& weights) {
  util::FlatMatrix nl;
  network_loads_into(snapshot, nodes, weights, nl);
  return nl;
}

void network_loads_into(const monitor::ClusterSnapshot& snapshot,
                        std::span<const cluster::NodeId> nodes,
                        const NetworkLoadWeights& weights,
                        util::FlatMatrix& out) {
  weights.validate();
  const std::size_t count = nodes.size();
  out.assign(count, 0.0);
  if (count < 2) return;

  const std::size_t matrix_size =
      static_cast<std::size_t>(snapshot.net.size());
  const util::FlatMatrix& lat_m = snapshot.net.latency_us;
  const util::FlatMatrix& bw_m = snapshot.net.bandwidth_mbps;
  const util::FlatMatrix& peak_m = snapshot.net.peak_mbps;

  // Gather the upper-triangle pair terms. The scratch vectors are
  // thread-local so repeated calls reuse their allocations.
  const std::size_t pair_count = count * (count - 1) / 2;
  thread_local std::vector<double> latency;
  thread_local std::vector<double> complement;
  latency.resize(pair_count);
  complement.resize(pair_count);
  std::size_t k = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const auto ui = static_cast<std::size_t>(nodes[i]);
    NLARM_CHECK(ui < matrix_size) << "pair out of snapshot";
    const double* lat_row = lat_m[ui];
    const double* bw_row = bw_m[ui];
    const double* peak_row = peak_m[ui];
    for (std::size_t j = i + 1; j < count; ++j, ++k) {
      const auto vj = static_cast<std::size_t>(nodes[j]);
      NLARM_CHECK(vj < matrix_size) << "pair out of snapshot";
      NLARM_CHECK(vj != ui) << "pair metrics of a self pair";
      latency[k] = lat_row[vj];  // may be <0 (unmeasured)
      const double bw = bw_row[vj];
      const double peak = peak_row[vj];
      complement[k] =
          (bw < 0.0 || peak < 0.0) ? -1.0 : std::max(0.0, peak - bw);
    }
  }
  fill_missing(latency, /*fallback=*/100.0);
  fill_missing(complement, /*fallback=*/0.0);

  // "Normalization is done similar to compute load" — divide by the sum
  // over pairs. Both terms are already minimization criteria (latency, and
  // bandwidth complemented at the measurement stage).
  const std::vector<double> latency_norm = normalize_by_sum(latency);
  const std::vector<double> complement_norm = normalize_by_sum(complement);

  k = 0;
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t j = i + 1; j < count; ++j, ++k) {
      const double value = weights.latency * latency_norm[k] +
                           weights.bandwidth * complement_norm[k];
      out[i][j] = value;
      out[j][i] = value;
    }
  }
}

double group_network_load(const util::FlatMatrix& nl,
                          std::span<const std::size_t> member_indices) {
  const std::size_t count = member_indices.size();
  if (count < 2) return 0.0;
  double sum = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t j = i + 1; j < count; ++j) {
      const std::size_t a = member_indices[i];
      const std::size_t b = member_indices[j];
      NLARM_CHECK(a < nl.size() && b < nl.size()) << "member out of matrix";
      sum += nl[a][b];
      ++pairs;
    }
  }
  return sum / static_cast<double>(pairs);
}

}  // namespace nlarm::core
