// RCU-style publication of immutable prepared epochs.
//
// One refresh thread drives PreparedSnapshot construction (core/prepared.h)
// — optionally fanning the build itself across a util::ThreadPool, see
// DESIGN.md §17; publication stays single-threaded — and publish()es the
// result; any number of decide() threads consume the current epoch with no
// locks on the hot path. The classic double-buffer problem
// (when may the old buffer be reclaimed?) is solved by shared_ptr: readers
// pin the epoch they are using, and the last pin dropping frees it.
//
// gcc's std::atomic<std::shared_ptr> goes through a lock pool, so the
// publisher instead keeps the pointer under a mutex and exposes a plain
// atomic epoch counter as the fast-path guard:
//
//   reader: epoch_.load(acquire) == pin.epoch  → keep using pin.prepared
//           (one atomic load per decide; no contention, no refcount bump)
//   else:   lock, copy the current shared_ptr into the pin (rare: only
//           right after a publish)
//
// The RELEASE store of epoch_ in publish() pairs with the ACQUIRE load in
// refresh(): a reader that observes the new counter value then takes the
// mutex, which orders it after the pointer store. Readers never observe a
// counter ahead of the pointer it announces.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "core/prepared.h"

namespace nlarm::core {

/// A reader's pinned epoch. Holding the pin keeps the epoch (and the
/// snapshot it references) alive; refresh cheaply re-validates it against
/// the publisher. One pin per reader thread, not shared.
struct EpochPin {
  std::uint64_t epoch = 0;  ///< 0 = nothing pinned yet
  std::shared_ptr<const PreparedSnapshot> prepared;

  bool valid() const { return prepared != nullptr; }
};

class EpochPublisher {
 public:
  /// Stamps the epoch number into `prepared` and makes it current.
  /// Called by the owning refresh thread (publishes are serialized by the
  /// internal mutex either way).
  void publish(std::shared_ptr<PreparedSnapshot> prepared);

  /// Current epoch counter (0 = nothing published yet).
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Brings `pin` up to date. Fast path: one acquire load when the pinned
  /// epoch is still current. Returns true when the pin changed.
  bool refresh(EpochPin& pin) const;

  /// Convenience: a fresh up-to-date pin.
  EpochPin pin() const {
    EpochPin fresh;
    refresh(fresh);
    return fresh;
  }

  /// The newest published epoch with a non-empty usable set (null until one
  /// exists). The broker's degradation fallback serves from this when the
  /// current epoch is poisoned.
  std::shared_ptr<const PreparedSnapshot> last_good() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return last_good_;
  }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const PreparedSnapshot> current_;
  std::shared_ptr<const PreparedSnapshot> last_good_;
  std::atomic<std::uint64_t> epoch_{0};
  double last_publish_time_ = 0.0;  ///< snapshot time of the last publish
  double last_publish_wall_ = 0.0;  ///< trace-clock time of the last publish
};

}  // namespace nlarm::core
