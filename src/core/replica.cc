#include "core/replica.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "obs/catalog.h"
#include "util/check.h"
#include "util/logging.h"

namespace nlarm::core {

namespace {

double default_clock() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string fence_reason(const char* prefix, double lag) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s (replication lag %.1f s)", prefix, lag);
  return std::string(buf);
}

}  // namespace

FollowerBroker::FollowerBroker(Allocator& allocator, std::string log_path,
                               const RequestProfile& profile,
                               ReplicaOptions options, BrokerPolicy policy)
    : options_(options),
      log_path_(std::move(log_path)),
      profile_(profile),
      broker_(allocator, policy),
      reader_(log_path_) {
  NLARM_CHECK(options_.poll_interval_s > 0.0)
      << "replica poll interval must be positive";
  if (options_.refresh_threads > 1) {
    broker_.set_refresh_threads(options_.refresh_threads);
  }
  reader_.set_decode_ahead(options_.decode_ahead);
  obs::metrics::replica_role().set(0.0);
}

FollowerBroker::~FollowerBroker() { stop(); }

void FollowerBroker::set_degradation(const DegradationPolicy& policy) {
  broker_.set_degradation(policy);
  degradation_enabled_ = true;
}

void FollowerBroker::set_audit_log(obs::AuditLog* log) {
  broker_.set_audit_log(log);
}

int FollowerBroker::poll_once(double now) {
  std::lock_guard<std::mutex> lock(poll_mutex_);
  int frames = 0;
  if (!degradation_enabled_) {
    frames = broker_.ingest_delta_log(reader_, profile_);
  } else {
    frames = reader_.poll();
    if (frames > 0) {
      const monitor::SnapshotDelta delta = reader_.drain_delta();
      auto snapshot =
          std::make_shared<const monitor::ClusterSnapshot>(reader_.snapshot());
      mirror_apply(*snapshot, delta);
      const monitor::StalenessView staleness = mirror_->staleness_view(now);
      broker_.refresh_epoch(std::move(snapshot), delta, staleness, profile_);
    }
  }
  if (frames > 0) {
    const monitor::ClusterSnapshot& state = reader_.snapshot();
    state_time_.store(state.time, std::memory_order_relaxed);
    state_version_.store(state.version, std::memory_order_relaxed);
    // Progress is never older than the state it delivered — a caller whose
    // clock lags the log (first poll before the time base is pinned) must
    // not start the silence timer in the past.
    last_progress_time_.store(std::max(now, state.time),
                              std::memory_order_relaxed);
    saw_progress_.store(true, std::memory_order_relaxed);
    have_state_.store(true, std::memory_order_release);
    frames_ingested_.fetch_add(frames, std::memory_order_relaxed);
    epochs_published_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics::replica_frames_ingested().inc(
        static_cast<std::uint64_t>(frames));
    obs::metrics::replica_epochs().inc();
  }
  obs::metrics::replica_lag_seconds().set(lag_seconds(now));
  return frames;
}

double FollowerBroker::lag_seconds(double now) const {
  if (!have_state_.load(std::memory_order_acquire)) return 0.0;
  return std::max(0.0, now - state_time_.load(std::memory_order_relaxed));
}

double FollowerBroker::seconds_since_progress(double now) const {
  if (!saw_progress_.load(std::memory_order_relaxed)) return 0.0;
  return std::max(
      0.0, now - last_progress_time_.load(std::memory_order_relaxed));
}

BrokerDecision FollowerBroker::refuse(const char* reason_prefix, double lag) {
  BrokerDecision decision;
  decision.action = BrokerDecision::Action::kWait;
  decision.reason = fence_reason(reason_prefix, lag);
  return decision;
}

BrokerDecision FollowerBroker::decide(const AllocationRequest& request,
                                      double now) {
  if (!have_state()) {
    return refuse("replica has no replicated state yet", 0.0);
  }
  const double lag = lag_seconds(now);
  if (options_.max_epoch_age_s > 0.0 && lag > options_.max_epoch_age_s) {
    fenced_decides_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics::replica_fenced().inc();
    return refuse("replica fenced: replicated epoch over the age bound", lag);
  }
  return broker_.decide(broker_.pin_epoch(), request);
}

std::vector<BrokerDecision> FollowerBroker::decide_batch(
    std::span<const AllocationRequest> requests, double now) {
  if (!have_state()) {
    std::vector<BrokerDecision> refused;
    refused.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      refused.push_back(refuse("replica has no replicated state yet", 0.0));
    }
    return refused;
  }
  const double lag = lag_seconds(now);
  if (options_.max_epoch_age_s > 0.0 && lag > options_.max_epoch_age_s) {
    std::vector<BrokerDecision> refused;
    refused.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      fenced_decides_.fetch_add(1, std::memory_order_relaxed);
      obs::metrics::replica_fenced().inc();
      refused.push_back(
          refuse("replica fenced: replicated epoch over the age bound", lag));
    }
    return refused;
  }
  return broker_.decide_batch(broker_.pin_epoch(), requests);
}

void FollowerBroker::mirror_apply(const monitor::ClusterSnapshot& snapshot,
                                  const monitor::SnapshotDelta& delta) {
  const bool fresh_mirror =
      mirror_ == nullptr || mirror_->node_count() != snapshot.size();
  if (fresh_mirror) {
    mirror_ = std::make_unique<monitor::MonitorStore>(snapshot.size());
  }
  if (fresh_mirror || delta.requires_full_rebuild()) {
    mirror_->restore(snapshot);
  } else {
    // Node records carry their own sample time, so their mirror ages match
    // the leader's exactly; pair writes are stamped with the frame's
    // snapshot time (see the class comment for when that is exact).
    for (const cluster::NodeId node : delta.dirty_nodes) {
      const monitor::NodeSnapshot& record =
          snapshot.nodes[static_cast<std::size_t>(node)];
      if (record.valid && record.sample_time >= 0.0) {
        mirror_->write_node_record(record.sample_time, record);
      }
    }
    for (const auto& [u, v] : delta.dirty_pairs) {
      if (snapshot.net.latency_us[u][v] >= 0.0) {
        mirror_->write_latency(snapshot.time, u, v,
                               snapshot.net.latency_us[u][v],
                               snapshot.net.latency_5min_us[u][v]);
      }
      if (snapshot.net.latency_us[v][u] >= 0.0) {
        mirror_->write_latency(snapshot.time, v, u,
                               snapshot.net.latency_us[v][u],
                               snapshot.net.latency_5min_us[v][u]);
      }
      if (snapshot.net.bandwidth_mbps[u][v] >= 0.0) {
        mirror_->write_bandwidth(snapshot.time, u, v,
                                 snapshot.net.bandwidth_mbps[u][v],
                                 snapshot.net.peak_mbps[u][v]);
      }
      if (snapshot.net.bandwidth_mbps[v][u] >= 0.0) {
        mirror_->write_bandwidth(snapshot.time, v, u,
                                 snapshot.net.bandwidth_mbps[v][u],
                                 snapshot.net.peak_mbps[v][u]);
      }
    }
  }
  // The mirror only feeds staleness views; drain its tracker so the dirty
  // sets never pile up.
  (void)mirror_->drain_delta();
}

bool FollowerBroker::promote(double now) {
  std::lock_guard<std::mutex> lock(poll_mutex_);
  if (leader_.load(std::memory_order_relaxed)) return false;
  if (!reader_.have_snapshot()) {
    NLARM_WARN << "replica: promote requested before any state replicated";
    return false;
  }
  // Re-lay the log from the last-good replicated state as one compaction
  // frame (tmp + rename), healing whatever torn tail the dying leader left
  // so other followers converge on the same state we promote from.
  monitor::DeltaLogWriter writer(log_path_);
  if (!writer.write_full(reader_.snapshot())) {
    NLARM_WARN << "replica: promotion compaction write failed; "
                  "staying follower";
    return false;
  }
  leader_.store(true, std::memory_order_relaxed);
  last_progress_time_.store(now, std::memory_order_relaxed);
  promotions_.fetch_add(1, std::memory_order_relaxed);
  obs::metrics::replica_promotions().inc();
  obs::metrics::replica_role().set(1.0);
  NLARM_WARN << "replica: promoted to leader from replicated version "
             << state_version_.load(std::memory_order_relaxed)
             << " (state time "
             << state_time_.load(std::memory_order_relaxed) << ")";
  return true;
}

bool FollowerBroker::maybe_promote(double now) {
  if (leader_.load(std::memory_order_relaxed)) return false;
  if (!have_state()) return false;
  if (options_.promote_after_s <= 0.0) return false;
  if (seconds_since_progress(now) < options_.promote_after_s) return false;
  return promote(now);
}

void FollowerBroker::start(std::function<double()> clock) {
  NLARM_CHECK(!tail_thread_.joinable()) << "replica tail thread already runs";
  if (!clock) clock = default_clock;
  stop_requested_.store(false, std::memory_order_relaxed);
  tail_thread_ = std::thread([this, clock = std::move(clock)] {
    const auto interval = std::chrono::duration<double>(
        options_.poll_interval_s);
    while (!stop_requested_.load(std::memory_order_relaxed)) {
      poll_once(clock());
      std::this_thread::sleep_for(interval);
    }
  });
}

void FollowerBroker::stop() {
  if (!tail_thread_.joinable()) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  tail_thread_.join();
}

ReplicaStatus FollowerBroker::status(double now) const {
  ReplicaStatus status;
  status.role = role();
  status.have_state = have_state();
  status.state_version = state_version_.load(std::memory_order_relaxed);
  status.state_time = state_time_.load(std::memory_order_relaxed);
  status.lag_seconds = lag_seconds(now);
  status.silent_seconds = seconds_since_progress(now);
  status.fenced_now = options_.max_epoch_age_s > 0.0 &&
                      status.lag_seconds > options_.max_epoch_age_s;
  status.frames_ingested = frames_ingested_.load(std::memory_order_relaxed);
  status.epochs_published = epochs_published_.load(std::memory_order_relaxed);
  status.fenced_decides = fenced_decides_.load(std::memory_order_relaxed);
  status.promotions = promotions_.load(std::memory_order_relaxed);
  return status;
}

obs::EpochStatus FollowerBroker::epoch_status(double now) const {
  obs::EpochStatus status;
  status.max_age_seconds = options_.max_epoch_age_s;
  const EpochPin pin = broker_.pin_epoch();
  if (!pin.valid()) return status;
  const PreparedSnapshot& prepared = *pin.prepared;
  status.published = true;
  status.epoch = prepared.epoch;
  status.age_seconds = lag_seconds(now);
  status.usable_nodes = prepared.usable.size();
  status.quarantined = prepared.quarantined;
  status.pair_fallbacks = prepared.pair_fallbacks;
  status.degraded = prepared.degraded;
  status.tiled_state_bytes =
      prepared.tiles != nullptr ? prepared.tiles->memory_bytes() : 0;
  return status;
}

const monitor::ClusterSnapshot& FollowerBroker::snapshot() const {
  return reader_.snapshot();
}

}  // namespace nlarm::core
