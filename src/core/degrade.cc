#include "core/degrade.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "obs/catalog.h"
#include "util/check.h"
#include "util/logging.h"

namespace nlarm::core {

void DegradationPolicy::validate() const {
  NLARM_CHECK(node_staleness_budget_s > 0.0)
      << "node staleness budget must be positive";
  NLARM_CHECK(node_readmit_s > 0.0 &&
              node_readmit_s <= node_staleness_budget_s)
      << "readmit threshold must be in (0, budget]";
  NLARM_CHECK(pair_staleness_budget_s > 0.0)
      << "pair staleness budget must be positive";
  NLARM_CHECK(pair_penalty >= 1.0) << "pair penalty must be >= 1";
  NLARM_CHECK(max_epoch_age_s > 0.0) << "max epoch age must be positive";
  NLARM_CHECK(block_quarantine_fraction > 0.0 &&
              block_quarantine_fraction <= 1.0)
      << "block quarantine fraction must be in (0, 1]";
}

Degrader::Degrader(DegradationPolicy policy) : policy_(policy) {
  policy_.validate();
}

void Degrader::reset(std::size_t n) {
  n_ = n;
  node_quarantined_.assign(n, 0);
  block_overlay_.assign(n, 0);
  pair_fallback_.assign(n * n, 0);
  quarantined_count_ = 0;
  block_overlay_count_ = 0;
  pair_fallback_count_ = 0;
}

DegradationOutcome Degrader::apply(
    std::shared_ptr<const monitor::ClusterSnapshot> snapshot,
    const monitor::StalenessView& staleness) {
  NLARM_CHECK(snapshot != nullptr) << "degrading a null snapshot";
  const std::size_t n = snapshot->nodes.size();
  NLARM_CHECK(staleness.node.size() == n && staleness.pair.size() == n)
      << "staleness view does not match the snapshot (" << n << " nodes)";
  if (n != n_) reset(n);

  DegradationOutcome outcome;

  // --- node quarantine with two-threshold hysteresis ---
  for (std::size_t id = 0; id < n; ++id) {
    const double age = staleness.node[id];
    const bool was = node_quarantined_[id] != 0;
    bool now = was;
    if (was) {
      if (age <= policy_.node_readmit_s) now = false;
    } else {
      if (age > policy_.node_staleness_budget_s) now = true;
    }
    // A node the snapshot cannot use anyway (dead, or record invalidated by
    // the monitor's own staleness filter) carries no quarantine state:
    // quarantining it would be a no-op and readmitting it later would
    // spuriously flag a membership change.
    const bool usable = snapshot->livehosts[id] && snapshot->nodes[id].valid;
    if (!usable) now = false;
    if (now != was) {
      node_quarantined_[id] = now ? 1 : 0;
      if (now) {
        ++quarantined_count_;
        obs::metrics::degrade_quarantine_events().inc();
        NLARM_INFO << "degrade: quarantined node " << id << " (record "
                   << age << " s old)";
      } else {
        --quarantined_count_;
        if (usable) obs::metrics::degrade_readmissions().inc();
        NLARM_INFO << "degrade: readmitted node " << id;
      }
      outcome.quarantine_changed = true;
    }
  }

  // --- block (switch) quarantine overlay ---
  // When most of a switch's usable nodes went stale together, the survivors
  // are probably reachable only on paper; take the whole block out. The
  // overlay is recomputed from the node states every apply(), so readmitting
  // the stale nodes dissolves it automatically.
  {
    std::map<cluster::SwitchId, std::pair<std::size_t, std::size_t>> blocks;
    for (std::size_t id = 0; id < n; ++id) {
      if (!snapshot->livehosts[id] || !snapshot->nodes[id].valid) continue;
      auto& [eligible, flagged] = blocks[snapshot->nodes[id].spec.switch_id];
      ++eligible;
      if (node_quarantined_[id]) ++flagged;
    }
    std::size_t overlay_count = 0;
    for (std::size_t id = 0; id < n; ++id) {
      const bool usable = snapshot->livehosts[id] && snapshot->nodes[id].valid;
      bool overlay = false;
      if (usable && !node_quarantined_[id]) {
        const auto& [eligible, flagged] =
            blocks[snapshot->nodes[id].spec.switch_id];
        overlay = flagged > 0 &&
                  static_cast<double>(flagged) >=
                      policy_.block_quarantine_fraction *
                          static_cast<double>(eligible);
      }
      const bool was = block_overlay_[id] != 0;
      if (overlay != was) {
        block_overlay_[id] = overlay ? 1 : 0;
        outcome.quarantine_changed = true;
        if (overlay) {
          obs::metrics::degrade_block_quarantine_events().inc();
          NLARM_INFO << "degrade: block-quarantined node " << id
                     << " (switch " << snapshot->nodes[id].spec.switch_id
                     << " mostly stale)";
        } else {
          NLARM_INFO << "degrade: block-readmitted node " << id;
        }
      }
      if (overlay) ++overlay_count;
    }
    block_overlay_count_ = overlay_count;
  }

  // --- pair fallback tracking (unordered, u < v) ---
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      // The freshest direction decides for the pair (daemons write both
      // orders together); never-measured pairs (inf) have nothing to fall
      // back to and stay out.
      const double age = std::min(staleness.pair[u][v], staleness.pair[v][u]);
      const bool was = pair_fallback_[u * n + v] != 0;
      const bool now =
          std::isfinite(age) && age > policy_.pair_staleness_budget_s;
      if (now != was) {
        pair_fallback_[u * n + v] = now ? 1 : 0;
        pair_fallback_count_ += now ? 1 : std::size_t(-1);
        outcome.changed_pairs.emplace_back(static_cast<cluster::NodeId>(u),
                                           static_cast<cluster::NodeId>(v));
      }
    }
  }

  outcome.quarantined = quarantined_count_ + block_overlay_count_;
  outcome.block_quarantined = block_overlay_count_;
  outcome.pair_fallbacks = pair_fallback_count_;
  obs::metrics::degrade_quarantined_nodes().set(
      static_cast<double>(quarantined_count_));
  obs::metrics::degrade_block_quarantined_nodes().set(
      static_cast<double>(block_overlay_count_));
  obs::metrics::degrade_pair_fallbacks().set(
      static_cast<double>(pair_fallback_count_));

  if (quarantined_count_ == 0 && block_overlay_count_ == 0 &&
      pair_fallback_count_ == 0) {
    // Nothing to rewrite: pass the input through untouched so fresh-data
    // epochs stay bit-identical to the undegraded pipeline, copy-free.
    outcome.snapshot = std::move(snapshot);
    return outcome;
  }

  auto copy = std::make_shared<monitor::ClusterSnapshot>(*snapshot);
  for (std::size_t id = 0; id < n; ++id) {
    if (node_quarantined_[id] || block_overlay_[id]) {
      copy->livehosts[id] = false;
    }
  }
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (!pair_fallback_[u * n + v]) continue;
      // Serve the 5-minute mean with a pessimism penalty, both directions.
      // Unmeasured cells (-1 sentinels) stay unmeasured.
      for (const auto& [a, b] : {std::pair{u, v}, std::pair{v, u}}) {
        const double lat5 = copy->net.latency_5min_us[a][b];
        if (lat5 >= 0.0) {
          copy->net.latency_us[a][b] = lat5 * policy_.pair_penalty;
        }
        const double bw = copy->net.bandwidth_mbps[a][b];
        const double peak = copy->net.peak_mbps[a][b];
        if (bw >= 0.0 && peak >= 0.0) {
          const double deficit =
              std::max(0.0, peak - bw) * policy_.pair_penalty;
          copy->net.bandwidth_mbps[a][b] = std::max(0.0, peak - deficit);
        }
      }
    }
  }
  outcome.degraded = true;
  outcome.snapshot = std::move(copy);
  return outcome;
}

}  // namespace nlarm::core
