// Launcher integration: translate an Allocation into the formats real
// process managers consume. §6 of the paper plans "integrating our tool as
// a plugin for SLURM"; until then the broker's output must feed existing
// launchers, so we emit:
//  * MPICH/Hydra machinefiles          (host:procs per line)
//  * OpenMPI hostfiles                 (host slots=N per line)
//  * SLURM --nodelist strings          (compressed: csews[1-4,7])
//  * SLURM --exclude strings           (everything NOT allocated)
//  * slurm.conf topology.conf sections (SwitchName=... Nodes=...)
#pragma once

#include <string>
#include <vector>

#include "cluster/topology.h"
#include "core/allocator.h"

namespace nlarm::core {

/// MPICH/Hydra machinefile: "hostname:slots" lines (same as to_hostfile).
std::string to_mpich_machinefile(const Allocation& allocation,
                                 const monitor::ClusterSnapshot& snapshot);

/// OpenMPI hostfile: "hostname slots=N" lines.
std::string to_openmpi_hostfile(const Allocation& allocation,
                                const monitor::ClusterSnapshot& snapshot);

/// Compresses hostnames sharing a common alphabetic prefix into SLURM
/// rangelist syntax: {csews1,csews2,csews3,csews7} → "csews[1-3,7]".
/// Hostnames without a numeric suffix are emitted verbatim, comma-joined.
std::string compress_hostlist(std::vector<std::string> hostnames);

/// `srun --nodelist=` value for an allocation.
std::string to_slurm_nodelist(const Allocation& allocation,
                              const monitor::ClusterSnapshot& snapshot);

/// `srun --exclude=` value: all usable nodes NOT in the allocation.
std::string to_slurm_exclude(const Allocation& allocation,
                             const monitor::ClusterSnapshot& snapshot);

/// Full srun command line for the job.
std::string to_srun_command(const Allocation& allocation,
                            const monitor::ClusterSnapshot& snapshot,
                            const std::string& binary);

/// topology.conf content for SLURM's topology/tree plugin, generated from
/// the cluster topology (one SwitchName line per switch plus trunk links).
std::string to_slurm_topology_conf(const cluster::Topology& topology,
                                   const monitor::ClusterSnapshot& snapshot);

}  // namespace nlarm::core
