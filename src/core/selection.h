// Algorithm 2: best-candidate selection.
//
// Each candidate's total compute cost C_Gv = Σ CL over members and total
// network cost N_Gv = Σ NL over sub-graph edges are normalized by their sums
// across all candidates; the candidate minimizing
// T_Gv = α·C_norm + β·N_norm wins.
//
// Raw costs are defined over the canonical ascending member order (see
// candidate_costs), so candidates with identical member sets always carry
// bit-identical raw costs. Scoring therefore (a) reuses costs already
// accumulated during generation and (b) deduplicates the remaining cost
// walks by member set instead of re-walking O(k²) pairs per candidate.
#pragma once

#include <span>
#include <vector>

#include "core/candidate.h"
#include "core/weights.h"
#include "util/flat_matrix.h"

namespace nlarm::core {

struct ScoredCandidate {
  Candidate candidate;
  double compute_cost = 0.0;  ///< C_Gv (raw)
  double network_cost = 0.0;  ///< N_Gv (raw)
  double total_cost = 0.0;    ///< T_Gv (after cross-candidate normalization)
};

/// Scores all candidates and returns them plus the index of the winner
/// (minimum T_Gv; ties broken by smaller start index). The scored list
/// keeps every input candidate (duplicates included) in input order.
struct SelectionResult {
  std::vector<ScoredCandidate> scored;
  std::size_t best_index = 0;
};
SelectionResult select_best_candidate(std::vector<Candidate> candidates,
                                      std::span<const double> cl,
                                      const util::FlatMatrix& nl,
                                      const JobWeights& job);

}  // namespace nlarm::core
